// Section 4.1 — web page partitioning strategies.
//
// "Because number of inner-site links overcomes that of inter-site ones ...
// divide at site-granularity instead of page-granularity can reduce
// communication overhead greatly."
//
// For each strategy and K this prints the cut links (score records that must
// cross the network every exchange), the cut fraction, and the load balance.
// Expected shape: hash-site cuts <= ~10% of links at any K (bounded by the
// inter-site fraction) while random/hash-url approach (1 - 1/K); the price
// of site granularity is worse balance, which balanced-site (LPT ablation)
// recovers.
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "graph/graph_stats.hpp"
#include "partition/partition_stats.hpp"
#include "partition/partitioner.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace p2prank;
  const bench::Flags flags(argc, argv, "[--pages=50000] [--seed=42]");
  const auto g = bench::experiment_graph(flags, 50000);

  const auto gstats = graph::compute_stats(g);
  std::cout << "partition: cut links by strategy (Section 4.1)\n"
            << "graph: " << g.num_pages() << " pages, " << g.num_links()
            << " internal links, intra-site fraction "
            << util::format_double(gstats.intra_site_fraction(), 3) << "\n\n";

  std::vector<std::unique_ptr<partition::Partitioner>> strategies;
  strategies.push_back(partition::make_random_partitioner(flags.get_u64("seed", 42)));
  strategies.push_back(partition::make_hash_url_partitioner());
  strategies.push_back(partition::make_hash_site_partitioner());
  strategies.push_back(partition::make_balanced_site_partitioner());

  util::Table table({"strategy", "K", "cut links", "cut %", "imbalance",
                     "recrawl-stable"});
  for (const std::uint32_t k : {4u, 16u, 64u, 256u}) {
    for (const auto& strategy : strategies) {
      const auto assignment = strategy->partition(g, k);
      const auto stats = partition::compute_partition_stats(g, assignment, k);
      partition::GroupId probe = 0;
      const bool stable = strategy->assign_url("probe.edu/x", k, probe);
      table.row()
          .cell(std::string(strategy->name()))
          .cell(std::uint64_t{k})
          .cell(std::uint64_t{stats.cut_links})
          .cell(stats.cut_fraction() * 100.0, 1)
          .cell(stats.imbalance(), 2)
          .cell(stable ? "yes" : "no");
    }
  }
  table.print(std::cout, "Cut links & balance by partitioning strategy");

  // Shape summary at K = 64.
  const auto site64 = partition::compute_partition_stats(
      g, partition::make_hash_site_partitioner()->partition(g, 64), 64);
  const auto url64 = partition::compute_partition_stats(
      g, partition::make_hash_url_partitioner()->partition(g, 64), 64);
  std::cout << "\npaper shape check (K=64):\n"
            << "  site-hash cut far below url-hash cut: "
            << (static_cast<double>(site64.cut_links) <
                        0.25 * static_cast<double>(url64.cut_links)
                    ? "yes"
                    : "NO")
            << " (" << site64.cut_links << " vs " << url64.cut_links << ")\n"
            << "  site-hash cut bounded by inter-site fraction: "
            << (site64.cut_fraction() <= 1.0 - gstats.intra_site_fraction() + 0.02
                    ? "yes"
                    : "NO")
            << '\n';
  return 0;
}
