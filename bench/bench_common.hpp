// Shared helpers for the figure/table reproduction binaries: tiny flag
// parsing (--key=value) and the standard experiment graph.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <unordered_map>

#include "graph/synthetic_web.hpp"

namespace p2prank::bench {

/// "--key=value" flags; anything else aborts with a usage message.
class Flags {
 public:
  Flags(int argc, char** argv, std::string_view usage) {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg(argv[i]);
      if (!arg.starts_with("--")) {
        std::cerr << "unexpected argument '" << arg << "'\nusage: " << argv[0]
                  << ' ' << usage << '\n';
        std::exit(2);
      }
      const auto eq = arg.find('=');
      if (eq == std::string_view::npos) {
        values_.emplace(std::string(arg.substr(2)), "true");
      } else {
        values_.emplace(std::string(arg.substr(2, eq - 2)),
                        std::string(arg.substr(eq + 1)));
      }
    }
  }

  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoull(it->second);
  }

  [[nodiscard]] double get_double(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }

  [[nodiscard]] std::string get_string(const std::string& key,
                                       std::string fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second != "false" && it->second != "0";
  }

 private:
  std::unordered_map<std::string, std::string> values_;
};

/// The standard experiment crawl: google2002 statistics at a bench-friendly
/// scale (the paper's dataset is 1M pages; pass --pages=1000000 to match).
[[nodiscard]] inline graph::WebGraph experiment_graph(const Flags& flags,
                                                      std::uint32_t default_pages,
                                                      std::uint64_t seed = 42) {
  const auto pages = static_cast<std::uint32_t>(flags.get_u64("pages", default_pages));
  return graph::generate_synthetic_web(
      graph::google2002_config(pages, flags.get_u64("seed", seed)));
}

}  // namespace p2prank::bench
