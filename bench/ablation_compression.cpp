// Ablation — compression of the score exchange (the paper's Section 4.5 /
// Conclusions future work: "Some techniques can be adopted to reduce
// convergence time, i.e. compression").
//
// Two independent levers, both measured here:
//   1. *Wire encoding*: the paper budgets 100 bytes per <url_from, url_to,
//      score> record. Varint + URL front-coding (+ optional lossy score
//      quantization) shrinks real record batches taken from an actual
//      partition's cut edges by several times, which scales Table 1's
//      iteration interval down proportionally (T >= h·l·W / bisection).
//   2. *Delta thresholds*: near convergence most scores barely change;
//      sending only entries that moved >= threshold cuts records per round
//      at the price of a bounded relative-error floor.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "cost/capacity_model.hpp"
#include "engine/distributed.hpp"
#include "engine/reference.hpp"
#include "partition/partitioner.hpp"
#include "transport/wire.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {
constexpr double kAlpha = 0.85;
}

int main(int argc, char** argv) {
  using namespace p2prank;
  const bench::Flags flags(argc, argv, "[--pages=20000] [--k=32] [--seed=42]");
  const auto g = bench::experiment_graph(flags, 20000);
  const auto k = static_cast<std::uint32_t>(flags.get_u64("k", 32));
  auto& pool = util::ThreadPool::shared();

  std::cout << "compression ablation (future work of Sections 4.5/7)\n"
            << "graph: " << g.num_pages() << " pages, " << g.num_links()
            << " internal links; K=" << k << "\n\n";

  const auto assignment = partition::make_hash_site_partitioner()->partition(g, k);
  const auto reference = engine::open_system_reference(g, kAlpha, pool);

  // ---- Part 1: wire encoding of one real exchange round ---------------------
  // Materialize every cut-edge record with its actual URLs and score.
  std::vector<transport::ScoreRecord> records;
  for (graph::PageId u = 0; u < g.num_pages(); ++u) {
    const auto d = g.out_degree(u);
    if (d == 0) continue;
    for (const graph::PageId v : g.out_links(u)) {
      if (assignment[u] == assignment[v]) continue;
      records.push_back({g.url(u), g.url(v),
                         kAlpha * reference[u] / static_cast<double>(d)});
    }
  }

  struct Encoding {
    const char* label;
    transport::WireOptions opts;
    bool lossless;
  };
  const Encoding encodings[] = {
      {"plain varint (no front-coding)", {.front_coding = false, .quantize_bits = 0}, true},
      {"front-coded URLs", {.front_coding = true, .quantize_bits = 0}, true},
      {"front-coded + 20-bit scores", {.front_coding = true, .quantize_bits = 20}, false},
      {"front-coded + 12-bit scores", {.front_coding = true, .quantize_bits = 12}, false},
  };

  util::Table wire_table({"encoding", "bytes/record", "vs paper's 100 B",
                          "lossless", "Table-1 T @ N=1000"});
  cost::CostParameters cp;  // W = 3e9
  wire_table.row()
      .cell("paper estimate (l = 100 B)")
      .cell(transport::kNaiveRecordBytes, 1)
      .cell("1.00x")
      .cell("yes")
      .cell(util::format_seconds(cost::min_iteration_interval(2.5, cp)));
  for (const auto& enc : encodings) {
    const auto bytes = transport::encode_records(records, enc.opts);
    const double per_record =
        static_cast<double>(bytes.size()) / static_cast<double>(records.size());
    cost::CostParameters scaled = cp;
    scaled.record_bytes = per_record;
    wire_table.row()
        .cell(enc.label)
        .cell(per_record, 1)
        .cell(util::format_double(transport::kNaiveRecordBytes / per_record, 2) + "x")
        .cell(enc.lossless ? "yes" : "~5e-7 abs err")
        .cell(util::format_seconds(cost::min_iteration_interval(2.5, scaled)));
  }
  wire_table.print(std::cout,
                   "Wire encoding of " + std::to_string(records.size()) +
                       " real cut-edge records");

  // ---- Part 2: delta-send thresholds -----------------------------------------
  util::Table delta_table({"send threshold", "records sent", "vs full",
                           "messages", "final rel err"});
  std::uint64_t full_records = 0;
  for (const double threshold : {0.0, 1e-8, 1e-6, 1e-4}) {
    engine::EngineOptions opts;
    opts.algorithm = engine::Algorithm::kDPR1;
    opts.alpha = kAlpha;
    opts.t1 = 0.0;
    opts.t2 = 6.0;
    opts.send_threshold = threshold;
    opts.seed = flags.get_u64("seed", 42);
    engine::DistributedRanking sim(g, assignment, k, opts, pool);
    sim.set_reference(reference);
    (void)sim.run(60.0, 60.0);
    if (threshold == 0.0) full_records = sim.records_sent();
    delta_table.row()
        .cell(threshold == 0.0 ? std::string("0 (paper's algorithms)")
                               : util::format_double(threshold, 8))
        .cell(sim.records_sent())
        .cell(util::format_double(100.0 * static_cast<double>(sim.records_sent()) /
                                      static_cast<double>(full_records),
                                  1) +
              "%")
        .cell(sim.messages_sent())
        .cell(sim.relative_error_now(), 8);
  }
  delta_table.print(std::cout, "Delta-send thresholds after 60 time units (DPR1)");

  std::cout << "\nshape check: encoding beats the 100 B estimate several-fold;\n"
               "thresholds trade a bounded error floor for most of the traffic.\n";
  return 0;
}
