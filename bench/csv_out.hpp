// Optional CSV export for the figure benches: pass --csv=PATH and the
// plotted series is also written as machine-readable CSV (the aligned text
// table remains on stdout either way).
#pragma once

#include <fstream>
#include <iostream>
#include <string>

#include "util/table.hpp"

namespace p2prank::bench {

/// Write `table` to `path` as CSV when path is non-empty ("true" — the
/// value a bare --csv flag parses to — is rejected to catch the typo).
inline void maybe_write_csv(const util::Table& table, const std::string& path) {
  if (path.empty()) return;
  if (path == "true") {
    std::cerr << "--csv needs a path: --csv=out.csv\n";
    return;
  }
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << " for CSV output\n";
    return;
  }
  table.print_csv(out);
  std::cout << "(series also written to " << path << ")\n";
}

}  // namespace p2prank::bench
