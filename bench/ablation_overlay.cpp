// Ablation — overlay parameters and protocols.
//
// The capacity analysis of Section 4.5 hinges on h (hops) and g (neighbors):
// D_it = h·l·W grows with h, S_it = g·N grows with g, and Pastry's digit
// base 2^b trades one for the other (bigger base -> fewer hops, larger
// routing table). This bench measures h and g for Pastry at b = 1/2/4/8 and
// for Chord, and shows the downstream effect on indirect-transmission cost.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "cost/capacity_model.hpp"
#include "engine/distributed.hpp"
#include "engine/reference.hpp"
#include "overlay/can.hpp"
#include "overlay/chord.hpp"
#include "overlay/pastry.hpp"
#include "partition/partitioner.hpp"
#include "transport/exchange.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace p2prank;
  const bench::Flags flags(argc, argv, "[--n=1024] [--samples=2000]");
  const auto n = static_cast<std::uint32_t>(flags.get_u64("n", 1024));
  const auto samples = flags.get_u64("samples", 2000);

  std::cout << "ablation: overlay choice (hops h vs neighbors g), N=" << n << "\n\n";

  struct Row {
    std::string label;
    std::unique_ptr<overlay::Overlay> overlay;
  };
  std::vector<Row> rows;
  for (const int b : {1, 2, 4, 8}) {
    overlay::PastryConfig cfg;
    cfg.num_nodes = n;
    cfg.bits_per_digit = b;
    cfg.seed = 11;
    rows.push_back({"pastry b=" + std::to_string(b),
                    std::make_unique<overlay::PastryOverlay>(cfg)});
  }
  {
    overlay::ChordConfig cfg;
    cfg.num_nodes = n;
    cfg.seed = 11;
    rows.push_back({"chord", std::make_unique<overlay::ChordOverlay>(cfg)});
  }
  for (const int d : {2, 4}) {
    overlay::CanConfig cfg;
    cfg.num_nodes = n;
    cfg.dimensions = d;
    cfg.seed = 11;
    rows.push_back({"can d=" + std::to_string(d),
                    std::make_unique<overlay::CanOverlay>(cfg)});
  }

  util::Table table({"overlay", "mean hops h", "max hops", "mean neighbors g",
                     "exchange msgs", "exchange bytes", "D_it model @3B pages"});
  for (const auto& row : rows) {
    const auto probe = overlay::probe_overlay(*row.overlay, samples, 3);
    const auto demand = transport::ExchangeDemand::all_pairs(n, 1);
    const auto report = transport::run_indirect_exchange(*row.overlay, demand, {});
    cost::CostParameters p;
    p.mean_neighbors = probe.mean_neighbors;
    const auto model = cost::indirect_cost(static_cast<double>(n), probe.mean_hops, p);
    table.row()
        .cell(row.label)
        .cell(probe.mean_hops, 2)
        .cell(probe.max_hops, 0)
        .cell(probe.mean_neighbors, 1)
        .cell(report.data_messages)
        .cell(util::format_bytes(report.total_bytes()))
        .cell(util::format_bytes(model.bytes));
  }
  table.print(std::cout, "Overlay ablation (indirect transmission, all-pairs round)");

  // ---- Full stack: DPR1 with Y messages routed over each overlay ----------
  // Ranker count is modest (route hops dominate only relative to each
  // other; per_hop_latency is the same everywhere), so the virtual
  // convergence time directly reflects each overlay's hop count.
  const std::uint32_t k = 64;
  const auto g = graph::generate_synthetic_web(graph::google2002_config(10000, 3));
  auto& pool = util::ThreadPool::shared();
  const auto reference = engine::open_system_reference(g, 0.85, pool);
  const auto assignment = partition::make_hash_url_partitioner()->partition(g, k);

  util::Table stack({"overlay", "mean hops/record", "virtual time to 0.01%"});
  for (const auto& row : rows) {
    if (row.overlay->num_nodes() < k) continue;
    engine::EngineOptions opts;
    opts.alpha = 0.85;
    opts.t1 = opts.t2 = 2.0;
    opts.overlay = row.overlay.get();
    opts.per_hop_latency = 1.0;
    opts.seed = 5;
    engine::DistributedRanking sim(g, assignment, k, opts, pool);
    sim.set_reference(reference);
    const auto result = sim.run_until_error(1e-4, 10000.0, 2.0);
    stack.row()
        .cell(row.label)
        .cell(static_cast<double>(sim.record_hops()) /
                  static_cast<double>(sim.records_sent()),
              2)
        .cell(result.reached ? util::format_double(result.time, 0)
                             : std::string("-"));
  }
  stack.print(std::cout,
              "Full stack: DPR1 over each overlay (K=64, 1 unit per hop)");

  std::cout << "\nshape check: larger Pastry base -> fewer hops, more neighbors;\n"
            << "indirect bytes scale with measured h (D_it = h*l*W);\n"
            << "fewer hops -> faster end-to-end convergence at equal hop cost.\n";
  return 0;
}
