// Table 1 — "The minimal time interval between iterations and the minimal
// node bottleneck bandwidth needed for distributed page ranking":
// W = 3 billion pages, l = 100 B/record, 100 MB/s bisection budget, Pastry
// hop counts h = 2.5 / 3.5 / 4.0 at N = 1e3 / 1e4 / 1e5.
//
// Paper's numbers: 7500 s / 10500 s / 12000 s and 100 / 10 / 1 KB/s. This
// table is purely analytic, so it must match exactly.
#include <iostream>

#include "bench_common.hpp"
#include "cost/capacity_model.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace p2prank;
  const bench::Flags flags(argc, argv,
                           "[--pages=3000000000] [--record-bytes=100] "
                           "[--bisection-mbps=100]");

  cost::CostParameters params;
  params.total_pages = static_cast<double>(flags.get_u64("pages", 3'000'000'000ULL));
  params.record_bytes = flags.get_double("record-bytes", 100.0);
  params.bisection_bandwidth = flags.get_double("bisection-mbps", 100.0) * 1e6;

  std::cout << "table1: capacity model (Section 4.5)\n"
            << "W=" << params.total_pages << " pages, l=" << params.record_bytes
            << " B/record, bisection budget "
            << util::format_bytes(params.bisection_bandwidth) << "/s\n\n";

  util::Table table({"# of Page Rankers", "hops h", "Time per Iteration",
                     "Bottleneck Bandwidth Needed"});
  for (const auto& row : cost::table1(params)) {
    table.row()
        .cell(row.num_rankers)
        .cell(row.hops, 1)
        .cell(std::to_string(static_cast<long long>(row.min_interval_seconds)) +
              " s (" + util::format_seconds(row.min_interval_seconds) + ")")
        .cell(util::format_bytes(row.min_node_bandwidth) + "/s");
  }
  table.print(std::cout, "Table 1 — minimal iteration interval & node bandwidth");

  const auto rows = cost::table1(params);
  const bool matches = rows.size() == 3 && rows[0].min_interval_seconds == 7500.0 &&
                       rows[1].min_interval_seconds == 10500.0 &&
                       rows[2].min_interval_seconds == 12000.0 &&
                       rows[0].min_node_bandwidth == 100e3 &&
                       rows[1].min_node_bandwidth == 10e3 &&
                       rows[2].min_node_bandwidth == 1e3;
  std::cout << "\npaper check (defaults): "
            << (matches ? "matches Table 1 exactly"
                        : "differs (non-default parameters?)")
            << '\n'
            << "\"at least 2 hours between iterations\": "
            << (rows[0].min_interval_seconds >= 7200.0 ? "yes" : "NO") << '\n';
  return 0;
}
