// Ablation — DPR1's inner-solve tolerance.
//
// DPR1 solves its local system "to convergence" every outer step; DPR2 does
// a single sweep. These are the two extremes of one knob: the inner epsilon.
// This bench sweeps that knob and reports, for each setting, the outer
// iterations (= network exchange rounds, the expensive resource per
// Section 4.5) and the total inner sweeps (= CPU cost).
//
// Expected shape: looser inner tolerance -> more outer rounds but fewer
// total sweeps; the paper's DPR1-vs-DPR2 gap in Fig. 8 is the endpoints of
// this curve. Since an exchange round costs hours at web scale (Table 1)
// while sweeps are local CPU, DPR1's end of the trade is the right one —
// this bench quantifies why.
#include <iostream>

#include "bench_common.hpp"
#include "engine/distributed.hpp"
#include "engine/reference.hpp"
#include "partition/partitioner.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {
constexpr double kAlpha = 0.85;
constexpr double kThreshold = 1e-4;
}  // namespace

int main(int argc, char** argv) {
  using namespace p2prank;
  const bench::Flags flags(argc, argv, "[--pages=20000] [--k=32] [--seed=42]");
  const auto g = bench::experiment_graph(flags, 20000);
  const auto k = static_cast<std::uint32_t>(flags.get_u64("k", 32));
  auto& pool = util::ThreadPool::shared();

  std::cout << "ablation: DPR1 inner-solve tolerance (outer rounds vs sweeps)\n"
            << "graph: " << g.num_pages() << " pages; K=" << k
            << "; target rel err 0.01%\n\n";

  const auto assignment = partition::make_hash_url_partitioner()->partition(g, k);
  const auto reference = engine::open_system_reference(g, kAlpha, pool);

  util::Table table({"inner mode", "outer rounds (mean)", "total inner sweeps",
                     "sweeps/round", "virtual time"});

  struct Setting {
    const char* label;
    bool dpr2;
    double inner_eps;
  };
  const Setting settings[] = {
      {"DPR2 (1 sweep)", true, 0.0},
      {"DPR1 eps=1e-2", false, 1e-2},
      {"DPR1 eps=1e-4", false, 1e-4},
      {"DPR1 eps=1e-8", false, 1e-8},
      {"DPR1 eps=1e-12", false, 1e-12},
  };

  double dpr2_rounds = 0.0;
  double tightest_rounds = 0.0;
  for (const auto& s : settings) {
    engine::EngineOptions opts;
    opts.algorithm = s.dpr2 ? engine::Algorithm::kDPR2 : engine::Algorithm::kDPR1;
    opts.alpha = kAlpha;
    opts.inner_epsilon = s.inner_eps;
    opts.t1 = opts.t2 = 15.0;
    opts.seed = flags.get_u64("seed", 42);
    engine::DistributedRanking sim(g, assignment, k, opts, pool);
    sim.set_reference(reference);
    const auto result = sim.run_until_error(kThreshold, 30000.0, 15.0);
    const double rounds = result.mean_outer_steps;
    if (s.dpr2) dpr2_rounds = rounds;
    tightest_rounds = rounds;
    table.row()
        .cell(s.label)
        .cell(rounds, 1)
        .cell(sim.total_inner_sweeps())
        .cell(static_cast<double>(sim.total_inner_sweeps()) /
                  static_cast<double>(sim.total_outer_steps()),
              1)
        .cell(result.time, 0);
  }
  table.print(std::cout, "Inner tolerance sweep (DPR2 -> DPR1)");

  std::cout << "\nshape check: tighter inner solve -> fewer exchange rounds: "
            << (tightest_rounds < dpr2_rounds ? "yes" : "NO") << " ("
            << tightest_rounds << " vs " << dpr2_rounds << ")\n";
  return 0;
}
