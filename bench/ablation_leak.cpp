// Ablation — how the open-system "leak" drives everything.
//
// The crawl's internal-link fraction (the paper's 7M/15M) controls how much
// rank mass escapes the open system each hop, and that single number
// explains two observations the paper reports separately:
//   * the Fig. 7 plateau (average rank ≪ 1), and
//   * why DPR1 needs fewer iterations than classic CPR in Fig. 8 — the
//     effective contraction is α · (fraction of link mass staying
//     internal), which shrinks as the leak grows, while closed-system CPR
//     always contracts at ~α.
// This bench sweeps the crawl fraction and measures plateau, contraction,
// centralized open-system iterations, and DPR1 rounds side by side.
#include <iostream>

#include "bench_common.hpp"
#include "engine/distributed.hpp"
#include "engine/reference.hpp"
#include "graph/synthetic_web.hpp"
#include "partition/partitioner.hpp"
#include "rank/link_matrix.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {
constexpr double kAlpha = 0.85;
}

int main(int argc, char** argv) {
  using namespace p2prank;
  const bench::Flags flags(argc, argv, "[--pages=15000] [--seed=42]");
  const auto pages = static_cast<std::uint32_t>(flags.get_u64("pages", 15000));
  auto& pool = util::ThreadPool::shared();

  std::cout << "leak ablation: internal-link fraction vs convergence\n"
            << "(alpha = " << kAlpha << "; the paper's dataset sits at 7/15 = 0.47)\n\n";

  util::Table table({"crawl fraction", "measured ||A||", "avg rank plateau",
                     "open-sys iters to 0.01%", "DPR1 rounds (K=16)"});
  double first_plateau = 0.0;
  double last_plateau = 0.0;
  double first_iters = 0.0;
  double last_iters = 0.0;
  for (const double crawl_fraction : {0.25, 0.47, 0.75, 1.0}) {
    auto cfg = graph::google2002_config(pages, flags.get_u64("seed", 42));
    cfg.crawl_fraction = crawl_fraction;
    const auto g = graph::generate_synthetic_web(cfg);
    const auto m = rank::LinkMatrix::from_graph(g, kAlpha);

    const auto reference = engine::open_system_reference(g, kAlpha, pool);
    double plateau = 0.0;
    for (const double r : reference) plateau += r;
    plateau /= static_cast<double>(reference.size());

    const auto iters = engine::centralized_iterations_to_error(
        g, kAlpha, 1e-4, reference, pool);

    const auto assignment = partition::make_hash_url_partitioner()->partition(g, 16);
    engine::EngineOptions opts;
    opts.alpha = kAlpha;
    opts.t1 = opts.t2 = 15.0;
    opts.seed = flags.get_u64("seed", 42);
    engine::DistributedRanking sim(g, assignment, 16, opts, pool);
    sim.set_reference(reference);
    const auto result = sim.run_until_error(1e-4, 30000.0, 15.0);

    if (crawl_fraction == 0.25) {
      first_plateau = plateau;
      first_iters = static_cast<double>(iters);
    }
    last_plateau = plateau;
    last_iters = static_cast<double>(iters);

    table.row()
        .cell(crawl_fraction, 2)
        .cell(m.contraction_norm(), 3)
        .cell(plateau, 3)
        .cell(std::uint64_t{iters})
        .cell(result.reached ? result.mean_outer_steps : -1.0, 1);
  }
  table.print(std::cout, "Internal-link fraction sweep");

  std::cout << "\nshape check:\n"
            << "  more leak -> lower plateau:        "
            << (first_plateau < last_plateau ? "yes" : "NO") << '\n'
            << "  more leak -> faster convergence:   "
            << (first_iters < last_iters ? "yes" : "NO") << '\n'
            << "At crawl fraction 1.0 (no leak) the open system approaches the\n"
            << "closed system: plateau -> 1, contraction -> alpha, and the\n"
            << "Fig. 8 DPR1-beats-CPR gap closes — the leak IS the speedup.\n";
  return 0;
}
