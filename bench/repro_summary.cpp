// One-shot replication summary: re-verifies every claim of the paper at a
// small scale and prints a PASS/FAIL table. This is the fast end-to-end
// sanity gate; the dedicated fig*/table*/ablation* binaries produce the
// full series.
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cost/capacity_model.hpp"
#include "engine/distributed.hpp"
#include "engine/reference.hpp"
#include "overlay/pastry.hpp"
#include "partition/partition_stats.hpp"
#include "partition/partitioner.hpp"
#include "transport/exchange.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

constexpr double kAlpha = 0.85;

struct Claim {
  std::string where;
  std::string statement;
  std::function<bool()> check;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace p2prank;
  const bench::Flags flags(argc, argv, "[--pages=8000] [--seed=42]");
  const auto g = bench::experiment_graph(flags, 8000);
  auto& pool = util::ThreadPool::shared();

  std::cout << "replication summary: every paper claim on a "
            << g.num_pages() << "-page crawl\n\n";

  const auto reference = engine::open_system_reference(g, kAlpha, pool);
  const auto url_assign = partition::make_hash_url_partitioner()->partition(g, 16);
  const auto site_assign = partition::make_hash_site_partitioner()->partition(g, 16);

  auto run_engine = [&](engine::Algorithm alg, double p, double t1, double t2,
                        std::span<const std::uint32_t> assignment) {
    engine::EngineOptions opts;
    opts.algorithm = alg;
    opts.alpha = kAlpha;
    opts.delivery_probability = p;
    opts.t1 = t1;
    opts.t2 = t2;
    opts.seed = flags.get_u64("seed", 42);
    engine::DistributedRanking sim(g, assignment, 16, opts, pool);
    sim.set_reference(reference);
    return sim.run_until_error(1e-4, 5000.0, 5.0);
  };

  std::vector<Claim> claims;

  claims.push_back({"§3", "open-system iteration converges (||A|| <= alpha < 1)",
                    [&] {
                      const auto m = rank::LinkMatrix::from_graph(g, kAlpha);
                      return m.contraction_norm() <= kAlpha + 1e-12;
                    }});

  claims.push_back({"§4.3/Fig6", "DPR1 converges to the centralized ranks", [&] {
                      return run_engine(engine::Algorithm::kDPR1, 1.0, 0.0, 6.0,
                                        url_assign)
                          .reached;
                    }});

  claims.push_back({"§4.3/Fig6", "convergence survives 30% message loss", [&] {
                      return run_engine(engine::Algorithm::kDPR1, 0.7, 0.0, 6.0,
                                        url_assign)
                          .reached;
                    }});

  claims.push_back({"§4.3", "DPR2 converges too (one sweep per loop)", [&] {
                      return run_engine(engine::Algorithm::kDPR2, 1.0, 0.0, 6.0,
                                        url_assign)
                          .reached;
                    }});

  claims.push_back(
      {"Thm 4.1/4.2 (Fig 7)", "rank sequence monotone, bounded by R*", [&] {
         engine::EngineOptions opts;
         opts.alpha = kAlpha;
         opts.t1 = 0.0;
         opts.t2 = 6.0;
         opts.seed = 11;
         engine::DistributedRanking sim(g, url_assign, 16, opts, pool);
         sim.set_reference(reference);
         for (const auto& s : sim.run(40.0, 2.0)) {
           if (s.min_rank_delta < -1e-12) return false;
         }
         const auto ranks = sim.global_ranks();
         for (std::size_t i = 0; i < ranks.size(); ++i) {
           if (ranks[i] > reference[i] + 1e-9) return false;
         }
         return true;
       }});

  claims.push_back({"Fig 8", "DPR1 outer rounds < DPR2 rounds and < CPR iterations",
                    [&] {
                      const auto r1 = run_engine(engine::Algorithm::kDPR1, 1.0,
                                                 15.0, 15.0, url_assign);
                      const auto r2 = run_engine(engine::Algorithm::kDPR2, 1.0,
                                                 15.0, 15.0, url_assign);
                      const auto cpr = engine::algorithm1_iterations_to_error(
                          g, kAlpha, 1e-4, pool);
                      return r1.reached && r2.reached &&
                             r1.mean_outer_steps < r2.mean_outer_steps &&
                             r1.mean_outer_steps < static_cast<double>(cpr);
                    }});

  claims.push_back({"§4.1", "site-hash cuts far fewer links than url-hash", [&] {
                      const auto site = partition::compute_partition_stats(
                          g, site_assign, 16);
                      const auto url =
                          partition::compute_partition_stats(g, url_assign, 16);
                      return site.cut_links * 4 < url.cut_links;
                    }});

  claims.push_back({"§4.1", "hash partitions are re-crawl stable", [&] {
                      const auto p = partition::make_hash_site_partitioner();
                      partition::GroupId grp = 0;
                      if (!p->assign_url(g.url(7), 16, grp)) return false;
                      return grp == site_assign[7];
                    }});

  claims.push_back({"§4.4", "indirect transmission: O(N) messages vs O(N^2)", [&] {
                      overlay::PastryConfig cfg;
                      cfg.num_nodes = 128;
                      cfg.seed = 5;
                      const overlay::PastryOverlay o(cfg);
                      const auto d = transport::ExchangeDemand::all_pairs(128, 1);
                      const auto dt = transport::run_direct_exchange(o, d, {});
                      const auto it = transport::run_indirect_exchange(o, d, {});
                      return it.records_delivered == d.total_records() &&
                             it.data_messages * 8 < dt.total_messages();
                    }});

  claims.push_back({"§4.5", "Pastry hops ~ 2.5 at N=1000 (paper's h)", [&] {
                      overlay::PastryConfig cfg;
                      cfg.num_nodes = 1000;
                      cfg.seed = 5;
                      const overlay::PastryOverlay o(cfg);
                      const auto probe = overlay::probe_overlay(o, 1000, 3);
                      return probe.mean_hops > 1.8 && probe.mean_hops < 3.2;
                    }});

  claims.push_back({"Table 1", "capacity model matches the paper exactly", [&] {
                      const auto rows = cost::table1();
                      return rows[0].min_interval_seconds == 7500.0 &&
                             rows[1].min_interval_seconds == 10500.0 &&
                             rows[2].min_interval_seconds == 12000.0 &&
                             rows[0].min_node_bandwidth == 100e3 &&
                             rows[1].min_node_bandwidth == 10e3 &&
                             rows[2].min_node_bandwidth == 1e3;
                    }});

  claims.push_back({"Fig 7", "average rank plateaus well below 1 (leak)", [&] {
                      double avg = 0.0;
                      for (const double r : reference) avg += r;
                      avg /= static_cast<double>(reference.size());
                      return avg > 0.1 && avg < 0.5;
                    }});

  util::Table table({"paper", "claim", "verdict"});
  int failures = 0;
  for (const auto& claim : claims) {
    const bool ok = claim.check();
    failures += ok ? 0 : 1;
    table.row().cell(claim.where).cell(claim.statement).cell(ok ? "PASS" : "FAIL");
  }
  table.print(std::cout, "Replication summary");
  std::cout << '\n'
            << (claims.size() - static_cast<std::size_t>(failures)) << '/'
            << claims.size() << " claims reproduced\n";
  return failures == 0 ? 0 : 1;
}
