// Fig. 8 — "Comparison between different page ranking algorithms": outer
// iterations needed to reach a relative error of 0.01% vs the number of page
// rankers K, for DPR1, DPR2 and CPR (centralized page ranking), with
// p = 1, T1 = T2 = 15 (near-lockstep loops).
//
// Expected shape (paper): DPR1 needs the fewest iterations — even fewer than
// CPR (its inner solves do many sweeps per outer step, so the *outer* count
// is small); DPR2 needs the most; CPR is flat in K; and K barely affects the
// distributed algorithms' convergence.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "csv_out.hpp"
#include "engine/distributed.hpp"
#include "engine/reference.hpp"
#include "partition/partitioner.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {
constexpr double kAlpha = 0.85;
constexpr double kThreshold = 1e-4;  // the paper's 0.01%
}  // namespace

int main(int argc, char** argv) {
  using namespace p2prank;
  const bench::Flags flags(argc, argv,
                           "[--pages=30000] [--max-k=10000] [--seed=42] [--csv=out.csv]");
  const auto g = bench::experiment_graph(flags, 30000);
  auto& pool = util::ThreadPool::shared();

  std::cout << "fig8: iterations to relative error <= 0.01% (p=1, T1=T2=15)\n"
            << "graph: " << g.num_pages() << " pages, " << g.num_links()
            << " internal links\n\n";

  const auto reference = engine::open_system_reference(g, kAlpha, pool);
  // CPR = the paper's "centralized page ranking": classic closed-system
  // Algorithm 1 with damping c = alpha. It renormalizes rank mass every
  // step, so it contracts at ~c — slower than the leaky open system the
  // distributed algorithms iterate, which is why DPR1 can beat it.
  const auto cpr_iterations =
      engine::algorithm1_iterations_to_error(g, kAlpha, kThreshold, pool);

  std::vector<std::uint32_t> ks{2, 10, 100, 1000};
  if (flags.get_u64("max-k", 10000) >= 10000 && g.num_pages() >= 20000) {
    ks.push_back(10000);
  }

  util::Table table({"K (page rankers)", "DPR1 iters", "DPR2 iters", "CPR iters"});
  std::vector<double> dpr1_iters;
  std::vector<double> dpr2_iters;
  for (const auto k : ks) {
    const auto assignment = partition::make_hash_url_partitioner()->partition(g, k);
    double iters[2] = {0.0, 0.0};
    const engine::Algorithm algs[] = {engine::Algorithm::kDPR1,
                                      engine::Algorithm::kDPR2};
    for (int a = 0; a < 2; ++a) {
      engine::EngineOptions opts;
      opts.algorithm = algs[a];
      opts.alpha = kAlpha;
      opts.delivery_probability = 1.0;
      opts.t1 = opts.t2 = 15.0;  // the paper's Fig. 8 wait setting
      opts.seed = flags.get_u64("seed", 42);
      engine::DistributedRanking sim(g, assignment, k, opts, pool);
      sim.set_reference(reference);
      const auto result = sim.run_until_error(kThreshold, 30000.0, 15.0);
      iters[a] = result.reached ? result.mean_outer_steps : -1.0;
    }
    dpr1_iters.push_back(iters[0]);
    dpr2_iters.push_back(iters[1]);
    table.row()
        .cell(std::uint64_t{k})
        .cell(iters[0], 1)
        .cell(iters[1], 1)
        .cell(std::uint64_t{cpr_iterations});
  }
  table.print(std::cout, "Fig. 8 — iterations to 0.01% relative error");
  bench::maybe_write_csv(table, flags.get_string("csv", ""));

  const bool dpr1_fewest =
      dpr1_iters.back() <= dpr2_iters.back() &&
      dpr1_iters.back() <= static_cast<double>(cpr_iterations);
  double d1_min = dpr1_iters[0];
  double d1_max = dpr1_iters[0];
  for (const double v : dpr1_iters) {
    d1_min = std::min(d1_min, v);
    d1_max = std::max(d1_max, v);
  }
  std::cout << "\npaper shape check:\n"
            << "  DPR1 <= DPR2 and DPR1 <= CPR:  " << (dpr1_fewest ? "yes" : "NO")
            << '\n'
            << "  K has little effect on DPR1:   "
            << (d1_max - d1_min <= 0.5 * d1_max ? "yes" : "NO") << " (range "
            << d1_min << ".." << d1_max << ")\n"
            << "  CPR independent of K:          yes (computed once: "
            << cpr_iterations << " iterations)\n";
  return 0;
}
