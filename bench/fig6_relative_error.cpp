// Fig. 6 — "Distributed PageRank converges to the ranks of centralized
// PageRank": relative error ||R − R*||/||R*|| over time, K = 1000 rankers,
// DPR1, three experiment configurations:
//   A: p = 1.0, T1 = 0, T2 = 6     (no loss, fast loops)
//   B: p = 0.7, T1 = 0, T2 = 6     (30% loss)
//   C: p = 0.7, T1 = 0, T2 = 15    (30% loss, slow loops)
// Expected shape: all three decay toward 0; B slower than A; C slowest.
//
// The paper runs 1M pages; the default here is 50k so the bench finishes in
// seconds (--pages=N to scale up). Pages are spread over the K rankers by
// URL hash, matching the paper's K=1000 setup (its 100-site dataset cannot
// feed 1000 rankers at site granularity).
#include <iostream>

#include "bench_common.hpp"
#include "csv_out.hpp"
#include "engine/distributed.hpp"
#include "engine/reference.hpp"
#include "partition/partitioner.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

constexpr double kAlpha = 0.85;

struct Config {
  const char* label;
  double p;
  double t1;
  double t2;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace p2prank;
  const bench::Flags flags(argc, argv,
                           "[--pages=50000] [--k=1000] [--t-end=90] [--seed=42] [--csv=out.csv]");
  const auto g = bench::experiment_graph(flags, 50000);
  const auto k = static_cast<std::uint32_t>(flags.get_u64("k", 1000));
  const double t_end = flags.get_double("t-end", 90.0);

  auto& pool = util::ThreadPool::shared();
  std::cout << "fig6: relative error of DPR1 vs centralized over time\n"
            << "graph: " << g.num_pages() << " pages, " << g.num_links()
            << " internal links; K=" << k << "\n\n";

  const auto assignment = partition::make_hash_url_partitioner()->partition(g, k);
  const auto reference = engine::open_system_reference(g, kAlpha, pool);

  const Config configs[] = {
      {"A", 1.0, 0.0, 6.0},
      {"B", 0.7, 0.0, 6.0},
      {"C", 0.7, 0.0, 15.0},
  };

  std::vector<std::vector<engine::Sample>> series;
  for (const auto& cfg : configs) {
    engine::EngineOptions opts;
    opts.algorithm = engine::Algorithm::kDPR1;
    opts.alpha = kAlpha;
    opts.delivery_probability = cfg.p;
    opts.t1 = cfg.t1;
    opts.t2 = cfg.t2;
    opts.seed = flags.get_u64("seed", 42);
    engine::DistributedRanking sim(g, assignment, k, opts, pool);
    sim.set_reference(reference);
    series.push_back(sim.run(t_end, 1.0));
  }

  util::Table table({"time", "A: rel err %", "B: rel err %", "C: rel err %"});
  for (std::size_t i = 0; i < series[0].size(); ++i) {
    if (i % 5 != 0 && i + 1 != series[0].size()) continue;  // print every 5th
    table.row()
        .cell(series[0][i].time, 0)
        .cell(series[0][i].relative_error * 100.0, 3)
        .cell(series[1][i].relative_error * 100.0, 3)
        .cell(series[2][i].relative_error * 100.0, 3);
  }
  table.print(std::cout, "Fig. 6 — relative error (%) over time, K=" + std::to_string(k));
  bench::maybe_write_csv(table, flags.get_string("csv", ""));

  std::cout << "\npaper shape check:\n"
            << "  decays toward 0:   A " << (series[0].back().relative_error < 0.01 ? "yes" : "NO")
            << ", B " << (series[1].back().relative_error < 0.05 ? "yes" : "NO")
            << ", C " << (series[2].back().relative_error < 0.20 ? "yes" : "NO") << '\n'
            << "  A faster than B:   "
            << (series[0].back().relative_error <= series[1].back().relative_error
                    ? "yes"
                    : "NO")
            << '\n'
            << "  B faster than C:   "
            << (series[1].back().relative_error <= series[2].back().relative_error
                    ? "yes"
                    : "NO")
            << '\n';
  return 0;
}
