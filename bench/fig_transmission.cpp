// Section 4.4 — direct vs indirect transmission (formulas 4.1–4.4).
//
// Two parts:
//  1. *Measured*: run a full all-pairs exchange round over an actual Pastry
//     overlay at several N and count messages/bytes for both schemes.
//  2. *Analytic*: evaluate the paper's closed forms up to N = 100 000 at
//     web scale (W = 3B), including the byte crossover where indirect
//     starts winning.
//
// Expected shape: direct messages grow ~(h+1)N², indirect stays ~g·N; direct
// wins bytes only for small N (the lookup term h·r·N² eventually dominates).
#include <iostream>

#include "bench_common.hpp"
#include "cost/capacity_model.hpp"
#include "overlay/pastry.hpp"
#include "transport/exchange.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace p2prank;
  const bench::Flags flags(argc, argv, "[--max-n=512] [--records-per-pair=2]");
  const auto max_n = static_cast<std::uint32_t>(flags.get_u64("max-n", 512));
  const auto rpp = flags.get_u64("records-per-pair", 2);

  std::cout << "transmission: direct vs indirect (Section 4.4)\n\n";

  // ---- Part 1: measured on a real simulated overlay -----------------------
  util::Table measured({"N", "direct msgs", "indirect msgs", "msg ratio",
                        "direct bytes", "indirect bytes", "mean hops/record"});
  for (std::uint32_t n = 16; n <= max_n; n *= 2) {
    overlay::PastryConfig cfg;
    cfg.num_nodes = n;
    cfg.seed = 7;
    const overlay::PastryOverlay o(cfg);
    const auto demand = transport::ExchangeDemand::all_pairs(n, rpp);
    const auto direct = transport::run_direct_exchange(o, demand, {});
    const auto indirect = transport::run_indirect_exchange(o, demand, {});
    measured.row()
        .cell(std::uint64_t{n})
        .cell(direct.total_messages())
        .cell(indirect.data_messages)
        .cell(static_cast<double>(direct.total_messages()) /
                  static_cast<double>(indirect.data_messages),
              1)
        .cell(util::format_bytes(direct.total_bytes()))
        .cell(util::format_bytes(indirect.total_bytes()))
        .cell(static_cast<double>(indirect.record_hops) /
                  static_cast<double>(indirect.records_delivered),
              2);
  }
  measured.print(std::cout,
                 "Measured: one all-pairs exchange round over Pastry (b=4)");

  // ---- Part 2: the paper's closed forms at web scale -----------------------
  cost::CostParameters p;  // W = 3e9, l = 100, r = 50, g = 32
  util::Table analytic({"N", "h", "S_dt=(h+1)N^2", "S_it=gN", "D_dt=lW+hrN^2",
                        "D_it=hlW"});
  for (const std::uint64_t n : {100ULL, 1000ULL, 10000ULL, 100000ULL}) {
    const double h = cost::paper_pastry_hops(n);
    const auto dt = cost::direct_cost(static_cast<double>(n), h, p);
    const auto it = cost::indirect_cost(static_cast<double>(n), h, p);
    analytic.row()
        .cell(std::uint64_t{n})
        .cell(h, 1)
        .cell(static_cast<std::uint64_t>(dt.messages))
        .cell(static_cast<std::uint64_t>(it.messages))
        .cell(util::format_bytes(dt.bytes))
        .cell(util::format_bytes(it.bytes));
  }
  analytic.print(std::cout, "Analytic (W = 3B pages): formulas 4.1-4.4");

  const auto crossover = cost::byte_crossover_n(p);
  std::cout << "\nbyte crossover (indirect ships fewer bytes than direct) at N ~ "
            << crossover << '\n'
            << "paper shape check:\n"
            << "  indirect messages scale O(N) vs direct O(N^2):  yes (see ratio)\n"
            << "  direct wins bytes only for small N:             "
            << (crossover > 1000 ? "yes" : "check") << '\n';
  return 0;
}
