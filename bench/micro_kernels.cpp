// Google-benchmark microbenchmarks for the hot paths: the SpMV rank sweep,
// whole-graph open-system solves, overlay routing, partitioning, and the
// indirect-transmission pack/unpack loop.
//
// Custom flags (stripped before google-benchmark sees argv):
//   --threads 1,2,8,16     register every pooled variant once per pool size
//                          (each run records a "pool_threads" counter)
//   --determinism-check [--pages N]
//                          no benchmarks: solve the N-page graph dense and
//                          with the worklist kernel on 1- and 2-thread
//                          pools and exit 0 iff all four rank vectors are
//                          bitwise identical (the tier-bench-smoke gate)
#include <benchmark/benchmark.h>

#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "engine/reference.hpp"
#include "graph/synthetic_web.hpp"
#include "overlay/chord.hpp"
#include "overlay/pastry.hpp"
#include "partition/partitioner.hpp"
#include "rank/link_matrix.hpp"
#include "rank/open_system.hpp"
#include "transport/exchange.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace p2prank;

const graph::WebGraph& bench_graph() {
  static const graph::WebGraph g =
      graph::generate_synthetic_web(graph::google2002_config(50000, 42));
  return g;
}

// Hot-loop traffic per sweep (see DESIGN.md "Kernel layout" for the
// accounting): the per-edge multiply streams 20 bytes/edge, the
// contribution sweep 12, plus per-row vector traffic.
std::int64_t multiply_bytes(const rank::LinkMatrix& m) {
  return static_cast<std::int64_t>(m.num_entries()) * 20 +
         static_cast<std::int64_t>(m.dimension()) * 8;
}
std::int64_t contribution_bytes(const rank::LinkMatrix& m) {
  return static_cast<std::int64_t>(m.num_entries()) * 12 +
         static_cast<std::int64_t>(m.dimension()) * 32;
}
std::int64_t fused_bytes(const rank::LinkMatrix& m) {
  return contribution_bytes(m) + static_cast<std::int64_t>(m.dimension()) * 16;
}

void BM_SpmvSweepSerial(benchmark::State& state) {
  const auto& g = bench_graph();
  const auto m = rank::LinkMatrix::from_graph(g, 0.85);
  std::vector<double> x(m.dimension(), 1.0);
  std::vector<double> y(m.dimension());
  for (auto _ : state) {
    m.multiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.num_entries()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          multiply_bytes(m));
}
BENCHMARK(BM_SpmvSweepSerial);

// The pooled sweep kernels are registered from main() — once per entry of
// the --threads list — so one binary invocation produces the whole thread
// scaling curve. Each takes its pool explicitly and records its size.
void BM_SpmvSweepParallel(benchmark::State& state, util::ThreadPool& pool) {
  const auto& g = bench_graph();
  const auto m = rank::LinkMatrix::from_graph(g, 0.85);
  std::vector<double> x(m.dimension(), 1.0);
  std::vector<double> y(m.dimension());
  state.counters["pool_threads"] = static_cast<double>(pool.size());
  for (auto _ : state) {
    m.multiply(x, y, pool);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.num_entries()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          multiply_bytes(m));
}

void BM_SpmvSweepContributionSerial(benchmark::State& state) {
  const auto& g = bench_graph();
  const auto m = rank::LinkMatrix::from_graph(g, 0.85);
  std::vector<double> x(m.dimension(), 1.0);
  std::vector<double> y(m.dimension());
  rank::SweepScratch scratch;
  for (auto _ : state) {
    m.sweep(x, y, scratch);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.num_entries()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          contribution_bytes(m));
}
BENCHMARK(BM_SpmvSweepContributionSerial);

void BM_SpmvSweepContribution(benchmark::State& state, util::ThreadPool& pool) {
  const auto& g = bench_graph();
  const auto m = rank::LinkMatrix::from_graph(g, 0.85);
  std::vector<double> x(m.dimension(), 1.0);
  std::vector<double> y(m.dimension());
  rank::SweepScratch scratch;
  state.counters["pool_threads"] = static_cast<double>(pool.size());
  for (auto _ : state) {
    m.sweep(x, y, scratch, pool);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.num_entries()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          contribution_bytes(m));
}

void BM_SpmvSweepFused(benchmark::State& state, util::ThreadPool& pool) {
  const auto& g = bench_graph();
  const auto m = rank::LinkMatrix::from_graph(g, 0.85);
  std::vector<double> x(m.dimension(), 1.0);
  std::vector<double> y(m.dimension());
  const std::vector<double> forcing(m.dimension(), 0.15);
  rank::SweepScratch scratch;
  state.counters["pool_threads"] = static_cast<double>(pool.size());
  for (auto _ : state) {
    auto stats = m.sweep_and_residual(x, y, forcing, scratch, pool);
    benchmark::DoNotOptimize(stats.l1_delta);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.num_entries()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          fused_bytes(m));
}

// The unfused equivalent of BM_SpmvSweepFused: sweep, add forcing, then a
// separate residual pass — what open_system solves did before fusion.
void BM_SpmvSweepThenResidual(benchmark::State& state, util::ThreadPool& pool) {
  const auto& g = bench_graph();
  const auto m = rank::LinkMatrix::from_graph(g, 0.85);
  std::vector<double> x(m.dimension(), 1.0);
  std::vector<double> y(m.dimension());
  const std::vector<double> forcing(m.dimension(), 0.15);
  rank::SweepScratch scratch;
  state.counters["pool_threads"] = static_cast<double>(pool.size());
  for (auto _ : state) {
    m.sweep(x, y, scratch, pool);
    for (std::size_t v = 0; v < y.size(); ++v) y[v] += forcing[v];
    const double delta = util::l1_distance(y, x);
    benchmark::DoNotOptimize(delta);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.num_entries()));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      (contribution_bytes(m) + static_cast<std::int64_t>(m.dimension()) * 40));
}

// Worklist kernel, forced dense every sweep: the frontier machinery's
// overhead ceiling relative to BM_SpmvSweepFused.
void BM_WorklistDenseFull(benchmark::State& state, util::ThreadPool& pool) {
  const auto& g = bench_graph();
  const auto m = rank::LinkMatrix::from_graph(g, 0.85);
  std::vector<double> x(m.dimension(), 1.0);
  std::vector<double> y(m.dimension());
  const std::vector<double> forcing(m.dimension(), 0.15);
  rank::SweepScratch scratch;
  rank::WorklistOptions wopts;
  rank::WorklistState wstate;
  state.counters["pool_threads"] = static_cast<double>(pool.size());
  for (auto _ : state) {
    auto stats = m.sweep_and_residual_worklist(x, y, forcing, scratch, wstate,
                                               wopts, pool, /*force_dense=*/true);
    benchmark::DoNotOptimize(stats.l1_delta);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.num_entries()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          fused_bytes(m));
}

// Worklist kernel at a contracted steady-state frontier: converge first,
// then keep a 32-row perturbation live so each timed sweep recomputes only
// the rows the wave actually reaches (see tools/bench_report.cpp for the
// JSON-reported twin of this measurement).
void BM_WorklistContracted(benchmark::State& state, util::ThreadPool& pool) {
  const auto& g = bench_graph();
  const auto m = rank::LinkMatrix::from_graph(g, 0.85);
  const std::size_t n = m.dimension();
  std::vector<double> a(n, 1.0);
  std::vector<double> b(n);
  std::vector<double> forcing(n, 0.15);
  rank::SweepScratch scratch;
  rank::WorklistOptions wopts;
  wopts.epsilon = 1e-7;
  wopts.full_interval = 0;
  rank::WorklistState wstate;
  for (int warm = 0; warm < 200; ++warm) {
    auto stats =
        m.sweep_and_residual_worklist(a, b, forcing, scratch, wstate, wopts, pool);
    std::swap(a, b);
    if (stats.l1_delta == 0.0) break;
  }
  state.counters["pool_threads"] = static_cast<double>(pool.size());
  std::size_t tick = 0;
  for (auto _ : state) {
    const double delta = (tick++ & 1) ? -1e-6 : 1e-6;
    for (std::size_t j = 0; j < 32; ++j) {
      const std::size_t row = (j * 1543) % n;
      forcing[row] += delta;
      wstate.mark_forcing_dirty(row);
    }
    auto stats =
        m.sweep_and_residual_worklist(a, b, forcing, scratch, wstate, wopts, pool);
    benchmark::DoNotOptimize(stats.l1_delta);
    std::swap(a, b);
  }
  state.counters["rows_per_sweep"] =
      wstate.sweeps == 0 ? 0.0
                         : static_cast<double>(wstate.rows_computed) /
                               static_cast<double>(wstate.sweeps);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.num_entries()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          fused_bytes(m));
}

void BM_OpenSystemSolve(benchmark::State& state) {
  const auto& g = bench_graph();
  const auto m = rank::LinkMatrix::from_graph(g, 0.85);
  auto& pool = util::ThreadPool::shared();
  rank::SolveOptions opts;
  opts.epsilon = 1e-10;
  for (auto _ : state) {
    auto r = rank::solve_open_system_uniform(m, 1.0, opts, pool);
    benchmark::DoNotOptimize(r.ranks.data());
  }
}
BENCHMARK(BM_OpenSystemSolve)->Unit(benchmark::kMillisecond);

void BM_GraphGeneration(benchmark::State& state) {
  const auto pages = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    auto g = graph::generate_synthetic_web(graph::google2002_config(pages, 7));
    benchmark::DoNotOptimize(g.num_links());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * pages);
}
BENCHMARK(BM_GraphGeneration)->Arg(10000)->Arg(50000)->Unit(benchmark::kMillisecond);

void BM_PastryRoute(benchmark::State& state) {
  overlay::PastryConfig cfg;
  cfg.num_nodes = static_cast<std::uint32_t>(state.range(0));
  cfg.seed = 3;
  const overlay::PastryOverlay o(cfg);
  util::Rng rng(5);
  for (auto _ : state) {
    const auto from = static_cast<overlay::NodeIndex>(rng.below(cfg.num_nodes));
    auto path = o.route(from, overlay::node_id_from_u64(rng.next()));
    benchmark::DoNotOptimize(path.data());
  }
}
BENCHMARK(BM_PastryRoute)->Arg(1000)->Arg(10000);

void BM_ChordRoute(benchmark::State& state) {
  overlay::ChordConfig cfg;
  cfg.num_nodes = static_cast<std::uint32_t>(state.range(0));
  cfg.seed = 3;
  const overlay::ChordOverlay o(cfg);
  util::Rng rng(5);
  for (auto _ : state) {
    const auto from = static_cast<overlay::NodeIndex>(rng.below(cfg.num_nodes));
    auto path = o.route(from, overlay::node_id_from_u64(rng.next()));
    benchmark::DoNotOptimize(path.data());
  }
}
BENCHMARK(BM_ChordRoute)->Arg(1000)->Arg(10000);

void BM_PastryBuild(benchmark::State& state) {
  for (auto _ : state) {
    overlay::PastryConfig cfg;
    cfg.num_nodes = static_cast<std::uint32_t>(state.range(0));
    cfg.seed = 9;
    const overlay::PastryOverlay o(cfg);
    benchmark::DoNotOptimize(o.num_nodes());
  }
}
BENCHMARK(BM_PastryBuild)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_HashSitePartition(benchmark::State& state) {
  const auto& g = bench_graph();
  const auto p = partition::make_hash_site_partitioner();
  for (auto _ : state) {
    auto assignment = p->partition(g, 64);
    benchmark::DoNotOptimize(assignment.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_pages()));
}
BENCHMARK(BM_HashSitePartition);

void BM_HashUrlPartition(benchmark::State& state) {
  const auto& g = bench_graph();
  const auto p = partition::make_hash_url_partitioner();
  for (auto _ : state) {
    auto assignment = p->partition(g, 64);
    benchmark::DoNotOptimize(assignment.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_pages()));
}
BENCHMARK(BM_HashUrlPartition);

void BM_IndirectExchangeRound(benchmark::State& state) {
  overlay::PastryConfig cfg;
  cfg.num_nodes = static_cast<std::uint32_t>(state.range(0));
  cfg.seed = 13;
  const overlay::PastryOverlay o(cfg);
  const auto demand = transport::ExchangeDemand::all_pairs(cfg.num_nodes, 2);
  for (auto _ : state) {
    auto report = transport::run_indirect_exchange(o, demand, {});
    benchmark::DoNotOptimize(report.records_delivered);
  }
}
BENCHMARK(BM_IndirectExchangeRound)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_CentralizedReference(benchmark::State& state) {
  const auto& g = bench_graph();
  auto& pool = util::ThreadPool::shared();
  for (auto _ : state) {
    auto r = engine::open_system_reference(g, 0.85, pool, 1e-10);
    benchmark::DoNotOptimize(r.data());
  }
}
BENCHMARK(BM_CentralizedReference)->Unit(benchmark::kMillisecond);

// --- custom main: --threads sweep, --determinism-check ----------------------

/// Pools for the registered pooled benchmarks; they must outlive
/// RunSpecifiedBenchmarks. Size 0 means the shared hardware-sized pool.
util::ThreadPool& pool_for(unsigned threads) {
  if (threads == 0) return util::ThreadPool::shared();
  static std::vector<std::unique_ptr<util::ThreadPool>> pools;
  pools.push_back(std::make_unique<util::ThreadPool>(threads));
  return *pools.back();
}

void register_pooled_benchmarks(const std::vector<unsigned>& thread_list) {
  for (const unsigned t : thread_list) {
    auto& pool = pool_for(t);
    const std::string suffix = "/threads:" + std::to_string(pool.size());
    const auto reg = [&](const char* name,
                         void (*fn)(benchmark::State&, util::ThreadPool&)) {
      benchmark::RegisterBenchmark(
          (name + suffix).c_str(),
          [fn, &pool](benchmark::State& state) { fn(state, pool); });
    };
    reg("BM_SpmvSweepParallel", BM_SpmvSweepParallel);
    reg("BM_SpmvSweepContribution", BM_SpmvSweepContribution);
    reg("BM_SpmvSweepFused", BM_SpmvSweepFused);
    reg("BM_SpmvSweepThenResidual", BM_SpmvSweepThenResidual);
    reg("BM_WorklistDenseFull", BM_WorklistDenseFull);
    reg("BM_WorklistContracted", BM_WorklistContracted);
  }
}

/// Solve a small graph dense and with the worklist kernel on 1- and
/// 2-thread pools; exit 0 iff all rank vectors are bitwise identical.
/// This is the tier-bench-smoke CI gate — cheap enough for every PR.
int run_determinism_check(std::uint32_t pages) {
  const auto g =
      graph::generate_synthetic_web(graph::google2002_config(pages, 42));
  const auto m = rank::LinkMatrix::from_graph(g, 0.85);
  const std::vector<double> forcing(m.dimension(), (1.0 - 0.85) * 1.0);
  rank::SolveOptions sopts;
  sopts.epsilon = 1e-10;

  std::vector<std::vector<double>> solutions;
  std::vector<std::string> names;
  for (const unsigned threads : {1u, 2u}) {
    util::ThreadPool pool(threads);
    auto dense = rank::solve_open_system(m, forcing, {}, sopts, pool);
    solutions.push_back(std::move(dense.ranks));
    names.push_back("dense/t" + std::to_string(threads));
    rank::WorklistOptions wopts;  // epsilon 0: exact mode
    rank::WorklistState wstate;
    auto sparse = rank::solve_open_system_worklist(m, forcing, {}, sopts, wopts,
                                                   wstate, pool);
    solutions.push_back(std::move(sparse.ranks));
    names.push_back("worklist/t" + std::to_string(threads));
  }

  bool ok = true;
  for (std::size_t v = 1; v < solutions.size(); ++v) {
    if (std::memcmp(solutions[0].data(), solutions[v].data(),
                    solutions[0].size() * sizeof(double)) != 0) {
      std::cerr << "determinism-check: " << names[v]
                << " differs bitwise from " << names[0] << "\n";
      ok = false;
    }
  }
  std::cout << "determinism-check: " << pages << " pages, "
            << m.num_entries() << " edges, " << solutions.size()
            << " solves " << (ok ? "bitwise identical" : "MISMATCH") << "\n";
  return ok ? 0 : 1;
}

std::vector<unsigned> parse_thread_list(const std::string& spec) {
  std::vector<unsigned> out;
  std::istringstream in(spec);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(static_cast<unsigned>(std::stoul(item)));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<unsigned> thread_list;
  bool determinism_check = false;
  std::uint32_t det_pages = 2000;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      thread_list = parse_thread_list(argv[++i]);
    } else if (arg.rfind("--threads=", 0) == 0) {
      thread_list = parse_thread_list(arg.substr(std::strlen("--threads=")));
    } else if (arg == "--determinism-check") {
      determinism_check = true;
    } else if (arg == "--pages" && i + 1 < argc) {
      det_pages = static_cast<std::uint32_t>(std::stoul(argv[++i]));
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (determinism_check) return run_determinism_check(det_pages);

  if (thread_list.empty()) thread_list = {0};  // shared hardware-sized pool
  register_pooled_benchmarks(thread_list);
  int pargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
