// Google-benchmark microbenchmarks for the hot paths: the SpMV rank sweep,
// whole-graph open-system solves, overlay routing, partitioning, and the
// indirect-transmission pack/unpack loop.
#include <benchmark/benchmark.h>

#include <vector>

#include "engine/reference.hpp"
#include "graph/synthetic_web.hpp"
#include "overlay/chord.hpp"
#include "overlay/pastry.hpp"
#include "partition/partitioner.hpp"
#include "rank/link_matrix.hpp"
#include "rank/open_system.hpp"
#include "transport/exchange.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace p2prank;

const graph::WebGraph& bench_graph() {
  static const graph::WebGraph g =
      graph::generate_synthetic_web(graph::google2002_config(50000, 42));
  return g;
}

// Hot-loop traffic per sweep (see DESIGN.md "Kernel layout" for the
// accounting): the per-edge multiply streams 20 bytes/edge, the
// contribution sweep 12, plus per-row vector traffic.
std::int64_t multiply_bytes(const rank::LinkMatrix& m) {
  return static_cast<std::int64_t>(m.num_entries()) * 20 +
         static_cast<std::int64_t>(m.dimension()) * 8;
}
std::int64_t contribution_bytes(const rank::LinkMatrix& m) {
  return static_cast<std::int64_t>(m.num_entries()) * 12 +
         static_cast<std::int64_t>(m.dimension()) * 32;
}
std::int64_t fused_bytes(const rank::LinkMatrix& m) {
  return contribution_bytes(m) + static_cast<std::int64_t>(m.dimension()) * 16;
}

void BM_SpmvSweepSerial(benchmark::State& state) {
  const auto& g = bench_graph();
  const auto m = rank::LinkMatrix::from_graph(g, 0.85);
  std::vector<double> x(m.dimension(), 1.0);
  std::vector<double> y(m.dimension());
  for (auto _ : state) {
    m.multiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.num_entries()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          multiply_bytes(m));
}
BENCHMARK(BM_SpmvSweepSerial);

void BM_SpmvSweepParallel(benchmark::State& state) {
  const auto& g = bench_graph();
  const auto m = rank::LinkMatrix::from_graph(g, 0.85);
  auto& pool = util::ThreadPool::shared();
  std::vector<double> x(m.dimension(), 1.0);
  std::vector<double> y(m.dimension());
  for (auto _ : state) {
    m.multiply(x, y, pool);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.num_entries()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          multiply_bytes(m));
}
BENCHMARK(BM_SpmvSweepParallel);

void BM_SpmvSweepContributionSerial(benchmark::State& state) {
  const auto& g = bench_graph();
  const auto m = rank::LinkMatrix::from_graph(g, 0.85);
  std::vector<double> x(m.dimension(), 1.0);
  std::vector<double> y(m.dimension());
  rank::SweepScratch scratch;
  for (auto _ : state) {
    m.sweep(x, y, scratch);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.num_entries()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          contribution_bytes(m));
}
BENCHMARK(BM_SpmvSweepContributionSerial);

void BM_SpmvSweepContribution(benchmark::State& state) {
  const auto& g = bench_graph();
  const auto m = rank::LinkMatrix::from_graph(g, 0.85);
  auto& pool = util::ThreadPool::shared();
  std::vector<double> x(m.dimension(), 1.0);
  std::vector<double> y(m.dimension());
  rank::SweepScratch scratch;
  for (auto _ : state) {
    m.sweep(x, y, scratch, pool);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.num_entries()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          contribution_bytes(m));
}
BENCHMARK(BM_SpmvSweepContribution);

void BM_SpmvSweepFused(benchmark::State& state) {
  const auto& g = bench_graph();
  const auto m = rank::LinkMatrix::from_graph(g, 0.85);
  auto& pool = util::ThreadPool::shared();
  std::vector<double> x(m.dimension(), 1.0);
  std::vector<double> y(m.dimension());
  const std::vector<double> forcing(m.dimension(), 0.15);
  rank::SweepScratch scratch;
  for (auto _ : state) {
    auto stats = m.sweep_and_residual(x, y, forcing, scratch, pool);
    benchmark::DoNotOptimize(stats.l1_delta);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.num_entries()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          fused_bytes(m));
}
BENCHMARK(BM_SpmvSweepFused);

// The unfused equivalent of BM_SpmvSweepFused: sweep, add forcing, then a
// separate residual pass — what open_system solves did before fusion.
void BM_SpmvSweepThenResidual(benchmark::State& state) {
  const auto& g = bench_graph();
  const auto m = rank::LinkMatrix::from_graph(g, 0.85);
  auto& pool = util::ThreadPool::shared();
  std::vector<double> x(m.dimension(), 1.0);
  std::vector<double> y(m.dimension());
  const std::vector<double> forcing(m.dimension(), 0.15);
  rank::SweepScratch scratch;
  for (auto _ : state) {
    m.sweep(x, y, scratch, pool);
    for (std::size_t v = 0; v < y.size(); ++v) y[v] += forcing[v];
    const double delta = util::l1_distance(y, x);
    benchmark::DoNotOptimize(delta);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.num_entries()));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      (contribution_bytes(m) + static_cast<std::int64_t>(m.dimension()) * 40));
}
BENCHMARK(BM_SpmvSweepThenResidual);

void BM_OpenSystemSolve(benchmark::State& state) {
  const auto& g = bench_graph();
  const auto m = rank::LinkMatrix::from_graph(g, 0.85);
  auto& pool = util::ThreadPool::shared();
  rank::SolveOptions opts;
  opts.epsilon = 1e-10;
  for (auto _ : state) {
    auto r = rank::solve_open_system_uniform(m, 1.0, opts, pool);
    benchmark::DoNotOptimize(r.ranks.data());
  }
}
BENCHMARK(BM_OpenSystemSolve)->Unit(benchmark::kMillisecond);

void BM_GraphGeneration(benchmark::State& state) {
  const auto pages = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    auto g = graph::generate_synthetic_web(graph::google2002_config(pages, 7));
    benchmark::DoNotOptimize(g.num_links());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * pages);
}
BENCHMARK(BM_GraphGeneration)->Arg(10000)->Arg(50000)->Unit(benchmark::kMillisecond);

void BM_PastryRoute(benchmark::State& state) {
  overlay::PastryConfig cfg;
  cfg.num_nodes = static_cast<std::uint32_t>(state.range(0));
  cfg.seed = 3;
  const overlay::PastryOverlay o(cfg);
  util::Rng rng(5);
  for (auto _ : state) {
    const auto from = static_cast<overlay::NodeIndex>(rng.below(cfg.num_nodes));
    auto path = o.route(from, overlay::node_id_from_u64(rng.next()));
    benchmark::DoNotOptimize(path.data());
  }
}
BENCHMARK(BM_PastryRoute)->Arg(1000)->Arg(10000);

void BM_ChordRoute(benchmark::State& state) {
  overlay::ChordConfig cfg;
  cfg.num_nodes = static_cast<std::uint32_t>(state.range(0));
  cfg.seed = 3;
  const overlay::ChordOverlay o(cfg);
  util::Rng rng(5);
  for (auto _ : state) {
    const auto from = static_cast<overlay::NodeIndex>(rng.below(cfg.num_nodes));
    auto path = o.route(from, overlay::node_id_from_u64(rng.next()));
    benchmark::DoNotOptimize(path.data());
  }
}
BENCHMARK(BM_ChordRoute)->Arg(1000)->Arg(10000);

void BM_PastryBuild(benchmark::State& state) {
  for (auto _ : state) {
    overlay::PastryConfig cfg;
    cfg.num_nodes = static_cast<std::uint32_t>(state.range(0));
    cfg.seed = 9;
    const overlay::PastryOverlay o(cfg);
    benchmark::DoNotOptimize(o.num_nodes());
  }
}
BENCHMARK(BM_PastryBuild)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_HashSitePartition(benchmark::State& state) {
  const auto& g = bench_graph();
  const auto p = partition::make_hash_site_partitioner();
  for (auto _ : state) {
    auto assignment = p->partition(g, 64);
    benchmark::DoNotOptimize(assignment.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_pages()));
}
BENCHMARK(BM_HashSitePartition);

void BM_HashUrlPartition(benchmark::State& state) {
  const auto& g = bench_graph();
  const auto p = partition::make_hash_url_partitioner();
  for (auto _ : state) {
    auto assignment = p->partition(g, 64);
    benchmark::DoNotOptimize(assignment.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_pages()));
}
BENCHMARK(BM_HashUrlPartition);

void BM_IndirectExchangeRound(benchmark::State& state) {
  overlay::PastryConfig cfg;
  cfg.num_nodes = static_cast<std::uint32_t>(state.range(0));
  cfg.seed = 13;
  const overlay::PastryOverlay o(cfg);
  const auto demand = transport::ExchangeDemand::all_pairs(cfg.num_nodes, 2);
  for (auto _ : state) {
    auto report = transport::run_indirect_exchange(o, demand, {});
    benchmark::DoNotOptimize(report.records_delivered);
  }
}
BENCHMARK(BM_IndirectExchangeRound)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_CentralizedReference(benchmark::State& state) {
  const auto& g = bench_graph();
  auto& pool = util::ThreadPool::shared();
  for (auto _ : state) {
    auto r = engine::open_system_reference(g, 0.85, pool, 1e-10);
    benchmark::DoNotOptimize(r.data());
  }
}
BENCHMARK(BM_CentralizedReference)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
