// End-to-end effect of the partitioning strategy (Section 4.1 meets 4.2):
// the paper evaluates partitioning by cut links and convergence by
// iterations separately; this bench closes the loop and measures, per
// strategy, the wire records actually shipped until the DPR1 system reaches
// the 0.01% threshold — the quantity the capacity model of Section 4.5
// ultimately bills for.
//
// Expected shape: all strategies converge in a similar number of rounds
// (convergence is a global-contraction property), but site-granularity
// ships several times fewer records per round, so its records-to-converge
// total is far lower. That product is the real argument for hash-by-site.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "engine/distributed.hpp"
#include "engine/reference.hpp"
#include "partition/partition_stats.hpp"
#include "partition/partitioner.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {
constexpr double kAlpha = 0.85;
}

int main(int argc, char** argv) {
  using namespace p2prank;
  const bench::Flags flags(argc, argv, "[--pages=30000] [--k=32] [--seed=42]");
  const auto g = bench::experiment_graph(flags, 30000);
  const auto k = static_cast<std::uint32_t>(flags.get_u64("k", 32));
  auto& pool = util::ThreadPool::shared();

  std::cout << "partition -> convergence traffic (Sections 4.1 + 4.2 + 4.5)\n"
            << "graph: " << g.num_pages() << " pages, " << g.num_links()
            << " internal links; K=" << k << "; threshold 0.01%\n\n";

  const auto reference = engine::open_system_reference(g, kAlpha, pool);

  std::vector<std::unique_ptr<partition::Partitioner>> strategies;
  strategies.push_back(partition::make_random_partitioner(flags.get_u64("seed", 42)));
  strategies.push_back(partition::make_hash_url_partitioner());
  strategies.push_back(partition::make_hash_site_partitioner());
  strategies.push_back(partition::make_balanced_site_partitioner());

  util::Table table({"strategy", "cut links", "rounds (mean)", "records to converge",
                     "bytes @100B/record", "vs hash-url"});
  double url_records = 0.0;
  std::vector<std::pair<std::string, double>> totals;
  for (const auto& strategy : strategies) {
    const auto assignment = strategy->partition(g, k);
    const auto pstats = partition::compute_partition_stats(g, assignment, k);

    engine::EngineOptions opts;
    opts.algorithm = engine::Algorithm::kDPR1;
    opts.alpha = kAlpha;
    opts.t1 = 0.0;
    opts.t2 = 6.0;
    opts.seed = flags.get_u64("seed", 42);
    engine::DistributedRanking sim(g, assignment, k, opts, pool);
    sim.set_reference(reference);
    const auto result = sim.run_until_error(1e-4, 5000.0, 2.0);

    const auto records = static_cast<double>(sim.records_sent());
    if (std::string(strategy->name()) == "hash-url") url_records = records;
    totals.emplace_back(std::string(strategy->name()), records);
    table.row()
        .cell(std::string(strategy->name()))
        .cell(std::uint64_t{pstats.cut_links})
        .cell(result.reached ? result.mean_outer_steps : -1.0, 1)
        .cell(sim.records_sent())
        .cell(util::format_bytes(records * 100.0))
        .cell("");  // filled below once url_records is known
  }

  // Rebuild with ratios (needs the hash-url total).
  util::Table final_table({"strategy", "records to converge", "vs hash-url"});
  for (const auto& [name, records] : totals) {
    final_table.row()
        .cell(name)
        .cell(static_cast<std::uint64_t>(records))
        .cell(url_records > 0.0
                  ? util::format_double(records / url_records, 2) + "x"
                  : "-");
  }
  table.print(std::cout, "Convergence cost by partitioning strategy");
  final_table.print(std::cout, "Traffic ratio summary");

  const double site_total = totals[2].second;
  std::cout << "\nshape check: hash-site total traffic well below hash-url: "
            << (site_total < 0.5 * url_records ? "yes" : "NO") << " ("
            << util::format_double(site_total / url_records, 2) << "x)\n";
  return 0;
}
