// scenario_fuzz — run seeded chaos scenarios against the distributed engine.
//
//   scenario_fuzz --seeds 200            # seeds 1..200, stop-on-violation off
//   scenario_fuzz --seed 17              # one seed, verbose
//   scenario_fuzz --seeds-file tests/corpus/scenario_seeds.txt
//   scenario_fuzz --replay trace.txt     # re-run a written trace
//   scenario_fuzz --seeds 50 --broken    # self-test: every run must FAIL
//   scenario_fuzz --seeds 100 --reliable # force the reliable exchange layer
//   scenario_fuzz --seeds 100 --worklist # force worklist (frontier) sweeps
//   scenario_fuzz --seeds 100 --serve    # attach the serving layer + probes
//   scenario_fuzz --seeds 100 --partition# recovery mode + guaranteed cut
//   scenario_fuzz --seeds 50 --partition --broken  # supervisor self-test:
//                                        # the rejoin ledger fault must be
//                                        # caught on every seed
//
// Each scenario expands a 64-bit seed into a fault schedule (crash / pause /
// resume / loss bursts / checkpoint save+restore / graph update / ranker
// churn / reorder + ack-loss bursts), drives
// DistributedRanking through it, and checks the paper's theorems as runtime
// invariants (see src/check/). On a violation the trace is minimized to a
// minimal reproducing op list and written to --trace-dir as a replayable
// file. Exit code: 0 all clean, 1 violations found, 2 usage error.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "check/minimize.hpp"
#include "check/runner.hpp"
#include "check/scenario.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using p2prank::check::MinimizeResult;
using p2prank::check::Scenario;
using p2prank::check::ScenarioResult;
using p2prank::check::ScenarioRunner;

int usage(std::ostream& err) {
  err << "usage: scenario_fuzz [--seeds N] [--start S] [--seed X]\n"
         "                     [--seeds-file PATH] [--replay PATH]\n"
         "                     [--trace-dir DIR] [--broken] [--no-minimize]\n"
         "                     [--threads T] [--tail-time T] [--quiet]\n"
         "                     [--reliable] [--worklist] [--serve]\n"
         "                     [--partition] [--full-rebuild]\n"
         "  --reliable  force every scenario onto the reliable exchange\n"
         "              layer (epochs + retransmission + failure detection)\n"
         "  --worklist  force every scenario onto exact-mode worklist\n"
         "              sweeps (residual-driven frontier kernel)\n"
         "  --full-rebuild\n"
         "              force every kGraphUpdate through the cold rebuild\n"
         "              path even when it qualifies for the incremental\n"
         "              frontier carry; pairs with --worklist for the A/B\n"
         "              determinism gate (DESIGN.md §14)\n"
         "  --serve     attach a rank-serving snapshot store to every\n"
         "              scenario and probe the serving contract (snapshot\n"
         "              availability, epoch consistency/monotonicity,\n"
         "              top-K vs brute force, restore invalidation)\n"
         "  --partition force recovery mode (eviction/rejoin supervisor +\n"
         "              ledger cross-check) and guarantee every scenario a\n"
         "              partition episode and a corruption burst. With\n"
         "              --broken the supervisor's rejoin ledger update is\n"
         "              deliberately skipped and every run must FAIL.\n";
  return 2;
}

std::string scenario_label(const Scenario& s) {
  std::ostringstream out;
  out << (s.algorithm == p2prank::engine::Algorithm::kDPR1 ? "DPR1" : "DPR2")
      << " pages=" << s.pages << " k=" << s.k << " p=" << s.delivery_p
      << " ops=" << s.ops.size()
      << (s.warm_start_scale > 0.0 ? " warm" : "")
      << (s.reliable ? " reliable" : "")
      << (s.worklist ? " worklist" : "")
      << (s.serve ? " serve" : "")
      << (s.recovery ? " recovery" : "")
      << (s.latency_jitter > 0.0 ? " jitter" : "");
  return out.str();
}

void write_trace(const std::string& dir, const Scenario& minimized,
                 const ScenarioResult& result, const Scenario& original,
                 std::ostream& log) {
  const std::string path =
      dir + "/scenario_" + std::to_string(original.origin_seed) + ".trace";
  std::ofstream out(path);
  if (!out) {
    log << "  (cannot write trace to " << path << ")\n";
    return;
  }
  out << "# minimized reproducing trace (original had " << original.ops.size()
      << " ops)\n";
  for (const auto& v : result.violations) {
    out << "# violation: " << v.invariant << " @t=" << v.time << " — "
        << v.detail << '\n';
  }
  minimized.serialize(out);
  log << "  trace written to " << path << '\n';
}

// --partition: force the scenario into recovery mode with a guaranteed
// partition episode (and a corruption burst) when its own schedule lacks
// them. In the --broken self-test the schedule is replaced outright by one
// hard cut + heal, sized so the supervisor must evict during the cut and
// rejoin after the heal on every seed — the skipped rejoin ledger update
// then trips the runner's cross-check. Everything derives from the
// scenario's own origin seed, so the forced episodes replay exactly.
void force_partition_episode(Scenario& s, bool broken) {
  using p2prank::check::OpKind;
  using p2prank::check::ScheduleOp;
  s.recovery = true;
  s.reliable = true;
  if (broken) {
    // A clean stage for the guaranteed evict→rejoin arc: scripted churn
    // could re-populate the evicted ranker (readmitting it without a
    // rejoin), and a graph update would replace the supervisor mid-arc.
    s.ops.clear();
    if (s.active_time < 80.0) s.active_time = 80.0;
  }
  bool has_cut = false;
  bool has_corrupt = false;
  for (const ScheduleOp& op : s.ops) {
    has_cut |= op.kind == OpKind::kPartition;
    has_corrupt |= op.kind == OpKind::kCorrupt;
  }
  if (!has_cut) {
    ScheduleOp cut;
    cut.kind = OpKind::kPartition;
    cut.time = broken ? 4.0 : s.active_time * 0.15;
    // Isolate one group behind a hard outbound-ack wall; odd seeds keep a
    // trickle inbound so the asymmetric-drop path is exercised too. The
    // self-test needs its evict→rejoin arc on EVERY seed, so there the cut
    // targets the busiest group (a seed-derived mask can land on a group no
    // traffic crosses — no suspicion, no eviction, no fault to catch).
    cut.seed = broken ? p2prank::check::kCutBusiestGroup
                      : std::uint64_t{1} << (s.origin_seed % s.k);
    cut.value = 0.0;
    cut.value2 = (s.origin_seed % 2 == 1 && !broken) ? 0.15 : 0.0;
    s.ops.push_back(cut);
    ScheduleOp heal;
    heal.kind = OpKind::kHeal;
    heal.time = s.active_time * (broken ? 0.6 : 0.65);
    s.ops.push_back(heal);
  }
  if (!has_corrupt && !broken) {
    ScheduleOp on;
    on.kind = OpKind::kCorrupt;
    on.time = s.active_time * 0.3;
    on.value = 0.25;
    s.ops.push_back(on);
    ScheduleOp off = on;
    off.time = s.active_time * 0.5;
    off.value = 0.0;
    s.ops.push_back(off);
  }
  std::stable_sort(s.ops.begin(), s.ops.end(),
                   [](const ScheduleOp& a, const ScheduleOp& b) {
                     return a.time < b.time;
                   });
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::uint64_t num_seeds = 20;
  std::uint64_t start_seed = 1;
  std::optional<std::uint64_t> single_seed;
  std::string seeds_file;
  std::string replay_path;
  std::string trace_dir = ".";
  bool broken = false;
  bool minimize = true;
  bool quiet = false;
  bool force_reliable = false;
  bool force_worklist = false;
  bool force_serve = false;
  bool force_partition = false;
  std::size_t threads = 2;
  p2prank::check::RunnerOptions ropts;

  const auto need_value = [&](std::size_t& i) -> const std::string& {
    if (i + 1 >= args.size()) {
      std::cerr << "missing value for " << args[i] << '\n';
      std::exit(usage(std::cerr));
    }
    return args[++i];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    try {
      if (a == "--seeds") {
        num_seeds = std::stoull(need_value(i));
      } else if (a == "--start") {
        start_seed = std::stoull(need_value(i));
      } else if (a == "--seed") {
        single_seed = std::stoull(need_value(i));
      } else if (a == "--seeds-file") {
        seeds_file = need_value(i);
      } else if (a == "--replay") {
        replay_path = need_value(i);
      } else if (a == "--trace-dir") {
        trace_dir = need_value(i);
      } else if (a == "--threads") {
        threads = std::stoul(need_value(i));
      } else if (a == "--tail-time") {
        ropts.tail_max_time = std::stod(need_value(i));
      } else if (a == "--broken") {
        broken = true;
      } else if (a == "--no-minimize") {
        minimize = false;
      } else if (a == "--reliable") {
        force_reliable = true;
      } else if (a == "--worklist") {
        force_worklist = true;
      } else if (a == "--full-rebuild") {
        ropts.full_graph_rebuild = true;
      } else if (a == "--serve") {
        force_serve = true;
      } else if (a == "--partition") {
        force_partition = true;
      } else if (a == "--quiet") {
        quiet = true;
      } else {
        std::cerr << "unknown argument: " << a << '\n';
        return usage(std::cerr);
      }
    } catch (const std::exception&) {
      std::cerr << "bad value for " << a << '\n';
      return usage(std::cerr);
    }
  }
  // --broken alone breaks the engine (skip-refresh); with --partition it
  // breaks the *supervisor* instead (rejoin ledger fault) — each self-test
  // proves its own checker has teeth.
  ropts.break_skip_refresh = broken && !force_partition;
  ropts.break_supervisor_ledger = broken && force_partition;

  // Assemble the scenario list.
  std::vector<Scenario> scenarios;
  if (!replay_path.empty()) {
    std::ifstream in(replay_path);
    if (!in) {
      std::cerr << "cannot open trace " << replay_path << '\n';
      return 2;
    }
    try {
      scenarios.push_back(Scenario::parse(in));
    } catch (const std::exception& e) {
      std::cerr << "bad trace: " << e.what() << '\n';
      return 2;
    }
  } else if (!seeds_file.empty()) {
    std::ifstream in(seeds_file);
    if (!in) {
      std::cerr << "cannot open seeds file " << seeds_file << '\n';
      return 2;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      scenarios.push_back(Scenario::from_seed(std::stoull(line)));
    }
  } else if (single_seed) {
    scenarios.push_back(Scenario::from_seed(*single_seed));
  } else {
    scenarios.reserve(num_seeds);
    for (std::uint64_t s = start_seed; s < start_seed + num_seeds; ++s) {
      scenarios.push_back(Scenario::from_seed(s));
    }
  }

  if (force_reliable) {
    for (Scenario& s : scenarios) s.reliable = true;
  }
  if (force_worklist) {
    for (Scenario& s : scenarios) s.worklist = true;
  }
  if (force_serve) {
    for (Scenario& s : scenarios) s.serve = true;
  }
  if (force_partition) {
    for (Scenario& s : scenarios) force_partition_episode(s, broken);
  }

  p2prank::util::ThreadPool pool(threads);
  ScenarioRunner runner(pool, ropts);
  p2prank::util::Stopwatch timer;
  std::size_t failures = 0;
  for (const Scenario& scenario : scenarios) {
    const ScenarioResult result = runner.run(scenario);
    const bool failed = !result.ok();
    if (failed) ++failures;
    if (!quiet || failed) {
      std::cout << "seed " << scenario.origin_seed << ": " << result.summary()
                << "  [" << scenario_label(scenario) << "]\n";
    }
    if (failed) {
      for (const auto& v : result.violations) {
        std::cout << "  violation: " << v.invariant << " @t=" << v.time
                  << " — " << v.detail << '\n';
      }
      Scenario to_write = scenario;
      if (minimize) {
        const MinimizeResult shrunk = p2prank::check::minimize_schedule(
            scenario,
            [&](const Scenario& cand) { return !runner.run(cand).ok(); });
        std::cout << "  minimized: " << scenario.ops.size() << " -> "
                  << shrunk.scenario.ops.size() << " ops ("
                  << shrunk.attempts << " replays"
                  << (shrunk.minimal ? ", 1-minimal" : "") << ")\n";
        to_write = shrunk.scenario;
      }
      write_trace(trace_dir, to_write, result, scenario, std::cout);
    }
  }
  std::cout << (broken ? "[self-test mode] " : "") << scenarios.size()
            << " scenario(s), " << failures << " violation(s), "
            << timer.elapsed_seconds() << " s\n";
  if (broken) {
    // Self-test: the deliberately broken engine must be caught every time.
    return failures == scenarios.size() ? 0 : 1;
  }
  return failures == 0 ? 0 : 1;
}
