#include "tools/cli.hpp"

#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

#include "cost/capacity_model.hpp"
#include "engine/checkpoint.hpp"
#include "engine/distributed.hpp"
#include "engine/reference.hpp"
#include "graph/components.hpp"
#include "graph/graph_io.hpp"
#include "graph/graph_stats.hpp"
#include "graph/synthetic_web.hpp"
#include "partition/partition_stats.hpp"
#include "partition/partitioner.hpp"
#include "rank/centralized.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace p2prank::tools {

namespace {

constexpr std::string_view kUsage =
    "usage: p2prank <command> [--key=value ...]\n"
    "\n"
    "commands:\n"
    "  generate --out=FILE [--pages=N] [--sites=N] [--seed=N]\n"
    "      write a synthetic crawl with the paper dataset's statistics\n"
    "  stats --crawl=FILE [--sinks]\n"
    "      structural statistics (+ rank-sink report with --sinks)\n"
    "  rank --crawl=FILE [--alpha=0.85] [--top=20] [--checkpoint=FILE]\n"
    "      centralized open-system PageRank; prints top pages and/or\n"
    "      writes a url/rank checkpoint\n"
    "  simulate --crawl=FILE [--k=16] [--algorithm=dpr1|dpr2] [--p=1.0]\n"
    "           [--t1=0] [--t2=6] [--t-end=60] [--partition=site|url|random]\n"
    "           [--warm=CHECKPOINT] [--seed=N]\n"
    "      run the distributed engine and report the convergence series\n"
    "  plan [--pages=3e9-ish] [--rankers=1000] [--bisection-mbps=100]\n"
    "      Section 4.5 capacity planning\n";

/// Parsed --key=value flags (anything else is an error).
class Args {
 public:
  static bool parse(std::span<const std::string> args, Args& out, std::string& error) {
    for (const auto& arg : args) {
      if (!arg.starts_with("--")) {
        error = "unexpected argument '" + arg + "'";
        return false;
      }
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        out.values_[arg.substr(2)] = "true";
      } else {
        out.values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
    return true;
  }

  [[nodiscard]] std::string get(const std::string& key, std::string fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? std::move(fallback) : it->second;
  }
  [[nodiscard]] double get_double(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }
  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoull(it->second);
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return values_.contains(key);
  }

 private:
  std::map<std::string, std::string> values_;
};

int cmd_generate(const Args& args, std::ostream& out, std::ostream& err) {
  const auto path = args.get("out", "");
  if (path.empty()) {
    err << "generate: --out=FILE is required\n";
    return 2;
  }
  auto cfg = graph::google2002_config(
      static_cast<std::uint32_t>(args.get_u64("pages", 50000)),
      args.get_u64("seed", 42));
  cfg.num_sites = static_cast<std::uint32_t>(args.get_u64("sites", cfg.num_sites));
  const auto g = graph::generate_synthetic_web(cfg);
  graph::save_graph_file(g, path);
  out << "wrote " << g.num_pages() << " pages, " << g.num_links()
      << " internal + " << g.num_external_links() << " external links to "
      << path << '\n';
  return 0;
}

int cmd_stats(const Args& args, std::ostream& out, std::ostream& err) {
  const auto path = args.get("crawl", "");
  if (path.empty()) {
    err << "stats: --crawl=FILE is required\n";
    return 2;
  }
  const auto g = graph::load_graph_file(path);
  graph::print_stats(graph::compute_stats(g), out);
  if (args.has("sinks")) {
    const auto sinks = graph::find_rank_sinks(g);
    out << "rank sinks:         " << sinks.size() << '\n';
    for (std::size_t i = 0; i < std::min<std::size_t>(sinks.size(), 5); ++i) {
      out << "  sink of " << sinks[i].size() << " pages, e.g. "
          << g.url(sinks[i][0]) << '\n';
    }
  }
  return 0;
}

int cmd_rank(const Args& args, std::ostream& out, std::ostream& err) {
  const auto path = args.get("crawl", "");
  if (path.empty()) {
    err << "rank: --crawl=FILE is required\n";
    return 2;
  }
  const auto g = graph::load_graph_file(path);
  const double alpha = args.get_double("alpha", 0.85);
  auto& pool = util::ThreadPool::shared();
  const auto ranks = engine::open_system_reference(g, alpha, pool);

  const auto top_k = args.get_u64("top", 20);
  if (top_k > 0) {
    util::Table table({"#", "page", "rank"});
    const auto top = rank::top_pages(ranks, top_k);
    for (std::size_t i = 0; i < top.size(); ++i) {
      table.row()
          .cell(static_cast<std::uint64_t>(i + 1))
          .cell(g.url(top[i]))
          .cell(ranks[top[i]], 6);
    }
    table.print(out, "Top pages (open-system PageRank, alpha=" +
                         util::format_double(alpha, 2) + ")");
  }
  const auto ckpt = args.get("checkpoint", "");
  if (!ckpt.empty()) {
    engine::save_ranks_file(g, ranks, ckpt);
    out << "checkpoint written to " << ckpt << '\n';
  }
  return 0;
}

int cmd_simulate(const Args& args, std::ostream& out, std::ostream& err) {
  const auto path = args.get("crawl", "");
  if (path.empty()) {
    err << "simulate: --crawl=FILE is required\n";
    return 2;
  }
  const auto g = graph::load_graph_file(path);
  const auto k = static_cast<std::uint32_t>(args.get_u64("k", 16));
  const auto strategy = args.get("partition", "site");

  std::vector<std::uint32_t> assignment;
  if (strategy == "site") {
    assignment = partition::make_hash_site_partitioner()->partition(g, k);
  } else if (strategy == "url") {
    assignment = partition::make_hash_url_partitioner()->partition(g, k);
  } else if (strategy == "random") {
    assignment =
        partition::make_random_partitioner(args.get_u64("seed", 42))->partition(g, k);
  } else {
    err << "simulate: unknown --partition '" << strategy << "'\n";
    return 2;
  }

  engine::EngineOptions opts;
  const auto algorithm = args.get("algorithm", "dpr1");
  if (algorithm == "dpr1") {
    opts.algorithm = engine::Algorithm::kDPR1;
  } else if (algorithm == "dpr2") {
    opts.algorithm = engine::Algorithm::kDPR2;
  } else {
    err << "simulate: unknown --algorithm '" << algorithm << "'\n";
    return 2;
  }
  opts.alpha = args.get_double("alpha", 0.85);
  opts.delivery_probability = args.get_double("p", 1.0);
  opts.t1 = args.get_double("t1", 0.0);
  opts.t2 = args.get_double("t2", 6.0);
  opts.seed = args.get_u64("seed", 42);

  auto& pool = util::ThreadPool::shared();
  const auto reference = engine::open_system_reference(g, opts.alpha, pool);
  engine::DistributedRanking sim(g, assignment, k, opts, pool);
  sim.set_reference(reference);
  if (const auto warm = args.get("warm", ""); !warm.empty()) {
    const auto loaded = engine::load_ranks_file(g, warm);
    sim.warm_start(loaded.ranks);
    out << "warm start: " << loaded.matched << " pages matched, "
        << loaded.skipped << " skipped\n";
  }

  const double t_end = args.get_double("t-end", 60.0);
  const auto samples = sim.run(t_end, std::max(1.0, t_end / 15.0));
  util::Table table({"time", "rel err %", "avg rank", "outer steps"});
  for (const auto& s : samples) {
    table.row()
        .cell(s.time, 1)
        .cell(s.relative_error * 100.0, 4)
        .cell(s.average_rank, 4)
        .cell(s.total_outer_steps);
  }
  table.print(out, algorithm + " over " + std::to_string(k) + " rankers (" +
                       strategy + " partition)");
  out << "messages " << sim.messages_sent() << " (lost " << sim.messages_lost()
      << "), records " << sim.records_sent() << ", final rel err "
      << sim.relative_error_now() << '\n';
  return 0;
}

int cmd_plan(const Args& args, std::ostream& out, std::ostream&) {
  cost::CostParameters p;
  p.total_pages = args.get_double("pages", 3e9);
  p.record_bytes = args.get_double("record-bytes", 100.0);
  p.bisection_bandwidth = args.get_double("bisection-mbps", 100.0) * 1e6;
  const double n = args.get_double("rankers", 1000.0);
  const double h = std::max(1.0, cost::pastry_expected_hops(n));

  const auto dt = cost::direct_cost(n, h, p);
  const auto it = cost::indirect_cost(n, h, p);
  util::Table table({"quantity", "direct", "indirect"});
  table.row()
      .cell("bytes/iteration")
      .cell(util::format_bytes(dt.bytes))
      .cell(util::format_bytes(it.bytes));
  table.row()
      .cell("messages/iteration")
      .cell(static_cast<std::uint64_t>(dt.messages))
      .cell(static_cast<std::uint64_t>(it.messages));
  table.print(out, "Capacity plan: " + util::format_double(n, 0) + " rankers, " +
                       util::format_double(p.total_pages, 0) + " pages");
  out << "min iteration interval (bisection budget): "
      << util::format_seconds(cost::min_iteration_interval(h, p)) << '\n'
      << "node bandwidth needed at that interval:    "
      << util::format_bytes(cost::min_node_bandwidth(
             n, h, cost::min_iteration_interval(h, p), p))
      << "/s\n";
  return 0;
}

}  // namespace

int run_cli(std::span<const std::string> args, std::ostream& out, std::ostream& err) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    out << kUsage;
    return args.empty() ? 2 : 0;
  }
  const std::string& command = args[0];
  Args parsed;
  std::string error;
  if (!Args::parse(args.subspan(1), parsed, error)) {
    err << command << ": " << error << '\n' << kUsage;
    return 2;
  }
  try {
    if (command == "generate") return cmd_generate(parsed, out, err);
    if (command == "stats") return cmd_stats(parsed, out, err);
    if (command == "rank") return cmd_rank(parsed, out, err);
    if (command == "simulate") return cmd_simulate(parsed, out, err);
    if (command == "plan") return cmd_plan(parsed, out, err);
  } catch (const std::exception& e) {
    err << command << ": " << e.what() << '\n';
    return 1;
  }
  err << "unknown command '" << command << "'\n" << kUsage;
  return 2;
}

}  // namespace p2prank::tools
