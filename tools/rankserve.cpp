// rankserve — co-simulated rank serving demo + smoke driver (DESIGN.md §12).
//
//   rankserve                              # defaults: 2000 pages, 10k clients
//   rankserve --pages 5000 --clients 20000 --duration 100
//   rankserve --metrics-out serve_metrics.json --trace-out serve_trace.json
//
// Builds a synthetic web graph, runs the distributed engine with a
// SnapshotStore attached (epoch-swapped snapshots every --interval of
// virtual time), and drives the closed-loop load generator against the live
// store — simulated clients issuing Zipf-keyed point-rank and top-K queries
// in the same virtual timeline the engine sweeps in. Prints QPS and p50/p99
// latency and the serving-contract accounting; exits 1 on any torn-epoch
// read (the contract requires exactly zero) or if nothing was served.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "engine/distributed.hpp"
#include "engine/reference.hpp"
#include "graph/synthetic_web.hpp"
#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/loadgen.hpp"
#include "serve/snapshot.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace p2prank;

struct Options {
  std::uint32_t pages = 2000;
  std::uint64_t seed = 42;
  std::uint32_t k = 16;
  double alpha = 0.85;
  double duration = 60.0;       // virtual time to co-simulate
  double interval = 1.0;        // snapshot publish cadence
  std::size_t top_k_capacity = 16;
  serve::LoadGenOptions load;
  std::string metrics_out;
  std::string trace_out;
  bool quiet = false;
};

int usage(std::ostream& err) {
  err << "usage: rankserve [--pages N] [--seed S] [--k K] [--alpha A]\n"
         "                 [--duration T] [--interval T] [--capacity K]\n"
         "                 [--clients C] [--servers S] [--think T]\n"
         "                 [--topk K] [--topk-fraction F] [--zipf S]\n"
         "                 [--load-seed S] [--metrics-out FILE]\n"
         "                 [--trace-out FILE] [--quiet]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  opts.load.clients = 10000;
  opts.load.servers = 64;
  std::vector<std::string> args(argv + 1, argv + argc);
  const auto need_value = [&](std::size_t& i) -> const std::string& {
    if (i + 1 >= args.size()) {
      std::cerr << "missing value for " << args[i] << '\n';
      std::exit(usage(std::cerr));
    }
    return args[++i];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    try {
      if (a == "--pages") {
        opts.pages = static_cast<std::uint32_t>(std::stoul(need_value(i)));
      } else if (a == "--seed") {
        opts.seed = std::stoull(need_value(i));
      } else if (a == "--k") {
        opts.k = static_cast<std::uint32_t>(std::stoul(need_value(i)));
      } else if (a == "--alpha") {
        opts.alpha = std::stod(need_value(i));
      } else if (a == "--duration") {
        opts.duration = std::stod(need_value(i));
      } else if (a == "--interval") {
        opts.interval = std::stod(need_value(i));
      } else if (a == "--capacity") {
        opts.top_k_capacity = std::stoul(need_value(i));
      } else if (a == "--clients") {
        opts.load.clients =
            static_cast<std::uint32_t>(std::stoul(need_value(i)));
      } else if (a == "--servers") {
        opts.load.servers =
            static_cast<std::uint32_t>(std::stoul(need_value(i)));
      } else if (a == "--think") {
        opts.load.think_mean = std::stod(need_value(i));
      } else if (a == "--topk") {
        opts.load.top_k = std::stoul(need_value(i));
      } else if (a == "--topk-fraction") {
        opts.load.topk_fraction = std::stod(need_value(i));
      } else if (a == "--zipf") {
        opts.load.zipf_exponent = std::stod(need_value(i));
      } else if (a == "--load-seed") {
        opts.load.seed = std::stoull(need_value(i));
      } else if (a == "--metrics-out") {
        opts.metrics_out = need_value(i);
      } else if (a == "--trace-out") {
        opts.trace_out = need_value(i);
      } else if (a == "--quiet") {
        opts.quiet = true;
      } else {
        std::cerr << "unknown argument: " << a << '\n';
        return usage(std::cerr);
      }
    } catch (const std::exception&) {
      std::cerr << "bad value for " << a << '\n';
      return usage(std::cerr);
    }
  }

  try {
    util::Stopwatch wall;
    const auto g = graph::generate_synthetic_web(
        graph::google2002_config(opts.pages, opts.seed));
    auto& pool = util::ThreadPool::shared();
    std::vector<std::uint32_t> assignment(g.num_pages());
    for (std::uint32_t p = 0; p < g.num_pages(); ++p) {
      assignment[p] = p % opts.k;
    }
    const std::vector<double> reference =
        engine::open_system_reference(g, opts.alpha, pool);

    obs::MetricsRegistry metrics;
    obs::Tracer tracer;
    serve::SnapshotStore store(opts.top_k_capacity);

    engine::EngineOptions eo;
    eo.algorithm = engine::Algorithm::kDPR2;
    eo.alpha = opts.alpha;
    eo.seed = opts.seed ^ 0x5e57e0ULL;
    eo.snapshot_sink = &store;
    eo.snapshot_interval = opts.interval;
    engine::DistributedRanking sim(g, assignment, opts.k, eo, pool);
    sim.set_reference(reference);

    serve::LoadGenerator gen(store, g.num_pages(), opts.load, &metrics,
                             opts.trace_out.empty() ? nullptr : &tracer);

    // Co-simulate: one virtual-time slice of sweeps, then the same slice of
    // client traffic against whatever the engine published.
    const double slice = 1.0;
    for (double t = slice; t <= opts.duration + 1e-9; t += slice) {
      (void)sim.run(t, slice);
      gen.run_until(t);
    }

    const serve::LoadGenReport r = gen.report();
    serve::export_serve_metrics(store, gen.server(), metrics);
    metrics.gauge(obs::names::kServeQps) = r.qps;
    metrics.gauge(obs::names::kServeLatencyP50) = r.p50;
    metrics.gauge(obs::names::kServeLatencyP99) = r.p99;
    metrics.gauge(obs::names::kServeMaxQueueDepth) =
        static_cast<double>(r.max_queue_depth);

    if (!opts.quiet) {
      std::cout << "graph: " << opts.pages << " pages, k=" << opts.k
                << "; clients=" << opts.load.clients << " servers="
                << opts.load.servers << " duration=" << opts.duration
                << " (virtual)\n"
                << "served " << r.completed << "/" << r.issued
                << " queries (point=" << r.point_queries << " topk="
                << r.topk_queries << ")\n"
                << "  qps=" << r.qps << " p50=" << r.p50 << " p99=" << r.p99
                << " max=" << r.max_latency << " max_queue_depth="
                << r.max_queue_depth << "\n"
                << "  snapshots=" << store.published() << " (reused "
                << store.buffer_reuses() << " buffers), torn_reads="
                << r.torn_reads << " stale_reads=" << r.stale_reads
                << " unavailable=" << r.unavailable << "\n"
                << "  final relative error " << sim.relative_error_now()
                << ", " << wall.elapsed_seconds() << " s wall\n";
    }

    if (!opts.metrics_out.empty()) {
      std::ofstream out(opts.metrics_out);
      if (!out) throw std::runtime_error("cannot write " + opts.metrics_out);
      metrics.write_json(out);
      if (!opts.quiet) std::cout << "metrics written to " << opts.metrics_out << "\n";
    }
    if (!opts.trace_out.empty()) {
      std::ofstream out(opts.trace_out);
      if (!out) throw std::runtime_error("cannot write " + opts.trace_out);
      tracer.write_chrome_json(out);
      if (!opts.quiet) std::cout << "trace written to " << opts.trace_out << "\n";
    }

    if (r.torn_reads != 0) {
      std::cerr << "rankserve: FAIL — " << r.torn_reads
                << " torn-epoch read(s); the serving contract requires zero\n";
      return 1;
    }
    if (r.completed == 0) {
      std::cerr << "rankserve: FAIL — no queries completed\n";
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "rankserve: " << e.what() << "\n";
    return 1;
  }
}
