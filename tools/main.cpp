// Entry point of the `p2prank` command-line tool; all logic lives in
// cli.cpp so the test suite can drive it.
#include <iostream>
#include <string>
#include <vector>

#include "tools/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return p2prank::tools::run_cli(args, std::cout, std::cerr);
}
