// The p2prank command-line tool, as a library so tests can drive it.
//
// Subcommands:
//   generate  — write a synthetic crawl (google2002 statistics) to a file
//   stats     — structural statistics + rank-sink report for a crawl file
//   rank      — centralized open-system ranking; top-k or full checkpoint
//   simulate  — run the distributed engine (DPR1/DPR2) on a crawl and
//               report the convergence series
//   plan      — Section 4.5 capacity planning (no crawl needed)
//
// Every subcommand reads/writes the text formats of graph_io/checkpoint, so
// the tool composes with itself:  generate | stats | rank | simulate.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

namespace p2prank::tools {

/// Run the CLI. `args` excludes the program name. Output goes to `out`,
/// diagnostics to `err`. Returns a process exit code (0 success, 2 usage).
int run_cli(std::span<const std::string> args, std::ostream& out,
            std::ostream& err);

}  // namespace p2prank::tools
