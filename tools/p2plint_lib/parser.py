"""Lightweight C++ declaration/statement parser.

Builds the FileModel IR from the token stream: classes with annotated
members and declared methods, scoped enums, function definitions with
body extents, lock-acquisition sites with their holding scope, lambdas
handed to the thread pool, range/iterator for-loops, and variable
declarations at file/class/local scope.

This is not a compiler front-end — it is a single-pass bracket-matching
scanner with enough C++ shape knowledge for the rules to reason about
declarations and statements instead of text. It must never throw on real
code: anything it cannot classify it skips. The corpus test
(tests/lint_selftest/tree/) freezes its behaviour so silent parser
regressions fail loudly.
"""

from .lexer import ID, NUM, PUNCT, STR
from .model import (ClassDecl, EnumDecl, FileModel, FunctionDecl, IterFor,
                    LockSite, Member, PoolLambda, RangeFor, VarDecl)

KEYWORDS = {
    "alignas", "alignof", "auto", "bool", "break", "case", "catch", "char",
    "class", "const", "consteval", "constexpr", "constinit", "continue",
    "decltype", "default", "delete", "do", "double", "else", "enum",
    "explicit", "extern", "false", "final", "float", "for", "friend", "goto",
    "if", "inline", "int", "long", "mutable", "namespace", "new", "noexcept",
    "nullptr", "operator", "override", "private", "protected", "public",
    "register", "requires", "return", "short", "signed", "sizeof", "static",
    "static_assert", "struct", "switch", "template", "this", "throw", "true",
    "try", "typedef", "typename", "union", "unsigned", "using", "virtual",
    "void", "volatile", "while",
}

TYPE_INTRO = {"const", "constexpr", "static", "mutable", "inline", "volatile",
              "unsigned", "signed", "typename", "thread_local", "register",
              "constinit", "extern"}

LOCK_TYPES = {"MutexLock", "lock_guard", "unique_lock", "scoped_lock"}
POOL_CALLS = {"parallel_for", "parallel_for_grains",
              "parallel_for_grains_subset", "submit"}

FUNCTION_TAIL = {"const", "noexcept", "override", "final", "mutable",
                 "->", "&", "&&", "try", "requires"}

# Keywords that can open a declaration statement (`double acc = 0.0;`).
STMT_TYPE_KEYWORDS = {"bool", "char", "double", "float", "int", "long",
                      "short", "unsigned", "signed", "const", "constexpr",
                      "static"}


def _is_macroish(text):
    return text.isupper() and ("_" in text or len(text) > 3)


class Parser:
    def __init__(self, f):
        self.f = f
        self.toks = f.tokens
        self.n = len(self.toks)
        self.model = f.model = FileModel()
        self.match = {}
        self._match_brackets()
        self._braces = sorted((o, c) for o, c in self.match.items()
                              if self.toks[o].text == "{")

    def parse(self):
        self._scan_decls(0, self.n, cls=None)
        return self.model

    # -- bracket matching --------------------------------------------------

    def _match_brackets(self):
        stacks = {"(": [], "[": [], "{": []}
        closer = {")": "(", "]": "[", "}": "{"}
        for i, t in enumerate(self.toks):
            if t.kind != PUNCT:
                continue
            if t.text in stacks:
                stacks[t.text].append(i)
            elif t.text in closer:
                st = stacks[closer[t.text]]
                if st:
                    self.match[st.pop()] = i

    def _skip_angles(self, i):
        """Index past the '>' matching the '<' at i, or None if the '<' is
        a comparison (heuristic: hits a statement boundary first)."""
        depth, j = 1, i + 1
        while j < self.n and j < i + 400:
            text = self.toks[j].text
            if text == "<":
                depth += 1
            elif text == ">":
                depth -= 1
                if depth == 0:
                    return j + 1
            elif text == ">>":
                depth -= 2
                if depth <= 0:
                    return j + 1
            elif text in (";", "{", "}") or self.toks[j].kind == STR:
                return None
            elif text in ("&&", "||", "<=", ">="):
                return None
            elif text == "(":
                j = self.match.get(j, j)
            j += 1
        return None

    def _enclosing_scope_end(self, i):
        """Token index of the '}' closing the innermost block containing i."""
        best = self.n
        for o, c in self._braces:
            if o < i < c and c < best:
                best = c
        return best

    # -- declaration scanner ----------------------------------------------

    def _scan_decls(self, lo, hi, cls):
        i = lo
        while i < hi:
            t = self.toks[i]
            text = t.text
            if text == "namespace":
                j = i + 1
                while j < hi and self.toks[j].text not in ("{", ";", "="):
                    j += 1
                if j < hi and self.toks[j].text == "{":
                    close = self.match.get(j, hi)
                    self._scan_decls(j + 1, close, cls)
                    i = close + 1
                else:
                    i = self._skip_past(j, ";")
                continue
            if text == "template":
                if i + 1 < hi and self.toks[i + 1].text == "<":
                    end = self._skip_angles(i + 1)
                    i = end if end else i + 2
                else:
                    i += 1
                continue
            if text == "enum":
                i = self._parse_enum(i, hi)
                continue
            if text in ("class", "struct", "union"):
                i = self._parse_class(i, hi, cls)
                continue
            if text in ("using", "typedef", "friend", "static_assert"):
                i = self._skip_past(i, ";")
                continue
            if text in ("public", "private", "protected") and \
                    i + 1 < hi and self.toks[i + 1].text == ":":
                i += 2
                continue
            if text == "extern" and i + 1 < hi and self.toks[i + 1].kind == STR:
                if i + 2 < hi and self.toks[i + 2].text == "{":
                    close = self.match.get(i + 2, hi)
                    self._scan_decls(i + 3, close, cls)
                    i = close + 1
                else:
                    i += 2
                continue
            if text == ";" or t.kind != ID and text not in ("~", "["):
                i += 1
                continue
            i = self._parse_declaration(i, hi, cls)

    def _skip_past(self, i, stop):
        while i < self.n and self.toks[i].text != stop:
            if self.toks[i].text in ("(", "[", "{"):
                i = self.match.get(i, i)
            i += 1
        return i + 1

    def _parse_enum(self, i, hi):
        j = i + 1
        scoped = j < hi and self.toks[j].text in ("class", "struct")
        if scoped:
            j += 1
        name = ""
        if j < hi and self.toks[j].kind == ID:
            name = self.toks[j].text
            j += 1
        while j < hi and self.toks[j].text not in ("{", ";"):
            j += 1
        if j >= hi or self.toks[j].text == ";":
            return j + 1
        close = self.match.get(j, hi)
        decl = EnumDecl(name, scoped, self.toks[i].line)
        k = j + 1
        expect_name = True
        while k < close:
            tk = self.toks[k]
            if tk.text in ("(", "[", "{"):
                k = self.match.get(k, k) + 1
                continue
            if tk.text == ",":
                expect_name = True
                k += 1
                continue
            if expect_name and tk.kind == ID:
                decl.enumerators.append((tk.text, tk.line))
                expect_name = False
            k += 1
        self.model.enums.append(decl)
        return self._skip_past(close, ";")

    def _parse_class(self, i, hi, outer_cls):
        kind = self.toks[i].text
        j = i + 1
        name = ""
        # Skip attribute macros between the keyword and the name, e.g.
        # `class P2P_CAPABILITY("mutex") Mutex {`.
        while j < hi:
            tj = self.toks[j]
            if tj.kind == ID and _is_macroish(tj.text):
                j += 1
                if j < hi and self.toks[j].text == "(":
                    j = self.match.get(j, j) + 1
                continue
            if tj.text == "[" and j + 1 < hi and self.toks[j + 1].text == "[":
                j = self.match.get(j, j) + 1
                continue
            break
        if j < hi and self.toks[j].kind == ID:
            name = self.toks[j].text
            j += 1
        # Base clause / final, then '{' or ';' (forward declaration).
        while j < hi and self.toks[j].text not in ("{", ";", "("):
            j += 1
        if j >= hi or self.toks[j].text != "{":
            # Forward declaration, or `struct X;`-like use inside a decl:
            # let the declaration parser deal with it from here.
            return j + 1 if j < hi and self.toks[j].text == ";" else i + 1
        close = self.match.get(j, hi)
        decl = ClassDecl(name or "<anon>", kind, self.toks[i].line,
                         body=(j, close))
        self.model.classes.append(decl)
        self._class_stack = getattr(self, "_class_stack", [])
        self._class_stack.append(decl)
        self._scan_decls(j + 1, close, decl)
        self._class_stack.pop()
        return self._skip_past(close, ";")

    # -- declarations: functions, members, variables ------------------------

    def _parse_declaration(self, i, hi, cls):
        """Parse one declaration starting at token i. Returns the index to
        continue scanning from."""
        j = i
        body_open = None
        end = hi
        while j < hi:
            text = self.toks[j].text
            if text in ("(", "["):
                j = self.match.get(j, j) + 1
                continue
            if text == "<":
                past = self._skip_angles(j)
                j = past if past else j + 1
                continue
            if text == ";":
                end = j
                break
            if text == "}":
                # Unbalanced (we ran off the enclosing scope): bail out.
                return j
            if text == "{":
                if self._looks_like_function_body(i, j):
                    body_open = j
                    end = self.match.get(j, hi)
                    break
                # Brace initializer — skip and keep looking for the ';'.
                j = self.match.get(j, j) + 1
                continue
            j += 1
        if body_open is not None:
            fn = self._record_function(i, body_open, end, cls)
            if fn is not None:
                self._parse_statements(fn)
            return end + 1
        # No body: a member / method declaration (class scope) or a
        # variable / free declaration (file scope).
        if cls is not None:
            self._record_class_member(i, end, cls)
        else:
            self._record_var_decl(i, end, scope="file", cls="")
        return end + 1

    def _looks_like_function_body(self, lo, brace):
        """True when the '{' at `brace` opens a function body: the last
        paren group before it is a parameter list followed only by
        qualifier tokens (const/noexcept/->ret/...)."""
        last_close = None
        j = lo
        while j < brace:
            if self.toks[j].text == "(":
                close = self.match.get(j)
                if close is not None and close < brace:
                    last_close = close
                    j = close + 1
                    continue
            j += 1
        if last_close is None:
            return False
        k = last_close + 1
        while k < brace:
            t = self.toks[k]
            if t.text in FUNCTION_TAIL or t.kind == ID or t.text == "::":
                if t.text == "(":
                    return False
                k += 1
                continue
            if t.text == "(":  # noexcept(...) / macro(...)
                k = self.match.get(k, k) + 1
                continue
            if t.text == "=":  # `= 0`? pure virtual has no body; `= delete` no body
                return False
            if t.text in ("*", "&", "&&", "<", ">", ",", "[", "]", ":"):
                k += 1
                continue
            return False
        return True

    def _function_name_at(self, lo, brace_or_end):
        """Find (name_token_index, param_open_index) of the function whose
        declarator lies in [lo, brace_or_end)."""
        j = lo
        while j < brace_or_end:
            t = self.toks[j]
            if t.text == "(" :
                prev = self.toks[j - 1] if j > lo else None
                if prev is not None and prev.kind == ID and \
                        prev.text not in KEYWORDS and not _is_macroish(prev.text):
                    return j - 1, j
                if prev is not None and prev.text == "operator":
                    return j - 1, j
                j = self.match.get(j, j) + 1
                continue
            if t.text == "operator":
                # operator<sym>(: name is the operator itself.
                k = j + 1
                while k < brace_or_end and self.toks[k].text != "(":
                    k += 1
                if k < brace_or_end:
                    return j, k
            if t.text == "<":
                past = self._skip_angles(j)
                j = past if past else j + 1
                continue
            j += 1
        return None, None

    def _record_function(self, lo, body_open, body_close, cls):
        name_idx, popen = self._function_name_at(lo, body_open)
        if name_idx is None:
            return None
        name_tok = self.toks[name_idx]
        name = name_tok.text
        if name == "operator":
            name = "operator" + (self.toks[name_idx + 1].text
                                 if name_idx + 1 < popen else "")
        owner = cls.name if cls is not None else ""
        # Out-of-line definition `Class::name(...)`: qualifier wins.
        if name_idx >= 2 and self.toks[name_idx - 1].text == "::" and \
                self.toks[name_idx - 2].kind == ID:
            owner = self.toks[name_idx - 2].text
        pclose = self.match.get(popen, popen)
        fn = FunctionDecl(name, owner, name_tok.line, (body_open, body_close),
                          self.f.token_text(popen + 1, pclose))
        self.model.functions.append(fn)
        if cls is not None:
            cls.methods.append((name, name_tok.line))
        return fn

    def _record_class_member(self, lo, end, cls):
        toks = self.toks[lo:end]
        if not toks:
            return
        # Method declaration? A top-level paren group preceded by a plain
        # identifier (annotation macros stripped below don't count).
        name_idx, popen = self._function_name_at(lo, end)
        annotations = set()
        kept = []  # (token, orig_index)
        j = lo
        while j < end:
            t = self.toks[j]
            if t.kind == ID and t.text.startswith("P2P_"):
                annotations.add(t.text)
                if j + 1 < end and self.toks[j + 1].text == "(":
                    j = self.match.get(j + 1, j + 1) + 1
                else:
                    j += 1
                continue
            kept.append((t, j))
            j += 1
        if name_idx is not None and not _is_macroish(self.toks[name_idx].text):
            cls.methods.append((self.toks[name_idx].text,
                                self.toks[name_idx].line))
            return
        # Member variable: strip default init (`= ...` / trailing `{...}`),
        # bitfield width, and array extents; the name is the last plain
        # identifier at angle depth 0.
        depth = 0
        cut = len(kept)
        for k, (t, _) in enumerate(kept):
            if depth == 0 and t.text in ("=", ":") and k > 0:
                cut = k
                break
            if t.text == "<":
                depth += 1
            elif t.text == ">" and depth > 0:
                depth -= 1
            elif t.text == ">>" and depth > 0:
                depth = max(0, depth - 2)
            elif t.text == "{" and k > 0:
                cut = k
                break
        kept = kept[:cut]
        while kept and kept[-1][0].text in ("]",):
            # strip `[N]` extents
            k = len(kept) - 1
            depth = 0
            while k >= 0:
                if kept[k][0].text == "]":
                    depth += 1
                elif kept[k][0].text == "[":
                    depth -= 1
                    if depth == 0:
                        break
                k -= 1
            kept = kept[:max(k, 0)]
        name_tok = None
        depth = 0
        for t, _ in kept:
            if t.text == "<":
                depth += 1
            elif t.text == ">":
                depth = max(0, depth - 1)
            elif t.text == ">>":
                depth = max(0, depth - 2)
            elif depth == 0 and t.kind == ID and t.text not in KEYWORDS:
                name_tok = t
        if name_tok is None or len(kept) < 2:
            return
        type_text = " ".join(t.text for t, _ in kept
                             if t is not name_tok and t.text not in
                             ("static", "mutable", "constexpr", "inline"))
        cls.members.append(Member(name_tok.text, type_text, name_tok.line,
                                  annotations))
        self.model.var_decls.append(VarDecl(name_tok.text, type_text,
                                            name_tok.line, "member", cls.name))

    def _record_var_decl(self, lo, end, scope, cls):
        """Best-effort `type name` extraction for the declaration table."""
        j = lo
        while j < end and self.toks[j].text in TYPE_INTRO:
            j += 1
        start = j
        # Type: id(::id)* (<...>)? followed by */&/&& then a name.
        if j >= end or self.toks[j].kind != ID:
            return
        if self.toks[j].text in KEYWORDS and self.toks[j].text not in (
                "auto", "bool", "char", "double", "float", "int", "long",
                "short", "unsigned", "signed", "void"):
            return
        j += 1
        while j < end:
            text = self.toks[j].text
            if text == "::" and j + 1 < end and self.toks[j + 1].kind == ID:
                j += 2
                continue
            if text == "<":
                past = self._skip_angles(j)
                if past is None or past > end:
                    return
                j = past
                continue
            if text in ("*", "&", "&&", "const"):
                j += 1
                continue
            if self.toks[j].kind == ID and text in ("unsigned", "signed",
                                                    "long", "short", "int",
                                                    "char", "double", "float"):
                j += 1
                continue
            break
        if j >= end or self.toks[j].kind != ID or j == start or \
                self.toks[j].text in KEYWORDS:
            return
        name_tok = self.toks[j]
        nxt = self.toks[j + 1].text if j + 1 < end else ";"
        if nxt not in ("=", ";", "(", "{", "[", ","):
            return
        type_text = self.f.token_text(start, j)
        self.model.var_decls.append(
            VarDecl(name_tok.text, type_text, name_tok.line, scope, cls))

    # -- statement layer ----------------------------------------------------

    def _parse_statements(self, fn):
        lo, hi = fn.body
        i = lo + 1
        stmt_start = True
        while i < hi:
            t = self.toks[i]
            text = t.text
            if text == "for" and i + 1 < hi and self.toks[i + 1].text == "(":
                self._parse_for(i, fn)
                i += 2
                stmt_start = False
                continue
            if t.kind == ID and text in LOCK_TYPES:
                i = self._parse_lock_site(i, hi, fn)
                stmt_start = False
                continue
            if t.kind == ID and text in POOL_CALLS and \
                    i + 1 < hi and self.toks[i + 1].text == "(":
                self._parse_pool_call(i, fn)
                i += 2
                stmt_start = False
                continue
            if t.kind == ID and text not in KEYWORDS and \
                    i + 1 < hi and self.toks[i + 1].text == "(" and \
                    (i == lo + 1 or self.toks[i - 1].text != "::" or True):
                fn.calls.add(text)
            if stmt_start and t.kind == ID and (
                    text not in KEYWORDS or text in STMT_TYPE_KEYWORDS):
                end = i
                depth = 0
                while end < hi:
                    et = self.toks[end].text
                    if et in ("(", "[", "{"):
                        end = self.match.get(end, end)
                    elif et == ";":
                        break
                    end += 1
                self._record_var_decl(i, end, "local", fn.cls)
            elif stmt_start and text == "auto":
                end = i
                while end < hi and self.toks[end].text != ";":
                    if self.toks[end].text in ("(", "[", "{"):
                        end = self.match.get(end, end)
                    end += 1
                self._record_var_decl(i, end, "local", fn.cls)
            stmt_start = text in (";", "{", "}", ")", ":") or text == "else"
            i += 1

    def _parse_for(self, i, fn):
        popen = i + 1
        pclose = self.match.get(popen)
        if pclose is None:
            return
        # Top-level ':' inside the parens → range-for.
        colon = None
        j = popen + 1
        while j < pclose:
            text = self.toks[j].text
            if text in ("(", "[", "{"):
                j = self.match.get(j, j) + 1
                continue
            if text == ":":
                colon = j
                break
            if text == ";":
                break
            j += 1
        body_start = pclose + 1
        if body_start < self.n and self.toks[body_start].text == "{":
            body = (body_start, self.match.get(body_start, body_start))
        else:
            end = body_start
            while end < self.n and self.toks[end].text != ";":
                if self.toks[end].text in ("(", "[", "{"):
                    end = self.match.get(end, end)
                end += 1
            body = (body_start - 1, end)  # single statement range
        if colon is not None:
            var_text = self.f.token_text(popen + 1, colon)
            expr = "".join(t.text for t in self.toks[colon + 1:pclose])
            self.model.range_fors.append(
                RangeFor(var_text, expr, body, self.toks[i].line, fn))
            return
        # Iterator walk: for (auto it = X.begin(); ...
        j = popen + 1
        while j < pclose:
            if self.toks[j].text == "=":
                k = j + 1
                if k + 2 < pclose and self.toks[k].kind == ID and \
                        self.toks[k + 1].text == "." and \
                        self.toks[k + 2].text in ("begin", "cbegin"):
                    self.model.iter_fors.append(
                        IterFor(self.toks[k].text, self.toks[i].line, fn))
                break
            j += 1

    def _parse_lock_site(self, i, hi, fn):
        """`[util::|std::] MutexLock name(expr);` (or lock_guard etc.,
        with optional template args). Returns index to continue from."""
        j = i + 1
        if j < hi and self.toks[j].text == "<":
            past = self._skip_angles(j)
            j = past if past else j + 1
        if j >= hi or self.toks[j].kind != ID:
            return i + 1
        j += 1  # past the variable name
        if j >= hi or self.toks[j].text not in ("(", "{"):
            return i + 1
        pclose = self.match.get(j)
        if pclose is None:
            return i + 1
        scope_end = self._enclosing_scope_end(i)
        # scoped_lock may take several mutexes: split top-level commas.
        args, depth, start = [], 0, j + 1
        for k in range(j + 1, pclose):
            text = self.toks[k].text
            if text in ("(", "[", "{"):
                depth += 1
            elif text in (")", "]", "}"):
                depth -= 1
            elif text == "," and depth == 0:
                args.append((start, k))
                start = k + 1
        if start < pclose:
            args.append((start, pclose))
        for (a, b) in args:
            toks = self.toks[a:b]
            while len(toks) >= 2 and toks[0].text == "this" and \
                    toks[1].text == "->":
                toks = toks[2:]
            expr = "".join(t.text for t in toks)
            if expr:
                self.model.locks.append(
                    LockSite(expr, self.toks[i].line, i, scope_end, fn))
        return pclose + 1

    def _parse_pool_call(self, i, fn):
        popen = i + 1
        pclose = self.match.get(popen)
        if pclose is None:
            return
        call = self.toks[i].text
        j = popen + 1
        while j < pclose:
            text = self.toks[j].text
            if text == "[" and self.toks[j - 1].text in ("(", ",", "=",
                                                         "return"):
                bclose = self.match.get(j)
                if bclose is None:
                    j += 1
                    continue
                capture = self.f.token_text(j + 1, bclose)
                k = bclose + 1
                if k < pclose and self.toks[k].text == "(":
                    k = self.match.get(k, k) + 1
                while k < pclose and self.toks[k].text in ("mutable",
                                                           "noexcept", "->"):
                    if self.toks[k].text == "->":
                        while k < pclose and self.toks[k].text != "{":
                            k += 1
                        break
                    k += 1
                while k < pclose and self.toks[k].text != "{":
                    k += 1
                if k < pclose:
                    lclose = self.match.get(k, k)
                    self.model.pool_lambdas.append(
                        PoolLambda(call, capture, (k, lclose),
                                   self.toks[j].line, fn))
                    j = lclose + 1
                    continue
            elif text in ("(", "{"):
                j = self.match.get(j, j) + 1
                continue
            j += 1


def parse_file(f):
    return Parser(f).parse()
