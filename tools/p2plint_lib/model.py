"""IR and source-file model shared by the parser and the rules."""

import re
from dataclasses import dataclass, field

from . import lexer

CXX_SUFFIXES = {".cpp", ".hpp", ".cc", ".h", ".cxx", ".hxx"}

# A suppression is a *comment* pragma; it can never match inside a string
# literal because allows are collected from the comment stream only.
ALLOW_RE = re.compile(r"p2plint:\s*allow\(([a-z0-9-]+)\)(:\s*(\S[^\n]*))?")


class Violation:
    def __init__(self, path, line, rule, message):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class Suppression:
    path: str
    line: int  # line the pragma appears on
    rule: str
    reason: str  # "" when the author omitted one (a debt the lint rejects)


@dataclass
class Member:
    name: str
    type_text: str
    line: int
    annotations: set = field(default_factory=set)  # P2P_* macro names


@dataclass
class ClassDecl:
    name: str
    kind: str  # "class" | "struct"
    line: int
    members: list = field(default_factory=list)   # [Member]
    methods: list = field(default_factory=list)   # [(name, line)] declared in-body
    body: tuple = (0, 0)  # token index range of the braces (open, close)


@dataclass
class EnumDecl:
    name: str
    scoped: bool
    line: int
    enumerators: list = field(default_factory=list)  # [(name, line)]


@dataclass
class FunctionDecl:
    name: str
    cls: str  # owning class name ("" for free functions)
    line: int
    body: tuple  # token index range (open brace, close brace)
    params_text: str
    calls: set = field(default_factory=set)  # bare callee names in the body


@dataclass
class LockSite:
    mutex: str  # normalized lock expression, e.g. "wake_mutex_"
    line: int
    tok: int  # token index of the declaration
    scope_end: int  # token index of the '}' closing the holding block
    func: FunctionDecl = None


@dataclass
class PoolLambda:
    call: str  # parallel_for / parallel_for_grains / ... / submit
    capture: str  # capture list text, e.g. "&" or "this, &x"
    body: tuple  # token index range of the lambda body braces
    line: int
    func: FunctionDecl = None


@dataclass
class RangeFor:
    var_text: str  # declaration before the ':'
    expr: str  # normalized range expression, e.g. "m" or "it->second"
    body: tuple  # token index range (may be a single statement: (i, j))
    line: int
    func: FunctionDecl = None


@dataclass
class IterFor:
    name: str  # X in `for (auto it = X.begin(); ...)`
    line: int
    func: FunctionDecl = None


@dataclass
class VarDecl:
    name: str
    type_text: str
    line: int
    scope: str  # "file" | "local" | "member"
    cls: str = ""


@dataclass
class FileModel:
    classes: list = field(default_factory=list)
    enums: list = field(default_factory=list)
    functions: list = field(default_factory=list)
    locks: list = field(default_factory=list)
    pool_lambdas: list = field(default_factory=list)
    range_fors: list = field(default_factory=list)
    iter_fors: list = field(default_factory=list)
    var_decls: list = field(default_factory=list)
    backend: str = "builtin"


class SourceFile:
    """One translation unit: raw text, token stream, comments, suppression
    map, and (after parsing) the declaration/statement IR."""

    def __init__(self, path, scoped_path, text):
        self.path = path                # printable path
        self.scoped_path = scoped_path  # path used for rule scoping
        self.text = text
        self.lines = text.splitlines()
        self.tokens, self.comments = lexer.tokenize(text)
        self.suppressions = []  # [Suppression]
        self.allows = self._collect_allows()
        self.model = FileModel()

    def allowed(self, line_no, rule):
        return rule in self.allows.get(line_no, ())

    def token_text(self, lo, hi):
        return " ".join(t.text for t in self.tokens[lo:hi])

    def _collect_allows(self):
        """Map line number -> set of suppressed rules. A pragma suppresses
        every line its comment spans plus the next line holding a token (so
        a block comment above the offending statement works)."""
        allows = {}
        token_lines = sorted({t.line for t in self.tokens})
        for c in self.comments:
            for m in ALLOW_RE.finditer(c.text):
                rule, reason = m.group(1), (m.group(3) or "").strip()
                self.suppressions.append(
                    Suppression(self.path, c.line, rule, reason))
                for ln in range(c.line, c.end_line + 1):
                    allows.setdefault(ln, set()).add(rule)
                nxt = next((ln for ln in token_lines if ln > c.end_line), None)
                if nxt is not None:
                    allows.setdefault(nxt, set()).add(rule)
        return allows


class Context:
    def __init__(self, files):
        self.files = files
        self.by_path = {f.path: f for f in files}

    def header_partner(self, f):
        """Files sharing f's stem (the paired header of a .cpp and vice
        versa) — member types are declared there."""
        stem = f.path.rsplit(".", 1)[0]
        return [g for g in self.files
                if g is not f and g.path.rsplit(".", 1)[0] == stem]
