"""p2plint_lib — the v2 analyzer behind tools/p2plint.

A Python C++ lexer (lexer.py) feeds a lightweight declaration/statement
parser (parser.py) that builds a per-file IR (model.py): classes with
annotated members, enums, function bodies, lock-acquisition sites, pool
lambdas, loops, and local declarations. Rules (rules/) consume the IR
instead of per-line regexes, which removes the classic regex blind spots:
member types resolved across the paired header, suppressions that only
match in comments (never in string literals), and iteration hidden behind
algorithms. An optional clang AST backend (clang_backend.py) cross-checks
the declaration layer when clang++ is on PATH and always falls back to the
built-in parser, so the wall never silently skips.

Entry point: engine.main() (tools/p2plint is a thin shim).
"""

__version__ = "2.0"
