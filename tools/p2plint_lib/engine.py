"""p2plint engine: file loading, rule driving, and the CLI.

Modes beyond plain linting:
  --self-test DIR          per-rule fixture contract (bad_* fires exactly
                           its rule, allow_* is clean)
  --report-suppressions    every allow() pragma with file/line/reason;
                           fails on reasonless suppressions (debt gate)
  --broken                 non-vacuity probe: mutate the real tree in
                           memory (add an unregistered op, an unserialized
                           field, an orphan metric name, strip a version
                           literal) and require the matrix rules to fire
  --corpus-check DIR       lint a frozen mini-tree and diff the exact
                           violation list against its expectations file

Exit codes: 0 clean, 1 violations / failed check, 2 usage error.
"""

import argparse
import re
import sys
from pathlib import Path

from . import clang_backend
from .model import CXX_SUFFIXES, Context, SourceFile
from .parser import parse_file
from .rules import RULES


def load_files(root, paths, scope_override=None):
    files = []
    for p in paths:
        p = (root / p) if not p.is_absolute() else p
        candidates = sorted(p.rglob("*")) if p.is_dir() else [p]
        for c in candidates:
            if c.suffix not in CXX_SUFFIXES or not c.is_file():
                continue
            try:
                rel = c.relative_to(root).as_posix()
            except ValueError:
                rel = c.as_posix()
            scoped = scope_override + c.name if scope_override else rel
            f = SourceFile(rel, scoped, c.read_text(errors="replace"))
            f.real_path = c
            try:
                parse_file(f)
            except Exception as e:  # parser contract is "never throw" —
                # if it does, lint with the partial model but say so loudly.
                print(f"p2plint: warning: parser error in {rel}: {e}",
                      file=sys.stderr)
            files.append(f)
    return files


def run_backend(files, root, backend):
    """Returns a notice string for the user (or "")."""
    if backend == "builtin":
        return ""
    clang = clang_backend.clang_path()
    if clang is None:
        if backend == "clang":
            raise SystemExit(
                "p2plint: --backend clang requested but clang++ is not on "
                "PATH")
        return ("note: clang++ not on PATH — builtin parser only (full rule "
                "coverage; the clang backend is a hardening cross-check)")
    hardened = 0
    for f in files:
        real = getattr(f, "real_path", None)
        if real is not None and clang_backend.augment_file(
                f, root, real, clang):
            hardened += 1
    return f"clang backend cross-checked {hardened} file(s)"


def lint(files):
    ctx = Context(files)
    violations = []
    for name, fn, scope, kind in RULES:
        if kind == "file":
            for f in files:
                if scope and not f.scoped_path.startswith(scope):
                    continue
                violations.extend(fn(f, ctx))
        else:
            violations.extend(fn(ctx, scope))
    out = []
    for v in violations:
        f = ctx.by_path.get(v.path)
        if f is not None and f.allowed(v.line, v.rule):
            continue
        out.append(v)
    return out


def self_test(fixture_dir):
    """Per-rule fixtures: bad_<slug>.cpp must trigger exactly its rule,
    allow_<slug>.cpp must be clean (proving the escape hatch works)."""
    fixture_dir = Path(fixture_dir)
    failures = 0
    for rule, _, _, _ in RULES:
        slug = rule.replace("-", "_")
        for kind in ("bad", "allow"):
            path = fixture_dir / f"{kind}_{slug}.cpp"
            if not path.is_file():
                print(f"FAIL {rule}: missing fixture {path.name}")
                failures += 1
                continue
            # Each fixture lints alone, pretending to live under src/ so
            # path-scoped rules apply.
            path = path.resolve()
            files = load_files(path.parent, [path], scope_override="src/")
            got = lint(files)
            rules_hit = {v.rule for v in got}
            if kind == "bad":
                ok = rules_hit == {rule}
                detail = (f"hit {sorted(rules_hit) or 'nothing'}, want "
                          f"exactly ['{rule}']")
            else:
                ok = not got
                detail = "clean" if ok else "; ".join(str(v) for v in got)
            status = "ok  " if ok else "FAIL"
            print(f"{status} {rule}: {path.name} ({detail})")
            failures += 0 if ok else 1
    if failures:
        print(f"p2plint self-test: {failures} failure(s)")
        return 1
    print(f"p2plint self-test: all {2 * len(RULES)} fixtures behave")
    return 0


def report_suppressions(files):
    """Suppression-debt gate: every allow() is a reviewable declaration —
    list them all; a suppression without a reason fails the gate."""
    sup = sorted((s for f in files for s in f.suppressions),
                 key=lambda s: (s.path, s.line))
    debt = 0
    for s in sup:
        if s.reason:
            print(f"{s.path}:{s.line}: allow({s.rule}): {s.reason}")
        else:
            print(f"{s.path}:{s.line}: allow({s.rule}): <NO REASON GIVEN>")
            debt += 1
    print(f"p2plint: {len(sup)} suppression(s), {debt} without a reason")
    if debt:
        print("p2plint: reasonless suppressions are debt — append "
              "': why it is safe' to each allow()")
        return 1
    return 0


# ---------------------------------------------------------------------------
# --broken: prove the matrix rules are non-vacuous against the real tree.

def _insert_after_open_brace(anchor):
    def transform(text, payload):
        i = text.find(anchor)
        if i < 0:
            return None
        j = text.find("{", i)
        if j < 0:
            return None
        return text[:j + 1] + payload + text[j + 1:]
    return transform


_VERSION_LIT_RE = re.compile(r'("[^"\n]*?)\bv\d+\b([^"\n]*")')

_BROKEN_PROBES = [
    # (expected rules, description, file predicate, transform, payload)
    (["scenario-op-registry", "scenario-op-matrix"],
     "unregistered+unemitted OpKind enumerator",
     lambda f: "enum class OpKind" in f.text,
     _insert_after_open_brace("enum class OpKind"),
     "\n  kP2plintBrokenProbe,"),
    (["engine-options-registry"],
     "EngineOptions field missing from validated()",
     lambda f: "struct EngineOptions" in f.text,
     _insert_after_open_brace("struct EngineOptions"),
     "\n  int p2plint_broken_probe_ = 0;"),
    (["options-serialize-matrix"],
     "Scenario field missing from serialize()/parse()",
     lambda f: "struct Scenario" in f.text and "serialize" in f.text,
     _insert_after_open_brace("struct Scenario"),
     "\n  int p2plint_broken_probe_ = 0;"),
    # Anchor on an UNINDENTED constant so the payload lands at file scope
    # (namespace body in metric_names.hpp), never inside a function whose
    # indented local `constexpr std::string_view` would shadow the anchor.
    (["metric-names-referenced"],
     "registered metric name nothing references",
     lambda f: re.search(r"\ninline constexpr std::string_view k\w", f.text),
     lambda text, payload: re.sub(
         r"(\ninline constexpr std::string_view k)", payload + r"\1",
         text, count=1),
     "\ninline constexpr std::string_view kP2plintBrokenProbe = "
     "\"p2p.broken.probe\";"),
    (["wire-format-version"],
     "wire writer whose version literal was stripped",
     lambda f: _VERSION_LIT_RE.search(f.text) is not None
     and "std::ostream&" in f.text.replace(" ", "")
     and re.search(r"\b(serialize|save_\w+|write_\w+)\s*\(", f.text),
     lambda text, payload: _VERSION_LIT_RE.sub(r"\1vX\2", text),
     ""),
]


def broken_check(root, paths):
    """Mutate the real tree in memory, one defect per probe, and require
    the matching rule(s) to fire. A probe that stays silent means the
    matrix went vacuous (anchor drifted, rule broke) — fail loudly."""
    base = load_files(root, paths)
    failures = 0
    for rules_expected, desc, pred, transform, payload in _BROKEN_PROBES:
        target = next((f for f in base if pred(f)), None)
        if target is None:
            print(f"FAIL broken-probe [{desc}]: no file in the tree matches "
                  "the probe anchor")
            failures += 1
            continue
        mutated_text = transform(target.text, payload)
        if mutated_text is None or mutated_text == target.text:
            print(f"FAIL broken-probe [{desc}]: mutation did not apply "
                  f"in {target.path}")
            failures += 1
            continue
        mutated = SourceFile(target.path, target.scoped_path, mutated_text)
        try:
            parse_file(mutated)
        except Exception as e:
            print(f"FAIL broken-probe [{desc}]: parser error: {e}")
            failures += 1
            continue
        trial = [mutated if f is target else f for f in base]
        fired = {v.rule for v in lint(trial)}
        missing = [r for r in rules_expected if r not in fired]
        if missing:
            print(f"FAIL broken-probe [{desc}] in {target.path}: expected "
                  f"{rules_expected} to fire, missing {missing} "
                  f"(fired: {sorted(fired) or 'nothing'})")
            failures += 1
        else:
            print(f"ok   broken-probe [{desc}] in {target.path}: "
                  f"{rules_expected} fired")
    if failures:
        print(f"p2plint --broken: {failures} vacuous matrix rule(s)")
        return 1
    print(f"p2plint --broken: all {len(_BROKEN_PROBES)} probes caught")
    return 0


def corpus_check(tree_dir):
    """Frozen mini-tree regression: lint tree/src and require the exact
    expected violation list (tree/expected_violations.txt). Any diff — a
    new false positive, a lost true positive, a drifted line number — is a
    parser/rule regression."""
    tree = Path(tree_dir).resolve()
    expected_file = tree / "expected_violations.txt"
    if not expected_file.is_file():
        print(f"p2plint --corpus-check: missing {expected_file}")
        return 2
    files = load_files(tree, [Path("src")])
    got = sorted((str(v) for v in lint(files)))
    want = [ln for ln in expected_file.read_text().splitlines()
            if ln.strip() and not ln.lstrip().startswith("#")]
    if got == want:
        print(f"p2plint --corpus-check: {len(got)} expected violation(s), "
              "exact match")
        return 0
    for ln in got:
        if ln not in want:
            print(f"UNEXPECTED: {ln}")
    for ln in want:
        if ln not in got:
            print(f"MISSING:    {ln}")
    print("p2plint --corpus-check: violation list drifted from "
          f"{expected_file.name}")
    return 1


def main(argv=None):
    ap = argparse.ArgumentParser(prog="p2plint", add_help=True)
    ap.add_argument("paths", nargs="*", default=None)
    ap.add_argument("--root", default=None,
                    help="repo root (default: script's parent)")
    ap.add_argument("--self-test", metavar="DIR", default=None)
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--report-suppressions", action="store_true")
    ap.add_argument("--broken", action="store_true",
                    help="non-vacuity probe over the real tree")
    ap.add_argument("--corpus-check", metavar="DIR", default=None)
    ap.add_argument("--backend", choices=("auto", "builtin", "clang"),
                    default="auto")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule, fn, scope, kind in RULES:
            doc = " ".join((fn.__doc__ or "").split())
            tag = scope or "all files"
            if kind == "global":
                tag += ", cross-file"
            print(f"{rule} [{tag}]\n    {doc}")
        return 0
    if args.self_test:
        return self_test(args.self_test)
    if args.corpus_check:
        return corpus_check(args.corpus_check)

    default_root = Path(__file__).resolve().parent.parent.parent
    root = Path(args.root) if args.root else default_root
    paths = [Path(p) for p in (args.paths or ["src", "tools"])]

    if args.broken:
        return broken_check(root, paths)

    files = load_files(root, paths)
    if not files:
        print("p2plint: no C++ sources found", file=sys.stderr)
        return 2
    if args.report_suppressions:
        return report_suppressions(files)
    notice = run_backend(files, root, args.backend)
    if notice:
        print(f"p2plint: {notice}", file=sys.stderr)
    violations = lint(files)
    for v in sorted(violations, key=lambda v: (v.path, v.line)):
        print(v)
    if violations:
        print(f"p2plint: {len(violations)} violation(s) in "
              f"{len(files)} files")
        return 1
    print(f"p2plint: clean ({len(files)} files, {len(RULES)} rules)")
    return 0
