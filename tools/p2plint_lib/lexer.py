"""C++ token stream for the built-in parser.

Tokenizes a translation unit into identifiers, numbers, string/char
literals, and punctuation, with 1-based line numbers. Comments are
collected separately (they carry suppression pragmas and never shadow
code), and preprocessor lines are skipped as whole units (respecting
backslash continuations) so a macro body never masquerades as a
declaration. Raw strings, encoding prefixes, digit separators, and escaped
quotes are handled — a pattern inside a string literal can never be
mistaken for code, which was the old regex lint's blind spot.
"""

from dataclasses import dataclass

ID = "id"
NUM = "num"
STR = "str"
CHR = "chr"
PUNCT = "punct"


@dataclass
class Token:
    kind: str
    text: str
    line: int

    def __repr__(self):
        return f"{self.kind}:{self.text}@{self.line}"


@dataclass
class Comment:
    line: int  # first line of the comment
    end_line: int
    text: str  # contents without the // or /* */ delimiters


_PUNCT3 = ("<<=", ">>=", "...", "->*")
_PUNCT2 = ("::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&",
           "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=")
_STR_PREFIXES = {"L", "u8", "u", "U", "R", "LR", "uR", "u8R", "UR"}


def tokenize(text):
    """Return (tokens, comments). Never raises on malformed input — the
    lexer is a lint front-end, not a compiler, so it degrades to skipping
    the character it cannot classify."""
    tokens, comments = [], []
    i, n, line = 0, len(text), 1

    def take_line_comment(start):
        nonlocal i
        j = text.find("\n", start)
        j = n if j < 0 else j
        comments.append(Comment(line, line, text[start + 2:j]))
        i = j

    def take_block_comment(start):
        nonlocal i, line
        first = line
        j = text.find("*/", start + 2)
        j = n if j < 0 else j + 2
        body = text[start + 2:max(start + 2, j - 2)]
        end = first + body.count("\n")
        comments.append(Comment(first, end, body))
        line = end
        i = j

    def take_string(start, quote):
        nonlocal i, line
        j = start + 1
        while j < n:
            c = text[j]
            if c == "\\" and j + 1 < n:
                j += 2
                continue
            if c == "\n":
                line += 1  # unterminated; tolerate
                j += 1
                continue
            if c == quote:
                j += 1
                break
            j += 1
        tokens.append(Token(STR if quote == '"' else CHR,
                            text[start:j], tokens_line))
        i = j

    def take_raw_string(start):
        # start points at the opening '"' of R"delim( ... )delim"
        nonlocal i, line
        j = text.find("(", start)
        if j < 0:
            i = start + 1
            return
        delim = text[start + 1:j]
        close = ")" + delim + '"'
        k = text.find(close, j + 1)
        k = n if k < 0 else k + len(close)
        lit = text[start:k]
        tokens.append(Token(STR, lit, tokens_line))
        line += lit.count("\n")
        i = k

    while i < n:
        c = text[i]
        tokens_line = line
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "#":
            # Preprocessor directive: only when it starts the line (modulo
            # whitespace). Consume through continuations.
            ls = text.rfind("\n", 0, i) + 1
            if text[ls:i].strip() == "":
                while i < n:
                    j = text.find("\n", i)
                    if j < 0:
                        i = n
                        break
                    if text[j - 1] == "\\" if j > 0 else False:
                        line += 1
                        i = j + 1
                        continue
                    line += 1
                    i = j + 1
                    break
                continue
            i += 1
            tokens.append(Token(PUNCT, "#", tokens_line))
            continue
        if c == "/" and i + 1 < n:
            if text[i + 1] == "/":
                take_line_comment(i)
                continue
            if text[i + 1] == "*":
                take_block_comment(i)
                continue
        if c == '"':
            take_string(i, '"')
            continue
        if c == "'":
            take_string(i, "'")
            continue
        if c.isalpha() or c == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            if word in _STR_PREFIXES and j < n and text[j] == '"':
                if word.endswith("R"):
                    take_raw_string(j)
                else:
                    take_string(j, '"')
                continue
            tokens.append(Token(ID, word, tokens_line))
            i = j
            continue
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n:
                d = text[j]
                if d.isalnum() or d in "._":
                    j += 1
                elif d == "'" and j + 1 < n and text[j + 1].isalnum():
                    j += 1  # digit separator
                elif d in "+-" and text[j - 1] in "eEpP":
                    j += 1  # exponent sign
                else:
                    break
            tokens.append(Token(NUM, text[i:j], tokens_line))
            i = j
            continue
        three, two = text[i:i + 3], text[i:i + 2]
        if three in _PUNCT3:
            tokens.append(Token(PUNCT, three, tokens_line))
            i += 3
        elif two in _PUNCT2:
            tokens.append(Token(PUNCT, two, tokens_line))
            i += 2
        else:
            tokens.append(Token(PUNCT, c, tokens_line))
            i += 1
    return tokens, comments
