"""Rule registry.

Two rule kinds:
  "file"   — fn(f, ctx) called once per in-scope file; violations are
             allow-filtered by the engine against the file they land in.
  "global" — fn(ctx, scope) called once per lint run; the rule walks the
             whole context itself (cross-file graphs need every site
             before any verdict). Violations are still allow-filtered by
             the engine, and rules that build graphs additionally drop
             suppressed *sites* before edges form (a suppressed lock
             acquisition must not create an edge some other file then
             trips over).
"""

from .concurrency import (rule_lock_order, rule_mutex_annotations,
                          rule_thread_confinement)
from .determinism import (rule_float_determinism, rule_no_unordered_iteration,
                          rule_no_wallclock_rng)
from .registries import (rule_engine_options_registry,
                         rule_metric_name_registry,
                         rule_metric_names_referenced,
                         rule_options_serialize_matrix,
                         rule_scenario_op_matrix, rule_scenario_op_registry,
                         rule_wire_format_version)

# (name, fn, scope, kind)
RULES = [
    ("no-wallclock-rng", rule_no_wallclock_rng, "src/", "file"),
    ("no-unordered-iteration", rule_no_unordered_iteration, "src/", "file"),
    ("float-determinism", rule_float_determinism, "src/", "file"),
    ("scenario-op-registry", rule_scenario_op_registry, "", "file"),
    ("scenario-op-matrix", rule_scenario_op_matrix, "", "file"),
    ("engine-options-registry", rule_engine_options_registry, "", "file"),
    ("options-serialize-matrix", rule_options_serialize_matrix, "", "file"),
    ("wire-format-version", rule_wire_format_version, "src/", "file"),
    ("mutex-annotations", rule_mutex_annotations, "src/", "file"),
    ("metric-name-registry", rule_metric_name_registry, "src/", "file"),
    ("metric-names-referenced", rule_metric_names_referenced, "src/", "global"),
    ("lock-order", rule_lock_order, "src/", "global"),
    ("thread-confinement", rule_thread_confinement, "src/", "global"),
]

RULE_NAMES = [name for name, _, _, _ in RULES]
