"""Shared helpers for rule implementations."""

import re

from ..lexer import ID, STR


def ids(f):
    """Set of identifier token texts in the file (cached)."""
    cached = getattr(f.model, "_id_set", None)
    if cached is None:
        cached = {t.text for t in f.tokens if t.kind == ID}
        f.model._id_set = cached
    return cached


def enum_refs(f, enum_name):
    """Set of `Enum::kX` enumerator names referenced anywhere in the file
    (cached per enum name)."""
    cache = getattr(f.model, "_enum_refs", None)
    if cache is None:
        cache = f.model._enum_refs = {}
    if enum_name not in cache:
        refs = set()
        toks = f.tokens
        for i in range(len(toks) - 2):
            if toks[i].kind == ID and toks[i].text == enum_name and \
                    toks[i + 1].text == "::" and toks[i + 2].kind == ID:
                refs.add(toks[i + 2].text)
        cache[enum_name] = refs
    return cache[enum_name]


def enum_refs_in_range(f, enum_name, lo, hi):
    refs = set()
    toks = f.tokens
    for i in range(lo, min(hi, len(toks)) - 2):
        if toks[i].kind == ID and toks[i].text == enum_name and \
                toks[i + 1].text == "::" and toks[i + 2].kind == ID:
            refs.add(toks[i + 2].text)
    return refs


def string_tokens(f):
    return [t for t in f.tokens if t.kind == STR]


def body_id_set(f, fn):
    lo, hi = fn.body
    return {t.text for t in f.tokens[lo:hi + 1] if t.kind == ID}


def function_raw_text(f, fn):
    """Raw source lines of a function *including comments* — registries
    accept a comment as an explicit waiver."""
    first = fn.line
    last = f.tokens[fn.body[1]].line if fn.body[1] < len(f.tokens) else first
    return "\n".join(f.lines[max(0, first - 1):last])


_WORD_CACHE = {}


def word_re(name):
    pat = _WORD_CACHE.get(name)
    if pat is None:
        pat = _WORD_CACHE[name] = re.compile(r"\b" + re.escape(name) + r"\b")
    return pat


def type_head(type_text):
    """First meaningful type token: `std :: unordered_map < ... >` →
    `unordered_map`."""
    for tok in type_text.split():
        if tok in ("const", "std", "::", "volatile", "typename"):
            continue
        return tok
    return ""
