"""Concurrency rules: annotated mutexes, static lock-order analysis, and
thread-confinement checking for pool lambdas."""

import re

from ..lexer import ID
from ..model import Violation

_RAW_SYNC_RE = re.compile(
    r"\bstd :: (mutex|recursive_mutex|shared_mutex|timed_mutex|"
    r"condition_variable|condition_variable_any)\b")


def rule_mutex_annotations(f, ctx):
    """Raw std::mutex / std::condition_variable members are invisible to
    clang's thread-safety analysis (libstdc++ declares no capabilities).
    Use util::Mutex / util::CondVar from util/thread_annotations.hpp and
    annotate the guarded members with P2P_GUARDED_BY. Declaration-table
    based, so multi-line declarations and typedef chains through `std ::`
    spelling variants are all caught."""
    out = []
    for d in f.model.var_decls:
        m = _RAW_SYNC_RE.search(d.type_text)
        if m:
            out.append(Violation(
                f.path, d.line, "mutex-annotations",
                f"raw std::{m.group(1)}: use util::Mutex / util::CondVar "
                "(util/thread_annotations.hpp) so -Wthread-safety can check "
                "the locking discipline, and P2P_GUARDED_BY the state"))
    return out


def _qualified_lock(site):
    """Lock identity: `Class::member_` for a bare member-looking name so
    the same mutex reached from several methods unifies; anything more
    structured (obj.mu_, arr[i].m) keeps its expression text."""
    expr = site.mutex
    cls = site.func.cls if site.func is not None else ""
    if cls and re.fullmatch(r"\w+", expr):
        return f"{cls}::{expr}"
    return expr


def _collect_lock_model(ctx, scope):
    """Per-function direct lock sets, call positions, and raw sites."""
    sites = []  # (file, site, qualified_name)
    funcs = {}  # (cls, name) -> [FunctionDecl]; name -> [...] fallback
    for f in ctx.files:
        if scope and not f.scoped_path.startswith(scope):
            continue
        for fn in f.model.functions:
            funcs.setdefault((fn.cls, fn.name), []).append((f, fn))
            funcs.setdefault(fn.name, []).append((f, fn))
        for s in f.model.locks:
            if f.allowed(s.line, "lock-order"):
                continue
            sites.append((f, s, _qualified_lock(s)))
    return sites, funcs


def _function_closure(sites, funcs):
    """Locks acquired anywhere inside each function, including through
    helper calls (fixpoint over the name-resolved call graph)."""
    direct = {}  # id(FunctionDecl) -> set of lock names
    fn_of = {}
    for _f, s, name in sites:
        if s.func is None:
            continue
        direct.setdefault(id(s.func), set()).add(name)
        fn_of[id(s.func)] = s.func
    closure = {k: set(v) for k, v in direct.items()}
    all_fns = []
    for key, lst in funcs.items():
        if isinstance(key, tuple):
            for f, fn in lst:
                all_fns.append((f, fn))
    for _ in range(3):  # bounded fixpoint: call chains deeper than 3 are rare
        changed = False
        for f, fn in all_fns:
            acc = closure.setdefault(id(fn), set())
            for callee in fn.calls:
                for key in ((fn.cls, callee), callee):
                    for cf, cfn in funcs.get(key, []):
                        got = closure.get(id(cfn))
                        if got and not got <= acc:
                            acc |= got
                            changed = True
                    if funcs.get(key):
                        break
        if not changed:
            break
    return closure


def rule_lock_order(ctx, scope="src/"):
    """Static lock-order analysis: build the lock-acquisition graph from
    util::MutexLock (and lock_guard/unique_lock/scoped_lock) sites —
    including acquisitions reached through helper functions — and fail on
    any cycle. Two code paths that nest the same two mutexes in opposite
    orders deadlock the day they race; the cycle is visible statically long
    before TSan can catch a lucky interleaving."""
    sites, funcs = _collect_lock_model(ctx, scope)
    closure = _function_closure(sites, funcs)
    known_fn_names = {k for k in funcs if isinstance(k, str)}

    edges = {}  # lock_a -> {lock_b: (file, line)}
    for f, s, held in sites:
        # Later acquisitions textually inside the holding scope.
        for g, s2, other in sites:
            if g is f and s2.func is s.func and \
                    s.tok < s2.tok <= s.scope_end and other != held:
                edges.setdefault(held, {}).setdefault(other, (f, s2.line))
        # Calls to lock-acquiring helpers inside the holding scope.
        toks = f.tokens
        j = s.tok + 1
        while j < min(s.scope_end, len(toks) - 1):
            t = toks[j]
            if t.kind == ID and t.text in known_fn_names and \
                    toks[j + 1].text == "(":
                for key in ((s.func.cls if s.func else "", t.text), t.text):
                    resolved = funcs.get(key, [])
                    if resolved:
                        for _cf, cfn in resolved:
                            for other in closure.get(id(cfn), ()):
                                if other != held:
                                    edges.setdefault(held, {}).setdefault(
                                        other, (f, t.line))
                        break
            j += 1
        # Direct re-acquisition of a lock already held: self-deadlock.
        for g, s2, other in sites:
            if g is f and s2.func is s.func and \
                    s.tok < s2.tok <= s.scope_end and other == held:
                edges.setdefault(held, {}).setdefault(
                    held + " (re-entry)", (f, s2.line))

    # Cycle detection: report every edge that lies on some cycle.
    out = []
    reported = set()
    for start in sorted(edges):
        path = []

        def dfs(node, trail):
            if node in trail:
                cyc = trail[trail.index(node):] + [node]
                for a, b in zip(cyc, cyc[1:]):
                    site = edges.get(a, {}).get(b)
                    if site is None:
                        continue
                    key = (a, b)
                    if key in reported:
                        continue
                    reported.add(key)
                    fobj, line = site
                    out.append(Violation(
                        fobj.path, line, "lock-order",
                        f"lock-order cycle: acquiring '{b}' while holding "
                        f"'{a}' closes the cycle "
                        f"[{' -> '.join(cyc)}] — fix the nesting order or "
                        "suppress with a reason if the objects can never "
                        "alias"))
                return
            if len(trail) > 24:
                return
            for nxt in sorted(edges.get(node, {})):
                dfs(nxt.replace(" (re-entry)", ""), trail + [node])

        dfs(start, path)
    # Self-deadlocks (A -> A re-entry edges).
    for a, targets in sorted(edges.items()):
        for b, (fobj, line) in sorted(targets.items()):
            if b == a + " (re-entry)" and (a, b) not in reported:
                reported.add((a, b))
                out.append(Violation(
                    fobj.path, line, "lock-order",
                    f"'{a}' re-acquired while already held in the same "
                    "scope: self-deadlock (std::mutex is not recursive)"))
    return out


def _confined_members(ctx):
    """class name -> set of members annotated P2P_EXTERNALLY_SYNCHRONIZED
    (simulation-thread-confined / publisher-confined state)."""
    confined = {}
    for f in ctx.files:
        for c in f.model.classes:
            for m in c.members:
                if "P2P_EXTERNALLY_SYNCHRONIZED" in m.annotations:
                    confined.setdefault(c.name, set()).add(m.name)
    return confined


def rule_thread_confinement(ctx, scope="src/"):
    """Thread-confinement checking: members marked
    P2P_EXTERNALLY_SYNCHRONIZED are mutated without locks because their
    owner is confined to the simulation thread (or to the publisher).
    Capturing such a member into a lambda handed to
    ThreadPool::parallel_for* / submit moves it onto pool workers, where
    the confinement argument (and the annotation's whole justification)
    evaporates. The member list resolves across files, so a lambda in the
    .cpp sees annotations from the paired header."""
    confined = _confined_members(ctx)
    out = []
    for f in ctx.files:
        if scope and not f.scoped_path.startswith(scope):
            continue
        for pl in f.model.pool_lambdas:
            cls = pl.func.cls if pl.func is not None else ""
            members = confined.get(cls)
            if not members:
                continue
            lo, hi = pl.body
            used = sorted({t.text for t in f.tokens[lo:hi + 1]
                           if t.kind == ID and t.text in members})
            if used:
                out.append(Violation(
                    f.path, pl.line, "thread-confinement",
                    f"lambda passed to ThreadPool::{pl.call} captures "
                    f"confined member(s) {', '.join(used)} of {cls}: "
                    "P2P_EXTERNALLY_SYNCHRONIZED declares simulation-thread "
                    "confinement, which pool workers break — pass the data "
                    "through locals/spans, or annotate the real "
                    "synchronization"))
    return out
