"""Determinism rules: wall-clock/ambient randomness, unordered iteration,
and floating-point accumulation over nondeterministic orders."""

import re

from ..lexer import ID
from ..model import Violation
from .common import type_head

_BANNED_IDS = {
    "random_device": "std::random_device",
    "srand": "srand",
    "system_clock": "wall-clock std::chrono clock",
    "high_resolution_clock": "wall-clock std::chrono clock",
    "steady_clock": "wall-clock std::chrono clock",
    "gettimeofday": "wall-clock syscall",
    "clock_gettime": "wall-clock syscall",
    "localtime": "wall-clock syscall",
    "gmtime": "wall-clock syscall",
}


def rule_no_wallclock_rng(f, ctx):
    """Simulation code must use virtual time and seeded util::Rng only: no
    std::random_device / rand / wall-clock reads. Token-level, so a banned
    name inside a string literal or comment never fires (a regex blind spot
    of the v1 lint)."""
    out = []
    toks = f.tokens
    for i, t in enumerate(toks):
        if t.kind != ID:
            continue
        what = _BANNED_IDS.get(t.text)
        if what is None and t.text == "rand":
            # std::rand or a bare call; `rand` as a substring of another
            # identifier can't happen at token level.
            prev = toks[i - 1].text if i > 0 else ""
            if prev == "::" or (i + 1 < len(toks) and toks[i + 1].text == "("):
                what = "std::rand"
        if what is None and t.text == "time" and i + 2 < len(toks) and \
                toks[i + 1].text == "(" and \
                toks[i + 2].text in ("NULL", "nullptr", "0"):
            what = "time()"
        if what is not None:
            out.append(Violation(
                f.path, t.line, "no-wallclock-rng",
                f"{what}: simulation code draws randomness from seeded "
                "util::Rng and time from the event queue only "
                "(reproducibility from a single 64-bit seed)"))
    return out


_UNORD_RE = re.compile(r"\bunordered_(map|set|multimap|multiset)\b")


def unordered_names(f):
    """(direct, containing): names whose declared type is an unordered
    container (`direct` iterates nondeterministically) or holds one behind
    another container (`containing`, e.g. vector<unordered_map<...>> —
    subscripting yields an unordered object). Resolved from the declaration
    table, so member types land here whether declared in this file or (via
    the rule's header merge) in the paired header."""
    direct, containing = set(), set()
    for d in f.model.var_decls:
        if not _UNORD_RE.search(d.type_text):
            continue
        if type_head(d.type_text).startswith("unordered_"):
            direct.add(d.name)
        else:
            containing.add(d.name)
    return direct, containing


def propagate_aliases(f, direct, containing):
    """`auto& x = M[...]` where M holds unordered values, `auto& x = U`,
    and `auto it = U.find(...)` (the iterator's ->second may itself be a
    container)."""
    toks = f.tokens
    n = len(toks)
    for _ in range(2):
        for i in range(n - 3):
            if toks[i].text != "auto":
                continue
            j = i + 1
            if j < n and toks[j].text in ("&", "*", "&&"):
                j += 1
            if j + 2 >= n or toks[j].kind != ID or toks[j + 1].text != "=":
                continue
            alias, src = toks[j].text, toks[j + 2].text
            k = j + 3
            kind = toks[k].text if k < n else ""
            if kind == "[" and src in containing:
                direct.add(alias)
            elif kind == ";" and src in direct:
                direct.add(alias)
            elif kind == "." and k + 1 < n and toks[k + 1].text == "find" \
                    and src in direct:
                containing.add(alias)


_ALGOS = {"accumulate", "for_each", "reduce", "transform_reduce"}


def rule_no_unordered_iteration(f, ctx):
    """No iteration over unordered containers: bucket order is not part of
    any contract, and floating-point accumulation over it is the classic
    silent nondeterminism. Iterate a sorted snapshot instead. Covers
    range-for, iterator walks, and begin() handed to <algorithm> loops;
    member types resolve across the paired header."""
    direct, containing = unordered_names(f)
    if f.path.endswith((".cpp", ".cc", ".cxx")):
        for g in ctx.header_partner(f):
            hd, hc = unordered_names(g)
            direct |= hd
            containing |= hc
    propagate_aliases(f, direct, containing)
    if not direct and not containing:
        return []
    out = []
    for rf in f.model.range_fors:
        name = rf.expr
        hit = name in direct or (
            name.endswith("->second") and name[:-len("->second")] in containing)
        if hit:
            out.append(Violation(
                f.path, rf.line, "no-unordered-iteration",
                f"iteration over unordered container '{name}': bucket order "
                "is nondeterministic — iterate a sorted snapshot, or justify "
                "with a p2plint allow comment"))
    for it in f.model.iter_fors:
        if it.name in direct:
            out.append(Violation(
                f.path, it.line, "no-unordered-iteration",
                f"iterator walk over unordered container '{it.name}': bucket "
                "order is nondeterministic — iterate a sorted snapshot, or "
                "justify with a p2plint allow comment"))
    # Iteration hidden behind an algorithm: accumulate(U.begin(), ...).
    toks = f.tokens
    for i in range(len(toks) - 4):
        if toks[i].kind == ID and toks[i].text in _ALGOS and \
                toks[i + 1].text == "(":
            j = i + 2
            depth = 1
            while j + 2 < len(toks) and depth > 0:
                if toks[j].text == "(":
                    depth += 1
                elif toks[j].text == ")":
                    depth -= 1
                elif toks[j].kind == ID and toks[j].text in direct and \
                        toks[j + 1].text == "." and \
                        toks[j + 2].text in ("begin", "cbegin"):
                    out.append(Violation(
                        f.path, toks[j].line, "no-unordered-iteration",
                        f"'{toks[i].text}' walks unordered container "
                        f"'{toks[j].text}': the algorithm visits buckets in "
                        "hash order — iterate a sorted snapshot instead"))
                    break
                j += 1
    return out


_PTR_ORDERED_RE = re.compile(
    r"\b(set|map|multiset|multimap|priority_queue)\s*<[^,<>]*\*")
_FLOAT_HEADS = {"double", "float"}


def _float_names(f):
    names = set()
    for d in f.model.var_decls:
        if type_head(d.type_text) in _FLOAT_HEADS:
            names.add(d.name)
    return names


def _body_token_range(rf):
    return rf.body


def rule_float_determinism(f, ctx):
    """Floating-point accumulation whose loop order derives from an
    unordered container or a pointer comparison: the sum's rounding depends
    on iteration order, so logically identical states produce bitwise-
    different totals (the bug class PR 4 fixed in run_indirect_exchange).
    Dataflow the old regex lint could not see: a vector *filled from* an
    unordered container inherits bucket order until it is sorted, and a
    set/map keyed on pointers iterates in allocation-address order."""
    direct, _containing = unordered_names(f)
    if f.path.endswith((".cpp", ".cc", ".cxx")):
        for g in ctx.header_partner(f):
            hd, _ = unordered_names(g)
            direct |= hd
    floats = _float_names(f)
    if f.path.endswith((".cpp", ".cc", ".cxx")):
        for g in ctx.header_partner(f):
            floats |= _float_names(g)
    toks = f.tokens
    n = len(toks)

    # Pointer-ordered containers: set/map/priority_queue keyed on a pointer.
    ptr_ordered = {d.name for d in f.model.var_decls
                   if _PTR_ORDERED_RE.search(d.type_text)}
    for g in (ctx.header_partner(f) if f.path.endswith((".cpp", ".cc", ".cxx"))
              else []):
        ptr_ordered |= {d.name for d in g.model.var_decls
                        if _PTR_ORDERED_RE.search(d.type_text)}

    # Bucket-order taint: `for (... : U) v.push_back(...)` leaves v in hash
    # order; a later sort(v...) clears the taint.
    tainted = {}  # name -> taint source description
    for rf in f.model.range_fors:
        if rf.expr not in direct:
            continue
        lo, hi = _body_token_range(rf)
        for i in range(lo, min(hi, n) - 2):
            if toks[i].kind == ID and toks[i + 1].text == "." and \
                    toks[i + 2].text in ("push_back", "emplace_back"):
                tainted.setdefault(
                    toks[i].text,
                    f"filled from unordered '{rf.expr}' at line {rf.line}")
    if tainted:
        for i in range(n - 2):
            if toks[i].kind == ID and toks[i].text in ("sort", "stable_sort") \
                    and toks[i + 1].text == "(":
                j = i + 2
                depth = 1
                while j < n and depth > 0:
                    if toks[j].text == "(":
                        depth += 1
                    elif toks[j].text == ")":
                        depth -= 1
                    elif toks[j].kind == ID:
                        tainted.pop(toks[j].text, None)
                    j += 1

    out = []
    for rf in f.model.range_fors:
        source = None
        if rf.expr in ptr_ordered:
            source = "iterates in pointer-comparison (allocation-address) order"
        elif rf.expr in tainted:
            source = f"is bucket-ordered ({tainted[rf.expr]}; never sorted)"
        if source is None:
            continue
        lo, hi = _body_token_range(rf)
        for i in range(lo, min(hi, n) - 1):
            t = toks[i]
            acc = None
            if t.kind == ID and toks[i + 1].text == "+=":
                acc = t.text
            elif t.kind == ID and toks[i + 1].text == "=" and \
                    i + 3 < n and toks[i + 2].text == t.text and \
                    toks[i + 3].text == "+":
                acc = t.text
            if acc is not None and acc in floats:
                out.append(Violation(
                    f.path, rf.line, "float-determinism",
                    f"floating-point accumulation into '{acc}' over "
                    f"'{rf.expr}', which {source}: the rounding of the sum "
                    "depends on iteration order — accumulate over a "
                    "deterministic (sorted-by-value) order instead"))
                break
    return out
