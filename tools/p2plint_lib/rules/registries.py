"""Registry and cross-file exhaustiveness rules.

The ported rules (scenario-op-registry, engine-options-registry,
wire-format-version, metric-name-registry) keep their v1 contracts but now
resolve declarations through the IR: enumerators come from parsed enum
bodies, fields from parsed class members, wire writers from function
signatures — so a `case OpKind::kX` inside a string literal no longer
counts as handling the op, and a field declared across multiple lines is
still seen.

The matrix rules (scenario-op-matrix, options-serialize-matrix,
metric-names-referenced) are the cross-file exhaustiveness checks: every
chaos op must also be *emittable* by the generator, every serialized
struct field must round-trip through both serialize and parse, and every
registered metric name must actually be referenced somewhere.
"""

import re

from ..lexer import ID, STR
from ..model import Violation
from .common import enum_refs, enum_refs_in_range, function_raw_text, ids, \
    word_re


def _opkind_enum(f):
    for e in f.model.enums:
        if e.name == "OpKind" and e.scoped:
            return e
    return None


def _has_case_opkind(g):
    toks = g.tokens
    for i in range(len(toks) - 2):
        if toks[i].text == "case" and toks[i + 1].text == "OpKind" and \
                toks[i + 2].text == "::":
            return True
    return False


def rule_scenario_op_registry(f, ctx):
    """Every OpKind enumerator must be handled by the trace codec
    (op_kind_name) and by the ScenarioRunner dispatch — adding a chaos op
    without wiring replay or execution breaks trace replayability.
    Enumerators come from the parsed enum body and handling is checked at
    token level, so literals and comments can neither hide nor fake a
    case."""
    enum = _opkind_enum(f)
    if enum is None:
        return []
    codec = [g for g in ctx.files
             if "op_kind_name" in ids(g) and _has_case_opkind(g)]
    runner = [g for g in ctx.files
              if "ScenarioRunner" in ids(g) and enum_refs(g, "OpKind")]
    out = []
    for name, line in enum.enumerators:
        if codec and not any(name in enum_refs(g, "OpKind") for g in codec):
            out.append(Violation(
                f.path, line, "scenario-op-registry",
                f"OpKind::{name} is not handled where op_kind_name is "
                "defined: the op cannot round-trip through trace files"))
        if runner and not any(name in enum_refs(g, "OpKind") for g in runner):
            out.append(Violation(
                f.path, line, "scenario-op-registry",
                f"OpKind::{name} is not handled by ScenarioRunner: the op "
                "would parse but never execute"))
    return out


def _from_seed_bodies(ctx):
    bodies = []
    for g in ctx.files:
        for fn in g.model.functions:
            if fn.name == "from_seed":
                bodies.append((g, fn))
    return bodies


def rule_scenario_op_matrix(f, ctx):
    """Exhaustiveness matrix leg two: every OpKind enumerator must also be
    *emitted* by the scenario generator (from_seed). Dispatch coverage
    alone (scenario-op-registry) lets an op rot: handled everywhere but
    generated never, so no corpus seed, chaos sweep, or fuzz run ever
    exercises it. The third leg — every op covered by >=1 corpus seed —
    needs seed expansion and lives in the C++ test CorpusOpCoverage."""
    enum = _opkind_enum(f)
    if enum is None:
        return []
    bodies = _from_seed_bodies(ctx)
    if not bodies:
        return []
    emitted = set()
    for g, fn in bodies:
        emitted |= enum_refs_in_range(g, "OpKind", fn.body[0], fn.body[1] + 1)
    out = []
    for name, line in enum.enumerators:
        if name not in emitted:
            out.append(Violation(
                f.path, line, "scenario-op-matrix",
                f"OpKind::{name} is never emitted by from_seed: the op is "
                "dispatchable but unreachable from any generated scenario, "
                "so nothing ever tests it — teach from_seed to emit it (or "
                "retire the op)"))
    return out


_OPTIONS_STRUCTS = ("EngineOptions", "ReliabilityOptions")


def rule_engine_options_registry(f, ctx):
    """Every EngineOptions / ReliabilityOptions field must be mentioned in
    DistributedRanking::validated() — with a range check, or a comment
    recording that any value is valid. New knobs require a decision, not a
    silent default. (Comment mentions count: registration is the point.)"""
    out = []
    for struct in _OPTIONS_STRUCTS:
        decls = [c for c in f.model.classes if c.name == struct]
        if not decls:
            continue
        validators = []
        for g in ctx.files:
            for fn in g.model.functions:
                if fn.name == "validated" and "EngineOptions" in fn.params_text:
                    validators.append(function_raw_text(g, fn))
        if not validators:
            continue
        for c in decls:
            for m in c.members:
                if not any(word_re(m.name).search(v) for v in validators):
                    out.append(Violation(
                        f.path, m.line, "engine-options-registry",
                        f"{struct}.{m.name} is not registered in "
                        "DistributedRanking::validated(): add a range check, "
                        "or a comment there recording that any value is "
                        "valid"))
    return out


def _serializes_wire(fn):
    if fn.name != "serialize" and not fn.name.startswith(("save_", "write_")):
        return False
    params = fn.params_text
    return "ostream" in params and "&" in params


_VERSION_RE = re.compile(r"\bv\d+\b")


def rule_wire_format_version(f, ctx):
    """A function writing a wire format (serialize/save_*/write_* taking a
    std::ostream&) must live in a file carrying a versioned format header
    literal ("... v1 ..."), so readers can reject foreign or future data
    instead of misparsing it. The version must be a *string literal* —
    a `v1` in a comment no longer satisfies the check."""
    writers = [fn for fn in f.model.functions if _serializes_wire(fn)]
    if not writers:
        return []
    has_version = any(t.kind == STR and _VERSION_RE.search(t.text)
                      for t in f.tokens)
    if has_version:
        return []
    return [Violation(
        f.path, fn.line, "wire-format-version",
        f"'{fn.name}' writes a wire format but the file has no version "
        "literal (e.g. \"# p2prank <format> v1\"): emit a versioned header "
        "the loader validates") for fn in writers]


METRIC_FNS = {"counter", "counter_unstable", "gauge", "log2_histogram",
              "linear_histogram", "instant", "complete"}


def rule_metric_name_registry(f, ctx):
    """Metric and trace names are API: snapshot keys and trace event names
    are consumed by dashboards and diffed across runs, so the set of names
    must be a single reviewable registry (src/obs/metric_names.hpp). A
    string literal at a metric/trace call site bypasses that registry."""
    out = []
    toks = f.tokens
    for i in range(len(toks) - 2):
        if toks[i].kind == ID and toks[i].text in METRIC_FNS and \
                toks[i + 1].text == "(" and toks[i + 2].kind == STR:
            lit = toks[i + 2].text.strip('"')
            out.append(Violation(
                f.path, toks[i].line, "metric-name-registry",
                f'string literal "{lit}" names a {toks[i].text}() '
                "metric/trace: pass an obs::names::k* constant from "
                "src/obs/metric_names.hpp so the name set stays a single "
                "reviewable registry"))
    return out


_KCONST_RE = re.compile(r"k[A-Z]\w*")


def _name_constants(f):
    """File-scope string_view constants named kLikeThis: the metric-name
    registry entries (and any sibling name registries)."""
    return [d for d in f.model.var_decls
            if d.scope == "file" and "string_view" in d.type_text
            and _KCONST_RE.fullmatch(d.name)]


def rule_metric_names_referenced(ctx, scope="src/"):
    """Exhaustiveness matrix over the metric-name registry: every
    registered k* string_view constant must be referenced by at least one
    call site. metric-name-registry forces names *into* the registry; this
    closes the loop so the registry cannot silently accrete dead names
    whose dashboards watch a metric nothing emits."""
    out = []
    for f in ctx.files:
        if scope and not f.scoped_path.startswith(scope):
            continue
        consts = _name_constants(f)
        if not consts:
            continue
        for d in consts:
            own = sum(1 for t in f.tokens
                      if t.kind == ID and t.text == d.name)
            used = own > 1 or any(
                d.name in ids(g) for g in ctx.files if g is not f)
            if not used:
                out.append(Violation(
                    f.path, d.line, "metric-names-referenced",
                    f"registered name constant '{d.name}' is never "
                    "referenced: no call site emits this metric/trace, so "
                    "anything watching the name sees silence — wire it up "
                    "or delete the registration"))
    return out


def rule_options_serialize_matrix(f, ctx):
    """Round-trip matrix: for any struct declaring both serialize() and
    parse(), every member must appear in *both* implementations (comments
    count as explicit waivers). A field added to the struct but not to the
    codec silently drops state across save/load — the classic asymmetric
    bug where serialize writes it, parse defaults it, and replay
    diverges."""
    out = []
    for c in f.model.classes:
        method_names = {n for n, _ in c.methods}
        if not {"serialize", "parse"} <= method_names:
            continue
        ser_texts, par_texts = [], []
        for g in ctx.files:
            for fn in g.model.functions:
                if fn.cls != c.name:
                    continue
                if fn.name == "serialize":
                    ser_texts.append(function_raw_text(g, fn))
                elif fn.name == "parse":
                    par_texts.append(function_raw_text(g, fn))
        if not ser_texts or not par_texts:
            continue  # declarations only; nothing to check against
        for m in c.members:
            pat = word_re(m.name)
            in_ser = any(pat.search(t) for t in ser_texts)
            in_par = any(pat.search(t) for t in par_texts)
            if in_ser and in_par:
                continue
            missing = []
            if not in_ser:
                missing.append("serialize")
            if not in_par:
                missing.append("parse")
            out.append(Violation(
                f.path, m.line, "options-serialize-matrix",
                f"{c.name}.{m.name} does not round-trip: missing from "
                f"{' and '.join(missing)}() — a saved {c.name} silently "
                "drops or defaults this field on reload; serialize it, "
                "parse it, or record the waiver in a comment in both"))
    return out
