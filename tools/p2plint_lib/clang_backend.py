"""Optional clang AST backend.

When clang++ is on PATH, declaration-layer facts for the registry rules
(OpKind enumerators, EngineOptions/ReliabilityOptions fields, members of
serialize/parse structs) are cross-checked against a real compiler AST
(`clang++ -Xclang -ast-dump -ast-dump-filter=<decl>`): any enumerator or
field the builtin parser missed is spliced into the IR, so macro tricks or
exotic declaration syntax cannot hide a registry entry.

When clang is absent — or errors in any way — the builtin parser's IR
stands unmodified and the engine prints a one-line notice. The wall never
silently skips: the builtin layer covers every rule on its own; clang only
hardens the declaration tables. Every clang interaction is therefore
wrapped so that no environment (missing headers, old clang, weird locale)
can turn the backend into a lint failure.
"""

import re
import shutil
import subprocess


def clang_path():
    return shutil.which("clang++")


# Declarations worth a compiler's opinion: the registry/matrix inputs.
_INTERESTING = ("OpKind", "EngineOptions", "ReliabilityOptions")

_ENUMERATOR_RE = re.compile(
    r"EnumConstantDecl\b.*?(?:<[^>]*>)?\s*"
    r"(?:line:(\d+):\d+|col:\d+)\s+(?:used\s+)?(\w+)\s+'")
_FIELD_RE = re.compile(
    r"FieldDecl\b.*?(?:<[^>]*>)?\s*"
    r"(?:line:(\d+):\d+|col:\d+)\s+(?:referenced\s+)?(\w+)\s+'")


def _dump_filtered(clang, path, root, decl_name):
    """Textual AST dump restricted to one declaration name. Returns the
    dump text or None on any failure."""
    cmd = [clang, "-std=c++17", "-fsyntax-only", "-w",
           f"-I{root}/src", f"-I{root}",
           "-Xclang", "-ast-dump",
           "-Xclang", f"-ast-dump-filter={decl_name}",
           str(path)]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=60)
    except (OSError, subprocess.SubprocessError):
        return None
    # clang exits 0 even with the filter matching nothing; a compile error
    # (missing include etc.) still often produces a usable partial dump,
    # but be conservative: require some dump output.
    if not proc.stdout.strip():
        return None
    return proc.stdout


def _interesting_decls(f):
    names = []
    for e in f.model.enums:
        if e.name in _INTERESTING:
            names.append(("enum", e))
    for c in f.model.classes:
        method_names = {n for n, _ in c.methods}
        if c.name in _INTERESTING or {"serialize", "parse"} <= method_names:
            names.append(("class", c))
    return names


def augment_file(f, root, real_path, clang=None):
    """Cross-check f's registry-relevant declarations against clang's AST.
    Returns True if clang ran and the IR was (possibly) hardened."""
    clang = clang or clang_path()
    if clang is None:
        return False
    ran = False
    try:
        for kind, decl in _interesting_decls(f):
            dump = _dump_filtered(clang, real_path, root, decl.name)
            if dump is None:
                continue
            ran = True
            if kind == "enum":
                known = {n for n, _ in decl.enumerators}
                for m in _ENUMERATOR_RE.finditer(dump):
                    line, name = m.groups()
                    if name not in known:
                        decl.enumerators.append(
                            (name, int(line) if line else decl.line))
                        known.add(name)
            else:
                known = {m.name for m in decl.members}
                for m in _FIELD_RE.finditer(dump):
                    line, name = m.groups()
                    if name not in known:
                        from .model import Member
                        decl.members.append(Member(
                            name, "", int(line) if line else decl.line))
                        known.add(name)
        if ran:
            f.model.backend = "clang+builtin"
    except Exception:  # noqa: BLE001 — backend must never break the lint
        return False
    return ran
