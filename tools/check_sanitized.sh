#!/usr/bin/env bash
# Build the concurrency-sensitive targets under ThreadSanitizer and run the
# thread-pool and rank-sweep suites. The ThreadPool fork-join has no locks on
# its hot path (epoch + atomic grain counter), so TSan is the check that the
# handshake is actually race-free, not just "has not crashed yet".
#
# usage: tools/check_sanitized.sh [extra ctest args]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset tsan
cmake --build --preset tsan \
  --target util_thread_pool_test rank_sweep_test scenario_fuzz -j"$(nproc)"

TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/util_thread_pool_test "$@"
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/rank_sweep_test "$@"
echo "TSan: thread-pool and rank-sweep suites clean"

# The chaos-scenario smoke corpus drives the whole engine (fork-join sweeps,
# event queue, fault injection) through randomized fault schedules — run it
# under TSan too so the harness itself is certified race-free.
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tools/scenario_fuzz \
  --seeds-file tests/corpus/scenario_seeds.txt --trace-dir build-tsan --quiet
echo "TSan: chaos-scenario smoke corpus clean"
