#!/usr/bin/env bash
# Build the concurrency-sensitive targets under ThreadSanitizer and run the
# thread-pool and rank-sweep suites. The ThreadPool fork-join has no locks on
# its hot path (epoch + atomic grain counter), so TSan is the check that the
# handshake is actually race-free, not just "has not crashed yet".
#
# The scenario corpus additionally runs under AddressSanitizer: the reliable
# exchange layer moves Y-slice payload buffers between retransmit timers,
# delivery events, and churn rebuilds (shared_ptr closures invalidated by
# generation stamps) — ASan is the check that no event ever touches a freed
# payload or a rebuilt group, on top of TSan's data-race certification.
#
# usage: tools/check_sanitized.sh [extra ctest args]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset tsan
cmake --build --preset tsan \
  --target util_thread_pool_test rank_sweep_test serve_snapshot_test \
  scenario_fuzz -j"$(nproc)"

TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/util_thread_pool_test "$@"
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/rank_sweep_test "$@"
echo "TSan: thread-pool and rank-sweep suites clean"

# The serving layer's epoch-swap path: real reader threads racing a real
# publisher over the double-buffered SnapshotStore. TSan is the proof that
# "zero torn reads" comes from the publication protocol, not from luck.
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/serve_snapshot_test "$@"
echo "TSan: serve snapshot-swap suite clean"

# The chaos-scenario smoke corpus drives the whole engine (fork-join sweeps,
# event queue, fault injection) through randomized fault schedules — run it
# under TSan too so the harness itself is certified race-free.
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tools/scenario_fuzz \
  --seeds-file tests/corpus/scenario_seeds.txt --trace-dir build-tsan --quiet
echo "TSan: chaos-scenario smoke corpus clean"

# Worklist sweeps scatter dirty bits along push edges with relaxed atomic
# fetch_or while other workers read neighbouring words — run the corpus with
# the frontier kernel forced on so TSan certifies that pattern too.
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tools/scenario_fuzz \
  --seeds-file tests/corpus/scenario_seeds.txt --trace-dir build-tsan --quiet \
  --worklist
echo "TSan: chaos-scenario smoke corpus clean (--worklist)"

# With a rank-serving SnapshotStore attached to every scenario the runner
# probes the store at each sample while the engine publishes underneath —
# the cross-layer version of the serve_snapshot_test race.
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tools/scenario_fuzz \
  --seeds-file tests/corpus/scenario_seeds.txt --trace-dir build-tsan --quiet \
  --serve
echo "TSan: chaos-scenario smoke corpus clean (--serve)"

# Partition & recovery (DESIGN.md §13): forced cut/heal episodes with the
# RecoverySupervisor evicting and rejoining rankers mid-run, plus frame
# corruption round-tripping every slice through the codec. The supervisor
# pokes the SnapshotStore's shard-health bitmap from the simulation thread
# while nothing else may race it — TSan certifies that claim.
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tools/scenario_fuzz \
  --seeds-file tests/corpus/scenario_seeds.txt --trace-dir build-tsan --quiet \
  --partition
echo "TSan: chaos-scenario smoke corpus clean (--partition)"

# Same corpus under ASan + UBSan (heap-use-after-free / overflow, plus
# -fsanitize=float-divide-by-zero,float-cast-overflow — rank math divides
# by degree sums and casts scores to counters, so silent inf/NaN or a
# truncating cast would corrupt results without crashing), both on the
# scenarios' own channel configurations and with the reliable layer forced
# on, so every retransmit/ack/churn code path runs under the checks.
cmake --preset asan
cmake --build --preset asan --target scenario_fuzz graph_builder_test \
  graph_io_test graph_updates_test streaming_builder_test -j"$(nproc)"

# Graph-path edge cases (DESIGN.md §14): default-constructed / out-of-range
# WebGraph accessors (the old out_links(0) UB), loader reject paths, binary
# round trips, streamed two-pass ingest, and the incremental update splice
# against its rebuild oracle — the suites whose bugs ASan sees and a plain
# build might not.
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" ./build-asan/tests/graph_builder_test "$@"
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" ./build-asan/tests/graph_io_test "$@"
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" ./build-asan/tests/graph_updates_test "$@"
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" ./build-asan/tests/streaming_builder_test "$@"
echo "ASan: graph edge-case suites clean"
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" ./build-asan/tools/scenario_fuzz \
  --seeds-file tests/corpus/scenario_seeds.txt --trace-dir build-asan --quiet
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" ./build-asan/tools/scenario_fuzz \
  --seeds-file tests/corpus/scenario_seeds.txt --trace-dir build-asan --quiet \
  --reliable
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" ./build-asan/tools/scenario_fuzz \
  --seeds-file tests/corpus/scenario_seeds.txt --trace-dir build-asan --quiet \
  --worklist
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" ./build-asan/tools/scenario_fuzz \
  --seeds-file tests/corpus/scenario_seeds.txt --trace-dir build-asan --quiet \
  --serve
# Eviction hands page buffers to a successor and rejoin splits them back —
# churn rebuilds driven by the supervisor instead of the script. ASan holds
# the same no-freed-payload guarantee through those handoffs.
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" ./build-asan/tools/scenario_fuzz \
  --seeds-file tests/corpus/scenario_seeds.txt --trace-dir build-asan --quiet \
  --partition
echo "ASan: chaos-scenario smoke corpus clean (base + --reliable + --worklist + --serve + --partition)"
