// bench_report — machine-readable kernel throughput snapshots.
//
// Times every rank-sweep kernel variant on the standard 50k-page synthetic
// graph and appends one labelled run to BENCH_kernels.json, so the perf
// trajectory of the hot path is recorded PR over PR. The JSON layout (see
// DESIGN.md "Kernel layout") is:
//
//   { "schema": "p2prank-kernel-bench-v1",
//     "runs": [ { "label", "pages", "edges", "pool_threads",
//                 "variants": [ {"name", "ns_per_sweep", "items_per_sec",
//                                "bytes_per_sec"} ... ] } ... ] }
//
// items = CSR entries processed; bytes = hot-loop traffic per the
// accounting in DESIGN.md. Appending to an existing file preserves earlier
// runs (notably the "seed" baseline measured before the contribution
// kernel landed), which is what makes deltas auditable.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "graph/synthetic_web.hpp"
#include "rank/link_matrix.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace p2prank;
using Clock = std::chrono::steady_clock;

struct VariantResult {
  std::string name;
  double ns_per_sweep = 0.0;
  double items_per_sec = 0.0;
  double bytes_per_sec = 0.0;
};

struct Options {
  std::uint32_t pages = 50000;
  std::uint64_t seed = 42;
  double alpha = 0.85;
  int repetitions = 5;
  double min_rep_seconds = 0.4;
  std::string label = "run";
  std::string out = "BENCH_kernels.json";
};

/// Best-of-`repetitions` timing of one sweep variant: each repetition runs
/// the body until `min_rep_seconds` elapse and reports ns/sweep; the
/// minimum over repetitions filters scheduler noise.
template <typename Body>
double time_variant(const Options& opts, const Body& body) {
  for (int i = 0; i < 3; ++i) body();  // warm caches and scratch
  double best_ns = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < opts.repetitions; ++rep) {
    std::size_t sweeps = 0;
    const auto start = Clock::now();
    Clock::time_point now;
    do {
      body();
      ++sweeps;
      now = Clock::now();
    } while (std::chrono::duration<double>(now - start).count() < opts.min_rep_seconds);
    const double ns =
        std::chrono::duration<double, std::nano>(now - start).count() /
        static_cast<double>(sweeps);
    best_ns = std::min(best_ns, ns);
  }
  return best_ns;
}

VariantResult make_result(const std::string& name, double ns_per_sweep,
                          std::size_t items, std::int64_t bytes) {
  VariantResult r;
  r.name = name;
  r.ns_per_sweep = ns_per_sweep;
  r.items_per_sec = static_cast<double>(items) / (ns_per_sweep * 1e-9);
  r.bytes_per_sec = static_cast<double>(bytes) / (ns_per_sweep * 1e-9);
  return r;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string render_run(const Options& opts, std::size_t edges,
                       std::size_t pool_threads,
                       const std::vector<VariantResult>& variants) {
  std::ostringstream os;
  os.precision(6);
  os << "    {\n";
  os << "      \"label\": \"" << json_escape(opts.label) << "\",\n";
  os << "      \"pages\": " << opts.pages << ",\n";
  os << "      \"edges\": " << edges << ",\n";
  os << "      \"graph_seed\": " << opts.seed << ",\n";
  os << "      \"alpha\": " << opts.alpha << ",\n";
  os << "      \"pool_threads\": " << pool_threads << ",\n";
  os << "      \"variants\": [\n";
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const auto& v = variants[i];
    os << "        {\"name\": \"" << json_escape(v.name) << "\", "
       << "\"ns_per_sweep\": " << v.ns_per_sweep << ", "
       << "\"items_per_sec\": " << v.items_per_sec << ", "
       << "\"bytes_per_sec\": " << v.bytes_per_sec << "}"
       << (i + 1 < variants.size() ? "," : "") << "\n";
  }
  os << "      ]\n";
  os << "    }";
  return os.str();
}

/// Append `run` to the "runs" array of `path`, or create the file. Only
/// files written by this tool are understood; anything else is replaced.
void write_report(const std::string& path, const std::string& run) {
  static constexpr const char* kTail = "\n  ]\n}\n";
  std::string existing;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      existing = buf.str();
    }
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("bench_report: cannot write " + path);
  const std::size_t tail_at = existing.rfind(kTail);
  if (!existing.empty() && tail_at != std::string::npos &&
      tail_at + std::strlen(kTail) == existing.size()) {
    out << existing.substr(0, tail_at) << ",\n" << run << kTail;
  } else {
    out << "{\n  \"schema\": \"p2prank-kernel-bench-v1\",\n  \"runs\": [\n"
        << run << kTail;
  }
}

Options parse_args(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        throw std::runtime_error(std::string("bench_report: ") + flag +
                                 " needs a value");
      }
      return argv[++i];
    };
    if (arg == "--pages") {
      opts.pages = static_cast<std::uint32_t>(std::stoul(need_value("--pages")));
    } else if (arg == "--seed") {
      opts.seed = std::stoull(need_value("--seed"));
    } else if (arg == "--alpha") {
      opts.alpha = std::stod(need_value("--alpha"));
    } else if (arg == "--reps") {
      opts.repetitions = std::stoi(need_value("--reps"));
    } else if (arg == "--min-rep-seconds") {
      opts.min_rep_seconds = std::stod(need_value("--min-rep-seconds"));
    } else if (arg == "--label") {
      opts.label = need_value("--label");
    } else if (arg == "--out") {
      opts.out = need_value("--out");
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: bench_report [--pages N] [--seed S] [--alpha A] "
                   "[--reps R] [--min-rep-seconds T] [--label L] [--out FILE]\n";
      std::exit(0);
    } else {
      throw std::runtime_error("bench_report: unknown flag " + arg);
    }
  }
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opts = parse_args(argc, argv);
    const auto g = graph::generate_synthetic_web(
        graph::google2002_config(opts.pages, opts.seed));
    const auto m = rank::LinkMatrix::from_graph(g, opts.alpha);
    auto& pool = util::ThreadPool::shared();
    const std::size_t n = m.dimension();
    const std::size_t edges = m.num_entries();

    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i) x[i] = 0.1 + static_cast<double>(i % 7);
    std::vector<double> y(n);
    const std::vector<double> forcing(n, 0.15);
    rank::SweepScratch scratch;

    // Hot-loop bytes per sweep; accounting documented in DESIGN.md.
    const auto i64 = [](std::size_t v) { return static_cast<std::int64_t>(v); };
    const std::int64_t multiply_bytes = i64(edges) * 20 + i64(n) * 8;
    const std::int64_t contribution_bytes = i64(edges) * 12 + i64(n) * 32;
    const std::int64_t fused_bytes = contribution_bytes + i64(n) * 16;
    const std::int64_t unfused_bytes = contribution_bytes + i64(n) * 40;

    std::vector<VariantResult> results;
    // Frozen copy of the seed's multiply hot loop (single-chain
    // accumulation over the per-edge weight stream). Every run carries this
    // in-phase baseline so kernel speedups can be read off one run without
    // being confounded by machine phase (shared boxes drift ±30%).
    results.push_back(make_result(
        "seed_pooled_multiply",
        time_variant(opts,
                     [&] {
                       for (std::size_t v = 0; v < n; ++v) {
                         double acc = 0.0;
                         const auto src = m.row_sources(v);
                         const auto w = m.row_weights(v);
                         for (std::size_t e = 0; e < src.size(); ++e) {
                           acc += x[src[e]] * w[e];
                         }
                         y[v] = acc;
                       }
                     }),
        edges, multiply_bytes));
    results.push_back(make_result(
        "serial_multiply",
        time_variant(opts, [&] { m.multiply(x, y); }), edges, multiply_bytes));
    results.push_back(make_result(
        "pooled_multiply",
        time_variant(opts, [&] { m.multiply(x, y, pool); }), edges,
        multiply_bytes));
    results.push_back(make_result(
        "contribution_serial",
        time_variant(opts, [&] { m.sweep(x, y, scratch); }), edges,
        contribution_bytes));
    results.push_back(make_result(
        "contribution_pooled",
        time_variant(opts, [&] { m.sweep(x, y, scratch, pool); }), edges,
        contribution_bytes));
    results.push_back(make_result(
        "fused_sweep_residual",
        time_variant(opts,
                     [&] {
                       auto stats = m.sweep_and_residual(x, y, forcing, scratch, pool);
                       if (stats.l1_delta < 0.0) std::abort();  // keep the result live
                     }),
        edges, fused_bytes));
    results.push_back(make_result(
        "sweep_then_residual",
        time_variant(opts,
                     [&] {
                       m.sweep(x, y, scratch, pool);
                       for (std::size_t v = 0; v < n; ++v) y[v] += forcing[v];
                       volatile double delta = util::l1_distance(y, x);
                       (void)delta;
                     }),
        edges, unfused_bytes));

    const std::string run = render_run(opts, edges, pool.size(), results);
    write_report(opts.out, run);

    std::cout << "graph: " << opts.pages << " pages, " << edges << " edges; pool "
              << pool.size() << " thread(s)\n";
    for (const auto& r : results) {
      std::cout << "  " << r.name << ": " << r.ns_per_sweep / 1e3 << " us/sweep, "
                << r.items_per_sec / 1e6 << " M items/s, "
                << r.bytes_per_sec / 1e9 << " GB/s\n";
    }
    std::cout << "appended run \"" << opts.label << "\" to " << opts.out << "\n";
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  return 0;
}
