// bench_report — machine-readable kernel throughput snapshots.
//
// Times every rank-sweep kernel variant on the standard 50k-page synthetic
// graph and appends one labelled run to BENCH_kernels.json, so the perf
// trajectory of the hot path is recorded PR over PR. The JSON layout (see
// DESIGN.md "Kernel layout") is:
//
//   { "schema": "p2prank-kernel-bench-v1",
//     "runs": [ { "label", "pages", "edges", "pool_threads",
//                 "variants": [ {"name", "ns_per_sweep", "items_per_sec",
//                                "bytes_per_sec"} ... ] } ... ] }
//
// items = CSR entries processed; bytes = hot-loop traffic per the
// accounting in DESIGN.md. Appending to an existing file preserves earlier
// runs (notably the "seed" baseline measured before the contribution
// kernel landed), which is what makes deltas auditable.
//
// --reliability switches to the reliable-exchange benchmark (Fig. 7
// analogue, EXPERIMENTS.md "p sweep with retransmission"): it sweeps the
// delivery probability p and, at each level, runs the SAME graph + seed to
// the convergence threshold under both channel schemes — the paper's
// fire-and-forget and the reliable exchange layer (epochs + retransmit) —
// and appends virtual convergence time plus the full message accounting
// (retransmissions, acks, duplicate rejections, retransmit overhead) to
// BENCH_reliability.json with schema "p2prank-reliability-bench-v1".
//
// --obs measures the observability tax (DESIGN.md §11): the same engine run
// — DPR2 on the standard 50k-page graph, advanced span by span of virtual
// time — once bare and once with a MetricsRegistry + Tracer attached, and
// appends both wall-clock timings plus the overhead ratio to BENCH_obs.json
// with schema "p2prank-obs-bench-v1". The contract is overhead < 5%.
//
// --serve measures the rank-serving layer (DESIGN.md §12): snapshot-publish
// overhead on the sweep (bare vs sink-attached engine — contract < 5%), then
// a closed-loop run of N simulated clients (default 10000) querying the live
// SnapshotStore in virtual time while the engine sweeps underneath, appending
// QPS, p50/p99 latency, and the torn/stale/availability accounting to
// BENCH_serve.json with schema "p2prank-serve-bench-v1". Any torn-epoch read
// fails the run. --serve --determinism-check instead byte-compares the query
// stream, final snapshot, and result checksum across a repeated run and pool
// sizes {1,2}, exiting nonzero on any difference.
//
// --recovery measures the partition-tolerance layer (DESIGN.md §13): a
// reliable-transport engine with a RecoverySupervisor and a SnapshotStore
// attached runs a fixed schedule of hard-cut episodes (cut → evict → degraded
// serving → heal → rejoin), with frame corruption live during each outage.
// Per episode it records the eviction latency (cut → quorum eviction) and
// rejoin latency (heal → readmission), and throughout it runs the
// bounded-staleness EXTERNAL audit: every query recomputes the snapshot age
// from publish_time and cross-checks the server's beyond_bound flag — any
// mismatch is a stale-bound violation, and the contract (plus the exit code)
// requires exactly zero. Appends to BENCH_recovery.json with schema
// "p2prank-recovery-bench-v1"; torn reads, checksum-collision applications,
// or a missed eviction/rejoin also fail the run.
//
// --scale is the DESIGN.md §14 scale sweep: for each requested row (default
// 1M and 10M pages) it streams a synthetic web into the chunked two-pass
// builder, round-trips it through the binary edge-list format, runs a fixed
// number of bounded rank sweeps, and then measures the update path — a
// 1k-edge link-only delta applied via the incremental splice vs the full
// rebuild oracle. Appends rows to BENCH_scale.json with schema
// "p2prank-scale-bench-v1". Contract (enforced by exit code): on rows of
// >= 1M pages the incremental splice must beat the rebuild by >= 10x.
// --scale --determinism-check instead runs the small bitwise gates wired
// into tier-bench-smoke: streamed == builder CSR, binary round-trip
// identity, splice == rebuild CSR, and incremental warm-start ==
// rebuild-then-warm-start rank vectors at worklist epsilon 0.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <limits>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "engine/distributed.hpp"
#include "engine/reference.hpp"
#include "graph/graph_io.hpp"
#include "graph/graph_updates.hpp"
#include "graph/synthetic_web.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/metric_names.hpp"
#include "rank/link_matrix.hpp"
#include "recover/supervisor.hpp"
#include "serve/loadgen.hpp"
#include "serve/snapshot.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace p2prank;
using Clock = std::chrono::steady_clock;

struct VariantResult {
  std::string name;
  double ns_per_sweep = 0.0;
  double items_per_sec = 0.0;
  double bytes_per_sec = 0.0;
};

struct Options {
  std::uint32_t pages = 50000;
  std::uint64_t seed = 42;
  double alpha = 0.85;
  int repetitions = 5;
  double min_rep_seconds = 0.4;
  std::string label = "run";
  std::string out;  // default depends on mode
  /// Kernel mode: pool sizes to sweep, one JSON run per size. Empty keeps
  /// the historical behavior (the shared hardware-sized pool).
  std::vector<unsigned> threads;
  // --reliability mode.
  bool reliability = false;
  std::uint32_t k = 16;
  double error_threshold = 1e-8;
  double max_time = 20000.0;
  // --obs mode.
  bool obs = false;
  // --serve mode.
  bool serve = false;
  bool determinism_check = false;
  std::uint32_t clients = 10000;
  double serve_duration = 200.0;  // virtual time of the closed-loop phase
  // --recovery mode.
  bool recovery = false;
  std::uint32_t episodes = 4;
  // --scale mode.
  bool scale = false;
  std::vector<std::uint64_t> scale_rows;  // default {1M, 10M}
  int scale_sweeps = 8;
  std::size_t delta_edges = 1000;
};

/// Best-of-`repetitions` timing of one sweep variant: each repetition runs
/// the body until `min_rep_seconds` elapse and reports ns/sweep; the
/// minimum over repetitions filters scheduler noise.
template <typename Body>
double time_variant(const Options& opts, const Body& body) {
  for (int i = 0; i < 3; ++i) body();  // warm caches and scratch
  double best_ns = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < opts.repetitions; ++rep) {
    std::size_t sweeps = 0;
    const auto start = Clock::now();
    Clock::time_point now;
    do {
      body();
      ++sweeps;
      now = Clock::now();
    } while (std::chrono::duration<double>(now - start).count() < opts.min_rep_seconds);
    const double ns =
        std::chrono::duration<double, std::nano>(now - start).count() /
        static_cast<double>(sweeps);
    best_ns = std::min(best_ns, ns);
  }
  return best_ns;
}

VariantResult make_result(const std::string& name, double ns_per_sweep,
                          std::size_t items, std::int64_t bytes) {
  VariantResult r;
  r.name = name;
  r.ns_per_sweep = ns_per_sweep;
  r.items_per_sec = static_cast<double>(items) / (ns_per_sweep * 1e-9);
  r.bytes_per_sec = static_cast<double>(bytes) / (ns_per_sweep * 1e-9);
  return r;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Fixed-notation JSON number. Default ostream formatting flips between
/// integer-looking and 9.47164e+08-style scientific output depending on the
/// measured magnitude, so consecutive runs of the same tool did not diff
/// cleanly. Magnitude-banded precision keeps throughputs fixed-point and
/// tiny thresholds exact, and the same value always renders the same way.
std::string json_number(double v) {
  std::ostringstream t;
  const double a = std::abs(v);
  if (a != 0.0 && (a >= 1e15 || a < 1e-6)) {
    t << std::scientific << std::setprecision(6) << v;
  } else {
    t << std::fixed << std::setprecision(3) << v;
  }
  return t.str();
}

std::string render_run(const Options& opts, std::size_t edges,
                       std::size_t pool_threads,
                       const std::vector<VariantResult>& variants) {
  std::ostringstream os;
  os << "    {\n";
  os << "      \"label\": \"" << json_escape(opts.label) << "\",\n";
  os << "      \"pages\": " << opts.pages << ",\n";
  os << "      \"edges\": " << edges << ",\n";
  os << "      \"graph_seed\": " << opts.seed << ",\n";
  os << "      \"alpha\": " << json_number(opts.alpha) << ",\n";
  os << "      \"pool_threads\": " << pool_threads << ",\n";
  os << "      \"variants\": [\n";
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const auto& v = variants[i];
    os << "        {\"name\": \"" << json_escape(v.name) << "\", "
       << "\"ns_per_sweep\": " << json_number(v.ns_per_sweep) << ", "
       << "\"items_per_sec\": " << json_number(v.items_per_sec) << ", "
       << "\"bytes_per_sec\": " << json_number(v.bytes_per_sec) << "}"
       << (i + 1 < variants.size() ? "," : "") << "\n";
  }
  os << "      ]\n";
  os << "    }";
  return os.str();
}

/// Append `run` to the "runs" array of `path`, or create the file with the
/// given schema tag. Only files written by this tool are understood;
/// anything else is replaced.
void write_report(const std::string& path, const std::string& schema,
                  const std::string& run) {
  static constexpr const char* kTail = "\n  ]\n}\n";
  std::string existing;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      existing = buf.str();
    }
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("bench_report: cannot write " + path);
  const std::size_t tail_at = existing.rfind(kTail);
  if (!existing.empty() && tail_at != std::string::npos &&
      tail_at + std::strlen(kTail) == existing.size()) {
    out << existing.substr(0, tail_at) << ",\n" << run << kTail;
  } else {
    out << "{\n  \"schema\": \"" << schema << "\",\n  \"runs\": [\n"
        << run << kTail;
  }
}

// --- Reliability benchmark ---------------------------------------------------

struct ReliabilityPoint {
  double delivery_p = 1.0;
  bool reliable = false;
  engine::ConvergenceResult res;
};

/// One run to the error threshold on the standard synthetic graph, modulo
/// the channel scheme. Same graph, same partition, same engine seed across
/// every point: the only varying inputs are p and the scheme.
ReliabilityPoint run_reliability_point(const graph::WebGraph& g,
                                       const std::vector<std::uint32_t>& assignment,
                                       const std::vector<double>& reference,
                                       const Options& opts, double p,
                                       bool reliable, util::ThreadPool& pool) {
  engine::EngineOptions eo;
  eo.algorithm = engine::Algorithm::kDPR2;
  eo.alpha = opts.alpha;
  eo.delivery_probability = p;
  // A fixed mean wait makes the schemes comparable per loss: a dropped
  // slice costs fire-and-forget a whole loop period (the next full resend),
  // while retransmission recovers it after one RTO. The default [t1, t2] =
  // [0, 6] spread would blur that signal across groups.
  eo.t1 = 4.0;
  eo.t2 = 4.0;
  eo.seed = opts.seed ^ 0xabcdef12345ULL;
  eo.reliability.retransmit = reliable;  // implies epochs + failure detection
  engine::DistributedRanking sim(g, assignment, opts.k, eo, pool);
  sim.set_reference(reference);
  ReliabilityPoint point;
  point.delivery_p = p;
  point.reliable = reliable;
  point.res = sim.run_until_error(opts.error_threshold, opts.max_time, 1.0);
  return point;
}

std::string render_reliability_run(const Options& opts, std::size_t edges,
                                   const std::vector<ReliabilityPoint>& points) {
  std::ostringstream os;
  os << "    {\n";
  os << "      \"label\": \"" << json_escape(opts.label) << "\",\n";
  os << "      \"pages\": " << opts.pages << ",\n";
  os << "      \"edges\": " << edges << ",\n";
  os << "      \"k\": " << opts.k << ",\n";
  os << "      \"graph_seed\": " << opts.seed << ",\n";
  os << "      \"alpha\": " << json_number(opts.alpha) << ",\n";
  os << "      \"error_threshold\": " << json_number(opts.error_threshold) << ",\n";
  os << "      \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& pt = points[i];
    const auto& r = pt.res;
    const double overhead =
        r.messages_sent == 0
            ? 0.0
            : static_cast<double>(r.retransmissions) /
                  static_cast<double>(r.messages_sent);
    os << "        {\"delivery_p\": " << json_number(pt.delivery_p)
       << ", \"scheme\": \""
       << (pt.reliable ? "reliable" : "fire_and_forget") << "\", "
       << "\"reached\": " << (r.reached ? "true" : "false") << ", "
       << "\"time\": " << json_number(r.time) << ", "
       << "\"mean_outer_steps\": " << json_number(r.mean_outer_steps) << ", "
       << "\"messages_sent\": " << r.messages_sent << ", "
       << "\"messages_lost\": " << r.messages_lost << ", "
       << "\"retransmissions\": " << r.retransmissions << ", "
       << "\"acks_sent\": " << r.acks_sent << ", "
       << "\"duplicates_rejected\": " << r.duplicates_rejected << ", "
       << "\"retransmit_overhead\": " << json_number(overhead) << ", "
       << "\"final_relative_error\": " << json_number(r.final_relative_error)
       << "}" << (i + 1 < points.size() ? "," : "") << "\n";
  }
  os << "      ]\n";
  os << "    }";
  return os.str();
}

int run_reliability_bench(const Options& opts) {
  const auto g = graph::generate_synthetic_web(
      graph::google2002_config(opts.pages, opts.seed));
  auto& pool = util::ThreadPool::shared();
  // Round-robin partition: deterministic, balanced, independent of the
  // partition library (this benchmark compares channels, not partitions).
  std::vector<std::uint32_t> assignment(g.num_pages());
  for (std::uint32_t p = 0; p < g.num_pages(); ++p) assignment[p] = p % opts.k;
  const std::vector<double> reference =
      engine::open_system_reference(g, opts.alpha, pool);

  static constexpr double kLevels[] = {1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4};
  std::vector<ReliabilityPoint> points;
  for (const double p : kLevels) {
    for (const bool reliable : {false, true}) {
      points.push_back(run_reliability_point(g, assignment, reference, opts, p,
                                             reliable, pool));
      const auto& pt = points.back();
      std::cout << "  p=" << p << ' '
                << (reliable ? "reliable       " : "fire-and-forget")
                << "  t=" << pt.res.time
                << (pt.res.reached ? "" : " (NOT converged)")
                << "  msgs=" << pt.res.messages_sent
                << " rexmit=" << pt.res.retransmissions
                << " dups=" << pt.res.duplicates_rejected << "\n";
    }
  }

  std::size_t edges = 0;
  for (graph::PageId u = 0; u < g.num_pages(); ++u) edges += g.out_degree(u);
  write_report(opts.out, "p2prank-reliability-bench-v1",
               render_reliability_run(opts, edges, points));
  std::cout << "appended run \"" << opts.label << "\" to " << opts.out << "\n";
  return 0;
}

// --- Observability overhead benchmark ----------------------------------------

std::string render_obs_run(const Options& opts, std::size_t edges,
                           std::size_t pool_threads, double span,
                           double baseline_ns, double instrumented_ns,
                           const p2prank::obs::Tracer& tracer) {
  const double overhead = instrumented_ns / baseline_ns - 1.0;
  std::ostringstream os;
  os << "    {\n";
  os << "      \"label\": \"" << json_escape(opts.label) << "\",\n";
  os << "      \"pages\": " << opts.pages << ",\n";
  os << "      \"edges\": " << edges << ",\n";
  os << "      \"k\": " << opts.k << ",\n";
  os << "      \"graph_seed\": " << opts.seed << ",\n";
  os << "      \"alpha\": " << json_number(opts.alpha) << ",\n";
  os << "      \"pool_threads\": " << pool_threads << ",\n";
  os << "      \"span_virtual_time\": " << json_number(span) << ",\n";
  os << "      \"baseline_ns_per_span\": " << json_number(baseline_ns) << ",\n";
  os << "      \"instrumented_ns_per_span\": " << json_number(instrumented_ns)
     << ",\n";
  os << "      \"overhead\": " << json_number(overhead) << ",\n";
  os << "      \"trace_events\": " << tracer.size() << ",\n";
  os << "      \"trace_dropped\": " << tracer.dropped() << "\n";
  os << "    }";
  return os.str();
}

int run_obs_bench(const Options& opts) {
  const auto g = graph::generate_synthetic_web(
      graph::google2002_config(opts.pages, opts.seed));
  auto& pool = util::ThreadPool::shared();
  // Round-robin partition, as in the reliability bench: this measures the
  // observability tax, not partition quality.
  std::vector<std::uint32_t> assignment(g.num_pages());
  for (std::uint32_t p = 0; p < g.num_pages(); ++p) assignment[p] = p % opts.k;
  const std::vector<double> reference =
      engine::open_system_reference(g, opts.alpha, pool);

  const auto make_engine = [&](p2prank::obs::MetricsRegistry* m,
                               p2prank::obs::Tracer* t) {
    engine::EngineOptions eo;
    eo.algorithm = engine::Algorithm::kDPR2;
    eo.alpha = opts.alpha;
    eo.seed = opts.seed ^ 0x0b5e55ULL;
    eo.metrics = m;
    eo.tracer = t;
    auto sim = std::make_unique<engine::DistributedRanking>(g, assignment,
                                                            opts.k, eo, pool);
    sim->set_reference(reference);
    return sim;
  };

  // Each body call advances its engine by the same span of virtual time.
  // The sweep/exchange timers keep firing whether or not the run has
  // converged, so every span does the same simulated work — exactly the
  // steady-state hot path the <5% overhead contract covers.
  constexpr double kSpan = 10.0;
  p2prank::obs::MetricsRegistry metrics;
  p2prank::obs::Tracer tracer;
  auto baseline = make_engine(nullptr, nullptr);
  auto instrumented = make_engine(&metrics, &tracer);
  double base_t = 0.0;
  double instr_t = 0.0;
  const double baseline_ns = time_variant(opts, [&] {
    base_t += kSpan;
    (void)baseline->run(base_t, kSpan);
  });
  const double instrumented_ns = time_variant(opts, [&] {
    instr_t += kSpan;
    (void)instrumented->run(instr_t, kSpan);
  });
  p2prank::obs::export_pool_metrics(pool, metrics);

  std::size_t edges = 0;
  for (graph::PageId u = 0; u < g.num_pages(); ++u) edges += g.out_degree(u);
  const double overhead = instrumented_ns / baseline_ns - 1.0;
  std::cout << "graph: " << opts.pages << " pages, " << edges << " edges; k="
            << opts.k << "; pool " << pool.size() << " thread(s)\n"
            << "  bare:         " << baseline_ns / 1e6 << " ms per " << kSpan
            << " virtual time units\n"
            << "  instrumented: " << instrumented_ns / 1e6 << " ms per " << kSpan
            << " virtual time units\n"
            << "  overhead:     " << overhead * 100.0 << "% ("
            << tracer.size() << " trace events, " << tracer.dropped()
            << " dropped)\n";
  write_report(opts.out, "p2prank-obs-bench-v1",
               render_obs_run(opts, edges, pool.size(), kSpan, baseline_ns,
                              instrumented_ns, tracer));
  std::cout << "appended run \"" << opts.label << "\" to " << opts.out << "\n";
  return 0;
}

// --- Rank-serving benchmark --------------------------------------------------

constexpr std::uint32_t kServeServers = 64;
constexpr double kServeSlice = 1.0;  // engine <-> loadgen interleave step

/// One complete co-simulated serving run: a DPR2 engine with a SnapshotStore
/// attached, advanced slice by slice of virtual time, with the closed-loop
/// load generator querying the store in between. Returns everything the
/// determinism check byte-compares.
struct ServeRunOut {
  serve::LoadGenReport report;
  std::string stream;    // per-query log (record_stream only)
  std::string snapshot;  // final snapshot, serialized
  std::uint64_t snapshots_published = 0;
  std::uint64_t buffer_reuses = 0;
};

ServeRunOut one_serve_run(const graph::WebGraph& g,
                          const std::vector<std::uint32_t>& assignment,
                          const std::vector<double>& reference,
                          const Options& opts, util::ThreadPool& pool,
                          std::uint32_t clients, double duration,
                          bool record_stream,
                          p2prank::obs::MetricsRegistry* metrics = nullptr) {
  engine::EngineOptions eo;
  eo.algorithm = engine::Algorithm::kDPR2;
  eo.alpha = opts.alpha;
  eo.seed = opts.seed ^ 0x5e57e0ULL;
  serve::SnapshotStore store(/*top_k_capacity=*/16);
  eo.snapshot_sink = &store;
  engine::DistributedRanking sim(g, assignment, opts.k, eo, pool);
  sim.set_reference(reference);

  serve::LoadGenOptions lg;
  lg.clients = clients;
  lg.servers = kServeServers;
  lg.seed = opts.seed ^ 0x10adULL;
  lg.record_stream = record_stream;
  serve::LoadGenerator gen(store, g.num_pages(), lg, metrics);

  for (double t = kServeSlice; t <= duration + 1e-9; t += kServeSlice) {
    (void)sim.run(t, kServeSlice);
    gen.run_until(t);
  }

  ServeRunOut out;
  out.report = gen.report();
  out.stream = gen.stream_log();
  std::ostringstream snap;
  if (const auto s = store.acquire()) s->serialize(snap);
  out.snapshot = snap.str();
  out.snapshots_published = store.published();
  out.buffer_reuses = store.buffer_reuses();
  if (metrics != nullptr) {
    serve::export_serve_metrics(store, gen.server(), *metrics);
    metrics->gauge(p2prank::obs::names::kServeQps) = out.report.qps;
    metrics->gauge(p2prank::obs::names::kServeLatencyP50) = out.report.p50;
    metrics->gauge(p2prank::obs::names::kServeLatencyP99) = out.report.p99;
    metrics->gauge(p2prank::obs::names::kServeMaxQueueDepth) =
        static_cast<double>(out.report.max_queue_depth);
  }
  return out;
}

std::string render_serve_run(const Options& opts, std::size_t edges,
                             std::uint32_t loadgen_pages,
                             std::size_t pool_threads, double baseline_ns,
                             double serving_ns, double publish_ns,
                             double snapshot_interval, double overhead,
                             const ServeRunOut& run) {
  const auto& r = run.report;
  std::ostringstream os;
  os << "    {\n";
  os << "      \"label\": \"" << json_escape(opts.label) << "\",\n";
  os << "      \"pages\": " << opts.pages << ",\n";
  os << "      \"edges\": " << edges << ",\n";
  os << "      \"loadgen_pages\": " << loadgen_pages << ",\n";
  os << "      \"k\": " << opts.k << ",\n";
  os << "      \"graph_seed\": " << opts.seed << ",\n";
  os << "      \"pool_threads\": " << pool_threads << ",\n";
  os << "      \"clients\": " << opts.clients << ",\n";
  os << "      \"servers\": " << kServeServers << ",\n";
  os << "      \"duration_virtual\": " << json_number(opts.serve_duration)
     << ",\n";
  os << "      \"baseline_ns_per_span\": " << json_number(baseline_ns) << ",\n";
  os << "      \"serving_ns_per_span\": " << json_number(serving_ns) << ",\n";
  os << "      \"publish_ns_per_snapshot\": " << json_number(publish_ns)
     << ",\n";
  os << "      \"snapshot_interval\": " << json_number(snapshot_interval)
     << ",\n";
  os << "      \"publish_overhead\": " << json_number(overhead) << ",\n";
  os << "      \"qps\": " << json_number(r.qps) << ",\n";
  os << "      \"p50\": " << json_number(r.p50) << ",\n";
  os << "      \"p99\": " << json_number(r.p99) << ",\n";
  os << "      \"max_latency\": " << json_number(r.max_latency) << ",\n";
  os << "      \"issued\": " << r.issued << ",\n";
  os << "      \"completed\": " << r.completed << ",\n";
  os << "      \"point_queries\": " << r.point_queries << ",\n";
  os << "      \"topk_queries\": " << r.topk_queries << ",\n";
  os << "      \"torn_reads\": " << r.torn_reads << ",\n";
  os << "      \"stale_reads\": " << r.stale_reads << ",\n";
  os << "      \"unavailable\": " << r.unavailable << ",\n";
  os << "      \"max_queue_depth\": " << r.max_queue_depth << ",\n";
  os << "      \"snapshots_published\": " << run.snapshots_published << ",\n";
  os << "      \"buffer_reuses\": " << run.buffer_reuses << ",\n";
  os << "      \"checksum\": " << r.checksum << "\n";
  os << "    }";
  return os.str();
}

/// Forwards RankSnapshotSink calls to the real store while timing each
/// publish at the call site — the measurement side of run_serve_bench's
/// direct-attribution overhead estimate.
class TimingSink final : public engine::RankSnapshotSink {
 public:
  explicit TimingSink(engine::RankSnapshotSink& inner) : inner_(inner) {}

  void publish(double time, std::span<const double> ranks,
               std::span<const std::uint32_t> assignment,
               std::uint32_t num_shards) override {
    const auto t0 = Clock::now();
    inner_.publish(time, ranks, assignment, num_shards);
    record(t0);
  }
  void publish_groups(double time, std::span<const engine::GroupCut> groups,
                      std::uint32_t num_pages,
                      std::uint64_t ownership_version) override {
    const auto t0 = Clock::now();
    inner_.publish_groups(time, groups, num_pages, ownership_version);
    record(t0);
  }
  void invalidate(double time) override { inner_.invalidate(time); }

  /// Median nanoseconds over all recorded publishes (0 if none) — robust
  /// against the occasional publish that eats a scheduler preemption.
  [[nodiscard]] double median_ns() const {
    if (samples_.empty()) return 0.0;
    std::vector<double> s = samples_;
    const auto mid = s.begin() + static_cast<std::ptrdiff_t>(s.size() / 2);
    std::nth_element(s.begin(), mid, s.end());
    return *mid;
  }

 private:
  void record(Clock::time_point t0) {
    samples_.push_back(
        std::chrono::duration<double, std::nano>(Clock::now() - t0).count());
  }

  engine::RankSnapshotSink& inner_;
  std::vector<double> samples_;
};

int run_serve_bench(const Options& opts) {
  auto& pool = util::ThreadPool::shared();
  // Phase 1 graph at full scale (default 50k pages, like the obs bench):
  // the publish-overhead ratio only means something where sweeps carry
  // their real memory traffic. Round-robin partition, as in the
  // reliability/obs benches: this measures the serving layer, not
  // partition quality.
  const auto g = graph::generate_synthetic_web(
      graph::google2002_config(opts.pages, opts.seed));
  std::vector<std::uint32_t> assignment(g.num_pages());
  for (std::uint32_t p = 0; p < g.num_pages(); ++p) assignment[p] = p % opts.k;
  const std::vector<double> reference =
      engine::open_system_reference(g, opts.alpha, pool);

  // Phase 1 — publish overhead: a sweep span, bare vs with a SnapshotStore
  // attached, publishing once per mean outer iteration ((t1+t2)/2 of the
  // step timer — the "snapshot after each outer iteration" cadence of
  // DESIGN.md §12). The serving contract caps the slowdown at < 5%.
  //
  // The criterion is computed by DIRECT ATTRIBUTION: each publish is timed
  // at the sink and its per-virtual-time-unit cost is divided by a
  // low-quantile sweep cost. On a shared machine the span timings carry
  // ±50% scheduler bursts, so the difference of two noisy span populations
  // cannot resolve a few-percent effect; a median over ~100 individually
  // timed publishes and a 10th-percentile sweep floor can.
  const double snapshot_interval = [] {
    engine::EngineOptions defaults;
    return 0.5 * (defaults.t1 + defaults.t2);
  }();
  const auto make_engine = [&](engine::RankSnapshotSink* sink) {
    engine::EngineOptions eo;
    eo.algorithm = engine::Algorithm::kDPR2;
    eo.alpha = opts.alpha;
    eo.seed = opts.seed ^ 0x5e57e0ULL;
    eo.snapshot_sink = sink;
    eo.snapshot_interval = snapshot_interval;
    auto sim = std::make_unique<engine::DistributedRanking>(g, assignment,
                                                            opts.k, eo, pool);
    sim->set_reference(reference);
    return sim;
  };
  constexpr double kSpan = 10.0;
  serve::SnapshotStore overhead_store(/*top_k_capacity=*/16);
  TimingSink timed_sink(overhead_store);
  auto bare = make_engine(nullptr);
  auto serving = make_engine(&timed_sink);
  double bare_t = 0.0;
  double serving_t = 0.0;
  const auto time_span = [](engine::DistributedRanking& sim, double& t) {
    const auto start = Clock::now();
    t += kSpan;
    (void)sim.run(t, kSpan);
    return std::chrono::duration<double, std::nano>(Clock::now() - start)
        .count();
  };
  // Interleave bare/serving spans so both variants sample the same machine
  // conditions with their virtual clocks in lockstep; the reported span
  // costs are 10th percentiles (burst noise is purely additive, so a low
  // quantile estimates the undisturbed cost).
  std::vector<double> bare_spans;
  std::vector<double> serving_spans;
  for (int i = 0; i < 3; ++i) {  // warm caches and scratch
    time_span(*bare, bare_t);
    time_span(*serving, serving_t);
  }
  const int reps = std::max(opts.repetitions * 4, 20);
  for (int rep = 0; rep < reps; ++rep) {
    bare_spans.push_back(time_span(*bare, bare_t));
    serving_spans.push_back(time_span(*serving, serving_t));
  }
  const auto quantile = [](std::vector<double> v, double q) {
    std::sort(v.begin(), v.end());
    return v[static_cast<std::size_t>(q * static_cast<double>(v.size() - 1))];
  };
  const double baseline_ns = quantile(bare_spans, 0.1);
  const double serving_ns = quantile(serving_spans, 0.1);
  const double publish_ns = timed_sink.median_ns();
  const double overhead =
      (publish_ns / snapshot_interval) / (baseline_ns / kSpan);

  // Phase 2 — the closed-loop run: `clients` simulated clients querying the
  // live store while the engine sweeps underneath, all in virtual time. A
  // smaller graph keeps the co-simulated wall time sane; the serving-side
  // numbers (QPS, latency, epoch accounting) don't need the 50k sweeps.
  const std::uint32_t loadgen_pages = std::min<std::uint32_t>(opts.pages, 2000);
  const auto g2 = graph::generate_synthetic_web(
      graph::google2002_config(loadgen_pages, opts.seed));
  std::vector<std::uint32_t> assignment2(g2.num_pages());
  for (std::uint32_t p = 0; p < g2.num_pages(); ++p) {
    assignment2[p] = p % opts.k;
  }
  const std::vector<double> reference2 =
      engine::open_system_reference(g2, opts.alpha, pool);
  p2prank::obs::MetricsRegistry metrics;
  const auto wall_start = Clock::now();
  const ServeRunOut run =
      one_serve_run(g2, assignment2, reference2, opts, pool, opts.clients,
                    opts.serve_duration, /*record_stream=*/false, &metrics);
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - wall_start).count();

  std::size_t edges = 0;
  for (graph::PageId u = 0; u < g.num_pages(); ++u) edges += g.out_degree(u);
  const auto& r = run.report;
  std::cout << "overhead graph: " << opts.pages << " pages, " << edges
            << " edges; closed-loop graph: " << loadgen_pages << " pages; k="
            << opts.k << "; pool " << pool.size() << " thread(s)\n"
            << "  publish overhead: " << overhead * 100.0 << "% (median "
            << "publish " << publish_ns / 1e3 << " us every "
            << snapshot_interval << " virtual time units; p10 sweep spans "
            << baseline_ns / 1e6 << " -> " << serving_ns / 1e6 << " ms per "
            << kSpan << " units)\n"
            << "  closed loop: " << opts.clients << " clients, "
            << r.completed << " queries in " << r.duration
            << " virtual time units (" << wall_s << " s wall)\n"
            << "  qps=" << r.qps << " p50=" << r.p50 << " p99=" << r.p99
            << " max_queue_depth=" << r.max_queue_depth << "\n"
            << "  torn_reads=" << r.torn_reads << " stale_reads="
            << r.stale_reads << " unavailable=" << r.unavailable
            << " snapshots=" << run.snapshots_published << " (reused "
            << run.buffer_reuses << " buffers)\n";

  write_report(opts.out, "p2prank-serve-bench-v1",
               render_serve_run(opts, edges, loadgen_pages, pool.size(),
                                baseline_ns, serving_ns, publish_ns,
                                snapshot_interval, overhead, run));
  std::cout << "appended run \"" << opts.label << "\" to " << opts.out << "\n";
  if (r.torn_reads != 0) {
    std::cerr << "bench_report: FAIL — " << r.torn_reads
              << " torn-epoch read(s); the serving contract requires zero\n";
    return 1;
  }
  return 0;
}

/// --serve --determinism-check: the serving stack must be a pure function
/// of its seeds — same run twice, and again on a different pool size, must
/// produce byte-identical query streams, reports, and final snapshots.
int run_serve_determinism_check(Options opts) {
  opts.pages = std::min<std::uint32_t>(opts.pages, 2000);
  opts.clients = std::min<std::uint32_t>(opts.clients, 256);
  opts.serve_duration = std::min(opts.serve_duration, 30.0);

  const auto g = graph::generate_synthetic_web(
      graph::google2002_config(opts.pages, opts.seed));
  std::vector<std::uint32_t> assignment(g.num_pages());
  for (std::uint32_t p = 0; p < g.num_pages(); ++p) assignment[p] = p % opts.k;

  const auto run_with_pool = [&](std::size_t threads) {
    util::ThreadPool pool(threads);
    const std::vector<double> reference =
        engine::open_system_reference(g, opts.alpha, pool);
    return one_serve_run(g, assignment, reference, opts, pool, opts.clients,
                         opts.serve_duration, /*record_stream=*/true);
  };
  const ServeRunOut a = run_with_pool(1);
  const ServeRunOut b = run_with_pool(1);
  const ServeRunOut c = run_with_pool(2);

  bool ok = true;
  const auto expect = [&](bool cond, const char* what) {
    if (!cond) {
      std::cerr << "bench_report: serve determinism FAIL — " << what << "\n";
      ok = false;
    }
  };
  expect(!a.stream.empty(), "empty query stream");
  expect(a.stream == b.stream, "query stream differs between identical runs");
  expect(a.stream == c.stream, "query stream differs across pool sizes 1 vs 2");
  expect(a.snapshot == b.snapshot,
         "final snapshot differs between identical runs");
  expect(a.snapshot == c.snapshot,
         "final snapshot differs across pool sizes 1 vs 2");
  expect(a.report.checksum == b.report.checksum,
         "result checksum differs between identical runs");
  expect(a.report.checksum == c.report.checksum,
         "result checksum differs across pool sizes 1 vs 2");
  expect(a.report.torn_reads == 0, "torn-epoch reads in determinism run");
  if (ok) {
    std::cout << "serve determinism check passed: " << a.report.completed
              << " queries, checksum " << a.report.checksum
              << ", identical across repeat + pool sizes {1,2}\n";
  }
  return ok ? 0 : 1;
}

// --- Recovery benchmark ------------------------------------------------------

/// One hard-cut outage: the measured timestamps and whether both state
/// transitions actually happened (a miss fails the whole run).
struct RecoveryEpisode {
  std::uint32_t victim = 0;
  double cut_time = 0.0;
  double evict_time = 0.0;
  double heal_time = 0.0;
  double rejoin_time = 0.0;
  bool evicted = false;
  bool rejoined = false;
};

std::string render_recovery_run(const Options& opts, std::size_t edges,
                                double staleness_bound,
                                const std::vector<RecoveryEpisode>& episodes,
                                const engine::DistributedRanking& sim,
                                const recover::RecoverySupervisor& sup,
                                const serve::RankServer& server,
                                std::uint64_t stale_bound_violations,
                                const engine::ConvergenceResult& reconverge) {
  double evict_sum = 0.0, evict_max = 0.0, rejoin_sum = 0.0, rejoin_max = 0.0;
  for (const auto& e : episodes) {
    const double ev = e.evict_time - e.cut_time;
    const double rj = e.rejoin_time - e.heal_time;
    evict_sum += ev;
    evict_max = std::max(evict_max, ev);
    rejoin_sum += rj;
    rejoin_max = std::max(rejoin_max, rj);
  }
  const double n = episodes.empty() ? 1.0 : static_cast<double>(episodes.size());
  std::ostringstream os;
  os << "    {\n";
  os << "      \"label\": \"" << json_escape(opts.label) << "\",\n";
  os << "      \"pages\": " << opts.pages << ",\n";
  os << "      \"edges\": " << edges << ",\n";
  os << "      \"k\": " << opts.k << ",\n";
  os << "      \"graph_seed\": " << opts.seed << ",\n";
  os << "      \"staleness_bound\": " << json_number(staleness_bound) << ",\n";
  os << "      \"episodes\": [\n";
  for (std::size_t i = 0; i < episodes.size(); ++i) {
    const auto& e = episodes[i];
    os << "        {\"victim\": " << e.victim << ", "
       << "\"cut_time\": " << json_number(e.cut_time) << ", "
       << "\"eviction_latency\": " << json_number(e.evict_time - e.cut_time)
       << ", "
       << "\"heal_time\": " << json_number(e.heal_time) << ", "
       << "\"rejoin_latency\": " << json_number(e.rejoin_time - e.heal_time)
       << "}" << (i + 1 < episodes.size() ? "," : "") << "\n";
  }
  os << "      ],\n";
  os << "      \"eviction_latency_mean\": " << json_number(evict_sum / n)
     << ",\n";
  os << "      \"eviction_latency_max\": " << json_number(evict_max) << ",\n";
  os << "      \"rejoin_latency_mean\": " << json_number(rejoin_sum / n)
     << ",\n";
  os << "      \"rejoin_latency_max\": " << json_number(rejoin_max) << ",\n";
  os << "      \"evictions\": " << sup.evictions() << ",\n";
  os << "      \"rejoins\": " << sup.rejoins() << ",\n";
  os << "      \"queries\": " << server.queries() << ",\n";
  os << "      \"degraded_reads\": " << server.degraded_reads() << ",\n";
  os << "      \"shard_down_reads\": " << server.shard_down_reads() << ",\n";
  os << "      \"stale_reads\": " << server.stale_reads() << ",\n";
  os << "      \"unavailable\": " << server.unavailable() << ",\n";
  os << "      \"torn_reads\": " << server.torn_reads() << ",\n";
  os << "      \"stale_bound_violations\": " << stale_bound_violations << ",\n";
  os << "      \"partition_drops\": " << sim.partition_drops() << ",\n";
  os << "      \"frames_corrupted\": " << sim.frames_corrupted() << ",\n";
  os << "      \"frames_quarantined\": " << sim.frames_quarantined() << ",\n";
  os << "      \"retransmissions\": " << sim.retransmissions() << ",\n";
  os << "      \"messages_sent\": " << sim.messages_sent() << ",\n";
  os << "      \"reconverged\": " << (reconverge.reached ? "true" : "false")
     << ",\n";
  os << "      \"reconverge_time\": " << json_number(reconverge.time) << ",\n";
  os << "      \"final_relative_error\": "
     << json_number(reconverge.final_relative_error) << "\n";
  os << "    }";
  return os.str();
}

int run_recovery_bench(const Options& opts) {
  const auto g = graph::generate_synthetic_web(
      graph::google2002_config(opts.pages, opts.seed));
  auto& pool = util::ThreadPool::shared();
  // Round-robin partition, as in the other engine-level benches: this
  // measures the recovery machinery, not partition quality. It also makes
  // victim-owned probe pages trivial to name: page v belongs to ranker v.
  std::vector<std::uint32_t> assignment(g.num_pages());
  for (std::uint32_t p = 0; p < g.num_pages(); ++p) assignment[p] = p % opts.k;
  const std::vector<double> reference =
      engine::open_system_reference(g, opts.alpha, pool);

  // Fast step cadence so detection latency reflects the supervisor's
  // escalation (quorum + streak), not a leisurely exchange timer; a sparse
  // publish cadence against a tighter staleness bound so BOTH branches of
  // the external audit run constantly — queries alternate between fresh
  // (age <= bound) and degraded (age > bound, flag required).
  engine::EngineOptions eo;
  eo.algorithm = engine::Algorithm::kDPR2;
  eo.alpha = opts.alpha;
  eo.t1 = 0.5;
  eo.t2 = 1.0;
  eo.seed = opts.seed ^ 0x4ec04e4ULL;
  eo.reliability.retransmit = true;
  serve::SnapshotStore store(/*top_k_capacity=*/16);
  eo.snapshot_sink = &store;
  eo.snapshot_interval = 4.0;
  constexpr double kStaleBound = 2.0;
  constexpr double kTick = 1.0;

  engine::DistributedRanking sim(g, assignment, opts.k, eo, pool);
  sim.set_reference(reference);
  p2prank::obs::MetricsRegistry metrics;
  recover::SupervisorOptions so;
  so.metrics = &metrics;
  so.serve_store = &store;
  recover::RecoverySupervisor sup(sim, so);
  serve::RankServer server(store);
  server.set_staleness_bound(kStaleBound);

  // The external staleness audit: recompute the snapshot's age from its own
  // publish_time and demand the flag match, per query, on every query shape.
  // This is deliberately OUTSIDE the flagging path (snapshot.cpp computes
  // the same predicate from the same inputs; the audit catches either side
  // drifting — e.g. a future cache that serves a stale flag with a fresh
  // snapshot).
  std::uint64_t stale_bound_violations = 0;
  const auto check = [&](double now, bool served, bool beyond,
                         double publish_time) {
    if (!served) return;
    const bool should = now - publish_time > kStaleBound;
    if (should != beyond) ++stale_bound_violations;
  };
  const std::uint32_t probe_page = opts.k - 1;  // owned by the last ranker,
                                                // never a victim below
  const auto audit = [&](std::uint32_t victim) {
    const double now = sim.now();
    const auto pr = server.rank(probe_page, now);
    check(now, pr.served, pr.beyond_bound, pr.publish_time);
    const auto vr = server.rank(victim, now);  // page `victim` is shard-local
    check(now, vr.served, vr.beyond_bound, vr.publish_time);
    const auto tk = server.top_k(8, now);
    check(now, tk.served, tk.beyond_bound, tk.publish_time);
    const auto sk = server.shard_top_k(victim, 4, now);
    check(now, sk.served, sk.beyond_bound, sk.publish_time);
  };
  const auto drive = [&](std::uint32_t victim, double until, auto done) {
    while (sim.now() < until) {
      (void)sim.run(sim.now() + kTick, kTick);
      sup.tick(sim.now());
      audit(victim);
      if (done()) break;
    }
  };

  std::vector<RecoveryEpisode> episodes;
  bool ok = true;
  constexpr double kEpisodeTimeout = 300.0;
  constexpr double kDegradedDwell = 10.0;
  for (std::uint32_t i = 0; i < opts.episodes; ++i) {
    RecoveryEpisode e;
    e.victim = i % (opts.k - 1);  // rotate, keep probe_page's ranker healthy
    e.cut_time = sim.now();
    sim.set_partition(std::uint64_t{1} << e.victim, 0.0, 0.0);
    sim.set_corruption(0.25);  // every outage also stresses the codec
    drive(e.victim, e.cut_time + kEpisodeTimeout, [&] {
      return sup.state(e.victim) == recover::RankerState::kEvicted;
    });
    e.evicted = sup.state(e.victim) == recover::RankerState::kEvicted;
    e.evict_time = sim.now();
    // Dwell evicted: degraded serving against the down shard is the point.
    drive(e.victim, sim.now() + kDegradedDwell, [] { return false; });
    e.heal_time = sim.now();
    sim.heal_partition();
    sim.set_corruption(0.0);
    drive(e.victim, e.heal_time + kEpisodeTimeout, [&] {
      return sup.state(e.victim) == recover::RankerState::kHealthy;
    });
    e.rejoined = sup.state(e.victim) == recover::RankerState::kHealthy;
    e.rejoin_time = sim.now();
    if (!e.evicted || !e.rejoined) {
      std::cerr << "bench_report: FAIL — episode " << i << " victim "
                << e.victim << (e.evicted ? " never rejoined" : " never evicted")
                << " within " << kEpisodeTimeout << " virtual time units\n";
      ok = false;
    }
    episodes.push_back(e);
    std::cout << "  episode " << i << ": victim " << e.victim
              << "  evict latency " << e.evict_time - e.cut_time
              << "  rejoin latency " << e.rejoin_time - e.heal_time << "\n";
  }

  // All members back: the handoffs must have conserved pages, so the run
  // still reaches the reference fixed point.
  const engine::ConvergenceResult reconverge =
      sim.run_until_error(1e-6, sim.now() + 4000.0, 2.0);

  serve::export_serve_metrics(store, server, metrics);
  metrics.counter(p2prank::obs::names::kServeStaleBoundViolations) =
      stale_bound_violations;

  std::size_t edges = 0;
  for (graph::PageId u = 0; u < g.num_pages(); ++u) edges += g.out_degree(u);
  std::cout << "graph: " << opts.pages << " pages, " << edges << " edges; k="
            << opts.k << "; " << episodes.size() << " episode(s)\n"
            << "  evictions=" << sup.evictions() << " rejoins=" << sup.rejoins()
            << " partition_drops=" << sim.partition_drops()
            << " frames_quarantined=" << sim.frames_quarantined() << "\n"
            << "  queries=" << server.queries() << " degraded="
            << server.degraded_reads() << " shard_down="
            << server.shard_down_reads() << " stale_bound_violations="
            << stale_bound_violations << "\n"
            << "  reconverged=" << (reconverge.reached ? "yes" : "NO")
            << " at t=" << reconverge.time << " (err="
            << reconverge.final_relative_error << ")\n";

  write_report(opts.out, "p2prank-recovery-bench-v1",
               render_recovery_run(opts, edges, kStaleBound, episodes, sim, sup,
                                   server, stale_bound_violations, reconverge));
  std::cout << "appended run \"" << opts.label << "\" to " << opts.out << "\n";

  if (stale_bound_violations != 0) {
    std::cerr << "bench_report: FAIL — " << stale_bound_violations
              << " stale-bound violation(s); the degraded-serving contract "
                 "requires zero\n";
    ok = false;
  }
  if (server.torn_reads() != 0) {
    std::cerr << "bench_report: FAIL — " << server.torn_reads()
              << " torn-epoch read(s)\n";
    ok = false;
  }
  if (sim.corrupt_frames_applied() != 0) {
    std::cerr << "bench_report: FAIL — " << sim.corrupt_frames_applied()
              << " corrupted frame(s) applied past the checksum\n";
    ok = false;
  }
  if (!reconverge.reached) {
    std::cerr << "bench_report: FAIL — post-recovery run did not reconverge\n";
    ok = false;
  }
  return ok ? 0 : 1;
}

// --- Scale benchmark ---------------------------------------------------------

double timed_seconds(const std::function<void()>& body) {
  const auto t0 = Clock::now();
  body();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// A link-only update batch over existing pages: always sequentially valid
/// (adds only), always incremental-eligible.
std::vector<graph::LinkUpdate> scale_delta(const graph::WebGraph& g,
                                           std::uint64_t seed,
                                           std::size_t count) {
  util::Rng rng(seed ^ 0x5ca1ab1eULL);
  const auto n = static_cast<std::uint64_t>(g.num_pages());
  std::vector<graph::LinkUpdate> ups;
  ups.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (rng.uniform() < 0.7) {
      ups.push_back(graph::LinkUpdate::add_link(
          g.url(static_cast<graph::PageId>(rng.below(n))),
          g.url(static_cast<graph::PageId>(rng.below(n)))));
    } else {
      ups.push_back(graph::LinkUpdate::add_external(
          g.url(static_cast<graph::PageId>(rng.below(n)))));
    }
  }
  return ups;
}

/// Full structural comparison; on mismatch explains where in `why`.
bool same_graph(const graph::WebGraph& a, const graph::WebGraph& b,
                std::string* why) {
  const auto fail = [&](const std::string& w) {
    if (why != nullptr) *why = w;
    return false;
  };
  if (a.num_pages() != b.num_pages()) return fail("page counts differ");
  if (a.num_sites() != b.num_sites()) return fail("site counts differ");
  if (a.num_links() != b.num_links()) return fail("link counts differ");
  if (a.num_external_links() != b.num_external_links()) {
    return fail("external totals differ");
  }
  for (graph::PageId p = 0; p < a.num_pages(); ++p) {
    if (a.url(p) != b.url(p)) return fail("url differs at page " + std::to_string(p));
    if (a.site_name(a.site(p)) != b.site_name(b.site(p))) {
      return fail("site differs at page " + std::to_string(p));
    }
    if (a.external_out_degree(p) != b.external_out_degree(p)) {
      return fail("external degree differs at page " + std::to_string(p));
    }
    const auto oa = a.out_links(p);
    const auto ob = b.out_links(p);
    if (!std::equal(oa.begin(), oa.end(), ob.begin(), ob.end())) {
      return fail("out row differs at page " + std::to_string(p));
    }
    const auto ia = a.in_links(p);
    const auto ib = b.in_links(p);
    if (!std::equal(ia.begin(), ia.end(), ib.begin(), ib.end())) {
      return fail("in row differs at page " + std::to_string(p));
    }
  }
  return true;
}

struct ScaleRow {
  std::uint64_t pages_target = 0;
  std::size_t pages = 0;
  std::size_t edges = 0;
  std::size_t externals = 0;
  double generate_s = 0.0;
  double save_s = 0.0;
  double load_s = 0.0;
  std::uint64_t binary_bytes = 0;
  int sweeps = 0;
  double rank_s = 0.0;
  std::size_t delta_edges = 0;
  double incremental_ms = 0.0;
  double rebuild_ms = 0.0;
  double speedup = 0.0;
};

std::string render_scale_run(const Options& opts,
                             const std::vector<ScaleRow>& rows,
                             std::size_t pool_threads) {
  std::ostringstream os;
  os << "    {\n";
  os << "      \"label\": \"" << json_escape(opts.label) << "\",\n";
  os << "      \"graph_seed\": " << opts.seed << ",\n";
  os << "      \"alpha\": " << json_number(opts.alpha) << ",\n";
  os << "      \"pool_threads\": " << pool_threads << ",\n";
  os << "      \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    os << "        {\"pages_target\": " << r.pages_target << ", "
       << "\"pages\": " << r.pages << ", "
       << "\"edges\": " << r.edges << ", "
       << "\"externals\": " << r.externals << ", "
       << "\"generate_s\": " << json_number(r.generate_s) << ", "
       << "\"save_s\": " << json_number(r.save_s) << ", "
       << "\"load_s\": " << json_number(r.load_s) << ", "
       << "\"binary_bytes\": " << r.binary_bytes << ", "
       << "\"rank_sweeps\": " << r.sweeps << ", "
       << "\"rank_s\": " << json_number(r.rank_s) << ", "
       << "\"delta_edges\": " << r.delta_edges << ", "
       << "\"incremental_ms\": " << json_number(r.incremental_ms) << ", "
       << "\"rebuild_ms\": " << json_number(r.rebuild_ms) << ", "
       << "\"update_speedup\": " << json_number(r.speedup) << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "      ]\n";
  os << "    }";
  return os.str();
}

int run_scale_bench(const Options& opts) {
  auto& pool = util::ThreadPool::shared();
  const std::vector<std::uint64_t> targets =
      opts.scale_rows.empty() ? std::vector<std::uint64_t>{1'000'000, 10'000'000}
                              : opts.scale_rows;
  std::vector<ScaleRow> rows;
  bool ok = true;
  for (const std::uint64_t target : targets) {
    ScaleRow row;
    row.pages_target = target;
    const auto cfg = graph::google2002_config(
        static_cast<std::uint32_t>(target), opts.seed);

    // Streamed two-pass ingest: edges are generated chunk by chunk and never
    // buffered whole, so peak memory is the CSR itself plus one chunk.
    graph::WebGraph g;
    row.generate_s = timed_seconds(
        [&] { g = graph::generate_synthetic_web_streamed(cfg); });
    row.pages = g.num_pages();
    row.edges = g.num_links();
    row.externals = g.num_external_links();

    // Binary round trip: this is the reload path that makes re-running
    // experiments on the same web cheap.
    const std::string bin = "BENCH_scale_" + std::to_string(target) + ".bin";
    row.save_s = timed_seconds([&] { graph::save_graph_binary_file(g, bin); });
    {
      std::ifstream f(bin, std::ios::binary | std::ios::ate);
      row.binary_bytes = f ? static_cast<std::uint64_t>(f.tellg()) : 0;
    }
    graph::WebGraph loaded;
    row.load_s = timed_seconds([&] { loaded = graph::load_graph_binary_file(bin); });
    std::remove(bin.c_str());
    std::string why;
    if (!same_graph(g, loaded, &why)) {
      std::cerr << "bench_report: FAIL — binary round trip at " << target
                << " pages: " << why << "\n";
      ok = false;
    }

    // Bounded rank sweeps over the loaded graph: end-to-end proof that the
    // reloaded web ranks, plus a per-sweep cost sample at this scale.
    {
      const auto m = rank::LinkMatrix::from_graph(loaded, opts.alpha);
      std::vector<double> x(m.dimension(), 0.0);
      std::vector<double> y(m.dimension());
      const std::vector<double> forcing(m.dimension(), 1.0 - opts.alpha);
      rank::SweepScratch scratch;
      row.sweeps = opts.scale_sweeps;
      row.rank_s = timed_seconds([&] {
        for (int s = 0; s < opts.scale_sweeps; ++s) {
          auto stats = m.sweep_and_residual(x, y, forcing, scratch, pool);
          if (stats.l1_delta < 0.0) std::abort();  // keep the result live
          std::swap(x, y);
        }
      });
    }

    // Update latency: the same 1k-edge link-only delta through the
    // incremental splice (shared page table, per-row patch) and through the
    // rebuild oracle (re-intern every URL, re-sort every edge).
    const auto ups = scale_delta(loaded, opts.seed, opts.delta_edges);
    row.delta_edges = ups.size();
    graph::GraphUpdateResult delta;
    double best_inc = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 3; ++rep) {
      best_inc = std::min(best_inc, timed_seconds([&] {
                            delta = graph::apply_updates_delta(loaded, ups);
                          }));
    }
    row.incremental_ms = best_inc * 1e3;
    if (!delta.incremental) {
      std::cerr << "bench_report: FAIL — link-only delta was not incremental\n";
      ok = false;
    }
    graph::WebGraph rebuilt;
    row.rebuild_ms = timed_seconds([&] {
                       rebuilt = graph::apply_updates_rebuild(loaded, ups);
                     }) *
                     1e3;
    row.speedup = row.rebuild_ms / row.incremental_ms;
    if (!same_graph(delta.graph, rebuilt, &why)) {
      std::cerr << "bench_report: FAIL — splice != rebuild at " << target
                << " pages: " << why << "\n";
      ok = false;
    }
    if (row.pages >= 1'000'000 && row.speedup < 10.0) {
      std::cerr << "bench_report: FAIL — incremental update speedup "
                << row.speedup << "x at " << row.pages
                << " pages; the scale contract requires >= 10x\n";
      ok = false;
    }

    std::cout << "  " << row.pages << " pages, " << row.edges << " edges, "
              << row.externals << " external\n"
              << "    generate " << row.generate_s << " s, save " << row.save_s
              << " s (" << static_cast<double>(row.binary_bytes) / 1e6
              << " MB), load " << row.load_s << " s\n"
              << "    " << row.sweeps << " rank sweeps in " << row.rank_s
              << " s (" << row.rank_s / std::max(row.sweeps, 1) * 1e3
              << " ms/sweep)\n"
              << "    " << row.delta_edges << "-edge delta: incremental "
              << row.incremental_ms << " ms vs rebuild " << row.rebuild_ms
              << " ms (" << row.speedup << "x)\n";
    rows.push_back(row);
  }

  write_report(opts.out, "p2prank-scale-bench-v1",
               render_scale_run(opts, rows, pool.size()));
  std::cout << "appended run \"" << opts.label << "\" to " << opts.out << "\n";
  return ok ? 0 : 1;
}

/// --scale --determinism-check: the small bitwise gates of DESIGN.md §14,
/// wired into tier-bench-smoke. Everything here must be exact, not close.
int run_scale_determinism_check(Options opts) {
  if (opts.pages == 50000) opts.pages = 2000;  // smoke-sized by default
  bool ok = true;
  const auto expect = [&](bool cond, const std::string& what) {
    if (!cond) {
      std::cerr << "bench_report: scale determinism FAIL — " << what << "\n";
      ok = false;
    }
  };
  std::string why;
  const auto cfg = graph::google2002_config(opts.pages, opts.seed);

  // Gate 1: streamed two-pass ingest == in-memory builder, bitwise.
  const auto g = graph::generate_synthetic_web(cfg);
  const auto streamed = graph::generate_synthetic_web_streamed(cfg);
  expect(same_graph(g, streamed, &why), "streamed != builder: " + why);

  // Gate 2: binary round-trip identity.
  {
    std::stringstream buf;
    graph::save_graph_binary(g, buf);
    const auto loaded = graph::load_graph_binary(buf);
    expect(same_graph(g, loaded, &why), "binary round trip: " + why);
  }

  // Gate 3: incremental splice == rebuild oracle on a link-only delta.
  const auto ups = scale_delta(g, opts.seed, 200);
  const auto delta = graph::apply_updates_delta(g, ups);
  expect(delta.incremental, "link-only delta not incremental");
  {
    const auto rebuilt = graph::apply_updates_rebuild(g, ups);
    expect(same_graph(delta.graph, rebuilt, &why), "splice != rebuild: " + why);
  }

  // Gate 4: incremental warm start == rebuild-then-warm-start, bitwise, at
  // worklist epsilon 0 (the engine half of the §14 contract).
  {
    util::ThreadPool pool(2);
    std::vector<std::uint32_t> assignment(g.num_pages());
    for (std::uint32_t p = 0; p < g.num_pages(); ++p) assignment[p] = p % 4;
    engine::EngineOptions eo;
    eo.algorithm = engine::Algorithm::kDPR1;
    eo.alpha = opts.alpha;
    eo.seed = opts.seed ^ 0x5ca1edEULL;
    eo.worklist = true;
    eo.worklist_epsilon = 0.0;
    engine::DistributedRanking sim0(g, assignment, 4, eo, pool);
    sim0.set_reference(engine::open_system_reference(g, opts.alpha, pool));
    (void)sim0.run(30.0, 30.0);
    const auto ranks = sim0.global_ranks();
    auto carry = sim0.export_worklist_carry();
    std::size_t valid = 0;
    for (const auto& c : carry.groups) valid += c.valid ? 1 : 0;
    expect(valid > 0, "no group exported a live worklist frontier");

    const auto reference =
        engine::open_system_reference(delta.graph, opts.alpha, pool);
    engine::DistributedRanking inc(delta.graph, assignment, 4, eo, pool);
    inc.set_reference(reference);
    inc.warm_start_incremental(ranks, std::move(carry), delta.in_changed,
                               delta.degree_changed);
    (void)inc.run(40.0, 40.0);
    engine::DistributedRanking reb(delta.graph, assignment, 4, eo, pool);
    reb.set_reference(reference);
    reb.warm_start(ranks);
    (void)reb.run(40.0, 40.0);
    const auto ri = inc.global_ranks();
    const auto rr = reb.global_ranks();
    std::size_t diffs = 0;
    for (std::size_t p = 0; p < ri.size(); ++p) diffs += ri[p] != rr[p] ? 1 : 0;
    expect(diffs == 0, "incremental vs rebuild warm start: " +
                           std::to_string(diffs) + " rank(s) differ");
  }

  if (ok) {
    std::cout << "scale determinism check passed: streamed ingest, binary "
                 "round trip, splice, and incremental warm start all "
                 "bitwise-exact at "
              << opts.pages << " pages\n";
  }
  return ok ? 0 : 1;
}

// --- Kernel benchmark --------------------------------------------------------

/// Times every sweep-kernel variant on `m` with the given pool. The two
/// worklist variants bracket the frontier kernel's envelope: forced-dense
/// sweeps (its overhead ceiling vs fused_sweep_residual) and a contracted
/// steady-state frontier (its payoff once convergence has localized the
/// residual — the regime DPR1's inner iterations live in after warm-up).
std::vector<VariantResult> kernel_variants(const Options& opts,
                                           const rank::LinkMatrix& m,
                                           util::ThreadPool& pool) {
  const std::size_t n = m.dimension();
  const std::size_t edges = m.num_entries();

  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = 0.1 + static_cast<double>(i % 7);
  std::vector<double> y(n);
  const std::vector<double> forcing(n, 0.15);
  rank::SweepScratch scratch;

  // Hot-loop bytes per sweep; accounting documented in DESIGN.md.
  const auto i64 = [](std::size_t v) { return static_cast<std::int64_t>(v); };
  const std::int64_t multiply_bytes = i64(edges) * 20 + i64(n) * 8;
  const std::int64_t contribution_bytes = i64(edges) * 12 + i64(n) * 32;
  const std::int64_t fused_bytes = contribution_bytes + i64(n) * 16;
  const std::int64_t unfused_bytes = contribution_bytes + i64(n) * 40;

  std::vector<VariantResult> results;
  // Frozen copy of the seed's multiply hot loop (single-chain
  // accumulation over the per-edge weight stream). Every run carries this
  // in-phase baseline so kernel speedups can be read off one run without
  // being confounded by machine phase (shared boxes drift ±30%).
  results.push_back(make_result(
      "seed_pooled_multiply",
      time_variant(opts,
                   [&] {
                     for (std::size_t v = 0; v < n; ++v) {
                       double acc = 0.0;
                       const auto src = m.row_sources(v);
                       const auto w = m.row_weights(v);
                       for (std::size_t e = 0; e < src.size(); ++e) {
                         acc += x[src[e]] * w[e];
                       }
                       y[v] = acc;
                     }
                   }),
      edges, multiply_bytes));
  results.push_back(make_result(
      "serial_multiply",
      time_variant(opts, [&] { m.multiply(x, y); }), edges, multiply_bytes));
  results.push_back(make_result(
      "pooled_multiply",
      time_variant(opts, [&] { m.multiply(x, y, pool); }), edges,
      multiply_bytes));
  results.push_back(make_result(
      "contribution_serial",
      time_variant(opts, [&] { m.sweep(x, y, scratch); }), edges,
      contribution_bytes));
  results.push_back(make_result(
      "contribution_pooled",
      time_variant(opts, [&] { m.sweep(x, y, scratch, pool); }), edges,
      contribution_bytes));
  results.push_back(make_result(
      "fused_sweep_residual",
      time_variant(opts,
                   [&] {
                     auto stats = m.sweep_and_residual(x, y, forcing, scratch, pool);
                     if (stats.l1_delta < 0.0) std::abort();  // keep the result live
                   }),
      edges, fused_bytes));
  results.push_back(make_result(
      "sweep_then_residual",
      time_variant(opts,
                   [&] {
                     m.sweep(x, y, scratch, pool);
                     for (std::size_t v = 0; v < n; ++v) y[v] += forcing[v];
                     volatile double delta = util::l1_distance(y, x);
                     (void)delta;
                   }),
      edges, unfused_bytes));

  {
    // Worklist kernel, forced dense every sweep: same row loop as
    // fused_sweep_residual plus frontier bookkeeping — its overhead ceiling.
    rank::WorklistOptions wopts;
    rank::WorklistState wstate;
    rank::SweepScratch wscratch;
    results.push_back(make_result(
        "worklist_dense_full",
        time_variant(opts,
                     [&] {
                       auto stats = m.sweep_and_residual_worklist(
                           x, y, forcing, wscratch, wstate, wopts, pool,
                           /*force_dense=*/true);
                       if (stats.l1_delta < 0.0) std::abort();
                     }),
        edges, fused_bytes));
  }

  {
    // Worklist kernel at a contracted steady-state frontier: converge to
    // the fixed point first, then keep a small recurring perturbation live
    // (32 forcing entries toggled ±1e-6 per sweep) so every timed sweep
    // pays realistic frontier maintenance, not the empty-frontier fast
    // path. The threshold localizes the wave to a few hops of the
    // perturbed rows. Bytes use the dense accounting so bytes_per_sec
    // stays comparable — it reads as "effective dense bandwidth".
    rank::WorklistOptions wopts;
    wopts.epsilon = 1e-7;
    wopts.full_interval = 0;
    rank::WorklistState wstate;
    rank::SweepScratch wscratch;
    std::vector<double> a(x), b(n);
    std::vector<double> f(forcing);
    for (int warm = 0; warm < 200; ++warm) {
      auto stats = m.sweep_and_residual_worklist(a, b, f, wscratch, wstate,
                                                 wopts, pool);
      std::swap(a, b);
      if (stats.l1_delta == 0.0) break;
    }
    const std::uint64_t warm_sweeps = wstate.sweeps;
    const std::uint64_t warm_rows = wstate.rows_computed;
    std::size_t tick = 0;
    results.push_back(make_result(
        "worklist_contracted",
        time_variant(opts,
                     [&] {
                       const double delta = (tick++ & 1) ? -1e-6 : 1e-6;
                       for (std::size_t j = 0; j < 32; ++j) {
                         const std::size_t row = (j * 1543) % n;
                         f[row] += delta;
                         wstate.mark_forcing_dirty(row);
                       }
                       auto stats = m.sweep_and_residual_worklist(
                           a, b, f, wscratch, wstate, wopts, pool);
                       if (stats.l1_delta < 0.0) std::abort();
                       std::swap(a, b);
                     }),
        edges, fused_bytes));
    const std::uint64_t timed = wstate.sweeps - warm_sweeps;
    if (timed > 0) {
      std::cout << "  worklist_contracted frontier: "
                << static_cast<double>(wstate.rows_computed - warm_rows) /
                       static_cast<double>(timed)
                << " rows recomputed per sweep (n=" << n << ")\n";
    }
  }
  return results;
}

int run_kernel_bench(const Options& opts) {
  const auto g = graph::generate_synthetic_web(
      graph::google2002_config(opts.pages, opts.seed));
  const auto m = rank::LinkMatrix::from_graph(g, opts.alpha);
  const std::size_t edges = m.num_entries();

  const auto one_pool = [&](util::ThreadPool& pool) {
    std::cout << "graph: " << opts.pages << " pages, " << edges
              << " edges; pool " << pool.size() << " thread(s)\n";
    const auto results = kernel_variants(opts, m, pool);
    for (const auto& r : results) {
      std::cout << "  " << r.name << ": " << r.ns_per_sweep / 1e3
                << " us/sweep, " << r.items_per_sec / 1e6 << " M items/s, "
                << r.bytes_per_sec / 1e9 << " GB/s\n";
    }
    write_report(opts.out, "p2prank-kernel-bench-v1",
                 render_run(opts, edges, pool.size(), results));
    std::cout << "appended run \"" << opts.label << "\" (pool " << pool.size()
              << ") to " << opts.out << "\n";
  };

  if (opts.threads.empty()) {
    one_pool(util::ThreadPool::shared());
  } else {
    for (const unsigned t : opts.threads) {
      util::ThreadPool pool(t);
      one_pool(pool);
    }
  }
  return 0;
}

/// Parse "1,2,8,16" into pool sizes.
std::vector<unsigned> parse_thread_list(const std::string& spec) {
  std::vector<unsigned> out;
  std::istringstream in(spec);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    const unsigned long v = std::stoul(item);
    if (v == 0) throw std::runtime_error("bench_report: --threads values must be >= 1");
    out.push_back(static_cast<unsigned>(v));
  }
  if (out.empty()) throw std::runtime_error("bench_report: --threads needs a list like 1,2,8");
  return out;
}

Options parse_args(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        throw std::runtime_error(std::string("bench_report: ") + flag +
                                 " needs a value");
      }
      return argv[++i];
    };
    if (arg == "--pages") {
      opts.pages = static_cast<std::uint32_t>(std::stoul(need_value("--pages")));
    } else if (arg == "--seed") {
      opts.seed = std::stoull(need_value("--seed"));
    } else if (arg == "--alpha") {
      opts.alpha = std::stod(need_value("--alpha"));
    } else if (arg == "--reps") {
      opts.repetitions = std::stoi(need_value("--reps"));
    } else if (arg == "--min-rep-seconds") {
      opts.min_rep_seconds = std::stod(need_value("--min-rep-seconds"));
    } else if (arg == "--threads") {
      opts.threads = parse_thread_list(need_value("--threads"));
    } else if (arg == "--label") {
      opts.label = need_value("--label");
    } else if (arg == "--out") {
      opts.out = need_value("--out");
    } else if (arg == "--reliability") {
      opts.reliability = true;
    } else if (arg == "--obs") {
      opts.obs = true;
    } else if (arg == "--serve") {
      opts.serve = true;
    } else if (arg == "--recovery") {
      opts.recovery = true;
    } else if (arg == "--scale") {
      opts.scale = true;
    } else if (arg == "--scale-rows") {
      opts.scale_rows.clear();
      std::stringstream ss(need_value("--scale-rows"));
      std::string tok;
      while (std::getline(ss, tok, ',')) {
        if (!tok.empty()) opts.scale_rows.push_back(std::stoull(tok));
      }
      if (opts.scale_rows.empty()) {
        throw std::runtime_error("bench_report: --scale-rows needs N[,M...]");
      }
    } else if (arg == "--sweeps") {
      opts.scale_sweeps = std::stoi(need_value("--sweeps"));
    } else if (arg == "--delta-edges") {
      opts.delta_edges = std::stoul(need_value("--delta-edges"));
    } else if (arg == "--episodes") {
      opts.episodes =
          static_cast<std::uint32_t>(std::stoul(need_value("--episodes")));
    } else if (arg == "--determinism-check") {
      opts.determinism_check = true;
    } else if (arg == "--clients") {
      opts.clients =
          static_cast<std::uint32_t>(std::stoul(need_value("--clients")));
    } else if (arg == "--duration") {
      opts.serve_duration = std::stod(need_value("--duration"));
    } else if (arg == "--k") {
      opts.k = static_cast<std::uint32_t>(std::stoul(need_value("--k")));
    } else if (arg == "--error-threshold") {
      opts.error_threshold = std::stod(need_value("--error-threshold"));
    } else if (arg == "--max-time") {
      opts.max_time = std::stod(need_value("--max-time"));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: bench_report [--pages N] [--seed S] [--alpha A] "
                   "[--reps R] [--min-rep-seconds T] [--threads 1,2,8,16] "
                   "[--label L] [--out FILE]\n"
                   "       bench_report --reliability [--pages N] [--k K] "
                   "[--seed S] [--error-threshold E] [--max-time T] "
                   "[--label L] [--out FILE]\n"
                   "       bench_report --obs [--pages N] [--k K] [--seed S] "
                   "[--reps R] [--label L] [--out FILE]\n"
                   "       bench_report --serve [--pages N] [--k K] [--seed S] "
                   "[--clients C] [--duration T] [--label L] [--out FILE]\n"
                   "       bench_report --serve --determinism-check\n"
                   "       bench_report --recovery [--pages N] [--k K] "
                   "[--seed S] [--episodes E] [--label L] [--out FILE]\n"
                   "       bench_report --scale [--scale-rows N,M] [--sweeps S] "
                   "[--delta-edges D] [--seed S] [--label L] [--out FILE]\n"
                   "       bench_report --scale --determinism-check [--pages N]\n";
      std::exit(0);
    } else {
      throw std::runtime_error("bench_report: unknown flag " + arg);
    }
  }
  if (static_cast<int>(opts.reliability) + static_cast<int>(opts.obs) +
          static_cast<int>(opts.serve) + static_cast<int>(opts.recovery) +
          static_cast<int>(opts.scale) >
      1) {
    throw std::runtime_error(
        "bench_report: --reliability, --obs, --serve, --recovery, and "
        "--scale are exclusive");
  }
  if (opts.determinism_check && !opts.serve && !opts.scale) {
    throw std::runtime_error(
        "bench_report: --determinism-check requires --serve or --scale");
  }
  if (opts.out.empty()) {
    opts.out = opts.reliability ? "BENCH_reliability.json"
               : opts.obs      ? "BENCH_obs.json"
               : opts.serve    ? "BENCH_serve.json"
               : opts.recovery ? "BENCH_recovery.json"
               : opts.scale    ? "BENCH_scale.json"
                               : "BENCH_kernels.json";
  }
  if (opts.reliability && opts.pages == 50000) {
    opts.pages = 2000;  // convergence sweeps run a full engine: keep it small
  }
  if (opts.recovery && opts.pages == 50000) {
    opts.pages = 1000;  // many full-engine episodes: keep each one quick
  }
  if (opts.recovery && opts.k < 3) {
    throw std::runtime_error(
        "bench_report: --recovery needs k >= 3 (an eviction quorum)");
  }
  // --serve keeps the full 50k-page default: the publish-overhead phase
  // must be measured at the scale where sweeps carry their real memory
  // traffic (run_serve_bench clamps its closed-loop phase separately).
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opts = parse_args(argc, argv);
    if (opts.reliability) return run_reliability_bench(opts);
    if (opts.obs) return run_obs_bench(opts);
    if (opts.recovery) return run_recovery_bench(opts);
    if (opts.serve) {
      return opts.determinism_check ? run_serve_determinism_check(opts)
                                    : run_serve_bench(opts);
    }
    if (opts.scale) {
      return opts.determinism_check ? run_scale_determinism_check(opts)
                                    : run_scale_bench(opts);
    }
    return run_kernel_bench(opts);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  return 0;
}
