#!/usr/bin/env bash
# The static-analysis wall (DESIGN.md §9). Runs every layer the host
# toolchain supports and fails on the first violation:
#
#   1. p2plint        — project determinism/registry lint (always; python3)
#   2. strict build   — -Wall -Wextra -Wconversion -Wshadow -Werror via the
#                       `static` preset with the default compiler (always)
#   3. thread-safety  — the same preset under clang++, which adds
#                       -Wthread-safety over the annotations in
#                       src/util/thread_annotations.hpp (skipped when no
#                       clang++ on PATH)
#   4. clang-tidy     — .clang-tidy checks over every TU (skipped when no
#                       clang-tidy on PATH)
#   5. clang-format   — check-only drift report over tracked sources
#                       (skipped when no clang-format on PATH; advisory —
#                       reports but does not fail, no mass reformat)
#   6. tier-static    — `ctest -L tier-static`: the lint run + its fixture
#                       self-tests as registered tests
#
# Layers 3–5 skipping on a gcc-only host is expected and prints a SKIP
# notice; CI runs with clang available so every layer is enforced there.
#
# usage: tools/static_check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc)"

note() { printf '\n== %s\n' "$*"; }
skip() { printf '\n== SKIP: %s\n' "$*"; }

# ---- 1. p2plint ---------------------------------------------------------
note "p2plint: determinism & registry rules"
python3 tools/p2plint --root .

# ---- 2. strict-warnings wall (default compiler) -------------------------
note "strict build: -Wconversion -Wshadow -Werror (static preset)"
cmake --preset static >/dev/null
cmake --build --preset static -j"$jobs"

# ---- 3. clang thread-safety analysis ------------------------------------
if command -v clang++ >/dev/null 2>&1; then
  note "clang++ thread-safety build: -Wthread-safety -Werror"
  cmake -S . -B build-static-clang -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DP2PRANK_STATIC=ON -DCMAKE_CXX_COMPILER=clang++ >/dev/null
  cmake --build build-static-clang -j"$jobs"
else
  skip "clang++ not on PATH: thread-safety analysis not run (annotations still compiled away by layer 2)"
fi

# ---- 4. clang-tidy ------------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  note "clang-tidy: .clang-tidy checks over all TUs"
  tidy_dir=build-static-clang
  if [[ ! -d "$tidy_dir" ]]; then tidy_dir=build-static-tidy; fi
  cmake -S . -B "$tidy_dir" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DP2PRANK_STATIC=ON -DP2PRANK_CLANG_TIDY=ON >/dev/null
  cmake --build "$tidy_dir" -j"$jobs"
else
  skip "clang-tidy not on PATH: tidy checks not run"
fi

# ---- 5. clang-format (check-only, advisory) -----------------------------
if command -v clang-format >/dev/null 2>&1; then
  note "clang-format: drift check (advisory, no reformat)"
  mapfile -t sources < <(git ls-files '*.cpp' '*.hpp' | grep -v '^tests/lint_selftest/')
  if ! clang-format --dry-run -Werror "${sources[@]}"; then
    echo "clang-format: drift detected (advisory only — not failing the wall)"
  fi
else
  skip "clang-format not on PATH: format drift not checked"
fi

# ---- 6. tier-static ctest ----------------------------------------------
note "ctest -L tier-static (lint + fixture self-tests as tests)"
if [[ ! -d build ]]; then cmake --preset default >/dev/null; fi
ctest --test-dir build -L tier-static --output-on-failure

note "static-analysis wall: all available layers clean"
