#!/usr/bin/env bash
# The static-analysis wall (DESIGN.md §9). Runs every layer the host
# toolchain supports and fails on the first violation:
#
#   1. p2plint        — project determinism/registry lint v2 (always;
#                       python3): 13 rules over a token/declaration IR,
#                       plus the suppression-debt gate (every allow()
#                       pragma must carry a reason)
#   2. strict build   — -Wall -Wextra -Wconversion -Wshadow -Werror via the
#                       `static` preset with the default compiler (always)
#   3. thread-safety  — the same preset under clang++, which adds
#                       -Wthread-safety over the annotations in
#                       src/util/thread_annotations.hpp (skipped when no
#                       clang++ on PATH)
#   4. clang-tidy     — .clang-tidy checks over every TU (skipped when no
#                       clang-tidy on PATH)
#   5. clang-format   — check-only drift report over tracked sources;
#                       reports the COUNT of drifted files, not the diff
#                       (skipped when no clang-format on PATH; advisory —
#                       does not fail, no mass reformat)
#   6. tier-static    — `ctest -L tier-static`: lint run, fixture
#                       self-tests, frozen-corpus check, --broken
#                       non-vacuity probes, suppression gate as tests
#   7. clang analyzer — scan-build path-sensitive analysis over the build;
#                       findings filtered against the reviewed suppression
#                       list tools/analyzer_suppressions.txt (skipped when
#                       no scan-build on PATH); HTML reports land in
#                       build-analyzer/reports for CI artifact upload
#
# Layers 3–5 and 7 skipping on a gcc-only host is expected and prints a
# SKIP notice; CI runs with clang available so every layer is enforced
# there. Each layer's wall-clock is reported in the final summary.
#
# usage: tools/static_check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc)"

TIMINGS=()
layer_t0=$SECONDS
layer_done() {
  TIMINGS+=("$(printf '%5ss  %s' "$((SECONDS - layer_t0))" "$1")")
  layer_t0=$SECONDS
}

note() { printf '\n== %s\n' "$*"; }
skip() { printf '\n== SKIP: %s\n' "$*"; }

# ---- 1. p2plint + suppression-debt gate ---------------------------------
note "p2plint v2: determinism, concurrency & registry-matrix rules"
python3 tools/p2plint --root .
python3 tools/p2plint --root . --report-suppressions
layer_done "p2plint + suppression gate"

# ---- 2. strict-warnings wall (default compiler) -------------------------
note "strict build: -Wconversion -Wshadow -Werror (static preset)"
cmake --preset static >/dev/null
cmake --build --preset static -j"$jobs"
layer_done "strict build (default compiler)"

# ---- 3. clang thread-safety analysis ------------------------------------
if command -v clang++ >/dev/null 2>&1; then
  note "clang++ thread-safety build: -Wthread-safety -Werror"
  cmake -S . -B build-static-clang -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DP2PRANK_STATIC=ON -DCMAKE_CXX_COMPILER=clang++ >/dev/null
  cmake --build build-static-clang -j"$jobs"
  layer_done "clang thread-safety build"
else
  skip "clang++ not on PATH: thread-safety analysis not run (annotations still compiled away by layer 2)"
  layer_done "clang thread-safety build (SKIPPED)"
fi

# ---- 4. clang-tidy ------------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  note "clang-tidy: .clang-tidy checks over all TUs"
  tidy_dir=build-static-clang
  if [[ ! -d "$tidy_dir" ]]; then tidy_dir=build-static-tidy; fi
  cmake -S . -B "$tidy_dir" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DP2PRANK_STATIC=ON -DP2PRANK_CLANG_TIDY=ON >/dev/null
  cmake --build "$tidy_dir" -j"$jobs"
  layer_done "clang-tidy"
else
  skip "clang-tidy not on PATH: tidy checks not run"
  layer_done "clang-tidy (SKIPPED)"
fi

# ---- 5. clang-format (check-only, advisory) -----------------------------
if command -v clang-format >/dev/null 2>&1; then
  note "clang-format: drift check (advisory, no reformat)"
  mapfile -t sources < <(git ls-files '*.cpp' '*.hpp' | grep -v '^tests/lint_selftest/')
  drifted="$(clang-format --dry-run "${sources[@]}" 2>&1 \
    | sed -n 's/^\([^:]*\):[0-9]*:.*clang-format.*/\1/p' | sort -u | wc -l)"
  if [[ "$drifted" -gt 0 ]]; then
    echo "clang-format: $drifted of ${#sources[@]} files drifted (advisory only — not failing the wall; run clang-format -i on touched files)"
  else
    echo "clang-format: all ${#sources[@]} files clean"
  fi
  layer_done "clang-format drift"
else
  skip "clang-format not on PATH: format drift not checked"
  layer_done "clang-format drift (SKIPPED)"
fi

# ---- 6. tier-static ctest ----------------------------------------------
note "ctest -L tier-static (lint, self-tests, corpus, --broken, suppressions)"
if [[ ! -d build ]]; then cmake --preset default >/dev/null; fi
ctest --test-dir build -L tier-static --output-on-failure
layer_done "tier-static ctest"

# ---- 7. clang static analyzer (scan-build) ------------------------------
if command -v scan-build >/dev/null 2>&1; then
  note "clang static analyzer: scan-build over the full build"
  report_dir=build-analyzer/reports
  mkdir -p "$report_dir"
  scan-build -o "$report_dir" --use-cc=clang --use-c++=clang++ \
    cmake -S . -B build-analyzer/build -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    >/dev/null
  # A cached build dir would let the analyzer skip already-built TUs and
  # report nothing; force a fresh pass over every TU each run.
  cmake --build build-analyzer/build --target clean >/dev/null 2>&1 || true
  scan-build -o "$report_dir" --use-cc=clang --use-c++=clang++ \
    cmake --build build-analyzer/build -j"$jobs"
  python3 tools/analyzer_filter.py "$report_dir" tools/analyzer_suppressions.txt
  layer_done "clang static analyzer"
else
  skip "scan-build not on PATH: clang static analyzer not run"
  layer_done "clang static analyzer (SKIPPED)"
fi

note "static-analysis wall: all available layers clean"
printf 'layer timings:\n'
for t in "${TIMINGS[@]}"; do printf '  %s\n' "$t"; done
