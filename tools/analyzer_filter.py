#!/usr/bin/env python3
"""Gate scan-build findings against a reviewed suppression list.

scan-build writes one HTML report per finding, each carrying machine-
readable comments (``<!-- BUGFILE ... -->``, ``<!-- BUGTYPE ... -->``,
``<!-- BUGLINE ... -->``, ``<!-- BUGDESC ... -->``). This script walks the
newest report directory, extracts those, and fails the wall on any finding
not matched by tools/analyzer_suppressions.txt.

Suppression file format — one reviewed waiver per line:

    <file-substring> | <bugtype-substring> | <reason>

Blank lines and '#' comments are ignored. The reason is mandatory: a
waiver without one fails the gate the same way p2plint rejects a
reasonless allow(). Unused waivers are reported (stale debt) but do not
fail.

usage: analyzer_filter.py REPORT_DIR SUPPRESSIONS_FILE
exit:  0 clean/all-suppressed, 1 unsuppressed findings or reasonless
       waivers, 2 usage error
"""

import re
import sys
from pathlib import Path

_TAG_RE = re.compile(r"<!--\s*(BUGFILE|BUGTYPE|BUGLINE|BUGDESC)\s+(.*?)-->")


def parse_report(path):
    tags = {}
    try:
        text = path.read_text(errors="replace")
    except OSError:
        return None
    for m in _TAG_RE.finditer(text):
        tags[m.group(1)] = m.group(2).strip()
    if "BUGFILE" not in tags and "BUGTYPE" not in tags:
        return None
    return {
        "file": tags.get("BUGFILE", "?"),
        "type": tags.get("BUGTYPE", "?"),
        "line": tags.get("BUGLINE", "?"),
        "desc": tags.get("BUGDESC", ""),
        "report": str(path),
    }


def load_suppressions(path):
    out, bad = [], 0
    for i, raw in enumerate(path.read_text().splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = [p.strip() for p in line.split("|")]
        if len(parts) < 3 or not parts[2]:
            print(f"{path}:{i}: suppression without a reason: {line}")
            bad += 1
            continue
        out.append({"file": parts[0], "type": parts[1], "reason": parts[2],
                    "line": i, "used": False})
    return out, bad


def main(argv):
    if len(argv) != 3:
        print(__doc__)
        return 2
    report_root = Path(argv[1])
    sup_path = Path(argv[2])
    suppressions, bad = load_suppressions(sup_path) if sup_path.is_file() \
        else ([], 0)

    findings = []
    if report_root.is_dir():
        # scan-build nests date-stamped run directories; take every report
        # under the newest run (older runs are previous wall invocations).
        runs = sorted((d for d in report_root.iterdir() if d.is_dir()),
                      key=lambda d: d.name)
        scan = runs[-1:] if runs else [report_root]
        for run in scan:
            for rpt in sorted(run.glob("report-*.html")):
                parsed = parse_report(rpt)
                if parsed:
                    findings.append(parsed)

    unsuppressed = []
    for f in findings:
        hit = None
        for s in suppressions:
            if s["file"] in f["file"] and s["type"] in f["type"]:
                hit = s
                break
        if hit:
            hit["used"] = True
            print(f"suppressed: {f['file']}:{f['line']} [{f['type']}] "
                  f"({hit['reason']})")
        else:
            unsuppressed.append(f)

    for f in unsuppressed:
        print(f"FINDING: {f['file']}:{f['line']} [{f['type']}] {f['desc']}")
        print(f"  report: {f['report']}")
    for s in suppressions:
        if not s["used"]:
            print(f"note: unused suppression at {sup_path}:{s['line']} "
                  f"({s['file']} | {s['type']}) — stale, consider removing")

    total = len(findings)
    if unsuppressed or bad:
        print(f"analyzer gate: {len(unsuppressed)} unsuppressed finding(s) "
              f"of {total}, {bad} reasonless waiver(s)")
        return 1
    print(f"analyzer gate: clean ({total} finding(s), all with reviewed "
          "suppressions)" if total else "analyzer gate: clean (no findings)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
