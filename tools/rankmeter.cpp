// rankmeter — instrumented chaos-scenario runs: deterministic metrics
// snapshot (JSON) plus a Chrome/Perfetto trace keyed to virtual time.
//
//   rankmeter --seed 17                        # metrics.json + trace.json
//   rankmeter --seed 17 --metrics-out m.json --trace-out t.json
//   rankmeter --seeds-file tests/corpus/scenario_seeds.txt --smoke
//   rankmeter --seed 17 --reliable --unstable  # include pool-dependent counters
//
// Default mode runs every selected scenario through one MetricsRegistry and
// one Tracer (counters accumulate across scenarios; each scenario restarts
// the virtual clock, so multi-seed traces overlay their timelines) and
// writes both files. --smoke instead runs each scenario twice with fresh
// registries and demands bitwise-identical snapshots — the determinism
// contract of DESIGN.md §11 — and writes nothing. Exit code: 0 clean,
// 1 determinism breach or invariant violation, 2 usage error.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "check/runner.hpp"
#include "check/scenario.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace {

using p2prank::check::Scenario;
using p2prank::check::ScenarioResult;
using p2prank::check::ScenarioRunner;

int usage(std::ostream& err) {
  err << "usage: rankmeter [--seed X] [--seeds-file PATH] [--reliable]\n"
         "                 [--threads T] [--metrics-out PATH] [--trace-out PATH]\n"
         "                 [--unstable] [--smoke] [--quiet]\n"
         "  --smoke     run each scenario twice with fresh sinks and fail\n"
         "              unless the two metrics snapshots are byte-identical\n"
         "  --unstable  include pool-size-dependent counters in the snapshot\n";
  return 2;
}

/// One instrumented run with fresh sinks; returns the default (stable)
/// snapshot and leaves the trace in `tracer`.
std::string run_once(ScenarioRunner& runner, p2prank::util::ThreadPool& pool,
                     const Scenario& s, bool include_unstable,
                     p2prank::obs::Tracer& tracer, ScenarioResult& result) {
  p2prank::obs::MetricsRegistry metrics;
  p2prank::check::RunnerOptions ropts = runner.options();
  ropts.metrics = &metrics;
  ropts.tracer = &tracer;
  ScenarioRunner instrumented(pool, ropts);
  // Pool stats count from pool construction; export this run's interval so
  // back-to-back runs on the shared pool compare equal.
  const p2prank::util::ThreadPool::Stats before = pool.stats();
  result = instrumented.run(s);
  p2prank::obs::export_pool_metrics(pool.stats() - before, metrics);
  return metrics.snapshot(include_unstable);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::optional<std::uint64_t> single_seed;
  std::string seeds_file;
  std::string metrics_out = "metrics.json";
  std::string trace_out = "trace.json";
  bool smoke = false;
  bool quiet = false;
  bool force_reliable = false;
  bool include_unstable = false;
  std::size_t threads = 2;

  const auto need_value = [&](std::size_t& i) -> const std::string& {
    if (i + 1 >= args.size()) {
      std::cerr << "missing value for " << args[i] << '\n';
      std::exit(usage(std::cerr));
    }
    return args[++i];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    try {
      if (a == "--seed") {
        single_seed = std::stoull(need_value(i));
      } else if (a == "--seeds-file") {
        seeds_file = need_value(i);
      } else if (a == "--metrics-out") {
        metrics_out = need_value(i);
      } else if (a == "--trace-out") {
        trace_out = need_value(i);
      } else if (a == "--threads") {
        threads = std::stoul(need_value(i));
      } else if (a == "--reliable") {
        force_reliable = true;
      } else if (a == "--unstable") {
        include_unstable = true;
      } else if (a == "--smoke") {
        smoke = true;
      } else if (a == "--quiet") {
        quiet = true;
      } else {
        std::cerr << "unknown argument: " << a << '\n';
        return usage(std::cerr);
      }
    } catch (const std::exception&) {
      std::cerr << "bad value for " << a << '\n';
      return usage(std::cerr);
    }
  }

  std::vector<Scenario> scenarios;
  if (!seeds_file.empty()) {
    std::ifstream in(seeds_file);
    if (!in) {
      std::cerr << "cannot open seeds file " << seeds_file << '\n';
      return 2;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      scenarios.push_back(Scenario::from_seed(std::stoull(line)));
    }
  } else {
    scenarios.push_back(Scenario::from_seed(single_seed.value_or(1)));
  }
  if (force_reliable) {
    for (Scenario& s : scenarios) s.reliable = true;
  }

  p2prank::util::ThreadPool pool(threads);
  ScenarioRunner base_runner(pool);
  std::size_t failures = 0;

  if (smoke) {
    // Determinism smoke: two runs of the same scenario must agree byte for
    // byte in the stable snapshot. Pool counters are intentionally left out
    // of the comparison unless --unstable forces them in (worker_claims
    // races make that comparison flaky by design — useful only with
    // --threads 1).
    for (const Scenario& scenario : scenarios) {
      p2prank::obs::Tracer trace_a;
      p2prank::obs::Tracer trace_b;
      ScenarioResult res_a;
      ScenarioResult res_b;
      const std::string snap_a =
          run_once(base_runner, pool, scenario, include_unstable, trace_a, res_a);
      const std::string snap_b =
          run_once(base_runner, pool, scenario, include_unstable, trace_b, res_b);
      const bool snaps_equal = snap_a == snap_b;
      const bool traces_equal = trace_a.size() == trace_b.size();
      if (!snaps_equal || !traces_equal) ++failures;
      if (!quiet || !snaps_equal || !traces_equal) {
        std::cout << "seed " << scenario.origin_seed << ": "
                  << (snaps_equal && traces_equal ? "deterministic"
                                                  : "NONDETERMINISTIC")
                  << "  events=" << trace_a.size() << "  " << res_a.summary()
                  << '\n';
      }
    }
    std::cout << scenarios.size() << " scenario(s), " << failures
              << " determinism failure(s)\n";
    return failures == 0 ? 0 : 1;
  }

  p2prank::obs::MetricsRegistry metrics;
  p2prank::obs::Tracer tracer;
  p2prank::check::RunnerOptions ropts = base_runner.options();
  ropts.metrics = &metrics;
  ropts.tracer = &tracer;
  ScenarioRunner runner(pool, ropts);
  const p2prank::util::ThreadPool::Stats pool_before = pool.stats();
  for (const Scenario& scenario : scenarios) {
    const ScenarioResult result = runner.run(scenario);
    if (!result.ok()) ++failures;
    if (!quiet) {
      std::cout << "seed " << scenario.origin_seed << ": " << result.summary()
                << '\n';
    }
  }
  p2prank::obs::export_pool_metrics(pool.stats() - pool_before, metrics);

  {
    std::ofstream out(metrics_out);
    if (!out) {
      std::cerr << "cannot write " << metrics_out << '\n';
      return 2;
    }
    metrics.write_json(out, include_unstable);
  }
  {
    std::ofstream out(trace_out);
    if (!out) {
      std::cerr << "cannot write " << trace_out << '\n';
      return 2;
    }
    tracer.write_chrome_json(out);
  }
  if (!quiet) {
    std::cout << "wrote " << metrics_out << " and " << trace_out << " ("
              << tracer.size() << " events, " << tracer.dropped()
              << " dropped)\n";
  }
  return failures == 0 ? 0 : 1;
}
