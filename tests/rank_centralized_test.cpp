#include "rank/centralized.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/graph_builder.hpp"
#include "graph/synthetic_web.hpp"
#include "test_support.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace p2prank::rank {
namespace {

util::ThreadPool& pool() {
  static util::ThreadPool p(4);
  return p;
}

CentralizedOptions tight() {
  CentralizedOptions o;
  o.epsilon = 1e-13;
  o.max_iterations = 3000;
  return o;
}

TEST(Centralized, EmptyGraph) {
  graph::GraphBuilder b;
  const auto g = std::move(b).build();
  const auto r = centralized_pagerank(g, tight(), pool());
  EXPECT_TRUE(r.ranks.empty());
}

TEST(Centralized, RejectsBadDamping) {
  const auto g = test::two_cycle();
  auto o = tight();
  o.damping = 1.0;
  EXPECT_THROW((void)centralized_pagerank(g, o, pool()), std::invalid_argument);
  o.damping = 0.0;
  EXPECT_THROW((void)centralized_pagerank(g, o, pool()), std::invalid_argument);
}

TEST(Centralized, RanksSumToOne) {
  const auto g = graph::generate_synthetic_web(graph::google2002_config(5000, 3));
  const auto r = centralized_pagerank(g, tight(), pool());
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(util::accurate_sum(r.ranks), 1.0, 1e-9);
}

TEST(Centralized, SymmetricCycleGivesEqualRanks) {
  const auto g = test::two_cycle();
  const auto r = centralized_pagerank(g, tight(), pool());
  EXPECT_NEAR(r.ranks[0], 0.5, 1e-10);
  EXPECT_NEAR(r.ranks[1], 0.5, 1e-10);
}

TEST(Centralized, HubOutranksLeaves) {
  const auto g = test::star(5);
  const auto r = centralized_pagerank(g, tight(), pool());
  const auto hub = *g.find("s.edu/hub");
  for (std::size_t v = 0; v < r.ranks.size(); ++v) {
    if (v != hub) {
      EXPECT_GT(r.ranks[hub], r.ranks[v]);
    }
  }
}

TEST(Centralized, MoreBacklinksMeansHigherRank) {
  // b has two backlinks, c has one; otherwise symmetric sources.
  graph::GraphBuilder builder;
  const auto s1 = builder.add_page("s.edu/s1", "s.edu");
  const auto s2 = builder.add_page("s.edu/s2", "s.edu");
  const auto b = builder.add_page("s.edu/b", "s.edu");
  const auto c = builder.add_page("s.edu/c", "s.edu");
  builder.add_link(s1, b);
  builder.add_link(s2, b);
  builder.add_link(s1, c);
  const auto g = std::move(builder).build();
  const auto r = centralized_pagerank(g, tight(), pool());
  EXPECT_GT(r.ranks[b], r.ranks[c]);
}

TEST(Centralized, DanglingMassIsRedistributedNotLost) {
  // A graph that is all dangling pages still sums to 1.
  graph::GraphBuilder builder;
  builder.add_page("s.edu/a", "s.edu");
  builder.add_page("s.edu/b", "s.edu");
  const auto g = std::move(builder).build();
  const auto r = centralized_pagerank(g, tight(), pool());
  EXPECT_NEAR(util::accurate_sum(r.ranks), 1.0, 1e-12);
  EXPECT_NEAR(r.ranks[0], 0.5, 1e-12);
}

TEST(Centralized, PersonalizationBiasesRanks) {
  const auto g = test::two_cycle();
  std::vector<double> e{0.9, 0.1};
  const auto biased = centralized_pagerank(g, tight(), pool(), e);
  EXPECT_GT(biased.ranks[0], biased.ranks[1]);
  EXPECT_NEAR(util::accurate_sum(biased.ranks), 1.0, 1e-12);
}

TEST(Centralized, PersonalizationValidation) {
  const auto g = test::two_cycle();
  const std::vector<double> wrong_size{1.0};
  EXPECT_THROW((void)centralized_pagerank(g, tight(), pool(), wrong_size),
               std::invalid_argument);
  const std::vector<double> zero{0.0, 0.0};
  EXPECT_THROW((void)centralized_pagerank(g, tight(), pool(), zero),
               std::invalid_argument);
}

TEST(Centralized, ResidualHistoryRecorded) {
  const auto g = test::star(4);
  auto o = tight();
  o.record_residuals = true;
  const auto r = centralized_pagerank(g, o, pool());
  EXPECT_EQ(r.residual_history.size(), r.iterations);
  EXPECT_GT(r.iterations, 0u);
}

TEST(Centralized, IterationCapRespected) {
  const auto g = graph::generate_synthetic_web(graph::google2002_config(2000, 4));
  auto o = tight();
  o.max_iterations = 3;
  const auto r = centralized_pagerank(g, o, pool());
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 3u);
}

TEST(TopPages, OrdersByRankThenId) {
  const std::vector<double> ranks{0.1, 0.5, 0.5, 0.3};
  const auto top = top_pages(ranks, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1u);  // tie between 1 and 2 broken by id
  EXPECT_EQ(top[1], 2u);
  EXPECT_EQ(top[2], 3u);
}

TEST(TopPages, KLargerThanNReturnsAll) {
  const std::vector<double> ranks{0.2, 0.1};
  const auto top = top_pages(ranks, 10);
  EXPECT_EQ(top.size(), 2u);
}

TEST(TopPages, EmptyInput) {
  EXPECT_TRUE(top_pages({}, 5).empty());
}

}  // namespace
}  // namespace p2prank::rank
