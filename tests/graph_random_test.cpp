// Random-graph generators, plus the paper's core properties re-checked on
// graph families far from the crawl model (the theorems only need
// ||A|| <= alpha < 1, so they must hold here too).
#include "graph/random_graphs.hpp"

#include <gtest/gtest.h>

#include "engine/distributed.hpp"
#include "engine/reference.hpp"
#include "graph/graph_stats.hpp"
#include "partition/partitioner.hpp"
#include "rank/link_matrix.hpp"
#include "util/thread_pool.hpp"

namespace p2prank::graph {
namespace {

util::ThreadPool& pool() {
  static util::ThreadPool p(4);
  return p;
}

TEST(ErdosRenyi, Validation) {
  EXPECT_THROW((void)erdos_renyi(1, 5, 1), std::invalid_argument);
}

TEST(ErdosRenyi, ExactCounts) {
  const auto g = erdos_renyi(100, 1000, 7);
  EXPECT_EQ(g.num_pages(), 100u);
  EXPECT_EQ(g.num_links(), 1000u);
  EXPECT_EQ(g.num_external_links(), 0u);
}

TEST(ErdosRenyi, NoSelfLoops) {
  const auto g = erdos_renyi(50, 2000, 9);
  for (PageId u = 0; u < g.num_pages(); ++u) {
    for (const PageId v : g.out_links(u)) ASSERT_NE(u, v);
  }
}

TEST(ErdosRenyi, DegreesAreFlat) {
  // No heavy tail: max in-degree within a small factor of the mean.
  const auto g = erdos_renyi(1000, 20000, 11);
  const auto stats = compute_stats(g);
  EXPECT_LT(stats.max_in_degree, 4.0 * 20.0);
}

TEST(ErdosRenyi, DeterministicPerSeed) {
  const auto a = erdos_renyi(100, 500, 3);
  const auto b = erdos_renyi(100, 500, 3);
  for (PageId p = 0; p < a.num_pages(); ++p) {
    ASSERT_EQ(a.out_degree(p), b.out_degree(p));
  }
}

TEST(PreferentialAttachment, Validation) {
  EXPECT_THROW((void)preferential_attachment(1, 2, 1), std::invalid_argument);
  EXPECT_THROW((void)preferential_attachment(10, 0, 1), std::invalid_argument);
}

TEST(PreferentialAttachment, EdgeCount) {
  const auto g = preferential_attachment(500, 3, 5);
  EXPECT_EQ(g.num_links(), 499u * 3u);
}

TEST(PreferentialAttachment, ProducesExtremeHubs) {
  const auto g = preferential_attachment(2000, 4, 5);
  const auto stats = compute_stats(g);
  const double mean_in =
      static_cast<double>(g.num_links()) / static_cast<double>(g.num_pages());
  EXPECT_GT(stats.max_in_degree, 25.0 * mean_in);
}

TEST(PreferentialAttachment, EarlyNodesDominate) {
  const auto g = preferential_attachment(2000, 4, 8);
  std::uint64_t early = 0;
  std::uint64_t late = 0;
  for (PageId p = 0; p < 100; ++p) early += g.in_degree(p);
  for (PageId p = 1900; p < 2000; ++p) late += g.in_degree(p);
  EXPECT_GT(early, 10 * late);
}

// ---- the paper's properties on hostile graph families -----------------------

class FamilySweep : public ::testing::TestWithParam<int> {
 protected:
  static WebGraph make(int family) {
    switch (family) {
      case 0: return erdos_renyi(3000, 30000, 13);
      case 1: return preferential_attachment(3000, 8, 13);
      default: std::abort();
    }
  }
};

TEST_P(FamilySweep, ContractionBoundHolds) {
  const auto g = make(GetParam());
  const auto m = rank::LinkMatrix::from_graph(g, 0.85);
  EXPECT_LE(m.contraction_norm(), 0.85 + 1e-12);
}

TEST_P(FamilySweep, DistributedMatchesCentralized) {
  const auto g = make(GetParam());
  const auto assignment = partition::make_hash_url_partitioner()->partition(g, 8);
  const auto reference = engine::open_system_reference(g, 0.85, pool());

  engine::EngineOptions opts;
  opts.t1 = opts.t2 = 1.0;
  opts.seed = 3;
  opts.delivery_probability = 0.8;  // and lossy, for good measure
  engine::DistributedRanking sim(g, assignment, 8, opts, pool());
  sim.set_reference(reference);
  EXPECT_TRUE(sim.run_until_error(1e-5, 3000.0, 2.0).reached);
}

TEST_P(FamilySweep, MonotoneUnderLoss) {
  const auto g = make(GetParam());
  const auto assignment = partition::make_hash_url_partitioner()->partition(g, 8);
  const auto reference = engine::open_system_reference(g, 0.85, pool());
  engine::EngineOptions opts;
  opts.t1 = 0.0;
  opts.t2 = 4.0;
  opts.delivery_probability = 0.6;
  opts.seed = 9;
  engine::DistributedRanking sim(g, assignment, 8, opts, pool());
  sim.set_reference(reference);
  for (const auto& s : sim.run(40.0, 4.0)) {
    EXPECT_GE(s.min_rank_delta, -1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Families, FamilySweep, ::testing::Values(0, 1),
                         [](const auto& suite_info) {
                           return suite_info.param == 0 ? "erdos_renyi"
                                                  : "preferential_attachment";
                         });

}  // namespace
}  // namespace p2prank::graph
