// Full-stack mode: the engine's Y messages routed over an actual structured
// overlay (ranker i = overlay node i), with latency = hops × per-hop cost —
// the deployment the paper describes (rankers on Pastry, indirect
// transmission) simulated end to end.
#include <gtest/gtest.h>

#include <vector>

#include "engine/distributed.hpp"
#include "engine/reference.hpp"
#include "graph/synthetic_web.hpp"
#include "overlay/can.hpp"
#include "overlay/chord.hpp"
#include "overlay/pastry.hpp"
#include "partition/partitioner.hpp"
#include "util/thread_pool.hpp"

namespace p2prank::engine {
namespace {

constexpr double kAlpha = 0.85;
constexpr std::uint32_t kRankers = 16;

util::ThreadPool& pool() {
  static util::ThreadPool p(4);
  return p;
}

class FullStackFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_ = new graph::WebGraph(
        graph::generate_synthetic_web(graph::google2002_config(3000, 71)));
    reference_ =
        new std::vector<double>(open_system_reference(*graph_, kAlpha, pool()));
    assignment_ = new std::vector<std::uint32_t>(
        partition::make_hash_url_partitioner()->partition(*graph_, kRankers));
  }
  static void TearDownTestSuite() {
    delete assignment_;
    delete reference_;
    delete graph_;
    assignment_ = nullptr;
    reference_ = nullptr;
    graph_ = nullptr;
  }
  static graph::WebGraph* graph_;
  static std::vector<double>* reference_;
  static std::vector<std::uint32_t>* assignment_;
};

graph::WebGraph* FullStackFixture::graph_ = nullptr;
std::vector<double>* FullStackFixture::reference_ = nullptr;
std::vector<std::uint32_t>* FullStackFixture::assignment_ = nullptr;

overlay::PastryOverlay make_pastry(std::uint32_t n, int leaf_set = 16) {
  overlay::PastryConfig cfg;
  cfg.num_nodes = n;
  cfg.leaf_set_size = leaf_set;
  cfg.seed = 9;
  return overlay::PastryOverlay(cfg);
}

TEST_F(FullStackFixture, RejectsOverlaySmallerThanK) {
  const auto o = make_pastry(kRankers / 2);
  EngineOptions opts;
  opts.overlay = &o;
  EXPECT_THROW(DistributedRanking(*graph_, *assignment_, kRankers, opts, pool()),
               std::invalid_argument);
}

TEST_F(FullStackFixture, ConvergesOverPastry) {
  // A small leaf set forces genuine multi-hop prefix routing even at N=16
  // (the default leaf set of 16 would cover the whole ring in one hop).
  const auto o = make_pastry(kRankers, /*leaf_set=*/4);
  EngineOptions opts;
  opts.alpha = kAlpha;
  opts.t1 = opts.t2 = 2.0;
  opts.overlay = &o;
  opts.per_hop_latency = 0.5;
  opts.seed = 4;
  DistributedRanking sim(*graph_, *assignment_, kRankers, opts, pool());
  sim.set_reference(*reference_);
  EXPECT_TRUE(sim.run_until_error(1e-4, 3000.0, 2.0).reached);
  EXPECT_GT(sim.record_hops(), sim.records_sent());  // multi-hop routes exist
}

TEST_F(FullStackFixture, ConvergesOverChordAndCan) {
  overlay::ChordConfig ccfg;
  ccfg.num_nodes = kRankers;
  ccfg.seed = 9;
  const overlay::ChordOverlay chord(ccfg);
  overlay::CanConfig acfg;
  acfg.num_nodes = kRankers;
  acfg.seed = 9;
  const overlay::CanOverlay can(acfg);
  for (const overlay::Overlay* o :
       {static_cast<const overlay::Overlay*>(&chord),
        static_cast<const overlay::Overlay*>(&can)}) {
    EngineOptions opts;
    opts.alpha = kAlpha;
    opts.t1 = opts.t2 = 2.0;
    opts.overlay = o;
    opts.seed = 4;
    DistributedRanking sim(*graph_, *assignment_, kRankers, opts, pool());
    sim.set_reference(*reference_);
    EXPECT_TRUE(sim.run_until_error(1e-4, 3000.0, 2.0).reached) << o->name();
  }
}

TEST_F(FullStackFixture, SlowerHopsSlowConvergence) {
  const auto o = make_pastry(kRankers);
  auto run_with = [&](double per_hop) {
    EngineOptions opts;
    opts.alpha = kAlpha;
    opts.t1 = opts.t2 = 2.0;
    opts.overlay = &o;
    opts.per_hop_latency = per_hop;
    opts.seed = 4;
    DistributedRanking sim(*graph_, *assignment_, kRankers, opts, pool());
    sim.set_reference(*reference_);
    return sim.run_until_error(1e-4, 5000.0, 2.0);
  };
  const auto fast = run_with(0.1);
  const auto slow = run_with(8.0);
  ASSERT_TRUE(fast.reached);
  ASSERT_TRUE(slow.reached);
  EXPECT_LT(fast.time, slow.time);
}

TEST_F(FullStackFixture, RecordHopsMatchDitAccounting) {
  // record_hops / records == mean route length over the (src,dst) pairs
  // actually used; must sit in Pastry's expected range for N=16.
  const auto o = make_pastry(kRankers);
  EngineOptions opts;
  opts.alpha = kAlpha;
  opts.t1 = opts.t2 = 2.0;
  opts.overlay = &o;
  opts.seed = 4;
  DistributedRanking sim(*graph_, *assignment_, kRankers, opts, pool());
  sim.set_reference(*reference_);
  (void)sim.run(30.0, 30.0);
  const double mean_hops = static_cast<double>(sim.record_hops()) /
                           static_cast<double>(sim.records_sent());
  EXPECT_GT(mean_hops, 0.5);
  EXPECT_LT(mean_hops, 3.0);  // log16(16) = 1, leaf shortcuts below
}

TEST_F(FullStackFixture, AbstractChannelReportsZeroHops) {
  EngineOptions opts;
  opts.alpha = kAlpha;
  opts.t1 = opts.t2 = 2.0;
  opts.seed = 4;
  DistributedRanking sim(*graph_, *assignment_, kRankers, opts, pool());
  sim.set_reference(*reference_);
  (void)sim.run(10.0, 10.0);
  EXPECT_EQ(sim.record_hops(), 0u);
}

}  // namespace
}  // namespace p2prank::engine
