#include "graph/synthetic_web.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/graph_stats.hpp"

namespace p2prank::graph {
namespace {

TEST(SyntheticWeb, RejectsBadConfigs) {
  SyntheticWebConfig cfg;
  cfg.num_sites = 0;
  EXPECT_THROW(generate_synthetic_web(cfg), std::invalid_argument);

  cfg = {};
  cfg.crawl_fraction = 0.0;
  EXPECT_THROW(generate_synthetic_web(cfg), std::invalid_argument);

  cfg = {};
  cfg.crawl_fraction = 1.5;
  EXPECT_THROW(generate_synthetic_web(cfg), std::invalid_argument);

  cfg = {};
  cfg.intra_site_fraction = -0.1;
  EXPECT_THROW(generate_synthetic_web(cfg), std::invalid_argument);

  cfg = {};
  cfg.site_size_exponent = 1.0;
  EXPECT_THROW(generate_synthetic_web(cfg), std::invalid_argument);

  cfg = {};
  cfg.dangling_fraction = 1.0;
  EXPECT_THROW(generate_synthetic_web(cfg), std::invalid_argument);
}

TEST(SyntheticWeb, DeterministicForSeed) {
  auto cfg = google2002_config(5000, 99);
  const auto g1 = generate_synthetic_web(cfg);
  const auto g2 = generate_synthetic_web(cfg);
  ASSERT_EQ(g1.num_pages(), g2.num_pages());
  EXPECT_EQ(g1.num_links(), g2.num_links());
  EXPECT_EQ(g1.num_external_links(), g2.num_external_links());
  for (PageId p = 0; p < g1.num_pages(); p += 97) {
    EXPECT_EQ(g1.url(p), g2.url(p));
    EXPECT_EQ(g1.out_degree(p), g2.out_degree(p));
  }
}

TEST(SyntheticWeb, StreamedBuildIsBitwiseIdenticalToBuilderPath) {
  // The two-pass streamed ingest must land on the exact same canonical CSR
  // as the in-memory GraphBuilder path — same draws, same rows, same
  // externals. This is what lets bench_report generate huge webs without
  // materializing the edge list.
  const auto cfg = google2002_config(8000, 17);
  const auto g = generate_synthetic_web(cfg);
  const auto s = generate_synthetic_web_streamed(cfg);
  ASSERT_EQ(s.num_pages(), g.num_pages());
  ASSERT_EQ(s.num_sites(), g.num_sites());
  ASSERT_EQ(s.num_links(), g.num_links());
  ASSERT_EQ(s.num_external_links(), g.num_external_links());
  for (PageId p = 0; p < g.num_pages(); ++p) {
    ASSERT_EQ(s.url(p), g.url(p)) << "page " << p;
    ASSERT_EQ(s.site(p), g.site(p)) << "page " << p;
    ASSERT_EQ(s.external_out_degree(p), g.external_out_degree(p)) << "page " << p;
    const auto out_s = s.out_links(p);
    const auto out_g = g.out_links(p);
    ASSERT_EQ(std::vector<PageId>(out_s.begin(), out_s.end()),
              std::vector<PageId>(out_g.begin(), out_g.end()))
        << "out row " << p;
    const auto in_s = s.in_links(p);
    const auto in_g = g.in_links(p);
    ASSERT_EQ(std::vector<PageId>(in_s.begin(), in_s.end()),
              std::vector<PageId>(in_g.begin(), in_g.end()))
        << "in row " << p;
  }
}

TEST(SyntheticWeb, DifferentSeedsDiffer) {
  const auto g1 = generate_synthetic_web(google2002_config(5000, 1));
  const auto g2 = generate_synthetic_web(google2002_config(5000, 2));
  EXPECT_NE(g1.num_links(), g2.num_links());
}

TEST(SyntheticWeb, PageCountNearTarget) {
  const auto g = generate_synthetic_web(google2002_config(20000, 5));
  EXPECT_GT(g.num_pages(), 18000u);
  EXPECT_LT(g.num_pages(), 22000u);
}

TEST(SyntheticWeb, SiteCountMatchesConfig) {
  const auto g = generate_synthetic_web(google2002_config(20000, 5));
  EXPECT_EQ(g.num_sites(), 100u);
}

class Google2002Stats : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_ = new WebGraph(generate_synthetic_web(google2002_config(50000, 42)));
    stats_ = new GraphStats(compute_stats(*graph_));
  }
  static void TearDownTestSuite() {
    delete stats_;
    delete graph_;
    stats_ = nullptr;
    graph_ = nullptr;
  }
  static WebGraph* graph_;
  static GraphStats* stats_;
};

WebGraph* Google2002Stats::graph_ = nullptr;
GraphStats* Google2002Stats::stats_ = nullptr;

TEST_F(Google2002Stats, InternalLinkFractionNearSevenFifteenths) {
  // The paper's dataset: 7M of 15M links point at crawled pages.
  EXPECT_NEAR(stats_->internal_fraction(), 7.0 / 15.0, 0.06);
}

TEST_F(Google2002Stats, IntraSiteFractionNearNinetyPercent) {
  // [16]: ~90% of links stay within the site.
  EXPECT_NEAR(stats_->intra_site_fraction(), 0.90, 0.05);
}

TEST_F(Google2002Stats, MeanOutDegreeNearFifteen) {
  EXPECT_NEAR(stats_->mean_out_degree, 15.0, 2.5);
}

TEST_F(Google2002Stats, HasDanglingPages) {
  EXPECT_GT(stats_->dangling_pages, 0u);
  EXPECT_LT(static_cast<double>(stats_->dangling_pages),
            0.1 * static_cast<double>(stats_->pages));
}

TEST_F(Google2002Stats, InDegreeIsHeavyTailed) {
  // A heavy-tailed in-degree distribution has a maximum far above the mean.
  const double mean_in = static_cast<double>(stats_->internal_links) /
                         static_cast<double>(stats_->pages);
  EXPECT_GT(stats_->max_in_degree, 20.0 * mean_in);
}

TEST_F(Google2002Stats, SiteSizesAreSkewed) {
  // Largest site should hold far more than the mean share of pages.
  std::size_t largest = 0;
  for (SiteId s = 0; s < graph_->num_sites(); ++s) {
    largest = std::max(largest, graph_->pages_of_site(s).size());
  }
  const double mean_site =
      static_cast<double>(graph_->num_pages()) / static_cast<double>(graph_->num_sites());
  EXPECT_GT(static_cast<double>(largest), 3.0 * mean_site);
}

TEST_F(Google2002Stats, AllLinksHaveValidEndpoints) {
  for (PageId u = 0; u < graph_->num_pages(); ++u) {
    for (const PageId v : graph_->out_links(u)) {
      ASSERT_LT(v, graph_->num_pages());
    }
  }
}

TEST_F(Google2002Stats, InOutAdjacencyAreConsistent) {
  // Every out-edge appears exactly once as an in-edge: totals must match.
  std::size_t in_total = 0;
  std::size_t out_total = 0;
  for (PageId p = 0; p < graph_->num_pages(); ++p) {
    in_total += graph_->in_degree(p);
    out_total += graph_->out_links(p).size();
  }
  EXPECT_EQ(in_total, out_total);
  EXPECT_EQ(in_total, graph_->num_links());
}

struct ScaleParam {
  std::uint32_t pages;
};

class SyntheticScaleSweep : public ::testing::TestWithParam<ScaleParam> {};

TEST_P(SyntheticScaleSweep, StatisticsHoldAcrossScales) {
  const auto g = generate_synthetic_web(google2002_config(GetParam().pages, 7));
  const auto s = compute_stats(g);
  EXPECT_NEAR(s.internal_fraction(), 0.47, 0.08);
  EXPECT_NEAR(s.intra_site_fraction(), 0.90, 0.06);
  EXPECT_GT(s.mean_out_degree, 10.0);
  EXPECT_LT(s.mean_out_degree, 20.0);
}

INSTANTIATE_TEST_SUITE_P(Scales, SyntheticScaleSweep,
                         ::testing::Values(ScaleParam{2000}, ScaleParam{10000},
                                           ScaleParam{40000}),
                         [](const auto& suite_info) {
                           return "pages" + std::to_string(suite_info.param.pages);
                         });

struct LocalityParam {
  double intra;
};

class SyntheticLocalitySweep : public ::testing::TestWithParam<LocalityParam> {};

TEST_P(SyntheticLocalitySweep, IntraSiteKnobIsRespected) {
  auto cfg = google2002_config(20000, 11);
  cfg.intra_site_fraction = GetParam().intra;
  const auto g = generate_synthetic_web(cfg);
  const auto s = compute_stats(g);
  EXPECT_NEAR(s.intra_site_fraction(), GetParam().intra, 0.07);
}

INSTANTIATE_TEST_SUITE_P(Locality, SyntheticLocalitySweep,
                         ::testing::Values(LocalityParam{0.5}, LocalityParam{0.7},
                                           LocalityParam{0.95}),
                         [](const auto& suite_info) {
                           return "intra" +
                                  std::to_string(static_cast<int>(suite_info.param.intra * 100));
                         });

}  // namespace
}  // namespace p2prank::graph
