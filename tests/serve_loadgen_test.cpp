// Closed-loop load generator (DESIGN.md §12): same seed ⇒ byte-identical
// query stream, checksum, and metrics snapshot; Zipf key sanity; and the
// serving-contract accounting (unavailable before first publish, zero torn
// reads against a live store).
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/loadgen.hpp"
#include "serve/snapshot.hpp"
#include "util/rng.hpp"

namespace p2prank::serve {
namespace {

constexpr std::size_t kPages = 100;

void publish_ramp(SnapshotStore& store, double t) {
  std::vector<double> ranks(kPages);
  std::vector<std::uint32_t> assignment(kPages);
  for (std::size_t i = 0; i < kPages; ++i) {
    ranks[i] = 1.0 / static_cast<double>(i + 1);
    assignment[i] = static_cast<std::uint32_t>(i % 4);
  }
  store.publish(t, ranks, assignment, 4);
}

LoadGenOptions small_options(std::uint64_t seed) {
  LoadGenOptions o;
  o.clients = 32;
  o.servers = 4;
  o.think_mean = 0.5;
  o.top_k = 5;
  o.seed = seed;
  o.record_stream = true;
  return o;
}

TEST(ServeZipf, ProbabilitiesSumToOneAndDecayMonotonically) {
  const ZipfSampler zipf(50, 1.1);
  double sum = 0.0;
  for (std::uint64_t i = 0; i < zipf.n(); ++i) {
    sum += zipf.probability(i);
    if (i > 0) {
      EXPECT_LT(zipf.probability(i), zipf.probability(i - 1));
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ServeZipf, SampleFrequenciesTrackTheDistribution) {
  const ZipfSampler zipf(20, 1.1);
  util::Rng rng(3);
  constexpr int kSamples = 200000;
  std::vector<int> counts(zipf.n(), 0);
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.sample(rng)];
  // The head keys carry most of the mass; check the empirical frequency of
  // the first few against the analytic pmf with a loose 10% relative band.
  for (std::uint64_t i = 0; i < 3; ++i) {
    const double freq = static_cast<double>(counts[i]) / kSamples;
    EXPECT_NEAR(freq, zipf.probability(i), 0.1 * zipf.probability(i))
        << "key " << i;
  }
  EXPECT_GT(counts[0], counts[zipf.n() - 1] * 10);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0), kSamples);
}

TEST(ServeZipf, RejectsDegenerateParameters) {
  EXPECT_THROW(ZipfSampler(0, 1.1), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -1.0), std::invalid_argument);
}

TEST(ServeLoadGen, RejectsDegenerateOptions) {
  SnapshotStore store(4);
  LoadGenOptions o = small_options(1);
  o.clients = 0;
  EXPECT_THROW(LoadGenerator(store, kPages, o), std::invalid_argument);
  o = small_options(1);
  o.servers = 0;
  EXPECT_THROW(LoadGenerator(store, kPages, o), std::invalid_argument);
  o = small_options(1);
  o.topk_fraction = 1.5;
  EXPECT_THROW(LoadGenerator(store, kPages, o), std::invalid_argument);
}

TEST(ServeLoadGen, SameSeedYieldsIdenticalStreamChecksumAndMetrics) {
  SnapshotStore store(8);
  publish_ramp(store, 1.0);
  publish_ramp(store, 2.0);

  const auto run_once = [&](std::string& stream, std::string& metrics_json) {
    obs::MetricsRegistry metrics;
    LoadGenerator gen(store, kPages, small_options(77), &metrics);
    gen.run_until(50.0);
    const LoadGenReport r = gen.report();
    stream = gen.stream_log();
    std::ostringstream out;
    metrics.write_json(out);
    metrics_json = out.str();
    return r;
  };

  std::string stream_a, stream_b, json_a, json_b;
  const LoadGenReport a = run_once(stream_a, json_a);
  const LoadGenReport b = run_once(stream_b, json_b);

  EXPECT_GT(a.completed, 0u);
  EXPECT_FALSE(stream_a.empty());
  // Byte-identical replay: the query stream, the order-sensitive checksum,
  // and the latency-histogram snapshot all match exactly.
  EXPECT_EQ(stream_a, stream_b);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(json_a, json_b);
  EXPECT_EQ(a.issued, b.issued);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.p50, b.p50);
  EXPECT_EQ(a.p99, b.p99);
}

TEST(ServeLoadGen, DifferentSeedDiverges) {
  SnapshotStore store(8);
  publish_ramp(store, 1.0);
  const auto checksum_for = [&](std::uint64_t seed, std::string& stream) {
    LoadGenerator gen(store, kPages, small_options(seed));
    gen.run_until(50.0);
    stream = gen.stream_log();
    return gen.report().checksum;
  };
  std::string stream_a, stream_b;
  const std::uint64_t a = checksum_for(101, stream_a);
  const std::uint64_t b = checksum_for(102, stream_b);
  EXPECT_NE(a, b);
  EXPECT_NE(stream_a, stream_b);
}

TEST(ServeLoadGen, UnavailableBeforeFirstPublish) {
  SnapshotStore store(4);  // never published
  LoadGenerator gen(store, kPages, small_options(5));
  gen.run_until(20.0);
  const LoadGenReport r = gen.report();
  EXPECT_GT(r.issued, 0u);
  // Every query found no snapshot: served=false across the whole stream.
  EXPECT_EQ(r.unavailable, r.issued);
  EXPECT_EQ(gen.stream_log().find("served=1"), std::string::npos);
}

TEST(ServeLoadGen, LiveStoreServesEverythingWithoutTornReads) {
  SnapshotStore store(8);
  publish_ramp(store, 0.5);
  LoadGenOptions o = small_options(9);
  o.clients = 200;
  o.servers = 16;
  LoadGenerator gen(store, kPages, o);
  // Interleave publishes with traffic, as rankserve does.
  for (double t = 5.0; t <= 60.0; t += 5.0) {
    publish_ramp(store, t);
    gen.run_until(t);
  }
  const LoadGenReport r = gen.report();
  EXPECT_GT(r.completed, 0u);
  EXPECT_EQ(r.torn_reads, 0u);
  EXPECT_EQ(r.unavailable, 0u);
  EXPECT_GT(r.qps, 0.0);
  EXPECT_LE(r.p50, r.p99);
  EXPECT_LE(r.p99, r.max_latency);
  EXPECT_GT(r.point_queries + r.topk_queries, 0u);
}

TEST(ServeLoadGen, StreamLogOnlyRecordedWhenRequested) {
  SnapshotStore store(4);
  publish_ramp(store, 1.0);
  LoadGenOptions o = small_options(4);
  o.record_stream = false;
  LoadGenerator gen(store, kPages, o);
  gen.run_until(10.0);
  EXPECT_GT(gen.report().completed, 0u);
  EXPECT_TRUE(gen.stream_log().empty());
}

}  // namespace
}  // namespace p2prank::serve
