#include "crawl/crawler.hpp"

#include <gtest/gtest.h>

#include <set>

#include "engine/distributed.hpp"
#include "engine/reference.hpp"
#include "graph/graph_stats.hpp"
#include "partition/partitioner.hpp"
#include "util/thread_pool.hpp"

namespace p2prank::crawl {
namespace {

CrawlConfig small_config() {
  CrawlConfig cfg;
  cfg.seed = 7;
  cfg.num_sites = 20;
  cfg.universe_pages = 5000;
  cfg.revisit_fraction = 0.1;
  return cfg;
}

TEST(Crawler, RejectsBadConfig) {
  CrawlConfig cfg = small_config();
  cfg.num_sites = 0;
  EXPECT_THROW(Crawler{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.universe_pages = 3;  // < num_sites
  EXPECT_THROW(Crawler{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.revisit_fraction = 1.0;
  EXPECT_THROW(Crawler{cfg}, std::invalid_argument);
}

TEST(Crawler, FetchReturnsRequestedCountWhileUniverseLasts) {
  Crawler c(small_config());
  const auto batch = c.fetch(100);
  EXPECT_EQ(batch.size(), 100u);
  EXPECT_GE(c.pages_discovered(), c.pages_fetched());
}

TEST(Crawler, DeterministicForSeed) {
  Crawler a(small_config());
  Crawler b(small_config());
  const auto ba = a.fetch(200);
  const auto bb = b.fetch(200);
  ASSERT_EQ(ba.size(), bb.size());
  for (std::size_t i = 0; i < ba.size(); ++i) {
    EXPECT_EQ(ba[i].url, bb[i].url);
    EXPECT_EQ(ba[i].out_urls, bb[i].out_urls);
  }
}

TEST(Crawler, RefetchingIsIdempotent) {
  // A revisited page must report exactly the same links.
  CrawlConfig cfg = small_config();
  cfg.revisit_fraction = 0.5;  // lots of revisits
  Crawler c(cfg);
  std::unordered_map<std::string, std::vector<std::string>> first_seen;
  for (int round = 0; round < 10; ++round) {
    for (const auto& page : c.fetch(50)) {
      const auto [it, fresh] = first_seen.emplace(page.url, page.out_urls);
      if (!fresh) {
        EXPECT_EQ(it->second, page.out_urls) << page.url;
      }
    }
  }
}

TEST(Crawler, RevisitsAreFlaggedAndDoNotGrowTheCrawl) {
  CrawlConfig cfg = small_config();
  cfg.revisit_fraction = 0.5;
  Crawler c(cfg);
  (void)c.fetch(50);
  const auto before = c.pages_fetched();
  bool saw_revisit = false;
  for (const auto& page : c.fetch(100)) saw_revisit |= page.revisit;
  EXPECT_TRUE(saw_revisit);
  EXPECT_LE(c.pages_fetched(), before + 100);
  // Distinct pages only counted once.
  std::set<std::string> urls;
  Crawler c2(cfg);
  for (const auto& p : c2.fetch(300)) urls.insert(p.url);
  EXPECT_EQ(urls.size(), c2.pages_fetched());
}

TEST(Crawler, ExhaustsTheUniverse) {
  CrawlConfig cfg = small_config();
  cfg.universe_pages = 300;
  cfg.num_sites = 5;
  cfg.revisit_fraction = 0.0;
  Crawler c(cfg);
  std::size_t total = 0;
  while (!c.exhausted()) {
    const auto batch = c.fetch(64);
    if (batch.empty()) break;
    total += batch.size();
    ASSERT_LE(total, 2 * c.universe_size());  // no livelock
  }
  EXPECT_TRUE(c.exhausted());
  EXPECT_EQ(c.pages_fetched(), c.universe_size());
}

TEST(Crawler, SnapshotGrowsMonotonically) {
  Crawler c(small_config());
  (void)c.fetch(100);
  const auto g1 = c.snapshot();
  (void)c.fetch(200);
  const auto g2 = c.snapshot();
  EXPECT_GT(g2.num_pages(), g1.num_pages());
  // Earlier pages keep their ids and urls.
  for (graph::PageId p = 0; p < g1.num_pages(); ++p) {
    EXPECT_EQ(g1.url(p), g2.url(p));
  }
}

TEST(Crawler, SnapshotExternalLinksShrinkAsCoverageGrows) {
  CrawlConfig cfg = small_config();
  cfg.universe_pages = 1000;
  cfg.revisit_fraction = 0.0;
  Crawler c(cfg);
  (void)c.fetch(150);
  const auto early = graph::compute_stats(c.snapshot());
  (void)c.fetch(700);
  const auto late = graph::compute_stats(c.snapshot());
  EXPECT_GT(late.internal_fraction(), early.internal_fraction());
}

TEST(Crawler, SnapshotLinkCountsMatchFetchedContent) {
  Crawler c(small_config());
  std::size_t total_links = 0;
  for (const auto& page : c.fetch(200)) {
    if (!page.revisit) total_links += page.out_urls.size();
  }
  const auto g = c.snapshot();
  EXPECT_EQ(g.num_links() + g.num_external_links(), total_links);
}

TEST(Crawler, HashPartitionIsStableAcrossSnapshots) {
  // The Section 4.1 argument: as the crawl grows (and pages are re-fetched),
  // hash partitioning keeps every page on the same ranker.
  Crawler c(small_config());
  (void)c.fetch(150);
  const auto g1 = c.snapshot();
  (void)c.fetch(300);
  const auto g2 = c.snapshot();
  const auto p = partition::make_hash_site_partitioner();
  const auto a1 = p->partition(g1, 16);
  const auto a2 = p->partition(g2, 16);
  for (graph::PageId page = 0; page < g1.num_pages(); ++page) {
    ASSERT_EQ(a1[page], a2[page]) << g1.url(page);
  }
}

TEST(Crawler, RankingPipelineWithWarmRestartAcrossSnapshots) {
  util::ThreadPool pool(4);
  CrawlConfig cfg = small_config();
  cfg.universe_pages = 2000;
  Crawler c(cfg);

  (void)c.fetch(500);
  const auto g1 = c.snapshot();
  const auto assignment1 = partition::make_hash_site_partitioner()->partition(g1, 8);
  const auto ref1 = engine::open_system_reference(g1, 0.85, pool);
  engine::EngineOptions opts;
  opts.t1 = opts.t2 = 1.0;
  opts.seed = 3;
  engine::DistributedRanking sim1(g1, assignment1, 8, opts, pool);
  sim1.set_reference(ref1);
  ASSERT_TRUE(sim1.run_until_error(1e-6, 1000.0, 2.0).reached);

  (void)c.fetch(500);
  const auto g2 = c.snapshot();
  const auto assignment2 = partition::make_hash_site_partitioner()->partition(g2, 8);
  const auto ref2 = engine::open_system_reference(g2, 0.85, pool);
  engine::DistributedRanking sim2(g2, assignment2, 8, opts, pool);
  sim2.set_reference(ref2);
  sim2.warm_start(engine::carry_ranks(g1, sim1.global_ranks(), g2));
  // Carried state is already a decent approximation of the new reference.
  EXPECT_LT(sim2.relative_error_now(), 0.6);
  EXPECT_TRUE(sim2.run_until_error(1e-6, 1000.0, 2.0).reached);
}

}  // namespace
}  // namespace p2prank::crawl
