#include "tools/cli.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace p2prank::tools {
namespace {

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult cli(std::vector<std::string> args) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = run_cli(args, out, err);
  return {code, out.str(), err.str()};
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/p2prank_cli_" + name;
}

TEST(Cli, NoArgsPrintsUsageAndFails) {
  const auto r = cli({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.out.find("usage:"), std::string::npos);
}

TEST(Cli, HelpSucceeds) {
  const auto r = cli({"help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("generate"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  const auto r = cli({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, BadFlagSyntaxFails) {
  const auto r = cli({"plan", "positional"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unexpected argument"), std::string::npos);
}

TEST(Cli, MissingRequiredFlagFails) {
  EXPECT_EQ(cli({"stats"}).code, 2);
  EXPECT_EQ(cli({"rank"}).code, 2);
  EXPECT_EQ(cli({"simulate"}).code, 2);
  EXPECT_EQ(cli({"generate"}).code, 2);
}

TEST(Cli, MissingCrawlFileReportsError) {
  const auto r = cli({"stats", "--crawl=/nonexistent/file"});
  EXPECT_EQ(r.code, 1);
  EXPECT_FALSE(r.err.empty());
}

TEST(Cli, GenerateStatsRankSimulatePipeline) {
  const auto crawl = temp_path("pipeline.crawl");
  const auto ckpt = temp_path("pipeline.ckpt");

  const auto gen = cli({"generate", "--out=" + crawl, "--pages=2000", "--seed=5"});
  ASSERT_EQ(gen.code, 0) << gen.err;
  EXPECT_NE(gen.out.find("wrote"), std::string::npos);

  const auto stats = cli({"stats", "--crawl=" + crawl, "--sinks"});
  ASSERT_EQ(stats.code, 0) << stats.err;
  EXPECT_NE(stats.out.find("pages:"), std::string::npos);
  EXPECT_NE(stats.out.find("rank sinks:"), std::string::npos);

  const auto ranked =
      cli({"rank", "--crawl=" + crawl, "--top=5", "--checkpoint=" + ckpt});
  ASSERT_EQ(ranked.code, 0) << ranked.err;
  EXPECT_NE(ranked.out.find("Top pages"), std::string::npos);
  EXPECT_NE(ranked.out.find("checkpoint written"), std::string::npos);

  const auto sim = cli({"simulate", "--crawl=" + crawl, "--k=4", "--t-end=30",
                        "--algorithm=dpr1", "--partition=url"});
  ASSERT_EQ(sim.code, 0) << sim.err;
  EXPECT_NE(sim.out.find("rel err"), std::string::npos);

  // Warm start from the centralized checkpoint: final error ~ 0 immediately.
  const auto warm = cli({"simulate", "--crawl=" + crawl, "--k=4", "--t-end=10",
                         "--warm=" + ckpt, "--partition=url"});
  ASSERT_EQ(warm.code, 0) << warm.err;
  EXPECT_NE(warm.out.find("warm start:"), std::string::npos);
}

TEST(Cli, SimulateValidatesEnums) {
  const auto crawl = temp_path("enums.crawl");
  ASSERT_EQ(cli({"generate", "--out=" + crawl, "--pages=500"}).code, 0);
  EXPECT_EQ(cli({"simulate", "--crawl=" + crawl, "--algorithm=dprX"}).code, 2);
  EXPECT_EQ(cli({"simulate", "--crawl=" + crawl, "--partition=tarot"}).code, 2);
}

TEST(Cli, PlanMatchesTable1Headline) {
  const auto r = cli({"plan", "--rankers=1000"});
  ASSERT_EQ(r.code, 0);
  // h = log16(1000) ~ 2.49 -> ~7480 s ~ 2.08 h.
  EXPECT_NE(r.out.find("min iteration interval"), std::string::npos);
  EXPECT_NE(r.out.find("h"), std::string::npos);
}

TEST(Cli, RankTopZeroSkipsTable) {
  const auto crawl = temp_path("topzero.crawl");
  ASSERT_EQ(cli({"generate", "--out=" + crawl, "--pages=500"}).code, 0);
  const auto r = cli({"rank", "--crawl=" + crawl, "--top=0"});
  ASSERT_EQ(r.code, 0);
  EXPECT_EQ(r.out.find("Top pages"), std::string::npos);
}

}  // namespace
}  // namespace p2prank::tools
