#include "rank/link_matrix.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/graph_builder.hpp"
#include "graph/synthetic_web.hpp"
#include "test_support.hpp"
#include "util/thread_pool.hpp"

namespace p2prank::rank {
namespace {

constexpr double kAlpha = 0.85;

TEST(LinkMatrix, RejectsBadAlpha) {
  const auto g = test::two_cycle();
  EXPECT_THROW((void)LinkMatrix::from_graph(g, 0.0), std::invalid_argument);
  EXPECT_THROW((void)LinkMatrix::from_graph(g, 1.0), std::invalid_argument);
  EXPECT_THROW((void)LinkMatrix::from_graph(g, -0.5), std::invalid_argument);
}

TEST(LinkMatrix, TwoCycleWeights) {
  const auto g = test::two_cycle();
  const auto m = LinkMatrix::from_graph(g, kAlpha);
  ASSERT_EQ(m.dimension(), 2u);
  ASSERT_EQ(m.num_entries(), 2u);
  // Each page has exactly one in-edge of weight alpha / 1.
  for (std::size_t v = 0; v < 2; ++v) {
    ASSERT_EQ(m.row_weights(v).size(), 1u);
    EXPECT_DOUBLE_EQ(m.row_weights(v)[0], kAlpha);
  }
}

TEST(LinkMatrix, WeightsUseGlobalOutDegreeIncludingExternal) {
  // a -> b plus one external link: weight must be alpha/2, not alpha/1.
  const auto g = test::leaky_pair();
  const auto m = LinkMatrix::from_graph(g, kAlpha);
  const auto b = *g.find("s.edu/b");
  ASSERT_EQ(m.row_weights(b).size(), 1u);
  EXPECT_DOUBLE_EQ(m.row_weights(b)[0], kAlpha / 2.0);
}

TEST(LinkMatrix, MultiplyMatchesManualComputation) {
  const auto g = test::star(3);
  const auto m = LinkMatrix::from_graph(g, kAlpha);
  std::vector<double> x(m.dimension(), 1.0);
  std::vector<double> y(m.dimension(), -1.0);
  m.multiply(x, y);
  // Hub receives alpha from each of the 3 leaves; leaves receive nothing.
  const auto hub = *g.find("s.edu/hub");
  EXPECT_DOUBLE_EQ(y[hub], 3.0 * kAlpha);
  for (std::size_t v = 0; v < m.dimension(); ++v) {
    if (v != hub) {
      EXPECT_DOUBLE_EQ(y[v], 0.0);
    }
  }
}

TEST(LinkMatrix, ParallelMultiplyMatchesSerial) {
  const auto g = graph::generate_synthetic_web(graph::google2002_config(10000, 17));
  const auto m = LinkMatrix::from_graph(g, kAlpha);
  util::ThreadPool pool(4);
  std::vector<double> x(m.dimension());
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 0.1 + static_cast<double>(i % 7);
  std::vector<double> serial(m.dimension());
  std::vector<double> parallel(m.dimension());
  m.multiply(x, serial);
  m.multiply(x, parallel, pool);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_DOUBLE_EQ(serial[i], parallel[i]) << i;
  }
}

TEST(LinkMatrix, ContractionNormBoundedByAlpha) {
  const auto g = graph::generate_synthetic_web(graph::google2002_config(5000, 3));
  const auto m = LinkMatrix::from_graph(g, kAlpha);
  EXPECT_LE(m.contraction_norm(), kAlpha + 1e-12);
  EXPECT_GT(m.contraction_norm(), 0.0);
}

TEST(LinkMatrix, ContractionNormStrictlyBelowAlphaWhenLeaky) {
  const auto g = test::leaky_pair();
  const auto m = LinkMatrix::from_graph(g, kAlpha);
  // Page a sends half its rank out of the crawl.
  EXPECT_DOUBLE_EQ(m.contraction_norm(), kAlpha / 2.0);
}

TEST(LinkMatrix, SubsetKeepsOnlyInternalEdges) {
  const auto g = test::chain(6);  // 0->1->2->3->4->5
  const std::vector<graph::PageId> left{0, 1, 2};
  const auto m = LinkMatrix::from_subset(g, left, kAlpha);
  ASSERT_EQ(m.dimension(), 3u);
  // Edges 0->1 and 1->2 are inside; 2->3 crosses out.
  EXPECT_EQ(m.num_entries(), 2u);
}

TEST(LinkMatrix, SubsetUsesGlobalDegrees) {
  const auto g = test::chain(4);  // every non-terminal page has out-degree 1
  const std::vector<graph::PageId> subset{1, 2};
  const auto m = LinkMatrix::from_subset(g, subset, kAlpha);
  // Edge 1->2: local row of page 2 is index 1.
  ASSERT_EQ(m.row_weights(1).size(), 1u);
  EXPECT_DOUBLE_EQ(m.row_weights(1)[0], kAlpha);
}

TEST(LinkMatrix, SubsetOfWholeGraphEqualsFromGraph) {
  const auto g = test::star(4);
  std::vector<graph::PageId> all(g.num_pages());
  for (graph::PageId p = 0; p < g.num_pages(); ++p) all[p] = p;
  const auto whole = LinkMatrix::from_graph(g, kAlpha);
  const auto sub = LinkMatrix::from_subset(g, all, kAlpha);
  ASSERT_EQ(whole.num_entries(), sub.num_entries());
  std::vector<double> x(g.num_pages(), 1.0);
  std::vector<double> y1(g.num_pages());
  std::vector<double> y2(g.num_pages());
  whole.multiply(x, y1);
  sub.multiply(x, y2);
  for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_DOUBLE_EQ(y1[i], y2[i]);
}

TEST(LinkMatrix, EmptySubset) {
  const auto g = test::two_cycle();
  const auto m = LinkMatrix::from_subset(g, {}, kAlpha);
  EXPECT_EQ(m.dimension(), 0u);
  EXPECT_EQ(m.num_entries(), 0u);
}

}  // namespace
}  // namespace p2prank::rank
