#include "engine/distributed.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "engine/reference.hpp"
#include "graph/synthetic_web.hpp"
#include "partition/partitioner.hpp"
#include "test_support.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace p2prank::engine {
namespace {

constexpr double kAlpha = 0.85;

util::ThreadPool& pool() {
  static util::ThreadPool p(4);
  return p;
}

class DistributedFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_ = new graph::WebGraph(
        graph::generate_synthetic_web(graph::google2002_config(5000, 55)));
    reference_ = new std::vector<double>(
        open_system_reference(*graph_, kAlpha, pool()));
  }
  static void TearDownTestSuite() {
    delete reference_;
    delete graph_;
    reference_ = nullptr;
    graph_ = nullptr;
  }

  static std::vector<std::uint32_t> assignment(std::uint32_t k) {
    return partition::make_hash_url_partitioner()->partition(*graph_, k);
  }

  static graph::WebGraph* graph_;
  static std::vector<double>* reference_;
};

graph::WebGraph* DistributedFixture::graph_ = nullptr;
std::vector<double>* DistributedFixture::reference_ = nullptr;

EngineOptions options(Algorithm alg, double p = 1.0, double t1 = 1.0,
                      double t2 = 1.0) {
  EngineOptions o;
  o.algorithm = alg;
  o.alpha = kAlpha;
  o.delivery_probability = p;
  o.t1 = t1;
  o.t2 = t2;
  o.seed = 2024;
  return o;
}

TEST_F(DistributedFixture, ConstructorValidation) {
  const auto a = assignment(4);
  EXPECT_THROW(DistributedRanking(*graph_, a, 0, options(Algorithm::kDPR1), pool()),
               std::invalid_argument);
  std::vector<std::uint32_t> short_a(graph_->num_pages() - 1, 0);
  EXPECT_THROW(
      DistributedRanking(*graph_, short_a, 4, options(Algorithm::kDPR1), pool()),
      std::invalid_argument);
  std::vector<std::uint32_t> bad_values(graph_->num_pages(), 4);  // == k
  EXPECT_THROW(
      DistributedRanking(*graph_, bad_values, 4, options(Algorithm::kDPR1), pool()),
      std::invalid_argument);
  auto bad_alpha = options(Algorithm::kDPR1);
  bad_alpha.alpha = 1.0;
  EXPECT_THROW(DistributedRanking(*graph_, a, 4, bad_alpha, pool()),
               std::invalid_argument);
}

TEST_F(DistributedFixture, RequiresReferenceBeforeRunning) {
  const auto a = assignment(4);
  DistributedRanking sim(*graph_, a, 4, options(Algorithm::kDPR1), pool());
  EXPECT_THROW((void)sim.run(10.0), std::logic_error);
  EXPECT_THROW((void)sim.relative_error_now(), std::logic_error);
  EXPECT_THROW(sim.set_reference(std::vector<double>(3, 0.0)),
               std::invalid_argument);
}

TEST_F(DistributedFixture, Dpr1ConvergesToCentralizedRanks) {
  const auto a = assignment(8);
  DistributedRanking sim(*graph_, a, 8, options(Algorithm::kDPR1), pool());
  sim.set_reference(*reference_);
  const auto result = sim.run_until_error(1e-4, 400.0, 2.0);
  EXPECT_TRUE(result.reached) << "err=" << result.final_relative_error;
  EXPECT_LT(result.final_relative_error, 1e-4);
}

TEST_F(DistributedFixture, Dpr2ConvergesToCentralizedRanks) {
  const auto a = assignment(8);
  DistributedRanking sim(*graph_, a, 8, options(Algorithm::kDPR2), pool());
  sim.set_reference(*reference_);
  const auto result = sim.run_until_error(1e-4, 2000.0, 5.0);
  EXPECT_TRUE(result.reached) << "err=" << result.final_relative_error;
}

TEST_F(DistributedFixture, Dpr1NeedsFewerOuterStepsThanDpr2) {
  const auto a = assignment(8);
  DistributedRanking dpr1(*graph_, a, 8, options(Algorithm::kDPR1), pool());
  dpr1.set_reference(*reference_);
  const auto r1 = dpr1.run_until_error(1e-4, 2000.0, 2.0);
  DistributedRanking dpr2(*graph_, a, 8, options(Algorithm::kDPR2), pool());
  dpr2.set_reference(*reference_);
  const auto r2 = dpr2.run_until_error(1e-4, 2000.0, 2.0);
  ASSERT_TRUE(r1.reached);
  ASSERT_TRUE(r2.reached);
  EXPECT_LT(r1.mean_outer_steps, r2.mean_outer_steps);
}

TEST_F(DistributedFixture, ConvergesDespiteMessageLoss) {
  const auto a = assignment(8);
  DistributedRanking sim(*graph_, a, 8,
                         options(Algorithm::kDPR1, /*p=*/0.7), pool());
  sim.set_reference(*reference_);
  const auto result = sim.run_until_error(1e-4, 2000.0, 5.0);
  EXPECT_TRUE(result.reached);
  EXPECT_GT(sim.messages_lost(), 0u);
}

TEST_F(DistributedFixture, LossySimConvergesSlowerThanLossless) {
  const auto a = assignment(8);
  DistributedRanking clean(*graph_, a, 8, options(Algorithm::kDPR1, 1.0), pool());
  clean.set_reference(*reference_);
  const auto rc = clean.run_until_error(1e-4, 2000.0, 2.0);
  DistributedRanking lossy(*graph_, a, 8, options(Algorithm::kDPR1, 0.5), pool());
  lossy.set_reference(*reference_);
  const auto rl = lossy.run_until_error(1e-4, 2000.0, 2.0);
  ASSERT_TRUE(rc.reached);
  ASSERT_TRUE(rl.reached);
  EXPECT_LE(rc.time, rl.time);
}

TEST_F(DistributedFixture, RelativeErrorDecreasesOverTime) {
  const auto a = assignment(16);
  DistributedRanking sim(*graph_, a, 16, options(Algorithm::kDPR1), pool());
  sim.set_reference(*reference_);
  const auto samples = sim.run(60.0, 4.0);
  ASSERT_GE(samples.size(), 10u);
  EXPECT_GT(samples.front().relative_error, samples.back().relative_error);
  EXPECT_LT(samples.back().relative_error, 0.01);
  // Time axis is monotone and as requested.
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GT(samples[i].time, samples[i - 1].time);
  }
}

TEST_F(DistributedFixture, SamplesReportOuterStepProgress) {
  const auto a = assignment(8);
  DistributedRanking sim(*graph_, a, 8, options(Algorithm::kDPR1), pool());
  sim.set_reference(*reference_);
  const auto samples = sim.run(20.0, 5.0);
  ASSERT_GE(samples.size(), 2u);
  EXPECT_GT(samples.back().total_outer_steps, samples.front().total_outer_steps);
  EXPECT_EQ(samples.back().total_outer_steps, sim.total_outer_steps());
}

TEST_F(DistributedFixture, MessageAccountingIsConsistent) {
  const auto a = assignment(8);
  DistributedRanking sim(*graph_, a, 8, options(Algorithm::kDPR1, 0.6), pool());
  sim.set_reference(*reference_);
  (void)sim.run(30.0, 10.0);
  EXPECT_GT(sim.messages_sent(), 0u);
  EXPECT_GT(sim.records_sent(), sim.messages_sent());  // slices carry many records
  EXPECT_LT(sim.messages_lost(), sim.messages_sent());
  const double loss_rate = static_cast<double>(sim.messages_lost()) /
                           static_cast<double>(sim.messages_sent());
  EXPECT_NEAR(loss_rate, 0.4, 0.05);
}

TEST_F(DistributedFixture, SingleGroupEqualsCentralizedAfterOneStep) {
  // K=1: no cut edges; the first DPR1 step solves the global system.
  std::vector<std::uint32_t> a(graph_->num_pages(), 0);
  DistributedRanking sim(*graph_, a, 1, options(Algorithm::kDPR1), pool());
  sim.set_reference(*reference_);
  (void)sim.run(10.0, 10.0);
  EXPECT_LT(sim.relative_error_now(), 1e-6);
}

TEST_F(DistributedFixture, EmptyGroupsAreTolerated) {
  // k = 4 but every page lands in groups {0, 1}.
  std::vector<std::uint32_t> a(graph_->num_pages());
  for (graph::PageId p = 0; p < graph_->num_pages(); ++p) a[p] = p % 2;
  DistributedRanking sim(*graph_, a, 4, options(Algorithm::kDPR1), pool());
  sim.set_reference(*reference_);
  EXPECT_EQ(sim.nonempty_groups(), 2u);
  const auto result = sim.run_until_error(1e-4, 500.0, 5.0);
  EXPECT_TRUE(result.reached);
}

TEST_F(DistributedFixture, DeterministicForSeed) {
  const auto a = assignment(8);
  DistributedRanking s1(*graph_, a, 8, options(Algorithm::kDPR2, 0.8), pool());
  s1.set_reference(*reference_);
  DistributedRanking s2(*graph_, a, 8, options(Algorithm::kDPR2, 0.8), pool());
  s2.set_reference(*reference_);
  const auto r1 = s1.run(25.0, 5.0);
  const auto r2 = s2.run(25.0, 5.0);
  ASSERT_EQ(r1.size(), r2.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1[i].relative_error, r2[i].relative_error);
    EXPECT_EQ(r1[i].total_outer_steps, r2[i].total_outer_steps);
  }
}

TEST_F(DistributedFixture, DeliveryLatencyDelaysButDoesNotBreakConvergence) {
  const auto a = assignment(8);
  auto opts = options(Algorithm::kDPR1);
  opts.delivery_latency = 2.0;
  DistributedRanking sim(*graph_, a, 8, opts, pool());
  sim.set_reference(*reference_);
  const auto result = sim.run_until_error(1e-4, 2000.0, 5.0);
  EXPECT_TRUE(result.reached);
}

TEST_F(DistributedFixture, GlobalRanksAssembleAllPages) {
  const auto a = assignment(8);
  DistributedRanking sim(*graph_, a, 8, options(Algorithm::kDPR1), pool());
  sim.set_reference(*reference_);
  (void)sim.run(10.0, 10.0);
  const auto ranks = sim.global_ranks();
  ASSERT_EQ(ranks.size(), graph_->num_pages());
  for (const double r : ranks) EXPECT_GT(r, 0.0);
}

}  // namespace
}  // namespace p2prank::engine
