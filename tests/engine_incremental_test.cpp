#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "engine/distributed.hpp"
#include "engine/reference.hpp"
#include "graph/graph_updates.hpp"
#include "graph/synthetic_web.hpp"
#include "partition/partitioner.hpp"
#include "util/thread_pool.hpp"

namespace p2prank::engine {
namespace {

constexpr double kAlpha = 0.85;

EngineOptions worklist_options() {
  EngineOptions o;
  o.algorithm = Algorithm::kDPR1;
  o.alpha = kAlpha;
  o.seed = 4242;
  o.worklist = true;
  o.worklist_epsilon = 0.0;  // exact mode — bitwise contract applies
  return o;
}

/// A deterministic link-only batch: one new link, one removal of an
/// existing link, one external bump. Always incremental-eligible.
std::vector<graph::LinkUpdate> link_only_batch(const graph::WebGraph& g) {
  std::vector<graph::LinkUpdate> ups;
  ups.push_back(graph::LinkUpdate::add_link(g.url(1), g.url(2)));
  for (graph::PageId u = 0; u < g.num_pages(); ++u) {
    const auto row = g.out_links(u);
    if (!row.empty()) {
      ups.push_back(graph::LinkUpdate::remove_link(g.url(u), g.url(row[0])));
      break;
    }
  }
  ups.push_back(graph::LinkUpdate::add_external(g.url(0)));
  return ups;
}

/// Run the incremental-vs-rebuild experiment on one thread pool and demand
/// bitwise-identical rank vectors (DESIGN.md §14's determinism contract).
void expect_incremental_matches_rebuild(std::size_t pool_threads) {
  util::ThreadPool pool(pool_threads);
  const auto g =
      graph::generate_synthetic_web(graph::google2002_config(2000, 77));
  const auto assignment =
      partition::make_hash_url_partitioner()->partition(g, 4);

  // Predecessor engine: run long enough for the worklist kernel to prime
  // and partially converge, then retire it.
  DistributedRanking sim0(g, assignment, 4, worklist_options(), pool);
  sim0.set_reference(open_system_reference(g, kAlpha, pool));
  (void)sim0.run(30.0, 30.0);
  const auto ranks = sim0.global_ranks();
  auto carry = sim0.export_worklist_carry();
  // The test is vacuous if every group fell back to the dense path: demand
  // that the predecessor actually exported live frontiers.
  std::size_t valid_carries = 0;
  for (const auto& c : carry.groups) valid_carries += c.valid ? 1 : 0;
  ASSERT_GT(valid_carries, 0u);

  const auto delta = graph::apply_updates_delta(g, link_only_batch(g));
  ASSERT_TRUE(delta.incremental);
  const auto reference = open_system_reference(delta.graph, kAlpha, pool);

  DistributedRanking incremental(delta.graph, assignment, 4, worklist_options(),
                                 pool);
  incremental.set_reference(reference);
  incremental.warm_start_incremental(ranks, std::move(carry), delta.in_changed,
                                     delta.degree_changed);
  (void)incremental.run(40.0, 40.0);

  DistributedRanking rebuild(delta.graph, assignment, 4, worklist_options(),
                             pool);
  rebuild.set_reference(reference);
  rebuild.warm_start(ranks);
  (void)rebuild.run(40.0, 40.0);

  const auto ri = incremental.global_ranks();
  const auto rr = rebuild.global_ranks();
  ASSERT_EQ(ri.size(), rr.size());
  for (std::size_t p = 0; p < ri.size(); ++p) {
    ASSERT_EQ(ri[p], rr[p]) << "page " << p << " diverged (pool="
                            << pool_threads << ")";
  }
}

TEST(EngineIncremental, BitwiseIdenticalToRebuildPool1) {
  expect_incremental_matches_rebuild(1);
}

TEST(EngineIncremental, BitwiseIdenticalToRebuildPool2) {
  expect_incremental_matches_rebuild(2);
}

TEST(EngineIncremental, BitwiseIdenticalToRebuildPool8) {
  expect_incremental_matches_rebuild(8);
}

TEST(EngineIncremental, InvalidCarryFallsBackToDenseWarmStart) {
  util::ThreadPool pool(2);
  const auto g =
      graph::generate_synthetic_web(graph::google2002_config(1500, 13));
  const auto assignment =
      partition::make_hash_url_partitioner()->partition(g, 4);

  DistributedRanking sim0(g, assignment, 4, worklist_options(), pool);
  sim0.set_reference(open_system_reference(g, kAlpha, pool));
  (void)sim0.run(20.0, 20.0);
  const auto ranks = sim0.global_ranks();

  const auto delta = graph::apply_updates_delta(g, link_only_batch(g));
  ASSERT_TRUE(delta.incremental);
  const auto reference = open_system_reference(delta.graph, kAlpha, pool);

  // An empty carry set must degrade to exactly the dense warm_start path.
  DistributedRanking degraded(delta.graph, assignment, 4, worklist_options(),
                              pool);
  degraded.set_reference(reference);
  degraded.warm_start_incremental(ranks, DistributedRanking::WorklistCarrySet{},
                                  delta.in_changed, delta.degree_changed);
  (void)degraded.run(30.0, 30.0);

  DistributedRanking dense(delta.graph, assignment, 4, worklist_options(),
                           pool);
  dense.set_reference(reference);
  dense.warm_start(ranks);
  (void)dense.run(30.0, 30.0);

  const auto ra = degraded.global_ranks();
  const auto rb = dense.global_ranks();
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t p = 0; p < ra.size(); ++p) {
    ASSERT_EQ(ra[p], rb[p]) << "page " << p;
  }
}

TEST(EngineIncremental, SizeMismatchThrows) {
  util::ThreadPool pool(2);
  const auto g =
      graph::generate_synthetic_web(graph::google2002_config(500, 3));
  const auto assignment =
      partition::make_hash_url_partitioner()->partition(g, 2);
  DistributedRanking sim(g, assignment, 2, worklist_options(), pool);
  std::vector<double> wrong(g.num_pages() + 1, 0.0);
  EXPECT_THROW(sim.warm_start_incremental(
                   wrong, DistributedRanking::WorklistCarrySet{}, {}, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace p2prank::engine
