#include "overlay/chord.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace p2prank::overlay {
namespace {

ChordConfig config(std::uint32_t n) {
  ChordConfig cfg;
  cfg.num_nodes = n;
  cfg.seed = 77;
  return cfg;
}

TEST(Chord, RejectsBadConfig) {
  EXPECT_THROW(ChordOverlay{config(0)}, std::invalid_argument);
  auto cfg = config(4);
  cfg.successor_list = 0;
  EXPECT_THROW(ChordOverlay{cfg}, std::invalid_argument);
}

TEST(Chord, ResponsibleNodeIsSuccessor) {
  ChordOverlay o(config(200));
  util::Rng rng(3);
  for (int trial = 0; trial < 300; ++trial) {
    const NodeId key = node_id_from_u64(rng.next());
    const NodeIndex r = o.responsible_node(key);
    // r's id >= key, and the predecessor's id < key (with ring wrap).
    if (o.id_of(r) >= key) {
      if (r > 0) {
        EXPECT_LT(o.id_of(r - 1), key);
      }
    } else {
      // wrapped: key larger than every id, successor is node 0
      EXPECT_EQ(r, 0u);
      EXPECT_GT(key, o.id_of(199));
    }
  }
}

TEST(Chord, SuccessorWrapsAround) {
  ChordOverlay o(config(10));
  EXPECT_EQ(o.successor(9), 0u);
  EXPECT_EQ(o.successor(3), 4u);
}

TEST(Chord, RouteEndsAtResponsibleNode) {
  ChordOverlay o(config(300));
  util::Rng rng(4);
  for (int trial = 0; trial < 300; ++trial) {
    const auto from = static_cast<NodeIndex>(rng.below(300));
    const NodeId key = node_id_from_u64(rng.next());
    const auto path = o.route(from, key);
    const NodeIndex dest = o.responsible_node(key);
    if (from == dest) {
      EXPECT_TRUE(path.empty());
    } else {
      ASSERT_FALSE(path.empty());
      EXPECT_EQ(path.back(), dest);
    }
  }
}

TEST(Chord, HopsAreNeighbors) {
  ChordOverlay o(config(200));
  util::Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    const auto from = static_cast<NodeIndex>(rng.below(200));
    const NodeId key = node_id_from_u64(rng.next());
    NodeIndex cur = from;
    for (const NodeIndex hop : o.route(from, key)) {
      const auto nb = o.neighbors(cur);
      EXPECT_TRUE(std::find(nb.begin(), nb.end(), hop) != nb.end());
      cur = hop;
    }
  }
}

TEST(Chord, FingersNeverIncludeSelf) {
  ChordOverlay o(config(100));
  for (NodeIndex node = 0; node < 100; ++node) {
    const auto nb = o.neighbors(node);
    EXPECT_TRUE(std::find(nb.begin(), nb.end(), node) == nb.end());
  }
}

TEST(Chord, FingerCountIsLogarithmic) {
  ChordOverlay o(config(1024));
  const auto probe = probe_overlay(o, 10, 1);
  // ~log2(N) distinct fingers + successor list.
  EXPECT_GT(probe.mean_neighbors, 6.0);
  EXPECT_LT(probe.mean_neighbors, 25.0);
}

TEST(Chord, MeanHopsAreHalfLog2N) {
  ChordOverlay o(config(1024));
  const auto probe = probe_overlay(o, 2000, 9);
  // Chord's expected route length is ~0.5·log2(N) = 5.
  EXPECT_NEAR(probe.mean_hops, 5.0, 1.5);
}

TEST(Chord, SingleNodeRoutesNowhere) {
  ChordOverlay o(config(1));
  EXPECT_TRUE(o.route(0, node_id_from_u64(42)).empty());
}

struct SizeParam {
  std::uint32_t n;
};

class ChordSizeSweep : public ::testing::TestWithParam<SizeParam> {};

TEST_P(ChordSizeSweep, DeliveryCorrectAtEveryScale) {
  ChordOverlay o(config(GetParam().n));
  util::Rng rng(13);
  for (int trial = 0; trial < 100; ++trial) {
    const auto from = static_cast<NodeIndex>(rng.below(GetParam().n));
    const NodeId key = node_id_from_u64(rng.next());
    const auto path = o.route(from, key);
    const NodeIndex dest = o.responsible_node(key);
    if (!path.empty()) {
      EXPECT_EQ(path.back(), dest);
    } else {
      EXPECT_EQ(from, dest);
    }
  }
}

TEST_P(ChordSizeSweep, HopsBoundedByLog2N) {
  ChordOverlay o(config(GetParam().n));
  const auto probe = probe_overlay(o, 300, 21);
  EXPECT_LE(probe.max_hops,
            std::log2(static_cast<double>(GetParam().n)) + 3.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChordSizeSweep,
                         ::testing::Values(SizeParam{2}, SizeParam{8},
                                           SizeParam{64}, SizeParam{512},
                                           SizeParam{2048}),
                         [](const auto& suite_info) {
                           return "n" + std::to_string(suite_info.param.n);
                         });

}  // namespace
}  // namespace p2prank::overlay
