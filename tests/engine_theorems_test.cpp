// Property tests for the paper's convergence theory (Section 4.3 + Appendix):
//   Theorem 4.1 — DPR1's per-node rank sequence is monotone (non-decreasing
//                 from R0 = 0),
//   Theorem 4.2 — it is bounded above by the centralized fixed point,
// and the corollaries the paper draws: both hold for DPR2 with R0 = 0, and
// they hold *under message loss and asynchrony* too (the sequences just grow
// more slowly).
#include <gtest/gtest.h>

#include <vector>

#include "engine/distributed.hpp"
#include "engine/reference.hpp"
#include "graph/synthetic_web.hpp"
#include "partition/partitioner.hpp"
#include "util/thread_pool.hpp"

namespace p2prank::engine {
namespace {

constexpr double kAlpha = 0.85;

util::ThreadPool& pool() {
  static util::ThreadPool p(4);
  return p;
}

struct TheoremParam {
  Algorithm algorithm;
  double p;        // delivery probability
  double t1, t2;   // wait interval
  std::uint32_t k;
};

std::string param_name(const ::testing::TestParamInfo<TheoremParam>& info) {
  const auto& p = info.param;
  std::string name = p.algorithm == Algorithm::kDPR1 ? "DPR1" : "DPR2";
  name += "_p" + std::to_string(static_cast<int>(p.p * 100));
  name += "_t" + std::to_string(static_cast<int>(p.t1)) + "to" +
          std::to_string(static_cast<int>(p.t2));
  name += "_k" + std::to_string(p.k);
  return name;
}

class TheoremSweep : public ::testing::TestWithParam<TheoremParam> {
 protected:
  static void SetUpTestSuite() {
    graph_ = new graph::WebGraph(
        graph::generate_synthetic_web(graph::google2002_config(3000, 77)));
    reference_ =
        new std::vector<double>(open_system_reference(*graph_, kAlpha, pool()));
  }
  static void TearDownTestSuite() {
    delete reference_;
    delete graph_;
    reference_ = nullptr;
    graph_ = nullptr;
  }
  static graph::WebGraph* graph_;
  static std::vector<double>* reference_;
};

graph::WebGraph* TheoremSweep::graph_ = nullptr;
std::vector<double>* TheoremSweep::reference_ = nullptr;

TEST_P(TheoremSweep, RankSequenceIsMonotoneNonDecreasing) {
  const auto& prm = GetParam();
  const auto assignment =
      partition::make_hash_url_partitioner()->partition(*graph_, prm.k);
  EngineOptions opts;
  opts.algorithm = prm.algorithm;
  opts.alpha = kAlpha;
  opts.delivery_probability = prm.p;
  opts.t1 = prm.t1;
  opts.t2 = prm.t2;
  opts.seed = 99;
  DistributedRanking sim(*graph_, assignment, prm.k, opts, pool());
  sim.set_reference(*reference_);
  const auto samples = sim.run(40.0, 2.0);
  for (const auto& s : samples) {
    // Theorem 4.1: no page's rank ever decreases (tolerance for fp noise).
    EXPECT_GE(s.min_rank_delta, -1e-12) << "t=" << s.time;
  }
}

TEST_P(TheoremSweep, RanksBoundedAboveByCentralizedFixedPoint) {
  const auto& prm = GetParam();
  const auto assignment =
      partition::make_hash_url_partitioner()->partition(*graph_, prm.k);
  EngineOptions opts;
  opts.algorithm = prm.algorithm;
  opts.alpha = kAlpha;
  opts.delivery_probability = prm.p;
  opts.t1 = prm.t1;
  opts.t2 = prm.t2;
  opts.seed = 17;
  DistributedRanking sim(*graph_, assignment, prm.k, opts, pool());
  sim.set_reference(*reference_);
  (void)sim.run(40.0, 8.0);
  const auto ranks = sim.global_ranks();
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    // Theorem 4.2: R_u,m <= R*_u for every page at every time.
    ASSERT_LE(ranks[i], (*reference_)[i] + 1e-9) << "page " << i;
  }
}

TEST_P(TheoremSweep, AverageRankGrowsTowardReferenceAverage) {
  const auto& prm = GetParam();
  const auto assignment =
      partition::make_hash_url_partitioner()->partition(*graph_, prm.k);
  EngineOptions opts;
  opts.algorithm = prm.algorithm;
  opts.alpha = kAlpha;
  opts.delivery_probability = prm.p;
  opts.t1 = prm.t1;
  opts.t2 = prm.t2;
  opts.seed = 3;
  DistributedRanking sim(*graph_, assignment, prm.k, opts, pool());
  sim.set_reference(*reference_);
  const auto samples = sim.run(40.0, 4.0);
  double ref_avg = 0.0;
  for (const double r : *reference_) ref_avg += r;
  ref_avg /= static_cast<double>(reference_->size());
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].average_rank, samples[i - 1].average_rank - 1e-12);
    EXPECT_LE(samples[i].average_rank, ref_avg + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperConfigs, TheoremSweep,
    ::testing::Values(
        // The paper's Fig. 6/7 configurations (scaled k).
        TheoremParam{Algorithm::kDPR1, 1.0, 0.0, 6.0, 16},
        TheoremParam{Algorithm::kDPR1, 0.7, 0.0, 6.0, 16},
        TheoremParam{Algorithm::kDPR1, 0.7, 0.0, 15.0, 16},
        // Theorem extension: DPR2 with R0 = 0.
        TheoremParam{Algorithm::kDPR2, 1.0, 0.0, 6.0, 16},
        TheoremParam{Algorithm::kDPR2, 0.7, 0.0, 6.0, 16},
        // Near-lockstep (Fig. 8 style) and different k.
        TheoremParam{Algorithm::kDPR1, 1.0, 15.0, 15.0, 4},
        TheoremParam{Algorithm::kDPR2, 0.5, 1.0, 3.0, 64}),
    param_name);

}  // namespace
}  // namespace p2prank::engine
