// Shared fixtures for the p2prank test suite: tiny graphs with known
// closed-form ranks, and helpers for building crawls inline.
#pragma once

#include <string>
#include <vector>

#include "graph/graph_builder.hpp"
#include "graph/web_graph.hpp"

namespace p2prank::test {

/// Two pages linking to each other, same site.
///   a <-> b
/// Open-system fixed point (E = 1): R = β + α·R  =>  R(a) = R(b) = 1.
inline graph::WebGraph two_cycle() {
  graph::GraphBuilder b;
  const auto a = b.add_page("s.edu/a", "s.edu");
  const auto c = b.add_page("s.edu/b", "s.edu");
  b.add_link(a, c);
  b.add_link(c, a);
  return std::move(b).build();
}

/// Star: n leaves all pointing at one hub; hub dangling.
/// R(leaf) = β;  R(hub) = β + n·α·β.
inline graph::WebGraph star(int leaves) {
  graph::GraphBuilder b;
  const auto hub = b.add_page("s.edu/hub", "s.edu");
  for (int i = 0; i < leaves; ++i) {
    const auto leaf = b.add_page("s.edu/leaf" + std::to_string(i), "s.edu");
    b.add_link(leaf, hub);
  }
  return std::move(b).build();
}

/// Chain a0 -> a1 -> ... -> a_{n-1} across two sites (split at the middle).
inline graph::WebGraph chain(int n) {
  graph::GraphBuilder b;
  std::vector<graph::PageId> ids;
  for (int i = 0; i < n; ++i) {
    const std::string site = i < n / 2 ? "left.edu" : "right.edu";
    ids.push_back(b.add_page(site + "/p" + std::to_string(i), site));
  }
  for (int i = 0; i + 1 < n; ++i) b.add_link(ids[i], ids[i + 1]);
  return std::move(b).build();
}

/// A page with one internal and one external link: rank leaks.
///   a -> b (internal), a -> (uncrawled), b dangling.
inline graph::WebGraph leaky_pair() {
  graph::GraphBuilder b;
  const auto a = b.add_page("s.edu/a", "s.edu");
  const auto c = b.add_page("s.edu/b", "s.edu");
  b.add_link(a, c);
  b.add_external_link(a);
  return std::move(b).build();
}

}  // namespace p2prank::test
