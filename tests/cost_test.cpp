#include "cost/capacity_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace p2prank::cost {
namespace {

TEST(PastryHops, LogLaw) {
  EXPECT_DOUBLE_EQ(pastry_expected_hops(16.0, 4), 1.0);
  EXPECT_DOUBLE_EQ(pastry_expected_hops(256.0, 4), 2.0);
  EXPECT_DOUBLE_EQ(pastry_expected_hops(1.0, 4), 0.0);
  EXPECT_NEAR(pastry_expected_hops(1000.0, 4), 2.49, 0.01);
}

TEST(PastryHops, RejectsBadArgs) {
  EXPECT_THROW((void)pastry_expected_hops(0.5), std::invalid_argument);
  EXPECT_THROW((void)pastry_expected_hops(16.0, 0), std::invalid_argument);
}

TEST(PastryHops, PaperValues) {
  EXPECT_DOUBLE_EQ(paper_pastry_hops(1000), 2.5);
  EXPECT_DOUBLE_EQ(paper_pastry_hops(10000), 3.5);
  EXPECT_DOUBLE_EQ(paper_pastry_hops(100000), 4.0);
  // Other sizes fall back to the log law.
  EXPECT_NEAR(paper_pastry_hops(256), 2.0, 1e-12);
}

TEST(Formulas, IndirectCostMatches41And43) {
  CostParameters p;
  p.total_pages = 3e9;
  p.record_bytes = 100.0;
  p.mean_neighbors = 32.0;
  const auto c = indirect_cost(1000.0, 2.5, p);
  EXPECT_DOUBLE_EQ(c.bytes, 2.5 * 100.0 * 3e9);   // D_it = h·l·W
  EXPECT_DOUBLE_EQ(c.messages, 32.0 * 1000.0);    // S_it = g·N
}

TEST(Formulas, DirectCostMatches42And44) {
  CostParameters p;
  p.total_pages = 3e9;
  p.record_bytes = 100.0;
  p.lookup_bytes = 50.0;
  const auto c = direct_cost(1000.0, 2.5, p);
  EXPECT_DOUBLE_EQ(c.bytes, 100.0 * 3e9 + 2.5 * 50.0 * 1e6);  // lW + h·r·N²
  EXPECT_DOUBLE_EQ(c.messages, 3.5 * 1e6);                    // (h+1)·N²
}

TEST(Table1, ReproducesPaperNumbersExactly) {
  // Table 1 of the paper: time per iteration 7500/10500/12000 s and node
  // bottleneck bandwidth 100/10/1 KB/s for N = 1e3/1e4/1e5.
  const auto rows = table1();
  ASSERT_EQ(rows.size(), 3u);

  EXPECT_EQ(rows[0].num_rankers, 1000u);
  EXPECT_DOUBLE_EQ(rows[0].min_interval_seconds, 7500.0);
  EXPECT_DOUBLE_EQ(rows[0].min_node_bandwidth, 100e3);

  EXPECT_EQ(rows[1].num_rankers, 10000u);
  EXPECT_DOUBLE_EQ(rows[1].min_interval_seconds, 10500.0);
  EXPECT_DOUBLE_EQ(rows[1].min_node_bandwidth, 10e3);

  EXPECT_EQ(rows[2].num_rankers, 100000u);
  EXPECT_DOUBLE_EQ(rows[2].min_interval_seconds, 12000.0);
  EXPECT_DOUBLE_EQ(rows[2].min_node_bandwidth, 1e3);
}

TEST(Table1, IterationIntervalIsAtLeastTwoHours) {
  // "the time interval between two iterations is at least 2 hours".
  for (const auto& row : table1()) {
    EXPECT_GE(row.min_interval_seconds, 2.0 * 3600.0);
  }
}

TEST(Capacity, IntervalScalesInverselyWithBandwidth) {
  CostParameters p;
  const double t1 = min_iteration_interval(2.5, p);
  p.bisection_bandwidth *= 2.0;
  const double t2 = min_iteration_interval(2.5, p);
  EXPECT_DOUBLE_EQ(t1, 2.0 * t2);
}

TEST(Capacity, RejectsNonPositiveInputs) {
  CostParameters p;
  p.bisection_bandwidth = 0.0;
  EXPECT_THROW((void)min_iteration_interval(2.5, p), std::invalid_argument);
  EXPECT_THROW((void)min_node_bandwidth(0.0, 2.5, 100.0, CostParameters{}),
               std::invalid_argument);
  EXPECT_THROW((void)min_node_bandwidth(10.0, 2.5, 0.0, CostParameters{}),
               std::invalid_argument);
}

TEST(Capacity, NodeBandwidthFallsWithMoreRankers) {
  CostParameters p;
  const double b1 = min_node_bandwidth(1000.0, 2.5, 7500.0, p);
  const double b2 = min_node_bandwidth(2000.0, 2.5, 7500.0, p);
  EXPECT_DOUBLE_EQ(b1, 2.0 * b2);
}

TEST(Crossover, IndirectWinsBytesOnlyAboveSomeN) {
  // D_it < D_dt  <=>  h·l·W < l·W + h·r·N²: for web-scale W the crossover N
  // is large; below it direct ships fewer bytes ("direct transmission seems
  // better only for small N").
  CostParameters p;
  const auto n = byte_crossover_n(p);
  ASSERT_GT(n, 0u);
  const double h_below = pastry_expected_hops(static_cast<double>(n) / 2.0);
  EXPECT_LT(indirect_cost(static_cast<double>(n), paper_pastry_hops(n), p).bytes,
            direct_cost(static_cast<double>(n), paper_pastry_hops(n), p).bytes);
  EXPECT_GE(direct_cost(static_cast<double>(n) / 2.0, h_below, p).bytes, 0.0);  // sanity
}

TEST(Crossover, SmallWebMakesDirectCheapEverywhere) {
  CostParameters p;
  p.total_pages = 1e6;  // tiny web: lookup term dominates quickly
  const auto n = byte_crossover_n(p);
  ASSERT_GT(n, 0u);
  EXPECT_LT(n, 1u << 20);
}

TEST(Crossover, MessagesAlwaysFavorIndirectForModestN) {
  // S_it = gN vs S_dt = (h+1)N²: indirect wins once N > g/(h+1).
  CostParameters p;
  for (const double n : {64.0, 256.0, 1024.0}) {
    const double h = pastry_expected_hops(n);
    EXPECT_LT(indirect_cost(n, h, p).messages, direct_cost(n, h, p).messages);
  }
}

}  // namespace
}  // namespace p2prank::cost
