#include "engine/page_group.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "test_support.hpp"
#include "util/thread_pool.hpp"

namespace p2prank::engine {
namespace {

constexpr double kAlpha = 0.85;
constexpr double kBeta = 1.0 - kAlpha;

util::ThreadPool& pool() {
  static util::ThreadPool p(2);
  return p;
}

TEST(PageGroup, SolvesLocalSystemWithoutAfferentRank) {
  // Whole two-cycle as one group: fixed point is 1 everywhere.
  const auto g = test::two_cycle();
  PageGroup group(g, {0, 1}, kAlpha);
  group.finalize_efferents();
  group.solve_to_convergence(1e-14, 2000, pool());
  EXPECT_NEAR(group.ranks()[0], 1.0, 1e-10);
  EXPECT_NEAR(group.ranks()[1], 1.0, 1e-10);
}

TEST(PageGroup, RefreshXRaisesFixedPoint) {
  const auto g = test::two_cycle();
  PageGroup group(g, {0, 1}, kAlpha);
  group.finalize_efferents();
  group.solve_to_convergence(1e-14, 2000, pool());
  YSlice slice;
  slice.entries = {{0u, 0.5}};
  slice.record_count = 1;
  group.refresh_x(/*source_group=*/7, std::move(slice));
  group.solve_to_convergence(1e-14, 2000, pool());
  // Closed form: r0 = beta + 0.5 + alpha*r1; r1 = beta + alpha*r0.
  const double r0 = (kBeta + 0.5 + kAlpha * kBeta) / (1 - kAlpha * kAlpha);
  EXPECT_NEAR(group.ranks()[0], r0, 1e-10);
}

TEST(PageGroup, RefreshXReplacesPriorSliceFromSameSource) {
  const auto g = test::two_cycle();
  PageGroup group(g, {0, 1}, kAlpha);
  group.finalize_efferents();
  YSlice first;
  first.entries = {{0u, 0.9}};
  group.refresh_x(3, std::move(first));
  YSlice second;
  second.entries = {{0u, 0.2}};
  group.refresh_x(3, std::move(second));  // replaces, does not accumulate
  group.solve_to_convergence(1e-14, 2000, pool());
  const double r0 = (kBeta + 0.2 + kAlpha * kBeta) / (1 - kAlpha * kAlpha);
  EXPECT_NEAR(group.ranks()[0], r0, 1e-10);
}

TEST(PageGroup, SlicesFromDifferentSourcesAccumulate) {
  const auto g = test::two_cycle();
  PageGroup group(g, {0, 1}, kAlpha);
  group.finalize_efferents();
  YSlice a;
  a.entries = {{0u, 0.2}};
  YSlice b;
  b.entries = {{0u, 0.3}};
  group.refresh_x(1, std::move(a));
  group.refresh_x(2, std::move(b));
  group.solve_to_convergence(1e-14, 2000, pool());
  const double r0 = (kBeta + 0.5 + kAlpha * kBeta) / (1 - kAlpha * kAlpha);
  EXPECT_NEAR(group.ranks()[0], r0, 1e-10);
}

TEST(PageGroup, ComputeYUsesAlphaOverGlobalDegree) {
  // Chain 0->1->2->3 split {0,1} | {2,3}. Group A's efferent edge is 1->2
  // with weight alpha/d(1) = alpha.
  const auto g = test::chain(4);
  PageGroup a(g, {0, 1}, kAlpha);
  a.add_efferent_edge(/*dest_group=*/1, /*dest_local=*/0, /*src_local=*/1, kAlpha);
  a.finalize_efferents();
  a.solve_to_convergence(1e-14, 2000, pool());
  // R(1) = beta + alpha*beta.
  const auto y = a.compute_y(1);
  ASSERT_EQ(y.entries.size(), 1u);
  EXPECT_EQ(y.entries[0].first, 0u);
  EXPECT_NEAR(y.entries[0].second, kAlpha * (kBeta + kAlpha * kBeta), 1e-10);
  EXPECT_EQ(y.record_count, 1u);
}

TEST(PageGroup, ComputeYAggregatesEdgesToSameTarget) {
  // Two pages in group A both link to the same page in group B.
  const auto g = test::star(2);  // leaves 1,2 -> hub 0
  PageGroup a(g, {1, 2}, kAlpha);
  a.add_efferent_edge(0, 0, 0, kAlpha);  // leaf1 -> hub
  a.add_efferent_edge(0, 0, 1, kAlpha);  // leaf2 -> hub
  a.finalize_efferents();
  a.solve_to_convergence(1e-14, 2000, pool());
  const auto y = a.compute_y(0);
  ASSERT_EQ(y.entries.size(), 1u);            // aggregated
  EXPECT_EQ(y.record_count, 2u);              // but 2 wire records
  EXPECT_NEAR(y.entries[0].second, 2.0 * kAlpha * kBeta, 1e-10);
}

TEST(PageGroup, ComputeYForUnknownGroupThrows) {
  const auto g = test::two_cycle();
  PageGroup group(g, {0, 1}, kAlpha);
  group.finalize_efferents();
  EXPECT_THROW((void)group.compute_y(9), std::invalid_argument);
}

TEST(PageGroup, EfferentDestinationsListsEveryTargetGroupOnce) {
  const auto g = test::chain(6);
  PageGroup group(g, {0, 1, 2}, kAlpha);
  group.add_efferent_edge(1, 0, 2, kAlpha);
  group.add_efferent_edge(2, 0, 2, kAlpha);
  group.add_efferent_edge(1, 1, 0, kAlpha);
  group.finalize_efferents();
  const auto dests = group.efferent_destinations();
  ASSERT_EQ(dests.size(), 2u);
  EXPECT_EQ(dests[0], 1u);
  EXPECT_EQ(dests[1], 2u);
}

TEST(PageGroup, SweepOnceIsOneJacobiStep) {
  const auto g = test::two_cycle();
  PageGroup group(g, {0, 1}, kAlpha);
  group.finalize_efferents();
  group.sweep_once(pool());
  // From R0 = 0: one sweep gives exactly beta everywhere.
  EXPECT_DOUBLE_EQ(group.ranks()[0], kBeta);
  EXPECT_DOUBLE_EQ(group.ranks()[1], kBeta);
  group.sweep_once(pool());
  EXPECT_DOUBLE_EQ(group.ranks()[0], kBeta + kAlpha * kBeta);
}

TEST(PageGroup, OuterStepCounter) {
  const auto g = test::two_cycle();
  PageGroup group(g, {0, 1}, kAlpha);
  group.finalize_efferents();
  EXPECT_EQ(group.outer_steps(), 0u);
  group.count_outer_step();
  group.count_outer_step();
  EXPECT_EQ(group.outer_steps(), 2u);
}

TEST(PageGroup, EmptyGroupIsInert) {
  const auto g = test::two_cycle();
  PageGroup group(g, {}, kAlpha);
  group.finalize_efferents();
  EXPECT_EQ(group.size(), 0u);
  group.sweep_once(pool());
  group.solve_to_convergence(1e-10, 10, pool());
  EXPECT_TRUE(group.ranks().empty());
}

}  // namespace
}  // namespace p2prank::engine
