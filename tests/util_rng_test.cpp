#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace p2prank::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Mix64, IsAPermutationOnSamples) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 10000; ++i) outputs.insert(mix64(i));
  EXPECT_EQ(outputs.size(), 10000u);  // injective on this sample
}

TEST(Rng, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(12);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(3.0, 9.0);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 9.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, BelowStaysBelow) {
  Rng rng(14);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(15);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BetweenInclusiveBounds) {
  Rng rng(16);
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.between(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    hit_lo |= v == 5;
    hit_hi |= v == 9;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceFrequencyMatchesProbability) {
  Rng rng(18);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(19);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / kN, 4.0, 0.1);
}

TEST(Rng, ExponentialOfZeroMeanIsZero) {
  Rng rng(20);
  EXPECT_EQ(rng.exponential(0.0), 0.0);
  EXPECT_EQ(rng.exponential(-1.0), 0.0);
}

TEST(Rng, ExponentialIsNonNegative) {
  Rng rng(21);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.exponential(2.0), 0.0);
}

TEST(Rng, PowerLawStaysInRange) {
  Rng rng(22);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.power_law(2.0, 100);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 100u);
  }
}

TEST(Rng, PowerLawIsHeavyTailedTowardOne) {
  Rng rng(23);
  int ones = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) ones += rng.power_law(2.5, 1000) == 1 ? 1 : 0;
  // For exponent 2.5 the mass at 1 dominates.
  EXPECT_GT(ones, kN / 2);
}

TEST(Rng, ForkDivergesFromParent) {
  Rng parent(31);
  Rng child = parent.fork();
  bool all_equal = true;
  for (int i = 0; i < 32; ++i) all_equal &= parent.next() == child.next();
  EXPECT_FALSE(all_equal);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace p2prank::util
