// Per-group diagnostics of the distributed engine.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "engine/distributed.hpp"
#include "engine/reference.hpp"
#include "graph/synthetic_web.hpp"
#include "partition/partitioner.hpp"
#include "util/thread_pool.hpp"

namespace p2prank::engine {
namespace {

constexpr double kAlpha = 0.85;

util::ThreadPool& pool() {
  static util::ThreadPool p(2);
  return p;
}

class MetricsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = std::make_unique<graph::WebGraph>(
        graph::generate_synthetic_web(graph::google2002_config(3000, 41)));
    assignment_ = partition::make_hash_url_partitioner()->partition(*graph_, 8);
    reference_ = open_system_reference(*graph_, kAlpha, pool());
  }

  std::unique_ptr<graph::WebGraph> graph_;
  std::vector<std::uint32_t> assignment_;
  std::vector<double> reference_;
};

TEST_F(MetricsFixture, PerGroupStepsSumToTotal) {
  EngineOptions opts;
  opts.t1 = 0.0;
  opts.t2 = 4.0;
  opts.seed = 2;
  DistributedRanking sim(*graph_, assignment_, 8, opts, pool());
  sim.set_reference(reference_);
  (void)sim.run(30.0, 30.0);
  const auto steps = sim.outer_steps_per_group();
  ASSERT_EQ(steps.size(), 8u);
  const auto sum = std::accumulate(steps.begin(), steps.end(), std::uint64_t{0});
  EXPECT_EQ(sum, sim.total_outer_steps());
  // With random waits, groups step different numbers of times.
  EXPECT_NE(*std::min_element(steps.begin(), steps.end()),
            *std::max_element(steps.begin(), steps.end()));
}

TEST_F(MetricsFixture, PerGroupRecordsSumToTotal) {
  EngineOptions opts;
  opts.t1 = opts.t2 = 1.0;
  opts.seed = 2;
  DistributedRanking sim(*graph_, assignment_, 8, opts, pool());
  sim.set_reference(reference_);
  (void)sim.run(20.0, 20.0);
  const auto per_group = sim.records_sent_per_group();
  std::uint64_t sum = 0;
  for (const auto r : per_group) sum += r;
  EXPECT_EQ(sum, sim.records_sent());
  // Every group has cut edges at K=8 with url hashing, so all send.
  for (const auto r : per_group) EXPECT_GT(r, 0u);
}

TEST_F(MetricsFixture, PausedGroupShowsZeroSteps) {
  EngineOptions opts;
  opts.t1 = opts.t2 = 1.0;
  opts.seed = 3;
  DistributedRanking sim(*graph_, assignment_, 8, opts, pool());
  sim.set_reference(reference_);
  sim.pause_group(5);
  (void)sim.run(20.0, 20.0);
  const auto steps = sim.outer_steps_per_group();
  EXPECT_EQ(steps[5], 0u);
  EXPECT_EQ(sim.records_sent_per_group()[5], 0u);
}

TEST_F(MetricsFixture, Dpr1WithLossIsSeedDeterministic) {
  auto run_once = [&] {
    EngineOptions opts;
    opts.algorithm = Algorithm::kDPR1;
    opts.delivery_probability = 0.6;
    opts.t1 = 0.0;
    opts.t2 = 5.0;
    opts.seed = 77;
    DistributedRanking sim(*graph_, assignment_, 8, opts, pool());
    sim.set_reference(reference_);
    (void)sim.run(25.0, 25.0);
    return std::tuple(sim.messages_sent(), sim.messages_lost(),
                      sim.records_sent(), sim.relative_error_now());
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace p2prank::engine
