#include "util/hash.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace p2prank::util {
namespace {

TEST(Fnv1a, KnownVectors) {
  // Standard FNV-1a 64 test vectors.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1a, IsConstexpr) {
  constexpr auto h = fnv1a("compile-time");
  static_assert(h != 0);
  SUCCEED();
}

TEST(StableHash, StableAcrossCalls) {
  EXPECT_EQ(stable_hash("www.example.edu"), stable_hash("www.example.edu"));
}

TEST(StableHash, SensitiveToEveryCharacter) {
  EXPECT_NE(stable_hash("site1.edu"), stable_hash("site2.edu"));
  EXPECT_NE(stable_hash("abc"), stable_hash("abd"));
  EXPECT_NE(stable_hash("abc"), stable_hash("abcd"));
}

TEST(StableHash, LowBitsAreWellMixed) {
  // Bucket 10k sequential keys into 16 buckets; each bucket should get a
  // roughly fair share (this is what partitioning relies on).
  int buckets[16] = {};
  for (int i = 0; i < 10000; ++i) {
    ++buckets[stable_hash("page" + std::to_string(i)) % 16];
  }
  for (const int count : buckets) {
    EXPECT_GT(count, 400);
    EXPECT_LT(count, 900);
  }
}

TEST(HashCombine, OrderDependent) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(HashCombine, NoTrivialCollisionsOnSmallInputs) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t a = 0; a < 50; ++a) {
    for (std::uint64_t b = 0; b < 50; ++b) seen.insert(hash_combine(a, b));
  }
  EXPECT_EQ(seen.size(), 2500u);
}

}  // namespace
}  // namespace p2prank::util
