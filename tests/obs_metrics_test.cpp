// Observability layer (src/obs/, DESIGN.md §11): MetricsRegistry and Tracer
// units, the determinism contract (bitwise-identical snapshots across pool
// sizes and across repeated seeded chaos runs), Chrome trace schema, and
// the retransmit cost-accounting regression — a dead ack channel forces
// retransmissions but must leave the §4.5 fresh-record counters untouched.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/runner.hpp"
#include "check/scenario.hpp"
#include "engine/distributed.hpp"
#include "engine/reference.hpp"
#include "graph/synthetic_web.hpp"
#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace p2prank::obs {
namespace {

// --- MetricsRegistry units ----------------------------------------------

TEST(MetricsRegistry, CountersAndGaugesGetOrCreate) {
  MetricsRegistry m;
  EXPECT_EQ(m.counter_value("a.b"), 0u);
  m.counter("a.b") += 3;
  m.counter("a.b") += 2;
  EXPECT_EQ(m.counter_value("a.b"), 5u);
  m.counter("family", 7) = 9;
  EXPECT_EQ(m.counter_value("family.7"), 9u);
  m.gauge("g") = 1.5;
  EXPECT_DOUBLE_EQ(m.gauge_value("g"), 1.5);
  EXPECT_DOUBLE_EQ(m.gauge_value("missing"), 0.0);
}

TEST(MetricsRegistry, ReferencesAreStableAcrossInsertions) {
  MetricsRegistry m;
  std::uint64_t* cell = &m.counter("hot.path");
  for (int i = 0; i < 100; ++i) m.counter("filler", static_cast<std::uint32_t>(i));
  *cell = 42;  // must still point at the live node (std::map stability)
  EXPECT_EQ(m.counter_value("hot.path"), 42u);
}

TEST(MetricsRegistry, SnapshotKeysAreSorted) {
  MetricsRegistry m;
  m.counter("zeta") = 1;
  m.counter("alpha") = 2;
  m.counter("mid") = 3;
  const std::string snap = m.snapshot();
  EXPECT_LT(snap.find("\"alpha\""), snap.find("\"mid\""));
  EXPECT_LT(snap.find("\"mid\""), snap.find("\"zeta\""));
  EXPECT_NE(snap.find(kMetricsSchema), std::string::npos);
}

TEST(MetricsRegistry, UnstableCountersExcludedByDefault) {
  MetricsRegistry m;
  m.counter("stable") = 1;
  m.counter_unstable("racy") = 2;
  const std::string def = m.snapshot();
  EXPECT_EQ(def.find("racy"), std::string::npos);
  const std::string full = m.snapshot(/*include_unstable=*/true);
  EXPECT_NE(full.find("racy"), std::string::npos);
  EXPECT_NE(full.find("unstable_counters"), std::string::npos);
}

TEST(MetricsRegistry, LinearHistogramBoundsMismatchThrows) {
  MetricsRegistry m;
  m.linear_histogram("h", 0.0, 1.0, 10).add(0.5);
  EXPECT_NO_THROW(m.linear_histogram("h", 0.0, 1.0, 10));
  EXPECT_THROW(m.linear_histogram("h", 0.0, 2.0, 10), std::invalid_argument);
  EXPECT_THROW(m.linear_histogram("h", 0.0, 1.0, 20), std::invalid_argument);
}

TEST(MetricsRegistry, HistogramsAppearInSnapshot) {
  MetricsRegistry m;
  m.log2_histogram("sizes").add(5);  // bucket [4, 7]
  m.linear_histogram("resid", -2.0, 2.0, 4).add(std::numeric_limits<double>::quiet_NaN());
  m.linear_histogram("resid", -2.0, 2.0, 4).add(0.5);
  const std::string snap = m.snapshot();
  EXPECT_NE(snap.find("\"kind\": \"log2\""), std::string::npos);
  EXPECT_NE(snap.find("[4, 7, 1]"), std::string::npos);
  EXPECT_NE(snap.find("\"kind\": \"linear\""), std::string::npos);
  EXPECT_NE(snap.find("\"nan\": 1"), std::string::npos);
}

// --- Tracer units -------------------------------------------------------

TEST(Tracer, EventsAndDropCap) {
  Tracer t(/*max_events=*/2);
  t.instant("a", 1.0);
  t.complete("b", 1.0, 0.5, 3, "detail", 7.0);
  t.instant("c", 2.0);  // over cap: dropped, not resized
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.dropped(), 1u);
}

TEST(Tracer, ChromeJsonSchema) {
  Tracer t;
  t.instant("engine.step", 1.25, 2, "", 0.5);
  t.complete("engine.msg_flight", 1.25, 0.75, 4, "x\"y\\z", 12.0);
  std::ostringstream out;
  t.write_chrome_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find(kTraceSchema), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);   // instant
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);   // complete
  EXPECT_NE(json.find("\"ts\": 1250000"), std::string::npos);  // µs scale
  EXPECT_NE(json.find("\"dur\": 750000"), std::string::npos);
  EXPECT_NE(json.find("x\\\"y\\\\z"), std::string::npos);  // detail escaped
  EXPECT_NE(json.find("\"dropped\": 0"), std::string::npos);
}

// --- Determinism contract ----------------------------------------------

/// One instrumented engine run on its own pool; returns the stable
/// snapshot (pool stats exported as this run's interval).
std::string engine_snapshot(std::size_t pool_threads, std::uint64_t trace_cap,
                            std::uint64_t* trace_events_out = nullptr) {
  const auto g = graph::generate_synthetic_web(graph::google2002_config(3000, 11));
  std::vector<std::uint32_t> assignment(g.num_pages());
  for (std::uint32_t p = 0; p < g.num_pages(); ++p) assignment[p] = p % 6;
  util::ThreadPool pool(pool_threads);
  MetricsRegistry metrics;
  Tracer tracer(trace_cap);
  engine::EngineOptions eo;
  eo.algorithm = engine::Algorithm::kDPR2;
  eo.delivery_probability = 0.9;
  eo.reliability.retransmit = true;
  eo.seed = 77;
  eo.metrics = &metrics;
  eo.tracer = &tracer;
  engine::DistributedRanking sim(g, assignment, 6, eo, pool);
  sim.set_reference(engine::open_system_reference(g, eo.alpha, pool));
  (void)sim.run(30.0);
  export_pool_metrics(pool, metrics);
  if (trace_events_out != nullptr) *trace_events_out = tracer.size();
  return metrics.snapshot();
}

TEST(ObsDeterminism, SnapshotBitwiseIdenticalAcrossPoolSizes) {
  std::uint64_t events1 = 0;
  std::uint64_t events2 = 0;
  std::uint64_t events8 = 0;
  const std::string snap1 = engine_snapshot(1, 1u << 20, &events1);
  const std::string snap2 = engine_snapshot(2, 1u << 20, &events2);
  const std::string snap8 = engine_snapshot(8, 1u << 20, &events8);
  EXPECT_EQ(snap1, snap2);
  EXPECT_EQ(snap1, snap8);
  EXPECT_EQ(events1, events2);
  EXPECT_EQ(events1, events8);
  // Sanity: the run actually produced instrumentation.
  EXPECT_NE(snap1.find(names::kEngineOuterSteps), std::string::npos);
  EXPECT_NE(snap1.find(names::kEngineStepResidualLog10), std::string::npos);
  EXPECT_NE(snap1.find(names::kPoolIndices), std::string::npos);
}

TEST(ObsDeterminism, RepeatedSeededChaosRunsSnapshotIdentically) {
  util::ThreadPool pool(4);
  const check::Scenario scenario = check::Scenario::from_seed(8);  // churn + rexmit
  const auto run_once = [&] {
    MetricsRegistry metrics;
    Tracer tracer;
    check::RunnerOptions ropts;
    ropts.metrics = &metrics;
    ropts.tracer = &tracer;
    check::ScenarioRunner runner(pool, ropts);
    const check::ScenarioResult result = runner.run(scenario);
    EXPECT_TRUE(result.ok()) << result.summary();
    // No pool export: the pool spans both runs, so its cumulative tallies
    // would differ. The engine/check counters are the comparison subject.
    return std::pair{metrics.snapshot(), tracer.size()};
  };
  const auto [snap_a, events_a] = run_once();
  const auto [snap_b, events_b] = run_once();
  EXPECT_EQ(snap_a, snap_b);
  EXPECT_EQ(events_a, events_b);
  EXPECT_NE(snap_a.find(names::kCheckSamples), std::string::npos);
  EXPECT_NE(snap_a.find(names::kCheckOpsApplied), std::string::npos);
}

TEST(ObsDeterminism, AttachingSinksDoesNotChangeTheRun) {
  // Pure observation: the instrumented engine must produce the same
  // counters/ranks as a bare one (sinks never touch RNG or event order).
  const auto g = graph::generate_synthetic_web(graph::google2002_config(1200, 5));
  std::vector<std::uint32_t> assignment(g.num_pages());
  for (std::uint32_t p = 0; p < g.num_pages(); ++p) assignment[p] = p % 4;
  util::ThreadPool pool(2);
  const auto run = [&](MetricsRegistry* m, Tracer* t) {
    engine::EngineOptions eo;
    eo.delivery_probability = 0.8;
    eo.reliability.retransmit = true;
    eo.seed = 123;
    eo.metrics = m;
    eo.tracer = t;
    engine::DistributedRanking sim(g, assignment, 4, eo, pool);
    sim.set_reference(engine::open_system_reference(g, eo.alpha, pool));
    (void)sim.run(25.0);
    return std::tuple{sim.messages_sent(), sim.records_sent(),
                      sim.retransmissions(), sim.global_ranks()};
  };
  MetricsRegistry metrics;
  Tracer tracer;
  const auto bare = run(nullptr, nullptr);
  const auto instrumented = run(&metrics, &tracer);
  EXPECT_EQ(bare, instrumented);
  // And the registry mirrors the engine's own counters exactly.
  EXPECT_EQ(metrics.counter_value(names::kEngineMessagesSent),
            std::get<0>(instrumented));
  EXPECT_EQ(metrics.counter_value(names::kEngineRecordsSent),
            std::get<1>(instrumented));
  EXPECT_EQ(metrics.counter_value(names::kTransportRetransmissions),
            std::get<2>(instrumented));
}

// --- Retransmit cost-accounting regression ------------------------------

struct AccountingProbe {
  std::uint64_t messages_sent = 0;
  std::uint64_t records_sent = 0;
  std::uint64_t record_hops = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t retransmit_records = 0;
  std::uint64_t duplicates_rejected = 0;
  std::vector<std::uint64_t> records_per_group;
};

/// Fixed-duration reliable run with a perfect data channel and the given
/// ack channel. Data loss and ack loss draw from separate seeded streams,
/// so the fresh slice flow is identical whatever the ack channel does —
/// every retransmission a dead ack channel forces is a pure duplicate.
AccountingProbe run_with_ack_probability(double ack_p, MetricsRegistry* metrics) {
  const auto g = graph::generate_synthetic_web(graph::google2002_config(1000, 9));
  std::vector<std::uint32_t> assignment(g.num_pages());
  for (std::uint32_t p = 0; p < g.num_pages(); ++p) assignment[p] = p % 4;
  util::ThreadPool pool(2);
  engine::EngineOptions eo;
  eo.delivery_probability = 1.0;
  eo.reliability.retransmit = true;
  eo.reliability.ack_delivery_probability = ack_p;
  eo.seed = 31;
  eo.metrics = metrics;
  engine::DistributedRanking sim(g, assignment, 4, eo, pool);
  sim.set_reference(engine::open_system_reference(g, eo.alpha, pool));
  (void)sim.run(40.0);
  AccountingProbe probe;
  probe.messages_sent = sim.messages_sent();
  probe.records_sent = sim.records_sent();
  probe.record_hops = sim.record_hops();
  probe.retransmissions = sim.retransmissions();
  probe.retransmit_records = sim.retransmit_records();
  probe.duplicates_rejected = sim.duplicates_rejected();
  const auto per_group = sim.records_sent_per_group();
  probe.records_per_group.assign(per_group.begin(), per_group.end());
  return probe;
}

TEST(RetransmitAccounting, DeadAckChannelDoesNotInflateFreshRecordCounters) {
  MetricsRegistry metrics;
  const AccountingProbe clean = run_with_ack_probability(1.0, nullptr);
  const AccountingProbe lossy = run_with_ack_probability(0.0, &metrics);

  // The forcing worked: no retransmissions with perfect acks, plenty with
  // none — and with a perfect data channel every retransmit is a duplicate.
  EXPECT_EQ(clean.retransmissions, 0u);
  EXPECT_GT(lossy.retransmissions, 0u);
  EXPECT_GT(lossy.retransmit_records, 0u);
  EXPECT_EQ(lossy.duplicates_rejected, lossy.retransmissions);

  // The regression (§4.5): W prices logical records, not channel attempts.
  // Retransmissions add messages but must not move records_sent/record_hops
  // — before the fix these were inflated by every re-shipped payload.
  EXPECT_EQ(lossy.records_sent, clean.records_sent);
  EXPECT_EQ(lossy.record_hops, clean.record_hops);
  EXPECT_EQ(lossy.records_per_group, clean.records_per_group);
  EXPECT_EQ(lossy.messages_sent, clean.messages_sent + lossy.retransmissions);

  // Metrics mirror the split: fresh records under engine.*, re-shipped
  // payloads under transport.retransmit_*.
  EXPECT_EQ(metrics.counter_value(names::kEngineRecordsSent), lossy.records_sent);
  EXPECT_EQ(metrics.counter_value(names::kTransportRetransmitRecords),
            lossy.retransmit_records);
  EXPECT_GT(metrics.gauge_value(names::kTransportRetransmitBytes), 0.0);
  // Retransmit bytes never leak into the fresh data-byte gauge: fresh bytes
  // match the clean run's wire volume exactly.
  MetricsRegistry clean_metrics;
  (void)run_with_ack_probability(1.0, &clean_metrics);
  EXPECT_EQ(metrics.gauge_value(names::kEngineDataBytes),
            clean_metrics.gauge_value(names::kEngineDataBytes));
}

}  // namespace
}  // namespace p2prank::obs
