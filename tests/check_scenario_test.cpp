// Tier-2 tests for the chaos-scenario harness (src/check/): seed-to-schedule
// determinism, trace round-trips, the smoke corpus staying invariant-clean,
// the minimizer contract, and the checker self-test — a deliberately broken
// engine (one group never refreshes X) must be flagged and its schedule must
// minimize to a handful of ops.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "check/invariants.hpp"
#include "check/minimize.hpp"
#include "check/runner.hpp"
#include "check/scenario.hpp"
#include "engine/distributed.hpp"
#include "engine/reference.hpp"
#include "partition/partitioner.hpp"
#include "test_support.hpp"
#include "util/thread_pool.hpp"

#ifndef P2PRANK_CORPUS_FILE
#error "P2PRANK_CORPUS_FILE must point at tests/corpus/scenario_seeds.txt"
#endif

namespace p2prank::check {
namespace {

util::ThreadPool& pool() {
  static util::ThreadPool p(2);
  return p;
}

std::vector<std::uint64_t> corpus_seeds() {
  std::ifstream in(P2PRANK_CORPUS_FILE);
  EXPECT_TRUE(in.is_open()) << "missing corpus file " << P2PRANK_CORPUS_FILE;
  std::vector<std::uint64_t> seeds;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    seeds.push_back(std::stoull(line));  // stoull stops at inline comments
  }
  return seeds;
}

TEST(Scenario, FromSeedIsDeterministic) {
  for (const std::uint64_t seed : {1ULL, 42ULL, 0xdeadbeefULL}) {
    const Scenario a = Scenario::from_seed(seed);
    const Scenario b = Scenario::from_seed(seed);
    EXPECT_EQ(a.to_text(), b.to_text()) << "seed " << seed;
  }
  EXPECT_NE(Scenario::from_seed(1).to_text(), Scenario::from_seed(2).to_text());
}

TEST(Scenario, ScheduleOpsAreTimeOrderedAndInWindow) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const Scenario s = Scenario::from_seed(seed);
    double prev = 0.0;
    for (const ScheduleOp& op : s.ops) {
      EXPECT_GE(op.time, prev) << "seed " << seed;
      EXPECT_LE(op.time, s.active_time) << "seed " << seed;
      prev = op.time;
    }
  }
}

// Exhaustiveness matrix, leg three. tools/p2plint statically checks legs
// one and two (every op dispatched, every op emittable by from_seed); this
// closes the loop dynamically: every op kind must appear in the expanded
// schedule of at least one corpus seed, so the tier-2 gate *runs* each op
// rather than merely compiling its handler.
TEST(Scenario, CorpusOpCoverage) {
  constexpr OpKind kAll[] = {
      OpKind::kCrash,          OpKind::kPause,
      OpKind::kResume,         OpKind::kSetLoss,
      OpKind::kSaveCheckpoint, OpKind::kRestoreCheckpoint,
      OpKind::kGraphUpdate,    OpKind::kLeave,
      OpKind::kJoin,           OpKind::kSetAckLoss,
      OpKind::kSetJitter,      OpKind::kPartition,
      OpKind::kHeal,           OpKind::kCorrupt};
  std::set<OpKind> covered;
  for (const std::uint64_t seed : corpus_seeds()) {
    for (const ScheduleOp& op : Scenario::from_seed(seed).ops) {
      covered.insert(op.kind);
    }
  }
  for (const OpKind kind : kAll) {
    EXPECT_TRUE(covered.count(kind) > 0)
        << "no corpus seed emits " << op_kind_name(kind)
        << ": add a seed to tests/corpus/scenario_seeds.txt";
  }
}

TEST(Scenario, TraceRoundTripsThroughText) {
  for (const std::uint64_t seed : {3ULL, 19ULL, 28ULL, 130ULL}) {
    const Scenario s = Scenario::from_seed(seed);
    const Scenario back = Scenario::parse_text(s.to_text());
    EXPECT_EQ(s.to_text(), back.to_text()) << "seed " << seed;
  }
}

// The churn / reorder / ack-loss extension: new op kinds and the reliable /
// latency_jitter header keys survive the text round-trip, including the
// two-group payload of leave/join.
TEST(Scenario, ChurnAndReorderOpsRoundTrip) {
  Scenario s = Scenario::from_seed(13);
  s.reliable = true;
  s.latency_jitter = 0.75;
  s.ops.clear();
  s.ops.push_back({1.0, OpKind::kLeave, 2, 0, 0.0, 0});
  s.ops.push_back({2.0, OpKind::kJoin, 2, 1, 0.0, 0});
  s.ops.push_back({3.0, OpKind::kSetAckLoss, 0, 0, 0.4, 0});
  s.ops.push_back({4.0, OpKind::kSetAckLoss, 0, 0, -1.0, 0});
  s.ops.push_back({5.0, OpKind::kSetJitter, 0, 0, 1.25, 0});
  const Scenario back = Scenario::parse_text(s.to_text());
  EXPECT_EQ(back.to_text(), s.to_text());
  EXPECT_TRUE(back.reliable);
  EXPECT_DOUBLE_EQ(back.latency_jitter, 0.75);
  ASSERT_EQ(back.ops.size(), 5u);
  EXPECT_EQ(back.ops[0].kind, OpKind::kLeave);
  EXPECT_EQ(back.ops[0].group, 2u);
  EXPECT_EQ(back.ops[0].group2, 0u);
  EXPECT_EQ(back.ops[1].kind, OpKind::kJoin);
  EXPECT_EQ(back.ops[1].group2, 1u);
  EXPECT_DOUBLE_EQ(back.ops[3].value, -1.0);
  EXPECT_EQ(back.ops[4].kind, OpKind::kSetJitter);
}

// Traces written before the reliability extension lack the latency_jitter /
// reliable header keys — they must still parse, defaulting to the old
// fire-and-forget channel.
TEST(Scenario, PreReliabilityTracesParseWithDefaults) {
  Scenario s = Scenario::from_seed(13);
  s.reliable = false;
  s.latency_jitter = 0.0;
  std::string text = s.to_text();
  std::string pruned;
  std::istringstream lines(text);
  for (std::string line; std::getline(lines, line);) {
    if (line.rfind("latency_jitter ", 0) == 0) continue;
    if (line.rfind("reliable ", 0) == 0) continue;
    pruned += line + '\n';
  }
  const Scenario back = Scenario::parse_text(pruned);
  EXPECT_FALSE(back.reliable);
  EXPECT_DOUBLE_EQ(back.latency_jitter, 0.0);
  EXPECT_EQ(back.to_text(), text);
}

// The worklist header key round-trips, and traces written before the
// worklist extension parse with the flag defaulting off.
TEST(Scenario, WorklistKeyRoundTripsAndDefaultsOff) {
  Scenario s = Scenario::from_seed(13);
  s.worklist = true;
  const Scenario back = Scenario::parse_text(s.to_text());
  EXPECT_TRUE(back.worklist);
  EXPECT_EQ(back.to_text(), s.to_text());

  std::string pruned;
  std::istringstream lines(s.to_text());
  for (std::string line; std::getline(lines, line);) {
    if (line.rfind("worklist ", 0) == 0) continue;
    pruned += line + '\n';
  }
  const Scenario old = Scenario::parse_text(pruned);
  EXPECT_FALSE(old.worklist);
}

// from_seed only pairs jitter with the reliable layer: jitter without epochs
// would make stale reordered slices clobber newer X entries, which is the
// hazard the regression test demonstrates — the fuzzer must not generate it
// as a "healthy" scenario.
TEST(Scenario, FromSeedNeverGeneratesJitterWithoutReliable) {
  for (std::uint64_t seed = 1; seed <= 400; ++seed) {
    const Scenario s = Scenario::from_seed(seed);
    if (s.latency_jitter > 0.0) {
      EXPECT_TRUE(s.reliable) << "seed " << seed;
    }
    for (const ScheduleOp& op : s.ops) {
      if (op.kind == OpKind::kSetJitter && op.value > 0.0) {
        EXPECT_TRUE(s.reliable) << "seed " << seed;
      }
      if (op.kind == OpKind::kLeave || op.kind == OpKind::kJoin) {
        EXPECT_LT(op.group, s.k) << "seed " << seed;
        EXPECT_LT(op.group2, s.k) << "seed " << seed;
        EXPECT_NE(op.group, op.group2) << "seed " << seed;
      }
    }
  }
}

TEST(Scenario, ParseTolerlatesCommentsAndRejectsGarbage) {
  const Scenario s = Scenario::from_seed(7);
  // Written traces carry "# violation: ..." comment lines before the body.
  const std::string annotated =
      "# minimized reproducing trace\n# violation: monotone @t=3 — detail\n" +
      s.to_text();
  EXPECT_EQ(Scenario::parse_text(annotated).to_text(), s.to_text());
  EXPECT_THROW(Scenario::parse_text("pages banana\n"), std::runtime_error);
  EXPECT_THROW(Scenario::parse_text(s.to_text() + "op 1.0 frobnicate\n"),
               std::runtime_error);
}

// The acceptance gate: every corpus scenario — crashes, pauses, loss bursts,
// checkpoint round-trips, graph updates — runs with zero invariant
// violations and a converged loss-free tail.
TEST(SmokeCorpus, AllScenariosInvariantClean) {
  const auto seeds = corpus_seeds();
  ASSERT_GE(seeds.size(), 8u);
  ScenarioRunner runner(pool(), RunnerOptions{});
  for (const std::uint64_t seed : seeds) {
    const ScenarioResult result = runner.run(Scenario::from_seed(seed));
    EXPECT_TRUE(result.ok()) << "seed " << seed << ": " << result.summary();
    EXPECT_TRUE(result.converged) << "seed " << seed << ": " << result.summary();
    EXPECT_GT(result.samples_checked, 0u);
  }
}

// Checker self-test: an engine where one group silently skips its afferent-X
// refresh must be caught (its ranks can never pick up remote contributions,
// so the loss-free tail cannot reach the centralized ranks), and the failing
// schedule must minimize to at most 8 ops while still reproducing.
TEST(SmokeCorpus, BrokenEngineIsCaughtAndMinimizes) {
  RunnerOptions opts;
  opts.break_skip_refresh = true;
  ScenarioRunner runner(pool(), opts);
  const Scenario scenario = Scenario::from_seed(2);
  const ScenarioResult result = runner.run(scenario);
  ASSERT_FALSE(result.ok()) << result.summary();

  const MinimizeResult shrunk = minimize_schedule(
      scenario, [&](const Scenario& cand) { return !runner.run(cand).ok(); });
  EXPECT_LE(shrunk.scenario.ops.size(), 8u);
  // Replaying the minimized trace (through the text format, like the CLI
  // does) still reproduces on the broken engine and is clean on the real one.
  const Scenario replay = Scenario::parse_text(shrunk.scenario.to_text());
  EXPECT_FALSE(runner.run(replay).ok());
  ScenarioRunner healthy(pool(), RunnerOptions{});
  EXPECT_TRUE(healthy.run(replay).ok());
}

TEST(Minimizer, ReducesToTheOneCulpritOp) {
  Scenario s = Scenario::from_seed(11);
  s.ops.clear();
  for (std::uint32_t i = 0; i < 9; ++i) {
    s.ops.push_back({2.0 * (i + 1), i == 5 ? OpKind::kCrash : OpKind::kPause,
                     i == 5 ? 2u : i, 0, 0.0, 0});
  }
  const auto fails = [](const Scenario& cand) {
    for (const ScheduleOp& op : cand.ops) {
      if (op.kind == OpKind::kCrash && op.group == 2) return true;
    }
    return false;
  };
  const MinimizeResult result = minimize_schedule(s, fails);
  ASSERT_EQ(result.scenario.ops.size(), 1u);
  EXPECT_EQ(result.scenario.ops[0].kind, OpKind::kCrash);
  EXPECT_EQ(result.scenario.ops[0].group, 2u);
  EXPECT_TRUE(result.minimal);
}

TEST(Minimizer, KeepsAPairThatMustCoOccur) {
  Scenario s = Scenario::from_seed(11);
  s.ops.clear();
  for (std::uint32_t i = 0; i < 12; ++i) {
    s.ops.push_back({1.0 * (i + 1), OpKind::kPause, i, 0, 0.0, 0});
  }
  const auto fails = [](const Scenario& cand) {
    bool a = false, b = false;
    for (const ScheduleOp& op : cand.ops) {
      a |= op.group == 3;
      b |= op.group == 9;
    }
    return a && b;
  };
  const MinimizeResult result = minimize_schedule(s, fails);
  ASSERT_EQ(result.scenario.ops.size(), 2u);
  EXPECT_EQ(result.scenario.ops[0].group, 3u);
  EXPECT_EQ(result.scenario.ops[1].group, 9u);
}

// A doctored reference (half the true fixed point) must trip the bound
// invariant — proves the checker actually compares against R*.
TEST(InvariantChecker, DoctoredReferenceTripsBound) {
  const graph::WebGraph g = test::two_cycle();
  const auto assignment = partition::make_hash_url_partitioner()->partition(g, 2);
  engine::EngineOptions eo;
  eo.stability_epsilon = 0.0;
  engine::DistributedRanking sim(g, assignment, 2, eo, pool());
  std::vector<double> doctored =
      engine::open_system_reference(g, eo.alpha, pool());
  sim.set_reference(doctored);  // run() samples relative error against this
  for (double& r : doctored) r *= 0.5;
  InvariantChecker checker(sim, doctored, /*check_monotone=*/true,
                           /*check_bound=*/true,
                           /*expect_status_per_step=*/false);
  (void)sim.run(60.0, 60.0);
  std::vector<Violation> violations;
  checker.check_sample(violations);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].invariant, "bound");
}

// Monotonicity dis-arms on a crash (a rebooted ranker's lowered Y sends
// legitimately drag peers down) and re-arms only on a restore from a
// checkpoint saved in a consistent phase.
TEST(InvariantChecker, CrashDisarmsMonotoneRestoreRearms) {
  const graph::WebGraph g = test::two_cycle();
  const auto assignment = partition::make_hash_url_partitioner()->partition(g, 2);
  engine::EngineOptions eo;
  eo.stability_epsilon = 0.0;
  engine::DistributedRanking sim(g, assignment, 2, eo, pool());
  const auto reference = engine::open_system_reference(g, eo.alpha, pool());
  InvariantChecker checker(sim, reference, /*check_monotone=*/true,
                           /*check_bound=*/true,
                           /*expect_status_per_step=*/false);
  EXPECT_TRUE(checker.monotone_armed());
  checker.on_crash(0);
  EXPECT_FALSE(checker.monotone_armed());
  const std::vector<double> restored(g.num_pages(), 0.0);
  checker.on_restore(restored, /*consistent=*/false);
  EXPECT_FALSE(checker.monotone_armed());
  checker.on_restore(restored, /*consistent=*/true);
  EXPECT_TRUE(checker.monotone_armed());
}

}  // namespace
}  // namespace p2prank::check
