// Tests for the reliable exchange layer (src/transport/reliable.hpp wired
// through DistributedRanking): the stale-Y reordering hazard and its epoch
// fix, EngineOptions validation messages, retransmission vs fire-and-forget
// convergence on a lossy channel, ranker churn conservation, and
// suspicion-based failure detection under ack loss.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/distributed.hpp"
#include "engine/reference.hpp"
#include "graph/synthetic_web.hpp"
#include "partition/partitioner.hpp"
#include "test_support.hpp"
#include "util/thread_pool.hpp"

namespace p2prank::engine {
namespace {

constexpr double kAlpha = 0.85;
constexpr double kTol = 1e-9;

util::ThreadPool& pool() {
  static util::ThreadPool p(4);
  return p;
}

class ReliableFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_ = new graph::WebGraph(
        graph::generate_synthetic_web(graph::google2002_config(1500, 41)));
    reference_ = new std::vector<double>(
        open_system_reference(*graph_, kAlpha, pool()));
  }
  static void TearDownTestSuite() {
    delete reference_;
    delete graph_;
    reference_ = nullptr;
    graph_ = nullptr;
  }

  static std::vector<std::uint32_t> assignment(std::uint32_t k) {
    return partition::make_hash_url_partitioner()->partition(*graph_, k);
  }

  static graph::WebGraph* graph_;
  static std::vector<double>* reference_;
};

graph::WebGraph* ReliableFixture::graph_ = nullptr;
std::vector<double>* ReliableFixture::reference_ = nullptr;

// --- Satellite 1: the stale-Y reordering hazard -------------------------
//
// With jittered delivery latency and NO epochs, a delayed older Y slice can
// arrive after a newer one and silently replace the newer X entry — ranks
// regress between samples, breaking Thm 4.1 monotonicity from R0 = 0. The
// epoch filter rejects exactly those slices (counted in
// duplicates_rejected()), restoring monotone growth under the same channel.
EngineOptions jittery_options(bool epochs) {
  EngineOptions o;
  o.algorithm = Algorithm::kDPR2;
  o.alpha = kAlpha;
  o.t1 = 0.3;
  o.t2 = 0.6;
  o.delivery_latency = 0.2;
  o.latency_jitter = 4.0;  // >> inter-step wait: reorders are routine
  o.seed = 11;
  o.reliability.epochs = epochs;
  return o;
}

TEST_F(ReliableFixture, JitterWithoutEpochsBreaksMonotonicity) {
  const auto a = assignment(4);
  DistributedRanking sim(*graph_, a, 4, jittery_options(false), pool());
  sim.set_reference(*reference_);
  const auto samples = sim.run(60.0, 1.0);
  double worst = 0.0;
  for (const Sample& s : samples) worst = std::min(worst, s.min_rank_delta);
  EXPECT_LT(worst, -kTol)
      << "stale reordered Y slices should have dragged some rank down";
  EXPECT_EQ(sim.duplicates_rejected(), 0u);  // no filter installed
}

TEST_F(ReliableFixture, EpochsRejectStaleSlicesAndRestoreMonotonicity) {
  const auto a = assignment(4);
  DistributedRanking sim(*graph_, a, 4, jittery_options(true), pool());
  sim.set_reference(*reference_);
  const auto samples = sim.run(60.0, 1.0);
  for (const Sample& s : samples) {
    EXPECT_GE(s.min_rank_delta, -kTol) << "t=" << s.time;
  }
  // The channel really did reorder: the filter had stale slices to reject.
  EXPECT_GT(sim.duplicates_rejected(), 0u);
  EXPECT_EQ(sim.zombie_retransmits(), 0u);
  // Epoch high-water marks are populated and survive the whole run.
  std::uint64_t total_epochs = 0;
  for (std::uint32_t s = 0; s < 4; ++s) {
    for (std::uint32_t d = 0; d < 4; ++d) total_epochs += sim.accepted_epoch(s, d);
  }
  EXPECT_GT(total_epochs, 0u);
}

// --- Satellite 2: EngineOptions validation ------------------------------

TEST_F(ReliableFixture, OptionValidationNamesTheBadField) {
  const auto a = assignment(4);
  const auto expect_invalid = [&](EngineOptions o, const std::string& field) {
    try {
      DistributedRanking sim(*graph_, a, 4, o, pool());
      FAIL() << "expected invalid_argument naming " << field;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
          << "message was: " << e.what();
    }
  };
  EngineOptions base;
  base.alpha = kAlpha;

  auto o = base;
  o.alpha = 1.5;
  expect_invalid(o, "alpha");
  o = base;
  o.inner_epsilon = 0.0;
  expect_invalid(o, "inner_epsilon");
  o = base;
  o.delivery_probability = 1.5;
  expect_invalid(o, "delivery_probability");
  o = base;
  o.t1 = -1.0;
  expect_invalid(o, "t1");
  o = base;
  o.t1 = 5.0;
  o.t2 = 1.0;
  expect_invalid(o, "t2");
  o = base;
  o.delivery_latency = -0.1;
  expect_invalid(o, "delivery_latency");
  o = base;
  o.latency_jitter = -0.1;
  expect_invalid(o, "latency_jitter");
  o = base;
  o.stability_epsilon = -1.0;
  expect_invalid(o, "stability_epsilon");
  o = base;
  o.send_threshold = -1.0;
  expect_invalid(o, "send_threshold");
  o = base;
  o.reliability.ack_latency = -1.0;
  expect_invalid(o, "ack_latency");
  o = base;
  o.reliability.ack_delivery_probability = 1.5;
  expect_invalid(o, "ack_delivery_probability");
  o = base;
  o.reliability.rto_initial = 0.0;
  expect_invalid(o, "rto_initial");
  o = base;
  o.reliability.rto_backoff = 0.5;
  expect_invalid(o, "rto_backoff");
  o = base;
  o.reliability.rto_max = 0.5;  // < rto_initial (1.0)
  expect_invalid(o, "rto_max");
  o = base;
  o.reliability.rto_jitter = -1.0;
  expect_invalid(o, "rto_jitter");
  o = base;
  o.reliability.suspicion_after = 0;
  expect_invalid(o, "suspicion_after");
  o = base;
  o.reliability.suspect_decay = 2.0;
  expect_invalid(o, "suspect_decay");
}

TEST_F(ReliableFixture, RetransmitImpliesEpochs) {
  const auto a = assignment(4);
  EngineOptions o;
  o.alpha = kAlpha;
  o.delivery_probability = 0.5;
  o.reliability.retransmit = true;  // epochs left false on purpose
  DistributedRanking sim(*graph_, a, 4, o, pool());
  sim.set_reference(*reference_);
  (void)sim.run(20.0, 5.0);
  // The dup filter must be live: retransmits of delivered epochs land here.
  EXPECT_GT(sim.retransmissions(), 0u);
  EXPECT_EQ(sim.zombie_retransmits(), 0u);
}

// --- Satellite 3: lossy-channel convergence, reliable vs fire-and-forget -

EngineOptions lossy_options(bool reliable) {
  EngineOptions o;
  o.algorithm = Algorithm::kDPR2;
  o.alpha = kAlpha;
  o.delivery_probability = 0.5;
  o.t1 = 1.0;
  o.t2 = 1.0;
  o.seed = 2024;
  o.reliability.retransmit = reliable;
  return o;
}

TEST_F(ReliableFixture, RetransmissionBeatsFireAndForgetAtHalfDelivery) {
  const auto a = assignment(4);

  DistributedRanking fire(*graph_, a, 4, lossy_options(false), pool());
  fire.set_reference(*reference_);
  const ConvergenceResult fr = fire.run_until_error(1e-7, 4000.0, 1.0);

  DistributedRanking rel(*graph_, a, 4, lossy_options(true), pool());
  rel.set_reference(*reference_);
  const ConvergenceResult rr = rel.run_until_error(1e-7, 4000.0, 1.0);

  ASSERT_TRUE(fr.reached) << "fire-and-forget never converged";
  ASSERT_TRUE(rr.reached) << "reliable never converged";
  EXPECT_LT(rr.time, fr.time)
      << "retransmission should recover lost slices faster than waiting for "
         "the next loop step";

  // Fire-and-forget reports no reliability traffic at all.
  EXPECT_EQ(fr.retransmissions, 0u);
  EXPECT_EQ(fr.acks_sent, 0u);
  EXPECT_EQ(fr.duplicates_rejected, 0u);
  EXPECT_EQ(fire.pending_retransmits(), 0u);

  // Reliable counters are populated and mutually consistent.
  EXPECT_GT(rr.retransmissions, 0u);
  EXPECT_GT(rr.acks_sent, 0u);
  EXPECT_LE(rr.retransmissions, rr.messages_sent);
  EXPECT_LE(rel.acks_delivered(), rel.acks_sent());
  EXPECT_EQ(rel.zombie_retransmits(), 0u);
}

// --- Ranker churn: leave/join conserve ownership and rank state ---------

TEST_F(ReliableFixture, LeaveAndJoinConservePagesAndRanks) {
  const auto a = assignment(4);
  EngineOptions o;
  o.algorithm = Algorithm::kDPR2;
  o.alpha = kAlpha;
  o.seed = 5;
  o.reliability.retransmit = true;
  DistributedRanking sim(*graph_, a, 4, o, pool());
  sim.set_reference(*reference_);
  (void)sim.run(20.0, 5.0);

  const std::vector<double> before = sim.global_ranks();
  sim.leave_group(1, 2);
  EXPECT_EQ(sim.churn_events(), 1u);
  std::vector<std::uint32_t> owners = sim.current_assignment();
  ASSERT_EQ(owners.size(), graph_->num_pages());
  for (std::size_t p = 0; p < owners.size(); ++p) {
    EXPECT_NE(owners[p], 1u) << "page " << p << " still owned by departed group";
    EXPECT_LT(owners[p], 4u);
  }
  // The checkpoint text round-trip (setprecision 17) is exact: the handoff
  // must not perturb a single rank bit.
  const std::vector<double> after_leave = sim.global_ranks();
  ASSERT_EQ(after_leave.size(), before.size());
  for (std::size_t p = 0; p < before.size(); ++p) {
    EXPECT_EQ(after_leave[p], before[p]) << "page " << p;
  }

  sim.join_group(1, 2);  // the emptied slot rejoins, taking half of group 2
  EXPECT_EQ(sim.churn_events(), 2u);
  owners = sim.current_assignment();
  std::vector<std::size_t> sizes(4, 0);
  for (const std::uint32_t g : owners) {
    ASSERT_LT(g, 4u);
    ++sizes[g];
  }
  EXPECT_GT(sizes[1], 0u);
  EXPECT_GT(sizes[2], 0u);
  const std::vector<double> after_join = sim.global_ranks();
  for (std::size_t p = 0; p < before.size(); ++p) {
    EXPECT_EQ(after_join[p], before[p]) << "page " << p;
  }

  // Consistency survives the churn pair: the engine still converges and the
  // pre-churn sub-fixed-point state keeps the monotone/bound theorems alive.
  const ConvergenceResult res = sim.run_until_error(1e-5, 2000.0, 1.0);
  EXPECT_TRUE(res.reached);
  EXPECT_EQ(sim.zombie_retransmits(), 0u);
}

TEST_F(ReliableFixture, ChurnArgumentErrors) {
  const auto a = assignment(4);
  EngineOptions o;
  o.alpha = kAlpha;
  DistributedRanking sim(*graph_, a, 4, o, pool());
  EXPECT_THROW(sim.leave_group(9, 0), std::out_of_range);
  EXPECT_THROW(sim.leave_group(0, 9), std::out_of_range);
  EXPECT_THROW(sim.leave_group(2, 2), std::invalid_argument);
  EXPECT_THROW(sim.join_group(0, 1), std::invalid_argument);  // 0 not empty
  sim.leave_group(3, 0);
  EXPECT_THROW(sim.leave_group(3, 0), std::invalid_argument);  // now empty
  EXPECT_THROW(sim.join_group(3, 3), std::invalid_argument);
}

// --- Failure detection: a silent peer gets suspected, acks recover it ---
//
// Suspicion needs a pair with no evidence of life: an ack resets the
// attempt counter, and received data clears suspicion via peer_alive (a
// talking peer is alive even if its acks are lost). A one-directional cut
// (a chain split at the middle: only group 0 sends to group 1) removes the
// reverse keep-alive; lose every ack and pause the sender, and its pending
// epoch keeps timing out until the failure detector trips — and stays
// tripped.
TEST(ReliableSuspicion, SilentPeerGetsSuspectedAndAcksRecoverIt) {
  const graph::WebGraph g = test::chain(4);  // 0->1->2->3, one cut edge 1->2
  const std::vector<std::uint32_t> a = {0, 0, 1, 1};
  EngineOptions o;
  o.algorithm = Algorithm::kDPR2;
  o.alpha = kAlpha;
  o.t1 = 1.0;
  o.t2 = 1.0;
  o.seed = 3;
  o.reliability.retransmit = true;
  o.reliability.ack_delivery_probability = 0.0;  // acks never arrive
  o.reliability.rto_initial = 0.5;
  o.reliability.rto_max = 1.0;
  o.reliability.suspicion_after = 2;
  DistributedRanking sim(g, a, 2, o, pool());
  sim.set_reference(open_system_reference(g, kAlpha, pool()));
  (void)sim.run(5.0, 5.0);  // pair (0 -> 1) now holds an unacked epoch
  ASSERT_GT(sim.pending_retransmits(), 0u);
  EXPECT_GT(sim.acks_sent(), 0u);
  EXPECT_EQ(sim.acks_delivered(), 0u);

  sim.pause_group(0);  // no more fresh sends to reset the attempt counter
  (void)sim.run(25.0, 5.0);

  EXPECT_GT(sim.retransmissions(), 0u);
  EXPECT_GT(sim.suspicion_events(), 0u);
  EXPECT_GT(sim.suspected_pairs(), 0u);
  // Retransmits of already-delivered epochs bounce off the dup filter (a
  // paused ranker's transport still accepts and acks).
  EXPECT_GT(sim.duplicates_rejected(), 0u);
  EXPECT_EQ(sim.zombie_retransmits(), 0u);

  // Heal the ack channel and wake the sender: fresh sends double as probes,
  // their acks land, and the suspected pair recovers.
  sim.set_ack_delivery_probability(1.0);
  sim.resume_group(0);
  (void)sim.run(60.0, 10.0);
  EXPECT_GT(sim.acks_delivered(), 0u);
  EXPECT_EQ(sim.suspected_pairs(), 0u);
}

}  // namespace
}  // namespace p2prank::engine
