#include "graph/graph_builder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "graph/web_graph.hpp"
#include "test_support.hpp"

namespace p2prank::graph {
namespace {

TEST(GraphBuilder, AddPageIsIdempotent) {
  GraphBuilder b;
  const auto p1 = b.add_page("s.edu/a", "s.edu");
  const auto p2 = b.add_page("s.edu/a", "s.edu");
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(b.num_pages(), 1u);
}

TEST(GraphBuilder, DerivesSiteFromUrl) {
  GraphBuilder b;
  const auto p = b.add_page("http://www.x.edu/page");
  const auto g = std::move(b).build();
  EXPECT_EQ(g.site_name(g.site(p)), "www.x.edu");
}

TEST(GraphBuilder, SharedSiteGetsOneSiteId) {
  GraphBuilder b;
  const auto a = b.add_page("s.edu/a", "s.edu");
  const auto c = b.add_page("s.edu/b", "s.edu");
  const auto g = std::move(b).build();
  EXPECT_EQ(g.site(a), g.site(c));
  EXPECT_EQ(g.num_sites(), 1u);
}

TEST(GraphBuilder, BuildsCsrAdjacency) {
  GraphBuilder b;
  const auto a = b.add_page("s.edu/a", "s.edu");
  const auto c = b.add_page("s.edu/b", "s.edu");
  const auto d = b.add_page("s.edu/c", "s.edu");
  b.add_link(a, c);
  b.add_link(a, d);
  b.add_link(c, d);
  const auto g = std::move(b).build();

  EXPECT_EQ(g.num_links(), 3u);
  EXPECT_EQ(g.out_degree(a), 2u);
  EXPECT_EQ(g.out_degree(c), 1u);
  EXPECT_EQ(g.out_degree(d), 0u);
  EXPECT_TRUE(g.is_dangling(d));
  EXPECT_EQ(g.in_degree(d), 2u);

  const auto out_a = g.out_links(a);
  EXPECT_EQ(std::vector<PageId>(out_a.begin(), out_a.end()),
            (std::vector<PageId>{c, d}));
  const auto in_d = g.in_links(d);
  EXPECT_EQ(std::vector<PageId>(in_d.begin(), in_d.end()),
            (std::vector<PageId>{a, c}));
}

TEST(GraphBuilder, ExternalLinksCountTowardOutDegree) {
  GraphBuilder b;
  const auto a = b.add_page("s.edu/a", "s.edu");
  const auto c = b.add_page("s.edu/b", "s.edu");
  b.add_link(a, c);
  b.add_external_link(a, 3);
  const auto g = std::move(b).build();
  EXPECT_EQ(g.out_degree(a), 4u);
  EXPECT_EQ(g.external_out_degree(a), 3u);
  EXPECT_EQ(g.num_external_links(), 3u);
  EXPECT_EQ(g.num_links(), 1u);
}

TEST(GraphBuilder, DeferredLinkResolvesWhenTargetAppearsLater) {
  GraphBuilder b;
  const auto a = b.add_page("s.edu/a", "s.edu");
  b.add_link_to_url(a, "s.edu/later");
  const auto later = b.add_page("s.edu/later", "s.edu");
  const auto g = std::move(b).build();
  EXPECT_EQ(g.num_links(), 1u);
  EXPECT_EQ(g.out_links(a)[0], later);
  EXPECT_EQ(g.num_external_links(), 0u);
}

TEST(GraphBuilder, DeferredLinkToUnknownBecomesExternal) {
  GraphBuilder b;
  const auto a = b.add_page("s.edu/a", "s.edu");
  b.add_link_to_url(a, "elsewhere.com/never-crawled");
  const auto g = std::move(b).build();
  EXPECT_EQ(g.num_links(), 0u);
  EXPECT_EQ(g.external_out_degree(a), 1u);
}

TEST(GraphBuilder, DedupCollapsesDuplicateLinks) {
  GraphBuilder b;
  const auto a = b.add_page("s.edu/a", "s.edu");
  const auto c = b.add_page("s.edu/b", "s.edu");
  b.add_link(a, c);
  b.add_link(a, c);
  const auto g = std::move(b).build(/*dedup_links=*/true);
  EXPECT_EQ(g.num_links(), 1u);
}

TEST(GraphBuilder, WithoutDedupKeepsParallelEdges) {
  GraphBuilder b;
  const auto a = b.add_page("s.edu/a", "s.edu");
  const auto c = b.add_page("s.edu/b", "s.edu");
  b.add_link(a, c);
  b.add_link(a, c);
  const auto g = std::move(b).build();
  EXPECT_EQ(g.num_links(), 2u);
}

TEST(WebGraph, FindByUrl) {
  const auto g = test::two_cycle();
  const auto found = g.find("s.edu/a");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(g.url(*found), "s.edu/a");
  EXPECT_FALSE(g.find("s.edu/missing").has_value());
}

TEST(WebGraph, PagesOfSite) {
  GraphBuilder b;
  b.add_page("a.edu/1", "a.edu");
  b.add_page("b.edu/1", "b.edu");
  b.add_page("a.edu/2", "a.edu");
  const auto g = std::move(b).build();
  ASSERT_EQ(g.num_sites(), 2u);
  const auto a_pages = g.pages_of_site(0);
  EXPECT_EQ(a_pages.size(), 2u);
  for (const auto p : a_pages) EXPECT_EQ(g.site(p), 0u);
}

TEST(WebGraph, IntraSiteLinkCount) {
  GraphBuilder b;
  const auto a1 = b.add_page("a.edu/1", "a.edu");
  const auto a2 = b.add_page("a.edu/2", "a.edu");
  const auto b1 = b.add_page("b.edu/1", "b.edu");
  b.add_link(a1, a2);  // intra
  b.add_link(a1, b1);  // inter
  const auto g = std::move(b).build();
  EXPECT_EQ(g.count_intra_site_links(), 1u);
}

TEST(WebGraph, EmptyGraphIsWellFormed) {
  GraphBuilder b;
  const auto g = std::move(b).build();
  EXPECT_EQ(g.num_pages(), 0u);
  EXPECT_EQ(g.num_links(), 0u);
  EXPECT_EQ(g.num_sites(), 0u);
}

TEST(GraphBuilder, ConflictingSiteReAddThrows) {
  GraphBuilder b;
  b.add_page("s.edu/a", "s.edu");
  EXPECT_THROW((void)b.add_page("s.edu/a", "other.edu"), std::invalid_argument);
  // Re-adding with the *same* site stays idempotent.
  EXPECT_EQ(b.add_page("s.edu/a", "s.edu"), 0u);
  EXPECT_EQ(b.num_pages(), 1u);
}

TEST(GraphBuilder, ExternalOverflowThrows) {
  GraphBuilder b;
  const auto a = b.add_page("s.edu/a", "s.edu");
  b.add_external_link(a, std::numeric_limits<std::uint32_t>::max() - 1);
  EXPECT_THROW(b.add_external_link(a, 2), std::overflow_error);
  // One more is still representable.
  b.add_external_link(a, 1);
  const auto g = std::move(b).build();
  EXPECT_EQ(g.external_out_degree(a),
            std::numeric_limits<std::uint32_t>::max());
}

TEST(GraphBuilder, OutRowsAreSortedEvenWithoutDedup) {
  GraphBuilder b;
  const auto a = b.add_page("s.edu/a", "s.edu");
  const auto c = b.add_page("s.edu/b", "s.edu");
  const auto d = b.add_page("s.edu/c", "s.edu");
  b.add_link(a, d);
  b.add_link(a, c);
  b.add_link(a, d);
  const auto g = std::move(b).build();
  const auto out = g.out_links(a);
  EXPECT_EQ(std::vector<PageId>(out.begin(), out.end()),
            (std::vector<PageId>{c, d, d}));
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
}

TEST(GraphBuilder, FindLooksUpInternedPages) {
  GraphBuilder b;
  const auto a = b.add_page("s.edu/a", "s.edu");
  EXPECT_EQ(b.find("s.edu/a"), std::optional<PageId>{a});
  EXPECT_FALSE(b.find("s.edu/missing").has_value());
}

TEST(WebGraph, DefaultConstructedAccessorsAreSafe) {
  // A default-constructed WebGraph has empty CSR arrays; every accessor
  // must degrade gracefully instead of reading past offsets (once UB).
  const WebGraph g;
  EXPECT_EQ(g.num_pages(), 0u);
  EXPECT_EQ(g.num_sites(), 0u);
  EXPECT_EQ(g.num_links(), 0u);
  EXPECT_TRUE(g.out_links(0).empty());
  EXPECT_TRUE(g.in_links(0).empty());
  EXPECT_TRUE(g.pages_of_site(0).empty());
  EXPECT_EQ(g.out_degree(0), 0u);
  EXPECT_EQ(g.in_degree(0), 0u);
  EXPECT_EQ(g.external_out_degree(0), 0u);
  EXPECT_FALSE(g.find("s.edu/a").has_value());
}

TEST(WebGraph, OutOfRangePageAccessorsAreSafe) {
  const auto g = test::two_cycle();
  EXPECT_TRUE(g.out_links(99).empty());
  EXPECT_TRUE(g.in_links(99).empty());
  EXPECT_EQ(g.out_degree(99), 0u);
  EXPECT_EQ(g.external_out_degree(kInvalidPage), 0u);
}

}  // namespace
}  // namespace p2prank::graph
