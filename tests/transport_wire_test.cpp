#include "transport/wire.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace p2prank::transport {
namespace {

std::vector<ScoreRecord> views_of(const std::vector<OwnedScoreRecord>& owned) {
  std::vector<ScoreRecord> views;
  views.reserve(owned.size());
  for (const auto& r : owned) views.push_back({r.url_from, r.url_to, r.score});
  return views;
}

std::vector<OwnedScoreRecord> sample_records(std::size_t count, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<OwnedScoreRecord> records;
  records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    OwnedScoreRecord r;
    r.url_from = "site" + std::to_string(rng.below(20)) + ".edu/page" +
                 std::to_string(rng.below(500)) + ".html";
    r.url_to = "site" + std::to_string(rng.below(20)) + ".edu/page" +
               std::to_string(rng.below(500)) + ".html";
    r.score = rng.uniform() * 3.0;
    records.push_back(std::move(r));
  }
  return records;
}

TEST(Varint, RoundTripsBoundaryValues) {
  for (const std::uint64_t v :
       {0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL, ~0ULL}) {
    std::vector<std::uint8_t> buf;
    put_varint(buf, v);
    WireReader reader(buf);
    EXPECT_EQ(reader.read_varint(), v);
    EXPECT_TRUE(reader.at_end());
  }
}

TEST(Varint, SmallValuesAreOneByte) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, 100);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(WireReaderT, ThrowsOnTruncatedInput) {
  const std::vector<std::uint8_t> cont{0x80};  // continuation bit, no next byte
  WireReader r1(cont);
  EXPECT_THROW((void)r1.read_varint(), std::runtime_error);

  const std::vector<std::uint8_t> few{1, 2, 3};
  WireReader r2(few);
  EXPECT_THROW((void)r2.read_bytes(4), std::runtime_error);
  WireReader r3(few);
  EXPECT_THROW((void)r3.read_double(), std::runtime_error);
}

TEST(Wire, EmptyBatchRoundTrips) {
  const auto bytes = encode_records({});
  const auto decoded = decode_records(bytes);
  EXPECT_TRUE(decoded.empty());
}

TEST(Wire, SingleRecordExact) {
  const std::vector<ScoreRecord> records{
      {"alpha.edu/home", "beta.edu/index", 0.123456789}};
  const auto decoded = decode_records(encode_records(records));
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].url_from, "alpha.edu/home");
  EXPECT_EQ(decoded[0].url_to, "beta.edu/index");
  EXPECT_DOUBLE_EQ(decoded[0].score, 0.123456789);
}

TEST(Wire, BatchRoundTripsExactlyWithFrontCoding) {
  const auto owned = sample_records(500, 1);
  const auto bytes = encode_records(views_of(owned));
  const auto decoded = decode_records(bytes);
  ASSERT_EQ(decoded.size(), owned.size());
  // Front coding reorders; compare as multisets via sorted copies.
  auto key = [](const OwnedScoreRecord& r) {
    return r.url_from + "|" + r.url_to + "|" + std::to_string(r.score);
  };
  std::vector<std::string> expect;
  std::vector<std::string> got;
  for (const auto& r : owned) expect.push_back(key(r));
  for (const auto& r : decoded) got.push_back(key(r));
  std::sort(expect.begin(), expect.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(expect, got);
}

TEST(Wire, NoFrontCodingPreservesOrder) {
  const auto owned = sample_records(50, 2);
  WireOptions opts;
  opts.front_coding = false;
  const auto decoded = decode_records(encode_records(views_of(owned), opts));
  ASSERT_EQ(decoded.size(), owned.size());
  for (std::size_t i = 0; i < owned.size(); ++i) {
    EXPECT_EQ(decoded[i].url_from, owned[i].url_from);
    EXPECT_EQ(decoded[i].url_to, owned[i].url_to);
    EXPECT_DOUBLE_EQ(decoded[i].score, owned[i].score);
  }
}

TEST(Wire, FrontCodingShrinksSortedCrawlBatches) {
  const auto owned = sample_records(2000, 3);
  WireOptions coded;
  coded.front_coding = true;
  WireOptions plain;
  plain.front_coding = false;
  const auto coded_bytes = encode_records(views_of(owned), coded);
  const auto plain_bytes = encode_records(views_of(owned), plain);
  EXPECT_LT(coded_bytes.size(), plain_bytes.size() * 3 / 4);
}

TEST(Wire, BeatsThePapersHundredByteEstimate) {
  const auto owned = sample_records(2000, 4);
  const auto bytes = encode_records(views_of(owned));
  const double per_record = static_cast<double>(bytes.size()) /
                            static_cast<double>(owned.size());
  EXPECT_LT(per_record, kNaiveRecordBytes);
}

TEST(Wire, QuantizationBoundsAbsoluteError) {
  const auto owned = sample_records(500, 5);
  WireOptions opts;
  opts.quantize_bits = 20;
  const auto decoded = decode_records(encode_records(views_of(owned), opts));
  ASSERT_EQ(decoded.size(), owned.size());
  // Decoded order is sorted; check every score is within the bound of some
  // original by re-sorting both on (from,to).
  auto by_urls = [](const OwnedScoreRecord& a, const OwnedScoreRecord& b) {
    if (a.url_from != b.url_from) return a.url_from < b.url_from;
    return a.url_to < b.url_to;
  };
  auto sorted = owned;
  std::stable_sort(sorted.begin(), sorted.end(), by_urls);
  auto got = decoded;
  std::stable_sort(got.begin(), got.end(), by_urls);
  const double bound = std::ldexp(1.0, -20);  // 2^-quantize_bits
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_LE(std::fabs(sorted[i].score - got[i].score), bound) << i;
  }
}

TEST(Wire, QuantizationShrinksScores) {
  const auto owned = sample_records(1000, 6);
  WireOptions exact;
  WireOptions lossy;
  lossy.quantize_bits = 16;
  EXPECT_LT(encode_records(views_of(owned), lossy).size(),
            encode_records(views_of(owned), exact).size());
}

TEST(Wire, RejectsSillyQuantization) {
  EXPECT_THROW((void)encode_records({}, {.front_coding = true, .quantize_bits = -1}),
               std::invalid_argument);
  EXPECT_THROW((void)encode_records({}, {.front_coding = true, .quantize_bits = 64}),
               std::invalid_argument);
}

TEST(Wire, DecodeRejectsGarbage) {
  std::vector<std::uint8_t> garbage{0x01, 0x50, 0xFF, 0xFF, 0xFF};
  EXPECT_THROW((void)decode_records(garbage), std::runtime_error);
}

TEST(Wire, DecodeNeverCrashesOnRandomBytes) {
  // Fuzz-lite: arbitrary byte strings must either decode or throw — no UB,
  // no unbounded allocation from hostile counts (count is bounded by the
  // remaining bytes since every record consumes at least one).
  util::Rng rng(99);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::uint8_t> bytes(rng.below(64));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
    try {
      const auto records = decode_records(bytes);
      EXPECT_LE(records.size(), bytes.size() + 1);
    } catch (const std::runtime_error&) {
      // expected for malformed input
    }
  }
}

TEST(Wire, TruncatedValidStreamThrows) {
  const auto owned = sample_records(50, 8);
  auto bytes = encode_records(views_of(owned));
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW((void)decode_records(bytes), std::runtime_error);
}

TEST(Wire, DecodeRejectsBadSharedPrefix) {
  // Handcraft: flags=1, qbits=0, count=1, shared_from=5 (> prev "" size).
  std::vector<std::uint8_t> bytes;
  put_varint(bytes, 1);
  put_varint(bytes, 0);
  put_varint(bytes, 1);
  put_varint(bytes, 5);
  put_varint(bytes, 0);
  EXPECT_THROW((void)decode_records(bytes), std::runtime_error);
}

}  // namespace
}  // namespace p2prank::transport
