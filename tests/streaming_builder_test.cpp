#include "graph/streaming_builder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "graph/graph_builder.hpp"
#include "graph/web_graph.hpp"

namespace p2prank::graph {
namespace {

/// Replayable source that delivers a fixed edge list in fixed-size chunks.
StreamingGraphBuilder::EdgeSource chunked(std::vector<StreamingGraphBuilder::Edge> edges,
                                          std::size_t chunk) {
  return [edges = std::move(edges), chunk](const StreamingGraphBuilder::ChunkSink& sink) {
    for (std::size_t i = 0; i < edges.size(); i += chunk) {
      const std::size_t len = std::min(chunk, edges.size() - i);
      sink(std::span<const StreamingGraphBuilder::Edge>(edges.data() + i, len));
    }
  };
}

TEST(StreamingGraphBuilder, MatchesGraphBuilderOnSmallGraph) {
  GraphBuilder ref;
  const auto a = ref.add_page("s.edu/a", "s.edu");
  const auto b = ref.add_page("s.edu/b", "s.edu");
  const auto c = ref.add_page("t.edu/c", "t.edu");
  ref.add_link(a, b);
  ref.add_link(a, c);
  ref.add_link(c, a);
  ref.add_link(a, b);  // parallel edge
  ref.add_external_link(b, 4);
  const auto want = std::move(ref).build();

  StreamingGraphBuilder sb;
  sb.add_page("s.edu/a", "s.edu");
  sb.add_page("s.edu/b", "s.edu");
  sb.add_page("t.edu/c", "t.edu");
  sb.add_external_links(b, 4);
  // Deliberately unsorted delivery: the builder canonicalizes rows itself.
  const auto got = std::move(sb).build_from_stream(
      chunked({{a, c}, {a, b}, {c, a}, {a, b}}, 2));

  ASSERT_EQ(got.num_pages(), want.num_pages());
  ASSERT_EQ(got.num_links(), want.num_links());
  ASSERT_EQ(got.num_external_links(), want.num_external_links());
  for (PageId p = 0; p < want.num_pages(); ++p) {
    EXPECT_EQ(got.url(p), want.url(p));
    EXPECT_EQ(got.site(p), want.site(p));
    EXPECT_EQ(got.external_out_degree(p), want.external_out_degree(p));
    const auto out_g = got.out_links(p);
    const auto out_w = want.out_links(p);
    EXPECT_EQ(std::vector<PageId>(out_g.begin(), out_g.end()),
              std::vector<PageId>(out_w.begin(), out_w.end()));
    const auto in_g = got.in_links(p);
    const auto in_w = want.in_links(p);
    EXPECT_EQ(std::vector<PageId>(in_g.begin(), in_g.end()),
              std::vector<PageId>(in_w.begin(), in_w.end()));
  }
}

TEST(StreamingGraphBuilder, ConflictingSiteReAddThrows) {
  StreamingGraphBuilder sb;
  sb.add_page("s.edu/a", "s.edu");
  EXPECT_THROW((void)sb.add_page("s.edu/a", "other.edu"), std::invalid_argument);
  EXPECT_EQ(sb.add_page("s.edu/a", "s.edu"), 0u);
}

TEST(StreamingGraphBuilder, RejectsUnknownEndpoints) {
  StreamingGraphBuilder sb;
  sb.add_page("s.edu/a", "s.edu");
  EXPECT_THROW((void)std::move(sb).build_from_stream(chunked({{0, 5}}, 8)),
               std::out_of_range);
}

TEST(StreamingGraphBuilder, RejectsNonReplayableSource) {
  StreamingGraphBuilder sb;
  const auto a = sb.add_page("s.edu/a", "s.edu");
  const auto b = sb.add_page("s.edu/b", "s.edu");
  // Source that delivers an extra edge on the second pass.
  int pass = 0;
  const auto source = [&](const StreamingGraphBuilder::ChunkSink& sink) {
    std::vector<StreamingGraphBuilder::Edge> edges{{a, b}};
    if (pass++ > 0) edges.push_back({a, b});
    sink(edges);
  };
  EXPECT_THROW((void)std::move(sb).build_from_stream(source), std::logic_error);
}

TEST(StreamingGraphBuilder, EmptyStreamBuildsEmptyRows) {
  StreamingGraphBuilder sb;
  sb.add_page("s.edu/a", "s.edu");
  const auto g = std::move(sb).build_from_stream(
      [](const StreamingGraphBuilder::ChunkSink&) {});
  EXPECT_EQ(g.num_pages(), 1u);
  EXPECT_EQ(g.num_links(), 0u);
  EXPECT_TRUE(g.out_links(0).empty());
}

}  // namespace
}  // namespace p2prank::graph
