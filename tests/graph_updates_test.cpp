#include "graph/graph_updates.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/synthetic_web.hpp"
#include "test_support.hpp"

namespace p2prank::graph {
namespace {

TEST(GraphUpdates, EmptyUpdateListIsIdentity) {
  const auto g = test::two_cycle();
  const auto g2 = apply_updates(g, {});
  EXPECT_EQ(g2.num_pages(), g.num_pages());
  EXPECT_EQ(g2.num_links(), g.num_links());
  for (PageId p = 0; p < g.num_pages(); ++p) EXPECT_EQ(g2.url(p), g.url(p));
}

TEST(GraphUpdates, AddLinkBetweenExistingPages) {
  const auto g = test::two_cycle();
  const std::vector<LinkUpdate> ups{LinkUpdate::add_link("s.edu/a", "s.edu/a")};
  const auto g2 = apply_updates(g, ups);
  EXPECT_EQ(g2.num_links(), 3u);
  const auto a = *g2.find("s.edu/a");
  EXPECT_EQ(g2.out_degree(a), 2u);
}

TEST(GraphUpdates, RemoveLink) {
  const auto g = test::two_cycle();
  const std::vector<LinkUpdate> ups{LinkUpdate::remove_link("s.edu/a", "s.edu/b")};
  const auto g2 = apply_updates(g, ups);
  EXPECT_EQ(g2.num_links(), 1u);
  const auto a = *g2.find("s.edu/a");
  EXPECT_TRUE(g2.is_dangling(a));
}

TEST(GraphUpdates, RemoveOneOfParallelEdges) {
  graph::GraphBuilder b;
  const auto a = b.add_page("s.edu/a", "s.edu");
  const auto c = b.add_page("s.edu/b", "s.edu");
  b.add_link(a, c);
  b.add_link(a, c);
  const auto g = std::move(b).build();
  const std::vector<LinkUpdate> ups{LinkUpdate::remove_link("s.edu/a", "s.edu/b")};
  const auto g2 = apply_updates(g, ups);
  EXPECT_EQ(g2.num_links(), 1u);
}

TEST(GraphUpdates, RemovingMissingLinkThrows) {
  const auto g = test::two_cycle();
  const std::vector<LinkUpdate> ups{LinkUpdate::remove_link("s.edu/b", "s.edu/b")};
  EXPECT_THROW((void)apply_updates(g, ups), std::invalid_argument);
}

TEST(GraphUpdates, UnknownPageThrows) {
  const auto g = test::two_cycle();
  const std::vector<LinkUpdate> ups{LinkUpdate::add_link("ghost.edu/x", "s.edu/a")};
  EXPECT_THROW((void)apply_updates(g, ups), std::invalid_argument);
}

TEST(GraphUpdates, AddPageAppendsWithoutDisturbingIds) {
  const auto g = test::two_cycle();
  const std::vector<LinkUpdate> ups{
      LinkUpdate::add_page("new.edu/fresh"),
      LinkUpdate::add_link("new.edu/fresh", "s.edu/a"),
  };
  const auto g2 = apply_updates(g, ups);
  EXPECT_EQ(g2.num_pages(), 3u);
  // Old ids preserved.
  EXPECT_EQ(g2.url(0), g.url(0));
  EXPECT_EQ(g2.url(1), g.url(1));
  const auto fresh = g2.find("new.edu/fresh");
  ASSERT_TRUE(fresh.has_value());
  EXPECT_EQ(*fresh, 2u);
  EXPECT_EQ(g2.in_degree(*g2.find("s.edu/a")), 2u);
}

TEST(GraphUpdates, AddPageIsIdempotent) {
  const auto g = test::two_cycle();
  const std::vector<LinkUpdate> ups{
      LinkUpdate::add_page("s.edu/a"),
      LinkUpdate::add_page("new.edu/x"),
      LinkUpdate::add_page("new.edu/x"),
  };
  const auto g2 = apply_updates(g, ups);
  EXPECT_EQ(g2.num_pages(), 3u);
}

TEST(GraphUpdates, ExternalLinkBookkeeping) {
  const auto g = test::leaky_pair();  // a has 1 external link
  const std::vector<LinkUpdate> ups{
      LinkUpdate::add_external("s.edu/a"),
      LinkUpdate::remove_external("s.edu/a"),
      LinkUpdate::add_external("s.edu/b"),
  };
  const auto g2 = apply_updates(g, ups);
  EXPECT_EQ(g2.external_out_degree(*g2.find("s.edu/a")), 1u);
  EXPECT_EQ(g2.external_out_degree(*g2.find("s.edu/b")), 1u);
}

TEST(GraphUpdates, RemoveExternalBelowZeroThrows) {
  const auto g = test::two_cycle();  // no external links
  const std::vector<LinkUpdate> ups{LinkUpdate::remove_external("s.edu/a")};
  EXPECT_THROW((void)apply_updates(g, ups), std::invalid_argument);
}

TEST(GraphUpdates, LinkToJustAddedPageWorksInOrder) {
  const auto g = test::two_cycle();
  const std::vector<LinkUpdate> ups{
      LinkUpdate::add_page("new.edu/p"),
      LinkUpdate::add_link("s.edu/a", "new.edu/p"),
  };
  const auto g2 = apply_updates(g, ups);
  const auto p = *g2.find("new.edu/p");
  EXPECT_EQ(g2.in_degree(p), 1u);
}

TEST(GraphUpdates, SurvivesSyntheticScale) {
  const auto g = generate_synthetic_web(google2002_config(2000, 77));
  std::vector<LinkUpdate> ups;
  // Rewire a few pages.
  ups.push_back(LinkUpdate::add_page("brand-new.edu/index"));
  ups.push_back(LinkUpdate::add_link("brand-new.edu/index", g.url(0)));
  ups.push_back(LinkUpdate::add_link(g.url(1), "brand-new.edu/index"));
  const auto g2 = apply_updates(g, ups);
  EXPECT_EQ(g2.num_pages(), g.num_pages() + 1);
  EXPECT_EQ(g2.num_links(), g.num_links() + 2);
  EXPECT_EQ(g2.num_external_links(), g.num_external_links());
}

}  // namespace
}  // namespace p2prank::graph
