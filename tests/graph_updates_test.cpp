#include "graph/graph_updates.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graph/synthetic_web.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace p2prank::graph {
namespace {

/// Full structural equality: CSR arrays, identity, externals. The splice
/// path must reproduce the rebuild oracle exactly (canonical form).
void expect_same_graph(const WebGraph& a, const WebGraph& b) {
  ASSERT_EQ(a.num_pages(), b.num_pages());
  ASSERT_EQ(a.num_sites(), b.num_sites());
  ASSERT_EQ(a.num_links(), b.num_links());
  ASSERT_EQ(a.num_external_links(), b.num_external_links());
  for (PageId p = 0; p < a.num_pages(); ++p) {
    ASSERT_EQ(a.url(p), b.url(p)) << "page " << p;
    ASSERT_EQ(a.site_name(a.site(p)), b.site_name(b.site(p))) << "page " << p;
    ASSERT_EQ(a.external_out_degree(p), b.external_out_degree(p)) << "page " << p;
    const auto out_a = a.out_links(p);
    const auto out_b = b.out_links(p);
    ASSERT_EQ(std::vector<PageId>(out_a.begin(), out_a.end()),
              std::vector<PageId>(out_b.begin(), out_b.end()))
        << "out row " << p;
    const auto in_a = a.in_links(p);
    const auto in_b = b.in_links(p);
    ASSERT_EQ(std::vector<PageId>(in_a.begin(), in_a.end()),
              std::vector<PageId>(in_b.begin(), in_b.end()))
        << "in row " << p;
  }
}

/// Random batch mixing every update kind, biased like the chaos harness's
/// graph churn (adds, removes of existing links, externals, page adds).
std::vector<LinkUpdate> random_batch(const WebGraph& g, std::uint64_t seed,
                                     std::size_t count, bool allow_page_adds) {
  util::Rng rng(seed);
  const auto n = static_cast<std::uint64_t>(g.num_pages());
  std::vector<LinkUpdate> ups;
  std::size_t fresh = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const double roll = rng.uniform();
    if (allow_page_adds && roll < 0.1) {
      const std::string url = "fresh.edu/p" + std::to_string(fresh++);
      ups.push_back(LinkUpdate::add_page(url));
      ups.push_back(LinkUpdate::add_link(url, g.url(rng.below(n))));
    } else if (roll < 0.55) {
      ups.push_back(LinkUpdate::add_link(g.url(rng.below(n)), g.url(rng.below(n))));
    } else if (roll < 0.8) {
      const auto u = static_cast<PageId>(rng.below(n));
      const auto links = g.out_links(u);
      if (links.empty()) {
        ups.push_back(LinkUpdate::add_external(g.url(u)));
      } else {
        // Removing a base link twice in a row would throw unless an add for
        // the same pair precedes it; keep batches valid by adding first.
        const PageId v = links[rng.below(links.size())];
        ups.push_back(LinkUpdate::add_link(g.url(u), g.url(v)));
        ups.push_back(LinkUpdate::remove_link(g.url(u), g.url(v)));
        ups.push_back(LinkUpdate::remove_link(g.url(u), g.url(v)));
      }
    } else {
      ups.push_back(LinkUpdate::add_external(g.url(rng.below(n))));
    }
  }
  return ups;
}

TEST(GraphUpdates, EmptyUpdateListIsIdentity) {
  const auto g = test::two_cycle();
  const auto g2 = apply_updates(g, {});
  EXPECT_EQ(g2.num_pages(), g.num_pages());
  EXPECT_EQ(g2.num_links(), g.num_links());
  for (PageId p = 0; p < g.num_pages(); ++p) EXPECT_EQ(g2.url(p), g.url(p));
}

TEST(GraphUpdates, AddLinkBetweenExistingPages) {
  const auto g = test::two_cycle();
  const std::vector<LinkUpdate> ups{LinkUpdate::add_link("s.edu/a", "s.edu/a")};
  const auto g2 = apply_updates(g, ups);
  EXPECT_EQ(g2.num_links(), 3u);
  const auto a = *g2.find("s.edu/a");
  EXPECT_EQ(g2.out_degree(a), 2u);
}

TEST(GraphUpdates, RemoveLink) {
  const auto g = test::two_cycle();
  const std::vector<LinkUpdate> ups{LinkUpdate::remove_link("s.edu/a", "s.edu/b")};
  const auto g2 = apply_updates(g, ups);
  EXPECT_EQ(g2.num_links(), 1u);
  const auto a = *g2.find("s.edu/a");
  EXPECT_TRUE(g2.is_dangling(a));
}

TEST(GraphUpdates, RemoveOneOfParallelEdges) {
  graph::GraphBuilder b;
  const auto a = b.add_page("s.edu/a", "s.edu");
  const auto c = b.add_page("s.edu/b", "s.edu");
  b.add_link(a, c);
  b.add_link(a, c);
  const auto g = std::move(b).build();
  const std::vector<LinkUpdate> ups{LinkUpdate::remove_link("s.edu/a", "s.edu/b")};
  const auto g2 = apply_updates(g, ups);
  EXPECT_EQ(g2.num_links(), 1u);
}

TEST(GraphUpdates, RemovingMissingLinkThrows) {
  const auto g = test::two_cycle();
  const std::vector<LinkUpdate> ups{LinkUpdate::remove_link("s.edu/b", "s.edu/b")};
  EXPECT_THROW((void)apply_updates(g, ups), std::invalid_argument);
}

TEST(GraphUpdates, UnknownPageThrows) {
  const auto g = test::two_cycle();
  const std::vector<LinkUpdate> ups{LinkUpdate::add_link("ghost.edu/x", "s.edu/a")};
  EXPECT_THROW((void)apply_updates(g, ups), std::invalid_argument);
}

TEST(GraphUpdates, AddPageAppendsWithoutDisturbingIds) {
  const auto g = test::two_cycle();
  const std::vector<LinkUpdate> ups{
      LinkUpdate::add_page("new.edu/fresh"),
      LinkUpdate::add_link("new.edu/fresh", "s.edu/a"),
  };
  const auto g2 = apply_updates(g, ups);
  EXPECT_EQ(g2.num_pages(), 3u);
  // Old ids preserved.
  EXPECT_EQ(g2.url(0), g.url(0));
  EXPECT_EQ(g2.url(1), g.url(1));
  const auto fresh = g2.find("new.edu/fresh");
  ASSERT_TRUE(fresh.has_value());
  EXPECT_EQ(*fresh, 2u);
  EXPECT_EQ(g2.in_degree(*g2.find("s.edu/a")), 2u);
}

TEST(GraphUpdates, AddPageIsIdempotent) {
  const auto g = test::two_cycle();
  const std::vector<LinkUpdate> ups{
      LinkUpdate::add_page("s.edu/a"),
      LinkUpdate::add_page("new.edu/x"),
      LinkUpdate::add_page("new.edu/x"),
  };
  const auto g2 = apply_updates(g, ups);
  EXPECT_EQ(g2.num_pages(), 3u);
}

TEST(GraphUpdates, ExternalLinkBookkeeping) {
  const auto g = test::leaky_pair();  // a has 1 external link
  const std::vector<LinkUpdate> ups{
      LinkUpdate::add_external("s.edu/a"),
      LinkUpdate::remove_external("s.edu/a"),
      LinkUpdate::add_external("s.edu/b"),
  };
  const auto g2 = apply_updates(g, ups);
  EXPECT_EQ(g2.external_out_degree(*g2.find("s.edu/a")), 1u);
  EXPECT_EQ(g2.external_out_degree(*g2.find("s.edu/b")), 1u);
}

TEST(GraphUpdates, RemoveExternalBelowZeroThrows) {
  const auto g = test::two_cycle();  // no external links
  const std::vector<LinkUpdate> ups{LinkUpdate::remove_external("s.edu/a")};
  EXPECT_THROW((void)apply_updates(g, ups), std::invalid_argument);
}

TEST(GraphUpdates, LinkToJustAddedPageWorksInOrder) {
  const auto g = test::two_cycle();
  const std::vector<LinkUpdate> ups{
      LinkUpdate::add_page("new.edu/p"),
      LinkUpdate::add_link("s.edu/a", "new.edu/p"),
  };
  const auto g2 = apply_updates(g, ups);
  const auto p = *g2.find("new.edu/p");
  EXPECT_EQ(g2.in_degree(p), 1u);
}

TEST(GraphUpdates, SpliceMatchesRebuildOracleLinkOnly) {
  const auto g = generate_synthetic_web(google2002_config(1500, 11));
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto ups = random_batch(g, seed, 40, /*allow_page_adds=*/false);
    const auto delta = apply_updates_delta(g, ups);
    EXPECT_TRUE(delta.incremental);
    const auto oracle = apply_updates_rebuild(g, ups);
    expect_same_graph(delta.graph, oracle);
  }
}

TEST(GraphUpdates, SpliceMatchesRebuildOracleWithPageAdds) {
  const auto g = generate_synthetic_web(google2002_config(1200, 23));
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto ups = random_batch(g, seed, 30, /*allow_page_adds=*/true);
    const auto delta = apply_updates_delta(g, ups);
    const auto oracle = apply_updates_rebuild(g, ups);
    expect_same_graph(delta.graph, oracle);
  }
}

TEST(GraphUpdates, LinkOnlyDeltaSharesPageTableAndReportsChangedRows) {
  const auto g = test::two_cycle();  // a <-> b
  const std::vector<LinkUpdate> ups{
      LinkUpdate::add_link("s.edu/a", "s.edu/a"),
      LinkUpdate::add_external("s.edu/b"),
  };
  const auto delta = apply_updates_delta(g, ups);
  EXPECT_TRUE(delta.incremental);
  const PageId a = *g.find("s.edu/a");
  const PageId b = *g.find("s.edu/b");
  // In-neighborhood changed only for a (new self-link).
  EXPECT_EQ(delta.in_changed, std::vector<PageId>{a});
  // Out-degrees changed for a (one more link) and b (one more external).
  EXPECT_EQ(delta.degree_changed, (std::vector<PageId>{a, b}));
  // URL storage is shared, not copied: same underlying string.
  EXPECT_EQ(delta.graph.url(a).data(), g.url(a).data());
}

TEST(GraphUpdates, BalancedSwapLeavesDegreeUnchanged) {
  // a -> b replaced by a -> a: in-rows of both targets change, but a's total
  // out-degree stays 2 (so its 1/d weight is untouched).
  graph::GraphBuilder bld;
  const auto a = bld.add_page("s.edu/a", "s.edu");
  const auto b = bld.add_page("s.edu/b", "s.edu");
  bld.add_link(a, b);
  bld.add_link(a, b);
  const auto g = std::move(bld).build();
  const std::vector<LinkUpdate> ups{
      LinkUpdate::remove_link("s.edu/a", "s.edu/b"),
      LinkUpdate::add_link("s.edu/a", "s.edu/a"),
  };
  const auto delta = apply_updates_delta(g, ups);
  EXPECT_TRUE(delta.incremental);
  EXPECT_EQ(delta.in_changed, (std::vector<PageId>{a, b}));
  EXPECT_TRUE(delta.degree_changed.empty());
}

TEST(GraphUpdates, PageAddingBatchIsNotIncremental) {
  const auto g = test::two_cycle();
  const std::vector<LinkUpdate> ups{LinkUpdate::add_page("new.edu/x")};
  const auto delta = apply_updates_delta(g, ups);
  EXPECT_FALSE(delta.incremental);
  EXPECT_EQ(delta.graph.num_pages(), 3u);
}

TEST(GraphUpdates, SequentialSemanticsAddThenRemoveTwice) {
  // Base has one a -> b; adding one more allows two removals, and a third
  // must throw — the delta path replays effective counts in order.
  const auto g = test::two_cycle();
  std::vector<LinkUpdate> ups{
      LinkUpdate::add_link("s.edu/a", "s.edu/b"),
      LinkUpdate::remove_link("s.edu/a", "s.edu/b"),
      LinkUpdate::remove_link("s.edu/a", "s.edu/b"),
  };
  const auto g2 = apply_updates(g, ups);
  EXPECT_EQ(g2.out_degree(*g2.find("s.edu/a")), 0u);
  ups.push_back(LinkUpdate::remove_link("s.edu/a", "s.edu/b"));
  EXPECT_THROW((void)apply_updates(g, ups), std::invalid_argument);
}

TEST(GraphUpdates, LargePageAddingBatchStaysFast) {
  // Perf-shaped regression for the once-quadratic new-page resolve: 10k
  // add_page + add_link pairs must clear well inside the tier-1 budget.
  const auto g = test::two_cycle();
  std::vector<LinkUpdate> ups;
  ups.reserve(20'000);
  for (int i = 0; i < 10'000; ++i) {
    const std::string url = "bulk.edu/p" + std::to_string(i) + ".html";
    ups.push_back(LinkUpdate::add_page(url));
    ups.push_back(LinkUpdate::add_link(url, "s.edu/a"));
  }
  const auto g2 = apply_updates(g, ups);
  EXPECT_EQ(g2.num_pages(), 10'002u);
  EXPECT_EQ(g2.in_degree(*g2.find("s.edu/a")), 10'001u);
}

TEST(GraphUpdates, SurvivesSyntheticScale) {
  const auto g = generate_synthetic_web(google2002_config(2000, 77));
  std::vector<LinkUpdate> ups;
  // Rewire a few pages.
  ups.push_back(LinkUpdate::add_page("brand-new.edu/index"));
  ups.push_back(LinkUpdate::add_link("brand-new.edu/index", g.url(0)));
  ups.push_back(LinkUpdate::add_link(g.url(1), "brand-new.edu/index"));
  const auto g2 = apply_updates(g, ups);
  EXPECT_EQ(g2.num_pages(), g.num_pages() + 1);
  EXPECT_EQ(g2.num_links(), g.num_links() + 2);
  EXPECT_EQ(g2.num_external_links(), g.num_external_links());
}

}  // namespace
}  // namespace p2prank::graph
