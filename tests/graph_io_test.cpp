#include "graph/graph_io.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph_stats.hpp"
#include "graph/synthetic_web.hpp"
#include "test_support.hpp"

namespace p2prank::graph {
namespace {

TEST(GraphIo, RoundTripsTinyGraph) {
  const auto g = test::leaky_pair();
  std::stringstream buffer;
  save_graph(g, buffer);
  const auto loaded = load_graph(buffer);

  EXPECT_EQ(loaded.num_pages(), g.num_pages());
  EXPECT_EQ(loaded.num_links(), g.num_links());
  EXPECT_EQ(loaded.num_external_links(), g.num_external_links());
  const auto a = loaded.find("s.edu/a");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(loaded.external_out_degree(*a), 1u);
  EXPECT_EQ(loaded.out_degree(*a), 2u);
}

TEST(GraphIo, RoundTripsSyntheticCrawl) {
  const auto g = generate_synthetic_web(google2002_config(3000, 21));
  std::stringstream buffer;
  save_graph(g, buffer);
  const auto loaded = load_graph(buffer);

  EXPECT_EQ(loaded.num_pages(), g.num_pages());
  EXPECT_EQ(loaded.num_links(), g.num_links());
  EXPECT_EQ(loaded.num_external_links(), g.num_external_links());
  EXPECT_EQ(loaded.num_sites(), g.num_sites());

  const auto s1 = compute_stats(g);
  const auto s2 = compute_stats(loaded);
  EXPECT_EQ(s1.intra_site_links, s2.intra_site_links);
  EXPECT_EQ(s1.dangling_pages, s2.dangling_pages);
}

TEST(GraphIo, CommentsAndBlankLinesIgnored) {
  std::stringstream in(
      "# a comment\n"
      "\n"
      "P s.edu/a s.edu\n"
      "P s.edu/b s.edu\n"
      "L s.edu/a s.edu/b\n");
  const auto g = load_graph(in);
  EXPECT_EQ(g.num_pages(), 2u);
  EXPECT_EQ(g.num_links(), 1u);
}

TEST(GraphIo, LinkToUndeclaredTargetBecomesExternal) {
  std::stringstream in(
      "P s.edu/a s.edu\n"
      "L s.edu/a other.com/x\n");
  const auto g = load_graph(in);
  EXPECT_EQ(g.num_links(), 0u);
  EXPECT_EQ(g.num_external_links(), 1u);
}

TEST(GraphIo, XRecordAccumulatesExternalCount) {
  std::stringstream in(
      "P s.edu/a s.edu\n"
      "X s.edu/a 5\n");
  const auto g = load_graph(in);
  const auto a = g.find("s.edu/a");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(g.external_out_degree(*a), 5u);
}

TEST(GraphIo, RejectsUnknownTag) {
  std::stringstream in("Q wat\n");
  EXPECT_THROW(load_graph(in), std::runtime_error);
}

TEST(GraphIo, RejectsMalformedRecords) {
  std::stringstream p_bad("P only-url\n");
  EXPECT_THROW(load_graph(p_bad), std::runtime_error);
  std::stringstream l_bad("L one\n");
  EXPECT_THROW(load_graph(l_bad), std::runtime_error);
  std::stringstream x_bad("X url notanumber\n");
  EXPECT_THROW(load_graph(x_bad), std::runtime_error);
}

TEST(GraphIo, RejectsUndeclaredLinkSource) {
  std::stringstream in("L ghost.edu/a ghost.edu/b\n");
  EXPECT_THROW(load_graph(in), std::runtime_error);
}

TEST(GraphIo, ErrorMessagesCarryLineNumbers) {
  std::stringstream in(
      "P s.edu/a s.edu\n"
      "BAD record\n");
  try {
    (void)load_graph(in);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(GraphIo, RejectsTrailingTokens) {
  std::stringstream p_bad("P s.edu/a s.edu extra\n");
  EXPECT_THROW(load_graph(p_bad), std::runtime_error);
  std::stringstream l_bad(
      "P s.edu/a s.edu\n"
      "L s.edu/a s.edu/a junk\n");
  EXPECT_THROW(load_graph(l_bad), std::runtime_error);
  std::stringstream x_bad(
      "P s.edu/a s.edu\n"
      "X s.edu/a 3 junk\n");
  EXPECT_THROW(load_graph(x_bad), std::runtime_error);
}

TEST(GraphIo, RejectsZeroCountXRecord) {
  std::stringstream in(
      "P s.edu/a s.edu\n"
      "X s.edu/a 0\n");
  try {
    (void)load_graph(in);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(GraphIo, ConflictingPageRecordsCarryLineNumber) {
  // Same URL declared under two different sites: the builder's conflict
  // throw must surface as a line-numbered parse error, not invalid_argument.
  std::stringstream in(
      "P s.edu/a s.edu\n"
      "P s.edu/a other.edu\n");
  try {
    (void)load_graph(in);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("conflicting"), std::string::npos);
  }
}

TEST(GraphIo, FileRoundTrip) {
  const auto g = test::two_cycle();
  const std::string path = ::testing::TempDir() + "/p2prank_io_test.graph";
  save_graph_file(g, path);
  const auto loaded = load_graph_file(path);
  EXPECT_EQ(loaded.num_pages(), 2u);
  EXPECT_EQ(loaded.num_links(), 2u);
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW(load_graph_file("/nonexistent/path.graph"), std::runtime_error);
}

/// Binary round trips must reproduce the text-built graph exactly —
/// identity, CSR rows, and externals.
void expect_binary_round_trip(const WebGraph& g) {
  std::stringstream buffer;
  save_graph_binary(g, buffer);
  const auto loaded = load_graph_binary(buffer);
  ASSERT_EQ(loaded.num_pages(), g.num_pages());
  ASSERT_EQ(loaded.num_sites(), g.num_sites());
  ASSERT_EQ(loaded.num_links(), g.num_links());
  ASSERT_EQ(loaded.num_external_links(), g.num_external_links());
  for (PageId p = 0; p < g.num_pages(); ++p) {
    ASSERT_EQ(loaded.url(p), g.url(p));
    ASSERT_EQ(loaded.site_name(loaded.site(p)), g.site_name(g.site(p)));
    ASSERT_EQ(loaded.external_out_degree(p), g.external_out_degree(p));
    const auto out_a = loaded.out_links(p);
    const auto out_b = g.out_links(p);
    ASSERT_EQ(std::vector<PageId>(out_a.begin(), out_a.end()),
              std::vector<PageId>(out_b.begin(), out_b.end()));
    const auto in_a = loaded.in_links(p);
    const auto in_b = g.in_links(p);
    ASSERT_EQ(std::vector<PageId>(in_a.begin(), in_a.end()),
              std::vector<PageId>(in_b.begin(), in_b.end()));
  }
}

TEST(GraphBinaryIo, RoundTripsTinyAndEmptyGraphs) {
  expect_binary_round_trip(test::leaky_pair());
  expect_binary_round_trip(test::two_cycle());
  GraphBuilder empty;
  expect_binary_round_trip(std::move(empty).build());
}

TEST(GraphBinaryIo, RoundTripsParallelEdgesAndExternals) {
  GraphBuilder b;
  const auto a = b.add_page("s.edu/a", "s.edu");
  const auto c = b.add_page("t.edu/b", "t.edu");
  b.add_link(a, c);
  b.add_link(a, c);
  b.add_link(c, a);
  b.add_external_link(a, 7);
  expect_binary_round_trip(std::move(b).build());
}

TEST(GraphBinaryIo, RoundTripsSyntheticCrawl) {
  expect_binary_round_trip(generate_synthetic_web(google2002_config(2000, 33)));
}

TEST(GraphBinaryIo, FileRoundTrip) {
  const auto g = test::leaky_pair();
  const std::string path = ::testing::TempDir() + "/p2prank_io_test.bin";
  save_graph_binary_file(g, path);
  const auto loaded = load_graph_binary_file(path);
  EXPECT_EQ(loaded.num_pages(), g.num_pages());
  EXPECT_EQ(loaded.num_links(), g.num_links());
  EXPECT_EQ(loaded.num_external_links(), g.num_external_links());
}

TEST(GraphBinaryIo, RejectsBadMagic) {
  std::stringstream in("notmagic and then some bytes");
  EXPECT_THROW((void)load_graph_binary(in), std::runtime_error);
}

TEST(GraphBinaryIo, RejectsTruncatedAndTrailingStreams) {
  std::stringstream buffer;
  save_graph_binary(test::two_cycle(), buffer);
  const std::string bytes = buffer.str();

  std::stringstream truncated(bytes.substr(0, bytes.size() - 3));
  EXPECT_THROW((void)load_graph_binary(truncated), std::runtime_error);

  std::stringstream trailing(bytes + "x");
  EXPECT_THROW((void)load_graph_binary(trailing), std::runtime_error);
}

}  // namespace
}  // namespace p2prank::graph
