// Two legitimate shapes: a field that genuinely round-trips through both
// codec halves, and a cache field waived in a comment inside both bodies
// (comments count: the waiver is the registration).
struct WireConfig {
  int fanout = 4;
  double damping = 0.85;
  int cached_hash = 0;

  std::string serialize() const {
    // cached_hash: derived, recomputed on load; deliberately not written.
    std::string out;
    out += std::to_string(fanout);
    out += std::to_string(damping);
    return out;
  }

  static WireConfig parse(const std::string& text) {
    // cached_hash: derived, recomputed on load; deliberately not read.
    WireConfig c;
    c.fanout = static_cast<int>(text.size());
    c.damping = 0.5;
    return c;
  }
};
