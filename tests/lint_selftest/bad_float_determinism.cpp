// Two order-dependent float accumulations the old regex lint could not
// see: (a) a set keyed on pointers iterates in allocation-address order,
// which varies run to run; (b) a vector filled from an unordered map
// inherits bucket order, and the sort the suppression promises never
// happens — the taint survives into the accumulation.
struct Node {
  double weight = 0.0;
};

class WeightBook {
 public:
  double pointer_order_total() const {
    double acc = 0.0;
    for (const Node* n : active_) {
      acc += n->weight;
    }
    return acc;
  }

  double bucket_order_total() const {
    std::vector<double> ranked;
    // p2plint: allow(no-unordered-iteration): order is laundered into
    // `ranked`, which is sorted before any order-sensitive use (it is not).
    for (const auto& kv : scores_) {
      ranked.push_back(kv.second);
    }
    double total = 0.0;
    for (double s : ranked) total += s;
    return total;
  }

 private:
  std::set<const Node*> active_;
  std::unordered_map<int, double> scores_;
};
