// Same generator gap as bad_scenario_op_matrix.cpp, waived with the
// reviewed reason (an op kept dispatchable for hand-written replay traces
// only).
enum class OpKind : unsigned char {
  kJoin,
  kLeave,
  // p2plint: allow(scenario-op-matrix): reachable from hand-written replay
  // traces only by design; generator emission tracked separately.
  kProbe,
};

std::vector<OpKind> from_seed(unsigned long seed) {
  std::vector<OpKind> ops;
  if (seed % 2 == 0) {
    ops.push_back(OpKind::kJoin);
  }
  ops.push_back(OpKind::kLeave);
  return ops;
}
