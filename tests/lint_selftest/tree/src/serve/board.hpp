// Frozen lint-corpus tree: confined state whose escape happens in the
// .cpp, and a pointer-keyed container whose iteration order is
// allocation-dependent.
namespace serve {

class Board {
 public:
  void refresh();
  double tag_weight() const;
  void write_cells(std::ostream& out) const;

 private:
  ThreadPool pool_;
  std::vector<double> cells_ P2P_EXTERNALLY_SYNCHRONIZED;
  std::set<const char*> tags_;
};

}  // namespace serve
