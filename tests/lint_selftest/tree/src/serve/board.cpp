// Frozen lint-corpus tree: the confinement escape, a pointer-order float
// accumulation, and a wire writer missing its version literal — all
// resolved against declarations in board.hpp.
#include "serve/board.hpp"

namespace serve {

void Board::refresh() {
  (void)obs::names::kBoardRefreshes;
  pool_.parallel_for_grains(0, 64, 8, [&](int b, int e) {
    for (int i = b; i < e; ++i) cells_[i] += 1.0;
  });
}

double Board::tag_weight() const {
  double acc = 0.0;
  for (const char* t : tags_) {
    acc += static_cast<double>(t[0]);
  }
  return acc;
}

void Board::write_cells(std::ostream& out) const {
  for (double c : cells_) {
    out << c << '\n';
  }
}

}  // namespace serve
