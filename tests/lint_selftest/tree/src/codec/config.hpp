// Frozen lint-corpus tree: a round-trip codec that drops a field in
// parse(), and a metric emitted under a raw string literal.
namespace codec {

struct Config {
  int fanout = 4;
  double damping = 0.85;
  int stale_limit = 3;

  std::string serialize() const {
    std::string out;
    out += std::to_string(fanout);
    out += std::to_string(damping);
    out += std::to_string(stale_limit);
    return out;
  }

  static Config parse(const std::string& text) {
    Config c;
    c.fanout = static_cast<int>(text.size());
    c.damping = 0.5;
    return c;
  }
};

inline void record_load(Registry& metrics) {
  metrics.counter("codec.loads") += 1;
}

}  // namespace codec
