// Frozen lint-corpus tree: one referenced name (board.cpp), one orphan.
namespace obs::names {
inline constexpr std::string_view kBoardRefreshes = "board.refreshes";
inline constexpr std::string_view kBoardOrphan = "board.orphan";
}  // namespace obs::names
