// Frozen lint-corpus tree: a mini op registry. Both ops are dispatched by
// the codec in ops.cpp, but from_seed only ever emits kSpin — kDrop is
// dead to every generated scenario.
enum class OpKind {
  kSpin,
  kDrop,
};

std::string_view op_kind_name(OpKind kind);
std::vector<OpKind> from_seed(unsigned long seed);
