// Frozen lint-corpus tree: codec handles every op (registry leg is
// clean); the generator does not (matrix leg fires in ops.hpp).
#include "check/ops.hpp"

std::string_view op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kSpin:
      return "spin";
    case OpKind::kDrop:
      return "drop";
  }
  return "?";
}

std::vector<OpKind> from_seed(unsigned long seed) {
  std::vector<OpKind> ops;
  for (unsigned long i = 0; i < seed % 4; ++i) {
    ops.push_back(OpKind::kSpin);
  }
  return ops;
}
