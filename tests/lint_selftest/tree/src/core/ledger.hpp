// Frozen lint-corpus tree. This header declares members whose types the
// .cpp side must resolve across the header boundary, plus one raw
// std::mutex the mutex-annotations rule must flag.
namespace util {
class Mutex {};
class MutexLock {
 public:
  explicit MutexLock(Mutex& m) : m_(&m) {}

 private:
  Mutex* m_;
};
}  // namespace util

namespace core {

class Ledger {
 public:
  void tick();
  void flush();
  void audit();
  double unstable_total() const;

 private:
  // Acquires stats_mu_: the lock-order analysis must see the acquisition
  // through this helper when tick() calls it while holding order_mu_.
  void locked_touch();

  util::Mutex order_mu_;
  util::Mutex stats_mu_;
  std::unordered_map<int, double> scores_;
  std::mutex raw_mu_;
  long ticks_ = 0;
};

}  // namespace core
