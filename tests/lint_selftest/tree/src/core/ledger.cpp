// Frozen lint-corpus tree: lock-order inversion routed through a helper
// function, cross-header member-type resolution, and a suppressed
// order-insensitive walk that must stay suppressed.
#include "core/ledger.hpp"

namespace core {

void Ledger::locked_touch() {
  util::MutexLock lock(stats_mu_);
  ++ticks_;
}

void Ledger::tick() {
  util::MutexLock lock(order_mu_);
  locked_touch();
}

void Ledger::flush() {
  util::MutexLock lock(stats_mu_);
  util::MutexLock inner(order_mu_);
  ++ticks_;
}

double Ledger::unstable_total() const {
  double acc = 0.0;
  for (const auto& kv : scores_) {
    acc += kv.second;
  }
  return acc;
}

void Ledger::audit() {
  // p2plint: allow(no-unordered-iteration): order-insensitive count; every
  // entry contributes 1 regardless of visit order.
  for (const auto& kv : scores_) {
    ++ticks_;
    (void)kv;
  }
}

}  // namespace core
