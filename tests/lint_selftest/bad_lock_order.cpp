// Planted AB/BA lock-order inversion: refresh() nests order_mu_ then
// stats_mu_, while flush() nests stats_mu_ then order_mu_. Two threads
// running these concurrently deadlock the day they race; the cycle in the
// lock-acquisition graph is visible statically.
namespace util {
class Mutex {};
class MutexLock {
 public:
  explicit MutexLock(Mutex& m) : m_(&m) {}

 private:
  Mutex* m_;
};
}  // namespace util

class LedgerDemo {
 public:
  void refresh() {
    util::MutexLock outer(order_mu_);
    util::MutexLock inner(stats_mu_);
    ++refreshes_;
  }

  void flush() {
    util::MutexLock outer(stats_mu_);
    util::MutexLock inner(order_mu_);
    ++flushes_;
  }

 private:
  util::Mutex order_mu_;
  util::Mutex stats_mu_;
  long refreshes_ = 0;
  long flushes_ = 0;
};
