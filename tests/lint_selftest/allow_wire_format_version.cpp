// Fixture: suppressing the version-header check for a throwaway stream.
#include <ostream>

// p2plint: allow(wire-format-version): debug dump read by humans only,
// never loaded back
void save_ranks(std::ostream& out) {
  out << 0.25 << '\n';
  out << 0.75 << '\n';
}
