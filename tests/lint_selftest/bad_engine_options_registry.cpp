// Fixture: an EngineOptions knob added without a decision in validated().
// Every field needs a range check there, or a comment recording that any
// value is valid — silent defaults are how bad configs reach production.
struct EngineOptions {
  double alpha = 0.85;
  double mystery_knob = 0.0;
};

EngineOptions validated(EngineOptions o) {
  if (!(o.alpha > 0.0 && o.alpha < 1.0)) o.alpha = 0.85;
  return o;
}
