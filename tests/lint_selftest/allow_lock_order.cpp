// Same AB/BA shape as bad_lock_order.cpp, but the inverted acquisition is
// suppressed with a reviewed reason, which removes that edge from the
// acquisition graph and leaves it acyclic.
namespace util {
class Mutex {};
class MutexLock {
 public:
  explicit MutexLock(Mutex& m) : m_(&m) {}

 private:
  Mutex* m_;
};
}  // namespace util

class LedgerDemo {
 public:
  void refresh() {
    util::MutexLock outer(order_mu_);
    util::MutexLock inner(stats_mu_);
    ++refreshes_;
  }

  void flush() {
    util::MutexLock outer(stats_mu_);
    // p2plint: allow(lock-order): flush() runs only during single-threaded
    // shutdown after the pool has drained; reviewed 2026-08.
    util::MutexLock inner(order_mu_);
    ++flushes_;
  }

 private:
  util::Mutex order_mu_;
  util::Mutex stats_mu_;
  long refreshes_ = 0;
  long flushes_ = 0;
};
