// The compliant versions: the pointer-order total is suppressed with a
// reviewed reason, and the bucket-order path actually sorts the snapshot
// before accumulating, which clears the taint — no pragma needed there.
struct Node {
  double weight = 0.0;
};

class WeightBookSafe {
 public:
  double pointer_order_total() const {
    double acc = 0.0;
    // p2plint: allow(float-determinism): feeds a human-readable log line
    // only; never compared bitwise across runs.
    for (const Node* n : active_) {
      acc += n->weight;
    }
    return acc;
  }

  double bucket_order_total() const {
    std::vector<double> ranked;
    // p2plint: allow(no-unordered-iteration): snapshot is sorted below
    // before any order-sensitive use.
    for (const auto& kv : scores_) {
      ranked.push_back(kv.second);
    }
    std::sort(ranked.begin(), ranked.end());
    double total = 0.0;
    for (double s : ranked) total += s;
    return total;
  }

 private:
  std::set<const Node*> active_;
  std::unordered_map<int, double> scores_;
};
