// Fixture: suppressing the registry check on a field validated elsewhere.
struct EngineOptions {
  double alpha = 0.85;
  // p2plint: allow(engine-options-registry): checked against the graph in
  // the constructor, where the page count is known
  double mystery_knob = 0.0;
};

EngineOptions validated(EngineOptions o) {
  if (!(o.alpha > 0.0 && o.alpha < 1.0)) o.alpha = 0.85;
  return o;
}
