// Fixture: a raw std::mutex member. libstdc++ mutexes carry no capability
// attributes, so clang's -Wthread-safety cannot check anything guarded by
// one — util::Mutex + P2P_GUARDED_BY is the project discipline.
#include <mutex>

class Counter {
 public:
  void bump();

 private:
  std::mutex mutex_;
  long value_ = 0;
};
