// Fixture: floating-point accumulation over hash-bucket order — the sum's
// rounding depends on where entries landed, so two logically identical
// tables can produce bitwise-different totals.
#include <unordered_map>

double total_outbound() {
  std::unordered_map<int, double> bytes_by_peer;
  bytes_by_peer[3] = 0.1;
  bytes_by_peer[7] = 0.2;
  double total = 0.0;
  for (const auto& [peer, bytes] : bytes_by_peer) {
    (void)peer;
    total += bytes;
  }
  return total;
}
