// Fixture: the escape hatch. Harness instrumentation may read the wall
// clock when the suppression says why.
#include <chrono>

// p2plint: allow(no-wallclock-rng): operator-facing stopwatch, not
// simulation state
using InstrumentationClock = std::chrono::steady_clock;
