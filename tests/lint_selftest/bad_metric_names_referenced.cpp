// kOrphanedGauge is registered but no call site ever emits it: any
// dashboard watching the name sees permanent silence and nobody notices.
// The reference matrix closes the loop metric-name-registry opens.
namespace obs::names {
inline constexpr std::string_view kServeRankLookups = "serve.rank.lookups";
inline constexpr std::string_view kOrphanedGauge = "serve.orphaned.gauge";
}  // namespace obs::names

void touch_lookups(Registry& reg) {
  reg.bump(obs::names::kServeRankLookups);
}
