// Fixture: the suppression path, plus the intended pattern (a registry
// constant at the call site) which must lint clean without a pragma.
#include <cstdint>
#include <string_view>

namespace names {
inline constexpr std::string_view kSteps = "engine.steps";
}

struct Registry {
  std::uint64_t& counter(std::string_view name);
};

void record_step(Registry& m) {
  m.counter(names::kSteps) += 1;
  // p2plint: allow(metric-name-registry): throwaway name in a debugging
  // harness that never reaches a snapshot consumers diff
  m.counter("debug.scratch") += 1;
}
