// stale_limit is written by serialize() but never read back by parse():
// a saved WireConfig silently loses the field on reload — serialize and
// replay diverge. The round-trip matrix requires every member in both.
struct WireConfig {
  int fanout = 4;
  double damping = 0.85;
  int stale_limit = 3;

  std::string serialize() const {
    std::string out;
    out += std::to_string(fanout);
    out += std::to_string(damping);
    out += std::to_string(stale_limit);
    return out;
  }

  static WireConfig parse(const std::string& text) {
    WireConfig c;
    c.fanout = static_cast<int>(text.size());
    c.damping = 0.5;
    return c;
  }
};
