// Fixture: suppressing the wrapper requirement at an interop boundary.
#include <mutex>

class ThirdPartyBridge {
 private:
  // p2plint: allow(mutex-annotations): handed to a C callback that takes
  // std::mutex* — the wrapper cannot cross that ABI
  std::mutex raw_mutex_;
};
