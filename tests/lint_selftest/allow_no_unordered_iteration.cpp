// Fixture: the escape hatch for order-independent walks.
#include <unordered_map>

void reset_all() {
  std::unordered_map<int, double> state_by_peer;
  // p2plint: allow(no-unordered-iteration): per-entry reset, each visit
  // touches only its own slot — order cannot matter
  for (auto& [peer, state] : state_by_peer) {
    (void)peer;
    state = 0.0;
  }
}
