// kProbe is a fully dispatched chaos op that the scenario generator never
// emits: no seed, sweep, or fuzz run can ever reach it, so its handling
// code is untested dead weight. The emission matrix catches the rot.
enum class OpKind : unsigned char {
  kJoin,
  kLeave,
  kProbe,
};

std::vector<OpKind> from_seed(unsigned long seed) {
  std::vector<OpKind> ops;
  if (seed % 2 == 0) {
    ops.push_back(OpKind::kJoin);
  }
  ops.push_back(OpKind::kLeave);
  return ops;
}
