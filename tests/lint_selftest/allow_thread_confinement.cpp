// Same capture shape as bad_thread_confinement.cpp, suppressed with the
// reviewed argument for why the escape is safe here.
struct RankTable {
  void refresh() {
    // p2plint: allow(thread-confinement): the publisher is quiesced for the
    // whole refresh and grains index disjoint ranges; reviewed 2026-08.
    pool_.parallel_for_grains(0, 64, 8, [&](int b, int e) {
      for (int i = b; i < e; ++i) frontier_[i] += 1;
    });
  }

  ThreadPool pool_;
  std::vector<int> frontier_ P2P_EXTERNALLY_SYNCHRONIZED;
};
