// Fixture: a chaos op added to the enum but not to the trace codec. A
// schedule using it could never round-trip through a .trace file.
#include <string_view>

enum class OpKind {
  kCrash,
  kTeleport,
};

std::string_view op_kind_name(OpKind kind) noexcept {
  switch (kind) {
    case OpKind::kCrash: return "crash";
    default: return "?";
  }
}
