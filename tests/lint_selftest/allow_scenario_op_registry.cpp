// Fixture: suppressing the registry check for a staged enumerator.
#include <string_view>

enum class OpKind {
  kCrash,
  // p2plint: allow(scenario-op-registry): staged op — codec wiring lands
  // with the feature PR, the enumerator reserves the trace token
  kTeleport,
};

std::string_view op_kind_name(OpKind kind) noexcept {
  switch (kind) {
    case OpKind::kCrash: return "crash";
    default: return "?";
  }
}
