// A referenced name is clean; a name reserved ahead of its emitter is
// waived with the reason recorded.
namespace obs::names {
inline constexpr std::string_view kServeRankLookups = "serve.rank.lookups";
// p2plint: allow(metric-names-referenced): name reserved for the next
// serving-layer PR so dashboards can be provisioned first.
inline constexpr std::string_view kReservedGauge = "serve.reserved.gauge";
}  // namespace obs::names

void touch_lookups(Registry& reg) {
  reg.bump(obs::names::kServeRankLookups);
}
