// Planted thread-confinement escape: frontier_ is declared
// P2P_EXTERNALLY_SYNCHRONIZED (confined to the simulation thread — that is
// the entire justification for touching it without a lock), but refresh()
// captures it by reference into a pool lambda, moving the access onto
// worker threads where the confinement argument evaporates.
struct RankTable {
  void refresh() {
    pool_.parallel_for_grains(0, 64, 8, [&](int b, int e) {
      for (int i = b; i < e; ++i) frontier_[i] += 1;
    });
  }

  ThreadPool pool_;
  std::vector<int> frontier_ P2P_EXTERNALLY_SYNCHRONIZED;
};
