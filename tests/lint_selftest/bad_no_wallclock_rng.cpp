// Fixture: ambient entropy in simulation code. std::random_device makes a
// run irreproducible from its seed — p2plint must reject it.
#include <random>

int entropy_seed() {
  std::random_device rd;
  return static_cast<int>(rd());
}
