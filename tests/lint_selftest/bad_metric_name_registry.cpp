// Fixture: an ad-hoc string literal naming a metric at the call site.
// Snapshot keys are API — every name must come from the registry header
// (src/obs/metric_names.hpp), never be minted inline.
#include <cstdint>
#include <string_view>

struct Registry {
  std::uint64_t& counter(std::string_view name);
};

void record_step(Registry& m) { m.counter("engine.adhoc_steps") += 1; }
