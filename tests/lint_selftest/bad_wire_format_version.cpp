// Fixture: a checkpoint writer with no format version. The loader of this
// stream can never distinguish "old layout" from "corrupt".
#include <ostream>

void save_ranks(std::ostream& out) {
  out << 0.25 << '\n';
  out << 0.75 << '\n';
}
