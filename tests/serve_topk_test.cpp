// Per-shard top-K index and K-way merge vs brute force (DESIGN.md §12):
// adversarial shapes — ties, K past the shard size, K = 0, K = N, empty
// shards — plus snapshot-level top_k() and serialize() determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <vector>

#include "serve/snapshot.hpp"
#include "serve/topk.hpp"
#include "util/rng.hpp"

namespace p2prank::serve {
namespace {

std::vector<TopKEntry> brute_force(std::vector<TopKEntry> entries,
                                   std::size_t k) {
  std::sort(entries.begin(), entries.end(), ranks_before);
  entries.resize(std::min(k, entries.size()));
  return entries;
}

std::vector<TopKEntry> offer_all(const std::vector<TopKEntry>& entries,
                                 std::size_t capacity) {
  std::vector<TopKEntry> heap;
  for (const TopKEntry& e : entries) topk_offer(heap, capacity, e);
  topk_finalize(heap);
  return heap;
}

TEST(ServeTopK, OrderIsRankDescThenPageAsc) {
  EXPECT_TRUE(ranks_before({0, 2.0}, {1, 1.0}));
  EXPECT_FALSE(ranks_before({1, 1.0}, {0, 2.0}));
  // Ties break toward the smaller page id — a strict total order.
  EXPECT_TRUE(ranks_before({3, 1.0}, {5, 1.0}));
  EXPECT_FALSE(ranks_before({5, 1.0}, {3, 1.0}));
  EXPECT_FALSE(ranks_before({5, 1.0}, {5, 1.0}));
}

TEST(ServeTopK, BoundedHeapMatchesBruteForceOnRandomInputs) {
  util::Rng rng(7);
  for (int round = 0; round < 50; ++round) {
    const std::size_t n = 1 + rng.below(60);
    std::vector<TopKEntry> entries;
    for (std::size_t i = 0; i < n; ++i) {
      // Coarse ranks: plenty of exact ties to exercise the tie-break.
      entries.push_back({static_cast<std::uint32_t>(i),
                         static_cast<double>(rng.below(8)) / 4.0});
    }
    for (const std::size_t capacity : {std::size_t{0}, std::size_t{1},
                                       std::size_t{5}, n, n + 10}) {
      EXPECT_EQ(offer_all(entries, capacity), brute_force(entries, capacity))
          << "round " << round << " capacity " << capacity;
    }
  }
}

TEST(ServeTopK, CapacityZeroRetainsNothing) {
  std::vector<TopKEntry> heap;
  topk_offer(heap, 0, {1, 5.0});
  topk_offer(heap, 0, {2, 9.0});
  EXPECT_TRUE(heap.empty());
}

TEST(ServeTopK, MergeMatchesBruteForceAcrossShards) {
  util::Rng rng(11);
  for (int round = 0; round < 30; ++round) {
    const std::size_t shards = 1 + rng.below(6);
    const std::size_t capacity = 1 + rng.below(8);
    std::vector<std::vector<TopKEntry>> lists(shards);
    std::vector<TopKEntry> all;
    std::uint32_t page = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      const std::size_t size = rng.below(12);  // empty shards happen
      std::vector<TopKEntry> shard_entries;
      for (std::size_t i = 0; i < size; ++i) {
        const TopKEntry e{page++, static_cast<double>(rng.below(6)) / 3.0};
        shard_entries.push_back(e);
      }
      lists[s] = offer_all(shard_entries, capacity);
      // The merge is exact only up to the per-shard capacity, so compare
      // against brute force over what the indexes retained.
      for (const TopKEntry& e : lists[s]) all.push_back(e);
    }
    std::vector<std::span<const TopKEntry>> spans(lists.begin(), lists.end());
    for (const std::size_t k : {std::size_t{0}, std::size_t{1}, capacity,
                                capacity * shards + 5}) {
      EXPECT_EQ(merge_top_k(spans, k), brute_force(all, k))
          << "round " << round << " k " << k;
    }
  }
}

TEST(ServeTopK, MergeHandlesAllEmptyLists) {
  const std::vector<std::vector<TopKEntry>> lists(4);
  std::vector<std::span<const TopKEntry>> spans(lists.begin(), lists.end());
  EXPECT_TRUE(merge_top_k(spans, 10).empty());
  EXPECT_TRUE(merge_top_k({}, 10).empty());
}

// --- snapshot-level ---------------------------------------------------------

/// Publish one synthetic state and return the store's snapshot.
std::shared_ptr<const RankSnapshot> publish_one(
    SnapshotStore& store, const std::vector<double>& ranks,
    const std::vector<std::uint32_t>& assignment, std::uint32_t shards) {
  store.publish(1.0, ranks, assignment, shards);
  return store.acquire();
}

TEST(ServeSnapshotTopK, GlobalTopKMatchesBruteForceIncludingKEqualsN) {
  util::Rng rng(23);
  const std::size_t n = 64;
  const std::uint32_t shards = 5;
  std::vector<double> ranks(n);
  std::vector<std::uint32_t> assignment(n);
  for (std::size_t i = 0; i < n; ++i) {
    ranks[i] = static_cast<double>(rng.below(10)) / 4.0;  // many ties
    assignment[i] = static_cast<std::uint32_t>(rng.below(shards));
  }
  SnapshotStore store(/*top_k_capacity=*/8);
  const auto snap = publish_one(store, ranks, assignment, shards);
  ASSERT_NE(snap, nullptr);

  std::vector<TopKEntry> all;
  for (std::size_t i = 0; i < n; ++i) {
    all.push_back({static_cast<std::uint32_t>(i), ranks[i]});
  }
  // k <= capacity exercises the K-way merge; k > capacity (up to k = N and
  // beyond) the dense fallback. Both must agree with brute force.
  for (const std::size_t k : {std::size_t{0}, std::size_t{1}, std::size_t{8},
                              std::size_t{9}, std::size_t{32}, n, n + 7}) {
    EXPECT_EQ(snap->top_k(k), brute_force(all, k)) << "k=" << k;
  }
}

TEST(ServeSnapshotTopK, EmptyShardsAfterChurnServeEmptyIndexes) {
  // Shards 1 and 3 own nothing — the post-churn shape.
  const std::vector<double> ranks = {1.0, 3.0, 2.0, 4.0};
  const std::vector<std::uint32_t> assignment = {0, 2, 0, 2};
  SnapshotStore store(4);
  const auto snap = publish_one(store, ranks, assignment, 4);
  ASSERT_NE(snap, nullptr);
  EXPECT_TRUE(snap->epoch_consistent());
  EXPECT_EQ(snap->shard(1).pages, 0u);
  EXPECT_TRUE(snap->shard(1).top.empty());
  EXPECT_TRUE(snap->shard_top_k(1, 5).empty());
  EXPECT_EQ(snap->shard(3).pages, 0u);
  // The merge skips the empty shards and still finds the global order.
  const std::vector<TopKEntry> expect = {{3, 4.0}, {1, 3.0}};
  EXPECT_EQ(snap->top_k(2), expect);
  EXPECT_EQ(snap->shard_top_k(2, 1), (std::vector<TopKEntry>{{3, 4.0}}));
}

TEST(ServeSnapshotTopK, SerializeIsDeterministicAndEpochStamped) {
  const std::vector<double> ranks = {0.25, 1.5, 0.75};
  const std::vector<std::uint32_t> assignment = {0, 1, 0};
  SnapshotStore a(2);
  SnapshotStore b(2);
  std::ostringstream sa, sb;
  publish_one(a, ranks, assignment, 2)->serialize(sa);
  publish_one(b, ranks, assignment, 2)->serialize(sb);
  EXPECT_EQ(sa.str(), sb.str());
  EXPECT_NE(sa.str().find("p2prank-snapshot-v1"), std::string::npos);
  EXPECT_NE(sa.str().find("epoch 1"), std::string::npos);
}

}  // namespace
}  // namespace p2prank::serve
