#include "overlay/can.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace p2prank::overlay {
namespace {

CanConfig config(std::uint32_t n, int d = 2) {
  CanConfig cfg;
  cfg.num_nodes = n;
  cfg.dimensions = d;
  cfg.seed = 31;
  return cfg;
}

TEST(Can, RejectsBadConfig) {
  EXPECT_THROW(CanOverlay{config(0)}, std::invalid_argument);
  EXPECT_THROW(CanOverlay{config(8, 0)}, std::invalid_argument);
  EXPECT_THROW(CanOverlay{config(8, 9)}, std::invalid_argument);
}

TEST(Can, ZonesTileTheSpace) {
  const CanOverlay o(config(64));
  // Total volume of all zones must be 1 (they tile [0,1)^2).
  double volume = 0.0;
  for (NodeIndex n = 0; n < 64; ++n) {
    double v = 1.0;
    for (const auto& [lo, hi] : o.zone_of(n)) v *= hi - lo;
    volume += v;
  }
  EXPECT_NEAR(volume, 1.0, 1e-12);
}

TEST(Can, ZonesAreDisjoint) {
  const CanOverlay o(config(32));
  for (NodeIndex a = 0; a < 32; ++a) {
    for (NodeIndex b = a + 1; b < 32; ++b) {
      const auto za = o.zone_of(a);
      const auto zb = o.zone_of(b);
      bool overlap_all = true;
      for (std::size_t j = 0; j < za.size(); ++j) {
        if (std::max(za[j].first, zb[j].first) >=
            std::min(za[j].second, zb[j].second)) {
          overlap_all = false;
          break;
        }
      }
      EXPECT_FALSE(overlap_all) << a << " vs " << b;
    }
  }
}

TEST(Can, OwnIdMapsToOwnZone) {
  const CanOverlay o(config(128));
  for (NodeIndex n = 0; n < 128; ++n) {
    EXPECT_EQ(o.responsible_node(o.id_of(n)), n);
  }
}

TEST(Can, ResponsibleNodeIsDeterministic) {
  const CanOverlay o(config(64));
  util::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const NodeId key = node_id_from_u64(rng.next());
    EXPECT_EQ(o.responsible_node(key), o.responsible_node(key));
  }
}

TEST(Can, RouteEndsAtResponsibleNode) {
  const CanOverlay o(config(256));
  util::Rng rng(2);
  for (int trial = 0; trial < 300; ++trial) {
    const auto from = static_cast<NodeIndex>(rng.below(256));
    const NodeId key = node_id_from_u64(rng.next());
    const auto path = o.route(from, key);
    const NodeIndex dest = o.responsible_node(key);
    if (from == dest) {
      EXPECT_TRUE(path.empty());
    } else {
      ASSERT_FALSE(path.empty());
      EXPECT_EQ(path.back(), dest);
    }
  }
}

TEST(Can, HopsAreNeighbors) {
  const CanOverlay o(config(128));
  util::Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    const auto from = static_cast<NodeIndex>(rng.below(128));
    NodeIndex cur = from;
    for (const NodeIndex hop : o.route(from, node_id_from_u64(rng.next()))) {
      const auto nb = o.neighbors(cur);
      ASSERT_TRUE(std::find(nb.begin(), nb.end(), hop) != nb.end());
      cur = hop;
    }
  }
}

TEST(Can, NeighborRelationIsSymmetric) {
  const CanOverlay o(config(100));
  for (NodeIndex a = 0; a < 100; ++a) {
    for (const NodeIndex b : o.neighbors(a)) {
      const auto nb = o.neighbors(b);
      EXPECT_TRUE(std::find(nb.begin(), nb.end(), a) != nb.end())
          << a << " -> " << b;
    }
  }
}

TEST(Can, MeanNeighborsIsOrderTwoD) {
  // CAN: each node keeps O(2d) neighbors, independent of N.
  const CanOverlay small(config(64, 2));
  const CanOverlay large(config(1024, 2));
  const auto ps = probe_overlay(small, 10, 1);
  const auto pl = probe_overlay(large, 10, 1);
  EXPECT_LT(std::fabs(pl.mean_neighbors - ps.mean_neighbors),
            0.8 * ps.mean_neighbors);
  EXPECT_GE(pl.mean_neighbors, 3.0);
  EXPECT_LE(pl.mean_neighbors, 16.0);
}

TEST(Can, HopsGrowPolynomially) {
  // Expected route length ~ (d/4)·N^(1/d): for d=2, quadrupling N should
  // roughly double hops — much steeper than Pastry's log.
  const CanOverlay small(config(64, 2));
  const CanOverlay large(config(1024, 2));
  const auto ps = probe_overlay(small, 500, 5);
  const auto pl = probe_overlay(large, 500, 5);
  EXPECT_GT(pl.mean_hops, 1.5 * ps.mean_hops);
}

TEST(Can, HigherDimensionMeansFewerHops) {
  const CanOverlay d2(config(512, 2));
  const CanOverlay d4(config(512, 4));
  const auto p2 = probe_overlay(d2, 500, 7);
  const auto p4 = probe_overlay(d4, 500, 7);
  EXPECT_LT(p4.mean_hops, p2.mean_hops);
}

TEST(Can, SingleNodeOwnsEverything) {
  const CanOverlay o(config(1));
  EXPECT_EQ(o.responsible_node(node_id_from_u64(123)), 0u);
  EXPECT_TRUE(o.route(0, node_id_from_u64(123)).empty());
}

struct DimParam {
  std::uint32_t n;
  int d;
};

class CanSweep : public ::testing::TestWithParam<DimParam> {};

TEST_P(CanSweep, DeliveryCorrectAcrossSizesAndDims) {
  const CanOverlay o(config(GetParam().n, GetParam().d));
  util::Rng rng(11);
  for (int trial = 0; trial < 150; ++trial) {
    const auto from = static_cast<NodeIndex>(rng.below(GetParam().n));
    const NodeId key = node_id_from_u64(rng.next());
    const auto path = o.route(from, key);
    const NodeIndex dest = o.responsible_node(key);
    if (!path.empty()) {
      EXPECT_EQ(path.back(), dest);
    } else {
      EXPECT_EQ(from, dest);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, CanSweep,
                         ::testing::Values(DimParam{2, 2}, DimParam{16, 2},
                                           DimParam{256, 2}, DimParam{64, 3},
                                           DimParam{256, 4}, DimParam{512, 8}),
                         [](const auto& suite_info) {
                           return "n" + std::to_string(suite_info.param.n) + "d" +
                                  std::to_string(suite_info.param.d);
                         });

}  // namespace
}  // namespace p2prank::overlay
