// Determinism contract of the contribution-vector sweep kernels: every
// variant (serial sweep, pooled sweep, fused sweep+residual) must produce
// bitwise-identical y — and the fused variants identical residuals — to the
// serial per-edge multiply, for any pool size, on adversarial shapes
// (empty rows, dangling-heavy graphs, 1-row and 0-row matrices).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "graph/graph_builder.hpp"
#include "graph/synthetic_web.hpp"
#include "rank/link_matrix.hpp"
#include "rank/open_system.hpp"
#include "test_support.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace p2prank::rank {
namespace {

constexpr double kAlpha = 0.85;

std::vector<double> varied_x(std::size_t n) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = 0.25 + static_cast<double>(i % 11) * 0.37;
  }
  return x;
}

/// Many pages with no out-links at all (dangling) and a few heavy hubs:
/// most rows are empty, most sources are dangling.
graph::WebGraph dangling_heavy(int pages) {
  graph::GraphBuilder b;
  std::vector<graph::PageId> ids;
  for (int i = 0; i < pages; ++i) {
    ids.push_back(b.add_page("s.edu/p" + std::to_string(i), "s.edu"));
  }
  // Only pages 0 and 1 have out-links; everything else dangles.
  for (int i = 2; i < pages; ++i) {
    b.add_link(ids[0], ids[i]);
    if (i % 3 == 0) b.add_link(ids[1], ids[i]);
  }
  return std::move(b).build();
}

void expect_bitwise_equal(std::span<const double> got, std::span<const double> want,
                          const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << label << " index " << i;  // exact, not near
  }
}

void check_all_variants(const LinkMatrix& m) {
  const std::size_t n = m.dimension();
  const auto x = varied_x(n);
  std::vector<double> forcing(n);
  for (std::size_t i = 0; i < n; ++i) forcing[i] = 0.15 + 0.01 * static_cast<double>(i % 5);

  // Reference: serial per-edge multiply, then the unfused forcing add.
  std::vector<double> y_ref(n, -1.0);
  m.multiply(x, y_ref);
  std::vector<double> y_forced_ref = y_ref;
  for (std::size_t i = 0; i < n; ++i) y_forced_ref[i] += forcing[i];
  const double l1_ref = util::l1_distance(y_forced_ref, x);

  SweepScratch scratch;
  std::vector<double> y(n, -2.0);
  m.sweep(x, y, scratch);
  expect_bitwise_equal(y, y_ref, "serial sweep");

  SweepStats first_stats;
  bool have_stats = false;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    util::ThreadPool pool(threads);
    const std::string label = "pool size " + std::to_string(threads);

    std::fill(y.begin(), y.end(), -3.0);
    m.multiply(x, y, pool);
    expect_bitwise_equal(y, y_ref, "pooled multiply, " + label);

    std::fill(y.begin(), y.end(), -4.0);
    m.sweep(x, y, scratch, pool);
    expect_bitwise_equal(y, y_ref, "pooled sweep, " + label);

    std::fill(y.begin(), y.end(), -5.0);
    const SweepStats stats = m.sweep_and_residual(x, y, forcing, scratch, pool);
    expect_bitwise_equal(y, y_forced_ref, "fused sweep, " + label);
    if (!have_stats) {
      first_stats = stats;
      have_stats = true;
      // The grain-ordered combine is a different summation order than the
      // linear l1_distance pass, so compare with a tolerance once...
      EXPECT_NEAR(stats.l1_delta, l1_ref, 1e-9 * (1.0 + l1_ref));
    } else {
      // ...but across pool sizes the residual must be bitwise identical.
      EXPECT_EQ(stats.l1_delta, first_stats.l1_delta) << label;
      EXPECT_EQ(stats.linf_delta, first_stats.linf_delta) << label;
    }

    std::fill(y.begin(), y.end(), -6.0);
    const SweepStats no_forcing = m.sweep_and_residual(x, y, {}, scratch, pool);
    expect_bitwise_equal(y, y_ref, "fused sweep no forcing, " + label);
    (void)no_forcing;
  }

  // Same pool, repeated runs: identical results (no run-to-run drift).
  util::ThreadPool pool(4);
  std::vector<double> y2(n);
  const SweepStats a = m.sweep_and_residual(x, y, forcing, scratch, pool);
  const SweepStats b = m.sweep_and_residual(x, y2, forcing, scratch, pool);
  expect_bitwise_equal(y, y2, "repeated fused run");
  EXPECT_EQ(a.l1_delta, b.l1_delta);
  EXPECT_EQ(a.linf_delta, b.linf_delta);
}

TEST(RankSweep, SyntheticWebAllVariantsBitwiseIdentical) {
  const auto g = graph::generate_synthetic_web(graph::google2002_config(10000, 17));
  check_all_variants(LinkMatrix::from_graph(g, kAlpha));
}

TEST(RankSweep, EmptyRowsStarGraph) {
  // Star: every leaf row is empty (leaves have no in-links).
  check_all_variants(LinkMatrix::from_graph(test::star(50), kAlpha));
}

TEST(RankSweep, DanglingHeavyGraph) {
  check_all_variants(LinkMatrix::from_graph(dangling_heavy(500), kAlpha));
}

TEST(RankSweep, ChainGraph) {
  check_all_variants(LinkMatrix::from_graph(test::chain(97), kAlpha));
}

TEST(RankSweep, OneRowMatrix) {
  // Subset of a single page: dimension 1, zero entries.
  const auto g = test::chain(4);
  const std::vector<graph::PageId> subset{1};
  const auto m = LinkMatrix::from_subset(g, subset, kAlpha);
  ASSERT_EQ(m.dimension(), 1u);
  ASSERT_EQ(m.num_entries(), 0u);
  check_all_variants(m);

  // With forcing, y is exactly the forcing; the residual is |f - x|.
  SweepScratch scratch;
  util::ThreadPool pool(2);
  const std::vector<double> x{2.0};
  const std::vector<double> forcing{0.5};
  std::vector<double> y{-1.0};
  const auto stats = m.sweep_and_residual(x, y, forcing, scratch, pool);
  EXPECT_EQ(y[0], 0.5);
  EXPECT_EQ(stats.l1_delta, 1.5);
  EXPECT_EQ(stats.linf_delta, 1.5);
}

TEST(RankSweep, EmptyMatrix) {
  const auto g = test::two_cycle();
  const auto m = LinkMatrix::from_subset(g, {}, kAlpha);
  SweepScratch scratch;
  util::ThreadPool pool(2);
  const auto stats = m.sweep_and_residual({}, {}, {}, scratch, pool);
  EXPECT_EQ(stats.l1_delta, 0.0);
  EXPECT_EQ(stats.linf_delta, 0.0);
  std::vector<double> none;
  m.sweep({}, none, scratch);
  m.sweep({}, none, scratch, pool);
}

TEST(RankSweep, SubsetMatrixAllVariants) {
  // Exercise the from_subset layout (local indices) under every kernel.
  const auto g = graph::generate_synthetic_web(graph::google2002_config(4000, 5));
  std::vector<graph::PageId> members;
  for (graph::PageId p = 0; p < g.num_pages(); p += 3) members.push_back(p);
  check_all_variants(LinkMatrix::from_subset(g, members, kAlpha));
}

TEST(RankSweep, SweepGrainIsMatrixDerived) {
  const auto g = graph::generate_synthetic_web(graph::google2002_config(10000, 17));
  const auto m = LinkMatrix::from_graph(g, kAlpha);
  EXPECT_GE(m.sweep_grain(), 1u);
  EXPECT_LE(m.sweep_grain(), m.dimension());
  // Grain count covers the dimension exactly.
  const std::size_t grains = util::ThreadPool::num_grains(m.dimension(), m.sweep_grain());
  EXPECT_GE(grains * m.sweep_grain(), m.dimension());
  EXPECT_LT((grains - 1) * m.sweep_grain(), m.dimension());
}

// --- Worklist / frontier kernel (DESIGN.md §6) -----------------------------

graph::WebGraph chain_graph(int pages, bool close_cycle) {
  graph::GraphBuilder b;
  std::vector<graph::PageId> ids;
  for (int i = 0; i < pages; ++i) {
    ids.push_back(b.add_page("c.edu/p" + std::to_string(i), "c.edu"));
  }
  for (int i = 0; i + 1 < pages; ++i) b.add_link(ids[i], ids[i + 1]);
  if (close_cycle) b.add_link(ids[pages - 1], ids[0]);
  return std::move(b).build();
}

/// Drive the dense and worklist kernels through the same ping-pong
/// iteration — including a mid-run forcing change — and require bitwise
/// identical values *and* residuals at every sweep, for pool sizes 1/2/8.
void check_worklist_matches_dense(const LinkMatrix& m, std::size_t sweeps,
                                  std::uint32_t full_interval) {
  const std::size_t n = m.dimension();
  std::vector<double> base_forcing(n);
  for (std::size_t i = 0; i < n; ++i) {
    base_forcing[i] = 0.15 + 0.01 * static_cast<double>(i % 5);
  }

  // Dense reference trajectory (serial — pool size is already covered by
  // check_all_variants for the dense kernel).
  std::vector<std::vector<double>> ref_y;
  std::vector<SweepStats> ref_stats;
  {
    util::ThreadPool ref_pool(1);
    SweepScratch ref_scratch;
    std::vector<double> cur = varied_x(n);
    std::vector<double> nxt(n, 0.0);
    std::vector<double> f = base_forcing;
    for (std::size_t s = 0; s < sweeps; ++s) {
      if (s == sweeps / 2 && n > 0) f[n / 2] += 0.25;
      ref_stats.push_back(m.sweep_and_residual(cur, nxt, f, ref_scratch, ref_pool));
      std::swap(cur, nxt);
      ref_y.push_back(cur);
    }
  }

  WorklistOptions wl;  // epsilon = 0: exact mode
  wl.full_interval = full_interval;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    util::ThreadPool pool(threads);
    const std::string label = "worklist pool size " + std::to_string(threads);
    WorklistState state;
    SweepScratch scratch;
    std::vector<double> cur = varied_x(n);
    std::vector<double> nxt(n, 0.0);
    std::vector<double> f = base_forcing;
    for (std::size_t s = 0; s < sweeps; ++s) {
      if (s == sweeps / 2 && n > 0) {
        f[n / 2] += 0.25;
        state.mark_forcing_dirty(n / 2);
      }
      const WorklistSweepStats stats =
          m.sweep_and_residual_worklist(cur, nxt, f, scratch, state, wl, pool);
      std::swap(cur, nxt);
      expect_bitwise_equal(cur, ref_y[s], label + " sweep " + std::to_string(s));
      ASSERT_EQ(stats.l1_delta, ref_stats[s].l1_delta) << label << " sweep " << s;
      ASSERT_EQ(stats.linf_delta, ref_stats[s].linf_delta) << label << " sweep " << s;
    }
    EXPECT_EQ(state.sweeps, sweeps);
  }
}

TEST(RankSweep, WorklistMatchesDenseSyntheticWeb) {
  const auto g = graph::generate_synthetic_web(graph::google2002_config(10000, 17));
  check_worklist_matches_dense(LinkMatrix::from_graph(g, kAlpha), 20, 3);
}

TEST(RankSweep, WorklistMatchesDenseDanglingHeavy) {
  // Most sources are dangling, so the frontier collapses within a few
  // sweeps; full_interval = 0 keeps it collapsed (pure sparse path).
  check_worklist_matches_dense(LinkMatrix::from_graph(dangling_heavy(500), kAlpha),
                               80, 0);
}

TEST(RankSweep, WorklistMatchesDenseChain) {
  check_worklist_matches_dense(LinkMatrix::from_graph(test::chain(97), kAlpha),
                               150, 0);
}

TEST(RankSweep, WorklistMatchesDenseStar) {
  check_worklist_matches_dense(LinkMatrix::from_graph(test::star(50), kAlpha), 30, 0);
}

TEST(RankSweep, WorklistMatchesDenseSubset) {
  const auto g = graph::generate_synthetic_web(graph::google2002_config(4000, 5));
  std::vector<graph::PageId> members;
  for (graph::PageId p = 0; p < g.num_pages(); p += 3) members.push_back(p);
  check_worklist_matches_dense(LinkMatrix::from_subset(g, members, kAlpha), 30, 5);
}

TEST(RankSweep, WorklistSinglePageFrontier) {
  const auto m = LinkMatrix::from_graph(dangling_heavy(400), kAlpha);
  const std::size_t n = m.dimension();
  std::vector<double> forcing(n, 0.15);
  WorklistOptions wl;
  wl.full_interval = 0;  // no periodic dense sweep: frontier death is observable
  WorklistState state;
  SweepScratch scratch;
  util::ThreadPool pool(2);
  std::vector<double> cur = varied_x(n);
  std::vector<double> nxt(n, 0.0);

  // Iterate to the exact (bitwise) fixed point; the frontier dies with it.
  std::size_t s = 0;
  for (; s < 2000; ++s) {
    const auto stats =
        m.sweep_and_residual_worklist(cur, nxt, forcing, scratch, state, wl, pool);
    std::swap(cur, nxt);
    if (stats.l1_delta == 0.0) break;
  }
  ASSERT_LT(s, 2000u) << "no exact fixed point reached";

  // At the fixed point a sweep computes no rows at all.
  const std::uint64_t settled = state.rows_computed;
  (void)m.sweep_and_residual_worklist(cur, nxt, forcing, scratch, state, wl, pool);
  std::swap(cur, nxt);
  EXPECT_EQ(state.rows_computed, settled);

  // Perturb a single page's forcing: exactly that one row recomputes.
  forcing[n - 1] += 0.5;
  state.mark_forcing_dirty(n - 1);
  const auto stats =
      m.sweep_and_residual_worklist(cur, nxt, forcing, scratch, state, wl, pool);
  std::swap(cur, nxt);
  EXPECT_EQ(state.rows_computed, settled + 1);
  EXPECT_NEAR(stats.l1_delta, 0.5, 1e-12);

  // From here the frontier regrows along out-edges only; values and
  // residuals must stay bitwise equal to a dense iteration.
  std::vector<double> dcur = cur;
  std::vector<double> dnxt(n, 0.0);
  SweepScratch dscratch;
  for (int k = 0; k < 10; ++k) {
    const auto ws =
        m.sweep_and_residual_worklist(cur, nxt, forcing, scratch, state, wl, pool);
    const auto ds = m.sweep_and_residual(dcur, dnxt, forcing, dscratch, pool);
    std::swap(cur, nxt);
    std::swap(dcur, dnxt);
    expect_bitwise_equal(cur, dcur, "post-perturb sweep " + std::to_string(k));
    ASSERT_EQ(ws.l1_delta, ds.l1_delta) << "post-perturb sweep " << k;
  }
}

TEST(RankSweep, WorklistFrontierRegrowsAfterGraphUpdate) {
  // Converge on a chain, then swap in a mutated graph (extra closing edge),
  // carrying the rank vector over — the engine's graph-update path. After
  // reset() the first sweep is dense and the trajectory on the new matrix
  // stays bitwise-identical to the dense kernel while the frontier regrows.
  const auto m1 = LinkMatrix::from_graph(chain_graph(60, false), kAlpha);
  const auto m2 = LinkMatrix::from_graph(chain_graph(60, true), kAlpha);
  const std::size_t n = m1.dimension();
  const std::vector<double> forcing(n, 0.15);
  WorklistOptions wl;
  wl.full_interval = 0;
  WorklistState state;
  SweepScratch scratch;
  util::ThreadPool pool(2);
  std::vector<double> cur = varied_x(n);
  std::vector<double> nxt(n, 0.0);
  std::size_t s = 0;
  for (; s < 2000; ++s) {
    const auto stats =
        m1.sweep_and_residual_worklist(cur, nxt, forcing, scratch, state, wl, pool);
    std::swap(cur, nxt);
    if (stats.l1_delta == 0.0) break;
  }
  ASSERT_LT(s, 2000u);

  state.reset();  // the graph changed under the frontier
  std::vector<double> dcur = cur;
  std::vector<double> dnxt(n, 0.0);
  SweepScratch dscratch;
  bool first = true;
  for (int k = 0; k < 40; ++k) {
    const auto ws =
        m2.sweep_and_residual_worklist(cur, nxt, forcing, scratch, state, wl, pool);
    const auto ds = m2.sweep_and_residual(dcur, dnxt, forcing, dscratch, pool);
    if (first) {
      EXPECT_TRUE(ws.dense);  // reset forces a dense re-prime
      first = false;
    }
    std::swap(cur, nxt);
    std::swap(dcur, dnxt);
    expect_bitwise_equal(cur, dcur, "post-update sweep " + std::to_string(k));
    ASSERT_EQ(ws.l1_delta, ds.l1_delta) << "post-update sweep " << k;
  }
}

TEST(RankSweep, WorklistSolveMatchesDenseSolve) {
  const auto g = graph::generate_synthetic_web(graph::google2002_config(4000, 5));
  const auto m = LinkMatrix::from_graph(g, kAlpha);
  const std::size_t n = m.dimension();
  std::vector<double> forcing(n);
  for (std::size_t i = 0; i < n; ++i) {
    forcing[i] = 0.15 + 0.01 * static_cast<double>(i % 5);
  }
  SolveOptions opts;
  opts.alpha = kAlpha;
  opts.epsilon = 1e-10;

  util::ThreadPool ref_pool(1);
  const SolveResult dense = solve_open_system(m, forcing, {}, opts, ref_pool);
  ASSERT_TRUE(dense.converged);

  WorklistOptions wl;  // exact mode
  for (const std::size_t threads : {1u, 2u, 8u}) {
    util::ThreadPool pool(threads);
    WorklistState state;
    const SolveResult got =
        solve_open_system_worklist(m, forcing, {}, opts, wl, state, pool);
    EXPECT_TRUE(got.converged);
    EXPECT_EQ(got.iterations, dense.iterations) << threads;
    EXPECT_EQ(got.final_delta, dense.final_delta) << threads;
    expect_bitwise_equal(got.ranks, dense.ranks,
                         "worklist solve, pool " + std::to_string(threads));
  }
}

TEST(RankSweep, WorklistThresholdedDeterministicAndConfirmed) {
  const auto g = graph::generate_synthetic_web(graph::google2002_config(4000, 5));
  const auto m = LinkMatrix::from_graph(g, kAlpha);
  const std::size_t n = m.dimension();
  const std::vector<double> forcing(n, 0.15);
  SolveOptions opts;
  opts.alpha = kAlpha;
  opts.epsilon = 1e-9;

  util::ThreadPool ref_pool(1);
  const SolveResult dense = solve_open_system(m, forcing, {}, opts, ref_pool);
  ASSERT_TRUE(dense.converged);

  WorklistOptions wl;
  wl.epsilon = 1e-8;  // thresholded: sparse residuals under-report
  wl.full_interval = 8;
  SolveResult first;
  bool have_first = false;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    util::ThreadPool pool(threads);
    WorklistState state;
    const SolveResult got =
        solve_open_system_worklist(m, forcing, {}, opts, wl, state, pool);
    // Convergence was accepted at a dense sweep, so final_delta is an exact
    // residual and Theorem 3.3 bounds the distance to the fixed point.
    EXPECT_TRUE(got.converged);
    EXPECT_LE(got.final_delta, opts.epsilon);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(got.ranks[i], dense.ranks[i], 1e-6) << "rank " << i;
    }
    // Thresholded mode is still bitwise-deterministic across pool sizes.
    if (!have_first) {
      first = got;
      have_first = true;
    } else {
      EXPECT_EQ(got.iterations, first.iterations) << threads;
      EXPECT_EQ(got.final_delta, first.final_delta) << threads;
      expect_bitwise_equal(got.ranks, first.ranks,
                           "thresholded pool " + std::to_string(threads));
    }
  }
}

TEST(RankSweep, PushCsrMirrorsPullEdges) {
  // The push CSR (out_targets) must be the exact transpose of the pull CSR:
  // the scatter phase reaches a row iff some pull edge feeds it.
  const auto g = graph::generate_synthetic_web(graph::google2002_config(2000, 9));
  const auto m = LinkMatrix::from_graph(g, kAlpha);
  std::vector<std::vector<std::uint32_t>> expect_targets(m.dimension());
  for (std::size_t v = 0; v < m.dimension(); ++v) {
    for (const std::uint32_t u : m.row_sources(v)) {
      expect_targets[u].push_back(static_cast<std::uint32_t>(v));
    }
  }
  std::size_t total = 0;
  for (std::size_t u = 0; u < m.dimension(); ++u) {
    const auto got = m.out_targets(u);
    ASSERT_EQ(got.size(), expect_targets[u].size()) << "source " << u;
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], expect_targets[u][i]) << "source " << u;
    }
    total += got.size();
  }
  EXPECT_EQ(total, m.num_entries());
}

TEST(RankSweep, SweepGrainIsWordAligned) {
  // Worklist bitmaps pack 64 rows per word; grains must own whole words.
  const auto g = graph::generate_synthetic_web(graph::google2002_config(10000, 17));
  EXPECT_EQ(LinkMatrix::from_graph(g, kAlpha).sweep_grain() % 64, 0u);
  EXPECT_EQ(LinkMatrix::from_graph(test::chain(10), kAlpha).sweep_grain() % 64, 0u);
}

TEST(RankSweep, SourceWeightsMatchRowWeights) {
  // weights_[e] must be the *same double* as source_weights()[src[e]] — the
  // bitwise-identity of the two kernels rests on this.
  const auto g = graph::generate_synthetic_web(graph::google2002_config(2000, 9));
  const auto m = LinkMatrix::from_graph(g, kAlpha);
  const auto sw = m.source_weights();
  for (std::size_t v = 0; v < m.dimension(); ++v) {
    const auto src = m.row_sources(v);
    const auto w = m.row_weights(v);
    for (std::size_t e = 0; e < src.size(); ++e) {
      ASSERT_EQ(w[e], sw[src[e]]);
    }
  }
}

}  // namespace
}  // namespace p2prank::rank
