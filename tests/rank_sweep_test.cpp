// Determinism contract of the contribution-vector sweep kernels: every
// variant (serial sweep, pooled sweep, fused sweep+residual) must produce
// bitwise-identical y — and the fused variants identical residuals — to the
// serial per-edge multiply, for any pool size, on adversarial shapes
// (empty rows, dangling-heavy graphs, 1-row and 0-row matrices).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "graph/graph_builder.hpp"
#include "graph/synthetic_web.hpp"
#include "rank/link_matrix.hpp"
#include "test_support.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace p2prank::rank {
namespace {

constexpr double kAlpha = 0.85;

std::vector<double> varied_x(std::size_t n) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = 0.25 + static_cast<double>(i % 11) * 0.37;
  }
  return x;
}

/// Many pages with no out-links at all (dangling) and a few heavy hubs:
/// most rows are empty, most sources are dangling.
graph::WebGraph dangling_heavy(int pages) {
  graph::GraphBuilder b;
  std::vector<graph::PageId> ids;
  for (int i = 0; i < pages; ++i) {
    ids.push_back(b.add_page("s.edu/p" + std::to_string(i), "s.edu"));
  }
  // Only pages 0 and 1 have out-links; everything else dangles.
  for (int i = 2; i < pages; ++i) {
    b.add_link(ids[0], ids[i]);
    if (i % 3 == 0) b.add_link(ids[1], ids[i]);
  }
  return std::move(b).build();
}

void expect_bitwise_equal(std::span<const double> got, std::span<const double> want,
                          const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << label << " index " << i;  // exact, not near
  }
}

void check_all_variants(const LinkMatrix& m) {
  const std::size_t n = m.dimension();
  const auto x = varied_x(n);
  std::vector<double> forcing(n);
  for (std::size_t i = 0; i < n; ++i) forcing[i] = 0.15 + 0.01 * static_cast<double>(i % 5);

  // Reference: serial per-edge multiply, then the unfused forcing add.
  std::vector<double> y_ref(n, -1.0);
  m.multiply(x, y_ref);
  std::vector<double> y_forced_ref = y_ref;
  for (std::size_t i = 0; i < n; ++i) y_forced_ref[i] += forcing[i];
  const double l1_ref = util::l1_distance(y_forced_ref, x);

  SweepScratch scratch;
  std::vector<double> y(n, -2.0);
  m.sweep(x, y, scratch);
  expect_bitwise_equal(y, y_ref, "serial sweep");

  SweepStats first_stats;
  bool have_stats = false;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    util::ThreadPool pool(threads);
    const std::string label = "pool size " + std::to_string(threads);

    std::fill(y.begin(), y.end(), -3.0);
    m.multiply(x, y, pool);
    expect_bitwise_equal(y, y_ref, "pooled multiply, " + label);

    std::fill(y.begin(), y.end(), -4.0);
    m.sweep(x, y, scratch, pool);
    expect_bitwise_equal(y, y_ref, "pooled sweep, " + label);

    std::fill(y.begin(), y.end(), -5.0);
    const SweepStats stats = m.sweep_and_residual(x, y, forcing, scratch, pool);
    expect_bitwise_equal(y, y_forced_ref, "fused sweep, " + label);
    if (!have_stats) {
      first_stats = stats;
      have_stats = true;
      // The grain-ordered combine is a different summation order than the
      // linear l1_distance pass, so compare with a tolerance once...
      EXPECT_NEAR(stats.l1_delta, l1_ref, 1e-9 * (1.0 + l1_ref));
    } else {
      // ...but across pool sizes the residual must be bitwise identical.
      EXPECT_EQ(stats.l1_delta, first_stats.l1_delta) << label;
      EXPECT_EQ(stats.linf_delta, first_stats.linf_delta) << label;
    }

    std::fill(y.begin(), y.end(), -6.0);
    const SweepStats no_forcing = m.sweep_and_residual(x, y, {}, scratch, pool);
    expect_bitwise_equal(y, y_ref, "fused sweep no forcing, " + label);
    (void)no_forcing;
  }

  // Same pool, repeated runs: identical results (no run-to-run drift).
  util::ThreadPool pool(4);
  std::vector<double> y2(n);
  const SweepStats a = m.sweep_and_residual(x, y, forcing, scratch, pool);
  const SweepStats b = m.sweep_and_residual(x, y2, forcing, scratch, pool);
  expect_bitwise_equal(y, y2, "repeated fused run");
  EXPECT_EQ(a.l1_delta, b.l1_delta);
  EXPECT_EQ(a.linf_delta, b.linf_delta);
}

TEST(RankSweep, SyntheticWebAllVariantsBitwiseIdentical) {
  const auto g = graph::generate_synthetic_web(graph::google2002_config(10000, 17));
  check_all_variants(LinkMatrix::from_graph(g, kAlpha));
}

TEST(RankSweep, EmptyRowsStarGraph) {
  // Star: every leaf row is empty (leaves have no in-links).
  check_all_variants(LinkMatrix::from_graph(test::star(50), kAlpha));
}

TEST(RankSweep, DanglingHeavyGraph) {
  check_all_variants(LinkMatrix::from_graph(dangling_heavy(500), kAlpha));
}

TEST(RankSweep, ChainGraph) {
  check_all_variants(LinkMatrix::from_graph(test::chain(97), kAlpha));
}

TEST(RankSweep, OneRowMatrix) {
  // Subset of a single page: dimension 1, zero entries.
  const auto g = test::chain(4);
  const std::vector<graph::PageId> subset{1};
  const auto m = LinkMatrix::from_subset(g, subset, kAlpha);
  ASSERT_EQ(m.dimension(), 1u);
  ASSERT_EQ(m.num_entries(), 0u);
  check_all_variants(m);

  // With forcing, y is exactly the forcing; the residual is |f - x|.
  SweepScratch scratch;
  util::ThreadPool pool(2);
  const std::vector<double> x{2.0};
  const std::vector<double> forcing{0.5};
  std::vector<double> y{-1.0};
  const auto stats = m.sweep_and_residual(x, y, forcing, scratch, pool);
  EXPECT_EQ(y[0], 0.5);
  EXPECT_EQ(stats.l1_delta, 1.5);
  EXPECT_EQ(stats.linf_delta, 1.5);
}

TEST(RankSweep, EmptyMatrix) {
  const auto g = test::two_cycle();
  const auto m = LinkMatrix::from_subset(g, {}, kAlpha);
  SweepScratch scratch;
  util::ThreadPool pool(2);
  const auto stats = m.sweep_and_residual({}, {}, {}, scratch, pool);
  EXPECT_EQ(stats.l1_delta, 0.0);
  EXPECT_EQ(stats.linf_delta, 0.0);
  std::vector<double> none;
  m.sweep({}, none, scratch);
  m.sweep({}, none, scratch, pool);
}

TEST(RankSweep, SubsetMatrixAllVariants) {
  // Exercise the from_subset layout (local indices) under every kernel.
  const auto g = graph::generate_synthetic_web(graph::google2002_config(4000, 5));
  std::vector<graph::PageId> members;
  for (graph::PageId p = 0; p < g.num_pages(); p += 3) members.push_back(p);
  check_all_variants(LinkMatrix::from_subset(g, members, kAlpha));
}

TEST(RankSweep, SweepGrainIsMatrixDerived) {
  const auto g = graph::generate_synthetic_web(graph::google2002_config(10000, 17));
  const auto m = LinkMatrix::from_graph(g, kAlpha);
  EXPECT_GE(m.sweep_grain(), 1u);
  EXPECT_LE(m.sweep_grain(), m.dimension());
  // Grain count covers the dimension exactly.
  const std::size_t grains = util::ThreadPool::num_grains(m.dimension(), m.sweep_grain());
  EXPECT_GE(grains * m.sweep_grain(), m.dimension());
  EXPECT_LT((grains - 1) * m.sweep_grain(), m.dimension());
}

TEST(RankSweep, SourceWeightsMatchRowWeights) {
  // weights_[e] must be the *same double* as source_weights()[src[e]] — the
  // bitwise-identity of the two kernels rests on this.
  const auto g = graph::generate_synthetic_web(graph::google2002_config(2000, 9));
  const auto m = LinkMatrix::from_graph(g, kAlpha);
  const auto sw = m.source_weights();
  for (std::size_t v = 0; v < m.dimension(); ++v) {
    const auto src = m.row_sources(v);
    const auto w = m.row_weights(v);
    for (std::size_t e = 0; e < src.size(); ++e) {
      ASSERT_EQ(w[e], sw[src[e]]);
    }
  }
}

}  // namespace
}  // namespace p2prank::rank
