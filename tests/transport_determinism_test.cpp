// Bitwise-determinism regression tests for the exchange simulation.
//
// The reports produced by run_{direct,indirect}_exchange must depend only on
// the *logical* demand (the set of (src, dst, records) triples), never on the
// order in which ExchangeDemand::add() was called. Insertion order perturbs
// the bucket order of the unordered maps used internally; before the sorted-
// snapshot fix in run_indirect_exchange, that reordered the floating-point
// byte summations and produced bitwise-different data_bytes across logically
// identical runs. These tests lock in bitwise equality (EXPECT_EQ on double,
// not EXPECT_NEAR).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "overlay/pastry.hpp"
#include "transport/exchange.hpp"
#include "util/rng.hpp"

namespace p2prank::transport {
namespace {

using overlay::NodeIndex;

overlay::PastryOverlay pastry(std::uint32_t n) {
  overlay::PastryConfig cfg;
  cfg.num_nodes = n;
  cfg.seed = 4242;
  return overlay::PastryOverlay(cfg);
}

struct Triple {
  NodeIndex src;
  NodeIndex dst;
  std::uint64_t records;
};

// A sparse, irregular demand: varied record counts so the per-package byte
// sums are FP values whose summation order would matter if it leaked through.
std::vector<Triple> sparse_triples(std::uint32_t n) {
  std::vector<Triple> t;
  for (NodeIndex s = 0; s < n; ++s) {
    for (NodeIndex d = 0; d < n; d += 3) {
      if (s == d) continue;
      t.push_back({s, d, 1 + ((s * 31ull + d * 7ull) % 13ull)});
    }
  }
  return t;
}

// Fractional wire sizes: per-package byte sums are then inexact doubles, so
// any summation-order leak shows up as a bitwise difference. The default
// WireFormat's integer sizes would mask it (exact FP addition commutes).
WireFormat fractional_wire() {
  WireFormat wire;
  wire.record_bytes = 100.1;
  wire.lookup_bytes = 50.3;
  wire.header_bytes = 40.7;
  return wire;
}

ExchangeDemand build(std::uint32_t n, const std::vector<Triple>& triples) {
  ExchangeDemand demand(n);
  for (const auto& t : triples) demand.add(t.src, t.dst, t.records);
  return demand;
}

void expect_bitwise_equal(const TransmissionReport& a, const TransmissionReport& b) {
  EXPECT_EQ(a.data_messages, b.data_messages);
  EXPECT_EQ(a.lookup_messages, b.lookup_messages);
  EXPECT_EQ(a.data_bytes, b.data_bytes);  // bitwise: no EXPECT_NEAR
  EXPECT_EQ(a.lookup_bytes, b.lookup_bytes);
  EXPECT_EQ(a.records_delivered, b.records_delivered);
  EXPECT_EQ(a.record_hops, b.record_hops);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.max_node_out_bytes, b.max_node_out_bytes);
}

TEST(ExchangeDeterminism, IndirectReportIgnoresAddOrder) {
  constexpr std::uint32_t kNodes = 48;
  const auto o = pastry(kNodes);
  auto triples = sparse_triples(kNodes);
  const auto baseline = run_indirect_exchange(o, build(kNodes, triples), fractional_wire());
  EXPECT_GT(baseline.records_delivered, 0u);

  util::Rng rng(7);
  for (int trial = 0; trial < 4; ++trial) {
    // Fisher–Yates with the project RNG: a different insertion order each
    // trial, same logical demand.
    for (std::size_t i = triples.size(); i > 1; --i) {
      std::swap(triples[i - 1], triples[rng.below(static_cast<std::uint64_t>(i))]);
    }
    const auto shuffled = run_indirect_exchange(o, build(kNodes, triples), fractional_wire());
    expect_bitwise_equal(baseline, shuffled);
  }
}

TEST(ExchangeDeterminism, DirectReportIgnoresAddOrder) {
  constexpr std::uint32_t kNodes = 32;
  const auto o = pastry(kNodes);
  auto triples = sparse_triples(kNodes);
  const auto baseline = run_direct_exchange(o, build(kNodes, triples), fractional_wire());

  std::reverse(triples.begin(), triples.end());
  const auto reversed = run_direct_exchange(o, build(kNodes, triples), fractional_wire());
  expect_bitwise_equal(baseline, reversed);
}

TEST(ExchangeDeterminism, RepeatedRunsAreBitwiseIdentical) {
  // Same demand object run twice: the simulation must be pure.
  constexpr std::uint32_t kNodes = 32;
  const auto o = pastry(kNodes);
  const auto demand = build(kNodes, sparse_triples(kNodes));
  const auto first = run_indirect_exchange(o, demand, fractional_wire());
  const auto second = run_indirect_exchange(o, demand, fractional_wire());
  expect_bitwise_equal(first, second);
}

}  // namespace
}  // namespace p2prank::transport
