// Tests for the versioned, checksummed Y-slice wire frame (frame.hpp) and
// the per-directed-link fault plane (fault_plane.hpp): round-trips, every
// quarantine verdict, an exhaustive byte-flip sweep (no corrupted frame may
// ever decode kOk), and the cut/corruption semantics the chaos harness and
// RecoverySupervisor rely on (DESIGN.md §13).
#include "transport/frame.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string_view>
#include <utility>
#include <vector>

#include "transport/fault_plane.hpp"
#include "util/hash.hpp"

namespace p2prank::transport {
namespace {

using Entries = std::vector<std::pair<std::uint32_t, double>>;

const Entries kEntries = {{0, 0.15}, {3, 1.25}, {4, 0.0}, {90, 2.5e-7}};
const FrameHeader kHeader = {/*src=*/2, /*dst=*/5, /*epoch=*/41,
                             /*record_count=*/17};

/// Re-stamp the trailing checksum after a deliberate header patch, so the
/// test observes the *header* verdict rather than kBadChecksum.
void restamp_checksum(std::vector<std::uint8_t>& frame) {
  const std::uint64_t sum = util::fnv1a(std::string_view(
      reinterpret_cast<const char*>(frame.data()), frame.size() - 8));
  for (int i = 0; i < 8; ++i) {
    frame[frame.size() - 8 + i] = static_cast<std::uint8_t>(sum >> (8 * i));
  }
}

TEST(Frame, RoundTripsExactly) {
  const auto bytes = encode_frame(kHeader, kEntries);
  DecodedFrame decoded;
  ASSERT_EQ(decode_frame(bytes, decoded), FrameVerdict::kOk);
  EXPECT_EQ(decoded.header.src, kHeader.src);
  EXPECT_EQ(decoded.header.dst, kHeader.dst);
  EXPECT_EQ(decoded.header.epoch, kHeader.epoch);
  EXPECT_EQ(decoded.header.record_count, kHeader.record_count);
  ASSERT_EQ(decoded.entries.size(), kEntries.size());
  for (std::size_t i = 0; i < kEntries.size(); ++i) {
    EXPECT_EQ(decoded.entries[i].first, kEntries[i].first);
    EXPECT_DOUBLE_EQ(decoded.entries[i].second, kEntries[i].second);
  }
}

TEST(Frame, EmptyEntriesRoundTrip) {
  const auto bytes = encode_frame(kHeader, {});
  DecodedFrame decoded;
  ASSERT_EQ(decode_frame(bytes, decoded), FrameVerdict::kOk);
  EXPECT_TRUE(decoded.entries.empty());
  EXPECT_EQ(decoded.header.epoch, kHeader.epoch);
}

TEST(Frame, EveryPrefixTruncationQuarantined) {
  const auto bytes = encode_frame(kHeader, kEntries);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    DecodedFrame decoded;
    const auto verdict =
        decode_frame(std::span(bytes.data(), len), decoded);
    EXPECT_NE(verdict, FrameVerdict::kOk) << "prefix length " << len;
  }
}

TEST(Frame, EverySingleByteFlipQuarantined) {
  // The exhaustive sweep behind the "zero applied corrupt frames"
  // invariant: whatever single byte the fault plane flips, the checksum
  // (or an earlier header check) must catch it.
  const auto bytes = encode_frame(kHeader, kEntries);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (const std::uint8_t mask : {std::uint8_t{0x01}, std::uint8_t{0x80},
                                    std::uint8_t{0xff}}) {
      auto flipped = bytes;
      flipped[i] ^= mask;
      DecodedFrame decoded;
      EXPECT_NE(decode_frame(flipped, decoded), FrameVerdict::kOk)
          << "byte " << i << " ^ " << int{mask} << " decoded clean";
    }
  }
}

TEST(Frame, BadMagicNamed) {
  auto bytes = encode_frame(kHeader, kEntries);
  bytes[0] ^= 0xff;
  restamp_checksum(bytes);
  DecodedFrame decoded;
  EXPECT_EQ(decode_frame(bytes, decoded), FrameVerdict::kBadMagic);
}

TEST(Frame, BadVersionNamed) {
  auto bytes = encode_frame(kHeader, kEntries);
  // kFrameVersion = 1 encodes as the single varint byte right after the
  // 4-byte magic ("p2prank-frame v1" wire format).
  ASSERT_EQ(bytes[4], 1u);
  bytes[4] = 2;
  restamp_checksum(bytes);
  DecodedFrame decoded;
  EXPECT_EQ(decode_frame(bytes, decoded), FrameVerdict::kBadVersion);
}

TEST(Frame, BadChecksumNamed) {
  auto bytes = encode_frame(kHeader, kEntries);
  bytes[bytes.size() - 1] ^= 0x55;  // corrupt the trailer itself
  DecodedFrame decoded;
  EXPECT_EQ(decode_frame(bytes, decoded), FrameVerdict::kBadChecksum);
}

TEST(Frame, PayloadShapeRejectedEvenWithValidChecksum) {
  // encode_frame trusts its caller, so a buggy sender could emit a
  // checksum-valid frame with a garbage payload; decode still refuses it.
  DecodedFrame decoded;
  const Entries nan_score = {{0, std::numeric_limits<double>::quiet_NaN()}};
  EXPECT_EQ(decode_frame(encode_frame(kHeader, nan_score), decoded),
            FrameVerdict::kBadScore);
  const Entries negative = {{0, -0.25}};
  EXPECT_EQ(decode_frame(encode_frame(kHeader, negative), decoded),
            FrameVerdict::kBadScore);
  const Entries duplicate_index = {{3, 0.5}, {3, 0.5}};
  EXPECT_EQ(decode_frame(encode_frame(kHeader, duplicate_index), decoded),
            FrameVerdict::kBadIndexOrder);
}

TEST(Frame, EntriesValidMatchesDecodeRules) {
  EXPECT_TRUE(entries_valid(std::span<const std::pair<std::uint32_t, double>>(
      kEntries.data(), kEntries.size())));
  const Entries unordered = {{4, 0.5}, {2, 0.5}};
  EXPECT_FALSE(entries_valid(
      std::span<const std::pair<std::uint32_t, double>>(unordered)));
  const Entries infinite = {{0, std::numeric_limits<double>::infinity()}};
  EXPECT_FALSE(entries_valid(
      std::span<const std::pair<std::uint32_t, double>>(infinite)));
}

// --- Fault plane --------------------------------------------------------

TEST(FaultPlane, HardCutIsAsymmetricAndDirected) {
  FaultPlane plane(7);
  plane.set_partition(/*side_a_mask=*/0b1, /*deliver_ab=*/0.0,
                      /*deliver_ba=*/1.0);
  EXPECT_TRUE(plane.partitioned());
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(plane.deliver(0, 1)) << "A->B must be a hard cut";
    EXPECT_TRUE(plane.deliver(1, 0)) << "B->A stays clean";
    EXPECT_TRUE(plane.deliver(1, 2)) << "B-internal link never crosses";
  }
  EXPECT_EQ(plane.partition_drops(), 50u);
  // The deterministic probe mirrors exactly the hard directions — no draw.
  EXPECT_FALSE(plane.link_up(0, 1));
  EXPECT_TRUE(plane.link_up(1, 0));
  EXPECT_TRUE(plane.link_up(1, 2));
}

TEST(FaultPlane, HealRestoresEveryLink) {
  FaultPlane plane(7);
  plane.set_partition(0b11, 0.0, 0.0);
  EXPECT_FALSE(plane.deliver(0, 2));
  EXPECT_FALSE(plane.deliver(2, 1));
  plane.heal();
  EXPECT_FALSE(plane.partitioned());
  EXPECT_TRUE(plane.deliver(0, 2));
  EXPECT_TRUE(plane.deliver(2, 1));
  EXPECT_TRUE(plane.link_up(0, 2));
}

TEST(FaultPlane, GroupsBeyondMaskWidthAreSideB) {
  FaultPlane plane(7);
  plane.set_partition(0b1, 0.0, 0.0);
  // Group 70 cannot be on side A (mask is 64 bits): 70 -> 0 crosses B→A.
  EXPECT_FALSE(plane.deliver(70, 0));
  EXPECT_TRUE(plane.deliver(70, 1));  // B-internal
}

TEST(FaultPlane, CorruptionIsSeededAndBounded) {
  const auto bytes = encode_frame(kHeader, kEntries);
  FaultPlane a(99);
  FaultPlane b(99);
  a.set_corruption(1.0);
  b.set_corruption(1.0);
  for (int i = 0; i < 20; ++i) {
    auto fa = bytes;
    auto fb = bytes;
    EXPECT_TRUE(a.maybe_corrupt(fa));
    EXPECT_TRUE(b.maybe_corrupt(fb));
    EXPECT_EQ(fa, fb) << "same seed must corrupt identically";
    EXPECT_NE(fa, bytes) << "corruption must change the frame";
    std::size_t changed = 0;
    for (std::size_t j = 0; j < bytes.size(); ++j) {
      if (fa[j] != bytes[j]) ++changed;
    }
    EXPECT_GE(changed, 1u);
    EXPECT_LE(changed, 4u);
    DecodedFrame decoded;
    EXPECT_NE(decode_frame(fa, decoded), FrameVerdict::kOk)
        << "flipped frame decoded clean on round " << i;
  }
  EXPECT_EQ(a.frames_corrupted(), 20u);
}

TEST(FaultPlane, CorruptionDisabledNeverTouchesTheFrame) {
  FaultPlane plane(5);
  auto frame = encode_frame(kHeader, kEntries);
  const auto original = frame;
  EXPECT_FALSE(plane.corruption_enabled());
  EXPECT_FALSE(plane.maybe_corrupt(frame));
  EXPECT_EQ(frame, original);
  plane.set_corruption(0.0);
  EXPECT_FALSE(plane.corruption_enabled());
}

}  // namespace
}  // namespace p2prank::transport
