#include "graph/components.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/graph_builder.hpp"
#include "graph/synthetic_web.hpp"
#include "test_support.hpp"

namespace p2prank::graph {
namespace {

TEST(Scc, EmptyGraph) {
  GraphBuilder b;
  const auto g = std::move(b).build();
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.count, 0u);
}

TEST(Scc, TwoCycleIsOneComponent) {
  const auto g = test::two_cycle();
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.count, 1u);
  EXPECT_EQ(scc.component[0], scc.component[1]);
}

TEST(Scc, ChainIsAllSingletons) {
  const auto g = test::chain(5);
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.count, 5u);
  std::set<std::uint32_t> ids(scc.component.begin(), scc.component.end());
  EXPECT_EQ(ids.size(), 5u);
}

TEST(Scc, ComponentIdsAreReverseTopological) {
  // Edge u->v across components implies component[u] >= component[v].
  const auto g = generate_synthetic_web(google2002_config(3000, 3));
  const auto scc = strongly_connected_components(g);
  for (PageId u = 0; u < g.num_pages(); ++u) {
    for (const PageId v : g.out_links(u)) {
      ASSERT_GE(scc.component[u], scc.component[v]);
    }
  }
}

TEST(Scc, SizesSumToPageCount) {
  const auto g = generate_synthetic_web(google2002_config(3000, 5));
  const auto scc = strongly_connected_components(g);
  std::size_t total = 0;
  for (const auto s : scc.component_sizes()) total += s;
  EXPECT_EQ(total, g.num_pages());
}

TEST(Scc, MixedGraphStructure) {
  // Two 2-cycles connected by a one-way bridge: 2 components of size 2.
  GraphBuilder b;
  const auto a1 = b.add_page("s.edu/a1", "s.edu");
  const auto a2 = b.add_page("s.edu/a2", "s.edu");
  const auto c1 = b.add_page("s.edu/b1", "s.edu");
  const auto c2 = b.add_page("s.edu/b2", "s.edu");
  b.add_link(a1, a2);
  b.add_link(a2, a1);
  b.add_link(c1, c2);
  b.add_link(c2, c1);
  b.add_link(a1, c1);  // bridge
  const auto g = std::move(b).build();
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.count, 2u);
  EXPECT_EQ(scc.component[a1], scc.component[a2]);
  EXPECT_EQ(scc.component[c1], scc.component[c2]);
  EXPECT_NE(scc.component[a1], scc.component[c1]);
  // Downstream component must carry the smaller id.
  EXPECT_GT(scc.component[a1], scc.component[c1]);
}

TEST(Scc, HandlesDeepChainsIteratively) {
  // 50k-long chain would overflow a recursive Tarjan.
  GraphBuilder b;
  std::vector<PageId> ids;
  for (int i = 0; i < 50000; ++i) {
    ids.push_back(b.add_page("s.edu/p" + std::to_string(i), "s.edu"));
  }
  for (int i = 0; i + 1 < 50000; ++i) b.add_link(ids[i], ids[i + 1]);
  const auto g = std::move(b).build();
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.count, 50000u);
}

TEST(RankSinks, TwoCycleWithNoEscapeIsASink) {
  const auto g = test::two_cycle();
  const auto sinks = find_rank_sinks(g);
  ASSERT_EQ(sinks.size(), 1u);
  EXPECT_EQ(sinks[0].size(), 2u);
}

TEST(RankSinks, ExternalLinkDrainsTheSink) {
  // Same 2-cycle but one page also links off-crawl: rank escapes.
  GraphBuilder b;
  const auto a = b.add_page("s.edu/a", "s.edu");
  const auto c = b.add_page("s.edu/b", "s.edu");
  b.add_link(a, c);
  b.add_link(c, a);
  b.add_external_link(a);
  const auto g = std::move(b).build();
  EXPECT_TRUE(find_rank_sinks(g).empty());
}

TEST(RankSinks, SelfLoopSingletonIsASink) {
  GraphBuilder b;
  const auto a = b.add_page("s.edu/a", "s.edu");
  const auto c = b.add_page("s.edu/b", "s.edu");
  b.add_link(a, a);  // keeps its own rank forever
  b.add_link(c, a);
  const auto g = std::move(b).build();
  const auto sinks = find_rank_sinks(g);
  ASSERT_EQ(sinks.size(), 1u);
  EXPECT_EQ(sinks[0], std::vector<PageId>{a});
}

TEST(RankSinks, DanglingPagesOnlyWithFlag) {
  const auto g = test::star(3);  // hub has no out-links at all
  EXPECT_TRUE(find_rank_sinks(g, false).empty());
  const auto with = find_rank_sinks(g, true);
  ASSERT_EQ(with.size(), 1u);
  EXPECT_EQ(with[0].size(), 1u);
  EXPECT_EQ(with[0][0], *g.find("s.edu/hub"));
}

TEST(RankSinks, SortedLargestFirst) {
  GraphBuilder b;
  // Sink A: 3-cycle. Sink B: 2-cycle.
  std::vector<PageId> tri;
  for (int i = 0; i < 3; ++i) {
    tri.push_back(b.add_page("s.edu/t" + std::to_string(i), "s.edu"));
  }
  for (int i = 0; i < 3; ++i) b.add_link(tri[i], tri[(i + 1) % 3]);
  const auto d1 = b.add_page("s.edu/d1", "s.edu");
  const auto d2 = b.add_page("s.edu/d2", "s.edu");
  b.add_link(d1, d2);
  b.add_link(d2, d1);
  const auto g = std::move(b).build();
  const auto sinks = find_rank_sinks(g);
  ASSERT_EQ(sinks.size(), 2u);
  EXPECT_EQ(sinks[0].size(), 3u);
  EXPECT_EQ(sinks[1].size(), 2u);
}

}  // namespace
}  // namespace p2prank::graph
