#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace p2prank::util {
namespace {

TEST(ThreadPool, SizeDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ExplicitSize) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSingleElement) {
  ThreadPool pool(4);
  int value = 0;
  pool.parallel_for(1, [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1u);
    ++value;
  });
  EXPECT_EQ(value, 1);
}

TEST(ThreadPool, ParallelForProducesDeterministicSum) {
  ThreadPool pool(8);
  constexpr std::size_t kN = 100000;
  std::vector<double> out(kN);
  pool.parallel_for(kN, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) out[i] = static_cast<double>(i);
  });
  const double sum = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, static_cast<double>(kN) * (kN - 1) / 2.0);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](std::size_t begin, std::size_t) {
                          if (begin == 0) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool pool(4);
  try {
    pool.parallel_for(100, [](std::size_t, std::size_t) {
      throw std::runtime_error("boom");
    });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> count{0};
  pool.parallel_for(50, [&](std::size_t begin, std::size_t end) {
    count += static_cast<int>(end - begin);
  });
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ManySequentialCalls) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(10, [&](std::size_t begin, std::size_t end) {
      total += static_cast<int>(end - begin);
    });
  }
  EXPECT_EQ(total.load(), 2000);
}

TEST(ThreadPool, SharedPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
}

}  // namespace
}  // namespace p2prank::util
