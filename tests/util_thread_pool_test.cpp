#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace p2prank::util {
namespace {

TEST(ThreadPool, SizeDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ExplicitSize) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSingleElement) {
  ThreadPool pool(4);
  int value = 0;
  pool.parallel_for(1, [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1u);
    ++value;
  });
  EXPECT_EQ(value, 1);
}

TEST(ThreadPool, ParallelForProducesDeterministicSum) {
  ThreadPool pool(8);
  constexpr std::size_t kN = 100000;
  std::vector<double> out(kN);
  pool.parallel_for(kN, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) out[i] = static_cast<double>(i);
  });
  const double sum = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, static_cast<double>(kN) * (kN - 1) / 2.0);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](std::size_t begin, std::size_t) {
                          if (begin == 0) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool pool(4);
  try {
    pool.parallel_for(100, [](std::size_t, std::size_t) {
      throw std::runtime_error("boom");
    });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> count{0};
  pool.parallel_for(50, [&](std::size_t begin, std::size_t end) {
    count += static_cast<int>(end - begin);
  });
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ManySequentialCalls) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(10, [&](std::size_t begin, std::size_t end) {
      total += static_cast<int>(end - begin);
    });
  }
  EXPECT_EQ(total.load(), 2000);
}

TEST(ThreadPool, SharedPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
}

TEST(ThreadPool, SmallNRunsInlineAsOneCall) {
  // Below the inline cutoff the plain API must not dispatch: exactly one
  // call covering the whole range (micro-sweeps skip fork-join cost).
  ThreadPool pool(4);
  ASSERT_LT(100u, ThreadPool::kInlineCutoff);
  std::atomic<int> calls{0};
  pool.parallel_for(100, [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 100u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, GrainsCoverEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  constexpr std::size_t kGrain = 170;  // deliberately not a divisor of kN
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for_grains(kN, kGrain,
                           [&](std::size_t grain, std::size_t begin, std::size_t end) {
                             EXPECT_EQ(begin, grain * kGrain);
                             EXPECT_EQ(end, std::min(kN, begin + kGrain));
                             for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
                           });
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, GrainBoundariesIndependentOfPoolSize) {
  // The decomposition seen by the body must depend only on (n, grain) —
  // this is what makes per-grain partial sums bitwise-deterministic.
  constexpr std::size_t kN = 50000;
  constexpr std::size_t kGrain = 333;
  const std::size_t total = ThreadPool::num_grains(kN, kGrain);
  for (const unsigned threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<std::uint64_t>> seen(total);
    pool.parallel_for_grains(
        kN, kGrain, [&](std::size_t grain, std::size_t begin, std::size_t end) {
          seen[grain].store((static_cast<std::uint64_t>(begin) << 32) | end);
        });
    for (std::size_t g = 0; g < total; ++g) {
      const std::uint64_t packed = seen[g].load();
      EXPECT_EQ(packed >> 32, g * kGrain) << "pool " << threads;
      EXPECT_EQ(packed & 0xffffffffu, std::min(kN, g * kGrain + kGrain))
          << "pool " << threads;
    }
  }
}

TEST(ThreadPool, GrainExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 100000;  // above the inline cutoff: real dispatch
  EXPECT_THROW(pool.parallel_for_grains(kN, 1000,
                                        [](std::size_t grain, std::size_t, std::size_t) {
                                          if (grain == 7) throw std::runtime_error("boom");
                                        }),
               std::runtime_error);
  // The pool must be fully reusable after a throwing grain.
  for (int round = 0; round < 3; ++round) {
    std::atomic<std::size_t> covered{0};
    pool.parallel_for_grains(kN, 1000, [&](std::size_t, std::size_t begin, std::size_t end) {
      covered.fetch_add(end - begin);
    });
    EXPECT_EQ(covered.load(), kN);
  }
}

TEST(ThreadPool, ExceptionAboveInlineCutoffPropagates) {
  // The dispatched (not inline) path of the plain API must also propagate.
  ThreadPool pool(4);
  constexpr std::size_t kN = 100000;
  EXPECT_THROW(pool.parallel_for(kN,
                                 [](std::size_t begin, std::size_t) {
                                   if (begin == 0) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  std::atomic<std::size_t> covered{0};
  pool.parallel_for(kN, [&](std::size_t begin, std::size_t end) {
    covered.fetch_add(end - begin);
  });
  EXPECT_EQ(covered.load(), kN);
}

TEST(ThreadPool, ManySequentialGrainedDispatches) {
  // Stress the epoch handshake: no lost wakeups or stuck barriers.
  ThreadPool pool(3);
  constexpr std::size_t kN = 20000;
  for (int round = 0; round < 100; ++round) {
    std::atomic<std::size_t> covered{0};
    pool.parallel_for_grains(kN, 512, [&](std::size_t, std::size_t begin, std::size_t end) {
      covered.fetch_add(end - begin);
    });
    ASSERT_EQ(covered.load(), kN) << round;
  }
}

TEST(ThreadPool, GrainSubsetRunsExactlyTheListedGrains) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 100000;
  constexpr std::size_t kGrain = 512;
  const std::size_t total = ThreadPool::num_grains(kN, kGrain);
  // Every third grain, including the final short one.
  std::vector<std::uint32_t> list;
  for (std::size_t g = 0; g < total; g += 3) {
    list.push_back(static_cast<std::uint32_t>(g));
  }
  if (list.back() != total - 1) list.push_back(static_cast<std::uint32_t>(total - 1));
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for_grains_subset(
      list, kN, kGrain, [&](std::size_t g, std::size_t begin, std::size_t end) {
        EXPECT_EQ(begin, g * kGrain);
        EXPECT_EQ(end, std::min(kN, begin + kGrain));
        for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      });
  std::vector<bool> listed(total, false);
  for (const std::uint32_t g : list) listed[g] = true;
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), listed[i / kGrain] ? 1 : 0) << i;
  }
}

TEST(ThreadPool, GrainSubsetInlinePathMatchesDispatch) {
  // Small covered ranges run inline; the grain geometry must be identical
  // either way (same ids, same boundaries).
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;  // < kInlineCutoff: always inline
  const std::vector<std::uint32_t> list{0, 3, 7};
  std::vector<std::size_t> seen;
  pool.parallel_for_grains_subset(
      list, kN, 128, [&](std::size_t g, std::size_t begin, std::size_t end) {
        seen.push_back(g);
        EXPECT_EQ(begin, g * 128);
        EXPECT_EQ(end, std::min<std::size_t>(kN, begin + 128));
      });
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 3, 7}));
}

TEST(ThreadPool, GrainSubsetEmptyListIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for_grains_subset(
      {}, 100, 10, [&](std::size_t, std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, GrainSubsetExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 100000;
  const std::size_t total = ThreadPool::num_grains(kN, 64);
  std::vector<std::uint32_t> list(total);
  std::iota(list.begin(), list.end(), 0u);
  EXPECT_THROW(
      pool.parallel_for_grains_subset(
          list, kN, 64,
          [&](std::size_t g, std::size_t, std::size_t) {
            if (g == 17) throw std::runtime_error("boom");
          }),
      std::runtime_error);
  std::atomic<std::size_t> covered{0};
  pool.parallel_for_grains_subset(
      list, kN, 64, [&](std::size_t, std::size_t begin, std::size_t end) {
        covered.fetch_add(end - begin);
      });
  EXPECT_EQ(covered.load(), kN);
}

}  // namespace
}  // namespace p2prank::util
