#include "overlay/node_id.hpp"

#include <gtest/gtest.h>

#include <set>

namespace p2prank::overlay {
namespace {

TEST(NodeIdDigits, MostSignificantFirst) {
  // hi = 0xABCD... : first hex digit (b=4) is 0xA.
  NodeId id{0xABCD000000000000ULL, 0x0000000000000001ULL};
  EXPECT_EQ(id.digit(0, 4), 0xAu);
  EXPECT_EQ(id.digit(1, 4), 0xBu);
  EXPECT_EQ(id.digit(2, 4), 0xCu);
  EXPECT_EQ(id.digit(3, 4), 0xDu);
  EXPECT_EQ(id.digit(31, 4), 0x1u);  // last digit of lo
}

TEST(NodeIdDigits, CrossWordDigits) {
  NodeId id{0x0000000000000005ULL, 0xF000000000000000ULL};
  EXPECT_EQ(id.digit(15, 4), 0x5u);  // last digit of hi
  EXPECT_EQ(id.digit(16, 4), 0xFu);  // first digit of lo
}

TEST(NodeIdDigits, BinaryDigits) {
  NodeId id{1ULL << 63, 0};
  EXPECT_EQ(id.digit(0, 1), 1u);
  EXPECT_EQ(id.digit(1, 1), 0u);
}

TEST(NodeIdPrefix, SharedPrefixDigits) {
  NodeId a{0xAB00000000000000ULL, 0};
  NodeId b{0xAB00000000000000ULL, 0};
  EXPECT_EQ(a.shared_prefix_digits(b, 4), 32);
  NodeId c{0xAC00000000000000ULL, 0};
  EXPECT_EQ(a.shared_prefix_digits(c, 4), 1);  // share 'A', differ at 'B'/'C'
  NodeId d{0x1000000000000000ULL, 0};
  EXPECT_EQ(a.shared_prefix_digits(d, 4), 0);
}

TEST(NodeIdHex, Formats32Chars) {
  NodeId id{0x0123456789ABCDEFULL, 0xFEDCBA9876543210ULL};
  EXPECT_EQ(id.to_hex(), "0123456789abcdeffedcba9876543210");
}

TEST(NodeIdFrom, KeyIsDeterministic) {
  EXPECT_EQ(node_id_from_key("ranker-1"), node_id_from_key("ranker-1"));
  EXPECT_NE(node_id_from_key("ranker-1"), node_id_from_key("ranker-2"));
}

TEST(NodeIdFrom, U64ValuesAreWellSpread) {
  std::set<std::uint64_t> highs;
  for (std::uint64_t i = 0; i < 1000; ++i) highs.insert(node_id_from_u64(i).hi);
  EXPECT_EQ(highs.size(), 1000u);
}

TEST(LinearDistance, SymmetricAndZeroOnEqual) {
  NodeId a{5, 10};
  NodeId b{5, 30};
  EXPECT_EQ(linear_distance(a, a), (NodeId{0, 0}));
  EXPECT_EQ(linear_distance(a, b), linear_distance(b, a));
  EXPECT_EQ(linear_distance(a, b), (NodeId{0, 20}));
}

TEST(LinearDistance, BorrowsAcrossWords) {
  NodeId a{1, 0};
  NodeId b{0, 1};
  // (1,0) - (0,1) = (0, 2^64 - 1).
  EXPECT_EQ(linear_distance(a, b), (NodeId{0, ~0ULL}));
}

TEST(RingDistance, WrapsAround) {
  NodeId a{~0ULL, ~0ULL};  // max id
  NodeId b{0, 0};
  EXPECT_EQ(ring_distance(a, b), (NodeId{0, 1}));  // one step clockwise
  EXPECT_EQ(ring_distance(b, a), (NodeId{~0ULL, ~0ULL}));
}

TEST(RingDistance, ZeroOnEqual) {
  NodeId a{3, 4};
  EXPECT_EQ(ring_distance(a, a), (NodeId{0, 0}));
}

TEST(InRingRange, BasicHalfOpen) {
  NodeId from{0, 10};
  NodeId to{0, 20};
  EXPECT_FALSE(in_ring_range({0, 10}, from, to));  // exclusive lower
  EXPECT_TRUE(in_ring_range({0, 15}, from, to));
  EXPECT_TRUE(in_ring_range({0, 20}, from, to));  // inclusive upper
  EXPECT_FALSE(in_ring_range({0, 21}, from, to));
}

TEST(InRingRange, WrappingInterval) {
  NodeId from{~0ULL, ~0ULL - 5};
  NodeId to{0, 5};
  EXPECT_TRUE(in_ring_range({0, 0}, from, to));
  EXPECT_TRUE(in_ring_range({~0ULL, ~0ULL}, from, to));
  EXPECT_FALSE(in_ring_range({0, 6}, from, to));
}

TEST(NodeIdOrdering, ComparesLexicographicallyHiLo) {
  EXPECT_LT((NodeId{0, ~0ULL}), (NodeId{1, 0}));
  EXPECT_LT((NodeId{1, 2}), (NodeId{1, 3}));
}

}  // namespace
}  // namespace p2prank::overlay
