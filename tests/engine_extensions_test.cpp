// Tests for the engine extensions beyond the paper's core algorithms:
// personalization (Section 3's non-uniform E), delta-send thresholds
// (compression future work), dynamic link graphs via warm_start
// (Section 4.3's relaxed static-graph assumption), and ranker churn
// (pause/resume — "suspend itself as its wish, or even shutdown").
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "engine/distributed.hpp"
#include "engine/reference.hpp"
#include "graph/graph_builder.hpp"
#include "graph/graph_updates.hpp"
#include "graph/synthetic_web.hpp"
#include "partition/partitioner.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace p2prank::engine {
namespace {

constexpr double kAlpha = 0.85;

util::ThreadPool& pool() {
  static util::ThreadPool p(4);
  return p;
}

class ExtensionsFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_ = new graph::WebGraph(
        graph::generate_synthetic_web(graph::google2002_config(4000, 91)));
    reference_ =
        new std::vector<double>(open_system_reference(*graph_, kAlpha, pool()));
    assignment_ = new std::vector<std::uint32_t>(
        partition::make_hash_url_partitioner()->partition(*graph_, 8));
  }
  static void TearDownTestSuite() {
    delete assignment_;
    delete reference_;
    delete graph_;
    assignment_ = nullptr;
    reference_ = nullptr;
    graph_ = nullptr;
  }
  static graph::WebGraph* graph_;
  static std::vector<double>* reference_;
  static std::vector<std::uint32_t>* assignment_;
};

graph::WebGraph* ExtensionsFixture::graph_ = nullptr;
std::vector<double>* ExtensionsFixture::reference_ = nullptr;
std::vector<std::uint32_t>* ExtensionsFixture::assignment_ = nullptr;

EngineOptions base_options() {
  EngineOptions o;
  o.algorithm = Algorithm::kDPR1;
  o.alpha = kAlpha;
  o.t1 = o.t2 = 1.0;
  o.seed = 5;
  return o;
}

// ------------------------------------------------------------ personalization

TEST_F(ExtensionsFixture, PersonalizedDistributedMatchesPersonalizedCentralized) {
  // Bias E toward site 0's pages.
  std::vector<double> e(graph_->num_pages(), 0.1);
  for (const graph::PageId p : graph_->pages_of_site(0)) e[p] = 5.0;
  const auto ref =
      open_system_reference_personalized(*graph_, kAlpha, e, pool());

  auto opts = base_options();
  opts.personalization = e;
  DistributedRanking sim(*graph_, *assignment_, 8, opts, pool());
  sim.set_reference(ref);
  const auto result = sim.run_until_error(1e-5, 2000.0, 2.0);
  EXPECT_TRUE(result.reached) << result.final_relative_error;
}

TEST_F(ExtensionsFixture, PersonalizationShiftsMassTowardFavoredPages) {
  std::vector<double> e(graph_->num_pages(), 0.1);
  for (const graph::PageId p : graph_->pages_of_site(0)) e[p] = 5.0;
  const auto biased =
      open_system_reference_personalized(*graph_, kAlpha, e, pool());
  double favored = 0.0;
  double favored_uniform = 0.0;
  for (const graph::PageId p : graph_->pages_of_site(0)) {
    favored += biased[p];
    favored_uniform += (*reference_)[p];
  }
  EXPECT_GT(favored, favored_uniform);
}

TEST_F(ExtensionsFixture, PersonalizationValidation) {
  auto opts = base_options();
  opts.personalization.assign(3, 1.0);
  EXPECT_THROW(DistributedRanking(*graph_, *assignment_, 8, opts, pool()),
               std::invalid_argument);
  std::vector<double> negative(graph_->num_pages(), 1.0);
  negative[0] = -1.0;
  EXPECT_THROW(
      (void)open_system_reference_personalized(*graph_, kAlpha, negative, pool()),
      std::invalid_argument);
  const std::vector<double> wrong(3, 1.0);
  EXPECT_THROW(
      (void)open_system_reference_personalized(*graph_, kAlpha, wrong, pool()),
      std::invalid_argument);
}

// ----------------------------------------------------------- delta thresholds

TEST_F(ExtensionsFixture, SendThresholdCutsRecordsButKeepsConvergence) {
  auto plain_opts = base_options();
  DistributedRanking plain(*graph_, *assignment_, 8, plain_opts, pool());
  plain.set_reference(*reference_);
  (void)plain.run(40.0, 40.0);

  auto delta_opts = base_options();
  delta_opts.send_threshold = 1e-6;
  DistributedRanking delta(*graph_, *assignment_, 8, delta_opts, pool());
  delta.set_reference(*reference_);
  (void)delta.run(40.0, 40.0);

  EXPECT_LT(delta.records_sent(), plain.records_sent() / 2);
  // Error floor stays tiny for a tiny threshold.
  EXPECT_LT(delta.relative_error_now(), 1e-3);
}

TEST_F(ExtensionsFixture, LargerThresholdTradesAccuracyForTraffic) {
  auto small = base_options();
  small.send_threshold = 1e-8;
  auto large = base_options();
  large.send_threshold = 1e-3;

  DistributedRanking sim_small(*graph_, *assignment_, 8, small, pool());
  sim_small.set_reference(*reference_);
  (void)sim_small.run(40.0, 40.0);
  DistributedRanking sim_large(*graph_, *assignment_, 8, large, pool());
  sim_large.set_reference(*reference_);
  (void)sim_large.run(40.0, 40.0);

  EXPECT_LT(sim_large.records_sent(), sim_small.records_sent());
  EXPECT_LE(sim_small.relative_error_now(),
            sim_large.relative_error_now() + 1e-12);
}

TEST_F(ExtensionsFixture, ThresholdWithLossStillConverges) {
  auto opts = base_options();
  opts.send_threshold = 1e-7;
  opts.delivery_probability = 0.7;
  DistributedRanking sim(*graph_, *assignment_, 8, opts, pool());
  sim.set_reference(*reference_);
  const auto result = sim.run_until_error(1e-3, 4000.0, 5.0);
  // Lost deltas must be retransmitted (commit only on delivery), so the
  // error still falls below a loose threshold.
  EXPECT_TRUE(result.reached) << result.final_relative_error;
}

// -------------------------------------------------------- dynamic link graphs

TEST_F(ExtensionsFixture, WarmStartAfterGraphChangeConvergesToNewReference) {
  // Converge on the original graph.
  DistributedRanking sim(*graph_, *assignment_, 8, base_options(), pool());
  sim.set_reference(*reference_);
  ASSERT_TRUE(sim.run_until_error(1e-6, 2000.0, 2.0).reached);
  const auto old_ranks = sim.global_ranks();

  // Rewire: delete one real link, add two new ones.
  graph::PageId with_link = 0;
  while (graph_->out_links(with_link).empty()) ++with_link;
  const auto target = graph_->out_links(with_link)[0];
  const std::vector<graph::LinkUpdate> ups{
      graph::LinkUpdate::remove_link(graph_->url(with_link), graph_->url(target)),
      graph::LinkUpdate::add_link(graph_->url(1), graph_->url(2)),
      graph::LinkUpdate::add_link(graph_->url(3), graph_->url(2)),
  };
  const auto g2 = graph::apply_updates(*graph_, ups);
  const auto ref2 = open_system_reference(g2, kAlpha, pool());

  DistributedRanking warm(g2, *assignment_, 8, base_options(), pool());
  warm.set_reference(ref2);
  warm.warm_start(old_ranks);
  // Already close (small change), and converges fully.
  EXPECT_LT(warm.relative_error_now(), 0.05);
  EXPECT_TRUE(warm.run_until_error(1e-6, 2000.0, 2.0).reached);
}

TEST_F(ExtensionsFixture, WarmStartBeatsColdStartForDpr2) {
  // DPR2 carries R directly across steps, so a warm-started run sits near
  // the new fixed point immediately. (DPR1's exact inner solve recomputes R
  // from X each step, so for it the warm start saves inner sweeps, not
  // outer rounds.)
  auto opts = base_options();
  opts.algorithm = Algorithm::kDPR2;
  DistributedRanking sim(*graph_, *assignment_, 8, opts, pool());
  sim.set_reference(*reference_);
  ASSERT_TRUE(sim.run_until_error(1e-6, 2000.0, 1.0).reached);
  const auto ranks = sim.global_ranks();

  const std::vector<graph::LinkUpdate> ups{
      graph::LinkUpdate::add_link(graph_->url(5), graph_->url(6))};
  const auto g2 = graph::apply_updates(*graph_, ups);
  const auto ref2 = open_system_reference(g2, kAlpha, pool());

  DistributedRanking warm(g2, *assignment_, 8, opts, pool());
  warm.set_reference(ref2);
  warm.warm_start(ranks);

  DistributedRanking cold(g2, *assignment_, 8, opts, pool());
  cold.set_reference(ref2);

  // After the same (short) virtual time, the warm engine must be far ahead.
  (void)warm.run(6.0, 6.0);
  (void)cold.run(6.0, 6.0);
  EXPECT_LT(warm.relative_error_now(), cold.relative_error_now() / 10.0);
  EXPECT_TRUE(warm.run_until_error(1e-6, 2000.0, 1.0).reached);
}

TEST_F(ExtensionsFixture, WarmStartValidatesSize) {
  DistributedRanking sim(*graph_, *assignment_, 8, base_options(), pool());
  const std::vector<double> wrong(3, 0.0);
  EXPECT_THROW(sim.warm_start(wrong), std::invalid_argument);
}

// ------------------------------------------------------------------- churn

TEST_F(ExtensionsFixture, PausedGroupStallsConvergence) {
  auto opts = base_options();
  DistributedRanking sim(*graph_, *assignment_, 8, opts, pool());
  sim.set_reference(*reference_);
  sim.pause_group(0);
  sim.pause_group(1);
  EXPECT_TRUE(sim.is_paused(0));
  (void)sim.run(60.0, 60.0);
  // Two of eight groups never ran: their pages still hold rank 0, so the
  // error cannot reach the converged regime.
  EXPECT_GT(sim.relative_error_now(), 0.05);
  EXPECT_EQ(sim.group(0).outer_steps(), 0u);
}

TEST_F(ExtensionsFixture, ResumeRecovers) {
  DistributedRanking sim(*graph_, *assignment_, 8, base_options(), pool());
  sim.set_reference(*reference_);
  sim.pause_group(0);
  (void)sim.run(30.0, 30.0);
  const double stalled = sim.relative_error_now();
  sim.resume_group(0);
  EXPECT_FALSE(sim.is_paused(0));
  const auto result = sim.run_until_error(1e-5, 2000.0, 2.0);
  EXPECT_TRUE(result.reached);
  EXPECT_LT(sim.relative_error_now(), stalled);
}

TEST_F(ExtensionsFixture, ResumeIsIdempotent) {
  DistributedRanking sim(*graph_, *assignment_, 8, base_options(), pool());
  sim.set_reference(*reference_);
  sim.resume_group(3);  // not paused: no-op, no double scheduling
  (void)sim.run(10.0, 10.0);
  sim.pause_group(3);
  sim.resume_group(3);
  sim.resume_group(3);
  const auto r1 = sim.run(20.0, 10.0);
  EXPECT_FALSE(r1.empty());
}

TEST_F(ExtensionsFixture, CrashLosesStateButSystemRecovers) {
  DistributedRanking sim(*graph_, *assignment_, 8, base_options(), pool());
  sim.set_reference(*reference_);
  ASSERT_TRUE(sim.run_until_error(1e-5, 2000.0, 2.0).reached);

  sim.crash_group(2);
  // The crashed group's pages dropped to ~0: error jumps.
  const double after_crash = sim.relative_error_now();
  EXPECT_GT(after_crash, 1e-3);
  // Its peers keep ranking and re-deliver X; the group re-solves.
  const auto recovered = sim.run_until_error(1e-5, 2000.0, 2.0);
  EXPECT_TRUE(recovered.reached) << recovered.final_relative_error;
}

TEST_F(ExtensionsFixture, CrashPlusCheckpointRestoresInstantly) {
  DistributedRanking sim(*graph_, *assignment_, 8, base_options(), pool());
  sim.set_reference(*reference_);
  ASSERT_TRUE(sim.run_until_error(1e-6, 2000.0, 2.0).reached);
  const auto checkpoint = sim.global_ranks();

  sim.crash_group(1);
  sim.crash_group(4);
  EXPECT_GT(sim.relative_error_now(), 1e-3);
  sim.warm_start(checkpoint);  // restore from the saved ranks
  EXPECT_LT(sim.relative_error_now(), 1e-5);
}

TEST_F(ExtensionsFixture, RepeatedCrashesOfSameGroupStillConverge) {
  DistributedRanking sim(*graph_, *assignment_, 8, base_options(), pool());
  sim.set_reference(*reference_);
  for (int round = 0; round < 3; ++round) {
    (void)sim.run(sim.now() + 10.0, 5.0);
    sim.crash_group(0);
  }
  EXPECT_TRUE(sim.run_until_error(1e-5, 2000.0, 2.0).reached);
}

TEST_F(ExtensionsFixture, CrashWhilePausedStaysPausedUntilResume) {
  DistributedRanking sim(*graph_, *assignment_, 8, base_options(), pool());
  sim.set_reference(*reference_);
  (void)sim.run(20.0, 10.0);
  sim.pause_group(2);
  const auto steps_at_pause = sim.group(2).outer_steps();
  sim.crash_group(2);
  // Crash-while-down: state is wiped but the group reboots into standby.
  EXPECT_TRUE(sim.is_paused(2));
  (void)sim.run(60.0, 20.0);
  EXPECT_EQ(sim.group(2).outer_steps(), steps_at_pause);
  for (const graph::PageId p : sim.group(2).members()) {
    EXPECT_EQ(sim.global_ranks()[p], 0.0);
    break;  // one page suffices; ranks() copies the whole vector
  }
  sim.resume_group(2);
  EXPECT_TRUE(sim.run_until_error(1e-5, 2000.0, 2.0).reached);
}

TEST_F(ExtensionsFixture, FaultsOnEmptyGroupsAreSafeNoOps) {
  // 4 pages spread over 12 groups: most groups are empty. Faulting an empty
  // group must neither throw nor wedge the run.
  const graph::WebGraph tiny = [] {
    graph::GraphBuilder b;
    const auto hub = b.add_page("s.edu/hub", "s.edu");
    for (int i = 0; i < 3; ++i) {
      b.add_link(b.add_page("s.edu/l" + std::to_string(i), "s.edu"), hub);
    }
    return std::move(b).build();
  }();
  const auto assignment =
      partition::make_hash_url_partitioner()->partition(tiny, 12);
  DistributedRanking sim(tiny, assignment, 12, base_options(), pool());
  sim.set_reference(open_system_reference(tiny, kAlpha, pool()));
  std::uint32_t empty_group = 12;
  for (std::uint32_t g = 0; g < 12; ++g) {
    if (sim.group(g).size() == 0) { empty_group = g; break; }
  }
  ASSERT_LT(empty_group, 12u);
  sim.crash_group(empty_group);
  sim.pause_group(empty_group);
  sim.crash_group(empty_group);  // crash while paused, still empty
  sim.resume_group(empty_group);
  EXPECT_TRUE(sim.run_until_error(1e-8, 2000.0, 2.0).reached);
  EXPECT_EQ(sim.group(empty_group).outer_steps(), 0u);
  EXPECT_THROW(sim.crash_group(12), std::out_of_range);
  EXPECT_THROW(sim.pause_group(12), std::out_of_range);
}

TEST_F(ExtensionsFixture, DoublePauseIsLevelTriggeredSingleResumeRestarts) {
  DistributedRanking sim(*graph_, *assignment_, 8, base_options(), pool());
  sim.set_reference(*reference_);
  sim.pause_group(5);
  sim.pause_group(5);  // pause is a level, not a count
  (void)sim.run(20.0, 10.0);
  EXPECT_EQ(sim.group(5).outer_steps(), 0u);
  sim.resume_group(5);  // ONE resume restarts it
  EXPECT_FALSE(sim.is_paused(5));
  (void)sim.run(40.0, 10.0);
  EXPECT_GT(sim.group(5).outer_steps(), 0u);
  EXPECT_TRUE(sim.run_until_error(1e-5, 2000.0, 2.0).reached);
}

TEST_F(ExtensionsFixture, ChurnDuringRunIsTolerated) {
  // Pause/resume alternating groups between run windows — the monotone
  // machinery must keep converging through the churn.
  DistributedRanking sim(*graph_, *assignment_, 8, base_options(), pool());
  sim.set_reference(*reference_);
  for (int round = 0; round < 4; ++round) {
    const auto victim = static_cast<std::uint32_t>(round % 8);
    sim.pause_group(victim);
    (void)sim.run(sim.now() + 10.0, 5.0);
    sim.resume_group(victim);
  }
  const auto result = sim.run_until_error(1e-5, 2000.0, 2.0);
  EXPECT_TRUE(result.reached);
}

// ------------------------------------------------------------ worklist sweeps

TEST_F(ExtensionsFixture, WorklistEngineBitwiseMatchesDense) {
  // Exact-mode worklists (worklist_epsilon == 0) route every local sweep
  // through the frontier kernel yet must not change a single bit of engine
  // behavior. Crash and churn between run() segments exercise the frontier
  // reset rules (set_ranks / reset_state / group rebuilds).
  for (const Algorithm alg : {Algorithm::kDPR1, Algorithm::kDPR2}) {
    auto run_one = [&](bool worklist) {
      auto o = base_options();
      o.algorithm = alg;
      o.worklist = worklist;
      DistributedRanking sim(*graph_, *assignment_, 8, o, pool());
      sim.set_reference(*reference_);
      (void)sim.run(25.0, 25.0);
      sim.crash_group(2);
      (void)sim.run(50.0, 25.0);
      sim.leave_group(3, 4);
      sim.join_group(3, 4);
      (void)sim.run(80.0, 30.0);
      return sim.global_ranks();
    };
    const auto dense = run_one(false);
    const auto sparse = run_one(true);
    ASSERT_EQ(dense.size(), sparse.size());
    for (std::size_t i = 0; i < dense.size(); ++i) {
      ASSERT_EQ(dense[i], sparse[i])
          << "page " << i << " alg " << static_cast<int>(alg);
    }
  }
}

TEST_F(ExtensionsFixture, ThresholdedWorklistStillConverges) {
  // epsilon > 0 trades bitwise identity for a smaller frontier; the periodic
  // dense sweeps must still carry the engine below the error threshold.
  auto o = base_options();
  o.algorithm = Algorithm::kDPR2;
  o.worklist = true;
  o.worklist_epsilon = 1e-9;
  o.worklist_full_interval = 16;
  DistributedRanking sim(*graph_, *assignment_, 8, o, pool());
  sim.set_reference(*reference_);
  const auto result = sim.run_until_error(1e-4, 2000.0, 5.0);
  EXPECT_TRUE(result.reached) << result.final_relative_error;
}

TEST_F(ExtensionsFixture, WorklistOptionValidationRejectsBadValues) {
  auto o = base_options();
  o.worklist = true;
  o.worklist_epsilon = -1.0;
  EXPECT_THROW(DistributedRanking(*graph_, *assignment_, 8, o, pool()),
               std::invalid_argument);
  o.worklist_epsilon = 1e-9;
  o.worklist_full_interval = 0;
  EXPECT_THROW(DistributedRanking(*graph_, *assignment_, 8, o, pool()),
               std::invalid_argument);
}

}  // namespace
}  // namespace p2prank::engine
