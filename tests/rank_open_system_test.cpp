#include "rank/open_system.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "graph/synthetic_web.hpp"
#include "rank/link_matrix.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace p2prank::rank {
namespace {

constexpr double kAlpha = 0.85;
constexpr double kBeta = 1.0 - kAlpha;

util::ThreadPool& pool() {
  static util::ThreadPool p(4);
  return p;
}

SolveOptions tight_opts() {
  SolveOptions o;
  o.alpha = kAlpha;
  o.epsilon = 1e-14;
  o.max_iterations = 3000;
  return o;
}

TEST(OpenSystem, TwoCycleFixedPointIsOne) {
  // R = beta + alpha * R  =>  R = 1 for both pages.
  const auto g = test::two_cycle();
  const auto m = LinkMatrix::from_graph(g, kAlpha);
  const auto r = solve_open_system_uniform(m, 1.0, tight_opts(), pool());
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.ranks[0], 1.0, 1e-10);
  EXPECT_NEAR(r.ranks[1], 1.0, 1e-10);
}

TEST(OpenSystem, StarClosedForm) {
  // Leaves: R = beta. Hub: R = beta + 3 * alpha * beta.
  const auto g = test::star(3);
  const auto m = LinkMatrix::from_graph(g, kAlpha);
  const auto r = solve_open_system_uniform(m, 1.0, tight_opts(), pool());
  ASSERT_TRUE(r.converged);
  const auto hub = *g.find("s.edu/hub");
  EXPECT_NEAR(r.ranks[hub], kBeta + 3.0 * kAlpha * kBeta, 1e-10);
  for (std::size_t v = 0; v < r.ranks.size(); ++v) {
    if (v != hub) {
      EXPECT_NEAR(r.ranks[v], kBeta, 1e-10);
    }
  }
}

TEST(OpenSystem, ChainClosedForm) {
  // R(a_i) = beta * (1 + alpha + ... + alpha^i).
  const auto g = test::chain(5);
  const auto m = LinkMatrix::from_graph(g, kAlpha);
  const auto r = solve_open_system_uniform(m, 1.0, tight_opts(), pool());
  ASSERT_TRUE(r.converged);
  double expected = kBeta;
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(r.ranks[i], expected, 1e-10) << i;
    expected = kBeta + kAlpha * expected;
  }
}

TEST(OpenSystem, LeakyPairLosesRank) {
  // a: beta (no in-links). b: beta + alpha/2 * beta (half of a's rank leaks).
  const auto g = test::leaky_pair();
  const auto m = LinkMatrix::from_graph(g, kAlpha);
  const auto r = solve_open_system_uniform(m, 1.0, tight_opts(), pool());
  const auto a = *g.find("s.edu/a");
  const auto b = *g.find("s.edu/b");
  EXPECT_NEAR(r.ranks[a], kBeta, 1e-12);
  EXPECT_NEAR(r.ranks[b], kBeta + kAlpha / 2.0 * kBeta, 1e-12);
}

TEST(OpenSystem, ForcingShiftsFixedPoint) {
  // Adding afferent rank X to a page raises its rank by X plus propagation.
  const auto g = test::two_cycle();
  const auto m = LinkMatrix::from_graph(g, kAlpha);
  std::vector<double> forcing{kBeta + 0.5, kBeta};  // X(a) = 0.5
  const auto r = solve_open_system(m, forcing, {}, tight_opts(), pool());
  ASSERT_TRUE(r.converged);
  // Closed form: r0 = beta + 0.5 + alpha*r1, r1 = beta + alpha*r0.
  const double r0 = (kBeta + 0.5 + kAlpha * kBeta) / (1 - kAlpha * kAlpha);
  const double r1 = kBeta + kAlpha * r0;
  EXPECT_NEAR(r.ranks[0], r0, 1e-10);
  EXPECT_NEAR(r.ranks[1], r1, 1e-10);
}

TEST(OpenSystem, WarmStartFromFixedPointConvergesInstantly) {
  const auto g = test::two_cycle();
  const auto m = LinkMatrix::from_graph(g, kAlpha);
  const auto first = solve_open_system_uniform(m, 1.0, tight_opts(), pool());
  const std::vector<double> forcing(m.dimension(), kBeta);
  const auto second =
      solve_open_system(m, forcing, first.ranks, tight_opts(), pool());
  EXPECT_LE(second.iterations, 2u);
}

TEST(OpenSystem, RejectsSizeMismatches) {
  const auto g = test::two_cycle();
  const auto m = LinkMatrix::from_graph(g, kAlpha);
  const std::vector<double> bad(3, 0.0);
  EXPECT_THROW((void)solve_open_system(m, bad, {}, tight_opts(), pool()),
               std::invalid_argument);
  const std::vector<double> forcing(2, kBeta);
  EXPECT_THROW((void)solve_open_system(m, forcing, bad, tight_opts(), pool()),
               std::invalid_argument);
}

TEST(OpenSystem, ResidualHistoryIsRecordedAndDecreasing) {
  const auto g = graph::generate_synthetic_web(graph::google2002_config(3000, 5));
  const auto m = LinkMatrix::from_graph(g, kAlpha);
  auto opts = tight_opts();
  opts.record_residuals = true;
  const auto r = solve_open_system_uniform(m, 1.0, opts, pool());
  ASSERT_TRUE(r.converged);
  ASSERT_EQ(r.residual_history.size(), r.iterations);
  // Residuals of a contraction shrink geometrically (allow tiny noise).
  for (std::size_t i = 3; i < r.residual_history.size(); ++i) {
    EXPECT_LT(r.residual_history[i], r.residual_history[i - 1] * 1.0001) << i;
  }
}

TEST(OpenSystem, ResidualContractionBoundedByNorm) {
  // ||r_{i+1} - r_i|| <= q * ||r_i - r_{i-1}|| with q = contraction norm.
  const auto g = graph::generate_synthetic_web(graph::google2002_config(2000, 8));
  const auto m = LinkMatrix::from_graph(g, kAlpha);
  auto opts = tight_opts();
  opts.record_residuals = true;
  const auto r = solve_open_system_uniform(m, 1.0, opts, pool());
  const double q = m.contraction_norm();
  for (std::size_t i = 1; i < r.residual_history.size(); ++i) {
    EXPECT_LE(r.residual_history[i], q * r.residual_history[i - 1] + 1e-12) << i;
  }
}

TEST(OpenSystem, Theorem33BoundHolds) {
  // ||x* - x_m|| <= q/(1-q) ||x_m - x_{m-1}||.
  const auto g = graph::generate_synthetic_web(graph::google2002_config(2000, 9));
  const auto m = LinkMatrix::from_graph(g, kAlpha);
  // Reference: very tight solve.
  const auto exact = solve_open_system_uniform(m, 1.0, tight_opts(), pool());
  // Loose solve.
  SolveOptions loose = tight_opts();
  loose.epsilon = 1e-4;
  const auto approx = solve_open_system_uniform(m, 1.0, loose, pool());
  const double bound =
      theorem33_error_bound(m.contraction_norm(), approx.final_delta);
  EXPECT_LE(util::l1_distance(approx.ranks, exact.ranks), bound * 1.001);
}

TEST(OpenSystem, Theorem33BoundInfiniteAtNormOne) {
  EXPECT_TRUE(std::isinf(theorem33_error_bound(1.0, 0.5)));
}

TEST(OpenSystem, RanksAreNonNegative) {
  // Lemma 1: A >= 0, f >= 0, ||A|| < 1  =>  r >= 0.
  const auto g = graph::generate_synthetic_web(graph::google2002_config(5000, 13));
  const auto m = LinkMatrix::from_graph(g, kAlpha);
  const auto r = solve_open_system_uniform(m, 1.0, tight_opts(), pool());
  for (const double x : r.ranks) ASSERT_GE(x, 0.0);
}

TEST(OpenSystem, MonotoneInForcing) {
  // Lemma 2: f1 >= f2 => r1 >= r2.
  const auto g = graph::generate_synthetic_web(graph::google2002_config(2000, 21));
  const auto m = LinkMatrix::from_graph(g, kAlpha);
  std::vector<double> f1(m.dimension(), kBeta);
  std::vector<double> f2(m.dimension(), kBeta);
  util::Rng rng(17);
  for (auto& x : f1) x += rng.uniform() * 0.3;  // f1 >= f2 everywhere
  const auto r1 = solve_open_system(m, f1, {}, tight_opts(), pool());
  const auto r2 = solve_open_system(m, f2, {}, tight_opts(), pool());
  for (std::size_t i = 0; i < r1.ranks.size(); ++i) {
    ASSERT_GE(r1.ranks[i], r2.ranks[i] - 1e-12) << i;
  }
}

struct AlphaParam {
  double alpha;
};

class AlphaSweep : public ::testing::TestWithParam<AlphaParam> {};

TEST_P(AlphaSweep, ConvergesForAllAlpha) {
  // Theorem 3.1/3.2: ||A|| <= alpha < 1 guarantees convergence at any alpha.
  const auto g = graph::generate_synthetic_web(graph::google2002_config(2000, 31));
  const auto m = LinkMatrix::from_graph(g, GetParam().alpha);
  SolveOptions opts;
  opts.alpha = GetParam().alpha;
  opts.epsilon = 1e-12;
  opts.max_iterations = 5000;
  const auto r = solve_open_system_uniform(m, 1.0, opts, pool());
  EXPECT_TRUE(r.converged) << "alpha=" << GetParam().alpha;
}

TEST_P(AlphaSweep, HigherAlphaNeedsMoreIterations) {
  const auto g = graph::generate_synthetic_web(graph::google2002_config(2000, 31));
  SolveOptions opts;
  opts.epsilon = 1e-10;
  opts.max_iterations = 5000;
  const auto lo = solve_open_system_uniform(LinkMatrix::from_graph(g, 0.5), 1.0,
                                            opts, pool());
  const auto hi = solve_open_system_uniform(
      LinkMatrix::from_graph(g, GetParam().alpha), 1.0, opts, pool());
  if (GetParam().alpha > 0.5) {
    EXPECT_GE(hi.iterations, lo.iterations);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, AlphaSweep,
                         ::testing::Values(AlphaParam{0.5}, AlphaParam{0.85},
                                           AlphaParam{0.95}, AlphaParam{0.99}),
                         [](const auto& suite_info) {
                           return "a" + std::to_string(
                                            static_cast<int>(suite_info.param.alpha * 100));
                         });

}  // namespace
}  // namespace p2prank::rank
