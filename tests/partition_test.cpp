#include "partition/partitioner.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "graph/synthetic_web.hpp"
#include "partition/partition_stats.hpp"

namespace p2prank::partition {
namespace {

class PartitionFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_ = new graph::WebGraph(
        graph::generate_synthetic_web(graph::google2002_config(20000, 33)));
  }
  static void TearDownTestSuite() {
    delete graph_;
    graph_ = nullptr;
  }
  static graph::WebGraph* graph_;
};

graph::WebGraph* PartitionFixture::graph_ = nullptr;

TEST_F(PartitionFixture, AllStrategiesProduceValidAssignments) {
  const std::uint32_t k = 16;
  for (const auto& p :
       {make_random_partitioner(1), make_hash_url_partitioner(),
        make_hash_site_partitioner(), make_balanced_site_partitioner()}) {
    const auto groups = p->partition(*graph_, k);
    ASSERT_EQ(groups.size(), graph_->num_pages()) << p->name();
    for (const auto g : groups) ASSERT_LT(g, k) << p->name();
  }
}

TEST_F(PartitionFixture, KOfOnePutsEverythingInGroupZero) {
  for (const auto& p : {make_random_partitioner(1), make_hash_url_partitioner(),
                        make_hash_site_partitioner(),
                        make_balanced_site_partitioner()}) {
    const auto groups = p->partition(*graph_, 1);
    for (const auto g : groups) ASSERT_EQ(g, 0u) << p->name();
  }
}

TEST_F(PartitionFixture, ZeroKRejected) {
  EXPECT_THROW((void)make_hash_site_partitioner()->partition(*graph_, 0),
               std::invalid_argument);
}

TEST_F(PartitionFixture, SitePartitionKeepsSitesWhole) {
  const auto groups = make_hash_site_partitioner()->partition(*graph_, 32);
  for (graph::SiteId s = 0; s < graph_->num_sites(); ++s) {
    const auto pages = graph_->pages_of_site(s);
    for (const auto p : pages) ASSERT_EQ(groups[p], groups[pages[0]]);
  }
}

TEST_F(PartitionFixture, BalancedSiteKeepsSitesWhole) {
  const auto groups = make_balanced_site_partitioner()->partition(*graph_, 32);
  for (graph::SiteId s = 0; s < graph_->num_sites(); ++s) {
    const auto pages = graph_->pages_of_site(s);
    for (const auto p : pages) ASSERT_EQ(groups[p], groups[pages[0]]);
  }
}

TEST_F(PartitionFixture, SitePartitionCutsFarFewerLinksThanUrlPartition) {
  // The core claim of Section 4.1: at ~90% intra-site locality, dividing at
  // site granularity sheds most cut links.
  const std::uint32_t k = 16;
  const auto by_site = compute_partition_stats(
      *graph_, make_hash_site_partitioner()->partition(*graph_, k), k);
  const auto by_url = compute_partition_stats(
      *graph_, make_hash_url_partitioner()->partition(*graph_, k), k);
  EXPECT_LT(by_site.cut_fraction(), 0.2);
  EXPECT_GT(by_url.cut_fraction(), 0.8);
  EXPECT_LT(static_cast<double>(by_site.cut_links),
            0.25 * static_cast<double>(by_url.cut_links));
}

TEST_F(PartitionFixture, RandomAndUrlCutSimilarly) {
  const std::uint32_t k = 16;
  const auto random = compute_partition_stats(
      *graph_, make_random_partitioner(5)->partition(*graph_, k), k);
  const auto by_url = compute_partition_stats(
      *graph_, make_hash_url_partitioner()->partition(*graph_, k), k);
  EXPECT_NEAR(random.cut_fraction(), by_url.cut_fraction(), 0.05);
}

TEST_F(PartitionFixture, HashStrategiesAreRecrawlStable) {
  // A page revisited later must land on the same ranker: assign_url is
  // defined and agrees with the bulk partition.
  for (const auto& p : {make_hash_url_partitioner(), make_hash_site_partitioner()}) {
    const std::uint32_t k = 8;
    const auto groups = p->partition(*graph_, k);
    for (graph::PageId page = 0; page < graph_->num_pages(); page += 101) {
      GroupId g = 0;
      ASSERT_TRUE(p->assign_url(graph_->url(page), k, g)) << p->name();
      EXPECT_EQ(g, groups[page]) << p->name() << " url=" << graph_->url(page);
    }
  }
}

TEST_F(PartitionFixture, RandomStrategyCannotAnswerSingleUrl) {
  GroupId g = 0;
  EXPECT_FALSE(make_random_partitioner(1)->assign_url("s.edu/a", 8, g));
}

TEST_F(PartitionFixture, BalancedSiteBeatsHashSiteOnBalance) {
  const std::uint32_t k = 8;
  const auto hashed = compute_partition_stats(
      *graph_, make_hash_site_partitioner()->partition(*graph_, k), k);
  const auto balanced = compute_partition_stats(
      *graph_, make_balanced_site_partitioner()->partition(*graph_, k), k);
  EXPECT_LE(balanced.imbalance(), hashed.imbalance());
  // No site-granularity partition can beat the largest single site; LPT is
  // within 4/3 of the optimum, which is max(ideal, largest site).
  std::size_t largest_site = 0;
  for (graph::SiteId s = 0; s < graph_->num_sites(); ++s) {
    largest_site = std::max(largest_site, graph_->pages_of_site(s).size());
  }
  const double ideal =
      static_cast<double>(graph_->num_pages()) / static_cast<double>(k);
  const double optimum = std::max(ideal, static_cast<double>(largest_site));
  EXPECT_LE(balanced.imbalance(), 4.0 / 3.0 * optimum / ideal + 1e-9);
}

TEST_F(PartitionFixture, StatsAfferentEqualsEfferentTotals) {
  const std::uint32_t k = 16;
  const auto groups = make_hash_url_partitioner()->partition(*graph_, k);
  const auto stats = compute_partition_stats(*graph_, groups, k);
  std::size_t eff = 0;
  std::size_t aff = 0;
  for (std::uint32_t g = 0; g < k; ++g) {
    eff += stats.group_efferent[g];
    aff += stats.group_afferent[g];
  }
  EXPECT_EQ(eff, stats.cut_links);
  EXPECT_EQ(aff, stats.cut_links);
}

TEST_F(PartitionFixture, GroupSizesSumToPages) {
  const std::uint32_t k = 13;
  const auto stats = compute_partition_stats(
      *graph_, make_random_partitioner(9)->partition(*graph_, k), k);
  std::size_t total = 0;
  for (const auto s : stats.group_sizes) total += s;
  EXPECT_EQ(total, graph_->num_pages());
}

TEST_F(PartitionFixture, StatsRejectSizeMismatch) {
  std::vector<GroupId> wrong(graph_->num_pages() - 1, 0);
  EXPECT_THROW((void)compute_partition_stats(*graph_, wrong, 4),
               std::invalid_argument);
}

struct CutParam {
  std::uint32_t k;
};

class SiteCutSweep : public PartitionFixture,
                     public ::testing::WithParamInterface<CutParam> {};

TEST_P(SiteCutSweep, CutFractionBoundedByInterSiteLinks) {
  // Site partitioning can only cut inter-site links, so the cut fraction is
  // bounded by 1 - intra_site_fraction (~10%) at any k.
  const auto k = GetParam().k;
  const auto stats = compute_partition_stats(
      *graph_, make_hash_site_partitioner()->partition(*graph_, k), k);
  EXPECT_LE(stats.cut_fraction(), 0.15) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Ks, SiteCutSweep,
                         ::testing::Values(CutParam{2}, CutParam{4}, CutParam{16},
                                           CutParam{64}, CutParam{256}),
                         [](const auto& suite_info) {
                           return "k" + std::to_string(suite_info.param.k);
                         });

class CutGrowthSweep : public PartitionFixture,
                       public ::testing::WithParamInterface<CutParam> {};

TEST_P(CutGrowthSweep, UrlCutFractionApproachesOneMinusOneOverK) {
  const auto k = GetParam().k;
  const auto stats = compute_partition_stats(
      *graph_, make_hash_url_partitioner()->partition(*graph_, k), k);
  const double expected = 1.0 - 1.0 / static_cast<double>(k);
  EXPECT_NEAR(stats.cut_fraction(), expected, 0.05) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Ks, CutGrowthSweep,
                         ::testing::Values(CutParam{2}, CutParam{4}, CutParam{8},
                                           CutParam{32}),
                         [](const auto& suite_info) {
                           return "k" + std::to_string(suite_info.param.k);
                         });

}  // namespace
}  // namespace p2prank::partition
