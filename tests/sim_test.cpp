#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/processes.hpp"

namespace p2prank::sim {
namespace {

TEST(EventQueue, StartsAtTimeZeroEmpty) {
  EventQueue q;
  EXPECT_EQ(q.now(), 0.0);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.step());
}

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 3.0);
}

TEST(EventQueue, FifoAmongEqualTimestamps) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, RejectsPastAndNegative) {
  EventQueue q;
  q.schedule_at(5.0, [] {});
  q.step();
  EXPECT_THROW(q.schedule_at(4.0, [] {}), std::invalid_argument);
  EXPECT_THROW(q.schedule_in(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(q.schedule_at(6.0, EventQueue::Handler{}), std::invalid_argument);
}

TEST(EventQueue, HandlersMayScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  // A self-perpetuating chain of 5 events.
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) q.schedule_in(1.0, chain);
  };
  q.schedule_at(1.0, chain);
  q.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(q.now(), 5.0);
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(2.0, [&] { ++fired; });
  q.schedule_at(2.5, [&] { ++fired; });
  const auto executed = q.run_until(2.0);
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), 2.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RunUntilAdvancesTimeEvenWhenIdle) {
  EventQueue q;
  q.run_until(42.0);
  EXPECT_EQ(q.now(), 42.0);
}

TEST(EventQueue, RunUntilExecutesCascadedEventsWithinWindow) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] {
    ++fired;
    q.schedule_in(0.5, [&] { ++fired; });   // at 1.5, inside window
    q.schedule_in(10.0, [&] { ++fired; });  // at 11, outside
  });
  q.run_until(5.0);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RunRespectsMaxEvents) {
  EventQueue q;
  int fired = 0;
  for (int i = 0; i < 10; ++i) q.schedule_at(i + 1.0, [&] { ++fired; });
  const auto executed = q.run(4);
  EXPECT_EQ(executed, 4u);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(q.pending(), 6u);
}

TEST(WaitProcess, RejectsBadInterval) {
  EXPECT_THROW(WaitProcess(-1.0, 5.0, 3, 1), std::invalid_argument);
  EXPECT_THROW(WaitProcess(5.0, 2.0, 3, 1), std::invalid_argument);
}

TEST(WaitProcess, MeansDrawnFromInterval) {
  WaitProcess w(2.0, 8.0, 1000, 9);
  for (std::size_t u = 0; u < 1000; ++u) {
    EXPECT_GE(w.mean_of(u), 2.0);
    EXPECT_LE(w.mean_of(u), 8.0);
  }
}

TEST(WaitProcess, DegenerateIntervalGivesExactMean) {
  WaitProcess w(15.0, 15.0, 10, 9);
  for (std::size_t u = 0; u < 10; ++u) EXPECT_DOUBLE_EQ(w.mean_of(u), 15.0);
}

TEST(WaitProcess, WaitsAreExponentialWithNodeMean) {
  WaitProcess w(4.0, 4.0, 1, 10);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += w.next_wait(0);
  EXPECT_NEAR(sum / kN, 4.0, 0.1);
}

TEST(WaitProcess, WaitsNonNegative) {
  WaitProcess w(0.0, 6.0, 5, 11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(w.next_wait(static_cast<std::size_t>(i % 5)), 0.0);
  }
}

TEST(LossModel, RejectsBadProbability) {
  EXPECT_THROW(LossModel(-0.1, 1), std::invalid_argument);
  EXPECT_THROW(LossModel(1.1, 1), std::invalid_argument);
}

TEST(LossModel, AlwaysDeliversAtOne) {
  LossModel m(1.0, 2);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(m.delivered());
}

TEST(LossModel, NeverDeliversAtZero) {
  LossModel m(0.0, 2);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(m.delivered());
}

TEST(LossModel, FrequencyMatchesProbability) {
  LossModel m(0.7, 3);
  int delivered = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) delivered += m.delivered() ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(delivered) / kN, 0.7, 0.01);
}

TEST(LossModel, StreamStaysAlignedAcrossProbabilities) {
  // p = 1 must still consume one RNG draw per send, so two same-seed models
  // that start at different loss levels make identical decisions once their
  // probabilities agree — the foundation of seed-for-seed comparability in
  // the chaos harness.
  LossModel lossless(1.0, 17);
  LossModel lossy(0.6, 17);
  constexpr int kWarmup = 5000;
  for (int i = 0; i < kWarmup; ++i) {
    EXPECT_TRUE(lossless.delivered());  // p = 1 never loses...
    (void)lossy.delivered();            // ...but both consume a draw
  }
  lossless.set_probability(0.35);
  lossy.set_probability(0.35);
  for (int i = 0; i < kWarmup; ++i) {
    EXPECT_EQ(lossless.delivered(), lossy.delivered()) << "send " << i;
  }
}

TEST(LossModel, SetProbabilityValidatesAndReports) {
  LossModel m(0.5, 4);
  EXPECT_DOUBLE_EQ(m.delivery_probability(), 0.5);
  m.set_probability(1.0);
  EXPECT_DOUBLE_EQ(m.delivery_probability(), 1.0);
  EXPECT_THROW(m.set_probability(-0.01), std::invalid_argument);
  EXPECT_THROW(m.set_probability(1.01), std::invalid_argument);
}

}  // namespace
}  // namespace p2prank::sim
