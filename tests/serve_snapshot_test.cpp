// Epoch-swapped snapshot store (DESIGN.md §12 "Serving contract"): readers
// never observe mixed epochs under concurrent publish, held snapshots stay
// immutable, invalidation marks published epochs stale without dropping
// availability, and engine-published snapshots are bitwise-identical across
// thread-pool sizes 1 / 2 / 8.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "engine/distributed.hpp"
#include "engine/reference.hpp"
#include "graph/synthetic_web.hpp"
#include "partition/partitioner.hpp"
#include "serve/snapshot.hpp"
#include "util/thread_pool.hpp"

namespace p2prank::serve {
namespace {

constexpr double kAlpha = 0.85;

/// Publish a state whose every observable is a function of one value `v`:
/// any reader that sees disagreeing pieces caught a torn snapshot.
void publish_uniform(SnapshotStore& store, double v, std::size_t pages,
                     std::uint32_t shards) {
  std::vector<double> ranks(pages, v);
  std::vector<std::uint32_t> assignment(pages);
  for (std::size_t i = 0; i < pages; ++i) {
    assignment[i] = static_cast<std::uint32_t>(i % shards);
  }
  store.publish(v, ranks, assignment, shards);
}

TEST(ServeSnapshotStore, EmptyUntilFirstPublishThenAvailable) {
  SnapshotStore store(4);
  EXPECT_EQ(store.acquire(), nullptr);
  EXPECT_EQ(store.latest_epoch(), 0u);
  publish_uniform(store, 1.0, 10, 2);
  const auto snap = store.acquire();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->epoch(), 1u);
  EXPECT_EQ(snap->num_pages(), 10u);
  EXPECT_EQ(snap->num_shards(), 2u);
  EXPECT_TRUE(snap->epoch_consistent());
  EXPECT_FALSE(store.is_stale(*snap));
}

TEST(ServeSnapshotStore, ReadersNeverObserveMixedEpochsUnderConcurrentPublish) {
  // Real threads, on purpose: this is the TSan target for the reader /
  // publisher path. The publisher rewrites the full state every iteration;
  // every value a reader can see is derived from the publish's single `v`,
  // so any torn read shows up as intra-snapshot disagreement.
  constexpr std::size_t kPages = 64;
  constexpr std::uint32_t kShards = 4;
  constexpr int kPublishes = 3000;
  SnapshotStore store(8);
  RankServer server(store);
  publish_uniform(store, 1.0, kPages, kShards);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> mixed{0};
  const auto reader = [&] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto snap = store.acquire();
      if (snap == nullptr) continue;
      if (!snap->epoch_consistent()) mixed.fetch_add(1);
      const double v = snap->publish_time();
      for (std::uint32_t p = 0; p < snap->num_pages(); ++p) {
        if (snap->rank(p) != v) mixed.fetch_add(1);
      }
      const auto top = snap->top_k(5);
      for (const TopKEntry& e : top) {
        if (e.rank != v) mixed.fetch_add(1);
      }
      // The query façade runs the same tripwire and tallies it.
      (void)server.rank(static_cast<std::uint32_t>(snap->epoch() % kPages));
      (void)server.top_k(3);
    }
  };
  std::thread r1(reader), r2(reader), r3(reader);
  for (int i = 2; i < kPublishes; ++i) {
    publish_uniform(store, static_cast<double>(i), kPages, kShards);
  }
  stop.store(true, std::memory_order_release);
  r1.join();
  r2.join();
  r3.join();

  EXPECT_EQ(mixed.load(), 0u);
  EXPECT_EQ(server.torn_reads(), 0u);
  EXPECT_EQ(server.unavailable(), 0u);
  EXPECT_GT(server.queries(), 0u);
  EXPECT_EQ(store.published(), static_cast<std::uint64_t>(kPublishes - 1));
}

TEST(ServeSnapshotStore, HeldSnapshotStaysImmutableAcrossPublishes) {
  SnapshotStore store(4);
  publish_uniform(store, 1.0, 8, 2);
  const auto held = store.acquire();
  ASSERT_NE(held, nullptr);
  // Burn through both buffers several times; the held snapshot must keep
  // its epoch-1 contents (the straggler path allocates fresh buffers
  // instead of rebuilding in place).
  for (int i = 2; i <= 9; ++i) publish_uniform(store, i, 8, 2);
  EXPECT_EQ(held->epoch(), 1u);
  EXPECT_TRUE(held->epoch_consistent());
  for (std::uint32_t p = 0; p < 8; ++p) EXPECT_EQ(held->rank(p), 1.0);
  const auto fresh = store.acquire();
  EXPECT_EQ(fresh->epoch(), 9u);
}

TEST(ServeSnapshotStore, RetiredBuffersAreReusedOnceReadersRelease) {
  SnapshotStore store(4);
  for (int i = 1; i <= 10; ++i) publish_uniform(store, i, 8, 2);
  // No reader ever held a reference: from the third publish on, every
  // publish rebuilds the retired buffer in place.
  EXPECT_EQ(store.buffer_reuses(), 8u);
  const auto snap = store.acquire();
  EXPECT_EQ(snap->epoch(), 10u);
  EXPECT_TRUE(snap->epoch_consistent());
}

TEST(ServeSnapshotStore, OwnershipVersionReuseKeepsShardMapExact) {
  // publish_groups may keep a buffer's dense page → shard map when the
  // publisher reports the same nonzero ownership version it was last built
  // under. Both double buffers cache independently, so drive several
  // publishes across a membership flip and check the full map (and the
  // per-shard indexes derived from it) after every single one.
  constexpr std::uint32_t kPages = 64;
  constexpr std::uint32_t kShards = 2;
  struct Cut {
    std::vector<std::uint32_t> members;
    std::vector<double> ranks;
  };
  // Assignment A: even/odd interleave. Assignment B: low/high halves.
  const auto assign_a = [](std::uint32_t p) { return p % 2; };
  const auto assign_b = [](std::uint32_t p) {
    return p < kPages / 2 ? 0u : 1u;
  };
  const auto publish_with = [&](SnapshotStore& store, auto assign, double v,
                                std::uint64_t version) {
    std::vector<Cut> cuts(kShards);
    for (std::uint32_t p = 0; p < kPages; ++p) {
      cuts[assign(p)].members.push_back(p);
      cuts[assign(p)].ranks.push_back(v + p);
    }
    std::vector<engine::GroupCut> views(kShards);
    for (std::uint32_t s = 0; s < kShards; ++s) {
      views[s] = engine::GroupCut{cuts[s].members, cuts[s].ranks};
    }
    store.publish_groups(v, views, kPages, version);
  };
  const auto expect_matches = [&](const SnapshotStore& store, auto assign,
                                  double v) {
    const auto snap = store.acquire();
    ASSERT_NE(snap, nullptr);
    for (std::uint32_t p = 0; p < kPages; ++p) {
      ASSERT_EQ(snap->shard_of(p), assign(p)) << "page " << p << " v " << v;
      ASSERT_EQ(snap->rank(p), v + p);
    }
  };

  SnapshotStore store(4);
  // Three publishes under version 1: the third rebuilds a buffer that
  // already cached version 1 — the skip path proper.
  for (double v = 1.0; v <= 3.0; v += 1.0) {
    publish_with(store, assign_a, v, 1);
    expect_matches(store, assign_a, v);
  }
  // Membership flips, version bumps: BOTH buffers still hold version-1
  // maps and must each rebuild on their next turn.
  for (double v = 4.0; v <= 6.0; v += 1.0) {
    publish_with(store, assign_b, v, 2);
    expect_matches(store, assign_b, v);
  }
  // Version 0 means unknown provenance: never reused, always exact.
  publish_with(store, assign_a, 7.0, 0);
  expect_matches(store, assign_a, 7.0);
  publish_with(store, assign_b, 8.0, 0);
  expect_matches(store, assign_b, 8.0);
}

TEST(ServeSnapshotStore, InvalidateMarksStaleButKeepsServing) {
  SnapshotStore store(4);
  RankServer server(store);
  publish_uniform(store, 1.0, 8, 2);
  publish_uniform(store, 2.0, 8, 2);
  store.invalidate(2.5);
  EXPECT_EQ(store.invalidations(), 1u);
  EXPECT_EQ(store.stale_watermark(), 2u);

  // Availability over freshness: the query serves, flagged stale.
  const PointResult r = server.rank(3);
  EXPECT_TRUE(r.served);
  EXPECT_TRUE(r.stale);
  EXPECT_EQ(r.rank, 2.0);
  EXPECT_EQ(server.stale_reads(), 1u);

  // The next publish supersedes the stale watermark.
  publish_uniform(store, 3.0, 8, 2);
  const PointResult r2 = server.rank(3);
  EXPECT_TRUE(r2.served);
  EXPECT_FALSE(r2.stale);
  EXPECT_EQ(r2.epoch, 3u);
}

// --- engine integration -----------------------------------------------------

class EngineServeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = std::make_unique<graph::WebGraph>(
        graph::generate_synthetic_web(graph::google2002_config(1200, 17)));
    assignment_ =
        partition::make_hash_url_partitioner()->partition(*graph_, 6);
  }

  engine::EngineOptions base_options() const {
    engine::EngineOptions eo;
    eo.algorithm = engine::Algorithm::kDPR2;
    eo.alpha = kAlpha;
    eo.t1 = 0.0;
    eo.t2 = 4.0;
    eo.seed = 5;
    return eo;
  }

  std::unique_ptr<graph::WebGraph> graph_;
  std::vector<std::uint32_t> assignment_;
};

TEST_F(EngineServeFixture, SnapshotsPublishAtIntervalFromTimeZero) {
  util::ThreadPool pool(2);
  SnapshotStore store(8);
  engine::EngineOptions eo = base_options();
  eo.snapshot_sink = &store;
  eo.snapshot_interval = 2.0;
  engine::DistributedRanking sim(*graph_, assignment_, 6, eo, pool);
  sim.set_reference(engine::open_system_reference(*graph_, kAlpha, pool));

  // Serving is live from t = 0: the constructor publishes epoch 1.
  const auto first = store.acquire();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->epoch(), 1u);
  EXPECT_EQ(first->num_pages(), graph_->num_pages());
  EXPECT_EQ(first->num_shards(), 6u);

  (void)sim.run(20.0, 20.0);
  const auto later = store.acquire();
  ASSERT_NE(later, nullptr);
  EXPECT_GT(later->epoch(), first->epoch());
  // Cadence 2.0 over 20 time units: roughly ten more publishes, definitely
  // not one per loop step of every group.
  EXPECT_GE(store.published(), 8u);
  EXPECT_LE(store.published(), 16u);
  EXPECT_TRUE(later->epoch_consistent());
  // The published ranks are the engine's own, at most one publish interval
  // stale (groups keep sweeping after the last cadence boundary, so exact
  // equality with the live state is not promised — closeness is).
  const auto ranks = sim.global_ranks();
  double gap = 0.0, mass = 0.0;
  for (std::uint32_t p = 0; p < later->num_pages(); ++p) {
    gap += std::abs(later->rank(p) - ranks[p]);
    mass += ranks[p];
  }
  EXPECT_LT(gap, 0.05 * mass);
}

TEST_F(EngineServeFixture, SnapshotsBitwiseIdenticalAcrossPoolSizes) {
  const auto run_with_pool = [&](std::size_t threads) {
    util::ThreadPool pool(threads);
    SnapshotStore store(8);
    engine::EngineOptions eo = base_options();
    eo.snapshot_sink = &store;
    engine::DistributedRanking sim(*graph_, assignment_, 6, eo, pool);
    sim.set_reference(engine::open_system_reference(*graph_, kAlpha, pool));
    (void)sim.run(15.0, 15.0);
    std::ostringstream out;
    store.acquire()->serialize(out);
    return out.str();
  };
  const std::string pool1 = run_with_pool(1);
  const std::string pool2 = run_with_pool(2);
  const std::string pool8 = run_with_pool(8);
  EXPECT_FALSE(pool1.empty());
  EXPECT_EQ(pool1, pool2);
  EXPECT_EQ(pool1, pool8);
}

TEST_F(EngineServeFixture, ChurnRepublishesNewOwnershipImmediately) {
  util::ThreadPool pool(2);
  SnapshotStore store(8);
  engine::EngineOptions eo = base_options();
  eo.snapshot_sink = &store;
  engine::DistributedRanking sim(*graph_, assignment_, 6, eo, pool);
  sim.set_reference(engine::open_system_reference(*graph_, kAlpha, pool));
  (void)sim.run(5.0, 5.0);

  sim.leave_group(2, 3);
  const auto snap = store.acquire();
  ASSERT_NE(snap, nullptr);
  // The churn handoff warm-starts, which republishes: the latest snapshot
  // already shows group 2 emptied out, with no run() in between.
  std::size_t owned_by_2 = 0;
  for (std::uint32_t p = 0; p < snap->num_pages(); ++p) {
    if (snap->shard_of(p) == 2) ++owned_by_2;
  }
  EXPECT_EQ(owned_by_2, 0u);
  EXPECT_TRUE(snap->shard(2).top.empty());
  EXPECT_TRUE(snap->epoch_consistent());
}

TEST_F(EngineServeFixture, RestoreRollbackInvalidatesUntilWarmStart) {
  util::ThreadPool pool(2);
  SnapshotStore store(8);
  engine::EngineOptions eo = base_options();
  eo.snapshot_sink = &store;
  engine::DistributedRanking sim(*graph_, assignment_, 6, eo, pool);
  sim.set_reference(engine::open_system_reference(*graph_, kAlpha, pool));
  (void)sim.run(8.0, 8.0);
  const auto saved = sim.global_ranks();

  // The restore sequence the chaos harness runs: crash all, drop in-flight
  // slices (the rollback instant), warm start from the checkpoint.
  for (std::uint32_t grp = 0; grp < 6; ++grp) sim.crash_group(grp);
  sim.drop_in_flight();
  const auto stale = store.acquire();
  ASSERT_NE(stale, nullptr);
  EXPECT_TRUE(store.is_stale(*stale));  // published epochs now predate the
                                        // rollback — stale, still serving
  EXPECT_EQ(store.invalidations(), 1u);

  sim.warm_start(saved);
  const auto fresh = store.acquire();
  ASSERT_NE(fresh, nullptr);
  EXPECT_FALSE(store.is_stale(*fresh));
  EXPECT_GT(fresh->epoch(), stale->epoch());
  for (std::uint32_t p = 0; p < fresh->num_pages(); ++p) {
    EXPECT_EQ(fresh->rank(p), saved[p]);
  }
}

}  // namespace
}  // namespace p2prank::serve
