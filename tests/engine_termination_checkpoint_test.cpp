// Tests for distributed termination detection and rank checkpointing.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "engine/checkpoint.hpp"
#include "engine/distributed.hpp"
#include "engine/reference.hpp"
#include "graph/synthetic_web.hpp"
#include "partition/partitioner.hpp"
#include "test_support.hpp"
#include "util/thread_pool.hpp"

namespace p2prank::engine {
namespace {

constexpr double kAlpha = 0.85;

util::ThreadPool& pool() {
  static util::ThreadPool p(4);
  return p;
}

class TerminationFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_ = new graph::WebGraph(
        graph::generate_synthetic_web(graph::google2002_config(4000, 61)));
    reference_ =
        new std::vector<double>(open_system_reference(*graph_, kAlpha, pool()));
    assignment_ = new std::vector<std::uint32_t>(
        partition::make_hash_url_partitioner()->partition(*graph_, 8));
  }
  static void TearDownTestSuite() {
    delete assignment_;
    delete reference_;
    delete graph_;
    assignment_ = nullptr;
    reference_ = nullptr;
    graph_ = nullptr;
  }
  static graph::WebGraph* graph_;
  static std::vector<double>* reference_;
  static std::vector<std::uint32_t>* assignment_;
};

graph::WebGraph* TerminationFixture::graph_ = nullptr;
std::vector<double>* TerminationFixture::reference_ = nullptr;
std::vector<std::uint32_t>* TerminationFixture::assignment_ = nullptr;

EngineOptions opts_with_detection(double eps) {
  EngineOptions o;
  o.alpha = kAlpha;
  o.t1 = o.t2 = 1.0;
  o.seed = 13;
  o.stability_epsilon = eps;
  return o;
}

TEST_F(TerminationFixture, DisabledByDefault) {
  DistributedRanking sim(*graph_, *assignment_, 8, opts_with_detection(0.0), pool());
  sim.set_reference(*reference_);
  (void)sim.run(60.0, 60.0);
  EXPECT_FALSE(sim.termination_detected());
  EXPECT_EQ(sim.status_messages(), 0u);
}

TEST_F(TerminationFixture, DetectsConvergence) {
  DistributedRanking sim(*graph_, *assignment_, 8, opts_with_detection(1e-9), pool());
  sim.set_reference(*reference_);
  (void)sim.run(120.0, 30.0);
  ASSERT_TRUE(sim.termination_detected());
  EXPECT_GT(sim.termination_time(), 0.0);
  EXPECT_LE(sim.termination_time(), 120.0);
  EXPECT_GT(sim.status_messages(), 0u);
}

TEST_F(TerminationFixture, DetectionImpliesSmallError) {
  // When the detector fires with a tight epsilon, the actual relative error
  // must already be small — run to exactly the detection time and check.
  DistributedRanking sim(*graph_, *assignment_, 8, opts_with_detection(1e-10),
                         pool());
  sim.set_reference(*reference_);
  double detected_at = -1.0;
  for (double t = 5.0; t <= 200.0; t += 5.0) {
    (void)sim.run(t, 5.0);
    if (sim.termination_detected()) {
      detected_at = sim.termination_time();
      break;
    }
  }
  ASSERT_GT(detected_at, 0.0);
  EXPECT_LT(sim.relative_error_now(), 1e-4);
}

TEST_F(TerminationFixture, LooserEpsilonFiresEarlier) {
  DistributedRanking loose(*graph_, *assignment_, 8, opts_with_detection(1e-3),
                           pool());
  loose.set_reference(*reference_);
  (void)loose.run(200.0, 50.0);
  DistributedRanking tight(*graph_, *assignment_, 8, opts_with_detection(1e-12),
                           pool());
  tight.set_reference(*reference_);
  (void)tight.run(200.0, 50.0);
  ASSERT_TRUE(loose.termination_detected());
  ASSERT_TRUE(tight.termination_detected());
  EXPECT_LE(loose.termination_time(), tight.termination_time());
}

TEST_F(TerminationFixture, StatusMessagesTrackSteps) {
  DistributedRanking sim(*graph_, *assignment_, 8, opts_with_detection(1e-9), pool());
  sim.set_reference(*reference_);
  (void)sim.run(30.0, 30.0);
  EXPECT_EQ(sim.status_messages(), sim.total_outer_steps());
}

// ------------------------------------------------------------- checkpointing

TEST(Checkpoint, RoundTripsExactly) {
  const auto g = graph::generate_synthetic_web(graph::google2002_config(500, 3));
  std::vector<double> ranks(g.num_pages());
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    ranks[i] = 0.1 + static_cast<double>(i) * 1e-5;
  }
  std::stringstream buffer;
  save_ranks(g, ranks, buffer);
  const auto loaded = load_ranks(g, buffer);
  EXPECT_EQ(loaded.matched, g.num_pages());
  EXPECT_EQ(loaded.skipped, 0u);
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    ASSERT_DOUBLE_EQ(loaded.ranks[i], ranks[i]) << i;
  }
}

TEST(Checkpoint, SaveValidatesSize) {
  const auto g = test::two_cycle();
  const std::vector<double> wrong(3, 0.0);
  std::stringstream buffer;
  EXPECT_THROW(save_ranks(g, wrong, buffer), std::invalid_argument);
}

TEST(Checkpoint, LoadAgainstDifferentGraphMatchesByUrl) {
  const auto g1 = test::two_cycle();
  const std::vector<double> ranks{0.7, 0.3};
  std::stringstream buffer;
  save_ranks(g1, ranks, buffer);

  // New crawl: one old page gone, one new page added.
  graph::GraphBuilder b;
  b.add_page("s.edu/a", "s.edu");        // survives
  b.add_page("s.edu/brand-new", "s.edu");
  const auto g2 = std::move(b).build();
  const auto loaded = load_ranks(g2, buffer);
  EXPECT_EQ(loaded.matched, 1u);
  EXPECT_EQ(loaded.skipped, 1u);  // s.edu/b no longer exists
  EXPECT_DOUBLE_EQ(loaded.ranks[*g2.find("s.edu/a")], 0.7);
  EXPECT_DOUBLE_EQ(loaded.ranks[*g2.find("s.edu/brand-new")], 0.0);
}

TEST(Checkpoint, RejectsMalformedLines) {
  const auto g = test::two_cycle();
  std::stringstream bad("s.edu/a notanumber\n");
  EXPECT_THROW((void)load_ranks(g, bad), std::runtime_error);
}

TEST(Checkpoint, CommentsIgnored) {
  const auto g = test::two_cycle();
  std::stringstream in("# header\ns.edu/a 0.5\n");
  const auto loaded = load_ranks(g, in);
  EXPECT_EQ(loaded.matched, 1u);
}

TEST(Checkpoint, TruncatedCheckpointRejected) {
  // A file cut off mid-write (crash during save) must be rejected, not
  // silently warm-start half the crawl from zero: the v1 header declares
  // the entry count and load_ranks holds it to account.
  const auto g = graph::generate_synthetic_web(graph::google2002_config(300, 5));
  std::vector<double> ranks(g.num_pages(), 0.25);
  std::stringstream buffer;
  save_ranks(g, ranks, buffer);
  std::string text = buffer.str();
  text.resize(text.size() / 2);                   // cut mid-file...
  text.resize(text.find_last_of('\n') + 1);       // ...at a line boundary
  std::stringstream truncated(text);
  try {
    (void)load_ranks(g, truncated);
    FAIL() << "truncated checkpoint accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
  }
}

TEST(Checkpoint, AtomicSaveLeavesNoTempFileBehind) {
  // save_ranks_file writes to `path + ".tmp"` and renames, so a reader can
  // never observe a half-written checkpoint at `path`. After a successful
  // save the temp file must be gone and the target complete.
  const auto g = test::two_cycle();
  const std::vector<double> ranks = {0.5, 0.75};
  const std::string path = ::testing::TempDir() + "/p2prank_atomic.ckpt";
  save_ranks_file(g, ranks, path);
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good()) << "temp file survived the rename";
  const auto loaded = load_ranks_file(g, path);
  EXPECT_EQ(loaded.matched, 2u);
  EXPECT_DOUBLE_EQ(loaded.ranks[0], 0.5);
  std::remove(path.c_str());
}

TEST(Checkpoint, TruncatedFileOnDiskRejectedByLoader) {
  // Regression for the crash-mid-write hole the atomic save closes: if a
  // truncated file somehow lands at the checkpoint path anyway (pre-fix
  // save, copy cut short), load_ranks_file must refuse it rather than
  // warm-start half the crawl from zero.
  const auto g = graph::generate_synthetic_web(graph::google2002_config(300, 5));
  std::vector<double> ranks(g.num_pages(), 0.25);
  std::stringstream buffer;
  save_ranks(g, ranks, buffer);
  std::string text = buffer.str();
  text.resize(text.size() / 2);
  text.resize(text.find_last_of('\n') + 1);
  const std::string path = ::testing::TempDir() + "/p2prank_truncated.ckpt";
  {
    std::ofstream out(path, std::ios::trunc);
    out << text;
  }
  try {
    (void)load_ranks_file(g, path);
    FAIL() << "truncated checkpoint file accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, CorruptValuesRejected) {
  const auto g = test::two_cycle();
  std::stringstream nan_rank("s.edu/a nan\n");
  EXPECT_THROW((void)load_ranks(g, nan_rank), std::runtime_error);
  std::stringstream inf_rank("s.edu/a inf\n");
  EXPECT_THROW((void)load_ranks(g, inf_rank), std::runtime_error);
  std::stringstream negative("s.edu/a -0.5\n");
  EXPECT_THROW((void)load_ranks(g, negative), std::runtime_error);
  std::stringstream trailing("s.edu/a 0.5 garbage\n");
  EXPECT_THROW((void)load_ranks(g, trailing), std::runtime_error);
}

TEST(Checkpoint, CrashThenRestoreFromFileResumesConvergence) {
  // The full recovery story under faults: converge, checkpoint to a file,
  // crash two groups, restore from the file, and converge again — with the
  // restore cutting out the re-rank from scratch.
  util::ThreadPool local_pool(2);
  const auto g = graph::generate_synthetic_web(graph::google2002_config(2000, 23));
  const auto assignment = partition::make_hash_url_partitioner()->partition(g, 4);
  const auto reference = open_system_reference(g, kAlpha, local_pool);

  EngineOptions opts;
  opts.t1 = opts.t2 = 1.0;
  opts.seed = 29;
  opts.delivery_probability = 0.9;  // restore works under message loss too
  DistributedRanking sim(g, assignment, 4, opts, local_pool);
  sim.set_reference(reference);
  ASSERT_TRUE(sim.run_until_error(1e-6, 2000.0, 2.0).reached);

  const std::string path = ::testing::TempDir() + "/p2prank_crash.ckpt";
  save_ranks_file(g, sim.global_ranks(), path);

  sim.crash_group(0);
  sim.crash_group(3);
  ASSERT_GT(sim.relative_error_now(), 1e-3);
  const auto loaded = load_ranks_file(g, path);
  ASSERT_EQ(loaded.matched, g.num_pages());
  sim.warm_start(loaded.ranks);
  EXPECT_LT(sim.relative_error_now(), 1e-5);
  // And the restored system still makes progress, not just holds steady.
  EXPECT_TRUE(sim.run_until_error(1e-7, 2000.0, 2.0).reached);
}

TEST(Checkpoint, FileRoundTripAndWarmRestartPipeline) {
  util::ThreadPool local_pool(2);
  const auto g = graph::generate_synthetic_web(graph::google2002_config(2000, 19));
  const auto assignment = partition::make_hash_url_partitioner()->partition(g, 4);
  const auto reference = open_system_reference(g, kAlpha, local_pool);

  EngineOptions opts;
  opts.t1 = opts.t2 = 1.0;
  opts.seed = 21;
  DistributedRanking sim(g, assignment, 4, opts, local_pool);
  sim.set_reference(reference);
  ASSERT_TRUE(sim.run_until_error(1e-6, 1000.0, 2.0).reached);

  const std::string path = ::testing::TempDir() + "/p2prank_ranks.ckpt";
  save_ranks_file(g, sim.global_ranks(), path);
  const auto loaded = load_ranks_file(g, path);
  EXPECT_EQ(loaded.matched, g.num_pages());

  // A restarted engine warm-started from the checkpoint is converged.
  DistributedRanking restarted(g, assignment, 4, opts, local_pool);
  restarted.set_reference(reference);
  restarted.warm_start(loaded.ranks);
  EXPECT_LT(restarted.relative_error_now(), 1e-5);
}

}  // namespace
}  // namespace p2prank::engine
