#include "rank/hits.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/graph_builder.hpp"
#include "graph/synthetic_web.hpp"
#include "test_support.hpp"
#include "util/thread_pool.hpp"

namespace p2prank::rank {
namespace {

util::ThreadPool& pool() {
  static util::ThreadPool p(2);
  return p;
}

double l2(const std::vector<double>& v) {
  double sq = 0.0;
  for (const double x : v) sq += x * x;
  return std::sqrt(sq);
}

TEST(Hits, EmptyGraph) {
  graph::GraphBuilder b;
  const auto g = std::move(b).build();
  const auto r = hits(g, {}, pool());
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.authorities.empty());
}

TEST(Hits, EdgelessGraphIsAllZero) {
  graph::GraphBuilder b;
  b.add_page("s.edu/a", "s.edu");
  b.add_page("s.edu/b", "s.edu");
  const auto g = std::move(b).build();
  const auto r = hits(g, {}, pool());
  EXPECT_TRUE(r.converged);
  for (const double x : r.authorities) EXPECT_EQ(x, 0.0);
  for (const double x : r.hubs) EXPECT_EQ(x, 0.0);
}

TEST(Hits, StarGraphSeparatesHubsFromAuthorities) {
  // Leaves point at the hub page: the "hub" page of the star is the
  // *authority* in HITS terms; the leaves are hubs.
  const auto g = test::star(4);
  const auto r = hits(g, {}, pool());
  ASSERT_TRUE(r.converged);
  const auto center = *g.find("s.edu/hub");
  EXPECT_NEAR(r.authorities[center], 1.0, 1e-9);  // all authority mass
  EXPECT_NEAR(r.hubs[center], 0.0, 1e-9);
  for (graph::PageId p = 0; p < g.num_pages(); ++p) {
    if (p == center) continue;
    EXPECT_NEAR(r.hubs[p], 0.5, 1e-9);  // 4 equal hubs, unit L2
    EXPECT_NEAR(r.authorities[p], 0.0, 1e-9);
  }
}

TEST(Hits, VectorsAreUnitL2) {
  const auto g = graph::generate_synthetic_web(graph::google2002_config(3000, 3));
  const auto r = hits(g, {}, pool());
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(l2(r.authorities), 1.0, 1e-9);
  EXPECT_NEAR(l2(r.hubs), 1.0, 1e-9);
}

TEST(Hits, ScoresAreNonNegative) {
  const auto g = graph::generate_synthetic_web(graph::google2002_config(3000, 9));
  const auto r = hits(g, {}, pool());
  for (const double x : r.authorities) ASSERT_GE(x, 0.0);
  for (const double x : r.hubs) ASSERT_GE(x, 0.0);
}

TEST(Hits, BipartiteCommunityDominates) {
  // Dense bipartite core (3 hubs x 3 authorities) plus a lone edge: the
  // core must dominate both score vectors (HITS' defining behaviour).
  graph::GraphBuilder b;
  std::vector<graph::PageId> hubs_ids;
  std::vector<graph::PageId> auth_ids;
  for (int i = 0; i < 3; ++i) {
    hubs_ids.push_back(b.add_page("s.edu/h" + std::to_string(i), "s.edu"));
  }
  for (int i = 0; i < 3; ++i) {
    auth_ids.push_back(b.add_page("s.edu/a" + std::to_string(i), "s.edu"));
  }
  const auto lone_src = b.add_page("s.edu/lone_src", "s.edu");
  const auto lone_dst = b.add_page("s.edu/lone_dst", "s.edu");
  for (const auto h : hubs_ids) {
    for (const auto a : auth_ids) b.add_link(h, a);
  }
  b.add_link(lone_src, lone_dst);
  const auto g = std::move(b).build();

  const auto r = hits(g, {}, pool());
  ASSERT_TRUE(r.converged);
  for (const auto a : auth_ids) EXPECT_GT(r.authorities[a], r.authorities[lone_dst]);
  for (const auto h : hubs_ids) EXPECT_GT(r.hubs[h], r.hubs[lone_src]);
}

TEST(Hits, IterationCapReported) {
  const auto g = graph::generate_synthetic_web(graph::google2002_config(2000, 5));
  HitsOptions opts;
  opts.max_iterations = 2;
  opts.epsilon = 0.0;
  const auto r = hits(g, opts, pool());
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 2u);
}

TEST(Hits, DeterministicAcrossRuns) {
  const auto g = graph::generate_synthetic_web(graph::google2002_config(2000, 6));
  const auto r1 = hits(g, {}, pool());
  const auto r2 = hits(g, {}, pool());
  ASSERT_EQ(r1.authorities.size(), r2.authorities.size());
  for (std::size_t i = 0; i < r1.authorities.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.authorities[i], r2.authorities[i]);
  }
}

}  // namespace
}  // namespace p2prank::rank
