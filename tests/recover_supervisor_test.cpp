// Tests for the RecoverySupervisor (src/recover/): eviction quorum under a
// hard partition, ownership-ledger fidelity through the handoff, rejoin
// after heal with monotone recovery epochs, the break_rejoin_ledger
// self-test fault, shard-health marks in the serve layer — plus the
// satellite regression that a long hard partition neither storms the
// retransmit path nor evades the failure detector (DESIGN.md §13).
#include "recover/supervisor.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "engine/distributed.hpp"
#include "engine/reference.hpp"
#include "graph/synthetic_web.hpp"
#include "partition/partitioner.hpp"
#include "serve/snapshot.hpp"
#include "util/thread_pool.hpp"

namespace p2prank::recover {
namespace {

constexpr double kAlpha = 0.85;

util::ThreadPool& pool() {
  static util::ThreadPool p(4);
  return p;
}

engine::EngineOptions reliable_options(std::uint64_t seed) {
  engine::EngineOptions o;
  o.algorithm = engine::Algorithm::kDPR2;
  o.alpha = kAlpha;
  o.t1 = 0.5;
  o.t2 = 1.0;
  o.seed = seed;
  o.reliability.retransmit = true;
  return o;
}

struct Rig {
  graph::WebGraph g;
  std::vector<std::uint32_t> assignment;
  engine::DistributedRanking sim;

  explicit Rig(std::uint64_t seed, std::uint32_t k = 4)
      : g(graph::generate_synthetic_web(graph::google2002_config(400, 17))),
        assignment(partition::make_hash_url_partitioner()->partition(g, k)),
        sim(g, assignment, k, reliable_options(seed), pool()) {
    sim.set_reference(engine::open_system_reference(g, kAlpha, pool()));
  }
};

/// Advance the simulation in sample-sized chunks, ticking the supervisor at
/// each boundary (the chaos runner's cadence), until `until` or `done`.
template <typename Done>
double drive(engine::DistributedRanking& sim, RecoverySupervisor& sup,
             double until, Done done) {
  while (sim.now() < until) {
    (void)sim.run(sim.now() + 2.0, 2.0);  // run() takes absolute t_end
    sup.tick(sim.now());
    if (done()) break;
  }
  return sim.now();
}

bool ledger_matches(const RecoverySupervisor& sup,
                    const engine::DistributedRanking& sim) {
  const auto ledger = sup.ledger();
  const auto assignment = sim.current_assignment();
  if (ledger.size() != assignment.size()) return false;
  for (std::size_t p = 0; p < ledger.size(); ++p) {
    if (ledger[p] != assignment[p]) return false;
  }
  return true;
}

TEST(RecoverySupervisor, EvictsIsolatedRankerAndRejoinsAfterHeal) {
  Rig rig(3);
  serve::SnapshotStore store;
  SupervisorOptions opts;
  opts.serve_store = &store;
  RecoverySupervisor sup(rig.sim, opts);
  ASSERT_TRUE(ledger_matches(sup, rig.sim));
  ASSERT_TRUE(store.shard_available(0));

  // Hard both-way cut isolating ranker 0 from the majority side.
  rig.sim.set_partition(0b1, 0.0, 0.0);
  drive(rig.sim, sup, 120.0,
        [&] { return sup.state(0) == RankerState::kEvicted; });
  ASSERT_EQ(sup.state(0), RankerState::kEvicted) << "eviction never fired";
  EXPECT_EQ(sup.evictions(), 1u);
  EXPECT_EQ(rig.sim.group(0).size(), 0u) << "pages not handed off";
  EXPECT_TRUE(ledger_matches(sup, rig.sim))
      << "ledger diverged from the engine across the handoff";
  EXPECT_EQ(sup.recovery_epoch(0), 1u);
  EXPECT_FALSE(store.shard_available(0)) << "shard not marked down";
  // Only the isolated ranker was evicted.
  for (std::uint32_t r = 1; r < 4; ++r) {
    EXPECT_EQ(sup.state(r), RankerState::kHealthy) << "ranker " << r;
  }

  rig.sim.heal_partition();
  drive(rig.sim, sup, rig.sim.now() + 60.0,
        [&] { return sup.state(0) == RankerState::kHealthy; });
  ASSERT_EQ(sup.state(0), RankerState::kHealthy) << "rejoin never fired";
  EXPECT_EQ(sup.rejoins(), 1u);
  EXPECT_GT(rig.sim.group(0).size(), 0u) << "rejoin handed no pages back";
  EXPECT_TRUE(ledger_matches(sup, rig.sim))
      << "ledger diverged from the engine across the rejoin split";
  EXPECT_EQ(sup.recovery_epoch(0), 2u) << "fencing token must keep rising";
  EXPECT_TRUE(store.shard_available(0)) << "shard not marked back up";

  // And the healed system still converges: the handoffs conserved pages.
  EXPECT_TRUE(rig.sim.run_until_error(1e-6, 4000.0, 2.0).reached);
}

TEST(RecoverySupervisor, BrokenRejoinLedgerIsDetectable) {
  // The scenario_fuzz --broken self-test fault: rejoin moves pages in the
  // engine but "forgets" the ledger update. The divergence must be visible
  // to the runner's cross-check immediately after the rejoin.
  Rig rig(3);
  SupervisorOptions opts;
  opts.break_rejoin_ledger = true;
  RecoverySupervisor sup(rig.sim, opts);

  rig.sim.set_partition(0b1, 0.0, 0.0);
  drive(rig.sim, sup, 120.0,
        [&] { return sup.state(0) == RankerState::kEvicted; });
  ASSERT_EQ(sup.state(0), RankerState::kEvicted);
  EXPECT_TRUE(ledger_matches(sup, rig.sim)) << "eviction path is not broken";

  rig.sim.heal_partition();
  drive(rig.sim, sup, rig.sim.now() + 60.0,
        [&] { return sup.state(0) == RankerState::kHealthy; });
  ASSERT_EQ(sup.state(0), RankerState::kHealthy);
  EXPECT_FALSE(ledger_matches(sup, rig.sim))
      << "broken rejoin ledger went undetected";
}

TEST(RecoverySupervisor, NoQuorumNoEviction) {
  // Fault-free run: the quorum can never hold, so membership never changes
  // and the ledger just mirrors the initial assignment.
  Rig rig(5);
  RecoverySupervisor sup(rig.sim, {});
  drive(rig.sim, sup, 40.0, [] { return false; });
  EXPECT_EQ(sup.evictions(), 0u);
  EXPECT_EQ(sup.rejoins(), 0u);
  for (std::uint32_t r = 0; r < 4; ++r) {
    EXPECT_EQ(sup.state(r), RankerState::kHealthy);
    EXPECT_EQ(sup.recovery_epoch(r), 0u);
  }
  EXPECT_TRUE(ledger_matches(sup, rig.sim));
}

TEST(RecoverySupervisor, ResyncAdoptsScriptedChurn) {
  Rig rig(7);
  RecoverySupervisor sup(rig.sim, {});
  // Scripted churn behind the supervisor's back (the chaos kLeave op).
  rig.sim.leave_group(2, 1);
  EXPECT_FALSE(ledger_matches(sup, rig.sim)) << "churn should desync the ledger";
  sup.resync(rig.sim.now());
  EXPECT_TRUE(ledger_matches(sup, rig.sim));
  EXPECT_EQ(sup.resyncs(), 1u);
}

// --- Satellite: long-partition transport regression ---------------------
//
// Before the backoff fix, every fresh send reset the pair's rto to
// rto_initial, so a long partition retransmitted at the minimum interval
// forever (a storm); and before the superseded-strike fix, those same fresh
// sends kept any timer from ever striking, so suspicion could not trip and
// the storm never even parked. Run >= 10k outer steps under a hard cut and
// hold both ends of the contract: the detector fires, and the retransmit
// volume stays a small fraction of the send volume.
TEST(RecoverySupervisor, TenThousandStepPartitionIsBoundedAndDetected) {
  engine::EngineOptions o = reliable_options(11);
  o.t1 = 0.1;
  o.t2 = 0.2;
  const auto g =
      graph::generate_synthetic_web(graph::google2002_config(200, 29));
  const auto assignment =
      partition::make_hash_url_partitioner()->partition(g, 4);
  engine::DistributedRanking sim(g, assignment, 4, o, pool());
  sim.set_reference(engine::open_system_reference(g, kAlpha, pool()));

  sim.set_partition(0b1, 0.0, 0.0);
  while (sim.total_outer_steps() < 10000) {
    (void)sim.run(sim.now() + 50.0, 50.0);
  }
  EXPECT_GE(sim.total_outer_steps(), 10000u);
  EXPECT_GT(sim.suspected_pairs(), 0u)
      << "a hard partition must trip the failure detector";
  EXPECT_EQ(sim.zombie_retransmits(), 0u);
  // Suspicion parks the cut pairs' retransmits after a handful of strikes;
  // everything left is ordinary loss-free ack traffic. Pre-fix this was a
  // storm at rto_initial cadence (tens of thousands).
  EXPECT_LT(sim.retransmissions(), sim.messages_sent() / 10)
      << "retransmit volume looks like a storm";

  // Heal: probes clear suspicion and the pairs drain back to normal.
  sim.heal_partition();
  (void)sim.run(sim.now() + 100.0, 100.0);
  EXPECT_EQ(sim.suspected_pairs(), 0u) << "suspicion survived the heal";
}

}  // namespace
}  // namespace p2prank::recover
