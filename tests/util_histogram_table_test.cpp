#include <gtest/gtest.h>

#include <sstream>

#include "util/histogram.hpp"
#include "util/table.hpp"

namespace p2prank::util {
namespace {

// ---------------------------------------------------------------- histogram

TEST(Log2Histogram, ZeroGoesToBucketZero) {
  Log2Histogram h;
  h.add(0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.total(), 1u);
}

TEST(Log2Histogram, PowersLandInDistinctBuckets) {
  Log2Histogram h;
  h.add(1);   // bucket 1: [1,1]
  h.add(2);   // bucket 2: [2,3]
  h.add(3);   // bucket 2
  h.add(4);   // bucket 3: [4,7]
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(3), 1u);
}

TEST(Log2Histogram, BucketFloor) {
  EXPECT_EQ(Log2Histogram::bucket_floor(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_floor(1), 1u);
  EXPECT_EQ(Log2Histogram::bucket_floor(4), 8u);
}

TEST(Log2Histogram, OutOfRangeBucketReadsZero) {
  Log2Histogram h;
  EXPECT_EQ(h.bucket(17), 0u);
}

TEST(Log2Histogram, ToStringListsNonEmptyBuckets) {
  Log2Histogram h;
  h.add(5);
  const std::string s = h.to_string();
  EXPECT_NE(s.find("[4, 7]: 1"), std::string::npos);
}

TEST(LinearHistogram, RejectsBadConstruction) {
  EXPECT_THROW(LinearHistogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(LinearHistogram(1.0, 1.0, 4), std::invalid_argument);
}

TEST(LinearHistogram, BinsValuesCorrectly) {
  LinearHistogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(9.5);
  h.add(5.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(LinearHistogram, ClampsOutOfRange) {
  LinearHistogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(4), 1u);
}

TEST(LinearHistogram, BinBounds) {
  LinearHistogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

// -------------------------------------------------------------------- table

TEST(Table, RequiresHeaders) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(0.85, 2);
  t.row().cell("iterations").cell(std::uint64_t{42});
  std::ostringstream out;
  t.print(out, "params");
  const std::string s = out.str();
  EXPECT_NE(s.find("params"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("0.85"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
}

TEST(Table, RejectsTooManyCells) {
  Table t({"only"});
  t.row().cell("a");
  EXPECT_THROW(t.cell("b"), std::logic_error);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"a", "b"});
  t.row().cell("has,comma").cell("has\"quote");
  std::ostringstream out;
  t.print_csv(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, CsvRoundTripSimple) {
  Table t({"x"});
  t.row().cell(std::uint64_t{7});
  std::ostringstream out;
  t.print_csv(out);
  EXPECT_EQ(out.str(), "x\n7\n");
}

TEST(Formatting, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(1.0, 0), "1");
}

TEST(Formatting, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1536), "1.50 KiB");
  EXPECT_EQ(format_bytes(1024.0 * 1024.0), "1.00 MiB");
}

TEST(Formatting, FormatSeconds) {
  EXPECT_EQ(format_seconds(7500.0), "2.08 h");
  EXPECT_EQ(format_seconds(12.0), "12.0 s");
  EXPECT_EQ(format_seconds(0.035), "35.0 ms");
}

}  // namespace
}  // namespace p2prank::util
