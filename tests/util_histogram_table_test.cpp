#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "util/histogram.hpp"
#include "util/table.hpp"

namespace p2prank::util {
namespace {

// ---------------------------------------------------------------- histogram

TEST(Log2Histogram, ZeroGoesToBucketZero) {
  Log2Histogram h;
  h.add(0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.total(), 1u);
}

TEST(Log2Histogram, PowersLandInDistinctBuckets) {
  Log2Histogram h;
  h.add(1);   // bucket 0: [0,1]
  h.add(2);   // bucket 1: [2,3]
  h.add(3);   // bucket 1
  h.add(4);   // bucket 2: [4,7]
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
}

TEST(Log2Histogram, BucketFloor) {
  EXPECT_EQ(Log2Histogram::bucket_floor(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_floor(1), 2u);
  EXPECT_EQ(Log2Histogram::bucket_floor(4), 16u);
}

// Regression: the class comment, add(), bucket_floor(), and to_string()
// used to disagree on whether bucket i covered [2^i, 2^{i+1}) or
// [2^{i-1}, 2^i). Pin the exact edges of the one convention (bucket 0 =
// [0,1], bucket i>=1 = [2^i, 2^{i+1})) for the boundary-sensitive values.
TEST(Log2Histogram, PinnedBucketEdges) {
  struct Case {
    std::uint64_t value;
    std::size_t bucket;
  };
  const Case cases[] = {
      {0u, 0u},
      {1u, 0u},
      {2u, 1u},
      {(1ULL << 10) - 1, 9u},   // 2^k - 1 belongs below the 2^k edge
      {1ULL << 10, 10u},        // 2^k starts bucket k
      {(1ULL << 32) - 1, 31u},
      {1ULL << 32, 32u},
      {std::numeric_limits<std::uint64_t>::max(), 63u},
  };
  for (const auto& c : cases) {
    Log2Histogram h;
    h.add(c.value);
    EXPECT_EQ(h.bucket(c.bucket), 1u) << "value " << c.value;
    EXPECT_EQ(h.total(), 1u);
    // The landing bucket's [floor, ceil] range must actually contain the value.
    EXPECT_GE(c.value, Log2Histogram::bucket_floor(c.bucket)) << "value " << c.value;
    EXPECT_LE(c.value, Log2Histogram::bucket_ceil(c.bucket)) << "value " << c.value;
    // ...and the adjacent buckets' ranges must not.
    if (c.bucket > 0) {
      EXPECT_GT(c.value, Log2Histogram::bucket_ceil(c.bucket - 1))
          << "value " << c.value;
    }
    if (c.bucket < 63) {
      EXPECT_LT(c.value, Log2Histogram::bucket_floor(c.bucket + 1))
          << "value " << c.value;
    }
  }
}

TEST(Log2Histogram, BucketCeilSaturates) {
  EXPECT_EQ(Log2Histogram::bucket_ceil(0), 1u);
  EXPECT_EQ(Log2Histogram::bucket_ceil(1), 3u);
  EXPECT_EQ(Log2Histogram::bucket_ceil(62), (1ULL << 63) - 1);
  EXPECT_EQ(Log2Histogram::bucket_ceil(63), std::numeric_limits<std::uint64_t>::max());
}

TEST(Log2Histogram, OutOfRangeBucketReadsZero) {
  Log2Histogram h;
  EXPECT_EQ(h.bucket(17), 0u);
}

TEST(Log2Histogram, ToStringListsNonEmptyBuckets) {
  Log2Histogram h;
  h.add(5);
  const std::string s = h.to_string();
  EXPECT_NE(s.find("[4, 7]: 1"), std::string::npos);
}

TEST(LinearHistogram, RejectsBadConstruction) {
  EXPECT_THROW(LinearHistogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(LinearHistogram(1.0, 1.0, 4), std::invalid_argument);
}

TEST(LinearHistogram, BinsValuesCorrectly) {
  LinearHistogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(9.5);
  h.add(5.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(LinearHistogram, ClampsOutOfRange) {
  LinearHistogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(4), 1u);
}

TEST(LinearHistogram, InfinitiesClampIntoEdgeBins) {
  LinearHistogram h(0.0, 10.0, 5);
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.nan_count(), 0u);
}

// Regression: NaN used to be cast straight to an integer bin index (UB,
// float-cast-overflow) and silently clamped into bin 0. It now goes to a
// separate tally and never perturbs the binned counts.
TEST(LinearHistogram, NanIsTalliedSeparately) {
  LinearHistogram h(0.0, 10.0, 5);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(5.0);
  h.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.nan_count(), 2u);
  EXPECT_EQ(h.total(), 1u);
  for (std::size_t b = 0; b < h.bins(); ++b) {
    EXPECT_EQ(h.count(b), b == 2 ? 1u : 0u);
  }
}

TEST(LinearHistogram, BinBounds) {
  LinearHistogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

// -------------------------------------------------------------------- table

TEST(Table, RequiresHeaders) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(0.85, 2);
  t.row().cell("iterations").cell(std::uint64_t{42});
  std::ostringstream out;
  t.print(out, "params");
  const std::string s = out.str();
  EXPECT_NE(s.find("params"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("0.85"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
}

TEST(Table, RejectsTooManyCells) {
  Table t({"only"});
  t.row().cell("a");
  EXPECT_THROW(t.cell("b"), std::logic_error);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"a", "b"});
  t.row().cell("has,comma").cell("has\"quote");
  std::ostringstream out;
  t.print_csv(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, CsvRoundTripSimple) {
  Table t({"x"});
  t.row().cell(std::uint64_t{7});
  std::ostringstream out;
  t.print_csv(out);
  EXPECT_EQ(out.str(), "x\n7\n");
}

TEST(Formatting, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(1.0, 0), "1");
}

TEST(Formatting, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1536), "1.50 KiB");
  EXPECT_EQ(format_bytes(1024.0 * 1024.0), "1.00 MiB");
}

TEST(Formatting, FormatSeconds) {
  EXPECT_EQ(format_seconds(7500.0), "2.08 h");
  EXPECT_EQ(format_seconds(12.0), "12.0 s");
  EXPECT_EQ(format_seconds(0.035), "35.0 ms");
}

}  // namespace
}  // namespace p2prank::util
