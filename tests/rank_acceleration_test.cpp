#include "rank/acceleration.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/synthetic_web.hpp"
#include "rank/open_system.hpp"
#include "test_support.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace p2prank::rank {
namespace {

util::ThreadPool& pool() {
  static util::ThreadPool p(2);
  return p;
}

SolveOptions opts_for(double alpha, double eps = 1e-12) {
  SolveOptions o;
  o.alpha = alpha;
  o.epsilon = eps;
  o.max_iterations = 20000;
  return o;
}

TEST(Aitken, PeriodZeroFallsBackToPlainSolve) {
  const auto g = test::two_cycle();
  const auto m = LinkMatrix::from_graph(g, 0.85);
  AccelerationOptions accel;
  accel.period = 0;
  const std::vector<double> forcing(2, 0.15);
  const auto plain = solve_open_system(m, forcing, {}, opts_for(0.85), pool());
  const auto accl =
      solve_open_system_aitken(m, forcing, {}, opts_for(0.85), accel, pool());
  EXPECT_EQ(plain.iterations, accl.iterations);
}

TEST(Aitken, RejectsTinyPeriod) {
  const auto g = test::two_cycle();
  const auto m = LinkMatrix::from_graph(g, 0.85);
  AccelerationOptions accel;
  accel.period = 2;
  const std::vector<double> forcing(2, 0.15);
  EXPECT_THROW((void)solve_open_system_aitken(m, forcing, {}, opts_for(0.85),
                                              accel, pool()),
               std::invalid_argument);
}

TEST(Aitken, ConvergesToSameFixedPoint) {
  const auto g = graph::generate_synthetic_web(graph::google2002_config(3000, 4));
  const auto m = LinkMatrix::from_graph(g, 0.95);
  const std::vector<double> forcing(m.dimension(), 0.05);
  const auto plain = solve_open_system(m, forcing, {}, opts_for(0.95), pool());
  const auto accl = solve_open_system_aitken(m, forcing, {}, opts_for(0.95),
                                             AccelerationOptions{}, pool());
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(accl.converged);
  EXPECT_LT(util::relative_error(accl.ranks, plain.ranks), 1e-8);
}

TEST(Aitken, AcceleratesHighAlphaSolves) {
  // The closer alpha is to 1, the more dominant the leading eigendirection
  // and the bigger the Aitken payoff.
  const auto g = graph::generate_synthetic_web(graph::google2002_config(3000, 4));
  const auto m = LinkMatrix::from_graph(g, 0.99);
  const std::vector<double> forcing(m.dimension(), 0.01);
  const auto plain = solve_open_system(m, forcing, {}, opts_for(0.99), pool());
  const auto accl = solve_open_system_aitken(m, forcing, {}, opts_for(0.99),
                                             AccelerationOptions{}, pool());
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(accl.converged);
  EXPECT_LT(accl.iterations, plain.iterations);
}

TEST(Aitken, NeverWorseThanPlainByMuchAtModerateAlpha) {
  const auto g = graph::generate_synthetic_web(graph::google2002_config(2000, 8));
  const auto m = LinkMatrix::from_graph(g, 0.85);
  const std::vector<double> forcing(m.dimension(), 0.15);
  const auto plain = solve_open_system(m, forcing, {}, opts_for(0.85), pool());
  const auto accl = solve_open_system_aitken(m, forcing, {}, opts_for(0.85),
                                             AccelerationOptions{}, pool());
  ASSERT_TRUE(accl.converged);
  // The acceptance guard rejects bad jumps, so the overhead is bounded by
  // the verification sweeps (one per period).
  EXPECT_LE(accl.iterations, plain.iterations + plain.iterations / 4 + 4);
}

TEST(Aitken, WarmStartSupported) {
  const auto g = test::chain(6);
  const auto m = LinkMatrix::from_graph(g, 0.85);
  const std::vector<double> forcing(m.dimension(), 0.15);
  const auto first = solve_open_system_aitken(m, forcing, {}, opts_for(0.85),
                                              AccelerationOptions{}, pool());
  const auto second = solve_open_system_aitken(
      m, forcing, first.ranks, opts_for(0.85), AccelerationOptions{}, pool());
  EXPECT_LE(second.iterations, 2u);
}

struct PeriodParam {
  std::size_t period;
};

class AitkenPeriodSweep : public ::testing::TestWithParam<PeriodParam> {};

TEST_P(AitkenPeriodSweep, CorrectAtEveryPeriod) {
  const auto g = graph::generate_synthetic_web(graph::google2002_config(1500, 10));
  const auto m = LinkMatrix::from_graph(g, 0.9);
  const std::vector<double> forcing(m.dimension(), 0.1);
  AccelerationOptions accel;
  accel.period = GetParam().period;
  const auto plain = solve_open_system(m, forcing, {}, opts_for(0.9), pool());
  const auto accl =
      solve_open_system_aitken(m, forcing, {}, opts_for(0.9), accel, pool());
  ASSERT_TRUE(accl.converged);
  EXPECT_LT(util::relative_error(accl.ranks, plain.ranks), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Periods, AitkenPeriodSweep,
                         ::testing::Values(PeriodParam{3}, PeriodParam{5},
                                           PeriodParam{8}, PeriodParam{16}),
                         [](const auto& suite_info) {
                           return "p" + std::to_string(suite_info.param.period);
                         });

}  // namespace
}  // namespace p2prank::rank
