#include "transport/exchange.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "overlay/chord.hpp"
#include "overlay/pastry.hpp"
#include "util/rng.hpp"

namespace p2prank::transport {
namespace {

using overlay::NodeIndex;

overlay::PastryOverlay pastry(std::uint32_t n) {
  overlay::PastryConfig cfg;
  cfg.num_nodes = n;
  cfg.seed = 4242;
  return overlay::PastryOverlay(cfg);
}

TEST(ExchangeDemand, IgnoresSelfAndZero) {
  ExchangeDemand d(4);
  d.add(1, 1, 100);  // self
  d.add(1, 2, 0);    // zero
  EXPECT_EQ(d.total_records(), 0u);
  EXPECT_TRUE(d.from(1).empty());
}

TEST(ExchangeDemand, RejectsOutOfRange) {
  ExchangeDemand d(4);
  EXPECT_THROW(d.add(4, 0, 1), std::out_of_range);
  EXPECT_THROW(d.add(0, 9, 1), std::out_of_range);
  EXPECT_THROW(ExchangeDemand(0), std::invalid_argument);
}

TEST(ExchangeDemand, AllPairsCountsAreRight) {
  const auto d = ExchangeDemand::all_pairs(5, 10);
  EXPECT_EQ(d.total_records(), 5u * 4u * 10u);
  for (NodeIndex s = 0; s < 5; ++s) EXPECT_EQ(d.from(s).size(), 4u);
}

TEST(DirectExchange, DeliversEverything) {
  const auto o = pastry(32);
  const auto d = ExchangeDemand::all_pairs(32, 7);
  const auto report = run_direct_exchange(o, d, WireFormat{});
  EXPECT_EQ(report.records_delivered, d.total_records());
}

TEST(DirectExchange, MessageCountIsDataPlusLookups) {
  const auto o = pastry(32);
  const auto d = ExchangeDemand::all_pairs(32, 1);
  const auto report = run_direct_exchange(o, d, WireFormat{});
  EXPECT_EQ(report.data_messages, 32u * 31u);
  // Lookups: roughly h per destination pair, h in [1, log16(32)+2].
  EXPECT_GT(report.lookup_messages, report.data_messages / 2);
  EXPECT_EQ(report.rounds, 1u);
}

TEST(DirectExchange, CachedLookupsRemoveLookupCost) {
  const auto o = pastry(32);
  const auto d = ExchangeDemand::all_pairs(32, 3);
  const auto cold = run_direct_exchange(o, d, WireFormat{}, false);
  const auto warm = run_direct_exchange(o, d, WireFormat{}, true);
  EXPECT_EQ(warm.lookup_messages, 0u);
  EXPECT_EQ(warm.lookup_bytes, 0.0);
  EXPECT_EQ(warm.data_messages, cold.data_messages);
  EXPECT_LT(warm.total_bytes(), cold.total_bytes());
}

TEST(DirectExchange, BytesMatchWireFormat) {
  const auto o = pastry(4);
  ExchangeDemand d(4);
  d.add(0, 1, 10);
  WireFormat wire;
  wire.record_bytes = 100.0;
  wire.header_bytes = 40.0;
  const auto report = run_direct_exchange(o, d, wire, true);
  EXPECT_DOUBLE_EQ(report.data_bytes, 40.0 + 1000.0);
}

TEST(IndirectExchange, DeliversEverything) {
  const auto o = pastry(32);
  const auto d = ExchangeDemand::all_pairs(32, 7);
  const auto report = run_indirect_exchange(o, d, WireFormat{});
  EXPECT_EQ(report.records_delivered, d.total_records());
}

TEST(IndirectExchange, NoLookupMessagesAtAll) {
  const auto o = pastry(32);
  const auto d = ExchangeDemand::all_pairs(32, 2);
  const auto report = run_indirect_exchange(o, d, WireFormat{});
  EXPECT_EQ(report.lookup_messages, 0u);
  EXPECT_EQ(report.lookup_bytes, 0.0);
}

TEST(IndirectExchange, FarFewerMessagesThanDirectAtScale) {
  const auto o = pastry(128);
  const auto d = ExchangeDemand::all_pairs(128, 1);
  const auto direct = run_direct_exchange(o, d, WireFormat{});
  const auto indirect = run_indirect_exchange(o, d, WireFormat{});
  // S_dt = (h+1)N² vs S_it rounds-amortized ~ gN: must be far apart at N=128.
  EXPECT_LT(indirect.data_messages * 5, direct.total_messages());
}

TEST(IndirectExchange, RecordsTravelMultipleHops) {
  const auto o = pastry(128);
  const auto d = ExchangeDemand::all_pairs(128, 1);
  const auto report = run_indirect_exchange(o, d, WireFormat{});
  // Mean hops per record should be around log16(128) ~ 1.75, certainly > 1.
  const double mean_hops = static_cast<double>(report.record_hops) /
                           static_cast<double>(report.records_delivered);
  EXPECT_GT(mean_hops, 1.0);
  EXPECT_LT(mean_hops, 5.0);
  EXPECT_GE(report.rounds, 2u);
}

TEST(IndirectExchange, MoreTotalBytesThanCachedDirect) {
  // Indirect moves every record h times; direct (with cached addresses)
  // moves it once — the bandwidth-vs-messages tradeoff of Section 4.4.
  const auto o = pastry(64);
  const auto d = ExchangeDemand::all_pairs(64, 5);
  const auto direct = run_direct_exchange(o, d, WireFormat{}, true);
  const auto indirect = run_indirect_exchange(o, d, WireFormat{});
  EXPECT_GT(indirect.data_bytes, direct.data_bytes);
}

TEST(IndirectExchange, EmptyDemandIsNoop) {
  const auto o = pastry(8);
  const ExchangeDemand d(8);
  const auto report = run_indirect_exchange(o, d, WireFormat{});
  EXPECT_EQ(report.records_delivered, 0u);
  EXPECT_EQ(report.data_messages, 0u);
  EXPECT_EQ(report.rounds, 0u);
}

TEST(IndirectExchange, WorksOnChordToo) {
  overlay::ChordConfig cfg;
  cfg.num_nodes = 32;
  cfg.seed = 5;
  const overlay::ChordOverlay o(cfg);
  const auto d = ExchangeDemand::all_pairs(32, 3);
  const auto report = run_indirect_exchange(o, d, WireFormat{});
  EXPECT_EQ(report.records_delivered, d.total_records());
}

TEST(IndirectExchange, SparseDemandOnlyTouchesRelevantPaths) {
  const auto o = pastry(64);
  ExchangeDemand d(64);
  d.add(3, 40, 100);
  const auto report = run_indirect_exchange(o, d, WireFormat{});
  EXPECT_EQ(report.records_delivered, 100u);
  // One path: messages == hops of that route.
  EXPECT_EQ(report.data_messages, report.rounds);
  EXPECT_EQ(report.record_hops, 100u * report.rounds);
}

TEST(Exchange, RejectsOverlaySmallerThanRankers) {
  const auto o = pastry(4);
  const auto d = ExchangeDemand::all_pairs(8, 1);
  EXPECT_THROW((void)run_direct_exchange(o, d, WireFormat{}), std::invalid_argument);
  EXPECT_THROW((void)run_indirect_exchange(o, d, WireFormat{}),
               std::invalid_argument);
}

struct NParam {
  std::uint32_t n;
};

class ScalingSweep : public ::testing::TestWithParam<NParam> {};

TEST_P(ScalingSweep, IndirectMessagesScaleFarBelowDirect) {
  const auto n = GetParam().n;
  const auto o = pastry(n);
  const auto d = ExchangeDemand::all_pairs(n, 1);
  const auto direct = run_direct_exchange(o, d, WireFormat{});
  const auto indirect = run_indirect_exchange(o, d, WireFormat{});
  // Direct messages ~ (h+1)N²; indirect ~ h'·g·N. Ratio grows with N.
  const double ratio = static_cast<double>(direct.total_messages()) /
                       static_cast<double>(indirect.data_messages);
  if (n >= 64) {
    EXPECT_GT(ratio, static_cast<double>(n) / 16.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScalingSweep,
                         ::testing::Values(NParam{16}, NParam{64}, NParam{256}),
                         [](const auto& suite_info) {
                           return "n" + std::to_string(suite_info.param.n);
                         });

}  // namespace
}  // namespace p2prank::transport
