// Tests for degraded serving (DESIGN.md §13): per-shard availability marks
// and the bounded-staleness contract — queries over a partitioned shard or
// past the staleness bound still answer (availability over freshness) but
// carry explicit flags and are tallied, never silently served as fresh.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "serve/snapshot.hpp"

namespace p2prank::serve {
namespace {

/// Four pages over two shards: pages 0,1 on shard 0; pages 2,3 on shard 1.
struct Rig {
  SnapshotStore store;
  RankServer server{store};

  Rig() {
    const std::vector<double> ranks = {0.4, 0.3, 0.2, 0.1};
    const std::vector<std::uint32_t> owner = {0, 0, 1, 1};
    store.publish(/*time=*/5.0, ranks, owner, /*num_shards=*/2);
  }
};

TEST(DegradedServing, StalenessBoundDisabledByDefault) {
  Rig rig;
  const auto r = rig.server.rank(0, /*now=*/1e9);
  ASSERT_TRUE(r.served);
  EXPECT_FALSE(r.beyond_bound) << "default bound is infinity";
  EXPECT_DOUBLE_EQ(r.publish_time, 5.0);
  EXPECT_EQ(rig.server.degraded_reads(), 0u);
}

TEST(DegradedServing, BeyondBoundFlaggedAndTallied) {
  Rig rig;
  rig.server.set_staleness_bound(10.0);
  const auto fresh = rig.server.rank(0, /*now=*/14.0);  // age 9 <= 10
  ASSERT_TRUE(fresh.served);
  EXPECT_FALSE(fresh.beyond_bound);
  const auto old = rig.server.rank(0, /*now=*/16.0);  // age 11 > 10
  ASSERT_TRUE(old.served) << "availability over freshness: still answered";
  EXPECT_TRUE(old.beyond_bound);
  EXPECT_DOUBLE_EQ(old.rank, 0.4) << "degraded read serves the real data";
  EXPECT_EQ(rig.server.degraded_reads(), 1u);

  const auto top = rig.server.top_k(2, /*now=*/16.0);
  ASSERT_TRUE(top.served);
  EXPECT_TRUE(top.beyond_bound);
  const auto shard = rig.server.shard_top_k(0, 2, /*now=*/16.0);
  ASSERT_TRUE(shard.served);
  EXPECT_TRUE(shard.beyond_bound);
  EXPECT_EQ(rig.server.degraded_reads(), 3u);
}

TEST(DegradedServing, NoQueryTimeSkipsTheBoundCheck) {
  Rig rig;
  rig.server.set_staleness_bound(0.001);  // everything would be beyond it
  const auto r = rig.server.rank(0);  // kNoQueryTime: caller has no clock
  ASSERT_TRUE(r.served);
  EXPECT_FALSE(r.beyond_bound);
  EXPECT_EQ(rig.server.degraded_reads(), 0u);
}

TEST(DegradedServing, RepublishResetsTheAgeClock) {
  Rig rig;
  rig.server.set_staleness_bound(10.0);
  EXPECT_TRUE(rig.server.rank(0, 20.0).beyond_bound);
  const std::vector<double> ranks = {0.4, 0.3, 0.2, 0.1};
  const std::vector<std::uint32_t> owner = {0, 0, 1, 1};
  rig.store.publish(/*time=*/19.0, ranks, owner, 2);
  EXPECT_FALSE(rig.server.rank(0, 20.0).beyond_bound);
}

TEST(DegradedServing, DownShardFlaggedOnEveryQueryShape) {
  Rig rig;
  ASSERT_TRUE(rig.store.shard_available(1));
  rig.store.set_shard_health(1, false);
  EXPECT_FALSE(rig.store.shard_available(1));
  EXPECT_TRUE(rig.store.shard_available(0));

  // Point query on the down shard: flagged; on the up shard: clean.
  const auto down = rig.server.rank(2);
  ASSERT_TRUE(down.served);
  EXPECT_TRUE(down.shard_down);
  EXPECT_EQ(down.shard, 1u);
  EXPECT_DOUBLE_EQ(down.rank, 0.2) << "last published data still serves";
  const auto up = rig.server.rank(0);
  EXPECT_FALSE(up.shard_down);
  EXPECT_EQ(up.shard, 0u);

  // Global top-K merges a down shard's entries: flagged. Per-shard: only
  // the down shard's query is.
  EXPECT_TRUE(rig.server.top_k(4).shard_down);
  EXPECT_FALSE(rig.server.shard_top_k(0, 2).shard_down);
  EXPECT_TRUE(rig.server.shard_top_k(1, 2).shard_down);
  EXPECT_GT(rig.server.shard_down_reads(), 0u);

  // Rejoin marks it back up and the flags clear.
  rig.store.set_shard_health(1, true);
  EXPECT_FALSE(rig.server.rank(2).shard_down);
  EXPECT_FALSE(rig.server.top_k(4).shard_down);
}

TEST(DegradedServing, ShardsBeyondBitmapWidthAlwaysUp) {
  Rig rig;
  rig.store.set_shard_health(SnapshotStore::kMaxHealthShards + 3, false);
  EXPECT_TRUE(rig.store.shard_available(SnapshotStore::kMaxHealthShards + 3));
}

}  // namespace
}  // namespace p2prank::serve
