#include "overlay/pastry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/rng.hpp"

namespace p2prank::overlay {
namespace {

PastryConfig config(std::uint32_t n, int b = 4) {
  PastryConfig cfg;
  cfg.num_nodes = n;
  cfg.bits_per_digit = b;
  cfg.seed = 1234;
  return cfg;
}

TEST(Pastry, RejectsBadConfig) {
  EXPECT_THROW(PastryOverlay{config(0)}, std::invalid_argument);
  EXPECT_THROW(PastryOverlay{config(10, 3)}, std::invalid_argument);
  auto cfg = config(10);
  cfg.leaf_set_size = 5;  // odd
  EXPECT_THROW(PastryOverlay{cfg}, std::invalid_argument);
}

TEST(Pastry, IdsAreSortedAndUnique) {
  PastryOverlay o(config(500));
  for (NodeIndex i = 1; i < 500; ++i) {
    EXPECT_LT(o.id_of(i - 1), o.id_of(i));
  }
}

TEST(Pastry, ResponsibleNodeIsNumericallyClosest) {
  PastryOverlay o(config(200));
  util::Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const NodeId key = node_id_from_u64(rng.next());
    const NodeIndex r = o.responsible_node(key);
    const NodeId best = linear_distance(o.id_of(r), key);
    for (NodeIndex i = 0; i < 200; ++i) {
      EXPECT_GE(linear_distance(o.id_of(i), key), best) << "trial " << trial;
    }
  }
}

TEST(Pastry, ResponsibleNodeOfOwnIdIsSelf) {
  PastryOverlay o(config(100));
  for (NodeIndex i = 0; i < 100; ++i) {
    EXPECT_EQ(o.responsible_node(o.id_of(i)), i);
  }
}

TEST(Pastry, RouteEndsAtResponsibleNode) {
  PastryOverlay o(config(300));
  util::Rng rng(6);
  for (int trial = 0; trial < 300; ++trial) {
    const auto from = static_cast<NodeIndex>(rng.below(300));
    const NodeId key = node_id_from_u64(rng.next());
    const auto path = o.route(from, key);
    const NodeIndex dest = o.responsible_node(key);
    if (from == dest) {
      EXPECT_TRUE(path.empty());
    } else {
      ASSERT_FALSE(path.empty());
      EXPECT_EQ(path.back(), dest);
    }
  }
}

TEST(Pastry, EveryHopIsANeighborOfThePreviousNode) {
  PastryOverlay o(config(300));
  util::Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const auto from = static_cast<NodeIndex>(rng.below(300));
    const NodeId key = node_id_from_u64(rng.next());
    NodeIndex cur = from;
    for (const NodeIndex hop : o.route(from, key)) {
      const auto nb = o.neighbors(cur);
      EXPECT_TRUE(std::find(nb.begin(), nb.end(), hop) != nb.end())
          << "hop from " << cur << " to " << hop << " not a neighbor";
      cur = hop;
    }
  }
}

TEST(Pastry, RoutingTableEntriesHaveCorrectPrefixShape) {
  PastryOverlay o(config(300));
  for (NodeIndex node = 0; node < 300; node += 17) {
    const NodeId my = o.id_of(node);
    for (int r = 0; r < o.num_rows(); ++r) {
      for (int c = 0; c < 16; ++c) {
        const NodeIndex entry = o.table_entry(node, r, c);
        if (entry == kInvalidNode) continue;
        const NodeId other = o.id_of(entry);
        EXPECT_EQ(my.shared_prefix_digits(other, 4), r);
        EXPECT_EQ(other.digit(r, 4), static_cast<unsigned>(c));
      }
    }
  }
}

TEST(Pastry, LeafSetHasConfiguredSize) {
  auto cfg = config(300);
  cfg.leaf_set_size = 8;
  PastryOverlay o(cfg);
  for (NodeIndex node = 0; node < 300; node += 37) {
    EXPECT_EQ(o.leaf_set(node).size(), 8u);
  }
}

TEST(Pastry, LeafSetOfTinyOverlayIsEveryoneElse) {
  PastryOverlay o(config(5));
  for (NodeIndex node = 0; node < 5; ++node) {
    const auto leaves = o.leaf_set(node);
    EXPECT_EQ(leaves.size(), 4u);
    std::set<NodeIndex> seen(leaves.begin(), leaves.end());
    EXPECT_EQ(seen.size(), 4u);
    EXPECT_FALSE(seen.contains(node));
  }
}

TEST(Pastry, SingleNodeRoutesNowhere) {
  PastryOverlay o(config(1));
  const auto path = o.route(0, node_id_from_u64(99));
  EXPECT_TRUE(path.empty());
}

TEST(Pastry, MeanHopsFollowsLogBase16) {
  // The paper quotes ~2.5 hops at N=1000 (b=4). Expect log_16(N) +- 1.
  PastryOverlay o(config(1000));
  const auto probe = probe_overlay(o, 2000, 99);
  const double expected = std::log2(1000.0) / 4.0;  // ~2.49
  EXPECT_NEAR(probe.mean_hops, expected, 0.8);
  EXPECT_LE(probe.max_hops, 7.0);
}

TEST(Pastry, NeighborCountIsDozens) {
  // "one node commonly has roughly some dozens of neighbors".
  PastryOverlay o(config(1000));
  const auto probe = probe_overlay(o, 10, 1);
  EXPECT_GT(probe.mean_neighbors, 15.0);
  EXPECT_LT(probe.mean_neighbors, 120.0);
}

TEST(Pastry, SmallerDigitBaseMeansMoreHops) {
  PastryOverlay b4(config(512, 4));
  PastryOverlay b2(config(512, 2));
  const auto p4 = probe_overlay(b4, 1000, 3);
  const auto p2 = probe_overlay(b2, 1000, 3);
  EXPECT_GT(p2.mean_hops, p4.mean_hops);
}

struct SizeParam {
  std::uint32_t n;
};

class PastrySizeSweep : public ::testing::TestWithParam<SizeParam> {};

TEST_P(PastrySizeSweep, DeliveryIsCorrectAtEveryScale) {
  PastryOverlay o(config(GetParam().n));
  util::Rng rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    const auto from = static_cast<NodeIndex>(rng.below(GetParam().n));
    const NodeId key = node_id_from_u64(rng.next());
    const auto path = o.route(from, key);
    const NodeIndex dest = o.responsible_node(key);
    if (!path.empty()) {
      EXPECT_EQ(path.back(), dest);
    }
  }
}

TEST_P(PastrySizeSweep, HopsGrowLogarithmically) {
  PastryOverlay o(config(GetParam().n));
  const auto probe = probe_overlay(o, 500, 2);
  const double bound = std::log2(static_cast<double>(GetParam().n)) / 4.0 + 1.5;
  EXPECT_LE(probe.mean_hops, bound);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PastrySizeSweep,
                         ::testing::Values(SizeParam{2}, SizeParam{16},
                                           SizeParam{64}, SizeParam{256},
                                           SizeParam{1024}, SizeParam{4096}),
                         [](const auto& suite_info) {
                           return "n" + std::to_string(suite_info.param.n);
                         });

}  // namespace
}  // namespace p2prank::overlay
