#include "graph/url.hpp"

#include <gtest/gtest.h>

namespace p2prank::graph {
namespace {

TEST(ParseUrl, FullHttpUrl) {
  const auto p = parse_url("http://www.Example.edu/path/page.html");
  EXPECT_EQ(p.scheme, "http");
  EXPECT_EQ(p.host, "www.example.edu");
  EXPECT_EQ(p.path, "/path/page.html");
}

TEST(ParseUrl, BareHostForm) {
  const auto p = parse_url("cs.tsinghua.edu/index.html");
  EXPECT_EQ(p.scheme, "");
  EXPECT_EQ(p.host, "cs.tsinghua.edu");
  EXPECT_EQ(p.path, "/index.html");
}

TEST(ParseUrl, SchemeRelative) {
  const auto p = parse_url("//host.edu/a");
  EXPECT_EQ(p.host, "host.edu");
  EXPECT_EQ(p.path, "/a");
}

TEST(ParseUrl, PathOnly) {
  const auto p = parse_url("/local/path");
  EXPECT_EQ(p.host, "");
  EXPECT_EQ(p.path, "/local/path");
}

TEST(ParseUrl, DropsFragment) {
  const auto p = parse_url("http://h.edu/p#section2");
  EXPECT_EQ(p.path, "/p");
}

TEST(ParseUrl, KeepsQuery) {
  const auto p = parse_url("http://h.edu/p?q=1");
  EXPECT_EQ(p.path, "/p?q=1");
}

TEST(ParseUrl, StripsDefaultHttpPort) {
  EXPECT_EQ(parse_url("http://h.edu:80/p").host, "h.edu");
  EXPECT_EQ(parse_url("https://h.edu:443/p").host, "h.edu");
}

TEST(ParseUrl, KeepsNonDefaultPort) {
  EXPECT_EQ(parse_url("http://h.edu:8080/p").host, "h.edu:8080");
}

TEST(ParseUrl, HostOnlyNoPath) {
  const auto p = parse_url("http://h.edu");
  EXPECT_EQ(p.host, "h.edu");
  EXPECT_EQ(p.path, "");
}

TEST(SiteOf, ExtractsLowercasedHost) {
  EXPECT_EQ(site_of("HTTP://WWW.MIT.EDU/a/b"), "www.mit.edu");
  EXPECT_EQ(site_of("site5.edu/page3.html"), "site5.edu");
}

TEST(SiteOf, EmptyForPathOnly) { EXPECT_EQ(site_of("/just/a/path"), ""); }

TEST(NormalizeUrl, CanonicalForm) {
  EXPECT_EQ(normalize_url("http://H.edu/a"), "h.edu/a");
  EXPECT_EQ(normalize_url("h.edu/a"), "h.edu/a");
}

TEST(NormalizeUrl, BareHostGetsSlash) {
  EXPECT_EQ(normalize_url("http://h.edu"), "h.edu/");
}

TEST(NormalizeUrl, SameResourceDifferentFormsCollapse) {
  EXPECT_EQ(normalize_url("http://Host.edu/p#frag"), normalize_url("host.edu/p"));
}

}  // namespace
}  // namespace p2prank::graph
