// End-to-end pipeline tests: generate crawl -> partition -> place rankers on
// an overlay -> run distributed ranking -> ship Y records over a simulated
// transport -> compare with the centralized reference.
#include <gtest/gtest.h>

#include <vector>

#include "engine/distributed.hpp"
#include "engine/reference.hpp"
#include "graph/graph_stats.hpp"
#include "graph/synthetic_web.hpp"
#include "overlay/pastry.hpp"
#include "partition/partition_stats.hpp"
#include "partition/partitioner.hpp"
#include "rank/centralized.hpp"
#include "transport/exchange.hpp"
#include "util/thread_pool.hpp"

namespace p2prank {
namespace {

constexpr double kAlpha = 0.85;

util::ThreadPool& pool() {
  static util::ThreadPool p(4);
  return p;
}

TEST(Integration, FullPipelineSitePartition) {
  const auto g = graph::generate_synthetic_web(graph::google2002_config(8000, 101));
  const std::uint32_t k = 16;
  const auto assignment = partition::make_hash_site_partitioner()->partition(g, k);

  const auto reference = engine::open_system_reference(g, kAlpha, pool());

  engine::EngineOptions opts;
  opts.algorithm = engine::Algorithm::kDPR1;
  opts.alpha = kAlpha;
  opts.t1 = 0.0;
  opts.t2 = 6.0;
  opts.seed = 1;
  engine::DistributedRanking sim(g, assignment, k, opts, pool());
  sim.set_reference(reference);
  const auto result = sim.run_until_error(1e-4, 600.0, 2.0);
  EXPECT_TRUE(result.reached);

  // Site partitioning should make traffic sparse: records per step far
  // below the total link count.
  const auto pstats = partition::compute_partition_stats(g, assignment, k);
  EXPECT_LT(pstats.cut_fraction(), 0.2);
}

TEST(Integration, DistributedAgreesWithCentralizedTopPages) {
  // The ranking *order* matters for search: top pages by distributed ranks
  // must match the centralized reference's top pages.
  const auto g = graph::generate_synthetic_web(graph::google2002_config(5000, 7));
  const std::uint32_t k = 8;
  const auto assignment = partition::make_hash_url_partitioner()->partition(g, k);
  const auto reference = engine::open_system_reference(g, kAlpha, pool());

  engine::EngineOptions opts;
  opts.alpha = kAlpha;
  opts.seed = 5;
  opts.t1 = opts.t2 = 1.0;
  engine::DistributedRanking sim(g, assignment, k, opts, pool());
  sim.set_reference(reference);
  ASSERT_TRUE(sim.run_until_error(1e-6, 2000.0, 5.0).reached);

  const auto top_dist = rank::top_pages(sim.global_ranks(), 20);
  const auto top_ref = rank::top_pages(reference, 20);
  EXPECT_EQ(top_dist, top_ref);
}

TEST(Integration, RecordsSentMatchCutLinkAccounting) {
  const auto g = graph::generate_synthetic_web(graph::google2002_config(4000, 13));
  const std::uint32_t k = 8;
  const auto assignment = partition::make_hash_url_partitioner()->partition(g, k);
  const auto pstats = partition::compute_partition_stats(g, assignment, k);
  const auto reference = engine::open_system_reference(g, kAlpha, pool());

  engine::EngineOptions opts;
  opts.alpha = kAlpha;
  opts.seed = 2;
  opts.t1 = opts.t2 = 1.0;
  engine::DistributedRanking sim(g, assignment, k, opts, pool());
  sim.set_reference(reference);
  (void)sim.run(10.0, 10.0);

  // Every outer step of a group ships its cut edges once; total records
  // sent must be a multiple-ish of the cut-link count (groups step at
  // slightly different rates, so bound it instead of equality).
  EXPECT_GE(sim.records_sent(), pstats.cut_links);
  const double per_step =
      static_cast<double>(sim.records_sent()) / sim.mean_outer_steps();
  EXPECT_NEAR(per_step, static_cast<double>(pstats.cut_links),
              0.2 * static_cast<double>(pstats.cut_links));
}

TEST(Integration, ExchangeDemandFromPartitionDeliversOverOverlay) {
  // Build the actual per-pair record demand of one exchange round from the
  // partition's cut edges and push it through indirect transmission.
  const auto g = graph::generate_synthetic_web(graph::google2002_config(4000, 19));
  const std::uint32_t k = 32;
  const auto assignment = partition::make_hash_url_partitioner()->partition(g, k);

  transport::ExchangeDemand demand(k);
  for (graph::PageId u = 0; u < g.num_pages(); ++u) {
    for (const graph::PageId v : g.out_links(u)) {
      if (assignment[u] != assignment[v]) {
        demand.add(assignment[u], assignment[v], 1);
      }
    }
  }
  const auto pstats = partition::compute_partition_stats(g, assignment, k);
  EXPECT_EQ(demand.total_records(), pstats.cut_links);

  overlay::PastryConfig pcfg;
  pcfg.num_nodes = k;
  pcfg.seed = 3;
  const overlay::PastryOverlay o(pcfg);
  const auto indirect = transport::run_indirect_exchange(o, demand, {});
  EXPECT_EQ(indirect.records_delivered, demand.total_records());
  const auto direct = transport::run_direct_exchange(o, demand, {});
  EXPECT_EQ(direct.records_delivered, demand.total_records());
  // At k=32 the message advantage of indirect should already show.
  EXPECT_LT(indirect.data_messages, direct.total_messages());
}

TEST(Integration, OpenSystemAverageRankReflectsExternalLeak) {
  // The Fig. 7 plateau: with ~47% of links leaving the crawl, the converged
  // average rank sits well below the closed-system value of ~1.
  const auto g = graph::generate_synthetic_web(graph::google2002_config(8000, 23));
  const auto reference = engine::open_system_reference(g, kAlpha, pool());
  double avg = 0.0;
  for (const double r : reference) avg += r;
  avg /= static_cast<double>(reference.size());
  EXPECT_GT(avg, 0.15);
  EXPECT_LT(avg, 0.45);  // paper's dataset converges to ~0.3
}

TEST(Integration, GraphStatsSurviveRoundTripThroughEngine) {
  const auto g = graph::generate_synthetic_web(graph::google2002_config(3000, 29));
  const auto stats = graph::compute_stats(g);
  EXPECT_EQ(stats.pages, g.num_pages());
  EXPECT_EQ(stats.internal_links, g.num_links());
  const auto reference = engine::open_system_reference(g, kAlpha, pool());
  EXPECT_EQ(reference.size(), stats.pages);
}

}  // namespace
}  // namespace p2prank
