#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace p2prank::util {
namespace {

TEST(OnlineStats, EmptyDefaults) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats whole;
  OnlineStats left;
  OnlineStats right;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5.0, 5.0);
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a;
  a.add(1.0);
  a.add(3.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Quantile, EmptyIsZero) { EXPECT_EQ(quantile({}, 0.5), 0.0); }

TEST(Quantile, MedianOfOddSet) {
  const std::vector<double> v{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
}

TEST(Quantile, Extremes) {
  const std::vector<double> v{4.0, 2.0, 8.0, 6.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 8.0);
}

TEST(Quantile, InterpolatesBetweenRanks) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
}

TEST(Norms, L1Norm) {
  const std::vector<double> v{1.0, -2.0, 3.0};
  EXPECT_DOUBLE_EQ(l1_norm(v), 6.0);
}

TEST(Norms, L1Distance) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{0.0, 4.0, 3.0};
  EXPECT_DOUBLE_EQ(l1_distance(a, b), 3.0);
}

TEST(Norms, AccurateSumHandlesManySmallTerms) {
  const std::vector<double> v(1000000, 1e-6);
  EXPECT_NEAR(accurate_sum(v), 1.0, 1e-9);
}

TEST(RelativeError, ZeroWhenEqual) {
  const std::vector<double> a{1.0, 2.0};
  EXPECT_DOUBLE_EQ(relative_error(a, a), 0.0);
}

TEST(RelativeError, MatchesDefinition) {
  const std::vector<double> a{1.0, 1.0};
  const std::vector<double> b{2.0, 2.0};
  EXPECT_DOUBLE_EQ(relative_error(a, b), 0.5);  // ||a-b|| / ||b|| = 2/4
}

TEST(RelativeError, BothZeroVectorsIsZero) {
  const std::vector<double> z{0.0, 0.0};
  EXPECT_DOUBLE_EQ(relative_error(z, z), 0.0);
}

TEST(RelativeError, InfiniteAgainstZeroReference) {
  const std::vector<double> a{1.0};
  const std::vector<double> z{0.0};
  EXPECT_TRUE(std::isinf(relative_error(a, z)));
}

}  // namespace
}  // namespace p2prank::util
