#include "rank/gauss_seidel.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/synthetic_web.hpp"
#include "rank/open_system.hpp"
#include "test_support.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace p2prank::rank {
namespace {

constexpr double kAlpha = 0.85;
constexpr double kBeta = 1.0 - kAlpha;

util::ThreadPool& pool() {
  static util::ThreadPool p(2);
  return p;
}

SolveOptions tight() {
  SolveOptions o;
  o.alpha = kAlpha;
  o.epsilon = 1e-13;
  o.max_iterations = 3000;
  return o;
}

TEST(GaussSeidel, MatchesJacobiFixedPoint) {
  const auto g = graph::generate_synthetic_web(graph::google2002_config(3000, 7));
  const auto m = LinkMatrix::from_graph(g, kAlpha);
  const std::vector<double> forcing(m.dimension(), kBeta);
  const auto jacobi = solve_open_system(m, forcing, {}, tight(), pool());
  const auto gs = solve_open_system_gauss_seidel(m, forcing, {}, tight());
  ASSERT_TRUE(jacobi.converged);
  ASSERT_TRUE(gs.converged);
  EXPECT_LT(util::relative_error(gs.ranks, jacobi.ranks), 1e-9);
}

TEST(GaussSeidel, NeverNeedsMoreSweepsThanJacobi) {
  // On arbitrarily-oriented web graphs the classic ρ_GS = ρ_J² speedup
  // (which needs consistently ordered matrices) degrades to parity; GS must
  // still never be slower. The chain test below is the strict-win case.
  const auto g = graph::generate_synthetic_web(graph::google2002_config(3000, 7));
  const auto m = LinkMatrix::from_graph(g, 0.95);
  const std::vector<double> forcing(m.dimension(), 0.05);
  SolveOptions o = tight();
  o.alpha = 0.95;
  const auto jacobi = solve_open_system(m, forcing, {}, o, pool());
  const auto gs = solve_open_system_gauss_seidel(m, forcing, {}, o);
  ASSERT_TRUE(gs.converged);
  EXPECT_LE(gs.iterations, jacobi.iterations);
}

TEST(GaussSeidel, ClosedFormOnChain) {
  // On a forward chain Gauss–Seidel in ascending page order converges in
  // ONE sweep: each page's in-links come from already-updated pages.
  const auto g = test::chain(6);
  const auto m = LinkMatrix::from_graph(g, kAlpha);
  const std::vector<double> forcing(m.dimension(), kBeta);
  const auto gs = solve_open_system_gauss_seidel(m, forcing, {}, tight());
  EXPECT_LE(gs.iterations, 2u);  // sweep 2 just certifies delta ~ 0
  double expected = kBeta;
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(gs.ranks[i], expected, 1e-12);
    expected = kBeta + kAlpha * expected;
  }
}

TEST(GaussSeidel, SweepReturnsL1Change) {
  const auto g = test::two_cycle();
  const auto m = LinkMatrix::from_graph(g, kAlpha);
  std::vector<double> ranks(2, 0.0);
  const std::vector<double> forcing(2, kBeta);
  const double delta = gauss_seidel_sweep(m, ranks, forcing);
  // Row 0: beta. Row 1 sees updated row 0: beta + alpha*beta.
  EXPECT_DOUBLE_EQ(ranks[0], kBeta);
  EXPECT_DOUBLE_EQ(ranks[1], kBeta + kAlpha * kBeta);
  EXPECT_DOUBLE_EQ(delta, ranks[0] + ranks[1]);
}

TEST(GaussSeidel, ValidatesSizes) {
  const auto g = test::two_cycle();
  const auto m = LinkMatrix::from_graph(g, kAlpha);
  const std::vector<double> bad(3, 0.0);
  EXPECT_THROW((void)solve_open_system_gauss_seidel(m, bad, {}, tight()),
               std::invalid_argument);
  const std::vector<double> forcing(2, kBeta);
  EXPECT_THROW((void)solve_open_system_gauss_seidel(m, forcing, bad, tight()),
               std::invalid_argument);
}

TEST(GaussSeidel, WarmStartConvergesImmediately) {
  const auto g = graph::generate_synthetic_web(graph::google2002_config(1000, 9));
  const auto m = LinkMatrix::from_graph(g, kAlpha);
  const std::vector<double> forcing(m.dimension(), kBeta);
  const auto first = solve_open_system_gauss_seidel(m, forcing, {}, tight());
  const auto second =
      solve_open_system_gauss_seidel(m, forcing, first.ranks, tight());
  EXPECT_LE(second.iterations, 2u);
}

}  // namespace
}  // namespace p2prank::rank
