// Scenario: a distributed search engine ranking its crawl.
//
// This is the workload the paper's introduction motivates: the web outgrows
// one machine, so K cooperating page rankers each own a slice of the crawl
// and must agree on page importance without a coordinator.
//
// The example walks the full operational pipeline:
//   1. crawl   — synthesize a realistic 20k-page crawl (power-law sites,
//                90% intra-site links, half the link targets uncrawled);
//   2. shard   — compare partitioning strategies and pick hash-by-site;
//   3. rank    — run DPR1 asynchronously with 30% message loss;
//   4. serve   — show the top-10 pages and verify they match what one big
//                machine would have computed;
//   5. recrawl — demonstrate why hashing matters: a revisited URL routes to
//                the same ranker with no global lookup.
//
// Run:  ./search_engine_ranking [--pages=20000] [--rankers=24] [--loss=0.3]
#include <iostream>
#include <memory>

#include "engine/distributed.hpp"
#include "engine/reference.hpp"
#include "graph/graph_stats.hpp"
#include "graph/synthetic_web.hpp"
#include "partition/partition_stats.hpp"
#include "partition/partitioner.hpp"
#include "rank/centralized.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

std::uint64_t flag_u64(int argc, char** argv, const std::string& key,
                       std::uint64_t fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.starts_with(prefix)) return std::stoull(arg.substr(prefix.size()));
  }
  return fallback;
}

double flag_double(int argc, char** argv, const std::string& key, double fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.starts_with(prefix)) return std::stod(arg.substr(prefix.size()));
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace p2prank;
  const auto pages = static_cast<std::uint32_t>(flag_u64(argc, argv, "pages", 20000));
  const auto k = static_cast<std::uint32_t>(flag_u64(argc, argv, "rankers", 24));
  const double loss = flag_double(argc, argv, "loss", 0.3);
  auto& pool = util::ThreadPool::shared();

  // --- 1. crawl ---------------------------------------------------------------
  const auto g = graph::generate_synthetic_web(graph::google2002_config(pages, 2026));
  const auto stats = graph::compute_stats(g);
  std::cout << "1. crawl\n";
  graph::print_stats(stats, std::cout);

  // --- 2. shard ---------------------------------------------------------------
  std::cout << "\n2. shard across " << k << " page rankers\n";
  util::Table shard_table({"strategy", "cut links", "cut %", "imbalance"});
  std::unique_ptr<partition::Partitioner> strategies[] = {
      partition::make_random_partitioner(7),
      partition::make_hash_url_partitioner(),
      partition::make_hash_site_partitioner(),
  };
  for (const auto& s : strategies) {
    const auto stats_k =
        partition::compute_partition_stats(g, s->partition(g, k), k);
    shard_table.row()
        .cell(std::string(s->name()))
        .cell(std::uint64_t{stats_k.cut_links})
        .cell(stats_k.cut_fraction() * 100.0, 1)
        .cell(stats_k.imbalance(), 2);
  }
  shard_table.print(std::cout);
  std::cout << "-> hash-site cuts the fewest links; every cut link is a score\n"
               "   record on the wire each exchange round, so we shard by site.\n";
  const auto assignment = partition::make_hash_site_partitioner()->partition(g, k);

  // --- 3. rank ----------------------------------------------------------------
  std::cout << "\n3. rank with DPR1 (" << loss * 100 << "% message loss, "
            << "asynchronous rankers)\n";
  const auto reference = engine::open_system_reference(g, 0.85, pool);
  engine::EngineOptions opts;
  opts.algorithm = engine::Algorithm::kDPR1;
  opts.alpha = 0.85;
  opts.delivery_probability = 1.0 - loss;
  opts.t1 = 0.0;
  opts.t2 = 6.0;
  opts.seed = 11;
  engine::DistributedRanking sim(g, assignment, k, opts, pool);
  sim.set_reference(reference);
  const auto progress = sim.run(80.0, 10.0);
  util::Table conv({"virtual time", "relative error %", "outer steps (total)"});
  for (const auto& s : progress) {
    conv.row()
        .cell(s.time, 0)
        .cell(s.relative_error * 100.0, 3)
        .cell(s.total_outer_steps);
  }
  conv.print(std::cout);
  std::cout << "messages: " << sim.messages_sent() << " sent, "
            << sim.messages_lost() << " lost (loss tolerated by design)\n";

  // --- 4. serve ---------------------------------------------------------------
  std::cout << "\n4. serve: top pages\n";
  const auto ranks = sim.global_ranks();
  const auto top_dist = rank::top_pages(ranks, 10);
  const auto top_ref = rank::top_pages(reference, 10);
  util::Table top({"#", "page (distributed)", "rank", "same as centralized?"});
  for (std::size_t i = 0; i < top_dist.size(); ++i) {
    top.row()
        .cell(static_cast<std::uint64_t>(i + 1))
        .cell(g.url(top_dist[i]))
        .cell(ranks[top_dist[i]], 4)
        .cell(top_dist[i] == top_ref[i] ? "yes" : "no");
  }
  top.print(std::cout);

  // --- 5. recrawl -------------------------------------------------------------
  std::cout << "\n5. recrawl routing (no coordinator needed)\n";
  const auto& partitioner = *strategies[2];
  for (const auto* url : {"site3.edu/page17.html", "site42.edu/page0.html"}) {
    partition::GroupId group = 0;
    if (partitioner.assign_url(url, k, group)) {
      std::cout << "   " << url << " -> ranker " << group
                << " (any crawler computes this locally from the site hash)\n";
    }
  }
  return 0;
}
