// Quickstart: the p2prank API in one file.
//
// Builds a ten-page crawl by hand, ranks it three ways —
//   1. classic centralized PageRank (Algorithm 1),
//   2. the open-system variant (Section 3),
//   3. fully distributed DPR1 over 3 page rankers (Section 4) —
// and shows that (3) converges to (2).
//
// Run:  ./quickstart
#include <iostream>
#include <vector>

#include "engine/distributed.hpp"
#include "engine/reference.hpp"
#include "graph/graph_builder.hpp"
#include "partition/partitioner.hpp"
#include "rank/centralized.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace p2prank;

  // --- 1. Build a crawl ------------------------------------------------------
  // Three sites; "alpha.edu/home" is the popular hub everyone links to.
  // One link points at a page the crawler never fetched (external): its
  // rank share will leave the open system.
  graph::GraphBuilder builder;
  const auto home = builder.add_page("alpha.edu/home");
  const auto docs = builder.add_page("alpha.edu/docs");
  const auto blog = builder.add_page("alpha.edu/blog");
  const auto b1 = builder.add_page("beta.edu/index");
  const auto b2 = builder.add_page("beta.edu/paper");
  const auto c1 = builder.add_page("gamma.edu/index");
  const auto c2 = builder.add_page("gamma.edu/lab");
  const auto c3 = builder.add_page("gamma.edu/people");

  builder.add_link(docs, home);
  builder.add_link(blog, home);
  builder.add_link(home, docs);
  builder.add_link(b1, home);
  builder.add_link(b1, b2);
  builder.add_link(b2, home);
  builder.add_link(c1, home);
  builder.add_link(c1, c2);
  builder.add_link(c2, c3);
  builder.add_link(c3, c1);
  builder.add_external_link(blog);  // -> somewhere uncrawled

  const auto g = std::move(builder).build();
  std::cout << "crawl: " << g.num_pages() << " pages on " << g.num_sites()
            << " sites, " << g.num_links() << " internal + "
            << g.num_external_links() << " external links\n\n";

  auto& pool = util::ThreadPool::shared();

  // --- 2. Classic centralized PageRank (Algorithm 1) ------------------------
  rank::CentralizedOptions copts;
  copts.damping = 0.85;
  const auto classic = rank::centralized_pagerank(g, copts, pool);

  // --- 3. Open-system PageRank, computed centrally (Section 3) --------------
  const auto open = engine::open_system_reference(g, /*alpha=*/0.85, pool);

  // --- 4. Distributed: 3 page rankers running DPR1 (Section 4) --------------
  // Partition at site granularity (the paper's recommendation). With only 3
  // sites the balanced variant guarantees one site per ranker; at real
  // scale you would use make_hash_site_partitioner() for re-crawl stability.
  const std::uint32_t k = 3;
  const auto assignment =
      partition::make_balanced_site_partitioner()->partition(g, k);

  engine::EngineOptions opts;
  opts.algorithm = engine::Algorithm::kDPR1;
  opts.alpha = 0.85;
  opts.t1 = 0.0;
  opts.t2 = 2.0;  // mean think-time between loop steps
  opts.seed = 1;
  engine::DistributedRanking sim(g, assignment, k, opts, pool);
  sim.set_reference(open);
  const auto result = sim.run_until_error(/*threshold=*/1e-8, /*max_time=*/500.0);
  const auto distributed = sim.global_ranks();

  // --- 5. Compare -------------------------------------------------------------
  util::Table table({"page", "ranker", "classic (sums to 1)", "open-system",
                     "distributed DPR1"});
  for (graph::PageId p = 0; p < g.num_pages(); ++p) {
    table.row()
        .cell(g.url(p))
        .cell(std::uint64_t{assignment[p]})
        .cell(classic.ranks[p], 4)
        .cell(open[p], 4)
        .cell(distributed[p], 4);
  }
  table.print(std::cout, "PageRank three ways");

  std::cout << "\ndistributed vs centralized open-system relative error: "
            << sim.relative_error_now() << '\n'
            << "outer rounds per ranker (mean): " << result.mean_outer_steps << '\n'
            << "messages exchanged: " << sim.messages_sent() << " carrying "
            << sim.records_sent() << " <from,to,score> records\n\n";

  const auto top = rank::top_pages(open, 3);
  std::cout << "top pages (open-system): ";
  for (const auto p : top) std::cout << g.url(p) << "  ";
  std::cout << "\n(the hub everyone links to wins)\n";
  return 0;
}
