// Scenario: ranking a web that is still being crawled.
//
// Real search engines never see a finished web: crawlers keep discovering
// and re-fetching pages while rankers run. This example drives that loop —
// the paper's full system model — through four crawl stages:
//
//   crawl a batch -> snapshot the link graph -> hash-partition (stable for
//   already-placed pages) -> warm-start distributed DPR1 from the previous
//   stage's ranks -> converge -> repeat.
//
// Things to watch in the output:
//   * the internal-link fraction rises as coverage grows (fewer dangling
//     frontiers), lifting the average rank plateau;
//   * pages never migrate between rankers across stages (hash stability);
//   * warm-started stages start at a small relative error and converge in
//     far less virtual time than the cold first stage.
//
// Run:  ./dynamic_crawl [--universe=20000] [--stages=4] [--rankers=12]
#include <iostream>
#include <string>

#include "crawl/crawler.hpp"
#include "engine/distributed.hpp"
#include "engine/reference.hpp"
#include "graph/graph_stats.hpp"
#include "partition/partitioner.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

std::uint64_t flag_u64(int argc, char** argv, const std::string& key,
                       std::uint64_t fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.starts_with(prefix)) return std::stoull(arg.substr(prefix.size()));
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace p2prank;
  const auto universe =
      static_cast<std::uint32_t>(flag_u64(argc, argv, "universe", 20000));
  const auto stages = flag_u64(argc, argv, "stages", 4);
  const auto k = static_cast<std::uint32_t>(flag_u64(argc, argv, "rankers", 12));
  auto& pool = util::ThreadPool::shared();

  crawl::CrawlConfig ccfg;
  ccfg.seed = 17;
  ccfg.num_sites = 60;
  ccfg.universe_pages = universe;
  ccfg.revisit_fraction = 0.05;
  crawl::Crawler crawler(ccfg);

  std::cout << "dynamic crawl: universe of " << crawler.universe_size()
            << " pages over " << ccfg.num_sites << " sites, " << k
            << " page rankers\n\n";

  engine::EngineOptions opts;
  opts.algorithm = engine::Algorithm::kDPR1;
  opts.alpha = 0.85;
  opts.t1 = 0.0;
  opts.t2 = 4.0;
  opts.seed = 5;

  const auto partitioner = partition::make_hash_site_partitioner();
  const std::size_t batch = crawler.universe_size() / (stages + 1);

  util::Table table({"stage", "pages", "internal %", "avg rank",
                     "start rel err %", "converge time", "migrated pages"});
  std::vector<double> prev_ranks;
  graph::WebGraph prev_graph;
  std::vector<std::uint32_t> prev_assignment;

  for (std::uint64_t stage = 1; stage <= stages; ++stage) {
    (void)crawler.fetch(batch);
    auto g = crawler.snapshot();
    const auto stats = graph::compute_stats(g);
    const auto assignment = partitioner->partition(g, k);

    // Hash stability check: did any previously placed page move?
    std::size_t migrated = 0;
    for (graph::PageId p = 0; p < prev_assignment.size(); ++p) {
      if (assignment[p] != prev_assignment[p]) ++migrated;
    }

    const auto reference = engine::open_system_reference(g, opts.alpha, pool);
    double ref_avg = 0.0;
    for (const double r : reference) ref_avg += r;
    ref_avg /= static_cast<double>(reference.size());

    engine::DistributedRanking sim(g, assignment, k, opts, pool);
    sim.set_reference(reference);
    if (!prev_ranks.empty()) {
      sim.warm_start(engine::carry_ranks(prev_graph, prev_ranks, g));
    }
    const double start_err = sim.relative_error_now();
    const auto result = sim.run_until_error(1e-5, 2000.0, 1.0);

    table.row()
        .cell("#" + std::to_string(stage) + (stage == 1 ? " (cold)" : " (warm)"))
        .cell(std::uint64_t{g.num_pages()})
        .cell(stats.internal_fraction() * 100.0, 1)
        .cell(ref_avg, 3)
        .cell(start_err * 100.0, 1)
        .cell(result.reached ? util::format_double(result.time, 0) + " units"
                             : std::string("did not converge"))
        .cell(std::uint64_t{migrated});

    prev_ranks = sim.global_ranks();
    prev_graph = std::move(g);  // sim is not used after this point
    prev_assignment = assignment;
  }
  table.print(std::cout, "Crawl-while-ranking, stage by stage");

  std::cout << "\nNotes:\n"
               "  * 'migrated pages' stays 0: hash-by-site keeps every page on\n"
               "    its ranker as the crawl grows (Section 4.1's stability).\n"
               "  * warm stages start near the previous fixed point, so they\n"
               "    converge in a fraction of the cold stage's time.\n";
  return 0;
}
