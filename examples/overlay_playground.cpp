// Scenario: what the structured overlay actually does for page ranking.
//
// Walks the two overlay mechanisms the paper relies on:
//   * lookups — how node S finds the machine responsible for a key
//     (Fig. 3 (B)): prefix routing in Pastry, finger hopping in Chord;
//   * indirect transmission — score records routed along those same paths,
//     packed and recombined at every hop (Figs. 4 & 5), trading bandwidth
//     for an O(N) message count.
//
// Run:  ./overlay_playground
#include <iomanip>
#include <iostream>

#include "overlay/chord.hpp"
#include "overlay/pastry.hpp"
#include "transport/exchange.hpp"
#include "util/table.hpp"

int main() {
  using namespace p2prank;
  constexpr std::uint32_t kNodes = 64;

  overlay::PastryConfig pcfg;
  pcfg.num_nodes = kNodes;
  pcfg.seed = 99;
  const overlay::PastryOverlay pastry(pcfg);

  overlay::ChordConfig ccfg;
  ccfg.num_nodes = kNodes;
  ccfg.seed = 99;
  const overlay::ChordOverlay chord(ccfg);

  // --- 1. Node ids -----------------------------------------------------------
  std::cout << "1. " << kNodes << "-node overlays; a few Pastry node ids:\n";
  for (overlay::NodeIndex n = 0; n < 4; ++n) {
    std::cout << "   node " << n << " = " << pastry.id_of(n).to_hex() << '\n';
  }

  // --- 2. A lookup, hop by hop ------------------------------------------------
  const auto key = overlay::node_id_from_key("site17.edu");
  std::cout << "\n2. lookup: which ranker owns key hash(\"site17.edu\") = "
            << key.to_hex() << "?\n";
  for (const overlay::Overlay* o :
       {static_cast<const overlay::Overlay*>(&pastry),
        static_cast<const overlay::Overlay*>(&chord)}) {
    const overlay::NodeIndex from = 5;
    const auto path = o->route(from, key);
    std::cout << "   " << std::setw(6) << o->name() << ": node " << from;
    for (const auto hop : path) std::cout << " -> " << hop;
    std::cout << "  (" << path.size() << " hops)\n";
  }
  std::cout << "   every hop extends the shared id prefix (Pastry) or halves\n"
               "   the remaining ring distance (Chord) — O(log N) total.\n";

  // --- 3. Neighbor sets -------------------------------------------------------
  std::cout << "\n3. neighbors of node 5 (who it can reach in ONE hop):\n";
  std::cout << "   pastry: " << pastry.neighbors(5).size()
            << " (leaf set + routing table)\n";
  std::cout << "   chord:  " << chord.neighbors(5).size()
            << " (successors + fingers)\n";

  // --- 4. Direct vs indirect transmission ------------------------------------
  std::cout << "\n4. one exchange round: every ranker ships 5 score records to\n"
               "   every other ranker (" << kNodes << "x" << kNodes - 1
            << " pairs)\n";
  const auto demand = transport::ExchangeDemand::all_pairs(kNodes, 5);
  const auto direct = transport::run_direct_exchange(pastry, demand, {});
  const auto indirect = transport::run_indirect_exchange(pastry, demand, {});
  util::Table table({"scheme", "messages", "bytes", "notes"});
  table.row()
      .cell("direct")
      .cell(direct.total_messages())
      .cell(util::format_bytes(direct.total_bytes()))
      .cell("lookup per destination, then point-to-point");
  table.row()
      .cell("indirect")
      .cell(indirect.data_messages)
      .cell(util::format_bytes(indirect.total_bytes()))
      .cell("routed + repacked per hop, neighbors only");
  table.print(std::cout);
  std::cout << "   indirect sends " << std::fixed << std::setprecision(1)
            << static_cast<double>(direct.total_messages()) /
                   static_cast<double>(indirect.data_messages)
            << "x fewer messages but moves each record "
            << static_cast<double>(indirect.record_hops) /
                   static_cast<double>(indirect.records_delivered)
            << " hops on average — the Section 4.4 trade.\n";
  return 0;
}
