// Scenario: capacity planning for a distributed page-ranking deployment
// (Section 4.5 as a command-line tool).
//
// Given a web size, a ranker count and bandwidth budgets, answers:
//   * how often can the rankers exchange scores (min iteration interval)?
//   * what per-node bottleneck bandwidth does that demand?
//   * should this deployment use direct or indirect transmission?
//
// Run:  ./capacity_planner [--pages=3000000000] [--rankers=1000]
//                          [--bisection-mbps=100] [--node-kbps=256]
//                          [--record-bytes=100] [--pastry-bits=4]
#include <cmath>
#include <iostream>
#include <string>

#include "cost/capacity_model.hpp"
#include "util/table.hpp"

namespace {

double flag(int argc, char** argv, const std::string& key, double fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.starts_with(prefix)) return std::stod(arg.substr(prefix.size()));
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace p2prank;

  cost::CostParameters p;
  p.total_pages = flag(argc, argv, "pages", 3e9);
  p.record_bytes = flag(argc, argv, "record-bytes", 100.0);
  p.bisection_bandwidth = flag(argc, argv, "bisection-mbps", 100.0) * 1e6;
  const double n = flag(argc, argv, "rankers", 1000.0);
  const double node_bw = flag(argc, argv, "node-kbps", 256.0) * 1e3;
  const int bits = static_cast<int>(flag(argc, argv, "pastry-bits", 4.0));

  const double h = std::max(1.0, cost::pastry_expected_hops(n, bits));
  std::cout << "capacity plan: W=" << p.total_pages << " pages over " << n
            << " rankers (Pastry b=" << bits << ", h~" << util::format_double(h, 2)
            << " hops)\n\n";

  // --- Per-iteration traffic, both schemes -----------------------------------
  const auto dt = cost::direct_cost(n, h, p);
  const auto it = cost::indirect_cost(n, h, p);
  util::Table traffic({"scheme", "bytes/iteration", "messages/iteration"});
  traffic.row()
      .cell("direct")
      .cell(util::format_bytes(dt.bytes))
      .cell(static_cast<std::uint64_t>(dt.messages));
  traffic.row()
      .cell("indirect")
      .cell(util::format_bytes(it.bytes))
      .cell(static_cast<std::uint64_t>(it.messages));
  traffic.print(std::cout, "Traffic per iteration (formulas 4.1-4.4)");

  // --- Constraints ------------------------------------------------------------
  const double t_bisection = cost::min_iteration_interval(h, p);
  const double t_node = it.bytes / (n * node_bw);
  const double t = std::max(t_bisection, t_node);
  std::cout << "\nConstraints (indirect transmission):\n"
            << "  internet bisection budget  -> T >= "
            << util::format_seconds(t_bisection) << '\n'
            << "  node bottleneck ("
            << util::format_bytes(node_bw) << "/s)  -> T >= "
            << util::format_seconds(t_node) << '\n'
            << "  => minimal iteration interval: " << util::format_seconds(t)
            << '\n'
            << "  => node bandwidth needed at that interval: "
            << util::format_bytes(cost::min_node_bandwidth(n, h, t, p)) << "/s\n";

  // --- Recommendation -----------------------------------------------------------
  const bool indirect_fewer_msgs = it.messages < dt.messages;
  const bool indirect_fewer_bytes = it.bytes < dt.bytes;
  std::cout << "\nRecommendation: ";
  if (indirect_fewer_msgs && indirect_fewer_bytes) {
    std::cout << "indirect transmission (fewer messages AND fewer bytes).\n";
  } else if (indirect_fewer_msgs) {
    std::cout << "indirect transmission — it costs "
              << util::format_double(it.bytes / dt.bytes, 2)
              << "x the bytes but sends "
              << util::format_double(dt.messages / it.messages, 0)
              << "x fewer messages; per-message overhead (lookups, kernel\n"
                 "crossings) dominates at this scale (Section 4.4).\n";
  } else {
    std::cout << "direct transmission (deployment small enough that one-to-one\n"
                 "sends are cheapest).\n";
  }
  std::cout << "Fewer-byte crossover for these parameters: N ~ "
            << cost::byte_crossover_n(p, bits) << " rankers.\n";
  return 0;
}
