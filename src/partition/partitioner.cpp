#include "partition/partitioner.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <stdexcept>

#include "graph/url.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace p2prank::partition {

namespace {

void check_k(std::uint32_t k) {
  if (k == 0) throw std::invalid_argument("partition: k must be positive");
}

class RandomPartitioner final : public Partitioner {
 public:
  explicit RandomPartitioner(std::uint64_t seed) : seed_(seed) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "random"; }

  [[nodiscard]] std::vector<GroupId> partition(const graph::WebGraph& g,
                                               std::uint32_t k) const override {
    check_k(k);
    util::Rng rng(seed_);
    std::vector<GroupId> groups(g.num_pages());
    for (auto& gr : groups) gr = static_cast<GroupId>(rng.below(k));
    return groups;
  }

 private:
  std::uint64_t seed_;
};

class HashUrlPartitioner final : public Partitioner {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "hash-url"; }

  [[nodiscard]] std::vector<GroupId> partition(const graph::WebGraph& g,
                                               std::uint32_t k) const override {
    check_k(k);
    std::vector<GroupId> groups(g.num_pages());
    for (graph::PageId p = 0; p < g.num_pages(); ++p) {
      groups[p] = static_cast<GroupId>(util::stable_hash(g.url(p)) % k);
    }
    return groups;
  }

  [[nodiscard]] bool assign_url(std::string_view url, std::uint32_t k,
                                GroupId& out) const override {
    check_k(k);
    out = static_cast<GroupId>(util::stable_hash(url) % k);
    return true;
  }
};

class HashSitePartitioner final : public Partitioner {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "hash-site"; }

  [[nodiscard]] std::vector<GroupId> partition(const graph::WebGraph& g,
                                               std::uint32_t k) const override {
    check_k(k);
    // Hash each site once, then fan out to its pages.
    std::vector<GroupId> site_group(g.num_sites());
    for (graph::SiteId s = 0; s < g.num_sites(); ++s) {
      site_group[s] = static_cast<GroupId>(util::stable_hash(g.site_name(s)) % k);
    }
    std::vector<GroupId> groups(g.num_pages());
    for (graph::PageId p = 0; p < g.num_pages(); ++p) {
      groups[p] = site_group[g.site(p)];
    }
    return groups;
  }

  [[nodiscard]] bool assign_url(std::string_view url, std::uint32_t k,
                                GroupId& out) const override {
    check_k(k);
    out = static_cast<GroupId>(util::stable_hash(graph::site_of(url)) % k);
    return true;
  }
};

class BalancedSitePartitioner final : public Partitioner {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "balanced-site";
  }

  [[nodiscard]] std::vector<GroupId> partition(const graph::WebGraph& g,
                                               std::uint32_t k) const override {
    check_k(k);
    // Longest-processing-time greedy: sites in decreasing size order, each
    // onto the currently lightest group.
    std::vector<graph::SiteId> order(g.num_sites());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](graph::SiteId a, graph::SiteId b) {
                       return g.pages_of_site(a).size() > g.pages_of_site(b).size();
                     });

    using Load = std::pair<std::uint64_t, GroupId>;  // (pages, group)
    std::priority_queue<Load, std::vector<Load>, std::greater<>> heap;
    for (GroupId gr = 0; gr < k; ++gr) heap.emplace(0, gr);

    std::vector<GroupId> site_group(g.num_sites());
    for (const graph::SiteId s : order) {
      auto [load, gr] = heap.top();
      heap.pop();
      site_group[s] = gr;
      heap.emplace(load + g.pages_of_site(s).size(), gr);
    }

    std::vector<GroupId> groups(g.num_pages());
    for (graph::PageId p = 0; p < g.num_pages(); ++p) {
      groups[p] = site_group[g.site(p)];
    }
    return groups;
  }
};

}  // namespace

std::unique_ptr<Partitioner> make_random_partitioner(std::uint64_t seed) {
  return std::make_unique<RandomPartitioner>(seed);
}

std::unique_ptr<Partitioner> make_hash_url_partitioner() {
  return std::make_unique<HashUrlPartitioner>();
}

std::unique_ptr<Partitioner> make_hash_site_partitioner() {
  return std::make_unique<HashSitePartitioner>();
}

std::unique_ptr<Partitioner> make_balanced_site_partitioner() {
  return std::make_unique<BalancedSitePartitioner>();
}

}  // namespace p2prank::partition
