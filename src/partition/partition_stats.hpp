// Quality metrics of a partition: cut links (they become inter-ranker
// traffic), balance, and per-group afferent/efferent degrees.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "graph/web_graph.hpp"
#include "partition/partitioner.hpp"

namespace p2prank::partition {

struct PartitionStats {
  std::uint32_t k = 0;
  std::size_t pages = 0;
  std::size_t internal_links = 0;
  /// Links whose endpoints fall in different groups — every one of these
  /// produces a <url_from, url_to, score> record per exchange round.
  std::size_t cut_links = 0;
  std::size_t nonempty_groups = 0;
  std::size_t largest_group = 0;
  std::size_t smallest_nonempty_group = 0;
  std::vector<std::size_t> group_sizes;          // pages per group
  std::vector<std::size_t> group_efferent;       // cut links leaving group
  std::vector<std::size_t> group_afferent;       // cut links entering group

  /// cut / internal links.
  [[nodiscard]] double cut_fraction() const noexcept;
  /// largest group size relative to the perfectly balanced size (>= 1).
  [[nodiscard]] double imbalance() const noexcept;
};

[[nodiscard]] PartitionStats compute_partition_stats(
    const graph::WebGraph& g, const std::vector<GroupId>& groups, std::uint32_t k);

void print_partition_stats(const PartitionStats& s, std::ostream& out);

}  // namespace p2prank::partition
