// Page-partitioning strategies (Section 4.1 of the paper).
//
// K page rankers each own one *page group*; the partitioner decides which
// group every crawled page belongs to. The paper compares three strategies —
// random, hash-of-URL, hash-of-site — and argues for site granularity: with
// ~90% of links intra-site, hashing whole sites onto rankers keeps most rank
// transfer local, and hashing (as opposed to random choice) guarantees a
// page revisited by the crawler lands on the same ranker.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "graph/web_graph.hpp"

namespace p2prank::partition {

using GroupId = std::uint32_t;

/// Maps every page of a crawl to one of k groups.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Group assignment for every page; result[p] in [0, k).
  [[nodiscard]] virtual std::vector<GroupId> partition(const graph::WebGraph& g,
                                                       std::uint32_t k) const = 0;

  /// Where a single URL would be placed, *without* seeing the rest of the
  /// crawl. Strategies that cannot answer this (they need global state)
  /// return false. This models the crawler's re-visit problem: a strategy is
  /// "stable" iff this function is defined and deterministic.
  [[nodiscard]] virtual bool assign_url(std::string_view url, std::uint32_t k,
                                        GroupId& out) const {
    (void)url;
    (void)k;
    (void)out;
    return false;
  }
};

/// Uniform random assignment. Deterministic for a fixed seed and crawl, but
/// *not* stable under re-crawl: assign_url is unsupported because the
/// placement of a page depends on when it shows up.
[[nodiscard]] std::unique_ptr<Partitioner> make_random_partitioner(std::uint64_t seed);

/// Stable hash of the full page URL.
[[nodiscard]] std::unique_ptr<Partitioner> make_hash_url_partitioner();

/// Stable hash of the page's site — the paper's recommended strategy.
[[nodiscard]] std::unique_ptr<Partitioner> make_hash_site_partitioner();

/// Extension (ablation): greedy longest-processing-time assignment of whole
/// sites to the least-loaded group. Best balance at site granularity but
/// requires global knowledge, so not re-crawl stable.
[[nodiscard]] std::unique_ptr<Partitioner> make_balanced_site_partitioner();

}  // namespace p2prank::partition
