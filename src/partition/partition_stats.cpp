#include "partition/partition_stats.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace p2prank::partition {

double PartitionStats::cut_fraction() const noexcept {
  return internal_links == 0
             ? 0.0
             : static_cast<double>(cut_links) / static_cast<double>(internal_links);
}

double PartitionStats::imbalance() const noexcept {
  if (k == 0 || pages == 0) return 1.0;
  const double ideal = static_cast<double>(pages) / static_cast<double>(k);
  return static_cast<double>(largest_group) / ideal;
}

PartitionStats compute_partition_stats(const graph::WebGraph& g,
                                       const std::vector<GroupId>& groups,
                                       std::uint32_t k) {
  if (groups.size() != g.num_pages()) {
    throw std::invalid_argument("partition stats: assignment size mismatch");
  }
  PartitionStats s;
  s.k = k;
  s.pages = g.num_pages();
  s.internal_links = g.num_links();
  s.group_sizes.assign(k, 0);
  s.group_efferent.assign(k, 0);
  s.group_afferent.assign(k, 0);

  for (graph::PageId p = 0; p < g.num_pages(); ++p) {
    assert(groups[p] < k);
    ++s.group_sizes[groups[p]];
  }
  for (graph::PageId u = 0; u < g.num_pages(); ++u) {
    const GroupId gu = groups[u];
    for (const graph::PageId v : g.out_links(u)) {
      const GroupId gv = groups[v];
      if (gu != gv) {
        ++s.cut_links;
        ++s.group_efferent[gu];
        ++s.group_afferent[gv];
      }
    }
  }

  s.smallest_nonempty_group = std::numeric_limits<std::size_t>::max();
  for (const std::size_t size : s.group_sizes) {
    if (size == 0) continue;
    ++s.nonempty_groups;
    s.largest_group = std::max(s.largest_group, size);
    s.smallest_nonempty_group = std::min(s.smallest_nonempty_group, size);
  }
  if (s.nonempty_groups == 0) s.smallest_nonempty_group = 0;
  return s;
}

void print_partition_stats(const PartitionStats& s, std::ostream& out) {
  out << "k:                 " << s.k << '\n'
      << "pages:             " << s.pages << '\n'
      << "cut links:         " << s.cut_links << " (" << s.cut_fraction() * 100.0
      << "% of internal)\n"
      << "non-empty groups:  " << s.nonempty_groups << '\n'
      << "largest group:     " << s.largest_group << '\n'
      << "imbalance:         " << s.imbalance() << '\n';
}

}  // namespace p2prank::partition
