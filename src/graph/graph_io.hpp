// Serialization of WebGraph to/from a simple text crawl format.
//
// Format (line-oriented, '#' comments allowed):
//   P <url> <site>          -- declare a crawled page
//   L <from_url> <to_url>   -- link; target may be any URL (uncrawled
//                              targets become external links)
//   X <url> <count>         -- `count` external links from url (compact form)
//
// The format round-trips everything the ranking algorithms need. A binary
// format is intentionally omitted: crawls are loaded once per process and
// the text form stays diffable and hand-editable for tests.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/web_graph.hpp"

namespace p2prank::graph {

/// Write the graph in the text crawl format.
void save_graph(const WebGraph& g, std::ostream& out);
void save_graph_file(const WebGraph& g, const std::string& path);

/// Parse the text crawl format. Throws std::runtime_error on malformed
/// input (with a line number in the message).
[[nodiscard]] WebGraph load_graph(std::istream& in);
[[nodiscard]] WebGraph load_graph_file(const std::string& path);

}  // namespace p2prank::graph
