// Serialization of WebGraph to/from a text crawl format and a compact
// binary format.
//
// Text format (line-oriented, '#' comments allowed):
//   P <url> <site>          -- declare a crawled page
//   L <from_url> <to_url>   -- link; target may be any URL (uncrawled
//                              targets become external links)
//   X <url> <count>         -- `count` external links from url (compact
//                              form; count must be >= 1, matching what
//                              save_graph emits)
// Records are exactly three tokens; trailing tokens are a format error
// (they are almost always a mangled URL that would silently change the
// graph). The text form stays diffable and hand-editable for tests.
//
// The binary format ("p2pgrb1") is a direct dump of the canonical CSR:
// length-prefixed site names and URLs, raw site-id array, then per-page
// varint external counts and delta-varint sorted out-rows. Loading rebuilds
// the in-CSR and indexes but never re-parses URLs or re-sorts links, which
// is what lets bench_report reload multi-million-page synthetic webs in
// seconds (DESIGN.md §14).
#pragma once

#include <iosfwd>
#include <string>

#include "graph/web_graph.hpp"

namespace p2prank::graph {

/// Write the graph in the text crawl format.
void save_graph(const WebGraph& g, std::ostream& out);
void save_graph_file(const WebGraph& g, const std::string& path);

/// Parse the text crawl format. Throws std::runtime_error on malformed
/// input (with a line number in the message).
[[nodiscard]] WebGraph load_graph(std::istream& in);
[[nodiscard]] WebGraph load_graph_file(const std::string& path);

/// Write the graph in the binary CSR format.
void save_graph_binary(const WebGraph& g, std::ostream& out);
void save_graph_binary_file(const WebGraph& g, const std::string& path);

/// Parse the binary CSR format. Throws std::runtime_error on a bad magic,
/// truncated stream, or CSR that violates the canonical-form invariants.
[[nodiscard]] WebGraph load_graph_binary(std::istream& in);
[[nodiscard]] WebGraph load_graph_binary_file(const std::string& path);

}  // namespace p2prank::graph
