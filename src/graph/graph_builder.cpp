#include "graph/graph_builder.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <utility>

#include "graph/url.hpp"

namespace p2prank::graph {

PageId GraphBuilder::add_page(std::string_view url) {
  return intern(url, site_of(url));
}

PageId GraphBuilder::add_page(std::string_view url, std::string_view site) {
  return intern(url, site);
}

PageId GraphBuilder::intern(std::string_view url, std::string_view site) {
  const auto it = url_to_page_.find(std::string(url));
  if (it != url_to_page_.end()) {
    if (site_names_[page_sites_[it->second]] != site) {
      throw std::invalid_argument("GraphBuilder: page '" + std::string(url) +
                                  "' re-added with conflicting site '" +
                                  std::string(site) + "' (was '" +
                                  site_names_[page_sites_[it->second]] + "')");
    }
    return it->second;
  }
  if (urls_.size() >= static_cast<std::size_t>(kInvalidPage)) {
    throw std::length_error("GraphBuilder: page id space exhausted");
  }
  const auto id = static_cast<PageId>(urls_.size());
  urls_.emplace_back(url);
  page_sites_.push_back(intern_site(site));
  external_out_.push_back(0);
  url_to_page_.emplace(urls_.back(), id);
  return id;
}

SiteId GraphBuilder::intern_site(std::string_view site) {
  const auto it = site_to_id_.find(std::string(site));
  if (it != site_to_id_.end()) return it->second;
  const auto id = static_cast<SiteId>(site_names_.size());
  site_names_.emplace_back(site);
  site_to_id_.emplace(site_names_.back(), id);
  return id;
}

void GraphBuilder::add_link(PageId from, PageId to) {
  assert(from < urls_.size() && to < urls_.size());
  links_.emplace_back(from, to);
}

void GraphBuilder::add_link_to_url(PageId from, std::string_view to_url) {
  assert(from < urls_.size());
  const auto it = url_to_page_.find(std::string(to_url));
  if (it != url_to_page_.end()) {
    links_.emplace_back(from, it->second);
  } else {
    unresolved_links_.emplace_back(from, std::string(to_url));
  }
}

void GraphBuilder::add_external_link(PageId from, std::uint32_t count) {
  assert(from < urls_.size());
  if (count > std::numeric_limits<std::uint32_t>::max() - external_out_[from]) {
    throw std::overflow_error("GraphBuilder: external out-degree overflow at '" +
                              urls_[from] + "'");
  }
  external_out_[from] += count;
}

std::optional<PageId> GraphBuilder::find(std::string_view url) const {
  const auto it = url_to_page_.find(std::string(url));
  if (it == url_to_page_.end()) return std::nullopt;
  return it->second;
}

WebGraph GraphBuilder::build(bool dedup_links) && {
  // Resolve deferred targets: anything interned by now is internal.
  for (auto& [from, url] : unresolved_links_) {
    const auto it = url_to_page_.find(url);
    if (it != url_to_page_.end()) {
      links_.emplace_back(from, it->second);
    } else {
      // Deferred externals bypass add_external_link, so repeat its guard.
      if (external_out_[from] == std::numeric_limits<std::uint32_t>::max()) {
        throw std::overflow_error(
            "GraphBuilder: external out-degree overflow at '" + urls_[from] + "'");
      }
      ++external_out_[from];
    }
  }
  unresolved_links_.clear();

  // Canonical form (web_graph.hpp): rows sorted by (from, to) regardless of
  // dedup, so splice/streaming paths can reproduce these arrays bitwise.
  std::sort(links_.begin(), links_.end());
  if (dedup_links) {
    links_.erase(std::unique(links_.begin(), links_.end()), links_.end());
  }

  const std::size_t n = urls_.size();
  WebGraph g;
  g.table_ = WebGraph::make_table(std::move(urls_), std::move(site_names_),
                                  std::move(page_sites_));
  g.external_out_ = std::move(external_out_);
  for (const auto e : g.external_out_) g.total_external_ += e;

  // Out CSR: links_ is sorted by source already, so a counting scatter
  // preserves per-row target order.
  g.out_offsets_.assign(n + 1, 0);
  for (const auto& [from, to] : links_) {
    (void)to;
    ++g.out_offsets_[from + 1];
  }
  for (std::size_t i = 0; i < n; ++i) g.out_offsets_[i + 1] += g.out_offsets_[i];
  g.out_targets_.resize(links_.size());
  {
    std::vector<std::uint64_t> cursor(g.out_offsets_.begin(), g.out_offsets_.end() - 1);
    for (const auto& [from, to] : links_) {
      g.out_targets_[cursor[from]++] = to;
    }
  }

  // In CSR via counting sort on target; scanning links_ in (from, to) order
  // leaves each in-row's sources ascending.
  g.in_offsets_.assign(n + 1, 0);
  for (const auto& [from, to] : links_) {
    (void)from;
    ++g.in_offsets_[to + 1];
  }
  for (std::size_t i = 0; i < n; ++i) g.in_offsets_[i + 1] += g.in_offsets_[i];
  g.in_sources_.resize(links_.size());
  {
    std::vector<std::uint64_t> cursor(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
    for (const auto& [from, to] : links_) {
      g.in_sources_[cursor[to]++] = from;
    }
  }
  links_.clear();
  links_.shrink_to_fit();

  return g;
}

}  // namespace p2prank::graph
