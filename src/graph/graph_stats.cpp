#include "graph/graph_stats.hpp"

#include <algorithm>
#include <ostream>

namespace p2prank::graph {

double GraphStats::internal_fraction() const noexcept {
  const std::size_t total = internal_links + external_links;
  return total == 0 ? 0.0
                    : static_cast<double>(internal_links) / static_cast<double>(total);
}

double GraphStats::intra_site_fraction() const noexcept {
  return internal_links == 0 ? 0.0
                             : static_cast<double>(intra_site_links) /
                                   static_cast<double>(internal_links);
}

GraphStats compute_stats(const WebGraph& g) {
  GraphStats s;
  s.pages = g.num_pages();
  s.sites = g.num_sites();
  s.internal_links = g.num_links();
  s.external_links = g.num_external_links();
  s.intra_site_links = g.count_intra_site_links();

  std::size_t degree_sum = 0;
  for (PageId p = 0; p < g.num_pages(); ++p) {
    const std::uint32_t out = g.out_degree(p);
    const std::uint32_t in = g.in_degree(p);
    degree_sum += out;
    if (out == 0) ++s.dangling_pages;
    s.out_degree_hist.add(out);
    s.in_degree_hist.add(in);
    s.max_in_degree = std::max(s.max_in_degree, static_cast<double>(in));
  }
  s.mean_out_degree =
      s.pages == 0 ? 0.0 : static_cast<double>(degree_sum) / static_cast<double>(s.pages);

  for (SiteId site = 0; site < g.num_sites(); ++site) {
    s.site_size_hist.add(g.pages_of_site(site).size());
  }
  return s;
}

void print_stats(const GraphStats& s, std::ostream& out) {
  out << "pages:             " << s.pages << '\n'
      << "sites:             " << s.sites << '\n'
      << "internal links:    " << s.internal_links << '\n'
      << "external links:    " << s.external_links << '\n'
      << "internal fraction: " << s.internal_fraction() << '\n'
      << "intra-site frac:   " << s.intra_site_fraction() << '\n'
      << "dangling pages:    " << s.dangling_pages << '\n'
      << "mean out-degree:   " << s.mean_out_degree << '\n'
      << "max in-degree:     " << s.max_in_degree << '\n';
}

}  // namespace p2prank::graph
