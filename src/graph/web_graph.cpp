#include "graph/web_graph.hpp"

namespace p2prank::graph {

std::optional<PageId> WebGraph::find(std::string_view url) const {
  const auto it = url_index_.find(url);
  if (it == url_index_.end()) return std::nullopt;
  return it->second;
}

std::size_t WebGraph::count_intra_site_links() const noexcept {
  std::size_t intra = 0;
  for (PageId u = 0; u < num_pages(); ++u) {
    const SiteId s = sites_[u];
    for (const PageId v : out_links(u)) {
      if (sites_[v] == s) ++intra;
    }
  }
  return intra;
}

}  // namespace p2prank::graph
