#include "graph/web_graph.hpp"

namespace p2prank::graph {

std::optional<PageId> WebGraph::find(std::string_view url) const {
  if (table_ == nullptr) return std::nullopt;
  const auto it = table_->url_index.find(url);
  if (it == table_->url_index.end()) return std::nullopt;
  return it->second;
}

std::shared_ptr<const WebGraph::PageTable> WebGraph::make_table(
    std::vector<std::string> urls, std::vector<std::string> site_names,
    std::vector<SiteId> sites) {
  auto table = std::make_shared<PageTable>();
  table->urls = std::move(urls);
  table->site_names = std::move(site_names);
  table->sites = std::move(sites);

  const std::size_t n = table->urls.size();
  const std::size_t num_sites = table->site_names.size();
  table->site_offsets.assign(num_sites + 1, 0);
  for (const SiteId s : table->sites) ++table->site_offsets[s + 1];
  for (std::size_t i = 0; i < num_sites; ++i) {
    table->site_offsets[i + 1] += table->site_offsets[i];
  }
  table->site_pages.resize(n);
  {
    std::vector<std::uint64_t> cursor(table->site_offsets.begin(),
                                      table->site_offsets.end() - 1);
    for (PageId p = 0; p < n; ++p) {
      table->site_pages[cursor[table->sites[p]]++] = p;
    }
  }

  table->url_index.reserve(n);
  for (PageId p = 0; p < n; ++p) table->url_index.emplace(table->urls[p], p);
  return table;
}

std::size_t WebGraph::count_intra_site_links() const noexcept {
  std::size_t intra = 0;
  for (PageId u = 0; u < num_pages(); ++u) {
    const SiteId s = table_->sites[u];
    for (const PageId v : out_links(u)) {
      if (table_->sites[v] == s) ++intra;
    }
  }
  return intra;
}

}  // namespace p2prank::graph
