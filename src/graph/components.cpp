#include "graph/components.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace p2prank::graph {

std::vector<std::uint32_t> SccResult::component_sizes() const {
  std::vector<std::uint32_t> sizes(count, 0);
  for (const auto c : component) ++sizes[c];
  return sizes;
}

SccResult strongly_connected_components(const WebGraph& g) {
  const auto n = static_cast<std::uint32_t>(g.num_pages());
  constexpr std::uint32_t kUnvisited = std::numeric_limits<std::uint32_t>::max();

  SccResult result;
  result.component.assign(n, kUnvisited);

  std::vector<std::uint32_t> index(n, kUnvisited);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<PageId> stack;
  std::uint32_t next_index = 0;

  // Explicit DFS frame: node + position within its out-link list.
  struct Frame {
    PageId node;
    std::uint32_t edge;
  };
  std::vector<Frame> dfs;

  for (PageId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    dfs.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!dfs.empty()) {
      auto& frame = dfs.back();
      const auto out = g.out_links(frame.node);
      if (frame.edge < out.size()) {
        const PageId next = out[frame.edge++];
        if (index[next] == kUnvisited) {
          index[next] = lowlink[next] = next_index++;
          stack.push_back(next);
          on_stack[next] = true;
          dfs.push_back({next, 0});
        } else if (on_stack[next]) {
          lowlink[frame.node] = std::min(lowlink[frame.node], index[next]);
        }
      } else {
        const PageId done = frame.node;
        dfs.pop_back();
        if (!dfs.empty()) {
          lowlink[dfs.back().node] = std::min(lowlink[dfs.back().node], lowlink[done]);
        }
        if (lowlink[done] == index[done]) {
          // done is the root of an SCC: pop members.
          while (true) {
            const PageId member = stack.back();
            stack.pop_back();
            on_stack[member] = false;
            result.component[member] = result.count;
            if (member == done) break;
          }
          ++result.count;
        }
      }
    }
  }
  assert(stack.empty());
  return result;
}

std::vector<std::vector<PageId>> find_rank_sinks(const WebGraph& g,
                                                 bool include_dangling) {
  const auto scc = strongly_connected_components(g);

  // A component is a sink unless some member has an edge out of the
  // component or an external link.
  std::vector<bool> is_sink(scc.count, true);
  for (PageId u = 0; u < g.num_pages(); ++u) {
    const auto cu = scc.component[u];
    if (g.external_out_degree(u) > 0) is_sink[cu] = false;
    for (const PageId v : g.out_links(u)) {
      if (scc.component[v] != cu) is_sink[cu] = false;
    }
  }

  std::vector<std::vector<PageId>> sinks(scc.count);
  for (PageId p = 0; p < g.num_pages(); ++p) {
    if (is_sink[scc.component[p]]) sinks[scc.component[p]].push_back(p);
  }
  std::vector<std::vector<PageId>> out;
  for (auto& members : sinks) {
    if (members.empty()) continue;
    if (!include_dangling && members.size() == 1) {
      // A singleton is a true sink only if it keeps its rank via a
      // self-loop; otherwise it is a dangling page (a different pathology).
      const PageId p = members[0];
      const auto links = g.out_links(p);
      const bool self_loop = std::find(links.begin(), links.end(), p) != links.end();
      if (!self_loop) continue;
    }
    out.push_back(std::move(members));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.size() > b.size(); });
  return out;
}

}  // namespace p2prank::graph
