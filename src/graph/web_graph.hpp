// Immutable web link graph in compressed sparse row (CSR) form.
//
// This is the substrate every ranking algorithm iterates over, so the layout
// is optimized for the SpMV-style sweep in rank/: contiguous out-link and
// in-link arrays indexed by prefix-sum offsets. Beyond plain adjacency, the
// graph carries two pieces of web-specific bookkeeping the paper's model
// needs:
//
//  * the *site* of every page — partitioning at site granularity
//    (Section 4.1) and intra-site link statistics depend on it;
//  * the *external out-degree* of every page — links that point at pages
//    outside the crawled collection. In the open-system model (Section 3)
//    the rank carried by such links leaves the system entirely; the paper's
//    dataset has 8M of its 15M links external, which is why average rank
//    converges to ~0.3 rather than 1.0 (Fig. 7).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace p2prank::graph {

using PageId = std::uint32_t;
using SiteId = std::uint32_t;

inline constexpr PageId kInvalidPage = static_cast<PageId>(-1);
inline constexpr SiteId kInvalidSite = static_cast<SiteId>(-1);

class GraphBuilder;

class WebGraph {
 public:
  WebGraph() = default;

  // Move-only: url_index_ stores views into urls_' heap buffers, which
  // moving preserves but copying would leave dangling.
  WebGraph(const WebGraph&) = delete;
  WebGraph& operator=(const WebGraph&) = delete;
  WebGraph(WebGraph&&) = default;
  WebGraph& operator=(WebGraph&&) = default;

  [[nodiscard]] std::size_t num_pages() const noexcept { return sites_.size(); }
  [[nodiscard]] std::size_t num_sites() const noexcept { return site_names_.size(); }

  /// Internal links only (both endpoints crawled).
  [[nodiscard]] std::size_t num_links() const noexcept { return out_targets_.size(); }

  /// Links whose target lies outside the crawled collection.
  [[nodiscard]] std::size_t num_external_links() const noexcept {
    return total_external_;
  }

  /// Crawled targets of page u's out-links.
  [[nodiscard]] std::span<const PageId> out_links(PageId u) const noexcept {
    return {out_targets_.data() + out_offsets_[u],
            out_targets_.data() + out_offsets_[u + 1]};
  }

  /// Crawled sources of links into page v.
  [[nodiscard]] std::span<const PageId> in_links(PageId v) const noexcept {
    return {in_sources_.data() + in_offsets_[v],
            in_sources_.data() + in_offsets_[v + 1]};
  }

  /// Number of out-links with an uncrawled target.
  [[nodiscard]] std::uint32_t external_out_degree(PageId u) const noexcept {
    return external_out_[u];
  }

  /// Total out-degree d(u): crawled + uncrawled targets. This is the d(u)
  /// of formula 2.1/3.1 — rank divides over *all* outgoing links.
  [[nodiscard]] std::uint32_t out_degree(PageId u) const noexcept {
    return static_cast<std::uint32_t>(out_offsets_[u + 1] - out_offsets_[u]) +
           external_out_[u];
  }

  [[nodiscard]] std::uint32_t in_degree(PageId v) const noexcept {
    return static_cast<std::uint32_t>(in_offsets_[v + 1] - in_offsets_[v]);
  }

  /// True when the page has no outgoing links at all (a "dangling" page).
  [[nodiscard]] bool is_dangling(PageId u) const noexcept { return out_degree(u) == 0; }

  [[nodiscard]] SiteId site(PageId u) const noexcept { return sites_[u]; }
  [[nodiscard]] const std::string& url(PageId u) const { return urls_[u]; }
  [[nodiscard]] const std::string& site_name(SiteId s) const { return site_names_[s]; }

  /// Pages belonging to a site (ascending PageId order).
  [[nodiscard]] std::span<const PageId> pages_of_site(SiteId s) const noexcept {
    return {site_pages_.data() + site_offsets_[s],
            site_pages_.data() + site_offsets_[s + 1]};
  }

  /// Look up a page by its (normalized) URL.
  [[nodiscard]] std::optional<PageId> find(std::string_view url) const;

  /// Number of internal links whose endpoints share a site.
  [[nodiscard]] std::size_t count_intra_site_links() const noexcept;

 private:
  friend class GraphBuilder;

  std::vector<std::uint64_t> out_offsets_;  // size n+1
  std::vector<PageId> out_targets_;
  std::vector<std::uint64_t> in_offsets_;  // size n+1
  std::vector<PageId> in_sources_;
  std::vector<std::uint32_t> external_out_;
  std::vector<SiteId> sites_;
  std::vector<std::string> urls_;
  std::vector<std::string> site_names_;
  std::vector<std::uint64_t> site_offsets_;  // size num_sites+1
  std::vector<PageId> site_pages_;
  std::unordered_map<std::string_view, PageId> url_index_;  // views into urls_
  std::size_t total_external_ = 0;
};

}  // namespace p2prank::graph
