// Immutable web link graph in compressed sparse row (CSR) form.
//
// This is the substrate every ranking algorithm iterates over, so the layout
// is optimized for the SpMV-style sweep in rank/: contiguous out-link and
// in-link arrays indexed by prefix-sum offsets. Beyond plain adjacency, the
// graph carries two pieces of web-specific bookkeeping the paper's model
// needs:
//
//  * the *site* of every page — partitioning at site granularity
//    (Section 4.1) and intra-site link statistics depend on it;
//  * the *external out-degree* of every page — links that point at pages
//    outside the crawled collection. In the open-system model (Section 3)
//    the rank carried by such links leaves the system entirely; the paper's
//    dataset has 8M of its 15M links external, which is why average rank
//    converges to ~0.3 rather than 1.0 (Fig. 7).
//
// Canonical form: every constructed WebGraph stores each out-link row in
// ascending target order (duplicates adjacent), and the in-link rows —
// derived from the sorted out rows — in ascending source order. Two graphs
// with the same link multiset therefore have bitwise-identical CSR arrays
// no matter how they were built (GraphBuilder, StreamingGraphBuilder, the
// incremental splice of apply_updates, or the binary loader), which is what
// lets the incremental update path promise bitwise-identical rank vectors
// (DESIGN.md §14).
//
// The page-identity state (URLs, sites, the site→pages CSR, the URL index)
// lives in an immutable PageTable shared via shared_ptr: an incremental
// update that only changes links produces a new WebGraph that *shares* the
// table with its predecessor instead of copying millions of URL strings.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace p2prank::graph {

using PageId = std::uint32_t;
using SiteId = std::uint32_t;

inline constexpr PageId kInvalidPage = static_cast<PageId>(-1);
inline constexpr SiteId kInvalidSite = static_cast<SiteId>(-1);

class GraphBuilder;
class StreamingGraphBuilder;
class GraphSplicer;
class GraphBinaryIo;

class WebGraph {
 public:
  WebGraph() = default;

  // Move-only: the url index stores views into the page table's string
  // storage, which sharing/moving preserves but memberwise copying of a
  // rebuilt table would leave dangling. Link-only update paths share the
  // table instead of copying (see GraphSplicer).
  WebGraph(const WebGraph&) = delete;
  WebGraph& operator=(const WebGraph&) = delete;
  WebGraph(WebGraph&&) = default;
  WebGraph& operator=(WebGraph&&) = default;

  [[nodiscard]] std::size_t num_pages() const noexcept {
    return table_ ? table_->sites.size() : 0;
  }
  [[nodiscard]] std::size_t num_sites() const noexcept {
    return table_ ? table_->site_names.size() : 0;
  }

  /// Internal links only (both endpoints crawled).
  [[nodiscard]] std::size_t num_links() const noexcept { return out_targets_.size(); }

  /// Links whose target lies outside the crawled collection.
  [[nodiscard]] std::size_t num_external_links() const noexcept {
    return total_external_;
  }

  /// Crawled targets of page u's out-links (ascending, duplicates adjacent).
  /// Empty for any u on a default-constructed graph.
  [[nodiscard]] std::span<const PageId> out_links(PageId u) const noexcept {
    if (u + std::size_t{1} >= out_offsets_.size()) return {};
    return {out_targets_.data() + out_offsets_[u],
            out_targets_.data() + out_offsets_[u + 1]};
  }

  /// Crawled sources of links into page v (ascending, duplicates adjacent).
  /// Empty for any v on a default-constructed graph.
  [[nodiscard]] std::span<const PageId> in_links(PageId v) const noexcept {
    if (v + std::size_t{1} >= in_offsets_.size()) return {};
    return {in_sources_.data() + in_offsets_[v],
            in_sources_.data() + in_offsets_[v + 1]};
  }

  /// Number of out-links with an uncrawled target.
  [[nodiscard]] std::uint32_t external_out_degree(PageId u) const noexcept {
    return u < external_out_.size() ? external_out_[u] : 0;
  }

  /// Total out-degree d(u): crawled + uncrawled targets. This is the d(u)
  /// of formula 2.1/3.1 — rank divides over *all* outgoing links.
  [[nodiscard]] std::uint32_t out_degree(PageId u) const noexcept {
    return static_cast<std::uint32_t>(out_links(u).size()) + external_out_degree(u);
  }

  [[nodiscard]] std::uint32_t in_degree(PageId v) const noexcept {
    return static_cast<std::uint32_t>(in_links(v).size());
  }

  /// True when the page has no outgoing links at all (a "dangling" page).
  [[nodiscard]] bool is_dangling(PageId u) const noexcept { return out_degree(u) == 0; }

  [[nodiscard]] SiteId site(PageId u) const noexcept { return table_->sites[u]; }
  [[nodiscard]] const std::string& url(PageId u) const { return table_->urls[u]; }
  [[nodiscard]] const std::string& site_name(SiteId s) const {
    return table_->site_names[s];
  }

  /// Pages belonging to a site (ascending PageId order). Empty for any s on
  /// a default-constructed graph.
  [[nodiscard]] std::span<const PageId> pages_of_site(SiteId s) const noexcept {
    if (table_ == nullptr || s + std::size_t{1} >= table_->site_offsets.size()) {
      return {};
    }
    return {table_->site_pages.data() + table_->site_offsets[s],
            table_->site_pages.data() + table_->site_offsets[s + 1]};
  }

  /// Look up a page by its (normalized) URL.
  [[nodiscard]] std::optional<PageId> find(std::string_view url) const;

  /// Number of internal links whose endpoints share a site.
  [[nodiscard]] std::size_t count_intra_site_links() const noexcept;

 private:
  friend class GraphBuilder;
  friend class StreamingGraphBuilder;
  friend class GraphSplicer;
  friend class GraphBinaryIo;

  /// Page-identity state, immutable once built and shared across link-only
  /// graph updates. url_index keys are views into urls' heap buffers, which
  /// stay put for the table's lifetime.
  struct PageTable {
    std::vector<std::string> urls;
    std::vector<std::string> site_names;
    std::vector<SiteId> sites;
    std::vector<std::uint64_t> site_offsets;  // size num_sites+1
    std::vector<PageId> site_pages;
    std::unordered_map<std::string_view, PageId> url_index;
  };

  /// Derive the site→pages CSR and URL index and freeze the identity state.
  /// Shared by every construction path (GraphBuilder, StreamingGraphBuilder,
  /// the binary loader).
  static std::shared_ptr<const PageTable> make_table(
      std::vector<std::string> urls, std::vector<std::string> site_names,
      std::vector<SiteId> sites);

  std::shared_ptr<const PageTable> table_;
  std::vector<std::uint64_t> out_offsets_;  // size n+1
  std::vector<PageId> out_targets_;
  std::vector<std::uint64_t> in_offsets_;  // size n+1
  std::vector<PageId> in_sources_;
  std::vector<std::uint32_t> external_out_;
  std::size_t total_external_ = 0;
};

}  // namespace p2prank::graph
