// Mutable accumulator that assembles an immutable WebGraph.
//
// Crawl data arrives as (url, outlinks...) records where link targets may or
// may not themselves be crawled, and may be crawled *later* in the stream.
// The builder therefore interns pages eagerly and defers link resolution to
// build(): a link whose target URL was never interned as a page becomes an
// *external* link (its rank will leak out of the open system).
//
// build() emits the canonical CSR form documented in web_graph.hpp: out-link
// rows sorted by target, in-link rows derived from them. For graphs too
// large to buffer every edge in links_, see StreamingGraphBuilder.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graph/web_graph.hpp"

namespace p2prank::graph {

class GraphBuilder {
 public:
  /// Intern a page by URL; the site is derived with site_of(). Returns the
  /// existing id if the URL was already interned (idempotent — crawlers
  /// revisit pages). Throws std::invalid_argument if the URL was previously
  /// interned under a *different* site: the two records describe
  /// irreconcilable page identities and silently keeping either one would
  /// corrupt site-granularity partitioning.
  PageId add_page(std::string_view url);

  /// Intern a page with an explicit site label (synthetic generators).
  PageId add_page(std::string_view url, std::string_view site);

  /// Link between two already-interned pages.
  void add_link(PageId from, PageId to);

  /// Link from an interned page to a URL that may or may not (yet) be a
  /// page. Resolution happens at build().
  void add_link_to_url(PageId from, std::string_view to_url);

  /// Link to a target known to be uncrawled; only the count is kept.
  /// Throws std::overflow_error if the page's external tally would exceed
  /// the uint32 range (mirrors intern()'s PageId-exhaustion guard).
  void add_external_link(PageId from, std::uint32_t count = 1);

  /// Id of an already-interned URL, if any. Lets loaders distinguish "page
  /// already declared" from "new page" without triggering intern()'s
  /// conflict check.
  [[nodiscard]] std::optional<PageId> find(std::string_view url) const;

  [[nodiscard]] std::size_t num_pages() const noexcept { return urls_.size(); }

  /// Consume the builder and produce the CSR graph. When `dedup_links` is
  /// true, duplicate (from, to) internal links collapse to one edge.
  [[nodiscard]] WebGraph build(bool dedup_links = false) &&;

 private:
  PageId intern(std::string_view url, std::string_view site);
  SiteId intern_site(std::string_view site);

  std::vector<std::string> urls_;
  std::vector<SiteId> page_sites_;
  std::vector<std::string> site_names_;
  std::unordered_map<std::string, PageId> url_to_page_;
  std::unordered_map<std::string, SiteId> site_to_id_;
  std::vector<std::pair<PageId, PageId>> links_;
  std::vector<std::pair<PageId, std::string>> unresolved_links_;
  std::vector<std::uint32_t> external_out_;
};

}  // namespace p2prank::graph
