// Link-graph mutation: rebuild a crawl with links/pages added or removed.
//
// The paper's convergence proofs assume a static link graph, but Section 4.3
// is explicit that real crawls churn ("we believe the two algorithms DO
// converge without these constrains") — crawlers revisit pages, links
// appear and disappear. WebGraph is immutable (the ranking kernels depend
// on its frozen CSR layout), so updates produce a *new* graph:
//
//   * existing pages keep their PageIds (updates never reorder pages);
//   * new pages append at the end;
//   * page removal is intentionally unsupported — a crawler that drops a
//     page keeps its URL slot and the page simply loses its links, which is
//     exactly apply_updates with kRemoveLink/kRemoveExternal.
//
// The engine picks up a rebuilt graph via DistributedRanking::warm_start
// (engine/distributed.hpp), which carries the rank state across the swap.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/web_graph.hpp"

namespace p2prank::graph {

struct LinkUpdate {
  enum class Kind {
    kAddPage,         ///< url (+ site via site_of); no-op if it exists
    kAddLink,         ///< from_url -> to_url (both must be pages)
    kRemoveLink,      ///< remove one instance of from_url -> to_url
    kAddExternal,     ///< one more uncrawled-target link from from_url
    kRemoveExternal,  ///< one fewer
  };

  Kind kind = Kind::kAddLink;
  std::string from_url;  ///< the page URL for kAddPage
  std::string to_url;    ///< unused for kAddPage/k*External

  [[nodiscard]] static LinkUpdate add_page(std::string url);
  [[nodiscard]] static LinkUpdate add_link(std::string from, std::string to);
  [[nodiscard]] static LinkUpdate remove_link(std::string from, std::string to);
  [[nodiscard]] static LinkUpdate add_external(std::string from);
  [[nodiscard]] static LinkUpdate remove_external(std::string from);
};

/// Apply updates in order and rebuild. Throws std::invalid_argument when an
/// update references a missing page or removes a link that is not there.
[[nodiscard]] WebGraph apply_updates(const WebGraph& g,
                                     std::span<const LinkUpdate> updates);

}  // namespace p2prank::graph
