// Link-graph mutation: produce a new crawl with links/pages added or removed.
//
// The paper's convergence proofs assume a static link graph, but Section 4.3
// is explicit that real crawls churn ("we believe the two algorithms DO
// converge without these constrains") — crawlers revisit pages, links
// appear and disappear. WebGraph is immutable (the ranking kernels depend
// on its frozen CSR layout), so updates produce a *new* graph:
//
//   * existing pages keep their PageIds (updates never reorder pages);
//   * new pages append at the end;
//   * page removal is intentionally unsupported — a crawler that drops a
//     page keeps its URL slot and the page simply loses its links, which is
//     exactly apply_updates with kRemoveLink/kRemoveExternal.
//
// Updates are compiled into a sorted edge delta and *spliced* against the
// existing CSR: untouched rows copy verbatim, touched rows merge with the
// delta, and — when no pages are added — the page table is shared with the
// old graph, so a small delta on a huge graph costs O(E) array copies with
// no string or index work at all (DESIGN.md §14). A link-only delta also
// reports exactly which rows changed, which is what the engine's
// incremental warm start (DistributedRanking::warm_start_incremental) needs
// to re-seed only the affected worklist frontier.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/web_graph.hpp"

namespace p2prank::graph {

struct LinkUpdate {
  enum class Kind {
    kAddPage,         ///< url (+ site via site_of); no-op if it exists
    kAddLink,         ///< from_url -> to_url (both must be pages)
    kRemoveLink,      ///< remove one instance of from_url -> to_url
    kAddExternal,     ///< one more uncrawled-target link from from_url
    kRemoveExternal,  ///< one fewer
  };

  Kind kind = Kind::kAddLink;
  std::string from_url;  ///< the page URL for kAddPage
  std::string to_url;    ///< unused for kAddPage/k*External

  [[nodiscard]] static LinkUpdate add_page(std::string url);
  [[nodiscard]] static LinkUpdate add_link(std::string from, std::string to);
  [[nodiscard]] static LinkUpdate remove_link(std::string from, std::string to);
  [[nodiscard]] static LinkUpdate add_external(std::string from);
  [[nodiscard]] static LinkUpdate remove_external(std::string from);
};

struct GraphUpdateResult {
  WebGraph graph;

  /// True when the update batch added no pages: the new graph shares the old
  /// one's page table and the changed-row lists below are exact, so the
  /// engine may warm-start incrementally instead of cold-rebuilding.
  bool incremental = false;

  /// Pages whose in-neighborhood changed (some in-link was added, removed,
  /// or re-weighted). Sorted ascending, deduplicated.
  std::vector<PageId> in_changed;

  /// Pages whose total out-degree d(u) changed — their 1/d(u) link weight,
  /// and hence their contribution to every target, is different in the new
  /// graph. Sorted ascending, deduplicated.
  std::vector<PageId> degree_changed;
};

/// Apply updates in order and splice the resulting delta against g's CSR.
/// Throws std::invalid_argument when an update references a missing page or
/// removes a link that is not there (checked sequentially, so a link added
/// earlier in the batch may be removed later).
[[nodiscard]] GraphUpdateResult apply_updates_delta(
    const WebGraph& g, std::span<const LinkUpdate> updates);

/// Convenience wrapper around apply_updates_delta for callers that only
/// want the new graph.
[[nodiscard]] WebGraph apply_updates(const WebGraph& g,
                                     std::span<const LinkUpdate> updates);

/// Reference implementation: re-materializes the full link multiset in a
/// std::map and rebuilds from scratch, O(E log E). Kept as the oracle the
/// splice path is property-tested against — not for production use.
[[nodiscard]] WebGraph apply_updates_rebuild(const WebGraph& g,
                                             std::span<const LinkUpdate> updates);

}  // namespace p2prank::graph
