// Chunked two-pass graph construction for webs too large to buffer every
// edge in a GraphBuilder links_ vector.
//
// GraphBuilder keeps one (from, to) pair per link — 8 bytes each, tripled by
// the CSR arrays during build() — which caps practical graph size well below
// the 1M–10M pages the scale bench targets. StreamingGraphBuilder instead
// interns pages up front and then makes two passes over a *replayable* edge
// source: pass 1 counts per-source degrees (sizing the CSR exactly), pass 2
// scatters targets straight into the preallocated arrays. Peak transient
// memory is one chunk of edges, whatever size the source chooses.
//
// The result is the canonical WebGraph form (web_graph.hpp): after the
// scatter each out-row is sorted in place, and the in-CSR is derived from
// the sorted out-rows, so a StreamingGraphBuilder and a GraphBuilder fed the
// same pages and edge multiset produce bitwise-identical CSR arrays — a
// property the synthetic-web generator's tests lock.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graph/web_graph.hpp"

namespace p2prank::graph {

class StreamingGraphBuilder {
 public:
  struct Edge {
    PageId from;
    PageId to;
  };

  /// Receives one chunk of edges; invoked by the EdgeSource.
  using ChunkSink = std::function<void(std::span<const Edge>)>;

  /// Produces the edge stream by calling the sink once per chunk. Invoked
  /// twice by build_from_stream (count pass, then scatter pass); each
  /// invocation must deliver the same edge *multiset* — chunk boundaries
  /// and ordering are free to differ.
  using EdgeSource = std::function<void(const ChunkSink&)>;

  /// Intern a page with an explicit site label. Same identity semantics as
  /// GraphBuilder::add_page: idempotent on exact re-add, throws
  /// std::invalid_argument on a conflicting site.
  PageId add_page(std::string_view url, std::string_view site);

  /// Accumulate uncrawled out-links; throws std::overflow_error past the
  /// uint32 tally range. May also be called from inside the EdgeSource (on
  /// one replay only!) — the builder consumes the tallies after the final
  /// replay, so externals can arrive interleaved with the edge stream.
  void add_external_links(PageId from, std::uint32_t count);

  [[nodiscard]] std::optional<PageId> find(std::string_view url) const;
  [[nodiscard]] std::size_t num_pages() const noexcept { return urls_.size(); }

  /// Consume the builder and build the canonical CSR graph from two replays
  /// of `source`. Throws std::out_of_range on an edge endpoint that was
  /// never interned and std::logic_error if the two replays disagree on the
  /// edge count of any source page.
  [[nodiscard]] WebGraph build_from_stream(const EdgeSource& source) &&;

 private:
  std::vector<std::string> urls_;
  std::vector<SiteId> page_sites_;
  std::vector<std::string> site_names_;
  std::unordered_map<std::string, PageId> url_to_page_;
  std::unordered_map<std::string, SiteId> site_to_id_;
  std::vector<std::uint32_t> external_out_;
};

}  // namespace p2prank::graph
