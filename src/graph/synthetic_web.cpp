#include "graph/synthetic_web.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/graph_builder.hpp"
#include "graph/streaming_builder.hpp"
#include "util/rng.hpp"

namespace p2prank::graph {

namespace {

void validate(const SyntheticWebConfig& cfg) {
  if (cfg.num_sites == 0) throw std::invalid_argument("synthetic web: num_sites == 0");
  if (cfg.target_pages == 0) throw std::invalid_argument("synthetic web: target_pages == 0");
  if (!(cfg.crawl_fraction > 0.0 && cfg.crawl_fraction <= 1.0)) {
    throw std::invalid_argument("synthetic web: crawl_fraction out of (0,1]");
  }
  if (!(cfg.intra_site_fraction >= 0.0 && cfg.intra_site_fraction <= 1.0)) {
    throw std::invalid_argument("synthetic web: intra_site_fraction out of [0,1]");
  }
  if (cfg.mean_out_degree < 0.0) {
    throw std::invalid_argument("synthetic web: negative mean_out_degree");
  }
  if (cfg.site_size_exponent <= 1.0 || cfg.popularity_exponent <= 1.0) {
    throw std::invalid_argument("synthetic web: power-law exponents must exceed 1");
  }
  if (!(cfg.dangling_fraction >= 0.0 && cfg.dangling_fraction < 1.0)) {
    throw std::invalid_argument("synthetic web: dangling_fraction out of [0,1)");
  }
}

std::string site_name_of(std::uint32_t s) {
  return "site" + std::to_string(s) + ".edu";
}

std::string url_of(const std::string& site_name, std::uint32_t j) {
  return site_name + "/page" + std::to_string(j) + ".html";
}

// --- Site universes -------------------------------------------------------
// Sample relative site sizes from a power law, then scale so that the
// crawled total lands near target_pages. Consumes cfg.num_sites draws from
// `rng`; the streamed path replays this to restore the RNG stream position
// before re-emitting links.
std::vector<std::uint32_t> draw_site_sizes(const SyntheticWebConfig& cfg,
                                           util::Rng& rng) {
  const std::uint32_t sites = cfg.num_sites;
  std::vector<double> raw_sizes(sites);
  double raw_total = 0.0;
  for (auto& s : raw_sizes) {
    s = static_cast<double>(rng.power_law(cfg.site_size_exponent, 1000));
    raw_total += s;
  }
  std::vector<std::uint32_t> crawled_size(sites);  // crawled pages per site
  for (std::uint32_t s = 0; s < sites; ++s) {
    const double share = raw_sizes[s] / raw_total;
    auto csize = static_cast<std::uint32_t>(
        std::lround(share * static_cast<double>(cfg.target_pages)));
    crawled_size[s] = std::max<std::uint32_t>(csize, 1);
  }
  return crawled_size;
}

constexpr double kDegExponent = 2.5;
constexpr std::uint64_t kDegCap = 400;

// Empirical mean of the degree sampler, estimated once for normalization.
double degree_scale(const SyntheticWebConfig& cfg) {
  if (cfg.mean_out_degree <= 0.0) return 0.0;
  util::Rng probe(cfg.seed ^ 0x5bd1e995u);
  constexpr int kProbes = 20000;
  double sampler_mean = 0.0;
  for (int i = 0; i < kProbes; ++i) {
    sampler_mean += static_cast<double>(probe.power_law(kDegExponent, kDegCap));
  }
  sampler_mean /= kProbes;
  return cfg.mean_out_degree / sampler_mean;
}

// --- Links ----------------------------------------------------------------
// For every crawled page draw an out-degree (power-law tail rescaled to
// the requested mean), then draw each target in three steps:
//   1. site: same site w.p. intra_site_fraction, else a uniformly random
//      other site;
//   2. crawled?: w.p. crawl_fraction the target was crawled — deciding
//      this per *link* (rather than sampling a fixed uncrawled universe)
//      pins the internal-link fraction to crawl_fraction with binomial
//      concentration even at small scales;
//   3. which page: power-law skew toward low crawled indices (popular
//      pages), producing the heavy in-degree tail of the real web.
// Uncrawled targets become external links. `rng` continues the stream that
// draw_site_sizes started; the PageId of crawled index (s, j) is
// page_prefix[s] + j because both builders intern pages in that order.
template <typename LinkFn, typename ExtFn>
void emit_links(const SyntheticWebConfig& cfg,
                const std::vector<std::uint32_t>& crawled_size,
                const std::vector<PageId>& page_prefix, double deg_scale,
                util::Rng& rng, const LinkFn& link, const ExtFn& external) {
  const std::uint32_t sites = cfg.num_sites;
  for (std::uint32_t s = 0; s < sites; ++s) {
    for (std::uint32_t j = 0; j < crawled_size[s]; ++j) {
      const PageId from = page_prefix[s] + j;
      if (cfg.dangling_fraction > 0.0 && rng.chance(cfg.dangling_fraction)) {
        continue;  // dangling page: no out-links at all
      }
      if (cfg.mean_out_degree <= 0.0) continue;
      const double want =
          deg_scale * static_cast<double>(rng.power_law(kDegExponent, kDegCap));
      const auto degree = static_cast<std::uint32_t>(std::max(1.0, std::round(want)));

      for (std::uint32_t k = 0; k < degree; ++k) {
        if (!rng.chance(cfg.crawl_fraction)) {
          external(from);
          continue;
        }
        std::uint32_t target_site = s;
        if (sites > 1 && !rng.chance(cfg.intra_site_fraction)) {
          // Uniform over the other sites.
          target_site = static_cast<std::uint32_t>(rng.below(sites - 1));
          if (target_site >= s) ++target_site;
        }
        const std::uint32_t csize = crawled_size[target_site];
        const auto target_idx = static_cast<std::uint32_t>(
            rng.power_law(cfg.popularity_exponent, csize) - 1);
        link(from, page_prefix[target_site] + target_idx);
      }
    }
  }
}

std::vector<PageId> prefix_of(const std::vector<std::uint32_t>& crawled_size) {
  std::vector<PageId> prefix(crawled_size.size());
  PageId next = 0;
  for (std::size_t s = 0; s < crawled_size.size(); ++s) {
    prefix[s] = next;
    next += crawled_size[s];
  }
  return prefix;
}

}  // namespace

SyntheticWebConfig google2002_config(std::uint32_t pages, std::uint64_t seed) {
  SyntheticWebConfig cfg;
  cfg.seed = seed;
  cfg.num_sites = 100;           // 100 .edu sites
  cfg.target_pages = pages;      // paper: ~1M; scaled for bench runtime
  cfg.crawl_fraction = 0.47;     // => ~7/15 of links land on crawled pages
  cfg.intra_site_fraction = 0.90;
  cfg.mean_out_degree = 15.0;    // 15M links / 1M pages
  return cfg;
}

WebGraph generate_synthetic_web(const SyntheticWebConfig& cfg) {
  validate(cfg);
  util::Rng rng(cfg.seed);
  const auto crawled_size = draw_site_sizes(cfg, rng);
  const auto page_prefix = prefix_of(crawled_size);
  const std::uint32_t sites = cfg.num_sites;

  GraphBuilder builder;
  for (std::uint32_t s = 0; s < sites; ++s) {
    const std::string site_name = site_name_of(s);
    for (std::uint32_t j = 0; j < crawled_size[s]; ++j) {
      const PageId id = builder.add_page(url_of(site_name, j), site_name);
      assert(id == page_prefix[s] + j);
      (void)id;
    }
  }

  const double deg_scale = degree_scale(cfg);
  emit_links(
      cfg, crawled_size, page_prefix, deg_scale, rng,
      [&](PageId from, PageId to) { builder.add_link(from, to); },
      [&](PageId from) { builder.add_external_link(from); });

  return std::move(builder).build();
}

WebGraph generate_synthetic_web_streamed(const SyntheticWebConfig& cfg) {
  validate(cfg);
  util::Rng size_rng(cfg.seed);
  const auto crawled_size = draw_site_sizes(cfg, size_rng);
  const auto page_prefix = prefix_of(crawled_size);
  const std::uint32_t sites = cfg.num_sites;

  StreamingGraphBuilder builder;
  for (std::uint32_t s = 0; s < sites; ++s) {
    const std::string site_name = site_name_of(s);
    for (std::uint32_t j = 0; j < crawled_size[s]; ++j) {
      builder.add_page(url_of(site_name, j), site_name);
    }
  }

  const double deg_scale = degree_scale(cfg);
  constexpr std::size_t kChunk = 1 << 16;
  int replay = 0;
  auto source = [&](const StreamingGraphBuilder::ChunkSink& sink) {
    // Each replay re-seeds and re-draws the site sizes so the link stream
    // picks up at the same RNG position as the buffered generator.
    util::Rng rng(cfg.seed);
    (void)draw_site_sizes(cfg, rng);
    const bool tally_externals = replay++ == 0;
    std::vector<StreamingGraphBuilder::Edge> chunk;
    chunk.reserve(kChunk);
    emit_links(
        cfg, crawled_size, page_prefix, deg_scale, rng,
        [&](PageId from, PageId to) {
          chunk.push_back({from, to});
          if (chunk.size() == kChunk) {
            sink(chunk);
            chunk.clear();
          }
        },
        [&](PageId from) {
          // External tallies accumulate during the first replay only (the
          // builder accepts them mid-stream; see add_external_links).
          if (tally_externals) builder.add_external_links(from, 1);
        });
    if (!chunk.empty()) sink(chunk);
  };
  return std::move(builder).build_from_stream(source);
}

}  // namespace p2prank::graph
