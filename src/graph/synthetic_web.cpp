#include "graph/synthetic_web.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "graph/graph_builder.hpp"
#include "util/rng.hpp"

namespace p2prank::graph {

namespace {

void validate(const SyntheticWebConfig& cfg) {
  if (cfg.num_sites == 0) throw std::invalid_argument("synthetic web: num_sites == 0");
  if (cfg.target_pages == 0) throw std::invalid_argument("synthetic web: target_pages == 0");
  if (!(cfg.crawl_fraction > 0.0 && cfg.crawl_fraction <= 1.0)) {
    throw std::invalid_argument("synthetic web: crawl_fraction out of (0,1]");
  }
  if (!(cfg.intra_site_fraction >= 0.0 && cfg.intra_site_fraction <= 1.0)) {
    throw std::invalid_argument("synthetic web: intra_site_fraction out of [0,1]");
  }
  if (cfg.mean_out_degree < 0.0) {
    throw std::invalid_argument("synthetic web: negative mean_out_degree");
  }
  if (cfg.site_size_exponent <= 1.0 || cfg.popularity_exponent <= 1.0) {
    throw std::invalid_argument("synthetic web: power-law exponents must exceed 1");
  }
  if (!(cfg.dangling_fraction >= 0.0 && cfg.dangling_fraction < 1.0)) {
    throw std::invalid_argument("synthetic web: dangling_fraction out of [0,1)");
  }
}

}  // namespace

SyntheticWebConfig google2002_config(std::uint32_t pages, std::uint64_t seed) {
  SyntheticWebConfig cfg;
  cfg.seed = seed;
  cfg.num_sites = 100;           // 100 .edu sites
  cfg.target_pages = pages;      // paper: ~1M; scaled for bench runtime
  cfg.crawl_fraction = 0.47;     // => ~7/15 of links land on crawled pages
  cfg.intra_site_fraction = 0.90;
  cfg.mean_out_degree = 15.0;    // 15M links / 1M pages
  return cfg;
}

WebGraph generate_synthetic_web(const SyntheticWebConfig& cfg) {
  validate(cfg);
  util::Rng rng(cfg.seed);

  // --- Site universes -----------------------------------------------------
  // Sample relative site sizes from a power law, then scale so that the
  // crawled total lands near target_pages.
  const std::uint32_t sites = cfg.num_sites;
  std::vector<double> raw_sizes(sites);
  double raw_total = 0.0;
  for (auto& s : raw_sizes) {
    s = static_cast<double>(rng.power_law(cfg.site_size_exponent, 1000));
    raw_total += s;
  }
  std::vector<std::uint32_t> crawled_size(sites);  // crawled pages per site
  for (std::uint32_t s = 0; s < sites; ++s) {
    const double share = raw_sizes[s] / raw_total;
    auto csize = static_cast<std::uint32_t>(
        std::lround(share * static_cast<double>(cfg.target_pages)));
    crawled_size[s] = std::max<std::uint32_t>(csize, 1);
  }

  // --- Intern crawled pages -------------------------------------------------
  GraphBuilder builder;
  std::vector<std::vector<PageId>> page_of(sites);  // crawled index -> PageId
  for (std::uint32_t s = 0; s < sites; ++s) {
    const std::string site_name = "site" + std::to_string(s) + ".edu";
    page_of[s].reserve(crawled_size[s]);
    for (std::uint32_t j = 0; j < crawled_size[s]; ++j) {
      const std::string url = site_name + "/page" + std::to_string(j) + ".html";
      page_of[s].push_back(builder.add_page(url, site_name));
    }
  }

  // --- Links ----------------------------------------------------------------
  // For every crawled page draw an out-degree (power-law tail rescaled to
  // the requested mean), then draw each target in three steps:
  //   1. site: same site w.p. intra_site_fraction, else a uniformly random
  //      other site;
  //   2. crawled?: w.p. crawl_fraction the target was crawled — deciding
  //      this per *link* (rather than sampling a fixed uncrawled universe)
  //      pins the internal-link fraction to crawl_fraction with binomial
  //      concentration even at small scales;
  //   3. which page: power-law skew toward low crawled indices (popular
  //      pages), producing the heavy in-degree tail of the real web.
  // Uncrawled targets become external links.
  const double deg_exponent = 2.5;
  const std::uint64_t deg_cap = 400;
  // Empirical mean of the degree sampler, estimated once for normalization.
  double sampler_mean = 0.0;
  {
    util::Rng probe(cfg.seed ^ 0x5bd1e995u);
    constexpr int kProbes = 20000;
    for (int i = 0; i < kProbes; ++i) {
      sampler_mean += static_cast<double>(probe.power_law(deg_exponent, deg_cap));
    }
    sampler_mean /= kProbes;
  }
  const double deg_scale =
      cfg.mean_out_degree > 0.0 ? cfg.mean_out_degree / sampler_mean : 0.0;

  for (std::uint32_t s = 0; s < sites; ++s) {
    for (std::uint32_t j = 0; j < crawled_size[s]; ++j) {
      const PageId from = page_of[s][j];
      if (cfg.dangling_fraction > 0.0 && rng.chance(cfg.dangling_fraction)) {
        continue;  // dangling page: no out-links at all
      }
      if (cfg.mean_out_degree <= 0.0) continue;
      const double want =
          deg_scale * static_cast<double>(rng.power_law(deg_exponent, deg_cap));
      const auto degree = static_cast<std::uint32_t>(std::max(1.0, std::round(want)));

      for (std::uint32_t k = 0; k < degree; ++k) {
        if (!rng.chance(cfg.crawl_fraction)) {
          builder.add_external_link(from);
          continue;
        }
        std::uint32_t target_site = s;
        if (sites > 1 && !rng.chance(cfg.intra_site_fraction)) {
          // Uniform over the other sites.
          target_site = static_cast<std::uint32_t>(rng.below(sites - 1));
          if (target_site >= s) ++target_site;
        }
        const std::uint32_t csize = crawled_size[target_site];
        const auto target_idx = static_cast<std::uint32_t>(
            rng.power_law(cfg.popularity_exponent, csize) - 1);
        builder.add_link(from, page_of[target_site][target_idx]);
      }
    }
  }

  return std::move(builder).build();
}

}  // namespace p2prank::graph
