// Classic random-graph generators for robustness testing.
//
// The paper's claims (convergence of DPR1/DPR2, monotonicity, the
// centralized/distributed agreement) are graph-independent — the proofs
// only use ||A|| ≤ α < 1. The test suite exercises that by running the same
// property checks on families with very different structure from the
// synthetic crawl:
//   * Erdős–Rényi G(n, m): no locality, no degree skew — the partitioning
//     worst case;
//   * Barabási–Albert preferential attachment: extreme hubs, the in-degree
//     tail cranked to its limit.
// Both emit WebGraphs (with synthetic single-site URLs) so every module
// downstream of graph:: consumes them unchanged.
#pragma once

#include <cstdint>

#include "graph/web_graph.hpp"

namespace p2prank::graph {

/// G(n, m): m directed edges drawn uniformly (self-loops excluded,
/// parallel edges allowed — the crawl model allows them too).
[[nodiscard]] WebGraph erdos_renyi(std::uint32_t nodes, std::uint64_t edges,
                                   std::uint64_t seed);

/// Barabási–Albert: nodes arrive one at a time and attach `edges_per_node`
/// out-links to targets drawn proportionally to (in-degree + 1).
[[nodiscard]] WebGraph preferential_attachment(std::uint32_t nodes,
                                               std::uint32_t edges_per_node,
                                               std::uint64_t seed);

}  // namespace p2prank::graph
