#include "graph/streaming_builder.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

namespace p2prank::graph {

PageId StreamingGraphBuilder::add_page(std::string_view url,
                                       std::string_view site) {
  const auto it = url_to_page_.find(std::string(url));
  if (it != url_to_page_.end()) {
    if (site_names_[page_sites_[it->second]] != site) {
      throw std::invalid_argument(
          "StreamingGraphBuilder: page '" + std::string(url) +
          "' re-added with conflicting site '" + std::string(site) + "' (was '" +
          site_names_[page_sites_[it->second]] + "')");
    }
    return it->second;
  }
  if (urls_.size() >= static_cast<std::size_t>(kInvalidPage)) {
    throw std::length_error("StreamingGraphBuilder: page id space exhausted");
  }
  const auto id = static_cast<PageId>(urls_.size());
  urls_.emplace_back(url);
  const auto site_it = site_to_id_.find(std::string(site));
  if (site_it != site_to_id_.end()) {
    page_sites_.push_back(site_it->second);
  } else {
    const auto sid = static_cast<SiteId>(site_names_.size());
    site_names_.emplace_back(site);
    site_to_id_.emplace(site_names_.back(), sid);
    page_sites_.push_back(sid);
  }
  external_out_.push_back(0);
  url_to_page_.emplace(urls_.back(), id);
  return id;
}

void StreamingGraphBuilder::add_external_links(PageId from, std::uint32_t count) {
  if (from >= urls_.size()) {
    throw std::out_of_range("StreamingGraphBuilder: external link from unknown page");
  }
  if (count > std::numeric_limits<std::uint32_t>::max() - external_out_[from]) {
    throw std::overflow_error(
        "StreamingGraphBuilder: external out-degree overflow at '" + urls_[from] +
        "'");
  }
  external_out_[from] += count;
}

std::optional<PageId> StreamingGraphBuilder::find(std::string_view url) const {
  const auto it = url_to_page_.find(std::string(url));
  if (it == url_to_page_.end()) return std::nullopt;
  return it->second;
}

WebGraph StreamingGraphBuilder::build_from_stream(const EdgeSource& source) && {
  const std::size_t n = urls_.size();
  WebGraph g;

  // Pass 1: per-source degree counts size the out-CSR exactly.
  g.out_offsets_.assign(n + 1, 0);
  std::size_t total_edges = 0;
  source([&](std::span<const Edge> chunk) {
    for (const Edge& e : chunk) {
      if (e.from >= n || e.to >= n) {
        throw std::out_of_range("StreamingGraphBuilder: edge endpoint not interned");
      }
      ++g.out_offsets_[e.from + 1];
    }
    total_edges += chunk.size();
  });
  for (std::size_t i = 0; i < n; ++i) g.out_offsets_[i + 1] += g.out_offsets_[i];
  g.out_targets_.resize(total_edges);

  // Pass 2: scatter targets; in-degrees tallied on the fly so the in-CSR
  // needs no third replay.
  g.in_offsets_.assign(n + 1, 0);
  {
    std::vector<std::uint64_t> cursor(g.out_offsets_.begin(),
                                      g.out_offsets_.end() - 1);
    source([&](std::span<const Edge> chunk) {
      for (const Edge& e : chunk) {
        if (e.from >= n || e.to >= n) {
          throw std::out_of_range(
              "StreamingGraphBuilder: edge endpoint not interned");
        }
        if (cursor[e.from] >= g.out_offsets_[e.from + 1]) {
          throw std::logic_error(
              "StreamingGraphBuilder: edge source replay mismatch at '" +
              urls_[e.from] + "'");
        }
        g.out_targets_[cursor[e.from]++] = e.to;
        ++g.in_offsets_[e.to + 1];
      }
    });
    for (PageId u = 0; u < n; ++u) {
      if (cursor[u] != g.out_offsets_[u + 1]) {
        throw std::logic_error(
            "StreamingGraphBuilder: edge source replay mismatch at '" + urls_[u] +
            "'");
      }
    }
  }

  // Canonical form: sort each out-row, then derive the in-CSR by scanning
  // sources in ascending order so every in-row comes out ascending too.
  for (PageId u = 0; u < n; ++u) {
    std::sort(g.out_targets_.begin() + static_cast<std::ptrdiff_t>(g.out_offsets_[u]),
              g.out_targets_.begin() +
                  static_cast<std::ptrdiff_t>(g.out_offsets_[u + 1]));
  }
  for (std::size_t i = 0; i < n; ++i) g.in_offsets_[i + 1] += g.in_offsets_[i];
  g.in_sources_.resize(total_edges);
  {
    std::vector<std::uint64_t> cursor(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
    for (PageId u = 0; u < n; ++u) {
      for (std::uint64_t k = g.out_offsets_[u]; k < g.out_offsets_[u + 1]; ++k) {
        g.in_sources_[cursor[g.out_targets_[k]]++] = u;
      }
    }
  }

  g.external_out_ = std::move(external_out_);
  for (const auto e : g.external_out_) g.total_external_ += e;
  g.table_ = WebGraph::make_table(std::move(urls_), std::move(site_names_),
                                  std::move(page_sites_));
  return g;
}

}  // namespace p2prank::graph
