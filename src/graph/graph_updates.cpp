#include "graph/graph_updates.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <stdexcept>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "graph/graph_builder.hpp"
#include "graph/url.hpp"

namespace p2prank::graph {

LinkUpdate LinkUpdate::add_page(std::string url) {
  return {Kind::kAddPage, std::move(url), {}};
}
LinkUpdate LinkUpdate::add_link(std::string from, std::string to) {
  return {Kind::kAddLink, std::move(from), std::move(to)};
}
LinkUpdate LinkUpdate::remove_link(std::string from, std::string to) {
  return {Kind::kRemoveLink, std::move(from), std::move(to)};
}
LinkUpdate LinkUpdate::add_external(std::string from) {
  return {Kind::kAddExternal, std::move(from), {}};
}
LinkUpdate LinkUpdate::remove_external(std::string from) {
  return {Kind::kRemoveExternal, std::move(from), {}};
}

namespace {

/// Net effect of an update batch, keyed for sorted-merge splicing.
struct CompiledDelta {
  /// (from, to) -> net multiplicity change; zero-net entries are dropped.
  std::map<std::pair<PageId, PageId>, long long> links;
  /// from -> net external-count change; zero-net entries are dropped.
  std::map<PageId, long long> externals;
  /// Appended after existing pages, in first-mention order.
  std::vector<std::string> new_pages;
};

/// Replay the batch in order, tracking effective counts so the sequential
/// error semantics match the rebuild oracle exactly: a removal is legal iff
/// base count plus the net delta accumulated *so far* is positive.
CompiledDelta compile_updates(const WebGraph& g,
                              std::span<const LinkUpdate> updates) {
  CompiledDelta d;
  std::unordered_map<std::string, PageId> new_index;
  const auto n_old = static_cast<PageId>(g.num_pages());

  auto resolve = [&](const std::string& url) -> PageId {
    if (const auto found = g.find(url)) return *found;
    const auto it = new_index.find(url);
    if (it != new_index.end()) return it->second;
    throw std::invalid_argument("apply_updates: unknown page '" + url + "'");
  };
  auto base_link_count = [&](PageId u, PageId v) -> long long {
    const auto row = g.out_links(u);
    const auto [lo, hi] = std::equal_range(row.begin(), row.end(), v);
    return hi - lo;
  };
  auto base_external = [&](PageId u) -> long long {
    return g.external_out_degree(u);
  };

  for (const auto& up : updates) {
    switch (up.kind) {
      case LinkUpdate::Kind::kAddPage: {
        if (!g.find(up.from_url) && !new_index.contains(up.from_url)) {
          if (n_old + d.new_pages.size() >= static_cast<std::size_t>(kInvalidPage)) {
            throw std::length_error("apply_updates: page id space exhausted");
          }
          new_index.emplace(up.from_url,
                            static_cast<PageId>(n_old + d.new_pages.size()));
          d.new_pages.push_back(up.from_url);
        }
        break;
      }
      case LinkUpdate::Kind::kAddLink: {
        const PageId u = resolve(up.from_url);
        const PageId v = resolve(up.to_url);
        ++d.links[{u, v}];
        break;
      }
      case LinkUpdate::Kind::kRemoveLink: {
        const PageId u = resolve(up.from_url);
        const PageId v = resolve(up.to_url);
        const auto it = d.links.find({u, v});
        const long long net = it != d.links.end() ? it->second : 0;
        if (base_link_count(u, v) + net <= 0) {
          throw std::invalid_argument("apply_updates: link not present: " +
                                      up.from_url + " -> " + up.to_url);
        }
        --d.links[{u, v}];
        break;
      }
      case LinkUpdate::Kind::kAddExternal: {
        const PageId u = resolve(up.from_url);
        const auto it = d.externals.find(u);
        const long long net = it != d.externals.end() ? it->second : 0;
        if (base_external(u) + net >=
            std::numeric_limits<std::uint32_t>::max()) {
          throw std::overflow_error(
              "apply_updates: external out-degree overflow at " + up.from_url);
        }
        ++d.externals[u];
        break;
      }
      case LinkUpdate::Kind::kRemoveExternal: {
        const PageId u = resolve(up.from_url);
        const auto it = d.externals.find(u);
        const long long net = it != d.externals.end() ? it->second : 0;
        if (base_external(u) + net <= 0) {
          throw std::invalid_argument("apply_updates: no external link at " +
                                      up.from_url);
        }
        --d.externals[u];
        break;
      }
    }
  }

  std::erase_if(d.links, [](const auto& kv) { return kv.second == 0; });
  std::erase_if(d.externals, [](const auto& kv) { return kv.second == 0; });
  return d;
}

}  // namespace

/// Splices a compiled delta against an existing graph's CSR arrays. Friend
/// of WebGraph; untouched rows copy verbatim, so the output is canonical
/// (web_graph.hpp) whenever the input is.
class GraphSplicer {
 public:
  static WebGraph splice(const WebGraph& g, CompiledDelta&& d) {
    const std::size_t n_old = g.num_pages();
    const std::size_t n_new = n_old + d.new_pages.size();
    WebGraph out;

    // Externals: copy, patch, re-total. compile_updates() bounds every
    // effective count to [0, UINT32_MAX].
    out.external_out_.assign(n_new, 0);
    std::copy(g.external_out_.begin(), g.external_out_.end(),
              out.external_out_.begin());
    for (const auto& [u, net] : d.externals) {
      out.external_out_[u] =
          static_cast<std::uint32_t>(out.external_out_[u] + net);
    }
    for (const auto e : out.external_out_) out.total_external_ += e;

    // Out-CSR keyed (from, to) — the delta map's native order.
    {
      std::vector<std::tuple<PageId, PageId, long long>> delta;
      delta.reserve(d.links.size());
      for (const auto& [edge, net] : d.links) {
        delta.emplace_back(edge.first, edge.second, net);
      }
      splice_axis(
          n_new, [&g](PageId u) { return g.out_links(u); }, delta,
          g.num_links(), out.out_offsets_, out.out_targets_);
    }

    // In-CSR: regroup by (to, from); the re-sort restores ascending-source
    // rows, matching the canonical derivation from sorted out-rows.
    {
      std::vector<std::tuple<PageId, PageId, long long>> delta;
      delta.reserve(d.links.size());
      for (const auto& [edge, net] : d.links) {
        delta.emplace_back(edge.second, edge.first, net);
      }
      std::sort(delta.begin(), delta.end());
      splice_axis(
          n_new, [&g](PageId v) { return g.in_links(v); }, delta,
          g.num_links(), out.in_offsets_, out.in_sources_);
    }

    if (d.new_pages.empty()) {
      // Link-only delta: the page-identity state is unchanged — share it.
      out.table_ = g.table_;
    } else {
      std::vector<std::string> urls;
      urls.reserve(n_new);
      std::vector<std::string> site_names;
      std::vector<SiteId> sites;
      sites.reserve(n_new);
      std::unordered_map<std::string, SiteId> site_index;
      if (g.table_ != nullptr) {
        urls = g.table_->urls;
        site_names = g.table_->site_names;
        sites = g.table_->sites;
        for (SiteId s = 0; s < site_names.size(); ++s) {
          site_index.emplace(site_names[s], s);
        }
      }
      for (auto& url : d.new_pages) {
        const std::string site(site_of(url));
        const auto [it, inserted] =
            site_index.emplace(site, static_cast<SiteId>(site_names.size()));
        if (inserted) site_names.push_back(site);
        sites.push_back(it->second);
        urls.push_back(std::move(url));
      }
      out.table_ = WebGraph::make_table(std::move(urls), std::move(site_names),
                                        std::move(sites));
    }
    return out;
  }

 private:
  /// Merge sorted per-row deltas into one CSR axis. `delta` is sorted by
  /// (row, id); a row with no delta entries copies verbatim from `base_row`.
  template <typename BaseRow>
  static void splice_axis(
      std::size_t n_new, const BaseRow& base_row,
      const std::vector<std::tuple<PageId, PageId, long long>>& delta,
      std::size_t base_total, std::vector<std::uint64_t>& offsets,
      std::vector<PageId>& elems) {
    offsets.assign(n_new + 1, 0);
    elems.reserve(base_total + delta.size());
    std::size_t di = 0;
    for (PageId row = 0; row < n_new; ++row) {
      const auto base = base_row(row);
      if (di >= delta.size() || std::get<0>(delta[di]) != row) {
        elems.insert(elems.end(), base.begin(), base.end());
      } else {
        std::size_t i = 0;
        for (; di < delta.size() && std::get<0>(delta[di]) == row; ++di) {
          const PageId id = std::get<1>(delta[di]);
          const long long net = std::get<2>(delta[di]);
          while (i < base.size() && base[i] < id) elems.push_back(base[i++]);
          long long count = net;
          while (i < base.size() && base[i] == id) {
            ++count;
            ++i;
          }
          elems.insert(elems.end(), static_cast<std::size_t>(count), id);
        }
        elems.insert(elems.end(), base.begin() + i, base.end());
      }
      offsets[row + 1] = elems.size();
    }
  }
};

GraphUpdateResult apply_updates_delta(const WebGraph& g,
                                      std::span<const LinkUpdate> updates) {
  CompiledDelta d = compile_updates(g, updates);

  GraphUpdateResult res;
  res.incremental = d.new_pages.empty();
  for (const auto& [edge, net] : d.links) {
    (void)net;
    res.in_changed.push_back(edge.second);
  }
  std::sort(res.in_changed.begin(), res.in_changed.end());
  res.in_changed.erase(
      std::unique(res.in_changed.begin(), res.in_changed.end()),
      res.in_changed.end());

  // d(u) changes when the net internal out-row size or the external tally
  // moves; a swap that keeps the total (e.g. -a +b) leaves 1/d(u) intact.
  std::map<PageId, long long> degree_net;
  for (const auto& [edge, net] : d.links) degree_net[edge.first] += net;
  for (const auto& [u, net] : d.externals) degree_net[u] += net;
  for (const auto& [u, net] : degree_net) {
    if (net != 0) res.degree_changed.push_back(u);
  }

  res.graph = GraphSplicer::splice(g, std::move(d));
  return res;
}

WebGraph apply_updates(const WebGraph& g, std::span<const LinkUpdate> updates) {
  return apply_updates_delta(g, updates).graph;
}

WebGraph apply_updates_rebuild(const WebGraph& g,
                               std::span<const LinkUpdate> updates) {
  // Working copies of the mutable pieces.
  // Link multiset as (from, to) -> count so kRemoveLink can drop exactly one
  // instance of a parallel edge.
  std::map<std::pair<PageId, PageId>, std::uint32_t> links;
  for (PageId u = 0; u < g.num_pages(); ++u) {
    for (const PageId v : g.out_links(u)) ++links[{u, v}];
  }
  std::vector<std::uint32_t> external(g.num_pages());
  for (PageId u = 0; u < g.num_pages(); ++u) external[u] = g.external_out_degree(u);

  // New pages (appended after existing ones, in update order).
  std::vector<std::string> new_pages;
  std::unordered_map<std::string, PageId> new_index;
  auto resolve = [&](const std::string& url) -> PageId {
    if (const auto found = g.find(url)) return *found;
    const auto it = new_index.find(url);
    if (it != new_index.end()) return it->second;
    throw std::invalid_argument("apply_updates: unknown page '" + url + "'");
  };

  for (const auto& up : updates) {
    switch (up.kind) {
      case LinkUpdate::Kind::kAddPage: {
        if (!g.find(up.from_url) && !new_index.contains(up.from_url)) {
          new_index.emplace(
              up.from_url, static_cast<PageId>(g.num_pages() + new_pages.size()));
          new_pages.push_back(up.from_url);
          external.push_back(0);
        }
        break;
      }
      case LinkUpdate::Kind::kAddLink:
        ++links[{resolve(up.from_url), resolve(up.to_url)}];
        break;
      case LinkUpdate::Kind::kRemoveLink: {
        const auto key = std::make_pair(resolve(up.from_url), resolve(up.to_url));
        const auto it = links.find(key);
        if (it == links.end() || it->second == 0) {
          throw std::invalid_argument("apply_updates: link not present: " +
                                      up.from_url + " -> " + up.to_url);
        }
        if (--it->second == 0) links.erase(it);
        break;
      }
      case LinkUpdate::Kind::kAddExternal:
        ++external[resolve(up.from_url)];
        break;
      case LinkUpdate::Kind::kRemoveExternal: {
        const PageId u = resolve(up.from_url);
        if (external[u] == 0) {
          throw std::invalid_argument("apply_updates: no external link at " +
                                      up.from_url);
        }
        --external[u];
        break;
      }
    }
  }

  // Rebuild, preserving page order (and hence PageIds).
  GraphBuilder builder;
  for (PageId p = 0; p < g.num_pages(); ++p) {
    builder.add_page(g.url(p), g.site_name(g.site(p)));
  }
  for (const auto& url : new_pages) builder.add_page(url);
  for (const auto& [edge, count] : links) {
    for (std::uint32_t c = 0; c < count; ++c) builder.add_link(edge.first, edge.second);
  }
  for (PageId u = 0; u < external.size(); ++u) {
    if (external[u] > 0) builder.add_external_link(u, external[u]);
  }
  return std::move(builder).build();
}

}  // namespace p2prank::graph
