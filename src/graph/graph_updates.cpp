#include "graph/graph_updates.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

#include "graph/graph_builder.hpp"

namespace p2prank::graph {

LinkUpdate LinkUpdate::add_page(std::string url) {
  return {Kind::kAddPage, std::move(url), {}};
}
LinkUpdate LinkUpdate::add_link(std::string from, std::string to) {
  return {Kind::kAddLink, std::move(from), std::move(to)};
}
LinkUpdate LinkUpdate::remove_link(std::string from, std::string to) {
  return {Kind::kRemoveLink, std::move(from), std::move(to)};
}
LinkUpdate LinkUpdate::add_external(std::string from) {
  return {Kind::kAddExternal, std::move(from), {}};
}
LinkUpdate LinkUpdate::remove_external(std::string from) {
  return {Kind::kRemoveExternal, std::move(from), {}};
}

WebGraph apply_updates(const WebGraph& g, std::span<const LinkUpdate> updates) {
  // Working copies of the mutable pieces.
  // Link multiset as (from, to) -> count so kRemoveLink can drop exactly one
  // instance of a parallel edge.
  std::map<std::pair<PageId, PageId>, std::uint32_t> links;
  for (PageId u = 0; u < g.num_pages(); ++u) {
    for (const PageId v : g.out_links(u)) ++links[{u, v}];
  }
  std::vector<std::uint32_t> external(g.num_pages());
  for (PageId u = 0; u < g.num_pages(); ++u) external[u] = g.external_out_degree(u);

  // New pages (appended after existing ones, in update order).
  std::vector<std::string> new_pages;
  std::size_t next_id = g.num_pages();
  auto resolve = [&](const std::string& url) -> PageId {
    if (const auto found = g.find(url)) return *found;
    const auto it = std::find(new_pages.begin(), new_pages.end(), url);
    if (it != new_pages.end()) {
      return static_cast<PageId>(g.num_pages() + (it - new_pages.begin()));
    }
    throw std::invalid_argument("apply_updates: unknown page '" + url + "'");
  };

  for (const auto& up : updates) {
    switch (up.kind) {
      case LinkUpdate::Kind::kAddPage: {
        const bool exists = g.find(up.from_url).has_value() ||
                            std::find(new_pages.begin(), new_pages.end(),
                                      up.from_url) != new_pages.end();
        if (!exists) {
          new_pages.push_back(up.from_url);
          external.push_back(0);
          ++next_id;
        }
        break;
      }
      case LinkUpdate::Kind::kAddLink:
        ++links[{resolve(up.from_url), resolve(up.to_url)}];
        break;
      case LinkUpdate::Kind::kRemoveLink: {
        const auto key = std::make_pair(resolve(up.from_url), resolve(up.to_url));
        const auto it = links.find(key);
        if (it == links.end() || it->second == 0) {
          throw std::invalid_argument("apply_updates: link not present: " +
                                      up.from_url + " -> " + up.to_url);
        }
        if (--it->second == 0) links.erase(it);
        break;
      }
      case LinkUpdate::Kind::kAddExternal:
        ++external[resolve(up.from_url)];
        break;
      case LinkUpdate::Kind::kRemoveExternal: {
        const PageId u = resolve(up.from_url);
        if (external[u] == 0) {
          throw std::invalid_argument("apply_updates: no external link at " +
                                      up.from_url);
        }
        --external[u];
        break;
      }
    }
  }

  // Rebuild, preserving page order (and hence PageIds).
  GraphBuilder builder;
  for (PageId p = 0; p < g.num_pages(); ++p) {
    builder.add_page(g.url(p), g.site_name(g.site(p)));
  }
  for (const auto& url : new_pages) builder.add_page(url);
  for (const auto& [edge, count] : links) {
    for (std::uint32_t c = 0; c < count; ++c) builder.add_link(edge.first, edge.second);
  }
  for (PageId u = 0; u < external.size(); ++u) {
    if (external[u] > 0) builder.add_external_link(u, external[u]);
  }
  return std::move(builder).build();
}

}  // namespace p2prank::graph
