// Structural statistics of a crawl — the numbers DESIGN.md's substitution
// table promises the synthetic generator matches (link locality, internal
// fraction, degree tails).
#pragma once

#include <cstddef>
#include <iosfwd>

#include "graph/web_graph.hpp"
#include "util/histogram.hpp"

namespace p2prank::graph {

struct GraphStats {
  std::size_t pages = 0;
  std::size_t sites = 0;
  std::size_t internal_links = 0;
  std::size_t external_links = 0;
  std::size_t intra_site_links = 0;  ///< internal links within one site
  std::size_t dangling_pages = 0;    ///< out_degree == 0
  double mean_out_degree = 0.0;      ///< including external links
  double max_in_degree = 0.0;
  /// internal / (internal + external): fraction of link mass staying in the
  /// crawl (paper dataset: 7/15 ≈ 0.47).
  [[nodiscard]] double internal_fraction() const noexcept;
  /// intra-site / internal: link locality among crawled targets.
  [[nodiscard]] double intra_site_fraction() const noexcept;

  util::Log2Histogram out_degree_hist;
  util::Log2Histogram in_degree_hist;
  util::Log2Histogram site_size_hist;
};

[[nodiscard]] GraphStats compute_stats(const WebGraph& g);

/// Human-readable dump.
void print_stats(const GraphStats& s, std::ostream& out);

}  // namespace p2prank::graph
