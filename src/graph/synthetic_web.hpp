// Synthetic web-crawl generator.
//
// The paper's experiments use the Google programming-contest 2002 dataset
// (~1M pages from 100 .edu sites, 15M links of which only 7M point at
// crawled pages). That dataset is not redistributable, so we generate a
// statistically equivalent crawl. Three properties drive the paper's
// results, and all three are explicit knobs here:
//
//  1. link locality       — ~90% of links stay inside their site
//                           (Cho & Garcia-Molina [16]); controls how much a
//                           site-granularity partition reduces cut links;
//  2. internal fraction   — the share of links whose target was actually
//                           crawled (~7/15 for the paper's dataset); controls
//                           how much rank leaks out of the open system and
//                           hence the average-rank plateau of Fig. 7;
//  3. heavy-tailed sizes/degrees — power-law site sizes and in-degrees, as
//                           observed on the real web; controls convergence
//                           behaviour and partition balance.
//
// The crawl is modeled per link: each generated link targets a crawled page
// with probability crawl_fraction and is otherwise recorded as an external
// link (its real-world target exists but was never fetched). Deciding this
// per link pins the internal fraction with binomial concentration at every
// scale, which a sampled fixed uncrawled universe would not (whether a
// site's most popular page landed in the crawl would dominate the ratio).
#pragma once

#include <cstdint>
#include <string>

#include "graph/web_graph.hpp"

namespace p2prank::graph {

struct SyntheticWebConfig {
  std::uint64_t seed = 42;
  std::uint32_t num_sites = 100;
  /// Number of *crawled* pages to aim for (actual count comes out within a
  /// few percent because site sizes are sampled).
  std::uint32_t target_pages = 100'000;
  /// Probability that a link's target was crawled (= expected internal-link
  /// fraction). Lower values push more links external. In (0, 1].
  double crawl_fraction = 0.47;
  /// Probability that a link targets a page of the same site.
  double intra_site_fraction = 0.90;
  /// Mean out-degree of a crawled page (the paper's dataset: 15M/1M = 15).
  double mean_out_degree = 15.0;
  /// Power-law exponent for site sizes (number of pages per site).
  double site_size_exponent = 1.6;
  /// Power-law exponent for target popularity inside a site — smaller
  /// exponent gives a heavier in-degree tail.
  double popularity_exponent = 1.8;
  /// Fraction of crawled pages with zero out-links (dangling pages).
  double dangling_fraction = 0.02;
};

/// Preset matching the Google programming-contest 2002 statistics, scaled to
/// `pages` crawled pages.
[[nodiscard]] SyntheticWebConfig google2002_config(std::uint32_t pages = 100'000,
                                                   std::uint64_t seed = 42);

/// Generate a crawl. Deterministic in cfg.seed.
[[nodiscard]] WebGraph generate_synthetic_web(const SyntheticWebConfig& cfg);

/// Same crawl, built through StreamingGraphBuilder: links are regenerated
/// chunk-by-chunk on each counting/scatter pass instead of being buffered,
/// so peak memory is one chunk rather than the whole edge list. Produces a
/// WebGraph whose CSR arrays are bitwise-identical to
/// generate_synthetic_web(cfg) — both paths draw from the same RNG stream
/// and land in the canonical sorted form (locked by test). Use this for the
/// multi-million-page scale benches.
[[nodiscard]] WebGraph generate_synthetic_web_streamed(const SyntheticWebConfig& cfg);

}  // namespace p2prank::graph
