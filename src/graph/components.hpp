// Link-graph structure analysis: strongly connected components and rank
// sinks.
//
// PageRank's E term exists precisely because of *rank sinks* — "loops of
// pages that accumulate rank but never distribute it" (Section 2 of the
// paper adds the (1-c)E term "for avoiding rank sink"). A sink is a
// strongly connected component with no edges leaving it (counting external
// links as leaving, since that rank exits the open system). These tools let
// tests and diagnostics find them, and quantify how sink-heavy a crawl is.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/web_graph.hpp"

namespace p2prank::graph {

struct SccResult {
  /// component[p] = id of p's SCC; ids are in reverse topological order
  /// (an edge u->v implies component[u] >= component[v]).
  std::vector<std::uint32_t> component;
  std::uint32_t count = 0;

  [[nodiscard]] std::vector<std::uint32_t> component_sizes() const;
};

/// Tarjan's algorithm (iterative — crawl graphs overflow recursion).
[[nodiscard]] SccResult strongly_connected_components(const WebGraph& g);

/// SCCs with no edge leaving them and no external links: rank that enters
/// never leaves (the closed-system pathology E fixes). Returns the member
/// pages of every sink component, largest first. A self-looping singleton
/// counts as a sink; a plain dangling page (no links at all) is a different
/// pathology and is only listed when `include_dangling` is set.
[[nodiscard]] std::vector<std::vector<PageId>> find_rank_sinks(
    const WebGraph& g, bool include_dangling = false);

}  // namespace p2prank::graph
