#include "graph/random_graphs.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "graph/graph_builder.hpp"
#include "util/rng.hpp"

namespace p2prank::graph {

namespace {

/// Intern `nodes` pages "rand.edu/pN" and return their ids.
std::vector<PageId> make_pages(GraphBuilder& builder, std::uint32_t nodes) {
  std::vector<PageId> ids;
  ids.reserve(nodes);
  for (std::uint32_t i = 0; i < nodes; ++i) {
    ids.push_back(builder.add_page("rand.edu/p" + std::to_string(i), "rand.edu"));
  }
  return ids;
}

}  // namespace

WebGraph erdos_renyi(std::uint32_t nodes, std::uint64_t edges, std::uint64_t seed) {
  if (nodes < 2) throw std::invalid_argument("erdos_renyi: need >= 2 nodes");
  GraphBuilder builder;
  const auto ids = make_pages(builder, nodes);
  util::Rng rng(seed);
  for (std::uint64_t e = 0; e < edges; ++e) {
    const auto u = static_cast<std::uint32_t>(rng.below(nodes));
    auto v = static_cast<std::uint32_t>(rng.below(nodes - 1));
    if (v >= u) ++v;  // no self-loops
    builder.add_link(ids[u], ids[v]);
  }
  return std::move(builder).build();
}

WebGraph preferential_attachment(std::uint32_t nodes, std::uint32_t edges_per_node,
                                 std::uint64_t seed) {
  if (nodes < 2) throw std::invalid_argument("preferential_attachment: need >= 2 nodes");
  if (edges_per_node == 0) {
    throw std::invalid_argument("preferential_attachment: edges_per_node == 0");
  }
  GraphBuilder builder;
  const auto ids = make_pages(builder, nodes);
  util::Rng rng(seed);

  // Repeated-targets list: drawing uniformly from it approximates
  // probability ∝ (in-degree + 1) — each node appears once at birth and
  // once more per received link.
  std::vector<std::uint32_t> lottery;
  lottery.reserve(static_cast<std::size_t>(nodes) * (edges_per_node + 1));
  lottery.push_back(0);
  for (std::uint32_t u = 1; u < nodes; ++u) {
    for (std::uint32_t k = 0; k < edges_per_node; ++k) {
      // The lottery holds only nodes born before u, so no self-loop arises.
      const std::uint32_t v = lottery[rng.below(lottery.size())];
      builder.add_link(ids[u], ids[v]);
      lottery.push_back(v);
    }
    lottery.push_back(u);
  }
  return std::move(builder).build();
}

}  // namespace p2prank::graph
