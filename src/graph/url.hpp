// Minimal URL handling: normalization and site (host) extraction.
//
// The paper partitions pages "by the hash code of websites" (Section 4.1),
// so we need a stable notion of the site a URL belongs to. We implement the
// subset of URL parsing that web-crawl datasets require: scheme and host
// extraction, lowercasing of host, default-port stripping and path
// normalization — not a full RFC 3986 parser.
#pragma once

#include <string>
#include <string_view>

namespace p2prank::graph {

/// Components of a parsed URL.
struct UrlParts {
  std::string scheme;  ///< lowercased; empty if absent
  std::string host;    ///< lowercased, default port removed; empty if absent
  std::string path;    ///< starts with '/' when non-empty (query kept)
};

/// Parse a URL into parts. Accepts scheme-relative ("//host/p"), absolute
/// ("http://host/p") and bare ("host/p") forms. Never throws; unparseable
/// inputs land entirely in `path`.
[[nodiscard]] UrlParts parse_url(std::string_view url);

/// The site of a URL: its lowercased host with any default port stripped.
/// Returns an empty string when the URL has no recognizable host.
[[nodiscard]] std::string site_of(std::string_view url);

/// Canonical form used as a graph key: "host/path" with lowercase host,
/// no scheme, no fragment, and "/" appended to a bare host.
[[nodiscard]] std::string normalize_url(std::string_view url);

}  // namespace p2prank::graph
