#include "graph/graph_io.hpp"

#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "graph/graph_builder.hpp"

namespace p2prank::graph {

void save_graph(const WebGraph& g, std::ostream& out) {
  out << "# p2prank crawl v1: " << g.num_pages() << " pages, " << g.num_links()
      << " internal links, " << g.num_external_links() << " external links\n";
  for (PageId p = 0; p < g.num_pages(); ++p) {
    out << "P " << g.url(p) << ' ' << g.site_name(g.site(p)) << '\n';
  }
  for (PageId p = 0; p < g.num_pages(); ++p) {
    for (const PageId q : g.out_links(p)) {
      out << "L " << g.url(p) << ' ' << g.url(q) << '\n';
    }
    if (g.external_out_degree(p) > 0) {
      out << "X " << g.url(p) << ' ' << g.external_out_degree(p) << '\n';
    }
  }
}

void save_graph_file(const WebGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_graph_file: cannot open " + path);
  save_graph(g, out);
}

WebGraph load_graph(std::istream& in) {
  GraphBuilder builder;
  // Two passes are avoided by deferring unknown link targets: the builder
  // resolves them at build(). Link sources, however, must already be pages,
  // so we queue L/X records and replay them after all P records.
  struct LinkRec {
    std::string from, to;
    std::size_t line_no;
  };
  struct ExtRec {
    std::string from;
    std::uint32_t count;
    std::size_t line_no;
  };
  std::vector<LinkRec> links;
  std::vector<ExtRec> externals;

  std::string line;
  std::size_t line_no = 0;
  auto fail_at = [](std::size_t at, const std::string& msg) {
    throw std::runtime_error("load_graph: line " + std::to_string(at) + ": " + msg);
  };
  auto fail = [&](const std::string& msg) { fail_at(line_no, msg); };
  auto reject_trailing = [&](std::istringstream& fields) {
    std::string extra;
    if (fields >> extra) fail("trailing token '" + extra + "'");
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "P") {
      std::string url, site;
      if (!(fields >> url >> site)) fail("malformed P record");
      reject_trailing(fields);
      try {
        builder.add_page(url, site);
      } catch (const std::invalid_argument& e) {
        fail(e.what());
      }
    } else if (tag == "L") {
      LinkRec rec;
      if (!(fields >> rec.from >> rec.to)) fail("malformed L record");
      reject_trailing(fields);
      rec.line_no = line_no;
      links.push_back(std::move(rec));
    } else if (tag == "X") {
      ExtRec rec;
      if (!(fields >> rec.from >> rec.count)) fail("malformed X record");
      reject_trailing(fields);
      // save_graph never emits a zero count; accepting one would break the
      // round-trip (it silently vanishes on the next save).
      if (rec.count == 0) fail("X record with zero count");
      rec.line_no = line_no;
      externals.push_back(std::move(rec));
    } else {
      fail("unknown record tag '" + tag + "'");
    }
  }

  // Replay links now that every page is interned. A link *source* that was
  // never declared is a format error: we would not know its site.
  for (const auto& rec : links) {
    const auto from = builder.find(rec.from);
    if (!from) {
      fail_at(rec.line_no, "link source not declared as page: " + rec.from);
    }
    builder.add_link_to_url(*from, rec.to);
  }
  for (const auto& rec : externals) {
    const auto from = builder.find(rec.from);
    if (!from) {
      fail_at(rec.line_no, "X source not declared as page: " + rec.from);
    }
    builder.add_external_link(*from, rec.count);
  }
  return std::move(builder).build();
}

WebGraph load_graph_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_graph_file: cannot open " + path);
  return load_graph(in);
}

// ---------------------------------------------------------------------------
// Binary CSR format ("p2pgrb1"). Layout, all integers little-endian:
//   char[8]  magic "p2pgrb1\n"
//   u64      num_pages, num_sites, num_links, total_external
//   per site: u32 length + name bytes
//   per page: u32 site id
//   per page: u32 length + url bytes
//   per page: varint external out-count
//   per page: varint out-degree, then delta-varint ascending targets
//             (first target absolute, the rest as gaps from the previous)
// The whole stream is staged through one in-memory buffer in both
// directions: varint decode from a flat byte array is what makes reload
// I/O-bound rather than parse-bound.

namespace {

constexpr char kBinaryMagic[8] = {'p', '2', 'p', 'g', 'r', 'b', '1', '\n'};

void put_u32(std::string& buf, std::uint32_t v) {
  char raw[4];
  std::memcpy(raw, &v, 4);
  buf.append(raw, 4);
}

void put_u64(std::string& buf, std::uint64_t v) {
  char raw[8];
  std::memcpy(raw, &v, 8);
  buf.append(raw, 8);
}

void put_varint(std::string& buf, std::uint64_t v) {
  while (v >= 0x80) {
    buf.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  buf.push_back(static_cast<char>(v));
}

class BinaryReader {
 public:
  explicit BinaryReader(std::string data) : data_(std::move(data)) {}

  [[nodiscard]] std::uint32_t u32() {
    std::uint32_t v;
    std::memcpy(&v, need(4), 4);
    return v;
  }

  [[nodiscard]] std::uint64_t u64() {
    std::uint64_t v;
    std::memcpy(&v, need(8), 8);
    return v;
  }

  [[nodiscard]] std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      const auto byte = static_cast<unsigned char>(*need(1));
      if (shift >= 63 && byte > 1) {
        throw std::runtime_error("load_graph_binary: varint overflow");
      }
      v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return v;
      shift += 7;
    }
  }

  [[nodiscard]] std::string str() {
    const std::uint32_t len = u32();
    return {need(len), len};
  }

  void magic() {
    if (std::memcmp(need(8), kBinaryMagic, 8) != 0) {
      throw std::runtime_error("load_graph_binary: bad magic");
    }
  }

  [[nodiscard]] bool exhausted() const noexcept { return pos_ == data_.size(); }

 private:
  const char* need(std::size_t count) {
    if (data_.size() - pos_ < count) {
      throw std::runtime_error("load_graph_binary: truncated stream");
    }
    const char* p = data_.data() + pos_;
    pos_ += count;
    return p;
  }

  std::string data_;
  std::size_t pos_ = 0;
};

}  // namespace

class GraphBinaryIo {
 public:
  static void save(const WebGraph& g, std::ostream& out) {
    std::string buf;
    // Reserve a rough upper bound: fixed header + urls/site names + ~2 bytes
    // per link gap + site ids + a few varints per page.
    std::size_t reserve = 40 + 4 * g.num_links() + 16 * g.num_pages();
    for (PageId p = 0; p < g.num_pages(); ++p) reserve += g.url(p).size();
    for (SiteId s = 0; s < g.num_sites(); ++s) reserve += g.site_name(s).size();
    buf.reserve(reserve);

    buf.append(kBinaryMagic, 8);
    put_u64(buf, g.num_pages());
    put_u64(buf, g.num_sites());
    put_u64(buf, g.num_links());
    put_u64(buf, g.num_external_links());
    for (SiteId s = 0; s < g.num_sites(); ++s) {
      const std::string& name = g.site_name(s);
      put_u32(buf, static_cast<std::uint32_t>(name.size()));
      buf.append(name);
    }
    for (PageId p = 0; p < g.num_pages(); ++p) put_u32(buf, g.site(p));
    for (PageId p = 0; p < g.num_pages(); ++p) {
      const std::string& url = g.url(p);
      put_u32(buf, static_cast<std::uint32_t>(url.size()));
      buf.append(url);
    }
    for (PageId p = 0; p < g.num_pages(); ++p) {
      put_varint(buf, g.external_out_degree(p));
    }
    for (PageId p = 0; p < g.num_pages(); ++p) {
      const auto row = g.out_links(p);
      put_varint(buf, row.size());
      PageId prev = 0;
      bool first = true;
      for (const PageId t : row) {
        put_varint(buf, first ? t : t - prev);
        prev = t;
        first = false;
      }
    }
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    if (!out) throw std::runtime_error("save_graph_binary: write failed");
  }

  static WebGraph load(std::istream& in) {
    std::ostringstream staging;
    staging << in.rdbuf();
    BinaryReader r(std::move(staging).str());
    r.magic();

    const std::uint64_t n = r.u64();
    const std::uint64_t num_sites = r.u64();
    const std::uint64_t m = r.u64();
    const std::uint64_t total_external = r.u64();
    if (n >= static_cast<std::uint64_t>(kInvalidPage)) {
      throw std::runtime_error("load_graph_binary: page count out of range");
    }

    std::vector<std::string> site_names;
    site_names.reserve(num_sites);
    for (std::uint64_t s = 0; s < num_sites; ++s) site_names.push_back(r.str());

    std::vector<SiteId> sites(n);
    for (std::uint64_t p = 0; p < n; ++p) {
      sites[p] = r.u32();
      if (sites[p] >= num_sites) {
        throw std::runtime_error("load_graph_binary: site id out of range");
      }
    }

    std::vector<std::string> urls;
    urls.reserve(n);
    for (std::uint64_t p = 0; p < n; ++p) urls.push_back(r.str());

    WebGraph g;
    g.external_out_.resize(n);
    for (std::uint64_t p = 0; p < n; ++p) {
      const std::uint64_t count = r.varint();
      if (count > std::numeric_limits<std::uint32_t>::max()) {
        throw std::runtime_error("load_graph_binary: external count out of range");
      }
      g.external_out_[p] = static_cast<std::uint32_t>(count);
      g.total_external_ += count;
    }
    if (g.total_external_ != total_external) {
      throw std::runtime_error("load_graph_binary: external link total mismatch");
    }

    g.out_offsets_.assign(n + 1, 0);
    g.out_targets_.reserve(m);
    g.in_offsets_.assign(n + 1, 0);
    for (std::uint64_t p = 0; p < n; ++p) {
      const std::uint64_t degree = r.varint();
      PageId prev = 0;
      for (std::uint64_t k = 0; k < degree; ++k) {
        const std::uint64_t gap = r.varint();
        const std::uint64_t target = (k == 0) ? gap : gap + prev;
        if (target >= n) {
          throw std::runtime_error("load_graph_binary: link target out of range");
        }
        prev = static_cast<PageId>(target);
        g.out_targets_.push_back(prev);
        ++g.in_offsets_[prev + 1];
      }
      g.out_offsets_[p + 1] = g.out_targets_.size();
    }
    if (g.out_targets_.size() != m) {
      throw std::runtime_error("load_graph_binary: link count mismatch");
    }
    if (!r.exhausted()) {
      throw std::runtime_error("load_graph_binary: trailing bytes");
    }

    // In-CSR derived exactly as the builders do: ascending-source scan over
    // the (already canonical) out rows.
    for (std::uint64_t i = 0; i < n; ++i) g.in_offsets_[i + 1] += g.in_offsets_[i];
    g.in_sources_.resize(m);
    {
      std::vector<std::uint64_t> cursor(g.in_offsets_.begin(),
                                        g.in_offsets_.end() - 1);
      for (PageId u = 0; u < n; ++u) {
        for (std::uint64_t k = g.out_offsets_[u]; k < g.out_offsets_[u + 1]; ++k) {
          g.in_sources_[cursor[g.out_targets_[k]]++] = u;
        }
      }
    }

    g.table_ = WebGraph::make_table(std::move(urls), std::move(site_names),
                                    std::move(sites));
    return g;
  }
};

void save_graph_binary(const WebGraph& g, std::ostream& out) {
  GraphBinaryIo::save(g, out);
}

void save_graph_binary_file(const WebGraph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_graph_binary_file: cannot open " + path);
  save_graph_binary(g, out);
}

WebGraph load_graph_binary(std::istream& in) { return GraphBinaryIo::load(in); }

WebGraph load_graph_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_graph_binary_file: cannot open " + path);
  return load_graph_binary(in);
}

}  // namespace p2prank::graph
