#include "graph/graph_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "graph/graph_builder.hpp"

namespace p2prank::graph {

void save_graph(const WebGraph& g, std::ostream& out) {
  out << "# p2prank crawl v1: " << g.num_pages() << " pages, " << g.num_links()
      << " internal links, " << g.num_external_links() << " external links\n";
  for (PageId p = 0; p < g.num_pages(); ++p) {
    out << "P " << g.url(p) << ' ' << g.site_name(g.site(p)) << '\n';
  }
  for (PageId p = 0; p < g.num_pages(); ++p) {
    for (const PageId q : g.out_links(p)) {
      out << "L " << g.url(p) << ' ' << g.url(q) << '\n';
    }
    if (g.external_out_degree(p) > 0) {
      out << "X " << g.url(p) << ' ' << g.external_out_degree(p) << '\n';
    }
  }
}

void save_graph_file(const WebGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_graph_file: cannot open " + path);
  save_graph(g, out);
}

WebGraph load_graph(std::istream& in) {
  GraphBuilder builder;
  // Two passes are avoided by deferring unknown link targets: the builder
  // resolves them at build(). Link sources, however, must already be pages,
  // so we queue L/X records and replay them after all P records.
  struct LinkRec {
    std::string from, to;
  };
  struct ExtRec {
    std::string from;
    std::uint32_t count;
  };
  std::vector<LinkRec> links;
  std::vector<ExtRec> externals;

  std::string line;
  std::size_t line_no = 0;
  auto fail = [&](const std::string& msg) {
    throw std::runtime_error("load_graph: line " + std::to_string(line_no) + ": " + msg);
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "P") {
      std::string url, site;
      if (!(fields >> url >> site)) fail("malformed P record");
      builder.add_page(url, site);
    } else if (tag == "L") {
      LinkRec rec;
      if (!(fields >> rec.from >> rec.to)) fail("malformed L record");
      links.push_back(std::move(rec));
    } else if (tag == "X") {
      ExtRec rec;
      if (!(fields >> rec.from >> rec.count)) fail("malformed X record");
      externals.push_back(std::move(rec));
    } else {
      fail("unknown record tag '" + tag + "'");
    }
  }

  // Replay links now that every page is interned.
  for (const auto& rec : links) {
    const auto from = [&] {
      // add_page is idempotent, but a link *source* that was never declared
      // is a format error: we would not know its site.
      GraphBuilder& b = builder;
      const PageId before = static_cast<PageId>(b.num_pages());
      const PageId id = b.add_page(rec.from);
      if (id == before) {
        throw std::runtime_error("load_graph: link source not declared as page: " +
                                 rec.from);
      }
      return id;
    }();
    builder.add_link_to_url(from, rec.to);
  }
  for (const auto& rec : externals) {
    const PageId before = static_cast<PageId>(builder.num_pages());
    const PageId id = builder.add_page(rec.from);
    if (id == before) {
      throw std::runtime_error("load_graph: X source not declared as page: " + rec.from);
    }
    builder.add_external_link(id, rec.count);
  }
  return std::move(builder).build();
}

WebGraph load_graph_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_graph_file: cannot open " + path);
  return load_graph(in);
}

}  // namespace p2prank::graph
