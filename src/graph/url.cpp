#include "graph/url.hpp"

#include <algorithm>
#include <cctype>

namespace p2prank::graph {

namespace {

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

/// Strip ":80"/":443" default ports from a host.
std::string strip_default_port(std::string host, std::string_view scheme) {
  const auto colon = host.rfind(':');
  if (colon == std::string::npos) return host;
  const std::string_view port(host.data() + colon + 1, host.size() - colon - 1);
  const bool is_default = (scheme == "http" && port == "80") ||
                          (scheme == "https" && port == "443") ||
                          (scheme.empty() && port == "80");
  if (is_default) host.erase(colon);
  return host;
}

}  // namespace

UrlParts parse_url(std::string_view url) {
  UrlParts parts;

  // Drop fragment.
  if (const auto hash = url.find('#'); hash != std::string_view::npos) {
    url = url.substr(0, hash);
  }

  // Scheme.
  std::string_view rest = url;
  if (const auto sep = url.find("://"); sep != std::string_view::npos &&
                                        sep > 0 &&
                                        url.find('/') >= sep) {
    parts.scheme = to_lower(url.substr(0, sep));
    rest = url.substr(sep + 3);
  } else if (url.starts_with("//")) {
    rest = url.substr(2);
  } else if (url.starts_with("/")) {
    // Path-only URL: no host.
    parts.path = std::string(url);
    return parts;
  }

  // Host = up to first '/'.
  const auto slash = rest.find('/');
  const std::string_view host_view =
      slash == std::string_view::npos ? rest : rest.substr(0, slash);
  // A host must contain a dot or be non-empty with a scheme; heuristically
  // treat dot-less, scheme-less leading components as hosts too (crawl data
  // style "host/path").
  parts.host = strip_default_port(to_lower(host_view), parts.scheme);
  if (slash != std::string_view::npos) {
    parts.path = std::string(rest.substr(slash));
  }
  return parts;
}

std::string site_of(std::string_view url) { return parse_url(url).host; }

std::string normalize_url(std::string_view url) {
  const UrlParts parts = parse_url(url);
  if (parts.host.empty()) return parts.path;
  std::string out = parts.host;
  out += parts.path.empty() ? "/" : parts.path;
  return out;
}

}  // namespace p2prank::graph
