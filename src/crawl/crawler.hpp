// Incremental web crawler simulator.
//
// The paper's system model starts from crawlers: "Pages crawled by
// crawler(s) are partitioned into K groups and mapped onto K page rankers",
// and Section 4.1's case for hash partitioning rests on crawler behaviour —
// "as crawler(s) may revisit pages in order to detect changes and refresh
// the downloaded collection, one page may participate in dividing more than
// one time". This module provides that substrate: a deterministic synthetic
// web *universe* (same statistical model as graph::SyntheticWeb) crawled
// incrementally — discover, fetch, revisit — so the full pipeline
// (crawl -> partition -> rank -> re-crawl -> warm restart) can be exercised
// end to end.
//
// The universe is lazy: a page's out-links are derived from the seed the
// first time the page is fetched and never change, so re-fetching a page is
// idempotent and two crawls with the same seed see the same web.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/web_graph.hpp"
#include "util/rng.hpp"

namespace p2prank::crawl {

struct CrawlConfig {
  std::uint64_t seed = 42;
  std::uint32_t num_sites = 100;
  /// Total pages that *exist* across all site universes.
  std::uint32_t universe_pages = 100'000;
  double mean_out_degree = 15.0;
  double intra_site_fraction = 0.90;
  /// Power-law exponent for site sizes.
  double site_size_exponent = 1.6;
  /// Power-law exponent of target popularity within a site. The crawler's
  /// frontier covers popular pages first, so a strong skew (e.g. 1.8) makes
  /// a partial crawl contain nearly every link target; the flatter default
  /// keeps a realistic share of links pointing at never-fetched pages.
  double popularity_exponent = 1.25;
  /// Fraction of fetches that re-fetch an already-crawled page (refresh).
  double revisit_fraction = 0.05;
  /// Fraction of pages with no out-links.
  double dangling_fraction = 0.02;
};

/// One fetched page: its URL and the URLs its links point at.
struct FetchedPage {
  std::string url;
  std::vector<std::string> out_urls;
  bool revisit = false;  ///< true when this fetch refreshed a known page
};

class Crawler {
 public:
  explicit Crawler(const CrawlConfig& cfg);

  /// Fetch up to `count` pages (frontier-first, random restarts when the
  /// frontier drains, occasional revisits). Returns fewer only when every
  /// universe page has been fetched.
  std::vector<FetchedPage> fetch(std::size_t count);

  /// Distinct pages fetched so far.
  [[nodiscard]] std::size_t pages_fetched() const noexcept {
    return fetched_order_.size();
  }
  /// URLs discovered (seen as a link target or fetched).
  [[nodiscard]] std::size_t pages_discovered() const noexcept {
    return discovered_.size();
  }
  [[nodiscard]] std::size_t universe_size() const noexcept { return total_pages_; }
  [[nodiscard]] bool exhausted() const noexcept {
    return fetched_order_.size() == total_pages_;
  }

  /// Build the crawl graph from everything fetched so far. Links to pages
  /// never fetched become external links. Snapshots taken later are strict
  /// supersets: earlier pages keep their PageIds (fetch order is preserved).
  [[nodiscard]] graph::WebGraph snapshot() const;

 private:
  struct PageRef {
    std::uint32_t site;
    std::uint32_t index;
  };

  [[nodiscard]] std::string url_of(PageRef p) const;
  [[nodiscard]] std::vector<PageRef> links_of(PageRef p) const;
  void fetch_one(PageRef p, bool revisit, std::vector<FetchedPage>& out);
  [[nodiscard]] bool try_restart();

  CrawlConfig cfg_;
  util::Rng rng_;
  std::vector<std::uint32_t> site_size_;
  std::vector<std::uint64_t> site_offset_;  // flat index of site's page 0
  std::uint64_t total_pages_ = 0;
  double degree_scale_ = 0.0;

  std::deque<PageRef> frontier_;
  std::unordered_set<std::uint64_t> discovered_;  // flat page index
  std::unordered_set<std::uint64_t> fetched_;
  std::vector<PageRef> fetched_order_;
  std::unordered_map<std::uint64_t, std::vector<PageRef>> content_;  // page -> links
};

}  // namespace p2prank::crawl
