#include "crawl/crawler.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "graph/graph_builder.hpp"
#include "util/hash.hpp"

namespace p2prank::crawl {

namespace {

constexpr double kDegExponent = 2.5;
constexpr std::uint64_t kDegCap = 400;

}  // namespace

Crawler::Crawler(const CrawlConfig& cfg) : cfg_(cfg), rng_(cfg.seed) {
  if (cfg.num_sites == 0) throw std::invalid_argument("crawler: num_sites == 0");
  if (cfg.universe_pages < cfg.num_sites) {
    throw std::invalid_argument("crawler: universe smaller than site count");
  }
  if (!(cfg.revisit_fraction >= 0.0 && cfg.revisit_fraction < 1.0)) {
    throw std::invalid_argument("crawler: revisit_fraction out of [0,1)");
  }
  if (cfg.site_size_exponent <= 1.0 || cfg.popularity_exponent <= 1.0) {
    throw std::invalid_argument("crawler: power-law exponents must exceed 1");
  }

  // Site sizes: power-law shares of the universe (min 1 page per site).
  std::vector<double> raw(cfg.num_sites);
  double raw_total = 0.0;
  for (auto& r : raw) {
    r = static_cast<double>(rng_.power_law(cfg.site_size_exponent, 1000));
    raw_total += r;
  }
  site_size_.resize(cfg.num_sites);
  site_offset_.resize(cfg.num_sites);
  for (std::uint32_t s = 0; s < cfg.num_sites; ++s) {
    const double share = raw[s] / raw_total;
    site_size_[s] = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(
               std::lround(share * static_cast<double>(cfg.universe_pages))));
    site_offset_[s] = total_pages_;
    total_pages_ += site_size_[s];
  }

  // Normalize the degree sampler to the requested mean (as SyntheticWeb).
  if (cfg.mean_out_degree > 0.0) {
    util::Rng probe(cfg.seed ^ 0x5bd1e995u);
    double mean = 0.0;
    constexpr int kProbes = 20000;
    for (int i = 0; i < kProbes; ++i) {
      mean += static_cast<double>(probe.power_law(kDegExponent, kDegCap));
    }
    degree_scale_ = cfg.mean_out_degree / (mean / kProbes);
  }

  // Seed the frontier with one entry page per site (the crawler is handed a
  // seed list, like a real one).
  for (std::uint32_t s = 0; s < cfg.num_sites; ++s) {
    frontier_.push_back(PageRef{s, 0});
    discovered_.insert(site_offset_[s]);
  }
}

std::string Crawler::url_of(PageRef p) const {
  return "site" + std::to_string(p.site) + ".edu/page" + std::to_string(p.index) +
         ".html";
}

std::vector<Crawler::PageRef> Crawler::links_of(PageRef p) const {
  // Content is a pure function of (seed, page): a private RNG stream per
  // page makes fetching idempotent and order-independent.
  util::Rng rng(util::hash_combine(util::mix64(cfg_.seed),
                                   site_offset_[p.site] + p.index));
  std::vector<PageRef> links;
  if (cfg_.mean_out_degree <= 0.0) return links;
  if (cfg_.dangling_fraction > 0.0 && rng.chance(cfg_.dangling_fraction)) {
    return links;
  }
  const double want =
      degree_scale_ * static_cast<double>(rng.power_law(kDegExponent, kDegCap));
  const auto degree =
      static_cast<std::uint32_t>(std::max(1.0, std::round(want)));
  links.reserve(degree);
  for (std::uint32_t k = 0; k < degree; ++k) {
    std::uint32_t target_site = p.site;
    if (cfg_.num_sites > 1 && !rng.chance(cfg_.intra_site_fraction)) {
      target_site = static_cast<std::uint32_t>(rng.below(cfg_.num_sites - 1));
      if (target_site >= p.site) ++target_site;
    }
    const auto idx = static_cast<std::uint32_t>(
        rng.power_law(cfg_.popularity_exponent, site_size_[target_site]) - 1);
    links.push_back(PageRef{target_site, idx});
  }
  return links;
}

void Crawler::fetch_one(PageRef p, bool revisit, std::vector<FetchedPage>& out) {
  const std::uint64_t flat = site_offset_[p.site] + p.index;
  auto links = links_of(p);

  FetchedPage page;
  page.url = url_of(p);
  page.revisit = revisit;
  page.out_urls.reserve(links.size());
  for (const PageRef t : links) {
    page.out_urls.push_back(url_of(t));
    const std::uint64_t tflat = site_offset_[t.site] + t.index;
    if (discovered_.insert(tflat).second && !fetched_.contains(tflat)) {
      frontier_.push_back(t);
    }
  }
  if (!revisit) {
    fetched_.insert(flat);
    fetched_order_.push_back(p);
    content_.emplace(flat, std::move(links));
  }
  out.push_back(std::move(page));
}

bool Crawler::try_restart() {
  // The frontier drained: jump to an undiscovered page, as a crawler does
  // when fed a fresh seed. Scan deterministically from a random start.
  if (fetched_.size() == total_pages_) return false;
  std::uint64_t probe = rng_.below(total_pages_);
  for (std::uint64_t step = 0; step < total_pages_; ++step) {
    const std::uint64_t flat = (probe + step) % total_pages_;
    if (!fetched_.contains(flat)) {
      // Convert flat index back to (site, index).
      const auto it = std::upper_bound(site_offset_.begin(), site_offset_.end(), flat);
      const auto site = static_cast<std::uint32_t>(it - site_offset_.begin() - 1);
      const auto index = static_cast<std::uint32_t>(flat - site_offset_[site]);
      discovered_.insert(flat);
      frontier_.push_back(PageRef{site, index});
      return true;
    }
  }
  return false;
}

std::vector<FetchedPage> Crawler::fetch(std::size_t count) {
  std::vector<FetchedPage> out;
  out.reserve(count);
  while (out.size() < count) {
    // Occasionally refresh an already-fetched page.
    if (!fetched_order_.empty() && cfg_.revisit_fraction > 0.0 &&
        rng_.chance(cfg_.revisit_fraction)) {
      const auto pick = rng_.below(fetched_order_.size());
      fetch_one(fetched_order_[pick], /*revisit=*/true, out);
      continue;
    }
    // Pop the next never-fetched frontier page.
    PageRef next{};
    bool found = false;
    while (!frontier_.empty()) {
      next = frontier_.front();
      frontier_.pop_front();
      if (!fetched_.contains(site_offset_[next.site] + next.index)) {
        found = true;
        break;
      }
    }
    if (!found) {
      if (!try_restart()) break;  // universe exhausted
      continue;
    }
    fetch_one(next, /*revisit=*/false, out);
  }
  return out;
}

graph::WebGraph Crawler::snapshot() const {
  graph::GraphBuilder builder;
  // Pages in fetch order keep their ids across snapshots.
  for (const PageRef p : fetched_order_) {
    builder.add_page(url_of(p), "site" + std::to_string(p.site) + ".edu");
  }
  for (const PageRef p : fetched_order_) {
    const std::uint64_t flat = site_offset_[p.site] + p.index;
    // add_page is idempotent: this just looks the id up.
    const auto from =
        builder.add_page(url_of(p), "site" + std::to_string(p.site) + ".edu");
    for (const PageRef t : content_.at(flat)) {
      builder.add_link_to_url(from, url_of(t));
    }
  }
  return std::move(builder).build();
}

}  // namespace p2prank::crawl
