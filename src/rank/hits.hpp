// HITS — Kleinberg's hubs & authorities algorithm (reference [1] of the
// paper, the other seminal link-analysis ranker its introduction contrasts
// with PageRank).
//
// For a page set (classically a query-focused subgraph; here any WebGraph):
//   authority(v) = Σ_{u -> v} hub(u)
//   hub(u)       = Σ_{u -> v} authority(v)
// iterated with L2 normalization each step until both vectors stabilize.
// Included as a baseline: the paper's argument that iterative link analysis
// needs synchronized global state applies equally to HITS, and the example
// programs use it to contrast "importance" notions.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/web_graph.hpp"
#include "util/thread_pool.hpp"

namespace p2prank::rank {

struct HitsOptions {
  double epsilon = 1e-10;  ///< L1 change of (hubs, authorities) to stop at
  /// HITS converges at the ratio of the top two singular values of the
  /// adjacency matrix, which web graphs can push close to 1 — allow many
  /// iterations by default.
  std::size_t max_iterations = 2000;
};

struct HitsResult {
  std::vector<double> authorities;  ///< L2-normalized
  std::vector<double> hubs;         ///< L2-normalized
  std::size_t iterations = 0;
  bool converged = false;
};

/// Run HITS over the whole graph. Both vectors are unit length in L2 (all
/// zeros for an edgeless graph).
[[nodiscard]] HitsResult hits(const graph::WebGraph& g, const HitsOptions& opts,
                              util::ThreadPool& pool);

}  // namespace p2prank::rank
