// Extrapolation-accelerated open-system solves.
//
// The paper's related work cites Kamvar et al., "Extrapolation Methods for
// Accelerating PageRank Computations" [8], and its conclusions list reducing
// convergence time as future work. This module implements the simplest
// member of that family — periodic Aitken Δ² extrapolation — for the
// open-system iteration R = A·R + f:
//
//   for each component i, given three consecutive iterates x0, x1, x2:
//       x*_i ≈ x2_i − (x2_i − x1_i)² / (x2_i − 2·x1_i + x0_i)
//
// For a contraction whose error is dominated by one eigendirection this
// jumps close to the fixed point; a safeguard skips components whose second
// difference is too small to divide by, and a full extrapolation step is
// only *accepted* if it does not increase the residual (extrapolation can
// misfire while several eigendirections still carry comparable error).
#pragma once

#include <span>

#include "rank/link_matrix.hpp"
#include "rank/rank_types.hpp"
#include "util/thread_pool.hpp"

namespace p2prank::rank {

struct AccelerationOptions {
  /// Apply Aitken extrapolation every `period` sweeps (>= 3; the scheme
  /// needs three consecutive iterates). 0 disables acceleration.
  std::size_t period = 8;
  /// Skip a component when |second difference| is below this floor.
  double denominator_floor = 1e-14;
};

/// Like solve_open_system, with periodic Aitken Δ² jumps. Extrapolation
/// jumps are not counted as iterations (they cost no matrix multiply);
/// SolveResult::iterations therefore counts sweeps, comparable with the
/// plain solver.
[[nodiscard]] SolveResult solve_open_system_aitken(const LinkMatrix& A,
                                                   std::span<const double> forcing,
                                                   std::span<const double> initial,
                                                   const SolveOptions& opts,
                                                   const AccelerationOptions& accel,
                                                   util::ThreadPool& pool);

}  // namespace p2prank::rank
