#include "rank/gauss_seidel.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace p2prank::rank {

double gauss_seidel_sweep(const LinkMatrix& A, std::span<double> ranks,
                          std::span<const double> forcing) {
  assert(ranks.size() == A.dimension());
  assert(forcing.size() == A.dimension());
  long double delta = 0.0L;
  for (std::size_t v = 0; v < A.dimension(); ++v) {
    double acc = forcing[v];
    const auto src = A.row_sources(v);
    const auto w = A.row_weights(v);
    for (std::size_t e = 0; e < src.size(); ++e) acc += ranks[src[e]] * w[e];
    delta += std::fabs(acc - ranks[v]);
    ranks[v] = acc;
  }
  return static_cast<double>(delta);
}

SolveResult solve_open_system_gauss_seidel(const LinkMatrix& A,
                                           std::span<const double> forcing,
                                           std::span<const double> initial,
                                           const SolveOptions& opts) {
  const std::size_t n = A.dimension();
  if (forcing.size() != n) {
    throw std::invalid_argument("gauss_seidel: forcing size mismatch");
  }
  if (!initial.empty() && initial.size() != n) {
    throw std::invalid_argument("gauss_seidel: initial size mismatch");
  }
  SolveResult result;
  result.ranks.assign(initial.begin(), initial.end());
  if (result.ranks.empty()) result.ranks.assign(n, 0.0);

  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    const double delta = gauss_seidel_sweep(A, result.ranks, forcing);
    ++result.iterations;
    result.final_delta = delta;
    if (opts.record_residuals) result.residual_history.push_back(delta);
    if (delta <= opts.epsilon) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace p2prank::rank
