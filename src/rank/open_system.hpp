// GroupPageRank — Algorithm 2 of the paper: solve the open-system fixed
// point R = A·R + βE + X for one page group, where X is rank flowing in over
// afferent links and βE is the virtual-link rank source.
//
// Convergence is unconditional: the paper's Theorems 3.1–3.3 apply because
// ||A||_∞ ≤ α < 1 (see LinkMatrix::contraction_norm), and Theorem 3.3 makes
// ||R_{i+1} − R_i||_1 a sound termination test with a computable error bound.
#pragma once

#include <span>

#include "rank/link_matrix.hpp"
#include "rank/rank_types.hpp"
#include "util/thread_pool.hpp"

namespace p2prank::rank {

/// One Jacobi sweep: out = A·in + forcing. `forcing` is βE + X (the caller
/// composes it). in/out must not alias. Runs the fused contribution kernel
/// and returns the sweep's L1/L∞ residual for free; `scratch` carries the
/// contribution vector across calls (no per-sweep allocation).
SweepStats open_system_sweep(const LinkMatrix& A, std::span<const double> in,
                             std::span<double> out, std::span<const double> forcing,
                             SweepScratch& scratch, util::ThreadPool& pool);

/// Convenience overload allocating its own scratch (fine for one-shot
/// sweeps; hot loops should hold a SweepScratch and use the overload above).
void open_system_sweep(const LinkMatrix& A, std::span<const double> in,
                       std::span<double> out, std::span<const double> forcing,
                       util::ThreadPool& pool);

/// Solve R = A·R + forcing from the given initial vector, iterating until
/// the L1 delta is <= opts.epsilon or max_iterations is hit. `initial` may
/// be empty (treated as the zero vector).
[[nodiscard]] SolveResult solve_open_system(const LinkMatrix& A,
                                            std::span<const double> forcing,
                                            std::span<const double> initial,
                                            const SolveOptions& opts,
                                            util::ThreadPool& pool);

/// Worklist variant of solve_open_system: iterates with the residual-driven
/// frontier kernel, carrying `state` across sweeps (and across calls, when
/// the caller reuses the same buffers). With wl.epsilon == 0 the iterate
/// sequence is bitwise-identical to solve_open_system; with wl.epsilon > 0
/// convergence is only accepted at a dense sweep (a confirmation sweep is
/// forced when a sparse residual first dips under opts.epsilon), so the
/// reported final_delta is always an exact residual.
[[nodiscard]] SolveResult solve_open_system_worklist(
    const LinkMatrix& A, std::span<const double> forcing,
    std::span<const double> initial, const SolveOptions& opts,
    const WorklistOptions& wl, WorklistState& state, util::ThreadPool& pool);

/// Convenience: uniform forcing βE with E(v) = e_value for all v, X = 0 —
/// the whole-crawl "centralized open-system" reference of Section 5 (what
/// distributed ranking must converge to).
[[nodiscard]] SolveResult solve_open_system_uniform(const LinkMatrix& A,
                                                    double e_value,
                                                    const SolveOptions& opts,
                                                    util::ThreadPool& pool);

/// A-priori error bound from Theorem 3.3: ||x* − x_m|| ≤ q/(1−q)·||x_m −
/// x_{m−1}|| with q = contraction norm. Returns that bound for a given
/// last delta.
[[nodiscard]] double theorem33_error_bound(double contraction_norm,
                                           double last_delta) noexcept;

}  // namespace p2prank::rank
