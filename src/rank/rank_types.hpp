// Shared options/result types for the ranking solvers.
#pragma once

#include <cstddef>
#include <vector>

namespace p2prank::rank {

/// Options for both the closed-system (Algorithm 1) and open-system
/// (Algorithm 2) solvers.
struct SolveOptions {
  /// Fraction of a page's rank transmitted over real links — the paper's α
  /// (= Google's damping factor c). The remaining β = 1 - α flows over the
  /// virtual complete graph and reappears as the βE term.
  double alpha = 0.85;
  /// Termination: stop when the L1 change between successive iterates drops
  /// to or below epsilon (Theorem 3.3 justifies this test).
  double epsilon = 1e-10;
  std::size_t max_iterations = 1000;
  /// Record ||R_{i+1} - R_i||_1 after each iteration into
  /// SolveResult::residual_history (costs one vector read per iteration).
  bool record_residuals = false;
};

struct SolveResult {
  std::vector<double> ranks;
  std::size_t iterations = 0;
  double final_delta = 0.0;  ///< last ||R_{i+1} - R_i||_1
  bool converged = false;
  std::vector<double> residual_history;  ///< filled iff record_residuals
};

[[nodiscard]] constexpr double beta_of(double alpha) noexcept { return 1.0 - alpha; }

}  // namespace p2prank::rank
