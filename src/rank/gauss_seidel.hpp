// Gauss–Seidel solve of the open-system equations.
//
// The paper's related work points at the parallel linear-solver literature
// ("iterative methods", reference [12]); Algorithm 2 is a Jacobi iteration.
// Gauss–Seidel sweeps in place — each row update immediately sees the rows
// already updated this sweep — which roughly halves the iteration count for
// diagonally dominant systems like these at the cost of being inherently
// sequential. Inside one page ranker that trade is often right: the paper's
// own bottleneck analysis (Table 1) shows exchange rounds cost hours while
// local CPU is cheap, but fewer *local* sweeps still shorten each DPR1
// outer step. DPR1-with-Gauss-Seidel is also exactly how the full
// distributed system behaves at the group level: groups consume the newest
// available data rather than waiting for a global barrier.
#pragma once

#include <span>

#include "rank/link_matrix.hpp"
#include "rank/rank_types.hpp"

namespace p2prank::rank {

/// One in-place Gauss–Seidel sweep: for each row v in ascending order,
/// r[v] = Σ A(v,u)·r[u] + forcing[v], reading the already-updated values of
/// earlier rows. Returns the L1 change of the sweep.
double gauss_seidel_sweep(const LinkMatrix& A, std::span<double> ranks,
                          std::span<const double> forcing);

/// Solve R = A·R + forcing by Gauss–Seidel iteration (sequential; use
/// solve_open_system for the parallel Jacobi variant). Same convergence
/// guarantee: ||A|| < 1 makes both contractions.
[[nodiscard]] SolveResult solve_open_system_gauss_seidel(
    const LinkMatrix& A, std::span<const double> forcing,
    std::span<const double> initial, const SolveOptions& opts);

}  // namespace p2prank::rank
