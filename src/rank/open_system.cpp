#include "rank/open_system.hpp"

#include <cassert>
#include <limits>
#include <stdexcept>
#include <utility>

namespace p2prank::rank {

SweepStats open_system_sweep(const LinkMatrix& A, std::span<const double> in,
                             std::span<double> out, std::span<const double> forcing,
                             SweepScratch& scratch, util::ThreadPool& pool) {
  assert(in.size() == A.dimension());
  assert(out.size() == A.dimension());
  assert(forcing.size() == A.dimension());
  assert(in.data() != out.data());
  return A.sweep_and_residual(in, out, forcing, scratch, pool);
}

void open_system_sweep(const LinkMatrix& A, std::span<const double> in,
                       std::span<double> out, std::span<const double> forcing,
                       util::ThreadPool& pool) {
  SweepScratch scratch;
  (void)open_system_sweep(A, in, out, forcing, scratch, pool);
}

SolveResult solve_open_system(const LinkMatrix& A, std::span<const double> forcing,
                              std::span<const double> initial,
                              const SolveOptions& opts, util::ThreadPool& pool) {
  const std::size_t n = A.dimension();
  if (forcing.size() != n) {
    throw std::invalid_argument("solve_open_system: forcing size mismatch");
  }
  if (!initial.empty() && initial.size() != n) {
    throw std::invalid_argument("solve_open_system: initial size mismatch");
  }

  SolveResult result;
  result.ranks.assign(initial.begin(), initial.end());
  if (result.ranks.empty()) result.ranks.assign(n, 0.0);
  std::vector<double> next(n, 0.0);
  SweepScratch scratch;

  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    // Fused sweep: the L1 residual is accumulated inside the sweep, so
    // there is no second full pass over R per iteration.
    const double delta =
        open_system_sweep(A, result.ranks, next, forcing, scratch, pool).l1_delta;
    std::swap(result.ranks, next);
    ++result.iterations;
    result.final_delta = delta;
    if (opts.record_residuals) result.residual_history.push_back(delta);
    if (delta <= opts.epsilon) {
      result.converged = true;
      break;
    }
  }
  return result;
}

SolveResult solve_open_system_worklist(const LinkMatrix& A,
                                       std::span<const double> forcing,
                                       std::span<const double> initial,
                                       const SolveOptions& opts,
                                       const WorklistOptions& wl,
                                       WorklistState& state,
                                       util::ThreadPool& pool) {
  const std::size_t n = A.dimension();
  if (forcing.size() != n) {
    throw std::invalid_argument("solve_open_system_worklist: forcing size mismatch");
  }
  if (!initial.empty() && initial.size() != n) {
    throw std::invalid_argument("solve_open_system_worklist: initial size mismatch");
  }

  SolveResult result;
  result.ranks.assign(initial.begin(), initial.end());
  if (result.ranks.empty()) result.ranks.assign(n, 0.0);
  std::vector<double> next(n, 0.0);
  SweepScratch scratch;

  bool confirm = false;
  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    const WorklistSweepStats stats = A.sweep_and_residual_worklist(
        result.ranks, next, forcing, scratch, state, wl, pool,
        /*force_dense=*/confirm);
    std::swap(result.ranks, next);
    ++result.iterations;
    result.final_delta = stats.l1_delta;
    if (opts.record_residuals) result.residual_history.push_back(stats.l1_delta);
    if (stats.l1_delta <= opts.epsilon) {
      // Sparse sweeps under-report the residual when epsilon > 0 (skipped
      // rows claim zero); accept only a dense sweep's exact residual and
      // force one to confirm otherwise.
      if (stats.dense || wl.epsilon == 0.0) {
        result.converged = true;
        break;
      }
      confirm = true;
    } else {
      confirm = false;
    }
  }
  return result;
}

SolveResult solve_open_system_uniform(const LinkMatrix& A, double e_value,
                                      const SolveOptions& opts,
                                      util::ThreadPool& pool) {
  // β comes from the matrix's α (the authoritative value) rather than from
  // opts, so a caller cannot desynchronize the two.
  const std::vector<double> forcing(A.dimension(), beta_of(A.alpha()) * e_value);
  return solve_open_system(A, forcing, {}, opts, pool);
}

double theorem33_error_bound(double contraction_norm, double last_delta) noexcept {
  if (contraction_norm >= 1.0) return std::numeric_limits<double>::infinity();
  return contraction_norm / (1.0 - contraction_norm) * last_delta;
}

}  // namespace p2prank::rank
