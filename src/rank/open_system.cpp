#include "rank/open_system.hpp"

#include <cassert>
#include <limits>
#include <stdexcept>
#include <utility>

#include "util/stats.hpp"

namespace p2prank::rank {

void open_system_sweep(const LinkMatrix& A, std::span<const double> in,
                       std::span<double> out, std::span<const double> forcing,
                       util::ThreadPool& pool) {
  assert(in.size() == A.dimension());
  assert(out.size() == A.dimension());
  assert(forcing.size() == A.dimension());
  assert(in.data() != out.data());
  A.multiply(in, out, pool);
  for (std::size_t v = 0; v < out.size(); ++v) out[v] += forcing[v];
}

SolveResult solve_open_system(const LinkMatrix& A, std::span<const double> forcing,
                              std::span<const double> initial,
                              const SolveOptions& opts, util::ThreadPool& pool) {
  const std::size_t n = A.dimension();
  if (forcing.size() != n) {
    throw std::invalid_argument("solve_open_system: forcing size mismatch");
  }
  if (!initial.empty() && initial.size() != n) {
    throw std::invalid_argument("solve_open_system: initial size mismatch");
  }

  SolveResult result;
  result.ranks.assign(initial.begin(), initial.end());
  if (result.ranks.empty()) result.ranks.assign(n, 0.0);
  std::vector<double> next(n, 0.0);

  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    open_system_sweep(A, result.ranks, next, forcing, pool);
    const double delta = util::l1_distance(next, result.ranks);
    std::swap(result.ranks, next);
    ++result.iterations;
    result.final_delta = delta;
    if (opts.record_residuals) result.residual_history.push_back(delta);
    if (delta <= opts.epsilon) {
      result.converged = true;
      break;
    }
  }
  return result;
}

SolveResult solve_open_system_uniform(const LinkMatrix& A, double e_value,
                                      const SolveOptions& opts,
                                      util::ThreadPool& pool) {
  // β comes from the matrix's α (the authoritative value) rather than from
  // opts, so a caller cannot desynchronize the two.
  const std::vector<double> forcing(A.dimension(), beta_of(A.alpha()) * e_value);
  return solve_open_system(A, forcing, {}, opts, pool);
}

double theorem33_error_bound(double contraction_norm, double last_delta) noexcept {
  if (contraction_norm >= 1.0) return std::numeric_limits<double>::infinity();
  return contraction_norm / (1.0 - contraction_norm) * last_delta;
}

}  // namespace p2prank::rank
