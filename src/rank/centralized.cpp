#include "rank/centralized.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

#include "util/stats.hpp"

namespace p2prank::rank {

SolveResult centralized_pagerank(const graph::WebGraph& g,
                                 const CentralizedOptions& opts,
                                 util::ThreadPool& pool,
                                 std::span<const double> personalization) {
  const std::size_t n = g.num_pages();
  if (n == 0) return {};
  if (!(opts.damping > 0.0 && opts.damping < 1.0)) {
    throw std::invalid_argument("centralized_pagerank: damping must be in (0,1)");
  }
  if (!personalization.empty() && personalization.size() != n) {
    throw std::invalid_argument("centralized_pagerank: personalization size mismatch");
  }

  // E normalized to a probability vector.
  std::vector<double> e(n, 1.0 / static_cast<double>(n));
  if (!personalization.empty()) {
    const double sum = util::accurate_sum(personalization);
    if (sum <= 0.0) {
      throw std::invalid_argument("centralized_pagerank: personalization must sum > 0");
    }
    for (std::size_t i = 0; i < n; ++i) e[i] = personalization[i] / sum;
  }

  // Precompute c / d(u); see CentralizedOptions::count_external_links for
  // which degree d(u) is.
  std::vector<double> push_weight(n, 0.0);
  for (graph::PageId u = 0; u < n; ++u) {
    const auto d = opts.count_external_links
                       ? static_cast<std::size_t>(g.out_degree(u))
                       : g.out_links(u).size();
    if (d > 0) push_weight[u] = opts.damping / static_cast<double>(d);
  }

  SolveResult result;
  result.ranks = e;  // R0 = S: start from the normalized source vector
  std::vector<double> next(n, 0.0);

  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    // next = c·A·R (pull over in-links; row-parallel).
    pool.parallel_for(n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t v = begin; v < end; ++v) {
        double acc = 0.0;
        for (const graph::PageId u : g.in_links(static_cast<graph::PageId>(v))) {
          acc += result.ranks[u] * push_weight[u];
        }
        next[v] = acc;
      }
    });
    // D = ||R_i||_1 - ||R_{i+1}||_1, reinjected via E (Algorithm 1's dE).
    const double lost = util::l1_norm(result.ranks) - util::l1_norm(next);
    for (std::size_t v = 0; v < n; ++v) next[v] += lost * e[v];

    const double delta = util::l1_distance(next, result.ranks);
    std::swap(result.ranks, next);
    ++result.iterations;
    result.final_delta = delta;
    if (opts.record_residuals) result.residual_history.push_back(delta);
    if (opts.on_iteration && !opts.on_iteration(result.ranks)) break;
    if (delta <= opts.epsilon) {
      result.converged = true;
      break;
    }
  }
  return result;
}

std::vector<graph::PageId> top_pages(std::span<const double> ranks, std::size_t k) {
  std::vector<graph::PageId> order(ranks.size());
  std::iota(order.begin(), order.end(), 0);
  k = std::min(k, order.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k),
                    order.end(), [&](graph::PageId a, graph::PageId b) {
                      if (ranks[a] != ranks[b]) return ranks[a] > ranks[b];
                      return a < b;
                    });
  order.resize(k);
  return order;
}

}  // namespace p2prank::rank
