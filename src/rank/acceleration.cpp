#include "rank/acceleration.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "rank/open_system.hpp"
#include "util/stats.hpp"

namespace p2prank::rank {

SolveResult solve_open_system_aitken(const LinkMatrix& A,
                                     std::span<const double> forcing,
                                     std::span<const double> initial,
                                     const SolveOptions& opts,
                                     const AccelerationOptions& accel,
                                     util::ThreadPool& pool) {
  if (accel.period == 0) {
    return solve_open_system(A, forcing, initial, opts, pool);
  }
  if (accel.period < 3) {
    throw std::invalid_argument("aitken: period must be >= 3 (or 0 to disable)");
  }
  const std::size_t n = A.dimension();
  if (forcing.size() != n) {
    throw std::invalid_argument("aitken: forcing size mismatch");
  }
  if (!initial.empty() && initial.size() != n) {
    throw std::invalid_argument("aitken: initial size mismatch");
  }

  SolveResult result;
  result.ranks.assign(initial.begin(), initial.end());
  if (result.ranks.empty()) result.ranks.assign(n, 0.0);
  std::vector<double> next(n, 0.0);
  std::vector<double> prev1(n, 0.0);  // x_{k-1}
  std::vector<double> prev2(n, 0.0);  // x_{k-2}
  std::vector<double> candidate(n, 0.0);
  std::size_t history = 0;  // consecutive sweeps recorded in prev1/prev2

  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    prev2 = prev1;
    prev1 = result.ranks;
    history = std::min<std::size_t>(history + 1, 3);

    open_system_sweep(A, result.ranks, next, forcing, pool);
    const double delta = util::l1_distance(next, result.ranks);
    std::swap(result.ranks, next);
    ++result.iterations;
    result.final_delta = delta;
    if (opts.record_residuals) result.residual_history.push_back(delta);
    if (delta <= opts.epsilon) {
      result.converged = true;
      break;
    }

    // Periodic extrapolation once three consecutive iterates exist.
    if (history >= 3 && result.iterations % accel.period == 0) {
      for (std::size_t i = 0; i < n; ++i) {
        const double d1 = result.ranks[i] - prev1[i];
        const double d2 = result.ranks[i] - 2.0 * prev1[i] + prev2[i];
        candidate[i] = std::fabs(d2) < accel.denominator_floor
                           ? result.ranks[i]
                           : result.ranks[i] - d1 * d1 / d2;
      }
      // Accept only if the residual of the extrapolated point is no worse:
      // compute one sweep from the candidate and compare deltas.
      open_system_sweep(A, candidate, next, forcing, pool);
      const double cand_delta = util::l1_distance(next, candidate);
      if (cand_delta < delta) {
        // Adopt the *post-sweep* point (the sweep is already paid for).
        result.ranks.swap(next);
        ++result.iterations;
        result.final_delta = cand_delta;
        if (opts.record_residuals) result.residual_history.push_back(cand_delta);
        history = 0;  // old history is stale after the jump
        if (cand_delta <= opts.epsilon) {
          result.converged = true;
          break;
        }
      }
    }
  }
  return result;
}

}  // namespace p2prank::rank
