#include "rank/link_matrix.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_map>

namespace p2prank::rank {

namespace {

void check_alpha(double alpha) {
  if (!(alpha > 0.0 && alpha < 1.0)) {
    throw std::invalid_argument("LinkMatrix: alpha must be in (0, 1)");
  }
}

}  // namespace

LinkMatrix LinkMatrix::from_graph(const graph::WebGraph& g, double alpha) {
  check_alpha(alpha);
  const std::size_t n = g.num_pages();
  LinkMatrix m;
  m.alpha_ = alpha;
  m.offsets_.assign(n + 1, 0);
  for (graph::PageId v = 0; v < n; ++v) {
    m.offsets_[v + 1] = m.offsets_[v] + g.in_links(v).size();
  }
  m.sources_.resize(m.offsets_[n]);
  m.weights_.resize(m.offsets_[n]);
  std::uint64_t pos = 0;
  for (graph::PageId v = 0; v < n; ++v) {
    for (const graph::PageId u : g.in_links(v)) {
      m.sources_[pos] = u;
      m.weights_[pos] = alpha / static_cast<double>(g.out_degree(u));
      ++pos;
    }
  }
  return m;
}

LinkMatrix LinkMatrix::from_subset(const graph::WebGraph& g,
                                   std::span<const graph::PageId> pages,
                                   double alpha) {
  check_alpha(alpha);
  assert(std::is_sorted(pages.begin(), pages.end()));

  // Global -> local index for membership tests.
  std::unordered_map<graph::PageId, std::uint32_t> local;
  local.reserve(pages.size());
  for (std::uint32_t i = 0; i < pages.size(); ++i) local.emplace(pages[i], i);

  LinkMatrix m;
  m.alpha_ = alpha;
  m.offsets_.assign(pages.size() + 1, 0);

  // Count in-subset in-edges per local destination.
  for (std::uint32_t i = 0; i < pages.size(); ++i) {
    std::uint64_t count = 0;
    for (const graph::PageId u : g.in_links(pages[i])) {
      if (local.contains(u)) ++count;
    }
    m.offsets_[i + 1] = m.offsets_[i] + count;
  }
  m.sources_.resize(m.offsets_.back());
  m.weights_.resize(m.offsets_.back());
  std::uint64_t pos = 0;
  for (std::uint32_t i = 0; i < pages.size(); ++i) {
    for (const graph::PageId u : g.in_links(pages[i])) {
      const auto it = local.find(u);
      if (it == local.end()) continue;
      m.sources_[pos] = it->second;
      m.weights_[pos] = alpha / static_cast<double>(g.out_degree(u));
      ++pos;
    }
  }
  assert(pos == m.sources_.size());
  return m;
}

void LinkMatrix::multiply(std::span<const double> x, std::span<double> y) const {
  assert(x.size() == dimension() && y.size() == dimension());
  for (std::size_t v = 0; v < dimension(); ++v) {
    double acc = 0.0;
    const auto src = row_sources(v);
    const auto w = row_weights(v);
    for (std::size_t e = 0; e < src.size(); ++e) acc += x[src[e]] * w[e];
    y[v] = acc;
  }
}

void LinkMatrix::multiply(std::span<const double> x, std::span<double> y,
                          util::ThreadPool& pool) const {
  assert(x.size() == dimension() && y.size() == dimension());
  // Small systems are not worth the fork/join overhead.
  if (num_entries() < 1u << 14) {
    multiply(x, y);
    return;
  }
  pool.parallel_for(dimension(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t v = begin; v < end; ++v) {
      double acc = 0.0;
      const auto src = row_sources(v);
      const auto w = row_weights(v);
      for (std::size_t e = 0; e < src.size(); ++e) acc += x[src[e]] * w[e];
      y[v] = acc;
    }
  });
}

double LinkMatrix::contraction_norm() const noexcept {
  std::vector<double> out_weight(dimension(), 0.0);
  for (std::size_t e = 0; e < sources_.size(); ++e) {
    out_weight[sources_[e]] += weights_[e];
  }
  double max_w = 0.0;
  for (const double w : out_weight) max_w = std::max(max_w, w);
  return max_w;
}

}  // namespace p2prank::rank
