#include "rank/link_matrix.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace p2prank::rank {

namespace {

void check_alpha(double alpha) {
  if (!(alpha > 0.0 && alpha < 1.0)) {
    throw std::invalid_argument("LinkMatrix: alpha must be in (0, 1)");
  }
}

constexpr std::uint32_t kAbsent = std::numeric_limits<std::uint32_t>::max();

}  // namespace

void LinkMatrix::finish_layout() {
  const std::size_t dim = dimension();
  out_offsets_.assign(dim + 1, 0);
  if (dim == 0) {
    sweep_grain_ = 64;
    return;
  }
  // Size grains to ~64KB of hot row data each: 12 bytes per edge (4B source
  // index + 8B contribution gather) plus the 8B y write per row. The grain
  // is a function of the matrix alone — never the pool — which fixes the FP
  // combine order of fused residual partials (determinism contract). Grains
  // are rounded up to a multiple of 64 rows so every grain owns whole words
  // of the worklist bitmaps (64 rows/word): no two grains ever write the
  // same dirty/differ word.
  constexpr std::size_t kGrainBytes = 64 * 1024;
  const std::size_t bytes = num_entries() * 12 + dim * 8;
  const std::size_t per_row = std::max<std::size_t>(1, bytes / dim);
  sweep_grain_ = std::clamp<std::size_t>(kGrainBytes / per_row, 1, dim);
  sweep_grain_ = (sweep_grain_ + 63) / 64 * 64;

  // Push CSR (the transpose: per source, its in-matrix destinations) via a
  // counting sort over the pull edges. Costs 4B/edge + 8B/row of memory and
  // one O(E) pass; the worklist kernel scatters frontier bits through it.
  for (const std::uint32_t u : sources_) ++out_offsets_[u + 1];
  for (std::size_t u = 0; u < dim; ++u) out_offsets_[u + 1] += out_offsets_[u];
  out_targets_.resize(sources_.size());
  std::vector<std::uint64_t> cursor(out_offsets_.begin(), out_offsets_.end() - 1);
  for (std::size_t v = 0; v < dim; ++v) {
    for (std::uint64_t e = offsets_[v]; e < offsets_[v + 1]; ++e) {
      out_targets_[cursor[sources_[e]]++] = static_cast<std::uint32_t>(v);
    }
  }
}

LinkMatrix LinkMatrix::from_graph(const graph::WebGraph& g, double alpha) {
  check_alpha(alpha);
  const std::size_t n = g.num_pages();
  LinkMatrix m;
  m.alpha_ = alpha;
  m.offsets_.assign(n + 1, 0);
  // Per-source weight α/d_global(u); edges replicate these exact doubles so
  // the contribution sweep is bitwise-identical to the per-edge multiply.
  m.source_weight_.resize(n);
  for (graph::PageId u = 0; u < n; ++u) {
    const auto d = g.out_degree(u);
    m.source_weight_[u] = d > 0 ? alpha / static_cast<double>(d) : 0.0;
  }
  for (graph::PageId v = 0; v < n; ++v) {
    m.offsets_[v + 1] = m.offsets_[v] + g.in_links(v).size();
  }
  m.sources_.resize(m.offsets_[n]);
  m.weights_.resize(m.offsets_[n]);
  std::uint64_t pos = 0;
  for (graph::PageId v = 0; v < n; ++v) {
    for (const graph::PageId u : g.in_links(v)) {
      m.sources_[pos] = u;
      m.weights_[pos] = m.source_weight_[u];
      ++pos;
    }
  }
  m.finish_layout();
  return m;
}

LinkMatrix LinkMatrix::from_subset(const graph::WebGraph& g,
                                   std::span<const graph::PageId> pages,
                                   double alpha) {
  check_alpha(alpha);
  assert(std::is_sorted(pages.begin(), pages.end()));

  // Global -> local index. Pages are sorted, so membership is a binary
  // search; when the id range is tight, a dense table is cheaper still. No
  // hashing either way — this runs on every crash/rewire in the engine.
  const graph::PageId base = pages.empty() ? 0 : pages.front();
  const std::uint64_t range =
      pages.empty() ? 0
                    : static_cast<std::uint64_t>(pages.back()) - base + 1;
  const bool use_dense =
      !pages.empty() &&
      range <= std::max<std::uint64_t>(4096, 8 * static_cast<std::uint64_t>(pages.size()));
  std::vector<std::uint32_t> dense;
  if (use_dense) {
    dense.assign(range, kAbsent);
    for (std::uint32_t i = 0; i < pages.size(); ++i) dense[pages[i] - base] = i;
  }
  const auto local_of = [&](graph::PageId u) -> std::uint32_t {
    if (use_dense) {
      if (u < base || u - base >= range) return kAbsent;
      return dense[u - base];
    }
    const auto it = std::lower_bound(pages.begin(), pages.end(), u);
    if (it == pages.end() || *it != u) return kAbsent;
    return static_cast<std::uint32_t>(it - pages.begin());
  };

  LinkMatrix m;
  m.alpha_ = alpha;
  m.offsets_.assign(pages.size() + 1, 0);
  m.source_weight_.resize(pages.size());
  for (std::uint32_t i = 0; i < pages.size(); ++i) {
    const auto d = g.out_degree(pages[i]);
    m.source_weight_[i] = d > 0 ? alpha / static_cast<double>(d) : 0.0;
  }

  // Count in-subset in-edges per local destination.
  for (std::uint32_t i = 0; i < pages.size(); ++i) {
    std::uint64_t count = 0;
    for (const graph::PageId u : g.in_links(pages[i])) {
      if (local_of(u) != kAbsent) ++count;
    }
    m.offsets_[i + 1] = m.offsets_[i] + count;
  }
  m.sources_.resize(m.offsets_.back());
  m.weights_.resize(m.offsets_.back());
  std::uint64_t pos = 0;
  for (std::uint32_t i = 0; i < pages.size(); ++i) {
    for (const graph::PageId u : g.in_links(pages[i])) {
      const std::uint32_t local = local_of(u);
      if (local == kAbsent) continue;
      m.sources_[pos] = local;
      m.weights_[pos] = m.source_weight_[local];
      ++pos;
    }
  }
  assert(pos == m.sources_.size());
  m.finish_layout();
  return m;
}

namespace {

// All kernels accumulate rows with this exact two-lane pattern (even edges
// into lane 0, odd into lane 1, lanes combined once at the end). Two
// in-flight adds hide the FP-add latency that a single serial chain exposes
// on short rows, and sharing the pattern is what makes the weighted and
// contribution kernels bitwise-identical.
inline double row_sum_contribution(const double* contrib, const std::uint32_t* sources,
                                   std::uint64_t begin, std::uint64_t end) noexcept {
  double acc0 = 0.0;
  double acc1 = 0.0;
  std::uint64_t e = begin;
  for (; e + 1 < end; e += 2) {
    acc0 += contrib[sources[e]];
    acc1 += contrib[sources[e + 1]];
  }
  if (e < end) acc0 += contrib[sources[e]];
  return acc0 + acc1;
}

inline double row_sum_weighted(const double* x, const std::uint32_t* sources,
                               const double* weights, std::uint64_t begin,
                               std::uint64_t end) noexcept {
  double acc0 = 0.0;
  double acc1 = 0.0;
  std::uint64_t e = begin;
  for (; e + 1 < end; e += 2) {
    acc0 += x[sources[e]] * weights[e];
    acc1 += x[sources[e + 1]] * weights[e + 1];
  }
  if (e < end) acc0 += x[sources[e]] * weights[e];
  return acc0 + acc1;
}

}  // namespace

void LinkMatrix::multiply(std::span<const double> x, std::span<double> y) const {
  assert(x.size() == dimension() && y.size() == dimension());
  const std::uint32_t* const sources = sources_.data();
  const double* const weights = weights_.data();
  for (std::size_t v = 0; v < dimension(); ++v) {
    y[v] = row_sum_weighted(x.data(), sources, weights, offsets_[v], offsets_[v + 1]);
  }
}

void LinkMatrix::multiply(std::span<const double> x, std::span<double> y,
                          util::ThreadPool& pool) const {
  assert(x.size() == dimension() && y.size() == dimension());
  // Small systems are not worth the fork/join overhead.
  if (num_entries() < 1u << 14) {
    multiply(x, y);
    return;
  }
  const std::uint32_t* const sources = sources_.data();
  const double* const weights = weights_.data();
  pool.parallel_for(dimension(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t v = begin; v < end; ++v) {
      y[v] = row_sum_weighted(x.data(), sources, weights, offsets_[v], offsets_[v + 1]);
    }
  });
}

void LinkMatrix::sweep(std::span<const double> x, std::span<double> y,
                       SweepScratch& scratch) const {
  assert(x.size() == dimension() && y.size() == dimension());
  const std::size_t dim = dimension();
  scratch.contrib.resize(dim);
  double* const contrib = scratch.contrib.data();
  const double* const sw = source_weight_.data();
  for (std::size_t u = 0; u < dim; ++u) contrib[u] = x[u] * sw[u];
  const std::uint32_t* const sources = sources_.data();
  for (std::size_t v = 0; v < dim; ++v) {
    y[v] = row_sum_contribution(contrib, sources, offsets_[v], offsets_[v + 1]);
  }
}

void LinkMatrix::sweep(std::span<const double> x, std::span<double> y,
                       SweepScratch& scratch, util::ThreadPool& pool) const {
  assert(x.size() == dimension() && y.size() == dimension());
  const std::size_t dim = dimension();
  scratch.contrib.resize(dim);
  double* const contrib = scratch.contrib.data();
  const double* const sw = source_weight_.data();
  pool.parallel_for(dim, [&](std::size_t begin, std::size_t end) {
    for (std::size_t u = begin; u < end; ++u) contrib[u] = x[u] * sw[u];
  });
  const std::uint32_t* const sources = sources_.data();
  pool.parallel_for_grains(
      dim, sweep_grain_,
      [&](std::size_t /*grain*/, std::size_t begin, std::size_t end) {
        for (std::size_t v = begin; v < end; ++v) {
          y[v] = row_sum_contribution(contrib, sources, offsets_[v], offsets_[v + 1]);
        }
      });
}

SweepStats LinkMatrix::sweep_and_residual(std::span<const double> in,
                                          std::span<double> out,
                                          std::span<const double> forcing,
                                          SweepScratch& scratch,
                                          util::ThreadPool& pool) const {
  const std::size_t dim = dimension();
  assert(in.size() == dim && out.size() == dim);
  assert(forcing.empty() || forcing.size() == dim);
  assert(in.data() != out.data());
  scratch.contrib.resize(dim);
  const std::size_t total = util::ThreadPool::num_grains(dim, sweep_grain_);
  scratch.partial_l1.assign(total, 0.0);
  scratch.partial_linf.assign(total, 0.0);

  double* const contrib = scratch.contrib.data();
  const double* const sw = source_weight_.data();
  pool.parallel_for(dim, [&](std::size_t begin, std::size_t end) {
    for (std::size_t u = begin; u < end; ++u) contrib[u] = in[u] * sw[u];
  });

  const std::uint32_t* const sources = sources_.data();
  const double* const force = forcing.empty() ? nullptr : forcing.data();
  pool.parallel_for_grains(
      dim, sweep_grain_,
      [&](std::size_t grain, std::size_t begin, std::size_t end) {
        double l1 = 0.0;
        double linf = 0.0;
        for (std::size_t v = begin; v < end; ++v) {
          double acc =
              row_sum_contribution(contrib, sources, offsets_[v], offsets_[v + 1]);
          if (force != nullptr) acc += force[v];
          const double diff = std::fabs(acc - in[v]);
          l1 += diff;
          if (diff > linf) linf = diff;
          out[v] = acc;
        }
        scratch.partial_l1[grain] = l1;
        scratch.partial_linf[grain] = linf;
      });

  SweepStats stats;
  for (std::size_t g = 0; g < total; ++g) {
    stats.l1_delta += scratch.partial_l1[g];
    stats.linf_delta = std::max(stats.linf_delta, scratch.partial_linf[g]);
  }
  return stats;
}

namespace {

inline std::uint64_t bits_of(double v) noexcept {
  return std::bit_cast<std::uint64_t>(v);
}

}  // namespace

WorklistSweepStats LinkMatrix::sweep_and_residual_worklist(
    std::span<const double> in, std::span<double> out,
    std::span<const double> forcing, SweepScratch& scratch,
    WorklistState& state, const WorklistOptions& opts, util::ThreadPool& pool,
    bool force_dense) const {
  const std::size_t dim = dimension();
  assert(in.size() == dim && out.size() == dim);
  assert(forcing.empty() || forcing.size() == dim);
  assert(in.data() != out.data());
  WorklistSweepStats stats;
  stats.dense = true;
  if (dim == 0) return stats;

  const std::size_t words = (dim + 63) / 64;
  const std::size_t total = util::ThreadPool::num_grains(dim, sweep_grain_);
  scratch.partial_l1.assign(total, 0.0);
  scratch.partial_linf.assign(total, 0.0);

  if (state.contrib.size() != dim || state.grain_edges.size() != total) {
    state.contrib.assign(dim, 0.0);
    state.differ.assign(words, 0);
    state.dirty.assign(words, 0);
    state.src_active.assign(words, 0);
    state.forcing_dirty.assign(words, 0);
    state.grain_edges.assign(total, 0);
    state.primed = false;
  }
  // The differ bitmap is a statement about one specific buffer pair; an
  // unfamiliar pair (fresh solve, reallocated vectors) forces a dense sweep.
  const bool pair_ok =
      (state.pair_a == in.data() && state.pair_b == out.data()) ||
      (state.pair_a == out.data() && state.pair_b == in.data());
  if (!pair_ok) {
    state.primed = false;
    state.pair_a = in.data();
    state.pair_b = out.data();
  }

  const double* const sw = source_weight_.data();
  const std::uint32_t* const sources = sources_.data();
  const double* const force = forcing.empty() ? nullptr : forcing.data();
  double* const contrib = state.contrib.data();
  std::uint64_t* const differ = state.differ.data();
  std::uint64_t* const dirty = state.dirty.data();
  std::uint64_t* const src_active = state.src_active.data();
  const std::uint64_t* const out_off = out_offsets_.data();
  const double eps = opts.epsilon;

  bool dense = force_dense || !state.primed ||
               (opts.full_interval > 0 &&
                state.sweeps_since_dense + 1 >= opts.full_interval);

  // A contracted frontier costs less to sweep than a fork-join wake-up, so
  // when the actual work (rows or edges, per the caller's hint) is below
  // the pool's inline cutoff, run the grain list serially in list order —
  // the same order as the pool's own inline path, hence bitwise-identical
  // results either way.
  const auto for_grains_subset = [&](std::uint64_t work_hint, auto&& fn) {
    if (work_hint <= util::ThreadPool::kInlineCutoff) {
      for (const std::uint32_t g : state.active_grains) {
        const std::size_t begin = g * sweep_grain_;
        fn(g, begin, std::min(dim, begin + sweep_grain_));
      }
      return;
    }
    pool.parallel_for_grains_subset(state.active_grains, dim, sweep_grain_, fn);
  };

  if (!dense) {
    // Phase A (frontier pull side): exactly the rows whose value changed
    // last sweep — the differ bits — can have a new contribution. Refresh
    // those lazily and tally which moved enough to propagate. Grains are
    // 64-aligned, so each active grain owns whole bitmap words.
    std::fill(state.dirty.begin(), state.dirty.end(), 0);
    std::fill(state.src_active.begin(), state.src_active.end(), 0);
    std::fill(state.grain_edges.begin(), state.grain_edges.end(), 0);
    state.active_grains.clear();
    std::uint64_t differ_rows = 0;
    for (std::size_t g = 0; g < total; ++g) {
      const std::size_t w_begin = g * sweep_grain_ / 64;
      const std::size_t w_end =
          std::min(words, (std::min(dim, (g + 1) * sweep_grain_) + 63) / 64);
      std::uint64_t rows = 0;
      for (std::size_t w = w_begin; w < w_end; ++w) {
        rows += static_cast<std::uint64_t>(std::popcount(differ[w]));
      }
      if (rows != 0) {
        state.active_grains.push_back(static_cast<std::uint32_t>(g));
        differ_rows += rows;
      }
    }
    for_grains_subset(
        differ_rows,
        [&](std::size_t g, std::size_t begin, std::size_t end) {
          std::uint64_t edges = 0;
          const std::size_t w_begin = begin / 64;
          const std::size_t w_end = (end + 63) / 64;
          for (std::size_t w = w_begin; w < w_end; ++w) {
            std::uint64_t bits = differ[w];
            std::uint64_t active = 0;
            while (bits != 0) {
              const int b = std::countr_zero(bits);
              bits &= bits - 1;
              const std::size_t u = w * 64 + static_cast<std::size_t>(b);
              const double c = in[u] * sw[u];
              // Exact mode propagates any bitwise change; thresholded mode
              // propagates once the drift since the last propagated value
              // exceeds epsilon (Gauss–Southwell-style accumulation).
              const bool moved = eps == 0.0 ? bits_of(c) != bits_of(contrib[u])
                                            : std::fabs(c - contrib[u]) > eps;
              if (moved) {
                contrib[u] = c;
                active |= std::uint64_t{1} << b;
                edges += out_off[u + 1] - out_off[u];
              }
            }
            src_active[w] = active;
          }
          state.grain_edges[g] = edges;
        });

    // Push–pull switch (beedrill hybrid_bfs idiom): integer tallies combined
    // in grain order, so the decision is pool-independent. A huge frontier
    // makes the scatter pointless — fall back to the dense pull sweep.
    std::uint64_t active_edges = 0;
    for (const std::uint32_t g : state.active_grains) {
      active_edges += state.grain_edges[g];
    }
    if (static_cast<double>(active_edges) >
        opts.push_density * static_cast<double>(num_entries())) {
      dense = true;
    } else {
      // Push phase: scatter dirty bits along out-edges of active sources.
      // fetch_or is idempotent, so racing scatters commute and the final
      // bitmap — all later phases' inputs — is deterministic.
      for_grains_subset(
          active_edges,
          [&](std::size_t /*g*/, std::size_t begin, std::size_t end) {
            const std::size_t w_begin = begin / 64;
            const std::size_t w_end = (end + 63) / 64;
            for (std::size_t w = w_begin; w < w_end; ++w) {
              std::uint64_t bits = src_active[w];
              while (bits != 0) {
                const int b = std::countr_zero(bits);
                bits &= bits - 1;
                const std::size_t u = w * 64 + static_cast<std::size_t>(b);
                for (std::uint64_t e = out_off[u]; e < out_off[u + 1]; ++e) {
                  const std::uint32_t t = out_targets_[e];
                  std::atomic_ref<std::uint64_t> word(dirty[t >> 6]);
                  word.fetch_or(std::uint64_t{1} << (t & 63),
                                std::memory_order_relaxed);
                }
              }
            }
          });
    }
  }

  if (!dense) {
    // Rows whose forcing changed must recompute even with a quiet frontier.
    std::uint64_t computed = 0;
    std::uint64_t copied = 0;
    for (std::size_t w = 0; w < words; ++w) {
      dirty[w] |= state.forcing_dirty[w];
      computed += static_cast<std::uint64_t>(std::popcount(dirty[w]));
      copied += static_cast<std::uint64_t>(std::popcount(differ[w] & ~dirty[w]));
    }
    state.active_grains.clear();
    for (std::size_t g = 0; g < total; ++g) {
      const std::size_t w_begin = g * sweep_grain_ / 64;
      const std::size_t w_end =
          std::min(words, (std::min(dim, (g + 1) * sweep_grain_) + 63) / 64);
      for (std::size_t w = w_begin; w < w_end; ++w) {
        if ((dirty[w] | differ[w]) != 0) {
          state.active_grains.push_back(static_cast<std::uint32_t>(g));
          break;
        }
      }
    }

    // Sparse sweep: recompute dirty rows, copy rows where the buffers still
    // disagree, skip the rest (their out already bitwise equals what a
    // recompute would produce — see DESIGN.md §6 for the induction). Skipped
    // rows have an exactly-zero residual in exact mode, and partials of
    // untouched grains stay +0.0, so the grain-order combine is bitwise the
    // dense combine.
    for_grains_subset(
        computed + copied,
        [&](std::size_t g, std::size_t begin, std::size_t end) {
          double l1 = 0.0;
          double linf = 0.0;
          const std::size_t w_begin = begin / 64;
          const std::size_t w_end = (end + 63) / 64;
          for (std::size_t w = w_begin; w < w_end; ++w) {
            const std::uint64_t recompute = dirty[w];
            const std::uint64_t carry = differ[w] & ~recompute;
            std::uint64_t changed = 0;
            std::uint64_t bits = recompute;
            while (bits != 0) {
              const int b = std::countr_zero(bits);
              bits &= bits - 1;
              const std::size_t v = w * 64 + static_cast<std::size_t>(b);
              double acc = row_sum_contribution(contrib, sources, offsets_[v],
                                                offsets_[v + 1]);
              if (force != nullptr) acc += force[v];
              const double diff = std::fabs(acc - in[v]);
              l1 += diff;
              if (diff > linf) linf = diff;
              out[v] = acc;
              if (bits_of(acc) != bits_of(in[v])) {
                changed |= std::uint64_t{1} << b;
              }
            }
            bits = carry;
            while (bits != 0) {
              const int b = std::countr_zero(bits);
              bits &= bits - 1;
              const std::size_t v = w * 64 + static_cast<std::size_t>(b);
              out[v] = in[v];
            }
            differ[w] = changed;
          }
          scratch.partial_l1[g] = l1;
          scratch.partial_linf[g] = linf;
        });

    state.rows_computed += computed;
    state.rows_copied += copied;
    ++state.sweeps_since_dense;
    stats.dense = false;
  } else {
    // Dense sweep: bitwise-identical row loop to sweep_and_residual, plus
    // refreshing every contribution and rebuilding the differ bitmap.
    pool.parallel_for(dim, [&](std::size_t begin, std::size_t end) {
      for (std::size_t u = begin; u < end; ++u) contrib[u] = in[u] * sw[u];
    });
    pool.parallel_for_grains(
        dim, sweep_grain_,
        [&](std::size_t grain, std::size_t begin, std::size_t end) {
          double l1 = 0.0;
          double linf = 0.0;
          std::uint64_t changed = 0;
          for (std::size_t v = begin; v < end; ++v) {
            double acc = row_sum_contribution(contrib, sources, offsets_[v],
                                              offsets_[v + 1]);
            if (force != nullptr) acc += force[v];
            const double diff = std::fabs(acc - in[v]);
            l1 += diff;
            if (diff > linf) linf = diff;
            out[v] = acc;
            if (bits_of(acc) != bits_of(in[v])) {
              changed |= std::uint64_t{1} << (v & 63);
            }
            if ((v & 63) == 63 || v + 1 == end) {
              differ[v >> 6] = changed;
              changed = 0;
            }
          }
          scratch.partial_l1[grain] = l1;
          scratch.partial_linf[grain] = linf;
        });
    state.rows_computed += dim;
    ++state.dense_sweeps;
    state.sweeps_since_dense = 0;
    state.primed = true;
  }

  ++state.sweeps;
  std::fill(state.forcing_dirty.begin(), state.forcing_dirty.end(), 0);
  for (std::size_t g = 0; g < total; ++g) {
    stats.l1_delta += scratch.partial_l1[g];
    stats.linf_delta = std::max(stats.linf_delta, scratch.partial_linf[g]);
  }
  return stats;
}

double LinkMatrix::contraction_norm() const noexcept {
  std::vector<double> out_weight(dimension(), 0.0);
  for (std::size_t e = 0; e < sources_.size(); ++e) {
    out_weight[sources_[e]] += weights_[e];
  }
  double max_w = 0.0;
  for (const double w : out_weight) max_w = std::max(max_w, w);
  return max_w;
}

}  // namespace p2prank::rank
