#include "rank/link_matrix.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace p2prank::rank {

namespace {

void check_alpha(double alpha) {
  if (!(alpha > 0.0 && alpha < 1.0)) {
    throw std::invalid_argument("LinkMatrix: alpha must be in (0, 1)");
  }
}

constexpr std::uint32_t kAbsent = std::numeric_limits<std::uint32_t>::max();

}  // namespace

void LinkMatrix::finish_layout() {
  const std::size_t dim = dimension();
  if (dim == 0) {
    sweep_grain_ = 1;
    return;
  }
  // Size grains to ~64KB of hot row data each: 12 bytes per edge (4B source
  // index + 8B contribution gather) plus the 8B y write per row. The grain
  // is a function of the matrix alone — never the pool — which fixes the FP
  // combine order of fused residual partials (determinism contract).
  constexpr std::size_t kGrainBytes = 64 * 1024;
  const std::size_t bytes = num_entries() * 12 + dim * 8;
  const std::size_t per_row = std::max<std::size_t>(1, bytes / dim);
  sweep_grain_ = std::clamp<std::size_t>(kGrainBytes / per_row, 1, dim);
}

LinkMatrix LinkMatrix::from_graph(const graph::WebGraph& g, double alpha) {
  check_alpha(alpha);
  const std::size_t n = g.num_pages();
  LinkMatrix m;
  m.alpha_ = alpha;
  m.offsets_.assign(n + 1, 0);
  // Per-source weight α/d_global(u); edges replicate these exact doubles so
  // the contribution sweep is bitwise-identical to the per-edge multiply.
  m.source_weight_.resize(n);
  for (graph::PageId u = 0; u < n; ++u) {
    const auto d = g.out_degree(u);
    m.source_weight_[u] = d > 0 ? alpha / static_cast<double>(d) : 0.0;
  }
  for (graph::PageId v = 0; v < n; ++v) {
    m.offsets_[v + 1] = m.offsets_[v] + g.in_links(v).size();
  }
  m.sources_.resize(m.offsets_[n]);
  m.weights_.resize(m.offsets_[n]);
  std::uint64_t pos = 0;
  for (graph::PageId v = 0; v < n; ++v) {
    for (const graph::PageId u : g.in_links(v)) {
      m.sources_[pos] = u;
      m.weights_[pos] = m.source_weight_[u];
      ++pos;
    }
  }
  m.finish_layout();
  return m;
}

LinkMatrix LinkMatrix::from_subset(const graph::WebGraph& g,
                                   std::span<const graph::PageId> pages,
                                   double alpha) {
  check_alpha(alpha);
  assert(std::is_sorted(pages.begin(), pages.end()));

  // Global -> local index. Pages are sorted, so membership is a binary
  // search; when the id range is tight, a dense table is cheaper still. No
  // hashing either way — this runs on every crash/rewire in the engine.
  const graph::PageId base = pages.empty() ? 0 : pages.front();
  const std::uint64_t range =
      pages.empty() ? 0
                    : static_cast<std::uint64_t>(pages.back()) - base + 1;
  const bool use_dense =
      !pages.empty() &&
      range <= std::max<std::uint64_t>(4096, 8 * static_cast<std::uint64_t>(pages.size()));
  std::vector<std::uint32_t> dense;
  if (use_dense) {
    dense.assign(range, kAbsent);
    for (std::uint32_t i = 0; i < pages.size(); ++i) dense[pages[i] - base] = i;
  }
  const auto local_of = [&](graph::PageId u) -> std::uint32_t {
    if (use_dense) {
      if (u < base || u - base >= range) return kAbsent;
      return dense[u - base];
    }
    const auto it = std::lower_bound(pages.begin(), pages.end(), u);
    if (it == pages.end() || *it != u) return kAbsent;
    return static_cast<std::uint32_t>(it - pages.begin());
  };

  LinkMatrix m;
  m.alpha_ = alpha;
  m.offsets_.assign(pages.size() + 1, 0);
  m.source_weight_.resize(pages.size());
  for (std::uint32_t i = 0; i < pages.size(); ++i) {
    const auto d = g.out_degree(pages[i]);
    m.source_weight_[i] = d > 0 ? alpha / static_cast<double>(d) : 0.0;
  }

  // Count in-subset in-edges per local destination.
  for (std::uint32_t i = 0; i < pages.size(); ++i) {
    std::uint64_t count = 0;
    for (const graph::PageId u : g.in_links(pages[i])) {
      if (local_of(u) != kAbsent) ++count;
    }
    m.offsets_[i + 1] = m.offsets_[i] + count;
  }
  m.sources_.resize(m.offsets_.back());
  m.weights_.resize(m.offsets_.back());
  std::uint64_t pos = 0;
  for (std::uint32_t i = 0; i < pages.size(); ++i) {
    for (const graph::PageId u : g.in_links(pages[i])) {
      const std::uint32_t local = local_of(u);
      if (local == kAbsent) continue;
      m.sources_[pos] = local;
      m.weights_[pos] = m.source_weight_[local];
      ++pos;
    }
  }
  assert(pos == m.sources_.size());
  m.finish_layout();
  return m;
}

namespace {

// All kernels accumulate rows with this exact two-lane pattern (even edges
// into lane 0, odd into lane 1, lanes combined once at the end). Two
// in-flight adds hide the FP-add latency that a single serial chain exposes
// on short rows, and sharing the pattern is what makes the weighted and
// contribution kernels bitwise-identical.
inline double row_sum_contribution(const double* contrib, const std::uint32_t* sources,
                                   std::uint64_t begin, std::uint64_t end) noexcept {
  double acc0 = 0.0;
  double acc1 = 0.0;
  std::uint64_t e = begin;
  for (; e + 1 < end; e += 2) {
    acc0 += contrib[sources[e]];
    acc1 += contrib[sources[e + 1]];
  }
  if (e < end) acc0 += contrib[sources[e]];
  return acc0 + acc1;
}

inline double row_sum_weighted(const double* x, const std::uint32_t* sources,
                               const double* weights, std::uint64_t begin,
                               std::uint64_t end) noexcept {
  double acc0 = 0.0;
  double acc1 = 0.0;
  std::uint64_t e = begin;
  for (; e + 1 < end; e += 2) {
    acc0 += x[sources[e]] * weights[e];
    acc1 += x[sources[e + 1]] * weights[e + 1];
  }
  if (e < end) acc0 += x[sources[e]] * weights[e];
  return acc0 + acc1;
}

}  // namespace

void LinkMatrix::multiply(std::span<const double> x, std::span<double> y) const {
  assert(x.size() == dimension() && y.size() == dimension());
  const std::uint32_t* const sources = sources_.data();
  const double* const weights = weights_.data();
  for (std::size_t v = 0; v < dimension(); ++v) {
    y[v] = row_sum_weighted(x.data(), sources, weights, offsets_[v], offsets_[v + 1]);
  }
}

void LinkMatrix::multiply(std::span<const double> x, std::span<double> y,
                          util::ThreadPool& pool) const {
  assert(x.size() == dimension() && y.size() == dimension());
  // Small systems are not worth the fork/join overhead.
  if (num_entries() < 1u << 14) {
    multiply(x, y);
    return;
  }
  const std::uint32_t* const sources = sources_.data();
  const double* const weights = weights_.data();
  pool.parallel_for(dimension(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t v = begin; v < end; ++v) {
      y[v] = row_sum_weighted(x.data(), sources, weights, offsets_[v], offsets_[v + 1]);
    }
  });
}

void LinkMatrix::sweep(std::span<const double> x, std::span<double> y,
                       SweepScratch& scratch) const {
  assert(x.size() == dimension() && y.size() == dimension());
  const std::size_t dim = dimension();
  scratch.contrib.resize(dim);
  double* const contrib = scratch.contrib.data();
  const double* const sw = source_weight_.data();
  for (std::size_t u = 0; u < dim; ++u) contrib[u] = x[u] * sw[u];
  const std::uint32_t* const sources = sources_.data();
  for (std::size_t v = 0; v < dim; ++v) {
    y[v] = row_sum_contribution(contrib, sources, offsets_[v], offsets_[v + 1]);
  }
}

void LinkMatrix::sweep(std::span<const double> x, std::span<double> y,
                       SweepScratch& scratch, util::ThreadPool& pool) const {
  assert(x.size() == dimension() && y.size() == dimension());
  const std::size_t dim = dimension();
  scratch.contrib.resize(dim);
  double* const contrib = scratch.contrib.data();
  const double* const sw = source_weight_.data();
  pool.parallel_for(dim, [&](std::size_t begin, std::size_t end) {
    for (std::size_t u = begin; u < end; ++u) contrib[u] = x[u] * sw[u];
  });
  const std::uint32_t* const sources = sources_.data();
  pool.parallel_for_grains(
      dim, sweep_grain_,
      [&](std::size_t /*grain*/, std::size_t begin, std::size_t end) {
        for (std::size_t v = begin; v < end; ++v) {
          y[v] = row_sum_contribution(contrib, sources, offsets_[v], offsets_[v + 1]);
        }
      });
}

SweepStats LinkMatrix::sweep_and_residual(std::span<const double> in,
                                          std::span<double> out,
                                          std::span<const double> forcing,
                                          SweepScratch& scratch,
                                          util::ThreadPool& pool) const {
  const std::size_t dim = dimension();
  assert(in.size() == dim && out.size() == dim);
  assert(forcing.empty() || forcing.size() == dim);
  assert(in.data() != out.data());
  scratch.contrib.resize(dim);
  const std::size_t total = util::ThreadPool::num_grains(dim, sweep_grain_);
  scratch.partial_l1.assign(total, 0.0);
  scratch.partial_linf.assign(total, 0.0);

  double* const contrib = scratch.contrib.data();
  const double* const sw = source_weight_.data();
  pool.parallel_for(dim, [&](std::size_t begin, std::size_t end) {
    for (std::size_t u = begin; u < end; ++u) contrib[u] = in[u] * sw[u];
  });

  const std::uint32_t* const sources = sources_.data();
  const double* const force = forcing.empty() ? nullptr : forcing.data();
  pool.parallel_for_grains(
      dim, sweep_grain_,
      [&](std::size_t grain, std::size_t begin, std::size_t end) {
        double l1 = 0.0;
        double linf = 0.0;
        for (std::size_t v = begin; v < end; ++v) {
          double acc =
              row_sum_contribution(contrib, sources, offsets_[v], offsets_[v + 1]);
          if (force != nullptr) acc += force[v];
          const double diff = std::fabs(acc - in[v]);
          l1 += diff;
          if (diff > linf) linf = diff;
          out[v] = acc;
        }
        scratch.partial_l1[grain] = l1;
        scratch.partial_linf[grain] = linf;
      });

  SweepStats stats;
  for (std::size_t g = 0; g < total; ++g) {
    stats.l1_delta += scratch.partial_l1[g];
    stats.linf_delta = std::max(stats.linf_delta, scratch.partial_linf[g]);
  }
  return stats;
}

double LinkMatrix::contraction_norm() const noexcept {
  std::vector<double> out_weight(dimension(), 0.0);
  for (std::size_t e = 0; e < sources_.size(); ++e) {
    out_weight[sources_[e]] += weights_[e];
  }
  double max_w = 0.0;
  for (const double w : out_weight) max_w = std::max(max_w, w);
  return max_w;
}

}  // namespace p2prank::rank
