// The sparse iteration matrix A of the open-system model (Section 3):
// A(u,v) = α / d(u) for a link u -> v, 0 otherwise, restricted to a page
// subset. Stored pull-style (per destination, list of weighted sources) so a
// Jacobi sweep parallelizes over destinations with no write conflicts.
//
// d(u) is always the page's *global* out-degree (crawled + external
// targets): a link to an uncrawled page still divides u's rank, and the
// share it carries leaves the open system. Likewise, links from u to pages
// *outside the subset* are not rows of this matrix — their rank share exits
// the group and is the business of the efferent matrix (engine/).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/web_graph.hpp"
#include "rank/rank_types.hpp"
#include "util/thread_pool.hpp"

namespace p2prank::rank {

class LinkMatrix {
 public:
  /// Matrix over the whole crawl.
  [[nodiscard]] static LinkMatrix from_graph(const graph::WebGraph& g, double alpha);

  /// Matrix over a subset of pages (ascending global PageIds). Only edges
  /// with both endpoints in the subset are kept.
  [[nodiscard]] static LinkMatrix from_subset(const graph::WebGraph& g,
                                              std::span<const graph::PageId> pages,
                                              double alpha);

  [[nodiscard]] std::size_t dimension() const noexcept { return offsets_.size() - 1; }
  [[nodiscard]] std::size_t num_entries() const noexcept { return sources_.size(); }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }

  /// y = A x (single-threaded).
  void multiply(std::span<const double> x, std::span<double> y) const;

  /// y = A x using the pool (row-parallel; deterministic).
  void multiply(std::span<const double> x, std::span<double> y,
                util::ThreadPool& pool) const;

  /// Weighted in-edges of local row v: parallel spans of sources/weights.
  [[nodiscard]] std::span<const std::uint32_t> row_sources(std::size_t v) const noexcept {
    return {sources_.data() + offsets_[v], sources_.data() + offsets_[v + 1]};
  }
  [[nodiscard]] std::span<const double> row_weights(std::size_t v) const noexcept {
    return {weights_.data() + offsets_[v], weights_.data() + offsets_[v + 1]};
  }

  /// The paper's ||A||_∞ (source-major row sums): the maximum, over source
  /// pages, of the total weight that source contributes inside the matrix.
  /// This is the contraction bound of Theorems 3.1–3.3; it is ≤ α always,
  /// and < α for sources with links leaving the subset or the crawl.
  [[nodiscard]] double contraction_norm() const noexcept;

 private:
  LinkMatrix() = default;

  std::vector<std::uint64_t> offsets_;   // size dim+1
  std::vector<std::uint32_t> sources_;   // local source index per entry
  std::vector<double> weights_;          // alpha / d_global(source)
  double alpha_ = 0.0;
};

}  // namespace p2prank::rank
