// The sparse iteration matrix A of the open-system model (Section 3):
// A(u,v) = α / d(u) for a link u -> v, 0 otherwise, restricted to a page
// subset. Stored pull-style (per destination, list of weighted sources) so a
// Jacobi sweep parallelizes over destinations with no write conflicts.
//
// d(u) is always the page's *global* out-degree (crawled + external
// targets): a link to an uncrawled page still divides u's rank, and the
// share it carries leaves the open system. Likewise, links from u to pages
// *outside the subset* are not rows of this matrix — their rank share exits
// the group and is the business of the efferent matrix (engine/).
//
// Two multiply kernels exist:
//   * multiply()  — streams a per-edge weight (weights_). Kept for the
//     efferent path and as the bitwise reference in tests.
//   * sweep()/sweep_and_residual() — the hot path. Every edge weight is just
//     α/d(source), so a per-sweep *contribution* vector
//     contrib[u] = x[u]·(α/d(u)) replaces the per-edge weight stream: the
//     edge loop reads 12 bytes/edge (4B source index + 8B gather) instead of
//     20 (4B index + 8B weight + 8B gather). Because weights_[e] is stored
//     as the identical double source_weight_[src[e]], the per-edge product
//     x[src]·w is bit-for-bit the same in both kernels, so they produce
//     bitwise-identical y. See DESIGN.md "Kernel layout".
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/web_graph.hpp"
#include "rank/rank_types.hpp"
#include "util/thread_pool.hpp"

namespace p2prank::rank {

/// Residual of one fused sweep: norms of (out − in), accumulated per grain
/// during the sweep and combined in grain order (deterministic).
struct SweepStats {
  double l1_delta = 0.0;
  double linf_delta = 0.0;
};

/// Reusable scratch for contribution sweeps; pass the same instance to
/// successive sweeps to amortize the allocations across iterations.
struct SweepScratch {
  std::vector<double> contrib;       // x[u]·α/d(u) per local source
  std::vector<double> partial_l1;    // per-grain residual partials
  std::vector<double> partial_linf;
};

/// Tuning knobs of the residual-driven worklist kernel (DESIGN.md §6).
struct WorklistOptions {
  /// Contribution-change threshold: a source whose contribution moved by
  /// ≤ epsilon since it last propagated does not wake its destinations.
  /// 0 means *exact* mode — skip only bitwise-unchanged inputs — which
  /// keeps every sweep bitwise-identical to the dense kernel.
  double epsilon = 0.0;
  /// Force a dense sweep every N worklist sweeps to flush sub-epsilon
  /// drift. 0 disables periodic refresh (sound only when epsilon == 0).
  std::uint32_t full_interval = 64;
  /// Push–pull switch: scatter dirty bits along out-edges only while the
  /// active sources' out-edges are below this fraction of all edges;
  /// above it a dense pull sweep is cheaper than the scatter.
  double push_density = 0.125;
};

/// Result of one worklist sweep: the residual norms plus whether the sweep
/// ran dense (all rows recomputed — residual exact even when epsilon > 0).
struct WorklistSweepStats : SweepStats {
  bool dense = false;
};

/// Persistent frontier state for sweep_and_residual_worklist. Owned by the
/// caller (one per ping-pong buffer pair); reset() forces the next sweep
/// dense, which re-primes every derived bitmap. All bitmaps are 64 rows per
/// word, and sweep grains are 64-aligned so parallel grains own whole words.
struct WorklistState {
  /// Last *propagated* contribution per source: updated when a source's
  /// change exceeds epsilon (always, in a dense sweep). Rows recompute by
  /// gathering these, so a sub-epsilon change is invisible until the next
  /// dense sweep — bounded drift, zero drift when epsilon == 0.
  std::vector<double> contrib;
  std::vector<std::uint64_t> differ;         // out-buffer != in-buffer, per row
  std::vector<std::uint64_t> dirty;          // rows to recompute (per-sweep scratch)
  std::vector<std::uint64_t> src_active;     // sources that propagated (scratch)
  std::vector<std::uint64_t> forcing_dirty;  // forcing[v] changed since last sweep
  std::vector<std::uint32_t> active_grains;  // frontier grain ids (scratch)
  std::vector<std::uint64_t> grain_edges;    // per-grain active out-edge tallies
  bool primed = false;
  std::uint32_t sweeps_since_dense = 0;
  // The buffer pair the differ bitmap talks about; a sweep on any other
  // pair auto-unprimes. std::swap of the vectors keeps the pointers valid.
  const void* pair_a = nullptr;
  const void* pair_b = nullptr;
  // Cumulative tallies, deterministic across pool sizes (derived from the
  // bitmaps, which depend only on the values swept).
  std::uint64_t sweeps = 0;
  std::uint64_t dense_sweeps = 0;
  std::uint64_t rows_computed = 0;
  std::uint64_t rows_copied = 0;

  /// Drop all frontier knowledge: the next sweep runs dense. Required after
  /// any out-of-band change to the rank buffers (warm start, checkpoint
  /// restore, group rebuild).
  void reset() noexcept {
    primed = false;
    sweeps_since_dense = 0;
    pair_a = nullptr;
    pair_b = nullptr;
  }

  /// Record that forcing[row] changed, so the row must recompute next sweep
  /// even if no source moved. No-op while unprimed (a dense sweep is coming
  /// anyway, and the bitmaps may not be sized yet).
  void mark_forcing_dirty(std::size_t row) noexcept {
    if (!primed || (row >> 6) >= forcing_dirty.size()) return;
    forcing_dirty[row >> 6] |= std::uint64_t{1} << (row & 63);
  }
};

class LinkMatrix {
 public:
  /// Matrix over the whole crawl.
  [[nodiscard]] static LinkMatrix from_graph(const graph::WebGraph& g, double alpha);

  /// Matrix over a subset of pages (ascending global PageIds). Only edges
  /// with both endpoints in the subset are kept.
  [[nodiscard]] static LinkMatrix from_subset(const graph::WebGraph& g,
                                              std::span<const graph::PageId> pages,
                                              double alpha);

  [[nodiscard]] std::size_t dimension() const noexcept { return offsets_.size() - 1; }
  [[nodiscard]] std::size_t num_entries() const noexcept { return sources_.size(); }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }

  /// y = A x (single-threaded, per-edge weight stream). The bitwise
  /// reference kernel.
  void multiply(std::span<const double> x, std::span<double> y) const;

  /// y = A x using the pool (row-parallel; deterministic).
  void multiply(std::span<const double> x, std::span<double> y,
                util::ThreadPool& pool) const;

  /// y = A x via the contribution vector (single-threaded). Bitwise
  /// identical to multiply().
  void sweep(std::span<const double> x, std::span<double> y,
             SweepScratch& scratch) const;

  /// y = A x via the contribution vector, row-parallel over fixed grains.
  /// Bitwise identical to multiply() for any pool size.
  void sweep(std::span<const double> x, std::span<double> y, SweepScratch& scratch,
             util::ThreadPool& pool) const;

  /// Fused Jacobi sweep: out = A·in + forcing (forcing may be empty = zero),
  /// returning the L1/L∞ norms of (out − in) accumulated during the sweep —
  /// no second pass over the vectors. in/out must not alias. The residual is
  /// combined from per-grain partials in grain order, and grains depend only
  /// on the matrix, so the result (y *and* stats) is bitwise-deterministic
  /// across runs and pool sizes.
  SweepStats sweep_and_residual(std::span<const double> in, std::span<double> out,
                                std::span<const double> forcing,
                                SweepScratch& scratch, util::ThreadPool& pool) const;

  /// Residual-driven worklist sweep: like sweep_and_residual, but rows whose
  /// inputs did not change beyond opts.epsilon since they last recomputed
  /// are skipped (their value is carried over), and when the frontier is
  /// small the dirty set is built by *pushing* along out-edges of active
  /// sources instead of scanning all rows. With epsilon == 0 every sweep —
  /// values and residual — is bitwise-identical to sweep_and_residual for
  /// any pool size; with epsilon > 0 only dense sweeps (periodic, or when
  /// force_dense is set) report an exact residual. `state` must persist
  /// alongside the in/out ping-pong pair; the kernel unprimes itself (one
  /// dense sweep) whenever it sees an unfamiliar pair.
  WorklistSweepStats sweep_and_residual_worklist(
      std::span<const double> in, std::span<double> out,
      std::span<const double> forcing, SweepScratch& scratch,
      WorklistState& state, const WorklistOptions& opts, util::ThreadPool& pool,
      bool force_dense = false) const;

  /// Rows per parallel grain of sweep kernels (~64KB of row data each,
  /// rounded up to a multiple of 64 so each grain owns whole bitmap words);
  /// a function of the matrix shape only. Exposed for tests and sizing.
  [[nodiscard]] std::size_t sweep_grain() const noexcept { return sweep_grain_; }

  /// Out-edges of local source u (push CSR: the transpose adjacency used to
  /// scatter frontier bits). Exposed for tests.
  [[nodiscard]] std::span<const std::uint32_t> out_targets(std::size_t u) const noexcept {
    return {out_targets_.data() + out_offsets_[u],
            out_targets_.data() + out_offsets_[u + 1]};
  }

  /// Weighted in-edges of local row v: parallel spans of sources/weights.
  [[nodiscard]] std::span<const std::uint32_t> row_sources(std::size_t v) const noexcept {
    return {sources_.data() + offsets_[v], sources_.data() + offsets_[v + 1]};
  }
  [[nodiscard]] std::span<const double> row_weights(std::size_t v) const noexcept {
    return {weights_.data() + offsets_[v], weights_.data() + offsets_[v + 1]};
  }

  /// α/d_global(u) per local source u (0 for pages with no out-links); the
  /// per-source form of the edge weights the sweep kernels scale x by.
  [[nodiscard]] std::span<const double> source_weights() const noexcept {
    return source_weight_;
  }

  /// The paper's ||A||_∞ (source-major row sums): the maximum, over source
  /// pages, of the total weight that source contributes inside the matrix.
  /// This is the contraction bound of Theorems 3.1–3.3; it is ≤ α always,
  /// and < α for sources with links leaving the subset or the crawl.
  [[nodiscard]] double contraction_norm() const noexcept;

 private:
  LinkMatrix() = default;

  void finish_layout();

  std::vector<std::uint64_t> offsets_;       // size dim+1
  std::vector<std::uint32_t> sources_;       // local source index per entry
  std::vector<double> weights_;              // alpha / d_global(source), per edge
  std::vector<double> source_weight_;        // alpha / d_global(u), per local source
  std::vector<std::uint64_t> out_offsets_;   // push CSR: size dim+1
  std::vector<std::uint32_t> out_targets_;   // push CSR: destination per out-edge
  double alpha_ = 0.0;
  std::size_t sweep_grain_ = 1;              // rows per grain (fixed per matrix)
};

}  // namespace p2prank::rank
