// The sparse iteration matrix A of the open-system model (Section 3):
// A(u,v) = α / d(u) for a link u -> v, 0 otherwise, restricted to a page
// subset. Stored pull-style (per destination, list of weighted sources) so a
// Jacobi sweep parallelizes over destinations with no write conflicts.
//
// d(u) is always the page's *global* out-degree (crawled + external
// targets): a link to an uncrawled page still divides u's rank, and the
// share it carries leaves the open system. Likewise, links from u to pages
// *outside the subset* are not rows of this matrix — their rank share exits
// the group and is the business of the efferent matrix (engine/).
//
// Two multiply kernels exist:
//   * multiply()  — streams a per-edge weight (weights_). Kept for the
//     efferent path and as the bitwise reference in tests.
//   * sweep()/sweep_and_residual() — the hot path. Every edge weight is just
//     α/d(source), so a per-sweep *contribution* vector
//     contrib[u] = x[u]·(α/d(u)) replaces the per-edge weight stream: the
//     edge loop reads 12 bytes/edge (4B source index + 8B gather) instead of
//     20 (4B index + 8B weight + 8B gather). Because weights_[e] is stored
//     as the identical double source_weight_[src[e]], the per-edge product
//     x[src]·w is bit-for-bit the same in both kernels, so they produce
//     bitwise-identical y. See DESIGN.md "Kernel layout".
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/web_graph.hpp"
#include "rank/rank_types.hpp"
#include "util/thread_pool.hpp"

namespace p2prank::rank {

/// Residual of one fused sweep: norms of (out − in), accumulated per grain
/// during the sweep and combined in grain order (deterministic).
struct SweepStats {
  double l1_delta = 0.0;
  double linf_delta = 0.0;
};

/// Reusable scratch for contribution sweeps; pass the same instance to
/// successive sweeps to amortize the allocations across iterations.
struct SweepScratch {
  std::vector<double> contrib;       // x[u]·α/d(u) per local source
  std::vector<double> partial_l1;    // per-grain residual partials
  std::vector<double> partial_linf;
};

class LinkMatrix {
 public:
  /// Matrix over the whole crawl.
  [[nodiscard]] static LinkMatrix from_graph(const graph::WebGraph& g, double alpha);

  /// Matrix over a subset of pages (ascending global PageIds). Only edges
  /// with both endpoints in the subset are kept.
  [[nodiscard]] static LinkMatrix from_subset(const graph::WebGraph& g,
                                              std::span<const graph::PageId> pages,
                                              double alpha);

  [[nodiscard]] std::size_t dimension() const noexcept { return offsets_.size() - 1; }
  [[nodiscard]] std::size_t num_entries() const noexcept { return sources_.size(); }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }

  /// y = A x (single-threaded, per-edge weight stream). The bitwise
  /// reference kernel.
  void multiply(std::span<const double> x, std::span<double> y) const;

  /// y = A x using the pool (row-parallel; deterministic).
  void multiply(std::span<const double> x, std::span<double> y,
                util::ThreadPool& pool) const;

  /// y = A x via the contribution vector (single-threaded). Bitwise
  /// identical to multiply().
  void sweep(std::span<const double> x, std::span<double> y,
             SweepScratch& scratch) const;

  /// y = A x via the contribution vector, row-parallel over fixed grains.
  /// Bitwise identical to multiply() for any pool size.
  void sweep(std::span<const double> x, std::span<double> y, SweepScratch& scratch,
             util::ThreadPool& pool) const;

  /// Fused Jacobi sweep: out = A·in + forcing (forcing may be empty = zero),
  /// returning the L1/L∞ norms of (out − in) accumulated during the sweep —
  /// no second pass over the vectors. in/out must not alias. The residual is
  /// combined from per-grain partials in grain order, and grains depend only
  /// on the matrix, so the result (y *and* stats) is bitwise-deterministic
  /// across runs and pool sizes.
  SweepStats sweep_and_residual(std::span<const double> in, std::span<double> out,
                                std::span<const double> forcing,
                                SweepScratch& scratch, util::ThreadPool& pool) const;

  /// Rows per parallel grain of sweep kernels (~64KB of row data each);
  /// a function of the matrix shape only. Exposed for tests and sizing.
  [[nodiscard]] std::size_t sweep_grain() const noexcept { return sweep_grain_; }

  /// Weighted in-edges of local row v: parallel spans of sources/weights.
  [[nodiscard]] std::span<const std::uint32_t> row_sources(std::size_t v) const noexcept {
    return {sources_.data() + offsets_[v], sources_.data() + offsets_[v + 1]};
  }
  [[nodiscard]] std::span<const double> row_weights(std::size_t v) const noexcept {
    return {weights_.data() + offsets_[v], weights_.data() + offsets_[v + 1]};
  }

  /// α/d_global(u) per local source u (0 for pages with no out-links); the
  /// per-source form of the edge weights the sweep kernels scale x by.
  [[nodiscard]] std::span<const double> source_weights() const noexcept {
    return source_weight_;
  }

  /// The paper's ||A||_∞ (source-major row sums): the maximum, over source
  /// pages, of the total weight that source contributes inside the matrix.
  /// This is the contraction bound of Theorems 3.1–3.3; it is ≤ α always,
  /// and < α for sources with links leaving the subset or the crawl.
  [[nodiscard]] double contraction_norm() const noexcept;

 private:
  LinkMatrix() = default;

  void finish_layout();

  std::vector<std::uint64_t> offsets_;       // size dim+1
  std::vector<std::uint32_t> sources_;       // local source index per entry
  std::vector<double> weights_;              // alpha / d_global(source), per edge
  std::vector<double> source_weight_;        // alpha / d_global(u), per local source
  double alpha_ = 0.0;
  std::size_t sweep_grain_ = 1;              // rows per grain (fixed per matrix)
};

}  // namespace p2prank::rank
