#include "rank/hits.hpp"

#include <cmath>

#include "util/stats.hpp"

namespace p2prank::rank {

namespace {

/// Scale v to unit L2 norm; returns false (leaving v untouched) when zero.
bool l2_normalize(std::vector<double>& v) {
  long double sq = 0.0L;
  for (const double x : v) sq += static_cast<long double>(x) * x;
  if (sq <= 0.0L) return false;
  const double inv = 1.0 / std::sqrt(static_cast<double>(sq));
  for (double& x : v) x *= inv;
  return true;
}

}  // namespace

HitsResult hits(const graph::WebGraph& g, const HitsOptions& opts,
                util::ThreadPool& pool) {
  const std::size_t n = g.num_pages();
  HitsResult result;
  result.authorities.assign(n, 0.0);
  result.hubs.assign(n, 0.0);
  if (n == 0) {
    result.converged = true;
    return result;
  }

  // Start uniform; pages touching no internal link stay at zero after the
  // first update, as they should.
  std::vector<double> auth(n, 1.0 / std::sqrt(static_cast<double>(n)));
  std::vector<double> hub(n, 1.0 / std::sqrt(static_cast<double>(n)));
  std::vector<double> next_auth(n, 0.0);
  std::vector<double> next_hub(n, 0.0);

  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    // authority(v) = sum of hub over in-links (pull, row-parallel).
    pool.parallel_for(n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t v = begin; v < end; ++v) {
        double acc = 0.0;
        for (const graph::PageId u : g.in_links(static_cast<graph::PageId>(v))) {
          acc += hub[u];
        }
        next_auth[v] = acc;
      }
    });
    // hub(u) = sum of *new* authority over out-links (the classic update
    // order: authorities first, then hubs from fresh authorities).
    pool.parallel_for(n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t u = begin; u < end; ++u) {
        double acc = 0.0;
        for (const graph::PageId v : g.out_links(static_cast<graph::PageId>(u))) {
          acc += next_auth[v];
        }
        next_hub[u] = acc;
      }
    });
    if (!l2_normalize(next_auth) || !l2_normalize(next_hub)) {
      // No internal links at all: define the result as all zeros.
      result.authorities.assign(n, 0.0);
      result.hubs.assign(n, 0.0);
      result.iterations = it + 1;
      result.converged = true;
      return result;
    }

    const double delta =
        util::l1_distance(next_auth, auth) + util::l1_distance(next_hub, hub);
    auth.swap(next_auth);
    hub.swap(next_hub);
    ++result.iterations;
    if (delta <= opts.epsilon) {
      result.converged = true;
      break;
    }
  }

  result.authorities = std::move(auth);
  result.hubs = std::move(hub);
  return result;
}

}  // namespace p2prank::rank
