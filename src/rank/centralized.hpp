// Classic centralized PageRank — Algorithm 1 of the paper (the Page/Brin
// formulation): power iteration on R = c·A·R with the norm lost to damping
// and dangling pages reinjected through E each step. Included both as the
// historical baseline (the "CPR" series of Fig. 8 compares against it) and
// for closed-system use cases where ranks should stay a distribution.
#pragma once

#include <functional>
#include <span>

#include "graph/web_graph.hpp"
#include "rank/rank_types.hpp"
#include "util/thread_pool.hpp"

namespace p2prank::rank {

struct CentralizedOptions {
  double damping = 0.85;  ///< the c of formula 2.1
  double epsilon = 1e-10;
  std::size_t max_iterations = 1000;
  bool record_residuals = false;
  /// Algorithm 1 builds its matrix from the crawled collection only, so the
  /// classic d(u) counts links *within* the crawl (false, the default). Set
  /// true to divide by the full out-degree including uncrawled targets —
  /// the share pointing outside then joins the lost norm D and is
  /// redistributed by E, which makes the error contract much faster than c.
  bool count_external_links = false;
  /// Invoked with the iterate after every iteration; return false to stop
  /// early (used to count iterations until some external criterion).
  std::function<bool(std::span<const double>)> on_iteration;
};

/// Run Algorithm 1. `personalization` is the E vector (empty = uniform 1/n);
/// it is normalized to sum 1 internally. The returned ranks sum to 1.
[[nodiscard]] SolveResult centralized_pagerank(const graph::WebGraph& g,
                                               const CentralizedOptions& opts,
                                               util::ThreadPool& pool,
                                               std::span<const double> personalization = {});

/// Pages sorted by descending rank; ties by ascending PageId. Returns the
/// first k indices (or all when k >= n).
[[nodiscard]] std::vector<graph::PageId> top_pages(std::span<const double> ranks,
                                                   std::size_t k);

}  // namespace p2prank::rank
