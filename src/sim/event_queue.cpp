#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace p2prank::sim {

void EventQueue::schedule_at(SimTime at, Handler handler) {
  if (at < now_) throw std::invalid_argument("EventQueue: scheduling in the past");
  if (!handler) throw std::invalid_argument("EventQueue: empty handler");
  heap_.push(Event{at, next_seq_++, std::move(handler)});
}

void EventQueue::schedule_in(SimTime delay, Handler handler) {
  if (delay < 0.0) throw std::invalid_argument("EventQueue: negative delay");
  schedule_at(now_ + delay, std::move(handler));
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; the handler must be moved out before
  // pop, so copy the cheap fields and move the closure.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  now_ = ev.at;
  ev.handler();
  return true;
}

std::size_t EventQueue::run_until(SimTime t_end) {
  std::size_t executed = 0;
  while (!heap_.empty() && heap_.top().at <= t_end) {
    step();
    ++executed;
  }
  if (now_ < t_end) now_ = t_end;
  return executed;
}

std::size_t EventQueue::run(std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && step()) ++executed;
  return executed;
}

}  // namespace p2prank::sim
