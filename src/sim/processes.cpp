#include "sim/processes.hpp"

namespace p2prank::sim {

WaitProcess::WaitProcess(double t1, double t2, std::size_t nodes, std::uint64_t seed)
    : rng_(seed) {
  if (t1 < 0.0 || t2 < t1) {
    throw std::invalid_argument("WaitProcess: need 0 <= t1 <= t2");
  }
  means_.resize(nodes);
  for (auto& m : means_) m = t1 == t2 ? t1 : rng_.uniform(t1, t2);
}

SimTime WaitProcess::next_wait(std::size_t u) {
  return rng_.exponential(means_.at(u));
}

}  // namespace p2prank::sim
