// Stochastic processes of the paper's experiment setup (Section 5):
//
//   "each group u waits for Tw(u, m) time units before starting a new loop
//    step m. Tw(u,m) follows exponential distribution for a fixed u, and the
//    mean waiting time of each page group are randomly selected from
//    [T1, T2]"
//
//   "we assume vector Y may fail to be sent to other groups with a
//    probability p"  — we read p as the *delivery* probability: the paper's
//    best-behaved curves are labelled p = 1, which only makes sense if 1
//    means "always delivered".
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace p2prank::sim {

/// Per-node wait process: node u's mean is drawn once from [t1, t2]; every
/// wait is an independent Exp(mean_u) sample.
class WaitProcess {
 public:
  WaitProcess(double t1, double t2, std::size_t nodes, std::uint64_t seed);

  /// Next inter-step wait for node u.
  [[nodiscard]] SimTime next_wait(std::size_t u);

  [[nodiscard]] double mean_of(std::size_t u) const { return means_.at(u); }

 private:
  std::vector<double> means_;
  util::Rng rng_;
};

/// Bernoulli message-delivery model.
class LossModel {
 public:
  LossModel(double delivery_probability, std::uint64_t seed)
      : p_(delivery_probability), rng_(seed) {
    if (!(p_ >= 0.0 && p_ <= 1.0)) {
      throw std::invalid_argument("LossModel: probability out of [0,1]");
    }
  }

  /// True when this send survives. Always consumes exactly one RNG draw —
  /// even at p = 1 — so the random stream stays aligned draw-for-draw across
  /// delivery probabilities (and across mid-run set_probability changes):
  /// the same seed loses the same *send indices* at every loss level, which
  /// is what makes chaos-harness seeds comparable. (uniform() is in [0, 1),
  /// so the draw itself already delivers unconditionally when p = 1.)
  [[nodiscard]] bool delivered() { return rng_.chance(p_); }

  [[nodiscard]] double delivery_probability() const noexcept { return p_; }

  /// Change the delivery probability mid-run (loss bursts). The RNG stream
  /// is untouched: only the threshold future draws are compared to moves.
  void set_probability(double delivery_probability) {
    if (!(delivery_probability >= 0.0 && delivery_probability <= 1.0)) {
      throw std::invalid_argument("LossModel: probability out of [0,1]");
    }
    p_ = delivery_probability;
  }

 private:
  double p_;
  util::Rng rng_;
};

}  // namespace p2prank::sim
