// Discrete-event simulation core.
//
// The paper's Section 5 experiments run K page rankers fully asynchronously:
// each node sleeps an exponentially distributed time between loop steps and
// messages can be lost. We reproduce that with a classic event queue —
// virtual time, earliest-event-first, deterministic FIFO tie-breaking so a
// given seed always replays the identical schedule.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace p2prank::sim {

using SimTime = double;

class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Current virtual time (the timestamp of the last executed event).
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }

  /// Schedule at an absolute virtual time (must be >= now()).
  void schedule_at(SimTime at, Handler handler);

  /// Schedule `delay` time units from now (delay >= 0).
  void schedule_in(SimTime delay, Handler handler);

  /// Execute the earliest event. Returns false when the queue is empty.
  bool step();

  /// Execute every event with timestamp <= t_end (including events those
  /// events schedule, as long as they fall within t_end). Advances now() to
  /// t_end even if the queue drains early. Returns events executed.
  std::size_t run_until(SimTime t_end);

  /// Execute until empty or `max_events` executed. Returns events executed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;  // FIFO among equal timestamps
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace p2prank::sim
