#include "recover/supervisor.hpp"

#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/snapshot.hpp"

namespace p2prank::recover {

RecoverySupervisor::RecoverySupervisor(engine::DistributedRanking& sim,
                                       SupervisorOptions opts)
    : sim_(sim),
      opts_(opts),
      k_(sim.num_groups()),
      states_(k_, RankerState::kHealthy),
      suspect_streak_(k_, 0),
      probe_streak_(k_, 0),
      epochs_(k_, 0),
      ledger_(sim.current_assignment()) {
  if (opts_.metrics != nullptr) {
    evictions_cell_ = &opts_.metrics->counter(obs::names::kRecoverEvictions);
    rejoins_cell_ = &opts_.metrics->counter(obs::names::kRecoverRejoins);
    resyncs_cell_ = &opts_.metrics->counter(obs::names::kRecoverResyncs);
  }
  if (opts_.serve_store != nullptr) {
    // A predecessor supervisor (pre-graph-update) may have left down-marks.
    for (std::uint32_t r = 0; r < k_; ++r) {
      opts_.serve_store->set_shard_health(r, true);
    }
  }
}

void RecoverySupervisor::trace(std::string_view what, double now,
                               std::uint32_t ranker, double value) const {
  if (opts_.tracer != nullptr) {
    opts_.tracer->instant(obs::names::kTraceRecovery, now, ranker, what, value);
  }
}

bool RecoverySupervisor::eviction_quorum(std::uint32_t r,
                                         std::uint32_t& successor) const {
  std::uint32_t peers = 0;
  std::uint32_t suspecters = 0;
  std::size_t best_pages = 0;
  bool have_successor = false;
  for (std::uint32_t s = 0; s < k_; ++s) {
    if (s == r || states_[s] != RankerState::kHealthy) continue;
    if (sim_.group(s).size() == 0 || !sim_.has_cut_edges(s, r)) continue;
    ++peers;
    if (!sim_.suspected(s, r)) continue;
    ++suspecters;
    // Heir = the suspecter with the most pages (ties: lowest index wins by
    // scan order). Choosing among the suspecters lands the pages on the
    // majority side of the cut.
    if (!have_successor || sim_.group(s).size() > best_pages) {
      have_successor = true;
      best_pages = sim_.group(s).size();
      successor = s;
    }
  }
  return peers > 0 && 2 * suspecters > peers && have_successor;
}

bool RecoverySupervisor::probes_clean(std::uint32_t r) const {
  bool saw_peer = false;
  for (std::uint32_t s = 0; s < k_; ++s) {
    if (s == r || states_[s] != RankerState::kHealthy) continue;
    if (sim_.group(s).size() == 0) continue;
    saw_peer = true;
    if (!sim_.probe_link(r, s) || !sim_.probe_link(s, r)) return false;
  }
  return saw_peer;
}

void RecoverySupervisor::evict(std::uint32_t r, std::uint32_t successor,
                               double now) {
  sim_.leave_group(r, successor);
  for (std::uint32_t& owner : ledger_) {
    if (owner == r) owner = successor;
  }
  states_[r] = RankerState::kEvicted;
  suspect_streak_[r] = 0;
  probe_streak_[r] = 0;
  ++epochs_[r];
  ++evictions_;
  if (evictions_cell_ != nullptr) ++*evictions_cell_;
  if (opts_.serve_store != nullptr) {
    opts_.serve_store->set_shard_health(r, false);
  }
  trace("evict", now, r, static_cast<double>(successor));
}

void RecoverySupervisor::rejoin(std::uint32_t r, double now) {
  // Donor = the largest live group (lowest index on ties) with at least two
  // pages — the same overlay arrival split join_group performs.
  std::uint32_t donor = k_;
  std::size_t best = 1;  // need >= 2 pages to split
  for (std::uint32_t s = 0; s < k_; ++s) {
    if (s == r || states_[s] != RankerState::kHealthy) continue;
    if (sim_.group(s).size() > best) {
      best = sim_.group(s).size();
      donor = s;
    }
  }
  if (donor == k_) return;  // nobody can spare a page; try again next tick
  sim_.join_group(r, donor);
  if (!opts_.break_rejoin_ledger) {
    // Mirror join_group's split: the donor keeps the lower ceil(n/2) of its
    // ascending pages, the joiner takes the rest. The ledger scan is in
    // ascending page order, so counting down from the donor's total assigns
    // exactly the upper half.
    std::size_t donor_pages = 0;
    for (const std::uint32_t owner : ledger_) {
      if (owner == donor) ++donor_pages;
    }
    const std::size_t keep = (donor_pages + 1) / 2;
    std::size_t seen = 0;
    for (std::uint32_t& owner : ledger_) {
      if (owner != donor) continue;
      if (seen >= keep) owner = r;
      ++seen;
    }
  }
  states_[r] = RankerState::kHealthy;
  probe_streak_[r] = 0;
  ++epochs_[r];
  ++rejoins_;
  if (rejoins_cell_ != nullptr) ++*rejoins_cell_;
  if (opts_.serve_store != nullptr) {
    opts_.serve_store->set_shard_health(r, true);
  }
  trace("rejoin", now, r, static_cast<double>(donor));
}

void RecoverySupervisor::tick(double now) {
  // At most one membership change per tick: decisions stay serial, and the
  // quorum inputs for every later candidate are re-evaluated on fresh state
  // next tick instead of on the just-mutated wiring.
  bool changed = false;

  for (std::uint32_t r = 0; r < k_; ++r) {
    if (states_[r] != RankerState::kHealthy || sim_.group(r).size() == 0) {
      suspect_streak_[r] = 0;
      continue;
    }
    std::uint32_t successor = 0;
    if (eviction_quorum(r, successor)) {
      ++suspect_streak_[r];
      if (!changed && suspect_streak_[r] >= opts_.evict_after) {
        evict(r, successor, now);
        changed = true;
      }
    } else {
      suspect_streak_[r] = 0;
    }
  }

  for (std::uint32_t r = 0; r < k_; ++r) {
    if (states_[r] != RankerState::kEvicted) continue;
    if (sim_.group(r).size() != 0) {
      // Scripted churn re-populated an evicted ranker between resyncs;
      // treat it as readmitted (the runner's resync also handles this).
      states_[r] = RankerState::kHealthy;
      probe_streak_[r] = 0;
      ++epochs_[r];
      if (opts_.serve_store != nullptr) {
        opts_.serve_store->set_shard_health(r, true);
      }
      trace("readmit", now, r, 0.0);
      continue;
    }
    if (probes_clean(r)) {
      ++probe_streak_[r];
      if (!changed && probe_streak_[r] >= opts_.rejoin_after) {
        rejoin(r, now);
        changed = states_[r] == RankerState::kHealthy;
      }
    } else {
      probe_streak_[r] = 0;
    }
  }
}

void RecoverySupervisor::resync(double now) {
  ledger_ = sim_.current_assignment();
  for (std::uint32_t r = 0; r < k_; ++r) {
    if (states_[r] == RankerState::kEvicted && sim_.group(r).size() != 0) {
      states_[r] = RankerState::kHealthy;
      probe_streak_[r] = 0;
      ++epochs_[r];
      if (opts_.serve_store != nullptr) {
        opts_.serve_store->set_shard_health(r, true);
      }
    }
  }
  ++resyncs_;
  if (resyncs_cell_ != nullptr) ++*resyncs_cell_;
  trace("resync", now, 0, 0.0);
}

}  // namespace p2prank::recover
