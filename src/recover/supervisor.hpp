// RecoverySupervisor: deterministic partition-tolerant self-healing
// (DESIGN.md §13).
//
// The supervisor sits beside a DistributedRanking and turns the transport
// layer's *local* failure evidence into *global* membership decisions, the
// piece the paper leaves to "the DHT layer". It is ticked at every chaos
// sample and escalates through a per-ranker state machine:
//
//   suspicion quorum  — a ranker r is in trouble when a strict majority of
//                       its live link peers (groups that send it Y slices)
//                       currently suspect it (reliable-layer failure
//                       detection, reliable.hpp). One noisy peer cannot
//                       evict anyone; a partition that separates r from the
//                       majority side can.
//   eviction          — after evict_after consecutive quorum ticks, r's
//                       pages are handed to a successor chosen *among the
//                       suspecters* (the majority side of the cut — they can
//                       reach each other, so the handoff is serviceable):
//                       the suspecter owning the most pages, lowest index on
//                       ties. No eligible successor (e.g. the symmetric k=2
//                       split, where the survivor would have to be chosen by
//                       the minority) blocks the eviction. At most one
//                       membership change per tick keeps decisions serial
//                       and replayable.
//   rejoin            — an evicted ranker is readmitted after rejoin_after
//                       consecutive ticks in which the deterministic link
//                       probe (FaultPlane::link_up) reports both directions
//                       clean to every page-owning ranker. It re-enters via
//                       the overlay's join split, taking the upper half of
//                       the largest live group's pages.
//
// The supervisor mirrors every decision into its own page → owner *ledger*.
// The ledger is the machine-checkable contract: the chaos runner compares
// it against the engine's current_assignment() at every sample, so a lost
// or duplicated page during a handoff — on either side — is caught within
// one sample interval. Scripted churn (chaos kLeave/kJoin ops) bypasses the
// supervisor; the runner calls resync() so the ledger follows, and the
// resync also re-admits an evicted ranker that scripted churn re-populated.
//
// Each ranker carries a monotone *recovery epoch*, bumped at every eviction
// and rejoin — the fencing token a real deployment would attach to handoff
// messages. The runner checks it never regresses.
//
// Determinism: every input (suspicion flags, link probes, group sizes) is a
// pure function of the seeded simulation state, and tick order is fixed, so
// the same scenario produces the same eviction/rejoin history, forever.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "engine/distributed.hpp"

namespace p2prank::obs {
class MetricsRegistry;
class Tracer;
}  // namespace p2prank::obs

namespace p2prank::serve {
class SnapshotStore;
}  // namespace p2prank::serve

namespace p2prank::recover {

struct SupervisorOptions {
  /// Consecutive ticks a suspicion quorum must hold before eviction.
  std::uint32_t evict_after = 2;
  /// Consecutive ticks of clean link probes before an evicted ranker rejoins.
  std::uint32_t rejoin_after = 2;
  /// Harness self-test fault: "forget" the ledger update on rejoin. The
  /// runner's ledger cross-check MUST flag the run (scenario_fuzz --broken).
  bool break_rejoin_ledger = false;
  /// Optional sinks; pure observation except serve_store, which receives
  /// shard-health marks (down at eviction, up at rejoin/resync).
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
  serve::SnapshotStore* serve_store = nullptr;
};

enum class RankerState : std::uint8_t {
  kHealthy,  ///< participating (possibly empty — a valid scripted-join target)
  kEvicted,  ///< pages handed off; waiting for clean probes to rejoin
};

class RecoverySupervisor {
 public:
  /// `sim` must outlive the supervisor. Marks every shard healthy in
  /// opts.serve_store (a predecessor supervisor may have left marks).
  RecoverySupervisor(engine::DistributedRanking& sim, SupervisorOptions opts);

  /// One escalation round at virtual time `now`: update suspicion streaks,
  /// perform at most one eviction or rejoin, mirror it into the ledger.
  void tick(double now);

  /// Scripted churn changed ownership behind the supervisor's back: adopt
  /// the engine's assignment as the new ledger and re-admit any evicted
  /// ranker that now owns pages (with a recovery-epoch bump).
  void resync(double now);

  [[nodiscard]] RankerState state(std::uint32_t ranker) const {
    return states_[ranker];
  }
  /// Monotone per-ranker fencing token: bumped at eviction and rejoin.
  [[nodiscard]] std::uint64_t recovery_epoch(std::uint32_t ranker) const {
    return epochs_[ranker];
  }
  /// The supervisor's own page → owner map, updated at every decision it
  /// makes. Invariant (checked by the runner every sample): equals the
  /// engine's current_assignment().
  [[nodiscard]] std::span<const std::uint32_t> ledger() const noexcept {
    return ledger_;
  }

  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }
  [[nodiscard]] std::uint64_t rejoins() const noexcept { return rejoins_; }
  [[nodiscard]] std::uint64_t resyncs() const noexcept { return resyncs_; }

 private:
  void trace(std::string_view what, double now, std::uint32_t ranker,
             double value) const;

  /// True when the eviction quorum holds for r this tick; sets `successor`
  /// to the chosen heir (the suspecter with the most pages).
  [[nodiscard]] bool eviction_quorum(std::uint32_t r,
                                     std::uint32_t& successor) const;
  /// True when every page-owning healthy ranker can reach r and vice versa
  /// (deterministic probe, no RNG draw).
  [[nodiscard]] bool probes_clean(std::uint32_t r) const;

  void evict(std::uint32_t r, std::uint32_t successor, double now);
  void rejoin(std::uint32_t r, double now);

  engine::DistributedRanking& sim_;
  SupervisorOptions opts_;
  std::uint32_t k_;
  std::vector<RankerState> states_;
  std::vector<std::uint32_t> suspect_streak_;
  std::vector<std::uint32_t> probe_streak_;
  std::vector<std::uint64_t> epochs_;
  std::vector<std::uint32_t> ledger_;
  std::uint64_t evictions_ = 0;
  std::uint64_t rejoins_ = 0;
  std::uint64_t resyncs_ = 0;
  std::uint64_t* evictions_cell_ = nullptr;
  std::uint64_t* rejoins_cell_ = nullptr;
  std::uint64_t* resyncs_cell_ = nullptr;
};

}  // namespace p2prank::recover
