// Bounded-heap top-K selection and deterministic K-way merge — the index
// machinery behind RankSnapshot's per-shard top-K lists (DESIGN.md §12).
//
// Ordering is a strict total order (rank descending, page id ascending on
// ties), so every list and every merge is a pure function of the input
// ranks — two snapshots built from bitwise-identical rank vectors carry
// bitwise-identical indexes, which is what lets the serving layer inherit
// the engine's pool-size determinism contract.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace p2prank::serve {

/// One index entry: a page and its rank at the snapshot's epoch.
struct TopKEntry {
  std::uint32_t page = 0;
  double rank = 0.0;

  friend bool operator==(const TopKEntry&, const TopKEntry&) = default;
};

/// Serving order: higher rank first; equal ranks break toward the smaller
/// page id. Total (pages are unique), hence deterministic.
[[nodiscard]] constexpr bool ranks_before(const TopKEntry& a,
                                          const TopKEntry& b) noexcept {
  if (a.rank != b.rank) return a.rank > b.rank;
  return a.page < b.page;
}

/// Offer one entry to a bounded best-`capacity` heap. `heap` must only ever
/// be grown through this function (it maintains a min-heap with the worst
/// retained entry at the front). capacity == 0 retains nothing.
void topk_offer(std::vector<TopKEntry>& heap, std::size_t capacity,
                TopKEntry entry);

/// Turn a topk_offer heap into a sorted (ranks_before) list, best first.
void topk_finalize(std::vector<TopKEntry>& heap);

/// K-way merge of per-shard lists, each sorted by ranks_before, into the
/// globally best `k` entries. Exact whenever each input list holds its
/// shard's best min(k, shard size) entries — i.e. for k up to the per-shard
/// index capacity. Empty lists are fine.
[[nodiscard]] std::vector<TopKEntry> merge_top_k(
    std::span<const std::span<const TopKEntry>> lists, std::size_t k);

}  // namespace p2prank::serve
