#include "serve/snapshot.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>

#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"

namespace p2prank::serve {

// ---------------------------------------------------------------------------
// RankSnapshot

void RankSnapshot::build(std::uint64_t epoch, double time,
                         std::span<const double> ranks,
                         std::span<const std::uint32_t> assignment,
                         std::uint32_t num_shards, std::size_t capacity) {
  ranks_.assign(ranks.begin(), ranks.end());
  shard_of_.assign(assignment.begin(), assignment.end());
  index(epoch, time, num_shards, capacity);
}

void RankSnapshot::build_groups(std::uint64_t epoch, double time,
                                std::span<const engine::GroupCut> groups,
                                std::uint32_t num_pages,
                                std::uint64_t ownership_version,
                                std::size_t capacity) {
  const auto num_shards = static_cast<std::uint32_t>(groups.size());
  epoch_ = epoch;
  time_ = time;
  num_shards_ = num_shards;
  capacity_ = capacity;

  // The page → shard map only changes when group membership does. When this
  // buffer was last built under the same nonzero ownership version, its
  // shard_of_ is already exact — skip the dense rewrite (and its RFO
  // traffic), the biggest avoidable cost on the publish path.
  const bool shard_map_current = ownership_version != 0 &&
                                 ownership_version_ == ownership_version &&
                                 shard_of_.size() == num_pages;
  ownership_version_ = ownership_version;

  std::size_t covered = 0;
  for (const engine::GroupCut& gc : groups) covered += gc.members.size();
  if (covered == num_pages) {
    // Groups partition the page set: the merge below overwrites every slot,
    // no pre-fill needed.
    ranks_.resize(num_pages);
    if (!shard_map_current) shard_of_.resize(num_pages);
  } else {
    // Post-crash orphans own no group; they read as unowned with rank 0.
    ranks_.assign(num_pages, 0.0);
    if (!shard_map_current) shard_of_.assign(num_pages, UINT32_MAX);
  }

  shards_.resize(num_shards);
  for (std::uint32_t sh = 0; sh < num_shards; ++sh) {
    ShardIndex& s = shards_[sh];
    s.epoch = epoch;
    s.pages = groups[sh].members.size();
    s.top.clear();  // keeps capacity — the buffer-reuse path allocates nothing
  }
  admit_scratch_.assign(
      num_shards, capacity == 0 ? std::numeric_limits<double>::infinity()
                                : -std::numeric_limits<double>::infinity());
  cursor_scratch_.assign(num_shards, 0);

  // Blocked k-way merge of the groups' ascending member lists: the dense
  // writes land inside one cache-resident window at a time instead of
  // striding the whole vector once per group, and the per-shard top-K
  // admission (same threshold rule as build()'s scan) rides the same pass.
  // The whole publish reads and writes each byte exactly once. Each
  // (group, block) slice end is found by binary search up front so the hot
  // loop carries a single trip count instead of a per-element bounds test.
  double* const dst_ranks = ranks_.data();
  std::uint32_t* const dst_shard = shard_of_.data();
  constexpr std::uint32_t kBlock = 8192;
  for (std::uint32_t lo = 0; lo < num_pages; lo += kBlock) {
    const std::uint32_t hi =
        lo + std::min<std::uint32_t>(kBlock, num_pages - lo);
    for (std::uint32_t sh = 0; sh < num_shards; ++sh) {
      const engine::GroupCut& gc = groups[sh];
      ShardIndex& s = shards_[sh];
      const std::uint32_t* const mem = gc.members.data();
      const double* const rnk = gc.ranks.data();
      const std::size_t cur = cursor_scratch_[sh];
      const std::size_t stop = static_cast<std::size_t>(
          std::lower_bound(mem + cur, mem + gc.members.size(), hi) - mem);
      double admit = admit_scratch_[sh];
      if (shard_map_current) {
        for (std::size_t i = cur; i < stop; ++i) {
          const std::uint32_t page = mem[i];
          const double rank = rnk[i];
          dst_ranks[page] = rank;
          if (rank <= admit) continue;  // exact: ascending pages lose ties
          topk_offer(s.top, capacity_, TopKEntry{page, rank});
          if (s.top.size() == capacity_) admit = s.top.front().rank;
        }
      } else {
        for (std::size_t i = cur; i < stop; ++i) {
          const std::uint32_t page = mem[i];
          const double rank = rnk[i];
          dst_ranks[page] = rank;
          dst_shard[page] = sh;
          if (rank <= admit) continue;  // exact: ascending pages lose ties
          topk_offer(s.top, capacity_, TopKEntry{page, rank});
          if (s.top.size() == capacity_) admit = s.top.front().rank;
        }
      }
      cursor_scratch_[sh] = stop;
      admit_scratch_[sh] = admit;
    }
  }
  for (ShardIndex& s : shards_) topk_finalize(s.top);
}

void RankSnapshot::index(std::uint64_t epoch, double time,
                         std::uint32_t num_shards, std::size_t capacity) {
  epoch_ = epoch;
  time_ = time;
  num_shards_ = num_shards;
  capacity_ = capacity;
  ownership_version_ = 0;  // dense build: shard_of_ provenance unknown

  shards_.resize(num_shards);
  for (ShardIndex& s : shards_) {
    s.epoch = epoch;
    s.pages = 0;
    s.top.clear();  // keeps capacity — the buffer-reuse path allocates nothing
  }
  // Per-shard admission threshold: once a shard's heap is full, a page must
  // beat the worst retained rank to change the index. Pages arrive in
  // ascending id order, so a rank tie always loses to the earlier page —
  // `rank <= threshold` is an exact reject, and the common case (page not
  // in its shard's top-K) costs two loads and a compare instead of an
  // out-of-line heap call. This keeps the publish cheap enough for the
  // < 5% serving-overhead budget.
  admit_scratch_.assign(
      num_shards, capacity == 0 ? std::numeric_limits<double>::infinity()
                                : -std::numeric_limits<double>::infinity());
  for (std::uint32_t page = 0; page < shard_of_.size(); ++page) {
    const std::uint32_t sh = shard_of_[page];
    ShardIndex& s = shards_[sh];
    ++s.pages;
    const double rank = ranks_[page];
    if (rank <= admit_scratch_[sh]) continue;
    topk_offer(s.top, capacity_, TopKEntry{page, rank});
    if (s.top.size() == capacity_) admit_scratch_[sh] = s.top.front().rank;
  }
  for (ShardIndex& s : shards_) topk_finalize(s.top);
}

std::vector<TopKEntry> RankSnapshot::top_k(std::size_t k) const {
  if (k == 0) return {};
  if (k <= capacity_) {
    std::vector<std::span<const TopKEntry>> lists;
    lists.reserve(shards_.size());
    for (const ShardIndex& s : shards_) lists.emplace_back(s.top);
    return merge_top_k(lists, k);
  }
  // Past the index depth the per-shard lists are lossy; fall back to the
  // full rank vector so k up to N stays exact.
  std::vector<TopKEntry> all;
  all.reserve(ranks_.size());
  for (std::uint32_t page = 0; page < ranks_.size(); ++page) {
    all.push_back(TopKEntry{page, ranks_[page]});
  }
  const std::size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(take),
                    all.end(), ranks_before);
  all.resize(take);
  return all;
}

std::vector<TopKEntry> RankSnapshot::shard_top_k(std::uint32_t s,
                                                 std::size_t k) const {
  const std::vector<TopKEntry>& top = shards_[s].top;
  const std::size_t take = std::min(k, top.size());
  return {top.begin(), top.begin() + static_cast<std::ptrdiff_t>(take)};
}

bool RankSnapshot::epoch_consistent() const noexcept {
  for (const ShardIndex& s : shards_) {
    if (s.epoch != epoch_) return false;
  }
  return true;
}

// Readers key on this exact header tag; bump the suffix on any layout change.
static_assert(kSnapshotFormat == "p2prank-snapshot-v1");

void RankSnapshot::serialize(std::ostream& out) const {
  const auto flags = out.flags();
  const auto precision = out.precision();
  out.precision(std::numeric_limits<double>::max_digits10);

  out << kSnapshotFormat << " epoch " << epoch_ << " time " << time_
      << " pages " << ranks_.size() << " shards " << num_shards_ << " k "
      << capacity_ << "\n";
  for (std::size_t i = 0; i < ranks_.size(); ++i) {
    out << i << " " << shard_of_[i] << " " << ranks_[i] << "\n";
  }
  for (std::uint32_t s = 0; s < num_shards_; ++s) {
    out << "shard " << s << " pages " << shards_[s].pages << " top";
    for (const TopKEntry& e : shards_[s].top) {
      out << " " << e.page << ":" << e.rank;
    }
    out << "\n";
  }

  out.flags(flags);
  out.precision(precision);
}

// ---------------------------------------------------------------------------
// SnapshotStore

SnapshotStore::SnapshotStore(std::size_t top_k_capacity)
    : capacity_(top_k_capacity) {
  for (auto& r : slot_released_) {
    r = std::make_shared<std::atomic<std::uint64_t>>(0);
  }
}

RankSnapshot& SnapshotStore::next_buffer() {
  const int slot = 1 - last_slot_;
  std::shared_ptr<RankSnapshot>& buf = buffers_[slot];
  // The acquire pairs with the release-store in the handle deleter below:
  // seeing the slot's own epoch proves every reader access to this buffer
  // happened-before, so rebuilding it in place is race-free.
  if (buf != nullptr && slot_released_[slot]->load(std::memory_order_acquire) ==
                            slot_epoch_[slot]) {
    ++buffer_reuses_;
  } else {
    // First publish, or a straggler reader still holds the old snapshot —
    // its handle keeps the (immutable) buffer alive; we start fresh.
    buf = std::make_shared<RankSnapshot>();
  }
  return *buf;
}

void SnapshotStore::commit() {
  const int slot = 1 - last_slot_;
  const std::uint64_t epoch = next_epoch_;
  slot_epoch_[slot] = epoch;
  // Readers get a handle with its OWN control block: when the last copy
  // dies, the deleter marks the slot released up to this epoch. The
  // captured owner keeps the buffer alive for stragglers even if the
  // publisher has already moved the slot on to a fresh allocation; the
  // CAS-max keeps an out-of-order stale deleter from regressing the marker.
  std::shared_ptr<const RankSnapshot> handle(
      buffers_[slot].get(),
      [owner = buffers_[slot], released = slot_released_[slot],
       epoch](const RankSnapshot*) {
        std::uint64_t seen = released->load(std::memory_order_relaxed);
        while (seen < epoch &&
               !released->compare_exchange_weak(seen, epoch,
                                                std::memory_order_release,
                                                std::memory_order_relaxed)) {
        }
      });
  {
    util::MutexLock l(mu_);
    current_ = std::move(handle);
  }
  latest_epoch_.store(epoch, std::memory_order_release);
  last_slot_ = slot;
  ++next_epoch_;
  ++published_;
}

void SnapshotStore::publish(double time, std::span<const double> ranks,
                            std::span<const std::uint32_t> assignment,
                            std::uint32_t num_shards) {
  next_buffer().build(next_epoch_, time, ranks, assignment, num_shards,
                      capacity_);
  commit();
}

void SnapshotStore::publish_groups(double time,
                                   std::span<const engine::GroupCut> groups,
                                   std::uint32_t num_pages,
                                   std::uint64_t ownership_version) {
  next_buffer().build_groups(next_epoch_, time, groups, num_pages,
                             ownership_version, capacity_);
  commit();
}

void SnapshotStore::invalidate(double /*time*/) {
  // Everything published so far — up to and including the current epoch —
  // reflects the rolled-back timeline. Keep serving it, flagged stale,
  // until the restore's warm start republishes.
  stale_epoch_.store(latest_epoch_.load(std::memory_order_acquire),
                     std::memory_order_release);
  ++invalidations_;
}

std::shared_ptr<const RankSnapshot> SnapshotStore::acquire() const {
  util::MutexLock l(mu_);
  return current_;
}

void SnapshotStore::set_shard_health(std::uint32_t shard, bool up) {
  if (shard >= kMaxHealthShards) return;
  const std::uint64_t bit = std::uint64_t{1} << (shard % 64);
  auto& word = shard_down_bits_[shard / 64];
  if (up) {
    word.fetch_and(~bit, std::memory_order_release);
  } else {
    word.fetch_or(bit, std::memory_order_release);
  }
}

bool SnapshotStore::shard_available(std::uint32_t shard) const {
  if (shard >= kMaxHealthShards) return true;
  const std::uint64_t bit = std::uint64_t{1} << (shard % 64);
  return (shard_down_bits_[shard / 64].load(std::memory_order_acquire) & bit) ==
         0;
}

// ---------------------------------------------------------------------------
// RankServer

std::shared_ptr<const RankSnapshot> RankServer::begin_query(
    bool topk, double now, bool& stale, bool& beyond_bound) const {
  queries_.fetch_add(1, std::memory_order_relaxed);
  (topk ? topk_queries_ : point_queries_).fetch_add(1,
                                                    std::memory_order_relaxed);
  std::shared_ptr<const RankSnapshot> snap = store_.acquire();
  if (snap == nullptr) {
    unavailable_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  if (!snap->epoch_consistent()) {
    torn_reads_.fetch_add(1, std::memory_order_relaxed);
  }
  stale = store_.is_stale(*snap);
  if (stale) stale_reads_.fetch_add(1, std::memory_order_relaxed);
  // NaN `now` makes the subtraction NaN and the comparison false, so callers
  // without a clock never see degraded reads — no branch needed.
  beyond_bound =
      now - snap->publish_time() > staleness_bound_.load(std::memory_order_relaxed);
  if (beyond_bound) degraded_reads_.fetch_add(1, std::memory_order_relaxed);
  return snap;
}

PointResult RankServer::rank(std::uint32_t page, double now) const {
  PointResult r;
  std::shared_ptr<const RankSnapshot> snap =
      begin_query(false, now, r.stale, r.beyond_bound);
  if (snap == nullptr) return r;
  r.served = true;
  r.epoch = snap->epoch();
  r.publish_time = snap->publish_time();
  r.rank = page < snap->num_pages() ? snap->rank(page) : 0.0;
  if (page < snap->num_pages()) {
    r.shard = snap->shard_of(page);
    r.shard_down = !store_.shard_available(r.shard);
    if (r.shard_down) note_shard_down();
  }
  return r;
}

TopKResult RankServer::top_k(std::size_t k, double now) const {
  TopKResult r;
  std::shared_ptr<const RankSnapshot> snap =
      begin_query(true, now, r.stale, r.beyond_bound);
  if (snap == nullptr) return r;
  r.served = true;
  r.epoch = snap->epoch();
  r.publish_time = snap->publish_time();
  r.entries = snap->top_k(k);
  for (std::uint32_t sh = 0; sh < snap->num_shards(); ++sh) {
    if (!store_.shard_available(sh)) {
      r.shard_down = true;  // some contributor's data is from an evicted shard
      note_shard_down();
      break;
    }
  }
  return r;
}

TopKResult RankServer::shard_top_k(std::uint32_t shard, std::size_t k,
                                   double now) const {
  TopKResult r;
  std::shared_ptr<const RankSnapshot> snap =
      begin_query(true, now, r.stale, r.beyond_bound);
  if (snap == nullptr) return r;
  r.served = true;
  r.epoch = snap->epoch();
  r.publish_time = snap->publish_time();
  if (shard < snap->num_shards()) r.entries = snap->shard_top_k(shard, k);
  r.shard_down = !store_.shard_available(shard);
  if (r.shard_down) note_shard_down();
  return r;
}

// ---------------------------------------------------------------------------

void export_serve_metrics(const SnapshotStore& store, const RankServer& server,
                          obs::MetricsRegistry& m) {
  m.counter(obs::names::kServeQueries) = server.queries();
  m.counter(obs::names::kServePointQueries) = server.point_queries();
  m.counter(obs::names::kServeTopkQueries) = server.topk_queries();
  m.counter(obs::names::kServeTornReads) = server.torn_reads();
  m.counter(obs::names::kServeStaleReads) = server.stale_reads();
  m.counter(obs::names::kServeUnavailable) = server.unavailable();
  m.counter(obs::names::kServeDegradedReads) = server.degraded_reads();
  m.counter(obs::names::kServeShardUnavailableReads) = server.shard_down_reads();
  m.counter(obs::names::kServeSnapshotsPublished) = store.published();
  m.counter(obs::names::kServeSnapshotsInvalidated) = store.invalidations();
  m.counter(obs::names::kServeBufferReuses) = store.buffer_reuses();
}

}  // namespace p2prank::serve
