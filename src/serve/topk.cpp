#include "serve/topk.hpp"

#include <algorithm>

namespace p2prank::serve {

namespace {

/// Heap comparator: std::push_heap keeps the "largest" element at the
/// front, so making "larger" mean "served earlier" leaves the *worst*
/// retained entry at the front — exactly the eviction candidate.
constexpr bool heap_order(const TopKEntry& a, const TopKEntry& b) noexcept {
  return ranks_before(a, b);
}

}  // namespace

void topk_offer(std::vector<TopKEntry>& heap, std::size_t capacity,
                TopKEntry entry) {
  if (capacity == 0) return;
  if (heap.size() < capacity) {
    heap.push_back(entry);
    std::push_heap(heap.begin(), heap.end(), heap_order);
    return;
  }
  if (!ranks_before(entry, heap.front())) return;  // not better than the worst
  std::pop_heap(heap.begin(), heap.end(), heap_order);
  heap.back() = entry;
  std::push_heap(heap.begin(), heap.end(), heap_order);
}

void topk_finalize(std::vector<TopKEntry>& heap) {
  // sort_heap leaves the range ascending under heap_order; heap_order sorts
  // better entries "less", so ascending is best-first — the serving order.
  std::sort_heap(heap.begin(), heap.end(), heap_order);
}

std::vector<TopKEntry> merge_top_k(
    std::span<const std::span<const TopKEntry>> lists, std::size_t k) {
  struct Cursor {
    std::size_t list = 0;
    std::size_t pos = 0;
  };
  std::vector<Cursor> heap;
  heap.reserve(lists.size());
  // Front of the cursor heap = the best not-yet-taken entry: the heap's
  // "largest" element is the one no other cursor ranks before. ranks_before
  // is total across shards (pages are globally unique), so the pop order —
  // and therefore the merged list — is deterministic.
  const auto better = [&](const Cursor& a, const Cursor& b) noexcept {
    return ranks_before(lists[b.list][b.pos], lists[a.list][a.pos]);
  };
  for (std::size_t i = 0; i < lists.size(); ++i) {
    if (!lists[i].empty()) heap.push_back({i, 0});
  }
  std::make_heap(heap.begin(), heap.end(), better);

  std::vector<TopKEntry> out;
  out.reserve(std::min(k, heap.size() * 4));
  while (out.size() < k && !heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), better);
    Cursor c = heap.back();
    heap.pop_back();
    out.push_back(lists[c.list][c.pos]);
    if (++c.pos < lists[c.list].size()) {
      heap.push_back(c);
      std::push_heap(heap.begin(), heap.end(), better);
    }
  }
  return out;
}

}  // namespace p2prank::serve
